(* Tests for the Section 2 machinery: Plan, Sampling, Contribution,
   Bounds, Skeleton (sequential) and Skeleton_dist. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Bfs = Graphlib.Bfs
module Edge_set = Graphlib.Edge_set
module Metrics = Graphlib.Metrics
module Plan = Spanner.Plan
module Sampling = Spanner.Sampling
module Skeleton = Spanner.Skeleton
module Skeleton_dist = Spanner.Skeleton_dist
module Contribution = Spanner.Contribution
module Bounds = Spanner.Bounds

let rng () = Util.Prng.create ~seed:20080424

(* ------------------------------------------------------------------ *)
(* Plan *)

let test_plan_ends_with_kill () =
  List.iter
    (fun n ->
      let plan = Plan.make ~n () in
      let last = Plan.last_call plan in
      checkb "last call kills" true (last.Plan.p = 0.);
      checkb "last phase is Kill" true (last.Plan.phase = Plan.Kill))
    [ 2; 10; 100; 10_000; 1_000_000 ]

let test_plan_density_reaches_n () =
  List.iter
    (fun n ->
      let plan = Plan.make ~n () in
      let last = Plan.last_call plan in
      checkb "density covers n" true
        (last.Plan.density_after >= float_of_int n))
    [ 2; 17; 1000; 250_000 ]

let test_plan_probabilities_valid () =
  let plan = Plan.make ~n:50_000 () in
  Array.iter
    (fun c ->
      checkb "p in [0,1)" true (c.Plan.p >= 0. && c.Plan.p < 1.);
      checkb "abort threshold positive" true (c.Plan.abort_q > 0))
    plan.Plan.calls

let test_plan_rounds_monotone () =
  let plan = Plan.make ~n:100_000 () in
  let prev = ref (-1) in
  Array.iter
    (fun c ->
      checkb "rounds nondecreasing" true (c.Plan.round >= !prev);
      prev := c.Plan.round)
    plan.Plan.calls;
  checki "num_rounds consistent" (!prev + 1) plan.Plan.num_rounds

let test_plan_schedule_is_short () =
  (* Theorem 2: the whole schedule is O(eps^-1 2^(log* n) log n) calls;
     concretely it must stay tiny even for large n. *)
  List.iter
    (fun n ->
      let plan = Plan.make ~n () in
      checkb
        (Printf.sprintf "n=%d gets few calls (%d)" n (Array.length plan.Plan.calls))
        true
        (Array.length plan.Plan.calls <= 40))
    [ 100; 10_000; 1_000_000; 100_000_000 ]

let test_plan_word_budget () =
  let plan = Plan.make ~n:65536 ~eps:0.5 () in
  (* log2 65536 = 16, 16^0.5 = 4 *)
  checki "budget (log n)^eps" 4 plan.Plan.word_budget;
  let plan1 = Plan.make ~n:65536 ~eps:1.0 () in
  checki "eps=1 budget" 16 plan1.Plan.word_budget

let test_plan_tower_grows_like_d () =
  let plan = Plan.make ~n:(1 lsl 20) ~d:4 ~eps:1.0 () in
  (* With eps=1 the threshold is log n * log log n = 20*4.32 = 86;
     tower calls at p=1/4 run until density > 86: 4,16,64,256. *)
  let tower =
    Array.to_list plan.Plan.calls
    |> List.filter (fun c -> c.Plan.phase = Plan.Tower)
  in
  checkb "several tower calls" true (List.length tower >= 3);
  List.iter (fun c -> checkb "tower p=1/4" true (c.Plan.p = 0.25)) tower

let test_plan_rejects_bad_args () =
  Alcotest.check_raises "d too small" (Invalid_argument "Plan.make: d must be >= 2")
    (fun () -> ignore (Plan.make ~n:10 ~d:1 ()));
  Alcotest.check_raises "eps out of range"
    (Invalid_argument "Plan.make: eps must be in (0, 1]") (fun () ->
      ignore (Plan.make ~n:10 ~eps:0. ()))

(* ------------------------------------------------------------------ *)
(* Sampling *)

let test_sampling_bounded_by_plan () =
  let plan = Plan.make ~n:500 () in
  let s = Sampling.draw (rng ()) ~n:500 plan in
  let ncalls = Array.length plan.Plan.calls in
  for v = 0 to 499 do
    let fu = Sampling.first_unsampled s v in
    checkb "fu within plan" true (fu >= 0 && fu < ncalls)
  done

let test_sampling_last_call_never_sampled () =
  let plan = Plan.make ~n:200 () in
  let s = Sampling.draw (rng ()) ~n:200 plan in
  let last = (Plan.last_call plan).Plan.index in
  for v = 0 to 199 do
    checkb "kill call unsampled" false (Sampling.sampled s ~center:v ~call:last)
  done

let test_sampling_sampled_consistent () =
  let plan = Plan.make ~n:100 () in
  let s = Sampling.draw (rng ()) ~n:100 plan in
  for v = 0 to 99 do
    let fu = Sampling.first_unsampled s v in
    if fu > 0 then checkb "sampled before fu" true (Sampling.sampled s ~center:v ~call:(fu - 1));
    checkb "unsampled at fu" false (Sampling.sampled s ~center:v ~call:fu)
  done

let test_sampling_rate_first_call () =
  (* First call has p = 1/4: about 3/4 of vertices survive it. *)
  let plan = Plan.make ~n:20_000 ~d:4 () in
  let s = Sampling.draw (rng ()) ~n:20_000 plan in
  let survived = ref 0 in
  for v = 0 to 19_999 do
    if Sampling.first_unsampled s v > 0 then incr survived
  done;
  let rate = float_of_int !survived /. 20_000. in
  checkb (Printf.sprintf "survival rate %.3f near 0.25" rate) true
    (rate > 0.22 && rate < 0.28)

(* ------------------------------------------------------------------ *)
(* Contribution (Lemma 6) *)

let test_contribution_zero_at_t0 () =
  Alcotest.check (Alcotest.float 1e-12) "X^0_p = 0" 0. (Contribution.xtp ~p:0.3 ~t:0)

let test_contribution_below_paper_bound () =
  List.iter
    (fun p ->
      List.iter
        (fun t ->
          let x = Contribution.xtp ~p ~t in
          let b = Contribution.paper_bound ~p ~t in
          checkb (Printf.sprintf "X^%d_%.2f = %.3f <= %.3f" t p x b) true (x <= b +. 1e-9))
        [ 1; 2; 5; 10; 50; 200 ])
    [ 0.05; 0.1; 0.25; 0.5; 0.9 ]

let test_contribution_monotone_in_t () =
  let xs = Contribution.xtp_sequence ~p:0.2 ~t:60 in
  for t = 1 to 60 do
    checkb "X nondecreasing in t" true (xs.(t) >= xs.(t - 1) -. 1e-12)
  done

let test_contribution_saturates () =
  (* The paper proves only the upper bound p^-1(ln(t+1) - zeta) + t and
     notes Baswana–Sen's stronger O(p^-1) + t "may in fact be true".
     The exact DP supports that: X^t_p - (1-p)t converges to a constant
     of order p^-1.  Check the saturation. *)
  let p = 0.1 in
  let excess t = Contribution.xtp ~p ~t -. ((1. -. p) *. float_of_int t) in
  let e100 = excess 100 and e1000 = excess 1000 in
  checkb
    (Printf.sprintf "excess saturates (%.3f vs %.3f)" e100 e1000)
    true
    (Float.abs (e1000 -. e100) < 0.05 *. e100);
  checkb "excess is Theta(1/p)" true (e1000 > 0.5 /. p && e1000 < 4. /. p)

let test_contribution_base_case_formula () =
  (* Inequality (3): X^1_p < (1 - 2/e) + (ep)^-1. *)
  List.iter
    (fun p ->
      let x1 = Contribution.xtp ~p ~t:1 in
      let bound = 1. -. (2. /. Float.exp 1.) +. (1. /. (Float.exp 1. *. p)) in
      checkb (Printf.sprintf "X^1_%.2f < ineq(3)" p) true (x1 < bound))
    [ 0.05; 0.1; 0.2; 0.5 ]

(* ------------------------------------------------------------------ *)
(* Bounds *)

let test_bounds_skeleton_size_shape () =
  (* Dn/e dominates: ratio to n must be between D/e and D/e + O(log D). *)
  List.iter
    (fun d ->
      let per_vertex = Bounds.skeleton_size ~n:1000 ~d /. 1000. in
      let d_over_e = float_of_int d /. Float.exp 1. in
      checkb "lower" true (per_vertex > d_over_e);
      checkb "upper" true (per_vertex < d_over_e +. (3. *. log (float_of_int d)) +. 4.))
    [ 4; 8; 16; 32 ]

let test_bounds_fib_closed_forms_dominate_recurrences () =
  (* Lemma 10 is proven by induction; verify numerically that the
     closed forms dominate the Lemma 9 recurrences. *)
  List.iter
    (fun ell ->
      for i = 0 to 10 do
        let c_rec = Bounds.fib_c_rec ~ell i and c_closed = Bounds.fib_c ~ell i in
        let i_rec = Bounds.fib_i_rec ~ell i and i_closed = Bounds.fib_i ~ell i in
        checkb
          (Printf.sprintf "C^%d_%d: closed %.1f >= rec %.1f" i ell c_closed c_rec)
          true
          (c_closed >= c_rec -. 1e-6);
        checkb
          (Printf.sprintf "I^%d_%d: closed %.1f >= rec %.1f" i ell i_closed i_rec)
          true
          (i_closed >= i_rec -. 1e-6)
      done)
    [ 1; 2; 3; 4; 7 ]

let test_bounds_fib_stage_values () =
  (* Theorem 7's table: ell=1 -> 2^(o+1); ell=2 -> 3(o+1);
     ell>=3 -> 3 + (6l-2)/(l(l-2)) tending to 3. *)
  Alcotest.check (Alcotest.float 1e-9) "ell=1" 16. (Bounds.fib_distortion_stage ~o:3 ~ell:1);
  Alcotest.check (Alcotest.float 1e-9) "ell=2" 12. (Bounds.fib_distortion_stage ~o:3 ~ell:2);
  let s3 = Bounds.fib_distortion_stage ~o:3 ~ell:3 in
  checkb "ell=3 between 3 and 9" true (s3 > 3. && s3 < 9.);
  let s100 = Bounds.fib_distortion_stage ~o:3 ~ell:100 in
  checkb "ell=100 close to 3" true (s100 < 3.1)

let test_bounds_lb_monotonicity () =
  (* More rounds allowed => smaller forced beta. *)
  let b1 = Bounds.lb_eps_beta ~n:100000 ~delta:0.1 ~zeta:0.5 ~tau:2 in
  let b2 = Bounds.lb_eps_beta ~n:100000 ~delta:0.1 ~zeta:0.5 ~tau:10 in
  checkb "beta decreases with tau" true (b1 > b2);
  (* Bigger beta tolerated => fewer rounds needed. *)
  let r1 = Bounds.lb_additive_rounds ~n:100000 ~delta:0.1 ~beta:2. in
  let r2 = Bounds.lb_additive_rounds ~n:100000 ~delta:0.1 ~beta:32. in
  checkb "rounds decrease with beta" true (r1 > r2)

(* ------------------------------------------------------------------ *)
(* Skeleton (sequential) *)

let build_skeleton ?(d = 4) ?(eps = 0.5) ?(trace = false) ~seed g =
  Skeleton.build ~d ~eps ~trace ~seed g

let test_skeleton_subset_of_edges () =
  let g = Gen.connected_gnp (rng ()) ~n:300 ~p:0.04 in
  let r = build_skeleton ~seed:5 g in
  (* All spanner edge ids are host edges by construction of Edge_set;
     cardinality must not exceed m. *)
  checkb "spanner smaller than graph" true
    (Edge_set.cardinal r.Skeleton.spanner <= G.m g)

let test_skeleton_preserves_connectivity () =
  List.iter
    (fun seed ->
      let r0 = Util.Prng.create ~seed in
      let g = Gen.connected_gnp r0 ~n:250 ~p:0.05 in
      let r = build_skeleton ~seed g in
      let h = Edge_set.to_graph r.Skeleton.spanner in
      checkb "skeleton connected" true (G.is_connected h))
    [ 1; 2; 3; 4; 5 ]

let test_skeleton_preserves_components () =
  (* On a disconnected graph, the spanner must preserve every
     component (distortion is finite within components). *)
  let r0 = rng () in
  let g = Gen.gnp r0 ~n:300 ~p:0.005 in
  let r = build_skeleton ~seed:11 g in
  let h = Edge_set.to_graph r.Skeleton.spanner in
  let lg, cg = G.components g and lh, ch = G.components h in
  checki "same component count" cg ch;
  (* Same partition: vertices in the same g-component share an
     h-component. *)
  let n = G.n g in
  for u = 0 to n - 1 do
    for v = u + 1 to min (n - 1) (u + 10) do
      if lg.(u) = lg.(v) then checkb "components preserved" true (lh.(u) = lh.(v))
    done
  done

let test_skeleton_size_near_bound () =
  (* Lemma 6: E|S| = Dn/e + O(n log D).  Statistical check with a
     fixed seed on a dense-enough graph. *)
  let n = 3000 in
  let g = Gen.connected_gnp (rng ()) ~n ~p:0.01 in
  let r = build_skeleton ~seed:3 g in
  let size = float_of_int (Edge_set.cardinal r.Skeleton.spanner) in
  let bound = Bounds.skeleton_size ~n ~d:4 in
  checkb
    (Printf.sprintf "size %.0f <= Lemma-6 bound %.0f (+50%% slack)" size bound)
    true
    (size <= 1.5 *. bound)

let test_skeleton_distortion_within_bound () =
  (* Exact check on a small graph against Theorem 2's distortion. *)
  let g = Gen.connected_gnp (rng ()) ~n:120 ~p:0.06 in
  let r = build_skeleton ~seed:9 g in
  let h = Edge_set.to_graph r.Skeleton.spanner in
  let rep = Metrics.exact ~g ~h in
  let bound = Bounds.skeleton_distortion ~n:120 ~d:4 ~eps:0.5 in
  checki "no pair disconnected" 0 rep.Metrics.disconnected;
  checkb
    (Printf.sprintf "max stretch %.1f within theorem bound %.1f" rep.Metrics.max_mult bound)
    true
    (rep.Metrics.max_mult <= bound)

let test_skeleton_trace_invariants () =
  let g = Gen.connected_gnp (rng ()) ~n:150 ~p:0.05 in
  let r = build_skeleton ~trace:true ~seed:21 g in
  checkb "has snapshots" true (r.Skeleton.snapshots <> []);
  let prev_spanner = ref 0 in
  List.iter
    (fun s ->
      checkb "spanner grows monotonically" true (s.Skeleton.spanner_size >= !prev_spanner);
      prev_spanner := s.Skeleton.spanner_size;
      checkb "alive_after <= alive_before" true
        (s.Skeleton.alive_after <= s.Skeleton.alive_before))
    r.Skeleton.snapshots;
  (* Last snapshot: everyone dead. *)
  let last = List.nth r.Skeleton.snapshots (List.length r.Skeleton.snapshots - 1) in
  checki "all dead at the end" 0 last.Skeleton.alive_after;
  Array.iter (fun c -> checki "assignment cleared" (-1) c) last.Skeleton.assignment

let test_skeleton_cluster_trees_spanned () =
  (* Key invariant (Section 2): for any cluster C in any C_{i,j}, the
     preimage of C is spanned by a tree of spanner edges.  Weaker
     checkable form: the preimage is connected in the spanner-so-far. *)
  let g = Gen.connected_gnp (rng ()) ~n:120 ~p:0.06 in
  let plan = Plan.make ~n:120 () in
  let sampling = Sampling.draw (Util.Prng.create ~seed:33) ~n:120 plan in
  let r = Skeleton.build_with ~trace:true ~plan ~sampling g in
  let h = Edge_set.to_graph r.Skeleton.spanner in
  (* Using the final spanner is valid since edges are only added. *)
  let snapshot_connected s =
    (* group by assignment *)
    let groups : (int, int list) Hashtbl.t = Hashtbl.create 32 in
    Array.iteri
      (fun v c ->
        if c >= 0 then
          Hashtbl.replace groups c (v :: Option.value ~default:[] (Hashtbl.find_opt groups c)))
      s.Skeleton.assignment;
    Hashtbl.iter
      (fun center members ->
        match members with
        | [] | [ _ ] -> ()
        | first :: _ ->
            let d = Bfs.distances h ~src:first in
            List.iter
              (fun v ->
                checkb
                  (Printf.sprintf "cluster %d connected in spanner" center)
                  true (d.(v) >= 0))
              members)
      groups
  in
  List.iter snapshot_connected r.Skeleton.snapshots

let test_skeleton_d_sweep_size_increases () =
  (* Larger D means denser spanners (roughly Dn/e). *)
  let g = Gen.connected_gnp (rng ()) ~n:2000 ~p:0.02 in
  let size d =
    Edge_set.cardinal (build_skeleton ~d ~seed:2 g).Skeleton.spanner
  in
  let s4 = size 4 and s16 = size 16 in
  checkb (Printf.sprintf "D=16 (%d) denser than D=4 (%d)" s16 s4) true (s16 > s4)

let test_skeleton_on_structured_graphs () =
  List.iter
    (fun (name, g) ->
      let r = build_skeleton ~seed:8 g in
      let h = Edge_set.to_graph r.Skeleton.spanner in
      checkb (name ^ " connected") true (G.is_connected h))
    [
      ("torus", Gen.torus ~width:16 ~height:16);
      ("hypercube", Gen.hypercube ~dims:8);
      ("caterpillar", Gen.caterpillar ~spine:50 ~legs:4);
      ("complete", Gen.complete 60);
    ]

let test_skeleton_complete_graph_sparsifies () =
  (* K_200 has 19900 edges; the skeleton must cut it down massively. *)
  let g = Gen.complete 200 in
  let r = build_skeleton ~seed:4 g in
  let c = Edge_set.cardinal r.Skeleton.spanner in
  checkb (Printf.sprintf "K200 spanner has %d edges" c) true (c < 3000)

let test_skeleton_tree_keeps_everything () =
  (* A spanner of a tree must keep every edge (dropping any one
     disconnects). *)
  let g = Gen.caterpillar ~spine:40 ~legs:3 in
  let r = build_skeleton ~seed:10 g in
  checki "tree kept whole" (G.m g) (Edge_set.cardinal r.Skeleton.spanner)

(* ------------------------------------------------------------------ *)
(* Skeleton_dist *)

let test_dist_equals_sequential () =
  List.iter
    (fun (seed, n, p) ->
      let g = Gen.connected_gnp (Util.Prng.create ~seed:(seed * 31)) ~n ~p in
      let plan = Plan.make ~n:(G.n g) () in
      let sampling = Sampling.draw (Util.Prng.create ~seed) ~n:(G.n g) plan in
      let seq = Skeleton.build_with ~plan ~sampling g in
      let dist = Skeleton_dist.build_with ~plan ~sampling g in
      checki "same size"
        (Edge_set.cardinal seq.Skeleton.spanner)
        (Edge_set.cardinal dist.Skeleton_dist.spanner);
      Edge_set.iter seq.Skeleton.spanner (fun e ->
          checkb "dist has every seq edge" true
            (Edge_set.mem dist.Skeleton_dist.spanner e));
      checki "same abort count" seq.Skeleton.aborts dist.Skeleton_dist.aborts)
    [ (1, 200, 0.05); (2, 300, 0.03); (3, 150, 0.1); (4, 400, 0.015) ]

let test_dist_equals_sequential_structured () =
  List.iter
    (fun (name, g) ->
      let plan = Plan.make ~n:(G.n g) () in
      let sampling = Sampling.draw (Util.Prng.create ~seed:123) ~n:(G.n g) plan in
      let seq = Skeleton.build_with ~plan ~sampling g in
      let dist = Skeleton_dist.build_with ~plan ~sampling g in
      checki (name ^ ": same size")
        (Edge_set.cardinal seq.Skeleton.spanner)
        (Edge_set.cardinal dist.Skeleton_dist.spanner))
    [
      ("torus", Gen.torus ~width:15 ~height:15);
      ("hypercube", Gen.hypercube ~dims:7);
      ("grid", Gen.grid ~width:20 ~height:10);
      ("disconnected gnp", Gen.gnp (rng ()) ~n:250 ~p:0.004);
    ]

let test_dist_message_length_bounded () =
  (* Unit protocol messages are O(1) words; batched list messages are
     capped at the word budget (+1 for the flag). *)
  let g = Gen.connected_gnp (rng ()) ~n:500 ~p:0.02 in
  let plan = Plan.make ~n:500 () in
  let sampling = Sampling.draw (Util.Prng.create ~seed:6) ~n:500 plan in
  let dist = Skeleton_dist.build_with ~plan ~sampling g in
  let cap = Stdlib.max 4 (plan.Plan.word_budget + 1) in
  checkb
    (Printf.sprintf "max message %d <= %d"
       dist.Skeleton_dist.stats.Distnet.Sim.max_message_words cap)
    true
    (dist.Skeleton_dist.stats.Distnet.Sim.max_message_words <= cap)

let test_dist_rounds_scale_polylog () =
  (* Theorem 2: rounds are polylog for fixed eps; concretely the round
     count must grow far slower than n. *)
  let rounds n =
    let g = Gen.connected_gnp (Util.Prng.create ~seed:n) ~n ~p:(8. /. float_of_int n) in
    let d = Skeleton_dist.build ~seed:1 g in
    d.Skeleton_dist.stats.Distnet.Sim.rounds
  in
  let r_small = rounds 200 and r_big = rounds 1600 in
  checkb
    (Printf.sprintf "rounds %d -> %d grow sublinearly (8x n)" r_small r_big)
    true
    (float_of_int r_big < 3. *. float_of_int r_small)

let prop_dist_equals_sequential =
  QCheck.Test.make ~name:"skeleton: distributed = sequential (random graphs)"
    ~count:15
    QCheck.(pair (int_range 20 120) (int_bound 1000))
    (fun (n, seed) ->
      let r0 = Util.Prng.create ~seed:(seed + 1) in
      let g = Gen.gnp r0 ~n ~p:(4. /. float_of_int n) in
      let plan = Plan.make ~n () in
      let sampling = Sampling.draw (Util.Prng.create ~seed) ~n plan in
      let seq = Skeleton.build_with ~plan ~sampling g in
      let dist = Skeleton_dist.build_with ~plan ~sampling g in
      let same = ref true in
      Edge_set.iter seq.Skeleton.spanner (fun e ->
          if not (Edge_set.mem dist.Skeleton_dist.spanner e) then same := false);
      Edge_set.iter dist.Skeleton_dist.spanner (fun e ->
          if not (Edge_set.mem seq.Skeleton.spanner e) then same := false);
      !same)

(* ------------------------------------------------------------------ *)
(* Self-healing: faulty transports, crash recovery, certification *)

module Certify = Spanner.Certify
module Fault = Distnet.Fault

let test_dist_lossy_equals_sequential () =
  (* Same tape, heavy loss + duplication + delay: the ARQ transport
     must still deliver the exact sequential spanner, with zero
     recovery actions. *)
  let g = Gen.connected_gnp (Util.Prng.create ~seed:77) ~n:120 ~p:0.06 in
  let plan = Plan.make ~n:(G.n g) () in
  let sampling = Sampling.draw (Util.Prng.create ~seed:9) ~n:(G.n g) plan in
  let seq = Skeleton.build_with ~plan ~sampling g in
  let faults =
    Fault.make ~seed:3
      { Fault.default_spec with Fault.drop = 0.25; dup = 0.05; delay = 0.1 }
  in
  let dist = Skeleton_dist.build_with ~faults ~plan ~sampling g in
  checki "same size"
    (Edge_set.cardinal seq.Skeleton.spanner)
    (Edge_set.cardinal dist.Skeleton_dist.spanner);
  Edge_set.iter seq.Skeleton.spanner (fun e ->
      checkb "dist has every seq edge" true
        (Edge_set.mem dist.Skeleton_dist.spanner e));
  let rc = dist.Skeleton_dist.recovery in
  checki "no crashes" 0 rc.Skeleton_dist.crashed;
  checki "no orphans" 0 rc.Skeleton_dist.orphaned;
  checkb "loss cost retransmissions" true (rc.Skeleton_dist.retransmissions > 0)

let test_dist_crash_recovery_certifies () =
  (* Crash-stops under 20% loss: the construction completes, every
     scheduled crash registers, checkpoints were committed, and the
     certifier accepts the surviving output. *)
  let g = Gen.connected_gnp (Util.Prng.create ~seed:5) ~n:128 ~p:0.06 in
  let crashes = [ (1, 120); (7, 300); (20, 250); (33, 40); (60, 200) ] in
  let faults =
    Fault.make ~seed:11 { Fault.default_spec with Fault.drop = 0.2; crashes }
  in
  let r = Skeleton_dist.build ~faults ~seed:5 g in
  let rc = r.Skeleton_dist.recovery in
  checki "all scheduled crashes happened" 5 rc.Skeleton_dist.crashed;
  checkb "checkpoints committed" true (rc.Skeleton_dist.checkpoints > 0);
  let v =
    Certify.run ~plan:r.Skeleton_dist.plan ~witness:r.Skeleton_dist.witness g
      r.Skeleton_dist.spanner
  in
  checkb "certifier accepts the recovered output" true (Certify.ok v)

let remove_one_hook_edge (w : Certify.witness) g spanner =
  (* The first live vertex's cluster-tree edge, dropped from the set. *)
  let victim = ref (-1) in
  Array.iteri
    (fun v e -> if !victim < 0 && e >= 0 && not w.Certify.crashed.(v) then victim := e)
    w.Certify.parent_edge;
  if !victim < 0 then None
  else begin
    let edges = ref [] in
    Edge_set.iter spanner (fun e -> if e <> !victim then edges := e :: !edges);
    Some (Edge_set.of_list g !edges)
  end

let prop_certifier_accepts =
  QCheck.Test.make ~name:"certify: accepts every loss-free build" ~count:15
    QCheck.(pair (int_range 20 120) (int_bound 1000))
    (fun (n, seed) ->
      let g =
        Gen.gnp (Util.Prng.create ~seed:(seed + 1)) ~n ~p:(4. /. float_of_int n)
      in
      let r = Skeleton_dist.build ~seed g in
      Certify.ok
        (Certify.run ~plan:r.Skeleton_dist.plan ~witness:r.Skeleton_dist.witness
           g r.Skeleton_dist.spanner))

let prop_certifier_rejects_mutation =
  QCheck.Test.make ~name:"certify: rejects a sabotaged spanner" ~count:15
    QCheck.(pair (int_range 30 120) (int_bound 1000))
    (fun (n, seed) ->
      let g =
        Gen.connected_gnp
          (Util.Prng.create ~seed:(seed + 1))
          ~n
          ~p:(4. /. float_of_int n)
      in
      let r = Skeleton_dist.build ~seed g in
      match
        remove_one_hook_edge r.Skeleton_dist.witness g r.Skeleton_dist.spanner
      with
      | None -> QCheck.assume_fail ()
      | Some mutated ->
          not
            (Certify.ok
               (Certify.run ~plan:r.Skeleton_dist.plan
                  ~witness:r.Skeleton_dist.witness g mutated)))

(* ------------------------------------------------------------------ *)
(* Topology churn: incremental repair, the degradation ladder, replay *)

let first_hook_edge (r : Skeleton_dist.result) =
  (* A cluster-tree hook edge is always a spanner edge, so cutting it
     guarantees the repair pass has real damage to fix. *)
  let e = ref (-1) in
  Array.iter
    (fun pe -> if !e < 0 && pe >= 0 then e := pe)
    r.Skeleton_dist.witness.Certify.parent_edge;
  !e

let certify_churned (r : Skeleton_dist.result) g =
  let down = Array.make (Stdlib.max 1 (G.m g)) false in
  List.iter (fun e -> down.(e) <- true) r.Skeleton_dist.dead_edges;
  Certify.run ~plan:r.Skeleton_dist.plan ~witness:r.Skeleton_dist.witness
    ~down_edge:(fun e -> down.(e))
    ~per_component:true g r.Skeleton_dist.spanner

let test_churn_edge_kill_repaired_locally () =
  let g = Gen.connected_gnp (Util.Prng.create ~seed:21) ~n:96 ~p:0.07 in
  let plan = Plan.make ~n:(G.n g) () in
  let sampling = Sampling.draw (Util.Prng.create ~seed:8) ~n:(G.n g) plan in
  let base = Skeleton_dist.build_with ~plan ~sampling g in
  let e = first_hook_edge base in
  checkb "found a hook edge" true (e >= 0);
  let u, v = G.edge_endpoints g e in
  let faults =
    Fault.make ~seed:3 ~graph:g
      {
        Fault.default_spec with
        Fault.churn = [ Fault.Edge_down { round = 40; u; v } ];
      }
  in
  let r = Skeleton_dist.build_with ~faults ~plan ~sampling g in
  let rp = r.Skeleton_dist.repair in
  checkb "spanner edge died" true (rp.Skeleton_dist.dead_spanner_edges >= 1);
  checkb "fragment rehooked" true (rp.Skeleton_dist.rehooked >= 1);
  checkb "ladder reports damage" true (rp.Skeleton_dist.outcome <> Skeleton_dist.Intact);
  (* The point of incremental repair: far cheaper than rebuilding. *)
  checkb
    (Printf.sprintf "repair (%d rounds) cheaper than a from-scratch run (%d)"
       rp.Skeleton_dist.repair_rounds base.Skeleton_dist.stats.Distnet.Sim.rounds)
    true
    (rp.Skeleton_dist.repair_rounds < base.Skeleton_dist.stats.Distnet.Sim.rounds);
  checkb "certifier accepts the repaired output" true
    (Certify.ok (certify_churned r g))

let test_churn_healed_partition_ends_patched () =
  (* A partition that heals plus one permanent spanner-edge kill: the
     run must end on the *patched* rung with the certifier passing. *)
  let g = Gen.connected_gnp (Util.Prng.create ~seed:21) ~n:96 ~p:0.07 in
  let plan = Plan.make ~n:(G.n g) () in
  let sampling = Sampling.draw (Util.Prng.create ~seed:8) ~n:(G.n g) plan in
  let base = Skeleton_dist.build_with ~plan ~sampling g in
  let e = first_hook_edge base in
  let u, v = G.edge_endpoints g e in
  let cut = ref [] in
  G.iter_neighbors g 7 (fun w _ -> cut := (7, w) :: !cut);
  let faults =
    Fault.make ~seed:3 ~graph:g
      {
        Fault.default_spec with
        Fault.churn =
          [
            Fault.Partition { round = 3; edges = !cut; heal = Some 25 };
            Fault.Edge_down { round = 40; u; v };
          ];
      }
  in
  let r = Skeleton_dist.build_with ~faults ~plan ~sampling g in
  let rp = r.Skeleton_dist.repair in
  checkb "outcome is patched" true (rp.Skeleton_dist.outcome = Skeleton_dist.Patched);
  checki "one component after the heal" 1 rp.Skeleton_dist.components;
  let verdict = certify_churned r g in
  checkb "certifier passes after the heal" true (Certify.ok verdict)

let test_churn_partition_never_heals () =
  (* Cutting a vertex off for good: the run still terminates, reports
     the partitioned rung with the component count, and each island
     certifies separately. *)
  let g = Gen.connected_gnp (Util.Prng.create ~seed:21) ~n:96 ~p:0.07 in
  let cut = ref [] in
  G.iter_neighbors g 0 (fun w _ -> cut := (0, w) :: !cut);
  let faults =
    Fault.make ~seed:3 ~graph:g
      {
        Fault.default_spec with
        Fault.churn =
          [ Fault.Partition { round = 3; edges = !cut; heal = None } ];
      }
  in
  let r = Skeleton_dist.build ~faults ~seed:8 g in
  let rp = r.Skeleton_dist.repair in
  checkb "ladder reports the partition" true
    (rp.Skeleton_dist.outcome = Skeleton_dist.Partitioned 2);
  checki "two live components" 2 rp.Skeleton_dist.components;
  let verdict = certify_churned r g in
  checki "certifier sees both components" 2 verdict.Certify.components;
  checkb "each island certifies" true (Certify.ok verdict)

let test_churn_stuck_is_structured () =
  (* The same never-healing partition with a phase budget too small for
     the failure detector to ripen: instead of hanging or crashing with
     a backtrace, the run raises the structured Stuck exception naming
     the wedged phase and the links it was waiting on. *)
  let g = Gen.connected_gnp (Util.Prng.create ~seed:21) ~n:96 ~p:0.07 in
  let cut = ref [] in
  G.iter_neighbors g 0 (fun w _ -> cut := (0, w) :: !cut);
  let faults =
    Fault.make ~seed:3 ~graph:g
      {
        Fault.default_spec with
        Fault.churn =
          [ Fault.Partition { round = 3; edges = !cut; heal = None } ];
      }
  in
  match Skeleton_dist.build ~faults ~phase_round_limit:150 ~seed:8 g with
  | _ -> Alcotest.fail "expected Stuck"
  | exception Skeleton_dist.Stuck { phase; waiting_on; stats } ->
      checkb "phase is named" true (String.length phase > 0);
      checkb "waiting links listed" true (waiting_on <> []);
      checkb "cut links appear" true
        (List.exists (fun (a, b) -> a = 0 || b = 0) waiting_on);
      checkb "stats carried" true (stats.Distnet.Sim.rounds > 0)

let prop_churn_trace_replay_identical =
  QCheck.Test.make
    ~name:"churn: trace replay reproduces the spanner edge set" ~count:10
    QCheck.(pair (int_range 20 80) (int_bound 1000))
    (fun (n, seed) ->
      let g =
        Gen.connected_gnp
          (Util.Prng.create ~seed:(seed + 1))
          ~n
          ~p:(4. /. float_of_int n)
      in
      let plan = Plan.make ~n:(G.n g) () in
      let sampling = Sampling.draw (Util.Prng.create ~seed) ~n:(G.n g) plan in
      let e = seed mod G.m g in
      let u, v = G.edge_endpoints g e in
      let faults =
        Fault.make ~seed:(seed + 2) ~graph:g
          {
            Fault.default_spec with
            Fault.drop = 0.1;
            churn = [ Fault.Edge_down { round = 10; u; v } ];
          }
      in
      let tracer = Distnet.Trace.create () in
      let r1 = Skeleton_dist.build_with ~faults ~tracer ~plan ~sampling g in
      let r2 =
        Skeleton_dist.build_with
          ~faults:(Fault.scripted (Distnet.Trace.events tracer))
          ~plan ~sampling g
      in
      let same = ref true in
      Edge_set.iter r1.Skeleton_dist.spanner (fun e ->
          if not (Edge_set.mem r2.Skeleton_dist.spanner e) then same := false);
      Edge_set.iter r2.Skeleton_dist.spanner (fun e ->
          if not (Edge_set.mem r1.Skeleton_dist.spanner e) then same := false);
      !same && r1.Skeleton_dist.repair = r2.Skeleton_dist.repair)

let prop_skeleton_connectivity =
  QCheck.Test.make ~name:"skeleton: preserves connectivity" ~count:20
    QCheck.(pair (int_range 10 150) (int_bound 1000))
    (fun (n, seed) ->
      let r0 = Util.Prng.create ~seed in
      let g = Gen.connected_gnp r0 ~n ~p:(5. /. float_of_int n) in
      let r = Skeleton.build ~seed:(seed * 3) g in
      G.is_connected (Edge_set.to_graph r.Skeleton.spanner))

let suite =
  [
    ( "core.plan",
      [
        Alcotest.test_case "ends with kill" `Quick test_plan_ends_with_kill;
        Alcotest.test_case "density reaches n" `Quick test_plan_density_reaches_n;
        Alcotest.test_case "probabilities valid" `Quick test_plan_probabilities_valid;
        Alcotest.test_case "rounds monotone" `Quick test_plan_rounds_monotone;
        Alcotest.test_case "schedule is short" `Quick test_plan_schedule_is_short;
        Alcotest.test_case "word budget" `Quick test_plan_word_budget;
        Alcotest.test_case "tower phase" `Quick test_plan_tower_grows_like_d;
        Alcotest.test_case "rejects bad args" `Quick test_plan_rejects_bad_args;
      ] );
    ( "core.sampling",
      [
        Alcotest.test_case "bounded by plan" `Quick test_sampling_bounded_by_plan;
        Alcotest.test_case "kill call unsampled" `Quick test_sampling_last_call_never_sampled;
        Alcotest.test_case "sampled consistent" `Quick test_sampling_sampled_consistent;
        Alcotest.test_case "rate of first call" `Quick test_sampling_rate_first_call;
      ] );
    ( "core.contribution",
      [
        Alcotest.test_case "X^0 = 0" `Quick test_contribution_zero_at_t0;
        Alcotest.test_case "below paper bound (ineq 4)" `Quick test_contribution_below_paper_bound;
        Alcotest.test_case "monotone in t" `Quick test_contribution_monotone_in_t;
        Alcotest.test_case "saturates (B-S claim plausible)" `Quick
          test_contribution_saturates;
        Alcotest.test_case "base case (ineq 3)" `Quick test_contribution_base_case_formula;
      ] );
    ( "core.bounds",
      [
        Alcotest.test_case "skeleton size shape" `Quick test_bounds_skeleton_size_shape;
        Alcotest.test_case "Lemma 10 >= Lemma 9" `Quick
          test_bounds_fib_closed_forms_dominate_recurrences;
        Alcotest.test_case "Theorem 7 stages" `Quick test_bounds_fib_stage_values;
        Alcotest.test_case "lower-bound monotonicity" `Quick test_bounds_lb_monotonicity;
      ] );
    ( "core.skeleton",
      [
        Alcotest.test_case "subset of edges" `Quick test_skeleton_subset_of_edges;
        Alcotest.test_case "preserves connectivity" `Quick test_skeleton_preserves_connectivity;
        Alcotest.test_case "preserves components" `Quick test_skeleton_preserves_components;
        Alcotest.test_case "size near Lemma 6" `Quick test_skeleton_size_near_bound;
        Alcotest.test_case "distortion within Theorem 2" `Quick
          test_skeleton_distortion_within_bound;
        Alcotest.test_case "trace invariants" `Quick test_skeleton_trace_invariants;
        Alcotest.test_case "cluster trees spanned" `Quick test_skeleton_cluster_trees_spanned;
        Alcotest.test_case "D sweep" `Quick test_skeleton_d_sweep_size_increases;
        Alcotest.test_case "structured graphs" `Quick test_skeleton_on_structured_graphs;
        Alcotest.test_case "complete graph sparsifies" `Quick
          test_skeleton_complete_graph_sparsifies;
        Alcotest.test_case "tree kept whole" `Quick test_skeleton_tree_keeps_everything;
        QCheck_alcotest.to_alcotest prop_skeleton_connectivity;
      ] );
    ( "core.skeleton_dist",
      [
        Alcotest.test_case "equals sequential" `Quick test_dist_equals_sequential;
        Alcotest.test_case "equals sequential (structured)" `Quick
          test_dist_equals_sequential_structured;
        Alcotest.test_case "message length bounded" `Quick test_dist_message_length_bounded;
        Alcotest.test_case "rounds scale polylog" `Quick test_dist_rounds_scale_polylog;
        QCheck_alcotest.to_alcotest prop_dist_equals_sequential;
      ] );
    ( "core.self_healing",
      [
        Alcotest.test_case "lossy = sequential" `Quick
          test_dist_lossy_equals_sequential;
        Alcotest.test_case "crash recovery certifies" `Quick
          test_dist_crash_recovery_certifies;
        QCheck_alcotest.to_alcotest prop_certifier_accepts;
        QCheck_alcotest.to_alcotest prop_certifier_rejects_mutation;
      ] );
    ( "core.churn_repair",
      [
        Alcotest.test_case "edge kill repaired locally" `Quick
          test_churn_edge_kill_repaired_locally;
        Alcotest.test_case "healed partition ends patched" `Quick
          test_churn_healed_partition_ends_patched;
        Alcotest.test_case "partition never heals" `Quick
          test_churn_partition_never_heals;
        Alcotest.test_case "stuck is structured" `Quick
          test_churn_stuck_is_structured;
        QCheck_alcotest.to_alcotest prop_churn_trace_replay_identical;
      ] );
  ]
