(* Tests for the causal-tracing layer: span registry semantics, the
   critical-path extraction, the Perfetto export — and the property the
   acceptance hangs on: on a loss-free skeleton run the critical path's
   length in rounds equals the run's own stats. *)

module S = Obs.Span
module C = Obs.Causal
module Edge_set = Graphlib.Edge_set

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string

let contains_sub s sub =
  let sl = String.length sub and l = String.length s in
  let rec at i =
    i + sl <= l && (String.sub s i sl = sub || at (i + 1))
  in
  at 0

(* ------------------------------------------------------------------ *)
(* Registry semantics *)

let test_disabled_noop () =
  let t = S.disabled in
  checkb "disabled" false (S.enabled t);
  checki "message returns -1" (-1) (S.message t ~round:0 ~src:0 ~dst:1 ~words:2);
  (* every operation on the no-op sink (or a -1 id) returns silently *)
  S.deliver t ~round:1 (-1);
  S.drop t ~round:1 ~reason:"loss" (-1);
  checki "open_span returns -1" (-1)
    (S.open_span t S.Phase ~name:"x" ~round:0);
  S.close t ~round:1 (-1);
  checki "span returns -1" (-1)
    (S.span t S.Phase ~name:"x" ~start_round:0 ~stop_round:1);
  checki "count 0" 0 (S.count t);
  checkb "records empty" true (S.records t = [])

let test_message_lifecycle_lamport () =
  let t = S.create () in
  checkb "enabled" true (S.enabled t);
  (* 0 -> 1 -> 0: the Lamport chain must thread through both nodes *)
  let m1 = S.message t ~round:0 ~src:0 ~dst:1 ~words:2 in
  S.deliver t ~round:1 m1;
  let m2 = S.message t ~round:1 ~src:1 ~dst:0 ~words:1 in
  S.deliver t ~round:2 m2;
  match S.records t with
  | [ r1; r2 ] ->
      checki "ids dense" 0 r1.S.id;
      checki "ids dense" 1 r2.S.id;
      checkb "delivered" true (r1.S.status = S.Delivered);
      checki "m1 send round" 0 r1.S.start_round;
      checki "m1 deliver round" 1 r1.S.stop_round;
      checki "m1 ls" 1 r1.S.ls;
      checki "m1 ld = max(0, ls)+1" 2 r1.S.ld;
      (* node 1's clock is now 2, so its next send ticks to 3 *)
      checki "m2 ls" 3 r2.S.ls;
      checki "m2 ld = max(L0=2, 3)+1" 4 r2.S.ld
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l)

let test_drop_and_duplicate () =
  let t = S.create () in
  let m1 = S.message t ~round:0 ~src:0 ~dst:1 ~words:1 in
  S.drop t ~round:2 ~reason:"loss" m1;
  let m2 = S.message t ~round:0 ~src:0 ~dst:2 ~words:1 in
  S.deliver t ~round:1 m2;
  (* first delivery wins: later duplicates and drops are ignored *)
  S.deliver t ~round:5 m2;
  S.drop t ~round:6 ~reason:"loss" m2;
  match S.records t with
  | [ r1; r2 ] ->
      checkb "dropped with reason" true (r1.S.status = S.Dropped "loss");
      checki "drop round recorded" 2 r1.S.stop_round;
      checkb "still delivered" true (r2.S.status = S.Delivered);
      checki "first delivery round kept" 1 r2.S.stop_round
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l)

let test_structural_spans () =
  let t = S.create () in
  let call = S.open_span t S.Call ~name:"call-0" ~round:0 in
  let ph = S.span t ~parent:call S.Phase ~name:"exchange" ~start_round:0
      ~stop_round:3 in
  let cl = S.span t ~parent:call ~src:7 S.Cluster ~name:"cluster-7"
      ~start_round:0 ~stop_round:5 in
  S.close t ~round:6 call;
  ignore ph;
  ignore cl;
  match S.records t with
  | [ c; p; k ] ->
      checks "call name" "call-0" c.S.name;
      checki "call closed at 6" 6 c.S.stop_round;
      checkb "closed" true (c.S.status = S.Delivered);
      checki "phase parent" c.S.id p.S.parent;
      checks "phase name" "exchange" p.S.name;
      checki "phase stop" 3 p.S.stop_round;
      checki "cluster src" 7 k.S.src;
      checki "no clock on structural spans" 0 p.S.ls
  | l -> Alcotest.failf "expected 3 records, got %d" (List.length l)

let test_save_load_roundtrip () =
  let t = S.create () in
  let m1 = S.message t ~round:0 ~src:0 ~dst:1 ~words:2 in
  S.deliver t ~round:1 m1;
  let m2 = S.message t ~round:1 ~src:1 ~dst:2 ~words:1 in
  S.drop t ~round:3 ~reason:"dst-crashed" m2;
  let m3 = S.message t ~round:2 ~src:2 ~dst:0 ~words:1 in
  ignore m3 (* left open *);
  let call = S.open_span t S.Call ~name:"call-0" ~round:0 in
  ignore (S.span t ~parent:call S.Phase ~name:"exchange" ~start_round:0
      ~stop_round:2);
  S.close t ~round:4 call;
  let file = Filename.temp_file "spans" ".jsonl" in
  S.save ~extra:[ {|{"kind":"span_meta","n":3}|} ] t file;
  let loaded = S.load file in
  Sys.remove file;
  checki "meta line skipped" (S.count t) (List.length loaded);
  (* the round-trip is exact: same JSON line for every span *)
  List.iter2
    (fun a b -> checks "same json" (S.to_json a) (S.to_json b))
    (S.records t) loaded

let test_malformed_file () =
  let file = Filename.temp_file "spans" ".jsonl" in
  let oc = open_out file in
  output_string oc {|{"kind":"span_meta","n":3}|};
  output_string oc "\n";
  output_string oc
    {|{"kind":"span","id":0,"sk":"message","src":0,"dst":1,"words":1,"start":0,"stop":1,"ls":1,"ld":2,"status":"delivered"}|};
  output_string oc "\n";
  output_string oc {|{"kind":"span","id":1,"sk":"mess|};
  output_string oc "\n";
  close_out oc;
  (match S.load file with
  | exception Failure msg ->
      (* the error names the exact spot: file and 1-based line *)
      checkb "names the file" true
        (contains_sub msg (Filename.basename file));
      checkb "names line 3" true (contains_sub msg "line 3")
  | _ -> Alcotest.fail "expected Failure on truncated span line");
  Sys.remove file

(* ------------------------------------------------------------------ *)
(* Critical-path extraction *)

(* Crafted DAGs: drive a real sink with hand-picked rounds. *)
let msg t ~s ~d ~send ~dlvr =
  let id = S.message t ~round:send ~src:s ~dst:d ~words:1 in
  S.deliver t ~round:dlvr id;
  id

let test_causal_empty () =
  let a = C.analyze [] in
  checkb "no chains" true (a.C.chains = []);
  checki "no retransmits" 0 a.C.path_retransmits;
  (* a log with only dropped messages has no causal terminal either *)
  let t = S.create () in
  let m = S.message t ~round:0 ~src:0 ~dst:1 ~words:1 in
  S.drop t ~round:1 ~reason:"loss" m;
  checkb "dropped-only log: no chains" true ((C.analyze (S.records t)).C.chains = [])

let test_causal_single_chain () =
  let t = S.create () in
  ignore (msg t ~s:0 ~d:1 ~send:0 ~dlvr:1);
  ignore (msg t ~s:1 ~d:2 ~send:1 ~dlvr:2);
  ignore (msg t ~s:2 ~d:3 ~send:2 ~dlvr:3);
  match (C.analyze ~k:1 (S.records t)).C.chains with
  | [ c ] ->
      checki "length" 3 c.C.length_rounds;
      checki "start" 0 c.C.start_round;
      checki "end" 3 c.C.end_round;
      checki "hops" 3 (List.length c.C.segments);
      List.iter (fun s -> checki "no slack" 0 s.C.slack) c.C.segments
  | l -> Alcotest.failf "expected 1 chain, got %d" (List.length l)

let test_causal_diamond () =
  (* 0 fans out to 1 and 2; 3 hears from both but only acts after the
     slow arm; the path must follow the late delivery through 2. *)
  let t = S.create () in
  ignore (msg t ~s:0 ~d:1 ~send:0 ~dlvr:1);
  ignore (msg t ~s:0 ~d:2 ~send:0 ~dlvr:1);
  ignore (msg t ~s:1 ~d:3 ~send:1 ~dlvr:2);
  ignore (msg t ~s:2 ~d:3 ~send:1 ~dlvr:4) (* delayed arm *);
  ignore (msg t ~s:3 ~d:4 ~send:4 ~dlvr:5);
  match (C.analyze (S.records t)).C.chains with
  | c :: _ ->
      checki "length covers the slow arm" 5 c.C.length_rounds;
      let links =
        List.map (fun s -> (s.C.src, s.C.dst)) c.C.segments
      in
      checkb "path goes through node 2" true
        (links = [ (0, 2); (2, 3); (3, 4) ])
  | [] -> Alcotest.fail "expected a chain"

let test_causal_slack_and_phases () =
  let t = S.create () in
  ignore (S.span t S.Phase ~name:"a" ~start_round:0 ~stop_round:3);
  ignore (S.span t S.Phase ~name:"b" ~start_round:3 ~stop_round:6);
  ignore (msg t ~s:0 ~d:1 ~send:0 ~dlvr:1);
  ignore (msg t ~s:1 ~d:2 ~send:5 ~dlvr:6) (* waited 4 rounds at node 1 *);
  let a = C.analyze ~k:1 (S.records t) in
  match a.C.chains with
  | [ c ] ->
      checki "length" 6 c.C.length_rounds;
      (match c.C.segments with
      | [ h1; h2 ] ->
          checki "hop 1 slack" 0 h1.C.slack;
          checks "hop 1 phase (deliver in a)" "a" h1.C.phase;
          checki "hop 2 slack" 4 h2.C.slack;
          checks "hop 2 phase (deliver in b)" "b" h2.C.phase
      | l -> Alcotest.failf "expected 2 hops, got %d" (List.length l));
      (* the table splits hop 2's interval across the a/b boundary, so
         each phase is charged at most its own duration and the rows
         sum exactly to the chain length *)
      let total =
        List.fold_left (fun acc r -> acc + r.C.ps_rounds) 0 a.C.phase_slack
      in
      checki "per-phase rounds sum to length" 6 total;
      List.iter
        (fun r ->
          checkb "per-phase rounds bounded by duration" true
            (r.C.ps_rounds <= 3))
        a.C.phase_slack
  | l -> Alcotest.failf "expected 1 chain, got %d" (List.length l)

let test_causal_topk_deterministic () =
  (* two terminals at the same round: the smaller span id ranks first *)
  let t = S.create () in
  ignore (msg t ~s:0 ~d:1 ~send:0 ~dlvr:1);
  ignore (msg t ~s:1 ~d:2 ~send:1 ~dlvr:2);
  ignore (msg t ~s:1 ~d:3 ~send:1 ~dlvr:2);
  match (C.analyze ~k:2 (S.records t)).C.chains with
  | [ c1; c2 ] ->
      let terminal c = (List.nth c.C.segments (List.length c.C.segments - 1)).C.span_id in
      checkb "tie broken by span id" true (terminal c1 < terminal c2)
  | l -> Alcotest.failf "expected 2 chains, got %d" (List.length l)

let test_perfetto_export () =
  let t = S.create () in
  ignore (msg t ~s:0 ~d:1 ~send:0 ~dlvr:1);
  ignore (S.span t S.Phase ~name:"exchange" ~start_round:0 ~stop_round:1);
  let file = Filename.temp_file "perfetto" ".json" in
  let n = Obs.Perfetto.export (S.records t) file in
  let ic = open_in file in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove file;
  checkb "span + phase + metadata events" true (n >= 3);
  checkb "chrome trace envelope" true
    (String.length content > 16
    && String.sub content 0 16 = {|{"traceEvents":[|});
  (* structurally balanced: every event line is an object in the array *)
  let count c = String.fold_left (fun k ch -> if ch = c then k + 1 else k) 0 content in
  checki "balanced braces" (count '{') (count '}');
  checki "balanced brackets" (count '[') (count ']')

(* ------------------------------------------------------------------ *)
(* The acceptance property: loss-free critical path = stats.rounds,
   with phase labels consistent with the metrics phase table. *)

let build_traced ~n ~seed =
  let rng = Util.Prng.create ~seed in
  let g = Graphlib.Gen.connected_gnp rng ~n ~p:(6. /. float_of_int n) in
  let metrics = Obs.Metrics.create () in
  let spans = S.create () in
  let r = Spanner.Skeleton_dist.build ~metrics ~spans ~seed g in
  (r, metrics, spans)

let prop_critical_path_equals_rounds =
  QCheck.Test.make ~name:"causal: loss-free critical path = stats.rounds"
    ~count:15
    QCheck.(int_range 16 96)
    (fun n ->
      let seed = 23 + n in
      let r, metrics, spans = build_traced ~n ~seed in
      let stats = r.Spanner.Skeleton_dist.stats in
      let a = C.analyze (S.records spans) in
      match a.C.chains with
      | [] -> false
      | c :: _ ->
          let rows = Obs.Report.phase_rows (Obs.Metrics.snapshot metrics) in
          let row name =
            List.find_opt (fun (p : Obs.Report.phase_row) -> p.Obs.Report.phase = name) rows
          in
          (* 1. the headline equality *)
          c.C.length_rounds = stats.Distnet.Sim.rounds
          (* 2. every phase on the path is a phase the metrics table knows *)
          && List.for_all
               (fun s -> s.C.phase = "" || row s.C.phase <> None)
               c.C.segments
          (* 3. per-phase path rounds never exceed that phase's total,
                and sum exactly to the chain length *)
          && List.for_all
               (fun ps ->
                 match row ps.C.ps_phase with
                 | Some p -> ps.C.ps_rounds <= p.Obs.Report.rounds
                 | None -> ps.C.ps_phase = "")
               a.C.phase_slack
          && List.fold_left (fun acc ps -> acc + ps.C.ps_rounds) 0
               a.C.phase_slack
             = c.C.length_rounds)

let prop_spans_transparent =
  QCheck.Test.make ~name:"causal: recording spans never changes the run"
    ~count:10
    QCheck.(int_range 16 80)
    (fun n ->
      let seed = 7 + n in
      let build spans =
        let rng = Util.Prng.create ~seed in
        let g = Graphlib.Gen.connected_gnp rng ~n ~p:(6. /. float_of_int n) in
        let r = Spanner.Skeleton_dist.build ~spans ~seed g in
        let edges = ref [] in
        Edge_set.iter r.Spanner.Skeleton_dist.spanner (fun e ->
            edges := e :: !edges);
        (List.rev !edges, r.Spanner.Skeleton_dist.stats)
      in
      build S.disabled = build (S.create ()))

let suite =
  [
    ( "spans.registry",
      [
        Alcotest.test_case "disabled sink is a no-op" `Quick test_disabled_noop;
        Alcotest.test_case "message lifecycle + lamport" `Quick
          test_message_lifecycle_lamport;
        Alcotest.test_case "drop and duplicate" `Quick test_drop_and_duplicate;
        Alcotest.test_case "structural spans" `Quick test_structural_spans;
        Alcotest.test_case "save/load roundtrip" `Quick
          test_save_load_roundtrip;
        Alcotest.test_case "malformed file names the line" `Quick
          test_malformed_file;
      ] );
    ( "spans.causal",
      [
        Alcotest.test_case "empty log" `Quick test_causal_empty;
        Alcotest.test_case "single chain" `Quick test_causal_single_chain;
        Alcotest.test_case "diamond follows the slow arm" `Quick
          test_causal_diamond;
        Alcotest.test_case "slack and phase attribution" `Quick
          test_causal_slack_and_phases;
        Alcotest.test_case "top-k tie broken by id" `Quick
          test_causal_topk_deterministic;
        Alcotest.test_case "perfetto export" `Quick test_perfetto_export;
      ] );
    ( "spans.property",
      [
        QCheck_alcotest.to_alcotest prop_critical_path_equals_rounds;
        QCheck_alcotest.to_alcotest prop_spans_transparent;
      ] );
  ]
