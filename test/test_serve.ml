(* Tests for the query-serving subsystem: snapshots, workloads, the
   swap-capable server, and the answer audit. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Edge_set = Graphlib.Edge_set
module Snapshot = Serve.Snapshot
module Workload = Serve.Workload
module Server = Serve.Server

let rng () = Util.Prng.create ~seed:2008

let all_edges g = List.init (G.m g) (fun e -> e)

let spanner_of g =
  (Spanner.Skeleton.build ~seed:3 g).Spanner.Skeleton.spanner

(* ------------------------------------------------------------------ *)
(* Snapshot *)

let test_snapshot_freezes_spanner () =
  let g = Gen.connected_gnp (rng ()) ~n:120 ~p:0.06 in
  let s = spanner_of g in
  let snap = Snapshot.build ~k:2 ~seed:1 g s in
  checki "all spanner edges survive" (Edge_set.cardinal s) (Snapshot.edges snap);
  checki "same vertex count" (G.n g) (Snapshot.n snap);
  checki "generation defaults to 0" 0 (Snapshot.generation snap);
  checkb "no routing tables unless asked" false (Snapshot.has_routing snap)

let test_snapshot_exclude () =
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  let s = Edge_set.of_list g (all_edges g) in
  let dead = match G.find_edge g 1 2 with Some e -> e | None -> assert false in
  let snap = Snapshot.build ~k:1 ~seed:1 ~exclude:[ dead ] g s in
  checki "one edge excluded" (G.m g - 1) (Snapshot.edges snap);
  (* With 1-2 gone the cycle is a path 1-0-3-2. *)
  checki "distance reroutes around the dead edge" 3 (Snapshot.distance snap 1 2)

let test_snapshot_stretch_vs_bfs () =
  let g = Gen.connected_gnp (rng ()) ~n:100 ~p:0.07 in
  let k = 2 in
  let snap = Snapshot.build ~k ~seed:5 g (spanner_of g) in
  let h = Snapshot.graph snap in
  for src = 0 to 19 do
    let exact = Graphlib.Bfs.distances h ~src in
    for v = 0 to G.n g - 1 do
      let est = Snapshot.distance snap src v in
      checkb
        (Printf.sprintf "d(%d,%d)=%d est %d within (2k-1)" src v exact.(v) est)
        true
        (est >= exact.(v) && est <= ((2 * k) - 1) * exact.(v))
    done
  done

let test_snapshot_deterministic () =
  let g = Gen.connected_gnp (rng ()) ~n:80 ~p:0.08 in
  let s = spanner_of g in
  let a = Snapshot.build ~k:2 ~seed:7 g s in
  let b = Snapshot.build ~k:2 ~seed:7 g s in
  for u = 0 to 79 do
    for v = 0 to 79 do
      checki "same answers from same params" (Snapshot.distance a u v)
        (Snapshot.distance b u v)
    done
  done

let test_snapshot_save_load () =
  let g = Gen.connected_gnp (rng ()) ~n:60 ~p:0.1 in
  let snap =
    Snapshot.build ~generation:3 ~k:2 ~seed:9 ~routing:true g (spanner_of g)
  in
  let file = Filename.temp_file "snap" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Snapshot.save snap file;
      let back = Snapshot.load file in
      checki "generation survives" 3 (Snapshot.generation back);
      checki "edges survive" (Snapshot.edges snap) (Snapshot.edges back);
      checki "oracle k survives" (Snapshot.oracle_k snap) (Snapshot.oracle_k back);
      checkb "routing flag survives" true (Snapshot.has_routing back);
      for u = 0 to 59 do
        for v = 0 to 59 do
          checki "identical answers after reload" (Snapshot.distance snap u v)
            (Snapshot.distance back u v);
          checki "identical routes after reload"
            (Snapshot.route_hops snap u v)
            (Snapshot.route_hops back u v)
        done
      done)

(* Corruption detection: the load path must refuse a truncated or
   bit-flipped file with a structured one-line error, and a save must
   never leave its temp file behind. *)

let expect_load_failure name file pattern =
  match Snapshot.load file with
  | _ -> Alcotest.failf "%s: load accepted a damaged snapshot" name
  | exception Failure msg ->
      checkb
        (Printf.sprintf "%s: error mentions %s (got %S)" name pattern msg)
        true
        (let plen = String.length pattern in
         let rec scan i =
           i + plen <= String.length msg
           && (String.sub msg i plen = pattern || scan (i + 1))
         in
         scan 0);
      checkb (name ^ ": error is one line") false (String.contains msg '\n')

let with_saved_snapshot f =
  let g = Gen.connected_gnp (rng ()) ~n:40 ~p:0.12 in
  let snap = Snapshot.build ~k:2 ~seed:4 g (spanner_of g) in
  let file = Filename.temp_file "snap" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Snapshot.save snap file;
      checkb "no temp file left behind" false (Sys.file_exists (file ^ ".tmp"));
      f file)

let test_snapshot_load_truncated () =
  with_saved_snapshot (fun file ->
      let full = In_channel.with_open_bin file In_channel.input_all in
      (* Cut mid-body: keep the header and half the edge list. *)
      let cut = String.length full - (String.length full / 3) in
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc (String.sub full 0 cut));
      expect_load_failure "truncated" file "truncated snapshot")

let test_snapshot_load_corrupted () =
  with_saved_snapshot (fun file ->
      let full = In_channel.with_open_bin file In_channel.input_all in
      (* Flip one bit in a body byte (past the header line). *)
      let body_at = String.index full '\n' + 1 in
      let bytes = Bytes.of_string full in
      Bytes.set bytes (body_at + 2)
        (Char.chr (Char.code (Bytes.get bytes (body_at + 2)) lxor 1));
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_bytes oc bytes);
      expect_load_failure "corrupted" file "checksum mismatch")

let test_snapshot_load_missing_checksum () =
  with_saved_snapshot (fun file ->
      (* An old-format header without sum=/bytes= must be rejected, not
         silently trusted. *)
      let full = In_channel.with_open_bin file In_channel.input_all in
      let body_at = String.index full '\n' + 1 in
      let body = String.sub full body_at (String.length full - body_at) in
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc "#snapshot gen=0 k=2 seed=4 routing=0\n";
          Out_channel.output_string oc body);
      expect_load_failure "no checksum" file "missing sum")

(* ------------------------------------------------------------------ *)
(* Workload *)

let test_workload_deterministic () =
  let spec = { Workload.queries = 400; zipf = Some 1.1; route_frac = 0.3 } in
  let a = Workload.generate ~seed:5 ~n:50 spec in
  let b = Workload.generate ~seed:5 ~n:50 spec in
  checkb "same seed, same workload" true (a = b);
  checkb "different seed differs" true
    (Workload.generate ~seed:6 ~n:50 spec <> a)

let test_workload_route_frac () =
  let gen frac =
    Workload.route_count
      (Workload.generate ~seed:2 ~n:30
         { Workload.queries = 1000; zipf = None; route_frac = frac })
  in
  checki "frac 0: no routes" 0 (gen 0.);
  checki "frac 1: all routes" 1000 (gen 1.);
  let half = gen 0.5 in
  checkb (Printf.sprintf "frac 0.5: %d near 500" half) true
    (half > 400 && half < 600)

let test_workload_zipf_skews_sources () =
  let n = 100 in
  let count w =
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun q ->
        Hashtbl.replace tbl q.Workload.src
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl q.Workload.src)))
      w;
    Hashtbl.fold (fun _ c acc -> Stdlib.max c acc) tbl 0
  in
  let uniform =
    Workload.generate ~seed:4 ~n
      { Workload.queries = 5000; zipf = None; route_frac = 0. }
  in
  let zipf =
    Workload.generate ~seed:4 ~n
      { Workload.queries = 5000; zipf = Some 1.4; route_frac = 0. }
  in
  let mu = count uniform and mz = count zipf in
  checkb
    (Printf.sprintf "hottest zipf source (%d) much hotter than uniform (%d)"
       mz mu)
    true
    (mz > 2 * mu)

let test_workload_save_load () =
  let w =
    Workload.generate ~seed:8 ~n:40
      { Workload.queries = 200; zipf = Some 0.8; route_frac = 0.25 }
  in
  let file = Filename.temp_file "workload" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Workload.save w file;
      checkb "round trip" true (Workload.load ~n:40 file = w);
      (* A smaller vertex universe must reject the same file. *)
      checkb "range validated on load" true
        (try
           ignore (Workload.load ~n:10 file);
           false
         with Failure _ -> true))

(* ------------------------------------------------------------------ *)
(* Server *)

let make_server ?metrics n =
  let g = Gen.connected_gnp (rng ()) ~n ~p:0.08 in
  let snap = Snapshot.build ~k:2 ~seed:1 g (spanner_of g) in
  (g, Server.create ?metrics snap)

let test_server_serves_all_fresh () =
  let _, srv = make_server 60 in
  let w =
    Workload.generate ~seed:3 ~n:60
      { Workload.queries = 500; zipf = None; route_frac = 0. }
  in
  let r = Server.run srv w in
  checki "answered all" 500 r.Server.answered;
  checki "none stale" 0 r.Server.stale;
  checki "none failed (connected graph)" 0 r.Server.failed;
  checki "latency per query" 500 (Array.length r.Server.latency_sorted);
  match r.Server.by_generation with
  | [ (0, 500, 0) ] -> ()
  | _ -> Alcotest.fail "single fresh generation expected"

let test_server_swap_and_staleness () =
  let g, srv = make_server 60 in
  let w =
    Workload.generate ~seed:3 ~n:60
      { Workload.queries = 300; zipf = None; route_frac = 0. }
  in
  let r1 = Server.run ~first:0 ~count:100 srv w in
  Server.mark_dirty srv;
  let r2 = Server.run ~first:100 ~count:100 srv w in
  checki "answers stale after mark_dirty" 100 r2.Server.stale;
  checki "epoch moved ahead of generation" 1 (Server.epoch srv);
  let next =
    Snapshot.build ~generation:1 ~k:2 ~seed:1 g (spanner_of g)
  in
  Server.publish srv next;
  checki "one swap" 1 (Server.swaps srv);
  let r3 = Server.run ~first:200 ~count:100 srv w in
  checki "fresh again after publish" 0 r3.Server.stale;
  let m = Server.merge [ r1; r2; r3 ] in
  checki "merge answered" 300 m.Server.answered;
  checki "merge stale" 100 m.Server.stale;
  checki "merge failed" 0 m.Server.failed;
  checki "merge latencies" 300 (Array.length m.Server.latency_sorted);
  (match m.Server.by_generation with
  | [ (0, 100, 100); (1, 100, 0) ] -> ()
  | _ -> Alcotest.fail "per-generation tallies wrong");
  (* Monotonic generations are enforced. *)
  checkb "non-increasing publish rejected" true
    (try
       Server.publish srv (Snapshot.build ~generation:1 ~k:2 ~seed:1 g (spanner_of g));
       false
     with Invalid_argument _ -> true)

let test_server_failed_counts_disconnected () =
  let g = G.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let snap = Snapshot.of_graph ~k:2 ~seed:1 g in
  let srv = Server.create snap in
  let w =
    [|
      { Workload.src = 0; dst = 1; route = false };
      { Workload.src = 0; dst = 2; route = false };
      { Workload.src = 1; dst = 3; route = false };
    |]
  in
  let r = Server.run srv w in
  checki "cross-component queries fail" 2 r.Server.failed

let test_server_metrics_sink () =
  let metrics = Obs.Metrics.create () in
  let g, srv = make_server ~metrics 40 in
  let w =
    Workload.generate ~seed:9 ~n:40
      { Workload.queries = 120; zipf = None; route_frac = 0. }
  in
  ignore (Server.run ~first:0 ~count:60 srv w);
  Server.mark_dirty srv;
  Server.publish srv (Snapshot.build ~generation:1 ~k:2 ~seed:1 g (spanner_of g));
  ignore (Server.run ~first:60 ~count:60 srv w);
  let rows = Obs.Report.serve_rows (Obs.Metrics.snapshot metrics) in
  match rows with
  | [ g0; g1 ] ->
      checki "gen0 row" 0 g0.Obs.Report.generation;
      checki "gen0 fresh answers" 60 g0.Obs.Report.fresh;
      checki "gen1 answers" 60 g1.Obs.Report.fresh;
      checkb "gen0 latency histogram recorded" true
        (match g0.Obs.Report.latency with
        | Some h -> h.Obs.Metrics.count = 60
        | None -> false);
      checkb "gen1 latency histogram recorded" true
        (match g1.Obs.Report.latency with
        | Some h -> h.Obs.Metrics.count = 60
        | None -> false)
  | _ -> Alcotest.fail "expected one serve row per generation"

(* ------------------------------------------------------------------ *)
(* Audit *)

let test_audit_passes_on_honest_snapshot () =
  let g = Gen.connected_gnp (rng ()) ~n:90 ~p:0.07 in
  let snap = Snapshot.build ~k:2 ~seed:2 ~routing:true g (spanner_of g) in
  let w =
    Workload.generate ~seed:6 ~n:90
      { Workload.queries = 600; zipf = Some 1.2; route_frac = 0.3 }
  in
  let a = Server.audit ~samples:128 ~seed:4 snap w in
  checkb "audit passes" true (Server.audit_ok a);
  checki "sampled as asked" 128 a.Server.sampled;
  checkb "max stretch within the oracle bound" true
    (a.Server.max_stretch <= a.Server.dist_bound +. 1e-9)

let test_audit_disconnected_pairs () =
  let g = G.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  let snap = Snapshot.of_graph ~k:2 ~seed:1 g in
  let w =
    [|
      { Workload.src = 0; dst = 3; route = false };
      { Workload.src = 0; dst = 2; route = false };
      { Workload.src = 4; dst = 1; route = false };
    |]
  in
  let a = Server.audit ~samples:3 ~seed:1 snap w in
  checkb "disconnected answers audited as correct" true (Server.audit_ok a)

let prop_serve_respects_stretch =
  QCheck.Test.make
    ~name:"serve: sampled answers within the oracle stretch bound" ~count:8
    QCheck.(int_range 20 60)
    (fun n ->
      let g = Gen.connected_gnp (Util.Prng.create ~seed:n) ~n ~p:0.12 in
      let snap = Snapshot.build ~k:2 ~seed:(n + 1) g (spanner_of g) in
      let w =
        Workload.generate ~seed:(n + 2) ~n
          { Workload.queries = 200; zipf = None; route_frac = 0. }
      in
      Server.audit_ok (Server.audit ~samples:64 ~seed:(n + 3) snap w))

let suite =
  [
    ( "serve.snapshot",
      [
        Alcotest.test_case "freezes the spanner" `Quick test_snapshot_freezes_spanner;
        Alcotest.test_case "excludes dead edges" `Quick test_snapshot_exclude;
        Alcotest.test_case "stretch vs BFS" `Quick test_snapshot_stretch_vs_bfs;
        Alcotest.test_case "deterministic" `Quick test_snapshot_deterministic;
        Alcotest.test_case "save/load round trip" `Quick test_snapshot_save_load;
        Alcotest.test_case "load rejects truncation" `Quick
          test_snapshot_load_truncated;
        Alcotest.test_case "load rejects corruption" `Quick
          test_snapshot_load_corrupted;
        Alcotest.test_case "load rejects missing checksum" `Quick
          test_snapshot_load_missing_checksum;
      ] );
    ( "serve.workload",
      [
        Alcotest.test_case "deterministic" `Quick test_workload_deterministic;
        Alcotest.test_case "route fraction" `Quick test_workload_route_frac;
        Alcotest.test_case "zipf skews sources" `Quick test_workload_zipf_skews_sources;
        Alcotest.test_case "save/load round trip" `Quick test_workload_save_load;
      ] );
    ( "serve.server",
      [
        Alcotest.test_case "all fresh" `Quick test_server_serves_all_fresh;
        Alcotest.test_case "swap and staleness" `Quick test_server_swap_and_staleness;
        Alcotest.test_case "failed = disconnected" `Quick
          test_server_failed_counts_disconnected;
        Alcotest.test_case "metrics sink" `Quick test_server_metrics_sink;
      ] );
    ( "serve.audit",
      [
        Alcotest.test_case "honest snapshot passes" `Quick
          test_audit_passes_on_honest_snapshot;
        Alcotest.test_case "disconnected pairs" `Quick test_audit_disconnected_pairs;
        QCheck_alcotest.to_alcotest prop_serve_respects_stretch;
      ] );
  ]
