let () =
  Alcotest.run "ultrasparse"
    (Test_util.suite @ Test_graph.suite @ Test_distnet.suite @ Test_obs.suite @ Test_prof.suite @ Test_spans.suite @ Test_skeleton.suite @ Test_fibonacci.suite @ Test_baseline.suite @ Test_lowerbound.suite @ Test_experiments.suite @ Test_oracle.suite @ Test_weighted.suite @ Test_combined.suite @ Test_streaming.suite @ Test_fidelity.suite @ Test_more.suite @ Test_supercluster.suite @ Test_routing.suite @ Test_serve.suite @ Test_scenario.suite)
