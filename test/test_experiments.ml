(* Tests for graph I/O, the king torus, and the experiment harness. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Io = Graphlib.Io
module Apsp = Graphlib.Apsp

let test_io_roundtrip () =
  let rng = Util.Prng.create ~seed:4 in
  let g = Gen.gnp rng ~n:120 ~p:0.05 in
  let path = Filename.temp_file "ultrasparse" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Io.write g path;
      let g' = Io.read path in
      checki "n preserved" (G.n g) (G.n g');
      checki "m preserved" (G.m g) (G.m g');
      G.iter_edges g (fun _ u v -> checkb "edge preserved" true (G.mem_edge g' u v)))

let test_io_comments_and_blanks () =
  let path = Filename.temp_file "ultrasparse" ".edges" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "# a comment\n\n3 2\n0 1\n\n# another\n1 2\n";
      close_out oc;
      let g = Io.read path in
      checki "n" 3 (G.n g);
      checki "m" 2 (G.m g))

let test_king_torus_shape () =
  let g = Gen.king_torus ~width:8 ~height:8 in
  checki "n" 64 (G.n g);
  checki "8-regular" 8 (G.max_degree g);
  checki "m" (64 * 8 / 2) (G.m g);
  checkb "connected" true (G.is_connected g);
  checki "diameter = side/2" 4 (Apsp.diameter g)

let test_experiment_registry () =
  checki "experiment count" 27 (List.length Experiments.Run.ids);
  List.iter
    (fun id -> checkb (id ^ " resolvable") true (Experiments.Run.by_id id <> None))
    Experiments.Run.ids;
  checkb "case-insensitive" true (Experiments.Run.by_id "e9" <> None);
  checkb "unknown rejected" true (Experiments.Run.by_id "E99" = None)

let test_e9_table_contents () =
  (* E9 is pure computation: check the actual reproduction claim in its
     rows (the "bound holds" column is always "yes"). *)
  let t = Experiments.Run.e9_contribution ~quick:true ~seed:1 () in
  checkb "has rows" true (List.length t.Experiments.Table.rows = 16);
  List.iter
    (fun row ->
      match List.rev row with
      | verdict :: _ -> Alcotest.check Alcotest.string "bound holds" "yes" verdict
      | [] -> Alcotest.fail "empty row")
    t.Experiments.Table.rows

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  nl = 0 || at 0

let test_table_rendering () =
  let t =
    {
      Experiments.Table.id = "T";
      title = "demo";
      reproduces = "nothing";
      columns = [ "a"; "b" ];
      rows = [ [ "1"; "22" ]; [ "333"; "4" ] ];
      notes = [ "a note" ];
    }
  in
  let s = Format.asprintf "%a" Experiments.Table.print t in
  checkb "mentions title" true (contains ~needle:"demo" s);
  checkb "mentions note" true (contains ~needle:"a note" s);
  checkb "aligned header" true (contains ~needle:"a    b" s)

let test_e6_rows_decay () =
  (* Theorem 4's shape: measured beta decays as tau grows. *)
  let t = Experiments.Run.e6_lb_eps_beta ~quick:true ~seed:5 () in
  let betas =
    List.map
      (fun row -> float_of_string (List.nth row 4))
      t.Experiments.Table.rows
  in
  let rec nonincreasing = function
    | a :: b :: rest -> a +. 0.5 >= b && nonincreasing (b :: rest)
    | _ -> true
  in
  checkb "beta decays with tau" true (nonincreasing betas)

let suite =
  [
    ( "graph.io",
      [
        Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
        Alcotest.test_case "comments & blanks" `Quick test_io_comments_and_blanks;
      ] );
    ( "graph.king_torus",
      [ Alcotest.test_case "shape" `Quick test_king_torus_shape ] );
    ( "experiments",
      [
        Alcotest.test_case "registry" `Quick test_experiment_registry;
        Alcotest.test_case "table rendering" `Quick test_table_rendering;
        Alcotest.test_case "E9 bound holds" `Quick test_e9_table_contents;
        Alcotest.test_case "E6 decays with tau" `Quick test_e6_rows_decay;
      ] );
  ]
