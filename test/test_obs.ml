(* Tests for the observability layer: metrics registry semantics,
   scopes, the per-phase report, and — the property the whole design
   hangs on — that instrumenting a run does not change it. *)

module M = Obs.Metrics
module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Registry semantics *)

let test_counter_basic () =
  let r = M.create () in
  let c = M.counter r "sends" in
  M.incr c;
  M.add c 4;
  checki "value" 5 (M.counter_value c);
  (* find-or-create: same (name, labels) is the same cell *)
  M.incr (M.counter r "sends");
  checki "shared cell" 6 (M.counter_value c)

let test_label_canonicalization () =
  let r = M.create () in
  (* key order does not matter *)
  let a = M.counter r ~labels:[ ("b", "2"); ("a", "1") ] "x" in
  let b = M.counter r ~labels:[ ("a", "1"); ("b", "2") ] "x" in
  M.incr a;
  M.incr b;
  checki "same series" 2 (M.counter_value a);
  (* a duplicate key keeps the last binding *)
  let c = M.counter r ~labels:[ ("k", "old"); ("k", "new") ] "y" in
  let d = M.counter r ~labels:[ ("k", "new") ] "y" in
  M.incr c;
  checki "dup key keeps last" 1 (M.counter_value d);
  (* different label values are distinct series *)
  let e = M.counter r ~labels:[ ("a", "1") ] "x" in
  checki "distinct series" 0 (M.counter_value e)

let test_kind_mismatch () =
  let r = M.create () in
  ignore (M.counter r "thing");
  match M.gauge r "thing" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on kind mismatch"

let test_gauge_set_max () =
  let r = M.create () in
  let g = M.gauge r "peak" in
  M.set g 5;
  M.set_max g 3;
  checki "max keeps 5" 5 (M.gauge_value g);
  M.set_max g 9;
  checki "max takes 9" 9 (M.gauge_value g);
  M.set g 1;
  checki "set overwrites" 1 (M.gauge_value g)

let test_histogram_bucketing () =
  (* bucket 0: v <= 1 (incl. non-positive); bucket i: 2^(i-1) < v <= 2^i *)
  checki "0 -> b0" 0 (M.bucket_index 0);
  checki "1 -> b0" 0 (M.bucket_index 1);
  checki "2 -> b1" 1 (M.bucket_index 2);
  checki "3 -> b2" 2 (M.bucket_index 3);
  checki "4 -> b2" 2 (M.bucket_index 4);
  checki "5 -> b3" 3 (M.bucket_index 5);
  checki "1024 -> b10" 10 (M.bucket_index 1024);
  checki "1025 -> b11" 11 (M.bucket_index 1025);
  checki "max_int -> last" (M.num_buckets - 1) (M.bucket_index max_int);
  checki "upper of b0" 1 (M.bucket_upper 0);
  checki "upper of b3" 8 (M.bucket_upper 3);
  checki "last unbounded" max_int (M.bucket_upper (M.num_buckets - 1))

let test_histogram_snapshot () =
  let r = M.create () in
  let h = M.histogram r "lat" in
  List.iter (M.observe h) [ 3; 1; 4; 1; 5 ];
  match M.snapshot r with
  | [ { M.value = M.Histogram s; _ } ] ->
      checki "count" 5 s.M.count;
      checki "sum" 14 s.M.sum;
      checki "min" 1 s.M.hmin;
      checki "max" 5 s.M.hmax;
      checki "b0 holds the two 1s" 2 s.M.buckets.(0);
      checki "b2 holds 3 and 4" 2 s.M.buckets.(2);
      checki "b3 holds 5" 1 s.M.buckets.(3);
      check (Alcotest.array (Alcotest.float 0.)) "samples sorted"
        [| 1.; 1.; 3.; 4.; 5. |] s.M.samples
  | _ -> Alcotest.fail "expected one histogram sample"

let test_noop_sink () =
  let d = M.disabled in
  checkb "disabled" false (M.enabled d);
  checkb "created enabled" true (M.enabled (M.create ()));
  let c = M.counter d "x" and g = M.gauge d "y" and h = M.histogram d "z" in
  M.incr c;
  M.add c 10;
  M.set g 3;
  M.set_max g 99;
  M.observe h 7;
  checki "counter stays 0" 0 (M.counter_value c);
  checki "gauge stays 0" 0 (M.gauge_value g);
  checki "snapshot empty" 0 (List.length (M.snapshot d))

let test_snapshot_order_and_find () =
  let r = M.create () in
  ignore (M.counter r "b");
  ignore (M.counter r ~labels:[ ("p", "1") ] "a");
  ignore (M.counter r "c");
  let names = List.map (fun (s : M.sample) -> s.M.name) (M.snapshot r) in
  check (Alcotest.list Alcotest.string) "creation order" [ "b"; "a"; "c" ]
    names;
  (match M.find (M.snapshot r) ~labels:[ ("p", "1") ] "a" with
  | Some _ -> ()
  | None -> Alcotest.fail "find with labels");
  (* no ?labels matches any label set; an explicit set must match *)
  checkb "find without labels matches" true
    (M.find (M.snapshot r) "a" <> None);
  checkb "find misses wrong labels" true
    (M.find (M.snapshot r) ~labels:[ ("p", "2") ] "a" = None)

let test_save_load_roundtrip () =
  let r = M.create () in
  M.add (M.counter r ~labels:[ ("phase", "wave") ] "phase_rounds") 17;
  M.set (M.gauge r "peak") 9;
  let h = M.histogram r "lat" in
  List.iter (M.observe h) [ 1; 2; 300 ];
  let file = Filename.temp_file "obs" ".jsonl" in
  M.save ~extra:[ {|{"kind":"meta","n":48}|} ] r file;
  let loaded = M.load file in
  Sys.remove file;
  checki "meta line skipped, 3 samples" 3 (List.length loaded);
  (match M.find loaded ~labels:[ ("phase", "wave") ] "phase_rounds" with
  | Some { M.value = M.Counter 17; _ } -> ()
  | _ -> Alcotest.fail "counter roundtrip");
  match M.find loaded "lat" with
  | Some { M.value = M.Histogram s; _ } ->
      checki "count" 3 s.M.count;
      checki "sum" 303 s.M.sum;
      checki "max" 300 s.M.hmax;
      (* raw samples are not serialized *)
      checki "no raw samples" 0 (Array.length s.M.samples)
  | _ -> Alcotest.fail "histogram roundtrip"

(* ------------------------------------------------------------------ *)
(* Scope *)

let test_scope_labels () =
  let r = M.create () in
  let root = Obs.Scope.of_registry r in
  let ph = Obs.Scope.phase root "wave" in
  let nd = Obs.Scope.node ph 3 in
  M.incr (Obs.Scope.counter nd "sends");
  (match
     M.find (M.snapshot r) ~labels:[ ("node", "3"); ("phase", "wave") ] "sends"
   with
  | Some { M.value = M.Counter 1; _ } -> ()
  | _ -> Alcotest.fail "scope labels compose");
  (* refinement overrides: same key keeps the innermost binding *)
  let ph2 = Obs.Scope.phase ph "notify" in
  M.incr (Obs.Scope.counter ph2 "sends");
  match M.find (M.snapshot r) ~labels:[ ("phase", "notify") ] "sends" with
  | Some { M.value = M.Counter 1; _ } -> ()
  | _ -> Alcotest.fail "inner phase wins"

let test_scope_disabled () =
  let s = Obs.Scope.disabled in
  checkb "disabled" false (Obs.Scope.enabled s);
  let s' = Obs.Scope.phase s "wave" in
  checki "no labels accumulate" 0 (List.length (Obs.Scope.labels s'));
  M.incr (Obs.Scope.counter s' "x")

(* ------------------------------------------------------------------ *)
(* Report *)

let test_phase_table_totals () =
  let r = M.create () in
  let sc = Obs.Scope.of_registry r in
  List.iter
    (fun (name, rounds, msgs, words, maxw) ->
      let p = Obs.Scope.phase sc name in
      M.add (Obs.Scope.counter p "phase_rounds") rounds;
      M.add (Obs.Scope.counter p "phase_messages") msgs;
      M.add (Obs.Scope.counter p "phase_words") words;
      M.set_max (Obs.Scope.gauge p "phase_max_message_words") maxw)
    [ ("exchange", 10, 100, 250, 3); ("wave", 5, 40, 41, 2) ];
  let rows = Obs.Report.phase_rows (M.snapshot r) in
  checki "two rows" 2 (List.length rows);
  checks "first-appearance order" "exchange"
    (List.hd rows).Obs.Report.phase;
  let t = Obs.Report.totals rows in
  checki "rounds sum" 15 t.Obs.Report.rounds;
  checki "messages sum" 140 t.Obs.Report.messages;
  checki "words sum" 291 t.Obs.Report.words;
  checki "max of max" 3 t.Obs.Report.max_words

let test_hist_percentile_from_buckets () =
  (* A snapshot parsed back from disk has buckets only: the percentile
     falls back to nearest-rank over buckets, reported as upper bound. *)
  let r = M.create () in
  let h = M.histogram r "lat" in
  for _ = 1 to 9 do M.observe h 1 done;
  M.observe h 100;
  let file = Filename.temp_file "obs" ".jsonl" in
  M.save r file;
  let loaded = M.load file in
  Sys.remove file;
  match M.find loaded "lat" with
  | Some { M.value = M.Histogram s; _ } ->
      check (Alcotest.float 1e-9) "p50 from buckets" 1.
        (Obs.Report.hist_percentile s 0.5);
      check (Alcotest.float 1e-9) "p99 hits last occupied bucket" 128.
        (Obs.Report.hist_percentile s 0.99)
  | _ -> Alcotest.fail "histogram missing"

(* ------------------------------------------------------------------ *)
(* The transparency property: metrics must not change the run. *)

let build_once ~metrics ~n ~seed ~drop =
  let rng = Util.Prng.create ~seed in
  let g = Graphlib.Gen.connected_gnp rng ~n ~p:(6. /. float_of_int n) in
  let faults =
    if drop = 0. then Distnet.Fault.none
    else
      Distnet.Fault.make ~seed:(seed + 31)
        { Distnet.Fault.default_spec with Distnet.Fault.drop }
  in
  let r = Spanner.Skeleton_dist.build ~faults ~metrics ~seed g in
  let edges = ref [] in
  Edge_set.iter r.Spanner.Skeleton_dist.spanner (fun e ->
      edges := e :: !edges);
  (List.rev !edges, r.Spanner.Skeleton_dist.stats)

let prop_metrics_transparent =
  QCheck.Test.make ~count:12 ~name:"metrics on/off: identical run"
    QCheck.(pair (int_range 12 40) (int_range 0 1))
    (fun (n, drop_flag) ->
      let seed = 11 + n and drop = if drop_flag = 1 then 0.2 else 0. in
      let off = build_once ~metrics:M.disabled ~n ~seed ~drop in
      let on = build_once ~metrics:(M.create ()) ~n ~seed ~drop in
      off = on)

let test_phase_totals_equal_stats () =
  (* The table's totals row is exact, not approximate: it must equal
     the run's own stats on every axis. *)
  List.iter
    (fun drop ->
      let reg = M.create () in
      let _, (stats : Distnet.Sim.stats) =
        build_once ~metrics:reg ~n:32 ~seed:5 ~drop
      in
      let t = Obs.Report.totals (Obs.Report.phase_rows (M.snapshot reg)) in
      checki "rounds" stats.Distnet.Sim.rounds t.Obs.Report.rounds;
      checki "messages" stats.Distnet.Sim.messages t.Obs.Report.messages;
      checki "words" stats.Distnet.Sim.words t.Obs.Report.words;
      checki "max words" stats.Distnet.Sim.max_message_words
        t.Obs.Report.max_words)
    [ 0.; 0.25 ]

(* ------------------------------------------------------------------ *)
(* Audit *)

let test_audit_pass_and_warn () =
  let plan = Spanner.Plan.make ~n:72 ~d:4 ~eps:0.5 () in
  let stats =
    { Distnet.Sim.rounds = 100; messages = 0; words = 0; max_message_words = 3 }
  in
  let rep =
    Spanner.Audit.run ~spanner_edges:90 ~phase_rounds:[ ("wave", 40) ] ~plan
      ~stats ()
  in
  checkb "all pass" true (Spanner.Audit.ok rep);
  checki "rounds, words, size + 1 phase" 4 (List.length rep.Spanner.Audit.bounds);
  let bad =
    Spanner.Audit.run ~plan
      ~stats:{ stats with Distnet.Sim.max_message_words = 1000 }
      ()
  in
  checkb "oversize message warns" false (Spanner.Audit.ok bad)

let suite =
  [
    ( "obs.metrics",
      [
        Alcotest.test_case "counter basics" `Quick test_counter_basic;
        Alcotest.test_case "label canonicalization" `Quick
          test_label_canonicalization;
        Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
        Alcotest.test_case "gauge set_max" `Quick test_gauge_set_max;
        Alcotest.test_case "histogram bucketing" `Quick
          test_histogram_bucketing;
        Alcotest.test_case "histogram snapshot" `Quick test_histogram_snapshot;
        Alcotest.test_case "no-op sink" `Quick test_noop_sink;
        Alcotest.test_case "snapshot order + find" `Quick
          test_snapshot_order_and_find;
        Alcotest.test_case "save/load roundtrip" `Quick
          test_save_load_roundtrip;
      ] );
    ( "obs.scope",
      [
        Alcotest.test_case "label composition" `Quick test_scope_labels;
        Alcotest.test_case "disabled scope" `Quick test_scope_disabled;
      ] );
    ( "obs.report",
      [
        Alcotest.test_case "phase table totals" `Quick test_phase_table_totals;
        Alcotest.test_case "percentile from buckets" `Quick
          test_hist_percentile_from_buckets;
      ] );
    ( "obs.transparency",
      [
        QCheck_alcotest.to_alcotest prop_metrics_transparent;
        Alcotest.test_case "phase totals equal stats" `Quick
          test_phase_totals_equal_stats;
      ] );
    ( "obs.audit",
      [ Alcotest.test_case "pass and warn" `Quick test_audit_pass_and_warn ] );
  ]
