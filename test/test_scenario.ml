(* Tests for the scenario layer: the distribution DSL, the
   Gilbert–Elliott channel, spec/plan text round-trips, compile
   determinism, and the shrinker. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

module Dsl = Scenario.Dsl
module Spec = Scenario.Spec
module Compile = Scenario.Compile
module Shrink = Scenario.Shrink
module Sweep = Scenario.Sweep
module Fault = Distnet.Fault

(* ------------------------------------------------------------------ *)
(* DSL: validation, text form, draws *)

let test_dsl_round_trip () =
  List.iter
    (fun d ->
      let s = Dsl.to_string d in
      match Dsl.parse s with
      | Ok d' ->
          checkb (Printf.sprintf "%s reparses to itself" s) true (d = d');
          checks (Printf.sprintf "%s is canonical" s) s (Dsl.to_string d')
      | Error m -> Alcotest.failf "%s did not parse: %s" s m)
    [
      Dsl.Const 5.;
      Dsl.Uniform { lo = 1.; hi = 40. };
      Dsl.Geometric 0.25;
      Dsl.Pareto { alpha = 1.5; xm = 3. };
      Dsl.Zipf { n = 100; s = 1.2 };
      Dsl.Const 0.1;
      Dsl.Uniform { lo = 0.; hi = 0. };
    ]

let test_dsl_parse_errors () =
  let expect_err s =
    match Dsl.parse s with
    | Ok _ -> Alcotest.failf "%S unexpectedly parsed" s
    | Error _ -> ()
  in
  List.iter expect_err
    [ ""; "const:"; "uniform:5"; "uniform:9..1"; "geometric:0"; "geometric:1.5";
      "pareto:1.5"; "pareto:-1,3"; "zipf:0,1"; "gaussian:0,1" ]

let test_dsl_draws_in_support () =
  let r = Util.Prng.create ~seed:42 in
  for _ = 1 to 500 do
    let u = Dsl.draw r (Dsl.Uniform { lo = 2.; hi = 7. }) in
    checkb "uniform in [lo,hi]" true (u >= 2. && u <= 7.);
    let p = Dsl.draw r (Dsl.Pareto { alpha = 1.5; xm = 3. }) in
    checkb "pareto >= xm" true (p >= 3.);
    let z = Dsl.draw_int r (Dsl.Zipf { n = 10; s = 1.1 }) in
    checkb "zipf rank in [0,n)" true (z >= 0 && z < 10)
  done

(* ------------------------------------------------------------------ *)
(* Properties *)

(* The geometric sampler is exact inversion, so its empirical tail
   must track the analytic [(1-p)^k] decay. *)
let prop_geometric_tail_decay =
  QCheck.Test.make ~name:"dsl: geometric tail matches (1-p)^k" ~count:25
    QCheck.(pair (int_range 1 3) (int_range 0 1000))
    (fun (k, pi) ->
      let p = 0.1 +. (0.5 *. float_of_int pi /. 1000.) in
      let r = Util.Prng.create ~seed:((k * 100003) + pi) in
      let n = 4000 in
      let tail = ref 0 in
      for _ = 1 to n do
        if Dsl.draw_int r (Dsl.Geometric p) >= k then incr tail
      done;
      let empirical = float_of_int !tail /. float_of_int n in
      let analytic = (1. -. p) ** float_of_int k in
      Float.abs (empirical -. analytic) < 0.03)

(* Zipf: the empirical mass of rank 0 must match [1 / H_{n,s}]. *)
let prop_zipf_head_mass =
  QCheck.Test.make ~name:"dsl: zipf head mass matches 1/H(n,s)" ~count:20
    QCheck.(pair (int_range 2 30) (int_range 0 150))
    (fun (n, si) ->
      let s = 0.5 +. (float_of_int si /. 100.) in
      let r = Util.Prng.create ~seed:((n * 7919) + si) in
      let draws = 4000 in
      let hits = ref 0 in
      for _ = 1 to draws do
        if Dsl.draw_int r (Dsl.Zipf { n; s }) = 0 then incr hits
      done;
      let empirical = float_of_int !hits /. float_of_int draws in
      let h = ref 0. in
      for i = 1 to n do
        h := !h +. (float_of_int i ** -.s)
      done;
      Float.abs (empirical -. (1. /. !h)) < 0.05)

(* The Gilbert–Elliott profile's time-weighted loss must track the
   chain's stationary rate once the horizon dwarfs the mixing time. *)
let prop_ge_profile_matches_stationary =
  QCheck.Test.make ~name:"dsl: GE profile loss ~ stationary rate" ~count:20
    QCheck.(triple (int_range 5 50) (int_range 5 50) (int_range 0 100))
    (fun (gb, bg, li) ->
      let ge =
        {
          Dsl.p_gb = float_of_int gb /. 100.;
          p_bg = float_of_int bg /. 100.;
          loss_good = 0.01;
          loss_bad = 0.3 +. (0.5 *. float_of_int li /. 100.);
        }
      in
      let horizon = 8000 in
      let r = Util.Prng.create ~seed:((gb * 1009) + (bg * 31) + li) in
      let profile = Dsl.ge_profile r ge ~horizon in
      (* Structure: strictly increasing rounds from 0, rates in [0,1],
         closed by a loss-free terminator at the horizon. *)
      checkb "profile starts at round 0" true
        (match profile with (0, _) :: _ -> true | _ -> false);
      let rec wf prev = function
        | [] -> true
        | (rd, rate) :: rest ->
            rd > prev && rate >= 0. && rate <= 1. && wf rd rest
      in
      (match profile with
      | first :: rest -> checkb "segments well-formed" true (wf (fst first) rest)
      | [] -> Alcotest.fail "empty profile");
      checkb "terminator closes the horizon" true
        (List.exists (fun seg -> seg = (horizon, 0.)) profile);
      (* Time-weighted loss over the modeled window. *)
      let weighted = ref 0. in
      let rec accum = function
        | (rd, rate) :: ((rd', _) :: _ as rest) when rd < horizon ->
            weighted := !weighted +. (float_of_int (min rd' horizon - rd) *. rate);
            accum rest
        | [ (rd, rate) ] when rd < horizon ->
            weighted := !weighted +. (float_of_int (horizon - rd) *. rate)
        | _ -> ()
      in
      accum profile;
      let empirical = !weighted /. float_of_int horizon in
      Float.abs (empirical -. Dsl.ge_stationary_loss ge) < 0.1)

(* Compiling is a pure function of (spec, sample): same inputs, same
   plan bytes — the property that makes plan files durable artifacts. *)
let prop_compile_deterministic =
  QCheck.Test.make ~name:"compile: same spec+sample => same bytes" ~count:20
    QCheck.(pair (int_bound 4) (int_bound 7))
    (fun (which, sample) ->
      let _, spec = List.nth Spec.builtins (which mod List.length Spec.builtins) in
      let a = Compile.to_string (Compile.compile spec ~sample) in
      let b = Compile.to_string (Compile.compile spec ~sample) in
      a = b)

(* ------------------------------------------------------------------ *)
(* Spec files *)

let test_spec_round_trip_builtins () =
  List.iter
    (fun (name, spec) ->
      let text = Spec.to_string spec in
      match Spec.parse text with
      | Ok spec' ->
          checkb (name ^ " round-trips structurally") true (spec = spec');
          checks (name ^ " is canonical") text (Spec.to_string spec')
      | Error m -> Alcotest.failf "%s did not reparse: %s" name m)
    Spec.builtins

let test_spec_parse_errors_cite_line () =
  let expect text msg =
    match Spec.parse text with
    | Ok _ -> Alcotest.failf "expected %S to fail" text
    | Error m -> checks "error text" msg m
  in
  expect "#scenario v1\nname demo\nloss iid\n"
    "scenario spec line 3: missing rate=";
  expect "#scenario v1\nname demo\n\nstorm frac=0.5 spread=0.1\n"
    "scenario spec line 4: missing rounds=";
  expect "#scenario v1\nname demo\nchurn events=gaussian:3 gap=const:5 skew=1 down=const:4\n"
    "scenario spec line 3: bad distribution \"gaussian:3\" (want const:C, \
     uniform:LO..HI, geometric:P, pareto:ALPHA,XM, or zipf:N,S)"

let test_spec_validate_names_field () =
  let bad = { Spec.default with Spec.dup = 1.5 } in
  (match Spec.validate bad with
  | Error m -> checks "dup named" "dup 1.5 not in [0,1]" m
  | Ok () -> Alcotest.fail "dup 1.5 accepted");
  match Spec.validate { Spec.default with Spec.n = 1 } with
  | Error m -> checks "n named" "graph n 1 < 2" m
  | Ok () -> Alcotest.fail "n=1 accepted"

(* ------------------------------------------------------------------ *)
(* Plan files *)

let test_plan_round_trip () =
  List.iter
    (fun (name, spec) ->
      let plan = Compile.compile spec ~sample:0 in
      let text = Compile.to_string plan in
      match Compile.parse text with
      | Ok plan' ->
          checkb (name ^ " plan round-trips") true (plan = plan');
          checks (name ^ " plan canonical") text (Compile.to_string plan')
      | Error m -> Alcotest.failf "%s plan did not reparse: %s" name m)
    Spec.builtins

(* Restart plans are the newest event vocabulary in #plan v1: every
   sampled restart-storm plan (which carries restart lines) must
   round-trip byte-for-byte — parse back to the same value AND
   reserialize to the same bytes. *)
let prop_restart_plan_round_trip =
  QCheck.Test.make ~name:"plan: restart plans round-trip byte-for-byte"
    ~count:20
    QCheck.(int_bound 19)
    (fun sample ->
      let spec = Option.get (Spec.builtin "restart-storm") in
      let plan = Compile.compile spec ~sample in
      QCheck.assume (plan.Compile.fspec.Fault.restarts <> []);
      let text = Compile.to_string plan in
      match Compile.parse text with
      | Ok plan' -> plan = plan' && Compile.to_string plan' = text
      | Error _ -> false)

let test_plan_save_load () =
  let plan =
    Compile.compile (Option.get (Spec.builtin "mixed")) ~sample:3
  in
  let path = Filename.temp_file "scenario" ".plan" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Compile.save plan path;
  match Compile.load path with
  | Ok plan' -> checkb "load = save" true (plan = plan')
  | Error m -> Alcotest.failf "load failed: %s" m

(* ------------------------------------------------------------------ *)
(* Shrinking *)

(* A structural predicate lets the ddmin core be tested without paying
   for real runs: "still has a churn event" must minimize to exactly
   one churn event, every rate zeroed, workload gone. *)
(* The churn draw is sample-dependent, so pick (deterministically) a
   sample with enough events to make minimization non-trivial. *)
let churny_plan spec ~at_least =
  let rec find s =
    if s > 19 then Alcotest.fail "no sufficiently churny sample in 0..19"
    else
      let p = Compile.compile spec ~sample:s in
      if List.length p.Compile.fspec.Fault.churn >= at_least then p
      else find (s + 1)
  in
  find 0

let test_shrink_minimizes_structurally () =
  let spec = Option.get (Spec.builtin "mixed") in
  let plan = churny_plan spec ~at_least:4 in
  let fails p = p.Compile.fspec.Fault.churn <> [] in
  let r = Shrink.shrink ~fails plan in
  checkb "verified" true r.Shrink.verified;
  checki "churn minimized to one event" 1
    (List.length r.Shrink.plan.Compile.fspec.Fault.churn);
  checki "crashes dropped" 0
    (List.length r.Shrink.plan.Compile.fspec.Fault.crashes);
  checkb "drop rate zeroed" true (r.Shrink.plan.Compile.fspec.Fault.drop = 0.);
  checkb "profile dropped" true
    (r.Shrink.plan.Compile.fspec.Fault.drop_profile = []);
  checkb "workload dropped" true (r.Shrink.plan.Compile.workload = None);
  checkb "weight decreased" true
    (Shrink.weight r.Shrink.plan < Shrink.weight plan);
  checkb "evals counted" true (r.Shrink.evals > 0)

let test_shrink_drops_restarts_and_reverifies () =
  (* When the failure only needs a crash, every restart is pure weight:
     the shrinker must demote crash-recovery to plain crash-stop, and
     the shrunk reproducer must still validate (no restart may survive
     the crash it belongs to) and round-trip as a plan file. *)
  let spec = Option.get (Spec.builtin "restart-storm") in
  let plan =
    let rec find s =
      if s > 19 then Alcotest.fail "no sample with >= 2 restarts in 0..19"
      else
        let p = Compile.compile spec ~sample:s in
        if List.length p.Compile.fspec.Fault.restarts >= 2 then p
        else find (s + 1)
    in
    find 0
  in
  let fails p = p.Compile.fspec.Fault.crashes <> [] in
  let r = Shrink.shrink ~fails plan in
  checkb "verified" true r.Shrink.verified;
  checki "restarts all dropped" 0
    (List.length r.Shrink.plan.Compile.fspec.Fault.restarts);
  checki "one crash left" 1
    (List.length r.Shrink.plan.Compile.fspec.Fault.crashes);
  (* The shrunk plan is still a valid, buildable fault plan... *)
  (match Compile.faults ~graph:(Compile.graph_of r.Shrink.plan) r.Shrink.plan with
  | exception Invalid_argument m -> Alcotest.failf "shrunk plan invalid: %s" m
  | f -> checkb "demoted to crash-stop" false (Fault.has_restarts f));
  (* ... and still a durable #plan v1 artifact. *)
  let text = Compile.to_string r.Shrink.plan in
  match Compile.parse text with
  | Ok plan' -> checkb "shrunk plan round-trips" true (plan' = r.Shrink.plan)
  | Error m -> Alcotest.failf "shrunk plan did not reparse: %s" m

let test_shrink_keeps_needed_restart () =
  (* Dual of the test above: when the failure predicate *requires* a
     restart, the shrinker may trim the herd but must keep one, and the
     kept restart's crash entry must survive with it. *)
  let spec = Option.get (Spec.builtin "restart-storm") in
  let plan =
    let rec find s =
      if s > 19 then Alcotest.fail "no sample with >= 2 restarts in 0..19"
      else
        let p = Compile.compile spec ~sample:s in
        if List.length p.Compile.fspec.Fault.restarts >= 2 then p
        else find (s + 1)
    in
    find 0
  in
  let fails p = p.Compile.fspec.Fault.restarts <> [] in
  let r = Shrink.shrink ~fails plan in
  checkb "verified" true r.Shrink.verified;
  checki "exactly one restart kept" 1
    (List.length r.Shrink.plan.Compile.fspec.Fault.restarts);
  let v, _ = List.hd r.Shrink.plan.Compile.fspec.Fault.restarts in
  checkb "its crash entry kept too" true
    (List.mem_assoc v r.Shrink.plan.Compile.fspec.Fault.crashes);
  match Compile.faults ~graph:(Compile.graph_of r.Shrink.plan) r.Shrink.plan with
  | exception Invalid_argument m -> Alcotest.failf "shrunk plan invalid: %s" m
  | f -> checkb "still crash-recovery" true (Fault.has_restarts f)

let test_shrink_respects_eval_budget () =
  let plan = churny_plan (Option.get (Spec.builtin "mixed")) ~at_least:2 in
  let evals = ref 0 in
  let fails p =
    incr evals;
    p.Compile.fspec.Fault.churn <> []
  in
  let r = Shrink.shrink ~max_evals:5 ~fails plan in
  (* The cap bounds candidate evaluations; the final verification is
     deliberately one extra, uncapped call. *)
  checkb "stayed within budget" true (!evals <= 6);
  checkb "reported evals within budget" true (r.Shrink.evals <= 6);
  checkb "capped run still verifies" true r.Shrink.verified

(* ------------------------------------------------------------------ *)
(* Sweep (one sample end to end, kept tiny) *)

let test_sweep_single_sample_certifies () =
  let spec = { Spec.default with Spec.name = "clean"; n = 32; p = 0.2 } in
  let agg = Sweep.run spec ~samples:2 in
  checki "both samples survive" 0 (Sweep.failed agg);
  checki "all intact" 2 agg.Sweep.intact;
  checkb "stretch bound respected" true
    (agg.Sweep.worst_stretch <= agg.Sweep.stretch_bound)

let test_sweep_over_budget_fails_and_replays () =
  (* tight-budget is built to FAIL: every sample must come back
     over-budget, and re-running the reported plan must reproduce. *)
  let spec = Option.get (Spec.builtin "tight-budget") in
  let agg = Sweep.run spec ~samples:1 in
  checki "sample failed" 1 (Sweep.failed agg);
  match agg.Sweep.failures with
  | [ rep ] -> (
      match rep.Sweep.outcome with
      | Sweep.Failed (Sweep.Over_budget { rounds; budget }) ->
          checkb "rounds exceed budget" true (rounds > budget);
          let rep' = Sweep.run_plan rep.Sweep.plan in
          checkb "replay reproduces the failure class" true
            (match rep'.Sweep.outcome with
            | Sweep.Failed (Sweep.Over_budget _) -> true
            | _ -> false)
      | o ->
          Alcotest.failf "expected over-budget, got %s"
            (match o with
            | Sweep.Certified _ -> "certified"
            | Sweep.Failed f -> Sweep.failure_tag f))
  | l -> Alcotest.failf "expected one failure report, got %d" (List.length l)

let suite =
  [
    ( "scenario.dsl",
      [
        Alcotest.test_case "text round trip" `Quick test_dsl_round_trip;
        Alcotest.test_case "parse errors" `Quick test_dsl_parse_errors;
        Alcotest.test_case "draws stay in support" `Quick test_dsl_draws_in_support;
        QCheck_alcotest.to_alcotest prop_geometric_tail_decay;
        QCheck_alcotest.to_alcotest prop_zipf_head_mass;
        QCheck_alcotest.to_alcotest prop_ge_profile_matches_stationary;
      ] );
    ( "scenario.spec",
      [
        Alcotest.test_case "builtins round trip" `Quick test_spec_round_trip_builtins;
        Alcotest.test_case "parse errors cite line" `Quick
          test_spec_parse_errors_cite_line;
        Alcotest.test_case "validate names field" `Quick test_spec_validate_names_field;
      ] );
    ( "scenario.compile",
      [
        QCheck_alcotest.to_alcotest prop_compile_deterministic;
        Alcotest.test_case "plan round trip" `Quick test_plan_round_trip;
        QCheck_alcotest.to_alcotest prop_restart_plan_round_trip;
        Alcotest.test_case "plan save/load" `Quick test_plan_save_load;
      ] );
    ( "scenario.shrink",
      [
        Alcotest.test_case "minimizes structurally" `Quick
          test_shrink_minimizes_structurally;
        Alcotest.test_case "drops restarts and re-verifies" `Quick
          test_shrink_drops_restarts_and_reverifies;
        Alcotest.test_case "keeps a needed restart" `Quick
          test_shrink_keeps_needed_restart;
        Alcotest.test_case "respects eval budget" `Quick
          test_shrink_respects_eval_budget;
      ] );
    ( "scenario.sweep",
      [
        Alcotest.test_case "clean family certifies" `Quick
          test_sweep_single_sample_certifies;
        Alcotest.test_case "tight budget fails and replays" `Quick
          test_sweep_over_budget_fails_and_replays;
      ] );
  ]
