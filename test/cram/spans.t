Causal tracing: --spans writes a span log (one span per message plus
the structural phase/call/cluster spans), report mines it for the
critical path, and --perfetto exports a Chrome trace.

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.2 --seed 3 --spans s.jsonl
  graph: n=48, m=231, avg deg 9.62, max deg 17
  spanner: 70 edges, 0 aborts
  network: rounds=35 messages=2461 words=4293 max_msg=3 words
  spans written to s.jsonl (2548 spans)

Without the flag the output is byte-identical to the uninstrumented
CLI (the sink is the shared no-op):

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.2 --seed 3
  graph: n=48, m=231, avg deg 9.62, max deg 17
  spanner: 70 edges, 0 aborts
  network: rounds=35 messages=2461 words=4293 max_msg=3 words

The span file leads with a meta header; spans are JSONL in creation
order:

  $ head -c 115 s.jsonl; echo
  {"kind":"span_meta","algo":"skeleton","n":48,"arq":0,"rounds":35,"messages":2461,"words":4293,"max_message_words":3
  $ head -2 s.jsonl | tail -1
  {"kind":"span","id":0,"sk":"call","name":"call-0","src":-1,"dst":-1,"words":0,"start":0,"stop":3,"status":"delivered"}

report recognizes a spans file and summarizes it:

  $ ../../bin/spanner_cli.exe report s.jsonl
  spans report: s.jsonl
    run: algo=skeleton n=48 arq=0 rounds=35 messages=2461 words=4293 max_message_words=3
    2548 spans: 2461 messages (2461 delivered, 0 dropped), 33 phases, 5 calls, 49 clusters, 0 arq, 0 retransmissions

--critical-path walks the happens-before DAG back from quiescence; on
this loss-free run the chain length equals the run's 35 rounds, and
the per-phase table sums exactly to it:

  $ ../../bin/spanner_cli.exe report s.jsonl --critical-path --top 2
  spans report: s.jsonl
    run: algo=skeleton n=48 arq=0 rounds=35 messages=2461 words=4293 max_message_words=3
    2548 spans: 2461 messages (2461 delivered, 0 dropped), 33 phases, 5 calls, 49 clusters, 0 arq, 0 retransmissions
  critical path: 35 rounds (round 0 -> 35), 30 hops, 0 retransmission(s) on path
    hop          link  words   send   dlvr  slack  retr  phase
      1        12->10      2      0      1      0     0  exchange
      2        10->16      1      2      3      1     0  death-notices
      3         16->7      2      3      4      0     0  exchange
      4         7->39      3      4      5      0     0  convergecast
      5         39->7      2      5      6      0     0  wave
      6         7->23      2      7      8      1     0  exchange
      7        23->45      1      8      9      0     0  convergecast
      8        45->19      3      9     10      0     0  convergecast
      9         19->1      3     10     11      0     0  convergecast
     10         1->11      3     11     12      0     0  convergecast
     11         11->4      2     12     13      0     0  wave
     12         4->39      2     13     14      0     0  wave
     13         39->7      2     14     15      0     0  wave
     14         7->23      2     17     18      2     0  exchange
     15        23->45      1     18     19      0     0  convergecast
     16        45->19      1     19     20      0     0  convergecast
     17         19->1      1     20     21      0     0  convergecast
     18         1->11      1     21     22      0     0  convergecast
     19         11->1      1     22     23      0     0  wave
     20          1->3      1     23     24      0     0  wave
     21         3->27      1     24     25      0     0  wave
     22        27->22      1     25     26      0     0  wave
     23        22->27      1     26     27      0     0  dying
     24         27->3      1     27     28      0     0  dying
     25          3->1      1     28     29      0     0  dying
     26         1->11      1     29     30      0     0  dying
     27         11->8      1     30     31      0     0  final
     28         8->38      1     31     32      0     0  final
     29        38->46      1     32     33      0     0  final
     30        46->20      1     34     35      1     0  death-notices
  per-phase critical path:
    phase             hops  rounds  transit  slack  retr
    exchange             4       4        4      0     0
    notify               0       3        0      3     0
    death-notices        2       2        2      0     0
    convergecast         9       9        9      0     0
    wave                 8       9        8      1     0
    dying                4       4        4      0     0
    final                3       4        3      1     0
    total               30      35       30      5     0
    chain #2: 35 rounds, 30 hops, terminal 46->33 @ round 35

--perfetto writes a Chrome/Perfetto trace:

  $ ../../bin/spanner_cli.exe report s.jsonl --perfetto trace.json
  spans report: s.jsonl
    run: algo=skeleton n=48 arq=0 rounds=35 messages=2461 words=4293 max_message_words=3
    2548 spans: 2461 messages (2461 delivered, 0 dropped), 33 phases, 5 calls, 49 clusters, 0 arq, 0 retransmissions
  perfetto trace written to trace.json (2551 events)
  $ head -c 60 trace.json; echo
  {"traceEvents":[
  {"ph":"M","pid":0,"tid":0,"name":"process_n

The critical-path flags require a spans file:

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 16 -p 0.3 --seed 1 --trace t.jsonl > /dev/null
  $ ../../bin/spanner_cli.exe report t.jsonl --critical-path
  spanner_cli: report --critical-path/--perfetto need a spans file (simulate --spans), but t.jsonl is not one
  [1]

Ties in the top-k ranking are broken by span id, so the report is
deterministic whatever order the log lists equal terminals:

  $ cat > tie.jsonl <<'EOF'
  > {"kind":"span","id":0,"sk":"message","src":0,"dst":1,"words":1,"start":0,"stop":1,"ls":1,"ld":2,"status":"delivered"}
  > {"kind":"span","id":1,"sk":"message","src":1,"dst":3,"words":1,"start":1,"stop":2,"ls":3,"ld":4,"status":"delivered"}
  > {"kind":"span","id":2,"sk":"message","src":1,"dst":2,"words":1,"start":1,"stop":2,"ls":5,"ld":6,"status":"delivered"}
  > EOF
  $ ../../bin/spanner_cli.exe report tie.jsonl --critical-path --top 2
  spans report: tie.jsonl
    3 spans: 3 messages (3 delivered, 0 dropped), 0 phases, 0 calls, 0 clusters, 0 arq, 0 retransmissions
  critical path: 2 rounds (round 0 -> 2), 2 hops, 0 retransmission(s) on path
    hop          link  words   send   dlvr  slack  retr  phase
      1          0->1      1      0      1      0     0  -
      2          1->3      1      1      2      0     0  -
  per-phase critical path:
    phase             hops  rounds  transit  slack  retr
    (none)               2       2        2      0     0
    total                2       2        2      0     0
    chain #2: 2 rounds, 2 hops, terminal 1->2 @ round 2

A malformed span line is a structured error naming the line:

  $ printf '%s\n%s\n' '{"kind":"span","id":0,"sk":"message","src":0,"dst":1,"words":1,"start":0,"stop":1,"status":"delivered"}' 'garbage' > bad.jsonl
  $ ../../bin/spanner_cli.exe report bad.jsonl --critical-path 2>&1 | head -1
  spanner_cli: Span.load: bad.jsonl: line 2: missing field "kind": garbage
