The query-serving subsystem end-to-end: freeze a spanner snapshot,
answer a seeded workload, survive a mid-run churn swap, and audit the
answers against BFS ground truth.  Latency/throughput lives on a single
`latency:`-prefixed line, which we filter; everything else is pinned.

  $ ../../bin/spanner_cli.exe serve --kind gnp -n 200 -p 0.04 --seed 2 --queries 3000 --zipf 1.1 --route-frac 0.3 --edge-drop 0-60@10,0-141@12 | grep -v '^latency:'
  graph: n=200, m=767, avg deg 7.67, max deg 16
  spanner: 278 edges
  workload: 3000 queries (914 routes), seed 43
  snapshot: gen=0 edges=278 oracle k=2 entries=4559 routing=on
  churn landed: epoch 1, serving stale from gen 0
  swap: published gen=1 edges=281 oracle k=2 entries=4668 routing=on (1 swap)
  served 3000 queries, 0 failed, 1000 stale
  generations: gen0=2000 (stale 1000) gen1=1000
  audit: 64 sampled answers vs BFS ground truth, 0 violations (max stretch 2.33, bound 3.0): PASS
  bounds: skeleton distortion <= 3913.65 (Theorem 2), oracle stretch <= 3

A snapshot persists and serves again without the input graph:

  $ ../../bin/spanner_cli.exe serve --kind gnp -n 120 -p 0.05 --seed 3 --queries 500 --routing --snapshot-out snap.txt | grep -v '^latency:'
  graph: n=120, m=357, avg deg 5.95, max deg 12
  spanner: 180 edges
  workload: 500 queries (0 routes), seed 44
  snapshot: gen=0 edges=180 oracle k=2 entries=2347 routing=on
  snapshot written to snap.txt
  served 500 queries, 0 failed, 0 stale
  generations: gen0=500
  audit: 64 sampled answers vs BFS ground truth, 0 violations (max stretch 2.50, bound 3.0): PASS
  bounds: skeleton distortion <= 3536.33 (Theorem 2), oracle stretch <= 3

  $ head -1 snap.txt
  #snapshot gen=0 k=2 seed=3 routing=1 sum=0x7b2db295 bytes=1095

  $ ../../bin/spanner_cli.exe serve --snapshot-in snap.txt --queries 200 | grep -v '^latency:'
  snapshot loaded from snap.txt
  workload: 200 queries (0 routes), seed 42
  snapshot: gen=0 edges=180 oracle k=2 entries=2347 routing=on
  served 200 queries, 0 failed, 0 stale
  generations: gen0=200
  audit: 64 sampled answers vs BFS ground truth, 0 violations (max stretch 3.00, bound 3.0): PASS

A loaded snapshot cannot be rebuilt, so churn flags are rejected:

  $ ../../bin/spanner_cli.exe serve --snapshot-in snap.txt --edge-drop 0-5@10
  spanner_cli: serve --snapshot-in cannot take churn flags (a rebuild needs the full input graph)
  [1]

One-off queries against the saved snapshot, distances and routes:

  $ ../../bin/spanner_cli.exe query --snapshot-in snap.txt --queries 5
  snapshot: gen=0 edges=180 oracle k=2 entries=2347 routing=on
    d(60,47) = 6 [gen 0]
    d(57,48) = 6 [gen 0]
    d(63,86) = 1 [gen 0]
    d(13,58) = 7 [gen 0]
    d(116,26) = 6 [gen 0]

  $ ../../bin/spanner_cli.exe query --snapshot-in snap.txt --route 5,17 0,119
  snapshot: gen=0 edges=180 oracle k=2 entries=2347 routing=on
    hops(5,17) = 5 [gen 0]
    hops(0,119) = 5 [gen 0]

Workloads round-trip through files, preserving every query:

  $ ../../bin/spanner_cli.exe serve --kind gnp -n 120 -p 0.05 --seed 3 --queries 200 --workload-out w.txt | grep '^workload'
  workload: 200 queries (0 routes), seed 44
  workload written to w.txt

  $ ../../bin/spanner_cli.exe serve --kind gnp -n 120 -p 0.05 --seed 3 --workload w.txt | grep '^workload'
  workload: 200 queries (0 routes) from w.txt
