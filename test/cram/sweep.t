The resilience sweep: sample scenario families, judge every run, and
shrink failures to minimal replayable plan files.

The tight-budget family is built to fail: its round budget sits below
what its churn costs.  Every sample must FAIL over-budget, and every
failure must shrink to a small verified reproducer (exit stays 0
because the reproducers verify; unshrunk failures would exit 1):

  $ ../../bin/spanner_cli.exe sweep --spec tight-budget --samples 2 \
  >   --out-dir out --shrink-evals 60 --json sweep.json
  scenario tight-budget: 2 samples: 0 intact, 0 patched, 0 degraded, 0 partitioned, 2 FAIL
  worst: 175 rounds, 9598 words, 60 spanner edges, stretch 9.00 (bound 2859.50)
    sample 0: FAIL, over budget: 154 rounds > 100
    sample 1: FAIL, over budget: 175 rounds > 100
    reproducer: out/tight-budget-s0.plan (over-budget, weight 12 -> 1, 6 evals, verified true)
    reproducer: out/tight-budget-s1.plan (over-budget, weight 12 -> 1, 6 evals, verified true)
  report written to sweep.json

The shrunk reproducer is a minimal, fully explicit plan — here a
single late link-heal is all it takes to push the run past its budget:

  $ cat out/tight-budget-s0.plan
  #plan v1
  scenario tight-budget
  sample 0
  graph kind=gnp n=48 p=0.15 seed=5
  fault_seed 256194846
  up 25-45@102
  budget rounds=100

Replaying the reproducer reproduces the failure, and says so via the
exit code:

  $ ../../bin/spanner_cli.exe sweep --replay out/tight-budget-s0.plan
  plan tight-budget sample 0: FAIL (over-budget)
  rounds 102, messages 3934, words 7353, spanner 53 edges
  [3]

The JSON report is one line per family with the failures inlined:

  $ cat sweep.json
  {"kind":"sweep","scenario":"tight-budget","samples":2,"intact":0,"patched":0,"degraded":0,"partitioned":0,"failed":2,"worst_rounds":175,"worst_words":9598,"worst_size":60,"worst_stretch":9,"stretch_bound":2859.5,"failures":[{"sample":0,"reason":"over-budget","rounds":154},{"sample":1,"reason":"over-budget","rounds":175}]}

Scenario specs are plain text, so a family can live in a file:

  $ cat > demo.scenario <<'EOF'
  > #scenario v1
  > name demo
  > graph kind=gnp n=32 p=0.2 seed=11
  > loss iid rate=0.05
  > EOF
  $ ../../bin/spanner_cli.exe sweep --spec demo.scenario --samples 3 --out-dir out2
  scenario demo: 3 samples: 3 intact, 0 patched, 0 degraded, 0 partitioned, 0 FAIL
  worst: 140 rounds, 5847 words, 47 spanner edges, stretch 12.00 (bound 2560.00)

A misspelled family name is rejected with the spec-file error:

  $ ../../bin/spanner_cli.exe sweep --spec no-such-family --samples 1
  spanner_cli: no-such-family: No such file or directory
  [1]
