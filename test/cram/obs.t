The observability surface: --metrics writes a JSONL snapshot next to
the trace, --metrics-summary prints the per-phase cost table, and the
totals row must equal the network stats line (the attribution is
exact).

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.2 --seed 3 --metrics m.jsonl --metrics-summary
  graph: n=48, m=231, avg deg 9.62, max deg 17
  spanner: 70 edges, 0 aborts
  network: rounds=35 messages=2461 words=4293 max_msg=3 words
  per-phase cost:
  phase                    rounds   messages      words  max_words
  exchange                      4       1686       3372          2
  convergecast                  9        101        183          3
  wave                          9        101        165          3
  notify                        3         53         53          1
  dying                         4         42         42          1
  final                         4         42         42          1
  death-notices                 2        436        436          1
  post                          0          0          0          0
  total                        35       2461       4293          3
  metrics written to m.jsonl (515 samples)

Without any metrics flag the output is byte-identical to the
uninstrumented CLI (the registry is the no-op sink):

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.2 --seed 3
  graph: n=48, m=231, avg deg 9.62, max deg 17
  spanner: 70 edges, 0 aborts
  network: rounds=35 messages=2461 words=4293 max_msg=3 words

The metrics file leads with a meta header and holds one line per
instrument:

  $ head -c 120 m.jsonl; echo
  {"kind":"meta","algo":"skeleton","n":48,"arq":0,"d":4,"eps":0.5,"spanner_edges":70,"rounds":35,"messages":2461,"words":4
  $ grep -c '"kind":"metric"' m.jsonl | head -1 > /dev/null && echo "has metric lines"
  has metric lines

report aggregates a saved metrics file: run header, phase table, most
congested links, and the remaining instruments.

  $ ../../bin/spanner_cli.exe report m.jsonl --top 3
  metrics report: m.jsonl
    run: algo=skeleton n=48 arq=0 rounds=35 messages=2461 words=4293 max_message_words=3
  phase                    rounds   messages      words  max_words
  exchange                      4       1686       3372          2
  convergecast                  9        101        183          3
  wave                          9        101        165          3
  notify                        3         53         53          1
  dying                         4         42         42          1
  final                         4         42         42          1
  death-notices                 2        436        436          1
  post                          0          0          0          0
  total                        35       2461       4293          3
    top 3 links by words:
      3->27: 18 words
      7->39: 18 words
      14->37: 18 words
    other metrics:
  sim_round_held_words: count=35 sum=0 min=0 max=0 p50=1 p90=1 p99=1
  sim_round_dropped_words: count=35 sum=0 min=0 max=0 p50=1 p90=1 p99=1
  sim_round_delivered_words: count=35 sum=4293 min=1 max=924 p50=16 p90=1024 p99=1024
  cluster_edges_kept{cluster=11} = 23
  cluster_edges_kept{cluster=27} = 6
  cluster_edges_kept{cluster=39} = 2
  cluster_edges_kept{cluster=25} = 3
  cluster_edges_kept{cluster=20} = 2
  cluster_edges_kept{cluster=45} = 3
  cluster_edges_kept{cluster=31} = 2
  cluster_edges_kept{cluster=14} = 1
  cluster_edges_kept{cluster=46} = 1
  cluster_edges_kept{cluster=2} = 11
  cluster_edges_kept{cluster=9} = 5
  cluster_edges_kept{cluster=10} = 7
  cluster_edges_kept{cluster=47} = 4
  skeleton_checkpoint_commits = 180
  skeleton_orphan_aborts = 0
  skeleton_recovered_edges = 0
  skeleton_suspicion_events = 0
  skeleton_aborts = 0

The bound auditor checks the recorded run against the paper's bounds,
both live (simulate --audit-bounds) and offline (report --audit-bounds);
--strict turns any WARN into a nonzero exit.

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.2 --seed 3 --audit-bounds --strict | tail -n +4
  bound audit: n=48 D=4 eps=0.5
    PASS rounds: 35 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS max message words: 3 <= 4 (word budget 2 + 2 framing)
    PASS spanner size: 70 <= 751.0 (3 x Lemma 6 expectation 250.3)
    PASS rounds[exchange]: 4 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[convergecast]: 9 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[wave]: 9 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[notify]: 3 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[dying]: 4 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[final]: 4 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[death-notices]: 2 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[post]: 0 <= 1787.2 (64 x Theorem 2 time bound 27.9)

  $ ../../bin/spanner_cli.exe report m.jsonl --audit-bounds --strict | tail -n +14
      3->27: 18 words
      7->39: 18 words
      14->37: 18 words
      15->20: 18 words
      19->45: 18 words
    other metrics:
  sim_round_held_words: count=35 sum=0 min=0 max=0 p50=1 p90=1 p99=1
  sim_round_dropped_words: count=35 sum=0 min=0 max=0 p50=1 p90=1 p99=1
  sim_round_delivered_words: count=35 sum=4293 min=1 max=924 p50=16 p90=1024 p99=1024
  cluster_edges_kept{cluster=11} = 23
  cluster_edges_kept{cluster=27} = 6
  cluster_edges_kept{cluster=39} = 2
  cluster_edges_kept{cluster=25} = 3
  cluster_edges_kept{cluster=20} = 2
  cluster_edges_kept{cluster=45} = 3
  cluster_edges_kept{cluster=31} = 2
  cluster_edges_kept{cluster=14} = 1
  cluster_edges_kept{cluster=46} = 1
  cluster_edges_kept{cluster=2} = 11
  cluster_edges_kept{cluster=9} = 5
  cluster_edges_kept{cluster=10} = 7
  cluster_edges_kept{cluster=47} = 4
  skeleton_checkpoint_commits = 180
  skeleton_orphan_aborts = 0
  skeleton_recovered_edges = 0
  skeleton_suspicion_events = 0
  skeleton_aborts = 0
  bound audit: n=48 D=4 eps=0.5
    PASS rounds: 35 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS max message words: 3 <= 4 (word budget 2 + 2 framing)
    PASS spanner size: 70 <= 751.0 (3 x Lemma 6 expectation 250.3)
    PASS rounds[exchange]: 4 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[convergecast]: 9 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[wave]: 9 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[notify]: 3 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[dying]: 4 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[final]: 4 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[death-notices]: 2 <= 1787.2 (64 x Theorem 2 time bound 27.9)
    PASS rounds[post]: 0 <= 1787.2 (64 x Theorem 2 time bound 27.9)

report also understands plain trace files, streamed without
materializing the event list:

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.2 --seed 3 --trace t.jsonl > /dev/null
  $ ../../bin/spanner_cli.exe report t.jsonl --top 2
  trace report: t.jsonl
    sends 2461 (4293 words), delivered 2461, dropped 0, dup 0, delayed 0
    recorded stats: rounds=35 messages=2461 words=4293 max_msg=3 words
    top 2 nodes by sent words:
      node 11: sent 131 msgs / 215 words, received 146 / 228
      node 27: sent 95 msgs / 165 words, received 101 / 174
    top 2 links by words:
      3->27: 11 msgs, 18 words
      19->45: 11 msgs, 18 words
    round timeline (words sent per bin of 4 rounds):
      r0-r3: 1802
      r4-r7: 924
      r8-r11: 89
      r12-r15: 83
      r16-r19: 856
      r20-r23: 29
      r24-r27: 55
      r28-r31: 29
      r32-r35: 426
      r36-r39: 0

Asking for a bound audit of a trace (no meta header) is an error:

  $ ../../bin/spanner_cli.exe report t.jsonl --audit-bounds
  spanner_cli: report --audit-bounds needs a metrics file, but t.jsonl is a trace
  [1]

--audit-bounds needs the skeleton protocol:

  $ ../../bin/spanner_cli.exe simulate --algo bfs --kind gnp -n 16 -p 0.3 --seed 1 --audit-bounds > /dev/null
  spanner_cli: --audit-bounds needs --protocol skeleton
  [1]
