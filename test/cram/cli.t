A tiny end-to-end run of the command-line driver: generate a graph,
build spanners with several algorithms, round-trip through files.

  $ ../../bin/spanner_cli.exe gen --kind cycle -n 12 -o net.edges
  wrote net.edges: n=12, m=12, avg deg 2.00, max deg 2

  $ head -1 net.edges
  12 12

  $ ../../bin/spanner_cli.exe build -i net.edges --algo bfs-tree --sources 12 | head -2
  graph: n=12, m=12, avg deg 2.00, max deg 2
  bfs-tree: 11 edges (0.917 per vertex)

  $ ../../bin/spanner_cli.exe build -i net.edges --algo greedy -k 2 -o sp.edges | tail -1
  spanner written to sp.edges

A cycle has girth 12 > 2k, so greedy k=2 keeps all 12 edges:

  $ head -1 sp.edges
  12 12

  $ ../../bin/spanner_cli.exe eval net.edges sp.edges --exact
  pairs=66 stretch(max=1.000 avg=1.000) additive(max=0 avg=0.00) lost=0

The experiment registry rejects unknown ids:

  $ ../../bin/spanner_cli.exe experiment E99 2>&1 | head -1
  unknown experiment E99 (have: E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E12, E13, E14, E15, E16, E17, E18, E19, E20, E21, E22, E23, E24, E25, E26, E27)

E9 is pure computation and deterministic:

  $ ../../bin/spanner_cli.exe experiment E9 | head -6
  
  == E9: worst-case per-vertex contribution X^t_p (exact DP)
     reproduces: Lemma 6, inequality (4): X^t_p <= p^-1(ln(t+1) - zeta) + t
  p     t     X^t_p  lemma6-bound  ratio  BS-style t+2/p  bound holds
  ----  ----  -----  ------------  -----  --------------  -----------
  0.5   1     0.625  1.74          0.36   5               yes        

Fault injection with trace/replay: a lossy run converges to the right
distances, its trace replays bit-for-bit, and the diff check passes:

  $ ../../bin/spanner_cli.exe simulate --kind gnp -n 60 -p 0.08 --seed 3 --drop 0.2 --trace run.jsonl
  graph: n=60, m=144, avg deg 4.80, max deg 10
  distances correct: true
  network: rounds=54 messages=791 words=1432 max_msg=3 words
  trace written to run.jsonl (1582 events)

  $ head -1 run.jsonl
  {"round":0,"kind":"send","src":0,"dst":28,"words":2}

  $ ../../bin/spanner_cli.exe simulate --kind gnp -n 60 -p 0.08 --seed 3 --replay run.jsonl
  graph: n=60, m=144, avg deg 4.80, max deg 10
  replaying 1582 events from run.jsonl
  distances correct: true
  network: rounds=54 messages=791 words=1432 max_msg=3 words
  replay reproduces original stats: yes

With no fault flags the engine is the paper's loss-free model and the
ARQ-lifted BFS finishes in eccentricity + ack-drain rounds:

  $ ../../bin/spanner_cli.exe simulate --kind cycle -n 12 --seed 1
  graph: n=12, m=12, avg deg 2.00, max deg 2
  distances correct: true
  network: rounds=8 messages=36 words=72 max_msg=3 words

The full skeleton construction runs over the faulty network too:
crash-stops plus 20% loss, with phase checkpoints, orphan recovery and
the output certifier — and the whole faulty run replays bit-for-bit:

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 72 -p 0.08 --seed 6 --drop 0.2 --crash 5@40,11@150,23@300 --certify --trace sk.jsonl
  graph: n=72, m=228, avg deg 6.33, max deg 13
  spanner: 125 edges, 0 aborts
  recovery: 3 crashed, 9 orphaned, 45 recovered edges, 290 checkpoints, 1681 retransmissions, 22 dead letters
  certification: PASS (69 live vertices, 544 pairs, size ratio 0.33)
    [ok] subset: 125 edges, all in G
    [ok] forest: 49 hook edges, acyclic
    [ok] contribution: per-vertex cap respected (worst 0.83)
    [ok] stretch: 544 pairs, max stretch 6.00 <= 3159.00
  network: rounds=1722 messages=7217 words=14777 max_msg=5 words
  trace written to sk.jsonl (14437 events)

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 72 -p 0.08 --seed 6 --certify --replay sk.jsonl | tail -2
  network: rounds=1722 messages=7217 words=14777 max_msg=5 words
  replay reproduces original stats: yes

A sabotaged output (one cluster-tree edge removed) must be rejected,
with a nonzero exit:

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 72 -p 0.08 --seed 6 --mutate > mutated.out
  [1]

  $ grep -E "mutate|certification|forest" mutated.out
  mutate: removed cluster-tree edge 0
  certification: FAIL (72 live vertices, 568 pairs, size ratio 0.23)
    [FAIL] forest: 1 violation(s): vertex 0: hook edge 0 missing from spanner

Fault-matrix smoke: crash fraction {0, 5, 10%} x drop {0, 20%} all
complete and certify on the same seed:

  $ for crash in 0 0.05 0.1; do for drop in 0 0.2; do
  >   ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 64 -p 0.1 --seed 5 \
  >     --crash-frac $crash --crash-max-round 200 --drop $drop --certify \
  >     | grep -E "^certification" | sed "s/^/crash=$crash drop=$drop /"
  > done; done
  crash=0 drop=0 certification: PASS (64 live vertices, 504 pairs, size ratio 0.24)
  crash=0 drop=0.2 certification: PASS (64 live vertices, 504 pairs, size ratio 0.24)
  crash=0.05 drop=0 certification: PASS (62 live vertices, 488 pairs, size ratio 0.25)
  crash=0.05 drop=0.2 certification: PASS (62 live vertices, 488 pairs, size ratio 0.22)
  crash=0.1 drop=0 certification: PASS (58 live vertices, 456 pairs, size ratio 0.24)
  crash=0.1 drop=0.2 certification: PASS (58 live vertices, 456 pairs, size ratio 0.22)

Topology churn: a spanner edge goes down mid-run, the incremental
repair pass rehooks the detached fragment, and the certifier passes
with the dead edge excluded from the audit:

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.15 --seed 5 --edge-drop 0-5@60 --certify
  graph: n=48, m=167, avg deg 6.96, max deg 13
  spanner: 53 edges, 0 aborts
  recovery: 0 crashed, 0 orphaned, 0 recovered edges, 189 checkpoints, 24 retransmissions, 2 dead letters
  repair: patched (1 dead spanner edges, 1 rehooked, 0 replaced, 0 keep-all, 0 rejoined, 9 rounds, 1 components)
  certification: PASS (48 live vertices, 376 pairs, size ratio 0.21)
    [ok] subset: 53 edges, all in G
    [ok] forest: 46 hook edges, acyclic
    [ok] contribution: per-vertex cap respected (worst 0.88)
    [ok] stretch: 376 pairs, max stretch 9.00 <= 2859.50
  network: rounds=404 messages=4436 words=8213 max_msg=4 words

A churn plan referencing a non-existent edge is rejected up front:

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.15 --seed 5 --edge-drop 0-99@60
  graph: n=48, m=167, avg deg 6.96, max deg 13
  spanner_cli: Fault.make: churn event #0 (edge_down): edge references vertex 99 outside this 48-vertex graph
  [1]

A partition that never heals is outside the recoverable envelope once
the phase budget runs out: the run ends in a structured stuck report
naming the links crossing the cut, with a distinct exit code:

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.15 --seed 5 --partition 0-5,0-7,0-21,0-22,0-26,0-29,0-41,0-44 --partition-round 3 --phase-limit 200
  graph: n=48, m=167, avg deg 6.96, max deg 13
  stuck: notify phase cannot complete; waiting on 16 link(s) (0->5, 0->7, 0->21, 0->22, 0->26, 0->29, 0->41, 0->44)
  network: rounds=202 messages=728 words=1426 max_msg=3 words
  [2]

A recorded trace carries the churn schedule, so --churn-trace re-applies
the same topology changes and the repair pass reproduces itself:

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.15 --seed 5 --edge-drop 0-5@60 --trace churn.jsonl | grep repair
  repair: patched (1 dead spanner edges, 1 rehooked, 0 replaced, 0 keep-all, 0 rejoined, 9 rounds, 1 components)

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.15 --seed 5 --churn-trace churn.jsonl | grep -E "churn plan|repair"
  churn plan: 1 events from churn.jsonl
  repair: patched (1 dead spanner edges, 1 rehooked, 0 replaced, 0 keep-all, 0 rejoined, 9 rounds, 1 components)
