The profiling surface: --profile samples GC counters and the monotonic
clock at phase/round/region boundaries and writes a JSONL profile.
The flag must not change the run: stdout minus the trailing "profile
written" line is byte-identical to a flag-free run.

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.2 --seed 3 > base.out
  $ cat base.out
  graph: n=48, m=231, avg deg 9.62, max deg 17
  spanner: 70 edges, 0 aborts
  network: rounds=35 messages=2461 words=4293 max_msg=3 words
  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.2 --seed 3 --profile p.jsonl > prof.out
  $ grep -v '^profile written' prof.out | diff - base.out
  $ tail -1 prof.out
  profile written to p.jsonl (17 rows, 35 round samples)

The profile file leads with a meta header (all fields deterministic),
then one row per phase/region and one sample per round.  The row set
and the word counts are deterministic; only the wall-clock fields are
machine-dependent.

  $ head -1 p.jsonl
  {"kind":"prof_meta","algo":"skeleton","n":48,"arq":0,"rounds":35,"messages":2461,"words":4293,"max_message_words":3}
  $ grep -c '"kind":"prof",' p.jsonl
  17
  $ grep -c '"kind":"prof_round"' p.jsonl
  35

report recognizes a profile file and renders the phase table, the
region self/total table, and the top allocation sites.  Numbers and
alignment are machine-dependent, the structure is not:

  $ ../../bin/spanner_cli.exe report p.jsonl --profile | sed 's/[0-9][0-9]*/N/g; s/  */ /g; s/ *$//'
  profile report: p.jsonl
   run: algo=skeleton n=N arq=N rounds=N messages=N words=N max_message_words=N
  phase count wall_ms minor_words major_words minors majors
  exchange N N.N N N N N
  convergecast N N.N N N N N
  wave N N.N N N N N
  notify N N.N N N N N
  dying N N.N N N N N
  final N N.N N N N N
  death-notices N N.N N N N N
  post N N.N N N N N
  total N N.N N N N N
  
  region count total_ms self_ms minor_words self_minor majors
  sim_send N N.N N.N N N N
  sim_deliver N N.N N.N N N N
  skel_exchange N N.N N.N N N N
  skel_notify N N.N N.N N N N
  skel_death N N.N N.N N N N
  skel_convergecast N N.N N.N N N N
  skel_wave N N.N N.N N N N
  skel_dying N N.N N.N N N N
  skel_final N N.N N.N N N N
  
  top N allocation sites (self minor+major words):
   N. sim_deliver N words
   N. sim_send N words
   N. skel_exchange N words
   N. skel_death N words
   N. skel_convergecast N words
  
  N round samples, final heap N words, peak N minor words/round

Asking for a profile report of a trace is an error:

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.2 --seed 3 --trace t.jsonl > /dev/null
  $ ../../bin/spanner_cli.exe report t.jsonl --profile
  spanner_cli: report --profile needs a profile file (simulate --profile), but t.jsonl is not one
  [1]

Handing report a spans file and a profile file together with
--perfetto merges GC counter tracks (35 rounds x 3 counters) into the
Chrome trace under a dedicated "gc counters" process:

  $ ../../bin/spanner_cli.exe simulate --algo skeleton --kind gnp -n 48 -p 0.2 --seed 3 --spans s.jsonl --profile p2.jsonl | tail -1
  profile written to p2.jsonl (17 rows, 35 round samples)
  $ ../../bin/spanner_cli.exe report s.jsonl p2.jsonl --perfetto tr.json
  spans report: s.jsonl
    run: algo=skeleton n=48 arq=0 rounds=35 messages=2461 words=4293 max_message_words=3
    2548 spans: 2461 messages (2461 delivered, 0 dropped), 33 phases, 5 calls, 49 clusters, 0 arq, 0 retransmissions
  perfetto trace written to tr.json (2657 events)
  $ grep -c '"ph":"C"' tr.json
  105
  $ grep -c '"gc counters"' tr.json
  1

bench --json always emits parseable JSON (the bechamel progress chatter
is silenced) and carries the GC counters next to each timing:

  $ ../../bench/main.exe --json --only e9 | sed 's/[0-9][0-9]*/N/g'
  {"seed": N, "workload_seed": N, "mode": "quick", "timings": [
    {"name": "eN.contribution_dp", "ns_per_run": N.N, "minor_words": N, "major_words": N, "majors": N}
  ]}

bench --profile names each bench's top allocation sites:

  $ ../../bench/main.exe --bench-only --only e9 --profile | sed 's/[0-9][0-9]*/N/g; s/  */ /g; s/ *$//'
  
  == Bechamel timings (monotonic clock, one bench per experiment)
  eN.contribution_dp N ns/run N minor N major N majors
  
  == per-bench profiles (top allocation sites, self minor+major words)
  eN.contribution_dp (no regions hit)

bench history reads every checked-in BENCH_*.json snapshot plus an
optional current run and renders the per-bench trajectory, flagging
regressions beyond the tolerance:

  $ cat > BENCH_a.json <<'EOF'
  > {"timings": [
  >   {"name": "e1.skeleton_dist", "ns_per_run": 8000000.0, "minor_words": 900000, "major_words": 300000, "majors": 1},
  >   {"name": "e9.contribution_dp", "ns_per_run": 100000.0, "minor_words": 6000, "major_words": 0, "majors": 0}
  > ]}
  > EOF
  $ cat > BENCH_b.json <<'EOF'
  > {"timings": [
  >   {"name": "e1.skeleton_dist", "ns_per_run": 9500000.0, "minor_words": 910000, "major_words": 300000, "majors": 1},
  >   {"name": "e2.fresh_bench", "ns_per_run": 5000.0, "minor_words": 100, "major_words": 0, "majors": 0}
  > ]}
  > EOF
  $ ../../bench/main.exe history
  == bench history (2 snapshot(s), tolerance +25%)
  bench                               BENCH_a      BENCH_b     delta
  e1.skeleton_dist                    8000000      9500000    +18.8%
  e9.contribution_dp                   100000            -         -
  e2.fresh_bench                            -         5000         -
  $ ../../bench/main.exe history --tolerance 0.1
  == bench history (2 snapshot(s), tolerance +10%)
  bench                               BENCH_a      BENCH_b     delta
  e1.skeleton_dist                    8000000      9500000    +18.8%  REGRESSED
  e9.contribution_dp                   100000            -         -
  e2.fresh_bench                            -         5000         -
  $ rm BENCH_a.json BENCH_b.json
  $ ../../bench/main.exe history
  bench history: no BENCH_*.json in the current directory (and no --current file)
  [2]
