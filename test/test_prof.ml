(* Tests for the machine-cost profiler: region nesting and self/total
   attribution, phase rows joining the metrics phase table, JSONL
   persistence (roundtrip + structured parse errors), and — the design
   rule everything else leans on — that profiling a run does not change
   its output. *)

module P = Obs.Prof
module M = Obs.Metrics
module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

(* Force some allocation the GC must count. *)
let churn k =
  let acc = ref [] in
  for i = 0 to k - 1 do
    acc := string_of_int i :: !acc
  done;
  ignore (Sys.opaque_identity !acc)

(* ------------------------------------------------------------------ *)
(* Region nesting and attribution *)

let test_disabled_sink () =
  let t = P.disabled in
  checkb "disabled" false (P.enabled t);
  P.enter t "x";
  P.leave t;
  P.phase t "p";
  P.round_mark t ~round:1;
  checki "no rows" 0 (List.length (P.rows t));
  checki "no rounds" 0 (List.length (P.round_samples t));
  checki "region passes value through" 7 (P.region t "x" (fun () -> 7))

let test_region_nesting () =
  let t = P.create () in
  P.region t "outer" (fun () ->
      churn 50;
      P.region t "inner" (fun () -> churn 2000);
      churn 50);
  P.region t "outer" (fun () -> churn 10);
  let rows = P.rows t in
  checki "two rows" 2 (List.length rows);
  let outer = List.nth rows 0 and inner = List.nth rows 1 in
  checks "creation order first" "outer" outer.P.name;
  checks "creation order second" "inner" inner.P.name;
  checki "outer entered twice" 2 outer.P.count;
  checki "inner entered once" 1 inner.P.count;
  (* Total is inclusive, self excludes the nested region — exactly. *)
  checkb "inner allocated" true (inner.P.minor_words > 0);
  checki "outer self = total - inner total"
    (outer.P.minor_words - inner.P.minor_words)
    outer.P.self_minor_words;
  checkb "outer self wall <= total" true (outer.P.self_ns <= outer.P.wall_ns);
  checks "inner self = total (no children)"
    (string_of_int inner.P.minor_words)
    (string_of_int inner.P.self_minor_words)

let test_region_exception_safe () =
  let t = P.create () in
  (try P.region t "boom" (fun () -> failwith "x") with Failure _ -> ());
  (* The frame was popped: a sibling region must not become a child. *)
  P.region t "after" (fun () -> churn 100);
  let rows = P.rows t in
  checki "both rows" 2 (List.length rows);
  let boom = List.nth rows 0 in
  checki "boom still counted" 1 boom.P.count

let test_leave_on_empty_stack () =
  let t = P.create () in
  P.leave t;  (* ignored, not an error *)
  checki "no rows" 0 (List.length (P.rows t))

let test_phase_rows () =
  let t = P.create () in
  churn 500;
  P.phase t "alpha";
  churn 3000;
  P.phase t "beta";
  P.phase t "alpha";
  let rows = List.filter (fun r -> r.P.kind = P.Phase) (P.rows t) in
  checki "two phase rows" 2 (List.length rows);
  let alpha = List.nth rows 0 and beta = List.nth rows 1 in
  checks "first phase" "alpha" alpha.P.name;
  checki "alpha marked twice" 2 alpha.P.count;
  checkb "alpha allocated" true (alpha.P.minor_words > 0);
  checkb "beta allocated" true (beta.P.minor_words > 0);
  (* Phases attribute deltas: self = total by construction. *)
  checki "phase self = total" alpha.P.minor_words alpha.P.self_minor_words;
  checki "beta self = total" beta.P.minor_words beta.P.self_minor_words

let test_round_samples () =
  let t = P.create () in
  P.round_mark t ~round:1;
  churn 2000;
  P.round_mark t ~round:2;
  let samples = P.round_samples t in
  checki "two samples" 2 (List.length samples);
  let s1 = List.nth samples 0 and s2 = List.nth samples 1 in
  checki "rounds recorded" 1 s1.P.round;
  checki "rounds recorded" 2 s2.P.round;
  checkb "round 2 saw the churn" true (s2.P.r_minor_words > 0);
  checkb "heap sampled" true (s2.P.heap_words > 0)

(* ------------------------------------------------------------------ *)
(* Persistence *)

let test_save_load_roundtrip () =
  let t = P.create () in
  P.region t "r1" (fun () -> churn 1000);
  P.region t "r1" (fun () -> P.region t "r2" (fun () -> churn 10));
  P.phase t "p1";
  P.round_mark t ~round:3;
  let file = tmp "prof_roundtrip.jsonl" in
  P.save ~extra:[ {|{"kind":"prof_meta","algo":"test"}|} ] t file;
  let rows, rounds = P.load file in
  Sys.remove file;
  checkb "rows roundtrip" true (rows = P.rows t);
  checkb "rounds roundtrip" true (rounds = P.round_samples t)

let test_iter_file_skips_foreign_kinds () =
  let file = tmp "prof_foreign.jsonl" in
  let oc = open_out file in
  output_string oc "{\"kind\":\"prof_meta\",\"algo\":\"x\"}\n";
  output_string oc "\n";
  output_string oc
    "{\"kind\":\"prof\",\"rk\":\"region\",\"name\":\"a\",\"count\":1,\"wall_ns\":2,\"self_ns\":2,\"minor\":3,\"self_minor\":3,\"major\":0,\"self_major\":0,\"minors\":0,\"majors\":0}\r\n";
  output_string oc "{\"kind\":\"prof_round\",\"round\":1,\"heap\":9,\"minor\":4,\"minors\":0}\n";
  close_out oc;
  let rows, rounds = P.load file in
  Sys.remove file;
  checki "one row" 1 (List.length rows);
  checki "one round" 1 (List.length rounds);
  let r = List.hd rows in
  checks "name" "a" r.P.name;
  checki "minor" 3 r.P.minor_words;
  checki "round heap" 9 (List.hd rounds).P.heap_words

let expect_parse_error ~line content k =
  let file = tmp "prof_bad.jsonl" in
  let oc = open_out file in
  output_string oc content;
  close_out oc;
  (match P.load file with
  | exception P.Parse_error e ->
      checks "file named" file e.file;
      checki (k ^ ": line") line e.line
  | _ -> Alcotest.fail (k ^ ": expected Parse_error"));
  Sys.remove file

let test_parse_errors () =
  (* Truncated row: a prof line missing fields. *)
  expect_parse_error ~line:2
    "{\"kind\":\"prof_meta\"}\n{\"kind\":\"prof\",\"rk\":\"region\",\"name\":\"a\",\"count\":1}\n"
    "truncated";
  (* Garbage that still parses a "kind". *)
  expect_parse_error ~line:1 "{\"kind\":\"prof\",\"rk\":\"banana\"}\n"
    "unknown row kind";
  (* No kind at all. *)
  expect_parse_error ~line:1 "not json at all\n" "garbage";
  (* Truncated round sample. *)
  expect_parse_error ~line:1 "{\"kind\":\"prof_round\",\"round\":3}\n"
    "truncated round"

(* ------------------------------------------------------------------ *)
(* Joining the metrics phase table *)

let build_once ?tracer ~prof ~metrics ~n ~seed ~drop () =
  let rng = Util.Prng.create ~seed in
  let g = Graphlib.Gen.connected_gnp rng ~n ~p:(6. /. float_of_int n) in
  let faults =
    if drop = 0. then Distnet.Fault.none
    else
      Distnet.Fault.make ~seed:(seed + 31)
        { Distnet.Fault.default_spec with Distnet.Fault.drop }
  in
  P.set_current prof;
  let r = Spanner.Skeleton_dist.build ~faults ?tracer ~metrics ~seed g in
  P.set_current P.disabled;
  let edges = ref [] in
  Edge_set.iter r.Spanner.Skeleton_dist.spanner (fun e ->
      edges := e :: !edges);
  (List.rev !edges, r.Spanner.Skeleton_dist.stats)

let test_phase_rows_join_metrics_table () =
  let prof = P.create () and reg = M.create () in
  ignore (build_once ~prof ~metrics:reg ~n:40 ~seed:9 ~drop:0.2 ());
  let metric_phases =
    List.map
      (fun (r : Obs.Report.phase_row) -> r.Obs.Report.phase)
      (Obs.Report.phase_rows (M.snapshot reg))
  in
  let prof_phases =
    List.filter_map
      (fun (r : P.row) -> if r.P.kind = P.Phase then Some r.P.name else None)
      (P.rows prof)
  in
  (* Same boundaries, same names, same first-appearance order: the
     profile's phase rows join the metrics table one to one. *)
  check (Alcotest.list Alcotest.string) "same phases in same order"
    metric_phases prof_phases

let test_round_samples_match_stats () =
  let prof = P.create () in
  let _, (stats : Distnet.Sim.stats) =
    build_once ~prof ~metrics:M.disabled ~n:30 ~seed:4 ~drop:0. ()
  in
  (* One sample per engine round, tagged 1..rounds. *)
  let samples = P.round_samples prof in
  checki "one sample per round" stats.Distnet.Sim.rounds (List.length samples);
  checki "last round tag" stats.Distnet.Sim.rounds
    (List.fold_left (fun acc s -> Stdlib.max acc s.P.round) 0 samples)

(* ------------------------------------------------------------------ *)
(* Transparency: profiling must not change the run *)

let prop_prof_transparent =
  QCheck.Test.make ~count:10 ~name:"profiler on/off: identical run"
    QCheck.(pair (int_range 12 40) (int_range 0 1))
    (fun (n, drop_flag) ->
      let seed = 23 + n and drop = if drop_flag = 1 then 0.2 else 0. in
      let reg_off = M.create () and reg_on = M.create () in
      let tr_off = Distnet.Trace.create () and tr_on = Distnet.Trace.create () in
      let off =
        build_once ~tracer:tr_off ~prof:P.disabled ~metrics:reg_off ~n ~seed
          ~drop ()
      in
      let on =
        build_once ~tracer:tr_on ~prof:(P.create ()) ~metrics:reg_on ~n ~seed
          ~drop ()
      in
      (* Identical spanner, stats, metrics rows, and trace events: the
         profiler observed the run without perturbing it. *)
      off = on
      && M.snapshot reg_off = M.snapshot reg_on
      && Distnet.Trace.events tr_off = Distnet.Trace.events tr_on)

let suite =
  [
    ( "prof",
      [
        Alcotest.test_case "disabled sink is free" `Quick test_disabled_sink;
        Alcotest.test_case "region nesting self/total" `Quick
          test_region_nesting;
        Alcotest.test_case "region exception safety" `Quick
          test_region_exception_safe;
        Alcotest.test_case "leave on empty stack" `Quick
          test_leave_on_empty_stack;
        Alcotest.test_case "phase rows" `Quick test_phase_rows;
        Alcotest.test_case "round samples" `Quick test_round_samples;
        Alcotest.test_case "save/load roundtrip" `Quick
          test_save_load_roundtrip;
        Alcotest.test_case "iter_file skips foreign kinds" `Quick
          test_iter_file_skips_foreign_kinds;
        Alcotest.test_case "parse errors name file and line" `Quick
          test_parse_errors;
        Alcotest.test_case "phase rows join metrics table" `Quick
          test_phase_rows_join_metrics_table;
        Alcotest.test_case "round samples match stats" `Quick
          test_round_samples_match_stats;
        QCheck_alcotest.to_alcotest prop_prof_transparent;
      ] );
  ]
