(* Tests for the compact routing scheme. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Apsp = Graphlib.Apsp
module Routing = Oracle.Compact_routing

let rng () = Util.Prng.create ~seed:1999

let check_all_routes ~max_stretch g r =
  let d = Apsp.compute g in
  let n = G.n g in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      match (Routing.route r ~src:u ~dst:v, d.(u).(v)) with
      | Some path, exact ->
          checkb "pair connected" true (exact >= 0);
          (* path is a real walk in g *)
          let rec verify = function
            | a :: (b :: _ as rest) ->
                checkb "hop is an edge" true (G.mem_edge g a b);
                verify rest
            | _ -> ()
          in
          verify path;
          (match path with
          | first :: _ ->
              checki "starts at src" u first;
              checki "ends at dst" v (List.nth path (List.length path - 1))
          | [] -> Alcotest.fail "empty route");
          let hops = List.length path - 1 in
          checkb
            (Printf.sprintf "route %d->%d: %d hops vs %d exact" u v hops exact)
            true
            (hops >= exact && (exact = 0 || hops <= max_stretch * exact))
      | None, exact -> checki "None only when disconnected" (-1) exact
    done
  done

let test_routing_correct_small () =
  List.iter
    (fun seed ->
      let g = Gen.connected_gnp (Util.Prng.create ~seed) ~n:80 ~p:0.08 in
      let r = Routing.build ~seed g in
      check_all_routes ~max_stretch:5 g r)
    [ 1; 2; 3 ]

let test_routing_on_torus () =
  let g = Gen.king_torus ~width:9 ~height:9 in
  let r = Routing.build ~seed:5 g in
  check_all_routes ~max_stretch:5 g r

let test_routing_disconnected () =
  let g = G.of_edges ~n:6 [ (0, 1); (2, 3) ] in
  let r = Routing.build ~seed:1 g in
  checkb "within component" true (Routing.route r ~src:0 ~dst:1 <> None);
  checkb "across components" true (Routing.route r ~src:0 ~dst:2 = None)

let test_routing_self () =
  let g = Gen.cycle 8 in
  let r = Routing.build ~seed:2 g in
  Alcotest.check (Alcotest.list Alcotest.int) "self route" [ 3 ]
    (Option.get (Routing.route r ~src:3 ~dst:3))

let test_routing_state_compact () =
  (* Per-node state must be o(n): on a 1500-vertex graph the average
     table is much smaller than n entries. *)
  let n = 1500 in
  let g = Gen.connected_gnp (rng ()) ~n ~p:0.008 in
  let r = Routing.build ~seed:7 g in
  let avg = float_of_int (Routing.total_state r) /. float_of_int n in
  checkb
    (Printf.sprintf "avg table %.1f entries << n=%d" avg n)
    true
    (avg < float_of_int n /. 4.);
  checkb "landmarks ~ sqrt n" true
    (let l = List.length (Routing.landmarks r) in
     l > 10 && l < 150)

let test_routing_measured_stretch_low () =
  let g = Gen.connected_gnp (rng ()) ~n:400 ~p:0.03 in
  let r = Routing.build ~seed:3 g in
  let stats = Util.Stats.create () in
  let rng = rng () in
  for _ = 1 to 300 do
    let u = Util.Prng.int rng 400 and v = Util.Prng.int rng 400 in
    if u <> v then begin
      let exact = (Graphlib.Bfs.distances g ~src:u).(v) in
      match Routing.route r ~src:u ~dst:v with
      | Some path when exact > 0 ->
          Util.Stats.add stats
            (float_of_int (List.length path - 1) /. float_of_int exact)
      | _ -> ()
    end
  done;
  checkb
    (Printf.sprintf "mean routing stretch %.2f < 2" (Util.Stats.mean stats))
    true
    (Util.Stats.mean stats < 2.)

let test_route_hops_matches_route () =
  (* The serving fast path: route_hops must agree exactly with the
     materialized route, including the failure cases. *)
  let g = G.of_edges ~n:7 [ (0, 1); (1, 2); (2, 3); (5, 6) ] in
  let r = Routing.build ~seed:4 g in
  let check_pair u v =
    match Routing.route r ~src:u ~dst:v with
    | Some path ->
        checki
          (Printf.sprintf "hops %d->%d" u v)
          (List.length path - 1)
          (Routing.route_hops r ~src:u ~dst:v)
    | None -> checki "failure is -1" (-1) (Routing.route_hops r ~src:u ~dst:v)
  in
  for u = 0 to 6 do
    for v = 0 to 6 do
      check_pair u v
    done
  done

let prop_route_hops_agree =
  QCheck.Test.make ~name:"routing: route_hops = |route| - 1 on random graphs"
    ~count:10
    QCheck.(int_range 15 60)
    (fun n ->
      let g = Gen.connected_gnp (Util.Prng.create ~seed:n) ~n ~p:0.1 in
      let r = Routing.build ~seed:(n + 1) g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let hops = Routing.route_hops r ~src:u ~dst:v in
          (match Routing.route r ~src:u ~dst:v with
          | Some path -> if hops <> List.length path - 1 then ok := false
          | None -> if hops <> -1 then ok := false)
        done
      done;
      !ok)

let test_home_landmark_is_nearest () =
  let g = Gen.connected_gnp (rng ()) ~n:200 ~p:0.04 in
  let r = Routing.build ~seed:9 g in
  let ls = Routing.landmarks r in
  let f = Graphlib.Bfs.multi_source g ~sources:ls in
  for v = 0 to 199 do
    checki "home = nearest landmark" f.Graphlib.Bfs.source.(v) (Routing.home_landmark r v)
  done

let suite =
  [
    ( "oracle.compact_routing",
      [
        Alcotest.test_case "all routes correct (small)" `Quick test_routing_correct_small;
        Alcotest.test_case "torus routes" `Quick test_routing_on_torus;
        Alcotest.test_case "disconnected" `Quick test_routing_disconnected;
        Alcotest.test_case "self" `Quick test_routing_self;
        Alcotest.test_case "state compact" `Quick test_routing_state_compact;
        Alcotest.test_case "measured stretch low" `Quick test_routing_measured_stretch_low;
        Alcotest.test_case "home landmark nearest" `Quick test_home_landmark_is_nearest;
        Alcotest.test_case "route_hops matches route" `Quick
          test_route_hops_matches_route;
        QCheck_alcotest.to_alcotest prop_route_hops_agree;
      ] );
  ]
