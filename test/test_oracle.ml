(* Tests for the Thorup–Zwick distance oracle. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Apsp = Graphlib.Apsp
module Oracle = Oracle.Distance_oracle

let rng () = Util.Prng.create ~seed:2005

let check_oracle_against_apsp ~k g oracle =
  let d = Apsp.compute g in
  let n = G.n g in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      match (Oracle.query oracle u v, d.(u).(v)) with
      | Some est, exact ->
          if exact < 0 then
            Alcotest.failf "oracle invented a path %d-%d (est %d)" u v est
          else
            checkb
              (Printf.sprintf "%d-%d: %d within [%d, %d]" u v est exact
                 (((2 * k) - 1) * exact))
              true
              (est >= exact && est <= ((2 * k) - 1) * exact)
      | None, exact ->
          if exact >= 0 then
            Alcotest.failf "oracle missed connected pair %d-%d (exact %d)" u v exact
    done
  done

let test_oracle_exact_k1 () =
  (* k = 1: the bunch of every vertex is its whole component; the
     oracle is exact. *)
  let g = Gen.connected_gnp (rng ()) ~n:60 ~p:0.08 in
  let o = Oracle.build ~k:1 ~seed:4 g in
  let d = Apsp.compute g in
  for u = 0 to 59 do
    for v = 0 to 59 do
      match Oracle.query o u v with
      | Some est -> checki "exact at k=1" d.(u).(v) est
      | None -> Alcotest.fail "connected graph"
    done
  done

let test_oracle_stretch_bounds () =
  List.iter
    (fun k ->
      let g = Gen.connected_gnp (rng ()) ~n:90 ~p:0.06 in
      let o = Oracle.build ~k ~seed:(k * 3) g in
      check_oracle_against_apsp ~k g o)
    [ 2; 3; 4 ]

let test_oracle_disconnected () =
  let g = G.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  let o = Oracle.build ~k:2 ~seed:1 g in
  checkb "same component answers" true (Oracle.query o 0 2 <> None);
  checkb "cross components None" true (Oracle.query o 0 3 = None);
  checkb "isolated None" true (Oracle.query o 0 5 = None)

let test_oracle_self () =
  let g = Gen.cycle 10 in
  let o = Oracle.build ~k:2 ~seed:1 g in
  checkb "self distance 0" true (Oracle.query o 4 4 = Some 0)

let test_oracle_symmetry_bound () =
  (* Estimates need not be symmetric, but both directions obey the
     stretch bound. *)
  let g = Gen.king_torus ~width:8 ~height:8 in
  let k = 3 in
  let o = Oracle.build ~k ~seed:9 g in
  check_oracle_against_apsp ~k g o

let test_oracle_space_tradeoff () =
  (* Larger k, smaller oracle: the O(k n^{1+1/k}) tradeoff. *)
  let g = Gen.connected_gnp (rng ()) ~n:1500 ~p:0.02 in
  let size k = Oracle.size (Oracle.build ~k ~seed:5 g) in
  let s1 = size 1 and s3 = size 3 in
  checkb (Printf.sprintf "k=3 (%d) much smaller than k=1 (%d)" s3 s1) true (2 * s3 < s1);
  (* k=1 stores every component-mate: n^2 entries on a connected graph. *)
  checkb "k=1 is quadratic" true (s1 >= 1500 * 1500)

let test_oracle_levels_shape () =
  let g = Gen.connected_gnp (rng ()) ~n:2000 ~p:0.01 in
  let o = Oracle.build ~k:3 ~seed:2 g in
  let lv = Oracle.levels o in
  let count i = Array.fold_left (fun acc l -> if l >= i then acc + 1 else acc) 0 lv in
  checki "A_0 = V" 2000 (count 0);
  let q = 2000. ** (2. /. 3.) in
  checkb "A_1 near n^{2/3}" true
    (float_of_int (count 1) > 0.6 *. q && float_of_int (count 1) < 1.5 *. q)

let test_query_est_agrees () =
  (* The serving fast path: query_est is query with -1 for None. *)
  let g = G.of_edges ~n:8 [ (0, 1); (1, 2); (2, 3); (3, 4); (6, 7) ] in
  let o = Oracle.build ~k:2 ~seed:3 g in
  for u = 0 to 7 do
    for v = 0 to 7 do
      let expected = match Oracle.query o u v with Some d -> d | None -> -1 in
      checki (Printf.sprintf "est %d-%d" u v) expected (Oracle.query_est o u v)
    done
  done

let prop_query_est_agrees =
  QCheck.Test.make ~name:"oracle: query_est = query (-1 for None)" ~count:10
    QCheck.(pair (int_range 15 50) (int_range 1 3))
    (fun (n, k) ->
      let g = Gen.connected_gnp (Util.Prng.create ~seed:(n + (7 * k))) ~n ~p:0.12 in
      let o = Oracle.build ~k ~seed:(n - k) g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let expected =
            match Oracle.query o u v with Some d -> d | None -> -1
          in
          if Oracle.query_est o u v <> expected then ok := false
        done
      done;
      !ok)

let prop_oracle_stretch =
  QCheck.Test.make ~name:"oracle: stretch <= 2k-1 on random graphs" ~count:10
    QCheck.(pair (int_range 15 50) (int_range 2 3))
    (fun (n, k) ->
      let g = Gen.connected_gnp (Util.Prng.create ~seed:(n * k)) ~n ~p:0.12 in
      let o = Oracle.build ~k ~seed:(n + k) g in
      let d = Apsp.compute g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          match Oracle.query o u v with
          | Some est ->
              if not (est >= d.(u).(v) && est <= ((2 * k) - 1) * d.(u).(v)) then ok := false
          | None -> if d.(u).(v) >= 0 then ok := false
        done
      done;
      !ok)

let suite =
  [
    ( "oracle.thorup_zwick",
      [
        Alcotest.test_case "exact at k=1" `Quick test_oracle_exact_k1;
        Alcotest.test_case "stretch bounds" `Quick test_oracle_stretch_bounds;
        Alcotest.test_case "disconnected" `Quick test_oracle_disconnected;
        Alcotest.test_case "self" `Quick test_oracle_self;
        Alcotest.test_case "king torus" `Quick test_oracle_symmetry_bound;
        Alcotest.test_case "space tradeoff" `Quick test_oracle_space_tradeoff;
        Alcotest.test_case "level sizes" `Quick test_oracle_levels_shape;
        Alcotest.test_case "query_est agrees" `Quick test_query_est_agrees;
        QCheck_alcotest.to_alcotest prop_query_est_agrees;
        QCheck_alcotest.to_alcotest prop_oracle_stretch;
      ] );
  ]
