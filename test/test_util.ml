(* Tests for the util library: Prng, Stats, Fib, Tower, Union_find,
   Heap, Bitset. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf msg = check (Alcotest.float 1e-9) msg

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Util.Prng.create ~seed:42 and b = Util.Prng.create ~seed:42 in
  for _ = 1 to 100 do
    checki "same stream" (Util.Prng.int a 1000) (Util.Prng.int b 1000)
  done

let test_prng_split_independent () =
  let a = Util.Prng.create ~seed:7 in
  let c = Util.Prng.split a in
  let differs = ref false in
  for _ = 1 to 50 do
    if Util.Prng.int a 1_000_000 <> Util.Prng.int c 1_000_000 then differs := true
  done;
  checkb "split stream differs" true !differs

let test_prng_bernoulli_extremes () =
  let r = Util.Prng.create ~seed:1 in
  for _ = 1 to 20 do
    checkb "p=0 never" false (Util.Prng.bernoulli r 0.);
    checkb "p=1 always" true (Util.Prng.bernoulli r 1.)
  done

let test_prng_bernoulli_rate () =
  let r = Util.Prng.create ~seed:3 in
  let hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Util.Prng.bernoulli r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  checkb "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_prng_sample_without_replacement () =
  let r = Util.Prng.create ~seed:5 in
  let s = Util.Prng.sample_without_replacement r ~k:10 ~n:100 in
  checki "size" 10 (Array.length s);
  let sorted = Array.copy s in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "sorted output" sorted s;
  Array.iter (fun x -> checkb "in range" true (x >= 0 && x < 100)) s;
  for i = 1 to Array.length s - 1 do
    checkb "distinct" true (s.(i) <> s.(i - 1))
  done

let test_prng_sample_all () =
  let r = Util.Prng.create ~seed:5 in
  let s = Util.Prng.sample_without_replacement r ~k:10 ~n:10 in
  check (Alcotest.array Alcotest.int) "k=n is identity set"
    (Array.init 10 (fun i -> i))
    s

let test_prng_shuffle_permutes () =
  let r = Util.Prng.create ~seed:11 in
  let a = Array.init 50 (fun i -> i) in
  Util.Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 50 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let s = Util.Stats.create () in
  List.iter (Util.Stats.add s) [ 1.; 2.; 3.; 4. ];
  checki "count" 4 (Util.Stats.count s);
  checkf "mean" 2.5 (Util.Stats.mean s);
  checkf "total" 10. (Util.Stats.total s);
  checkf "min" 1. (Util.Stats.min s);
  checkf "max" 4. (Util.Stats.max s);
  check (Alcotest.float 1e-9) "variance" (5. /. 3.) (Util.Stats.variance s)

let test_stats_merge () =
  let a = Util.Stats.create () and b = Util.Stats.create () and whole = Util.Stats.create () in
  let xs = [ 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. ] in
  List.iteri
    (fun i x ->
      Util.Stats.add whole x;
      if i < 3 then Util.Stats.add a x else Util.Stats.add b x)
    xs;
  let merged = Util.Stats.merge a b in
  checki "count" (Util.Stats.count whole) (Util.Stats.count merged);
  check (Alcotest.float 1e-9) "mean" (Util.Stats.mean whole) (Util.Stats.mean merged);
  check (Alcotest.float 1e-9) "variance" (Util.Stats.variance whole)
    (Util.Stats.variance merged)

let test_stats_percentile () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  checkf "median" 3. (Util.Stats.median_of_sorted a);
  checkf "p0" 1. (Util.Stats.percentile_of_sorted a 0.);
  checkf "p100" 5. (Util.Stats.percentile_of_sorted a 1.);
  checkf "p25" 2. (Util.Stats.percentile_of_sorted a 0.25)

let test_stats_exact_percentile () =
  (* Nearest-rank: the answer is always an element of the input. *)
  checkb "empty is nan" true
    (Float.is_nan (Util.Stats.exact_percentile_of_sorted [||] 0.5));
  let single = [| 7. |] in
  checkf "single p50" 7. (Util.Stats.p50_of_sorted single);
  checkf "single p99" 7. (Util.Stats.p99_of_sorted single);
  let a = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10. |] in
  checkf "p50 of 1..10" 5. (Util.Stats.p50_of_sorted a);
  checkf "p90 of 1..10" 9. (Util.Stats.p90_of_sorted a);
  checkf "p99 of 1..10" 10. (Util.Stats.p99_of_sorted a);
  (* Ties: rank arithmetic is over positions, values just repeat. *)
  let tied = [| 2.; 2.; 2.; 2.; 9. |] in
  checkf "tied p50" 2. (Util.Stats.p50_of_sorted tied);
  checkf "tied p90" 9. (Util.Stats.p90_of_sorted tied);
  (* p clamps into [1, n]. *)
  checkf "p0 clamps to first" 1. (Util.Stats.exact_percentile_of_sorted a 0.);
  checkf "p1 is last" 10. (Util.Stats.exact_percentile_of_sorted a 1.)

(* ------------------------------------------------------------------ *)
(* Fib *)

let test_fib_values () =
  List.iteri
    (fun k expected -> checki (Printf.sprintf "F_%d" k) expected (Util.Fib.f k))
    [ 0; 1; 1; 2; 3; 5; 8; 13; 21; 34; 55; 89 ]

let test_fib_recurrence () =
  for k = 2 to 60 do
    checki "F_k = F_{k-1} + F_{k-2}" (Util.Fib.f (k - 1) + Util.Fib.f (k - 2)) (Util.Fib.f k)
  done

let test_fib_binet () =
  for k = 0 to 40 do
    let err = Float.abs (Util.Fib.binet k -. float_of_int (Util.Fib.f k)) in
    checkb "binet matches" true (err < 1e-6 *. Float.max 1. (float_of_int (Util.Fib.f k)))
  done

let test_fib_golden_inequality () =
  (* The one Fibonacci fact the paper's Lemma 8 uses:
     phi * F_k + 1 > F_{k+1} (for k >= 1; at k = 0 it is an equality). *)
  for k = 1 to 60 do
    checkb "phi*F_k + 1 > F_{k+1}" true
      ((Util.Fib.phi *. float_of_int (Util.Fib.f k)) +. 1. > float_of_int (Util.Fib.f (k + 1)))
  done

let test_fib_order_bound () =
  (* o <= log_phi log2 n; for n = 2^16, log2 n = 16, log_phi 16 ~ 5.76 *)
  checki "order bound 2^16" 5 (Util.Fib.order_upper_bound 65536);
  checkb "order bound >= 1" true (Util.Fib.order_upper_bound 2 >= 1)

let test_fib_first_geq () =
  checki "first F >= 10" 7 (Util.Fib.index_of_first_geq 10);
  checki "first F >= 1" 1 (Util.Fib.index_of_first_geq 1);
  checki "first F >= 0" 0 (Util.Fib.index_of_first_geq 0)

(* ------------------------------------------------------------------ *)
(* Tower *)

let test_tower_values () =
  checki "s_0 = D" 4 (Util.Tower.s ~d:4 0);
  checki "s_1 = D" 4 (Util.Tower.s ~d:4 1);
  checki "s_2 = 256" 256 (Util.Tower.s ~d:4 2);
  checkb "s_3 saturates" true (Util.Tower.s ~d:4 3 = Util.Tower.cap)

let test_tower_pow_sat () =
  checki "2^10" 1024 (Util.Tower.pow_sat 2 10);
  checki "7^0" 1 (Util.Tower.pow_sat 7 0);
  checki "0^5" 0 (Util.Tower.pow_sat 0 5);
  checkb "big saturates" true (Util.Tower.pow_sat 10 30 = Util.Tower.cap)

let test_tower_lemma1_part1 () =
  (* Lemma 1(1): L <= log* n - log* D + 1 for n = s_1^2 ... s_{L-1}^2 s_L. *)
  let d = 4 in
  let mul_sat a b =
    if a = 0 || b = 0 then 0
    else if a > Util.Tower.cap / b then Util.Tower.cap
    else Stdlib.min Util.Tower.cap (a * b)
  in
  List.iter
    (fun l ->
      (* build n exactly of the paper's form, saturating harmlessly *)
      let n = ref 1 in
      for i = 1 to l - 1 do
        let s = Util.Tower.s ~d i in
        n := mul_sat (mul_sat !n s) s
      done;
      let n = mul_sat !n (Util.Tower.s ~d l) in
      let bound = Util.Tower.log_star n - Util.Tower.log_star d + 1 in
      checkb
        (Printf.sprintf "L=%d <= log* bound (n=%d, bound=%d)" l n bound)
        true
        (l <= bound || n >= Util.Tower.cap))
    [ 1; 2; 3 ]

let test_tower_lemma1_part2 () =
  (* Lemma 1(2): log_b s_i = s_1 ... s_{i-1} log_b D, checked on every
     index where s_i is exactly representable. *)
  List.iter
    (fun d ->
      let prod = ref 1. in
      let i = ref 1 in
      let continue = ref true in
      while !continue do
        let s = Util.Tower.s ~d !i in
        if s >= Util.Tower.cap then continue := false
        else begin
          let lhs = log (float_of_int s) in
          let rhs = !prod *. log (float_of_int d) in
          checkb
            (Printf.sprintf "d=%d i=%d: log s_i = prod * log D" d !i)
            true
            (Float.abs (lhs -. rhs) < 1e-9 *. Float.max 1. rhs);
          prod := !prod *. float_of_int s;
          incr i
        end
      done)
    [ 2; 3; 4; 6 ]

let test_tower_lemma1_part3 () =
  (* Lemma 1(3): s_i >= 2^{i+1} s_1 ... s_{i-1}, checked where exact. *)
  let d = 4 in
  let prod = ref 1 in
  for i = 1 to 3 do
    let si = Util.Tower.s ~d i in
    if si < Util.Tower.cap then
      checkb
        (Printf.sprintf "s_%d >= 2^%d * prod" i (i + 1))
        true
        (si >= Util.Tower.pow_sat 2 (i + 1) * !prod / 2
        && (si >= (1 lsl (i + 1)) * !prod || si = Util.Tower.cap));
    prod := Stdlib.min Util.Tower.cap (!prod * si)
  done

let test_tower_rounds_for () =
  let d = 4 in
  (* n <= s_1 = 4 needs 1 round; n <= s_1^2 s_2 = 4096 needs 2. *)
  checki "tiny" 1 (Util.Tower.rounds_for ~d ~n:4);
  checki "mid" 2 (Util.Tower.rounds_for ~d ~n:4096);
  checki "mid+" 3 (Util.Tower.rounds_for ~d ~n:5000);
  checkb "huge still finite" true (Util.Tower.rounds_for ~d ~n:1_000_000_000 <= 4)

let test_tower_log_star () =
  checki "log* 1" 0 (Util.Tower.log_star 1);
  checki "log* 2" 1 (Util.Tower.log_star 2);
  checki "log* 4" 2 (Util.Tower.log_star 4);
  checki "log* 16" 3 (Util.Tower.log_star 16);
  checki "log* 65536" 4 (Util.Tower.log_star 65536)

let test_tower_zeta () =
  check (Alcotest.float 1e-3) "zeta ~ 0.325" 0.325 Util.Tower.zeta

(* ------------------------------------------------------------------ *)
(* Union_find *)

let test_uf_basic () =
  let u = Util.Union_find.create 10 in
  checki "initial sets" 10 (Util.Union_find.count u);
  checkb "union works" true (Util.Union_find.union u 0 1);
  checkb "re-union is noop" false (Util.Union_find.union u 0 1);
  checkb "same" true (Util.Union_find.same u 0 1);
  checkb "not same" false (Util.Union_find.same u 0 2);
  checki "sets after union" 9 (Util.Union_find.count u);
  checki "size" 2 (Util.Union_find.size_of u 1)

let test_uf_chain () =
  let u = Util.Union_find.create 100 in
  for i = 0 to 98 do
    ignore (Util.Union_find.union u i (i + 1))
  done;
  checki "single set" 1 (Util.Union_find.count u);
  checki "size 100" 100 (Util.Union_find.size_of u 50);
  checkb "ends connected" true (Util.Union_find.same u 0 99)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_sorts () =
  let h = Util.Heap.create () in
  let r = Util.Prng.create ~seed:9 in
  let keys = Array.init 200 (fun _ -> Util.Prng.int r 1000) in
  Array.iter (fun k -> Util.Heap.push h ~key:k k) keys;
  checki "length" 200 (Util.Heap.length h);
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  Array.iter
    (fun expected ->
      match Util.Heap.pop_min h with
      | Some (k, v) ->
          checki "pop order" expected k;
          checki "payload" k v
      | None -> Alcotest.fail "heap empty too early")
    sorted;
  checkb "empty at end" true (Util.Heap.is_empty h)

let test_heap_peek () =
  let h = Util.Heap.create () in
  checkb "peek empty" true (Util.Heap.peek_min h = None);
  Util.Heap.push h ~key:5 "five";
  Util.Heap.push h ~key:2 "two";
  (match Util.Heap.peek_min h with
  | Some (2, "two") -> ()
  | _ -> Alcotest.fail "peek should see min");
  checki "peek does not pop" 2 (Util.Heap.length h)

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basic () =
  let b = Util.Bitset.create 100 in
  checki "cap" 100 (Util.Bitset.capacity b);
  checki "empty" 0 (Util.Bitset.cardinal b);
  Util.Bitset.set b 0;
  Util.Bitset.set b 63;
  Util.Bitset.set b 64;
  Util.Bitset.set b 99;
  Util.Bitset.set b 99;
  checki "cardinal" 4 (Util.Bitset.cardinal b);
  checkb "mem 63" true (Util.Bitset.mem b 63);
  checkb "not mem 1" false (Util.Bitset.mem b 1);
  Util.Bitset.clear b 63;
  checkb "cleared" false (Util.Bitset.mem b 63);
  checki "cardinal after clear" 3 (Util.Bitset.cardinal b);
  check (Alcotest.list Alcotest.int) "to_list" [ 0; 64; 99 ] (Util.Bitset.to_list b);
  Util.Bitset.reset b;
  checki "reset" 0 (Util.Bitset.cardinal b)

let test_bitset_iter_order () =
  let b = Util.Bitset.create 10 in
  List.iter (Util.Bitset.set b) [ 7; 1; 4 ];
  let seen = ref [] in
  Util.Bitset.iter b (fun i -> seen := i :: !seen);
  check (Alcotest.list Alcotest.int) "ascending" [ 1; 4; 7 ] (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_uf_union_count =
  QCheck.Test.make ~name:"union_find: count decreases exactly on merges" ~count:100
    QCheck.(pair (int_bound 30) (list (pair (int_bound 30) (int_bound 30))))
    (fun (n, ops) ->
      let n = n + 2 in
      let u = Util.Union_find.create n in
      let merges = ref 0 in
      List.iter
        (fun (a, b) ->
          let a = a mod n and b = b mod n in
          if Util.Union_find.union u a b then incr merges)
        ops;
      Util.Union_find.count u = n - !merges)

let prop_heap_matches_sort =
  QCheck.Test.make ~name:"heap: pop sequence is sorted" ~count:100
    QCheck.(list small_int)
    (fun keys ->
      let h = Util.Heap.create () in
      List.iter (fun k -> Util.Heap.push h ~key:k ()) keys;
      let rec drain acc =
        match Util.Heap.pop_min h with
        | None -> List.rev acc
        | Some (k, ()) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"stats: min <= mean <= max" ~count:100
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Util.Stats.create () in
      List.iter (Util.Stats.add s) xs;
      Util.Stats.min s <= Util.Stats.mean s +. 1e-9
      && Util.Stats.mean s <= Util.Stats.max s +. 1e-9)

let prop_sample_without_replacement_distinct =
  QCheck.Test.make ~name:"prng: sample_without_replacement distinct & in-range" ~count:100
    QCheck.(pair (int_bound 50) (int_bound 200))
    (fun (k, n) ->
      let r = Util.Prng.create ~seed:(k + (n * 1000)) in
      let s = Util.Prng.sample_without_replacement r ~k ~n in
      let l = Array.to_list s in
      List.length l = Stdlib.min k n
      && List.for_all (fun x -> x >= 0 && x < n) l
      && List.length (List.sort_uniq compare l) = List.length l)

(* ------------------------------------------------------------------ *)
(* Dist *)

let test_dist_categorical_probabilities () =
  let s = Util.Dist.categorical ~weights:[| 1.; 3.; 0.; 4. |] in
  checki "support" 4 (Util.Dist.support s);
  checkf "p0" 0.125 (Util.Dist.probability s 0);
  checkf "p1" 0.375 (Util.Dist.probability s 1);
  checkf "p2" 0. (Util.Dist.probability s 2);
  checkf "p3" 0.5 (Util.Dist.probability s 3)

let test_dist_categorical_invalid () =
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  checkb "empty" true (raises (fun () -> Util.Dist.categorical ~weights:[||]));
  checkb "negative" true
    (raises (fun () -> Util.Dist.categorical ~weights:[| 1.; -2. |]));
  checkb "zero sum" true
    (raises (fun () -> Util.Dist.categorical ~weights:[| 0.; 0. |]));
  checkb "zipf n=0" true (raises (fun () -> Util.Dist.zipf ~n:0 ~s:1.));
  checkb "zipf s<0" true (raises (fun () -> Util.Dist.zipf ~n:5 ~s:(-1.)))

let test_dist_zero_weight_never_drawn () =
  let s = Util.Dist.categorical ~weights:[| 1.; 0.; 1. |] in
  let rng = Util.Prng.create ~seed:11 in
  for _ = 1 to 2000 do
    checkb "zero-weight outcome never drawn" true (Util.Dist.sample s rng <> 1)
  done

let test_dist_deterministic () =
  let s = Util.Dist.zipf ~n:64 ~s:1.2 in
  let draw seed =
    let rng = Util.Prng.create ~seed in
    Array.init 500 (fun _ -> Util.Dist.sample s rng)
  in
  check (Alcotest.array Alcotest.int) "same seed, same draws" (draw 9) (draw 9);
  checkb "different seed differs" true (draw 9 <> draw 10)

let test_dist_zipf_uniform_at_s0 () =
  let n = 10 in
  let s = Util.Dist.zipf ~n ~s:0. in
  for i = 0 to n - 1 do
    checkf "uniform" 0.1 (Util.Dist.probability s i)
  done

let test_dist_zipf_tail_shape () =
  (* P(i) ∝ (i+1)^-s: probabilities decay by exactly (i+1/i+2)^s, and
     empirical head frequency matches the analytic mass. *)
  let n = 50 and sexp = 1.5 in
  let s = Util.Dist.zipf ~n ~s:sexp in
  for i = 0 to n - 2 do
    let ratio = Util.Dist.probability s i /. Util.Dist.probability s (i + 1) in
    let expected =
      (float_of_int (i + 2) /. float_of_int (i + 1)) ** sexp
    in
    checkb "monotone decay at the analytic rate" true
      (Float.abs (ratio -. expected) < 1e-9)
  done;
  let rng = Util.Prng.create ~seed:3 in
  let trials = 20_000 in
  let head = ref 0 in
  for _ = 1 to trials do
    let x = Util.Dist.sample s rng in
    checkb "in support" true (x >= 0 && x < n);
    if x = 0 then incr head
  done;
  let rate = float_of_int !head /. float_of_int trials in
  let p0 = Util.Dist.probability s 0 in
  checkb
    (Printf.sprintf "head rate %.3f near analytic %.3f" rate p0)
    true
    (Float.abs (rate -. p0) < 0.02)

let prop_dist_sample_in_support =
  QCheck.Test.make ~name:"dist: zipf samples stay in [0,n)" ~count:50
    QCheck.(pair (int_range 1 40) (int_range 0 30))
    (fun (n, s10) ->
      let s = Util.Dist.zipf ~n ~s:(float_of_int s10 /. 10.) in
      let rng = Util.Prng.create ~seed:(n + s10) in
      let ok = ref true in
      for _ = 1 to 200 do
        let x = Util.Dist.sample s rng in
        if x < 0 || x >= n then ok := false
      done;
      !ok)

let suite =
  [
    ( "util.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "split independent" `Quick test_prng_split_independent;
        Alcotest.test_case "bernoulli extremes" `Quick test_prng_bernoulli_extremes;
        Alcotest.test_case "bernoulli rate" `Quick test_prng_bernoulli_rate;
        Alcotest.test_case "sample without replacement" `Quick
          test_prng_sample_without_replacement;
        Alcotest.test_case "sample k=n" `Quick test_prng_sample_all;
        Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        QCheck_alcotest.to_alcotest prop_sample_without_replacement_distinct;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "basic" `Quick test_stats_basic;
        Alcotest.test_case "merge" `Quick test_stats_merge;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "exact percentile" `Quick test_stats_exact_percentile;
        QCheck_alcotest.to_alcotest prop_stats_mean_bounds;
      ] );
    ( "util.fib",
      [
        Alcotest.test_case "values" `Quick test_fib_values;
        Alcotest.test_case "recurrence" `Quick test_fib_recurrence;
        Alcotest.test_case "binet" `Quick test_fib_binet;
        Alcotest.test_case "golden inequality (Lemma 8)" `Quick test_fib_golden_inequality;
        Alcotest.test_case "order bound" `Quick test_fib_order_bound;
        Alcotest.test_case "first geq" `Quick test_fib_first_geq;
      ] );
    ( "util.tower",
      [
        Alcotest.test_case "values" `Quick test_tower_values;
        Alcotest.test_case "pow_sat" `Quick test_tower_pow_sat;
        Alcotest.test_case "Lemma 1(1)" `Quick test_tower_lemma1_part1;
        Alcotest.test_case "Lemma 1(2)" `Quick test_tower_lemma1_part2;
        Alcotest.test_case "Lemma 1(3)" `Quick test_tower_lemma1_part3;
        Alcotest.test_case "rounds_for" `Quick test_tower_rounds_for;
        Alcotest.test_case "log_star" `Quick test_tower_log_star;
        Alcotest.test_case "zeta" `Quick test_tower_zeta;
      ] );
    ( "util.union_find",
      [
        Alcotest.test_case "basic" `Quick test_uf_basic;
        Alcotest.test_case "chain" `Quick test_uf_chain;
        QCheck_alcotest.to_alcotest prop_uf_union_count;
      ] );
    ( "util.heap",
      [
        Alcotest.test_case "sorts" `Quick test_heap_sorts;
        Alcotest.test_case "peek" `Quick test_heap_peek;
        QCheck_alcotest.to_alcotest prop_heap_matches_sort;
      ] );
    ( "util.bitset",
      [
        Alcotest.test_case "basic" `Quick test_bitset_basic;
        Alcotest.test_case "iter order" `Quick test_bitset_iter_order;
      ] );
    ( "util.dist",
      [
        Alcotest.test_case "categorical probabilities" `Quick
          test_dist_categorical_probabilities;
        Alcotest.test_case "invalid arguments" `Quick test_dist_categorical_invalid;
        Alcotest.test_case "zero weight never drawn" `Quick
          test_dist_zero_weight_never_drawn;
        Alcotest.test_case "deterministic in the seed" `Quick test_dist_deterministic;
        Alcotest.test_case "zipf s=0 is uniform" `Quick test_dist_zipf_uniform_at_s0;
        Alcotest.test_case "zipf tail shape" `Quick test_dist_zipf_tail_shape;
        QCheck_alcotest.to_alcotest prop_dist_sample_in_support;
      ] );
  ]
