(* Tests for the synchronous network simulator. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Bfs = Graphlib.Bfs
module Sim = Distnet.Sim
module Protocols = Distnet.Protocols

let rng () = Util.Prng.create ~seed:91

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_send_requires_link () =
  let g = Gen.path 4 in
  let t = Sim.create g in
  (* The diagnostic names the round and both endpoints. *)
  Alcotest.check_raises "non-neighbor rejected"
    (Invalid_argument "Sim.send: round 0: 0 -> 2 is not a network link")
    (fun () -> Sim.send t ~src:0 ~dst:2 ~words:1 ())

let test_send_one_per_edge_per_round () =
  let g = Gen.path 4 in
  let t = Sim.create g in
  Sim.send t ~src:0 ~dst:1 ~words:1 ();
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Sim.send: round 0: 0 already sent to 1 this round")
    (fun () -> Sim.send t ~src:0 ~dst:1 ~words:1 ());
  (* After the round advances, sending again is allowed. *)
  ignore (Sim.step t (fun ~dst:_ ~src:_ () -> ()));
  checki "round accessor advanced" 1 (Sim.round t);
  Sim.send t ~src:0 ~dst:1 ~words:1 ();
  ignore (Sim.step t (fun ~dst:_ ~src:_ () -> ()));
  checki "rounds" 2 (Sim.stats t).Sim.rounds;
  checki "round accessor = stats.rounds" 2 (Sim.round t)

let test_word_accounting () =
  let g = Gen.path 3 in
  let t = Sim.create g in
  Sim.send t ~src:0 ~dst:1 ~words:3 ();
  Sim.send t ~src:2 ~dst:1 ~words:5 ();
  ignore (Sim.step t (fun ~dst:_ ~src:_ () -> ()));
  let s = Sim.stats t in
  checki "messages" 2 s.Sim.messages;
  checki "words" 8 s.Sim.words;
  checki "max message" 5 s.Sim.max_message_words

let test_positive_words_required () =
  let g = Gen.path 2 in
  let t = Sim.create g in
  Alcotest.check_raises "zero-word message rejected"
    (Invalid_argument "Sim.send: words must be >= 1") (fun () ->
      Sim.send t ~src:0 ~dst:1 ~words:0 ())

let test_quiescence () =
  let g = Gen.path 3 in
  let t = Sim.create g in
  checkb "initially quiescent" true (Sim.quiescent t);
  Sim.send t ~src:0 ~dst:1 ~words:1 ();
  checkb "pending" false (Sim.quiescent t);
  Sim.run_until_quiescent t (fun ~dst:_ ~src:_ () -> ());
  checkb "drained" true (Sim.quiescent t)

let test_relay_chain_rounds () =
  (* Relaying a token down a path of length k takes k rounds. *)
  let k = 7 in
  let g = Gen.path (k + 1) in
  let t = Sim.create g in
  Sim.send t ~src:0 ~dst:1 ~words:1 1;
  Sim.run_until_quiescent t (fun ~dst ~src:_ hop ->
      if dst < k then Sim.send t ~src:dst ~dst:(dst + 1) ~words:1 (hop + 1));
  checki "rounds = path length" k (Sim.stats t).Sim.rounds

let test_idle_rounds () =
  let g = Gen.path 2 in
  let t = Sim.create g in
  Sim.add_idle_rounds t 5;
  checki "idle accounted" 5 (Sim.stats t).Sim.rounds

(* ------------------------------------------------------------------ *)
(* BFS protocol *)

let test_dist_bfs_matches_sequential () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:150 ~p:0.03 in
  let _, dist = Protocols.bfs g ~root:0 in
  let expected = Bfs.distances g ~src:0 in
  Alcotest.check (Alcotest.array Alcotest.int) "distances agree" expected dist

let test_dist_bfs_rounds () =
  let g = Gen.path 10 in
  let stats, dist = Protocols.bfs g ~root:0 in
  checki "distance to end" 9 dist.(9);
  (* Layered BFS needs ecc rounds of sends + 1 drain round. *)
  checkb "rounds close to eccentricity" true
    (stats.Sim.rounds >= 9 && stats.Sim.rounds <= 11);
  checki "unit messages" 1 stats.Sim.max_message_words

let test_dist_bfs_disconnected () =
  let g = G.of_edges ~n:5 [ (0, 1); (2, 3) ] in
  let _, dist = Protocols.bfs g ~root:0 in
  checki "reached" 1 dist.(1);
  checki "unreachable" (-1) dist.(2);
  checki "isolated" (-1) dist.(4)

(* ------------------------------------------------------------------ *)
(* Flooding *)

let test_flood_reaches_component () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:100 ~p:0.04 in
  let stats, reached = Protocols.flood g ~root:3 ~payload_words:2 in
  Array.iter (fun b -> checkb "all reached" true b) reached;
  checkb "messages at least n-1" true (stats.Sim.messages >= G.n g - 1);
  checki "payload width respected" 2 stats.Sim.max_message_words

let test_flood_message_count_on_tree () =
  (* On a path, flooding sends exactly one message per edge direction
     away from the root plus the initial edge. *)
  let g = Gen.path 6 in
  let stats, _ = Protocols.flood g ~root:0 ~payload_words:1 in
  checki "one message per hop" 5 stats.Sim.messages

(* ------------------------------------------------------------------ *)
(* Node-program runner *)

module Echo = struct
  (* Each node sends its id to all neighbors in round 1 and records the
     max id it ever hears; silence afterwards. *)
  type state = { me : int; best : int }
  type message = int

  let message_words _ = 1

  let init g v =
    let out =
      Graphlib.Graph.fold_neighbors g v ~init:[] ~f:(fun acc w _ -> (w, v) :: acc)
    in
    ({ me = v; best = v }, out)

  let receive _g ~round:_ _v st inbox =
    let best = List.fold_left (fun acc (_, x) -> Stdlib.max acc x) st.best inbox in
    ({ st with best }, [])
end

module Echo_run = Sim.Run (Echo)

let test_runner_echo () =
  let g = Gen.cycle 8 in
  let stats, states = Echo_run.run g in
  Array.iteri
    (fun v st ->
      let expected =
        Graphlib.Graph.fold_neighbors g v ~init:v ~f:(fun acc w _ -> Stdlib.max acc w)
      in
      checki "max neighbor id" expected st.Echo.best)
    states;
  checkb "bounded rounds" true (stats.Sim.rounds <= 2)

module Max_flood = struct
  (* Classic max-id flooding: every node forwards improvements; at
     quiescence every node knows the global max in its component. *)
  type state = int
  type message = int

  let message_words _ = 1

  let init g v =
    let out =
      Graphlib.Graph.fold_neighbors g v ~init:[] ~f:(fun acc w _ -> (w, v) :: acc)
    in
    (v, out)

  let receive g ~round:_ v st inbox =
    let best = List.fold_left (fun acc (_, x) -> Stdlib.max acc x) st inbox in
    if best > st then
      ( best,
        Graphlib.Graph.fold_neighbors g v ~init:[] ~f:(fun acc w _ ->
            (w, best) :: acc) )
    else (st, [])
end

module Max_run = Sim.Run (Max_flood)

let test_runner_max_flood () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:60 ~p:0.06 in
  let _, states = Max_run.run g in
  Array.iter (fun st -> checki "everyone learns max" (G.n g - 1) st) states

(* ------------------------------------------------------------------ *)
(* Fault injection, reliable delivery, trace/replay *)

module Fault = Distnet.Fault
module Trace = Distnet.Trace
module Reliable = Distnet.Reliable

let stats_testable =
  Alcotest.testable Sim.pp_stats (fun a b -> Trace.diff_stats a b = [])

let test_zero_fault_plan_identical () =
  (* A randomized plan with all rates zero must be byte-identical to
     the seed engine: same stats, same results, on BFS and flooding. *)
  let r = rng () in
  let g = Gen.connected_gnp r ~n:150 ~p:0.03 in
  let zero = Fault.make ~seed:7 Fault.default_spec in
  let st0, d0 = Protocols.bfs g ~root:0 in
  let st1, d1 = Protocols.bfs ~faults:zero g ~root:0 in
  Alcotest.check stats_testable "bfs stats identical" st0 st1;
  Alcotest.check (Alcotest.array Alcotest.int) "bfs distances identical" d0 d1;
  let sf0, r0 = Protocols.flood g ~root:3 ~payload_words:2 in
  let sf1, r1 = Protocols.flood ~faults:zero g ~root:3 ~payload_words:2 in
  Alcotest.check stats_testable "flood stats identical" sf0 sf1;
  Alcotest.check (Alcotest.array Alcotest.bool) "flood reach identical" r0 r1

let test_drop_loses_messages () =
  (* Certain loss: nothing is ever delivered, but transmissions are
     still charged to the statistics. *)
  let g = Gen.path 2 in
  let faults = Fault.make ~seed:1 { Fault.default_spec with Fault.drop = 1. } in
  let t = Sim.create ~faults g in
  Sim.send t ~src:0 ~dst:1 ~words:4 ();
  let delivered = Sim.step t (fun ~dst:_ ~src:_ () -> Alcotest.fail "delivered") in
  checki "nothing delivered" 0 delivered;
  checki "transmission charged" 1 (Sim.stats t).Sim.messages;
  checki "words charged" 4 (Sim.stats t).Sim.words

let test_dup_delivers_twice () =
  let g = Gen.path 2 in
  let faults = Fault.make ~seed:1 { Fault.default_spec with Fault.dup = 1. } in
  let t = Sim.create ~faults g in
  Sim.send t ~src:0 ~dst:1 ~words:2 ();
  let delivered = Sim.step t (fun ~dst:_ ~src:_ () -> ()) in
  checki "two copies" 2 delivered;
  checki "both charged" 2 (Sim.stats t).Sim.messages;
  checki "words doubled" 4 (Sim.stats t).Sim.words

let test_delay_holds_messages () =
  let g = Gen.path 2 in
  let faults =
    Fault.make ~seed:1
      { Fault.default_spec with Fault.delay = 1.; max_delay = 1 }
  in
  let t = Sim.create ~faults g in
  Sim.send t ~src:0 ~dst:1 ~words:1 ();
  checki "held, not delivered" 0 (Sim.step t (fun ~dst:_ ~src:_ () -> ()));
  checkb "still in flight" false (Sim.quiescent t);
  checki "arrives one round late" 1 (Sim.step t (fun ~dst:_ ~src:_ () -> ()));
  checkb "drained" true (Sim.quiescent t)

let test_crash_stops_node () =
  (* Node 2 of a path 0-1-2-3 crashes at round 1: it never forwards,
     so reliable BFS gives up on 2 and 3 after max_retries. *)
  let g = Gen.path 4 in
  let faults =
    Fault.make ~seed:1 { Fault.default_spec with Fault.crashes = [ (2, 1) ] }
  in
  let _, dist = Protocols.reliable_bfs ~faults g ~root:0 in
  checki "node 1 reached" 1 dist.(1);
  checki "crashed node frozen" (-1) dist.(2);
  checki "behind the crash" (-1) dist.(3)

let test_reliable_bfs_loss_free_matches () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:120 ~p:0.04 in
  let _, expected = Protocols.bfs g ~root:0 in
  let _, dist = Protocols.reliable_bfs g ~root:0 in
  Alcotest.check (Alcotest.array Alcotest.int) "distances agree" expected dist

let test_reliable_bfs_under_drop () =
  (* The acceptance workload: 20% loss, seed 1 — the reliable protocol
     still computes the exact distance array. *)
  let r = Util.Prng.create ~seed:1 in
  let g = Gen.connected_gnp r ~n:200 ~p:0.03 in
  let faults = Fault.make ~seed:1 { Fault.default_spec with Fault.drop = 0.2 } in
  let st_free, expected = Protocols.bfs g ~root:0 in
  let st, dist = Protocols.reliable_bfs ~faults g ~root:0 in
  Alcotest.check (Alcotest.array Alcotest.int) "distances survive 20% loss"
    expected dist;
  checkb "loss costs extra traffic" true (st.Sim.words > st_free.Sim.words)

let test_reliable_flood_under_chaos () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:80 ~p:0.06 in
  let faults =
    Fault.make ~seed:3
      {
        Fault.default_spec with
        Fault.drop = 0.25;
        dup = 0.1;
        delay = 0.2;
        max_delay = 3;
      }
  in
  let _, reached = Protocols.reliable_flood ~faults g ~root:0 ~payload_words:4 in
  Array.iter (fun b -> checkb "all reached despite faults" true b) reached

let test_trace_replay_reproduces_stats () =
  let r = Util.Prng.create ~seed:2 in
  let g = Gen.connected_gnp r ~n:90 ~p:0.05 in
  let spec =
    {
      Fault.drop = 0.2;
      dup = 0.05;
      delay = 0.1;
      max_delay = 2;
      crashes = [ (7, 9) ];
      restarts = [];
      churn = [];
      drop_profile = [];
    }
  in
  let tracer = Trace.create () in
  let st, dist = Protocols.reliable_bfs ~faults:(Fault.make ~seed:5 spec) ~tracer g ~root:0 in
  checkb "trace non-empty" true (Trace.length tracer > 0);
  (* Replay from the recorded events: no PRNG, fates are scripted. *)
  let replayed = Fault.scripted (Trace.events tracer) in
  let st', dist' = Protocols.reliable_bfs ~faults:replayed g ~root:0 in
  Alcotest.check stats_testable "replay stats identical" st st';
  Alcotest.check (Alcotest.array Alcotest.int) "replay distances identical"
    dist dist'

let test_trace_save_load_roundtrip () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:60 ~p:0.08 in
  let tracer = Trace.create () in
  let faults =
    Fault.make ~seed:4
      { Fault.default_spec with Fault.drop = 0.3; delay = 0.1; max_delay = 2 }
  in
  let st, _ = Protocols.reliable_bfs ~faults ~tracer g ~root:0 in
  let path = Filename.temp_file "ultrasparse" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save ~stats:st tracer path;
      let events, stored = Trace.load path in
      checki "every event round-trips" (Trace.length tracer)
        (List.length events);
      (match stored with
      | Some s -> Alcotest.check stats_testable "stats round-trip" st s
      | None -> Alcotest.fail "stats line missing");
      checkb "events equal after reload" true (events = Trace.events tracer);
      (* ... and the reloaded trace still replays bit-for-bit. *)
      let st', _ = Protocols.reliable_bfs ~faults:(Fault.scripted events) g ~root:0 in
      Alcotest.check stats_testable "reloaded replay stats" st st')

let test_trace_parse_error_truncated () =
  (* A file whose last line was cut mid-record (a crashed writer, a
     partial transfer): the error must name that exact line. *)
  let path = Filename.temp_file "ultrasparse" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "{\"round\":0,\"kind\":\"send\",\"src\":0,\"dst\":1,\"words\":2}\n";
      output_string oc
        "{\"round\":1,\"kind\":\"deliver\",\"src\":0,\"dst\":1,\"words\":2}\n";
      output_string oc "{\"round\":2,\"kind\":\"dro";
      close_out oc;
      let seen = ref 0 in
      match Trace.iter_file path (fun _ -> incr seen) with
      | _ -> Alcotest.fail "expected Parse_error on the truncated tail"
      | exception Trace.Parse_error { file; line; msg } ->
          checkb "file named" true (file = path);
          checki "events before the bad line were streamed" 2 !seen;
          checki "1-based line number" 3 line;
          checkb "message mentions the missing field" true
            (String.length msg > 0))

let test_trace_parse_error_garbage () =
  let path = Filename.temp_file "ultrasparse" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let check_fails ~line content =
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        match Trace.iter_file path (fun _ -> ()) with
        | _ -> Alcotest.failf "expected Parse_error for %S" content
        | exception Trace.Parse_error e ->
            checki "line number" line e.line
      in
      (* garbage line in the middle *)
      check_fails ~line:2
        "{\"round\":0,\"kind\":\"send\",\"src\":0,\"dst\":1,\"words\":2}\n\
         not json at all\n";
      (* unknown kind *)
      check_fails ~line:1
        "{\"round\":0,\"kind\":\"teleport\",\"src\":0,\"dst\":1,\"words\":2}\n";
      (* overflowing integer surfaces as a missing field, not a crash *)
      check_fails ~line:1
        "{\"round\":99999999999999999999,\"kind\":\"send\",\"src\":0,\"dst\":1,\"words\":2}\n";
      (* blank/CRLF lines stay tolerated: no error here *)
      let oc = open_out path in
      output_string oc
        "{\"round\":0,\"kind\":\"send\",\"src\":0,\"dst\":1,\"words\":2}\r\n\n   \n";
      close_out oc;
      let n = ref 0 in
      ignore (Trace.iter_file path (fun _ -> incr n));
      checki "CRLF + blank lines tolerated" 1 !n)

let test_budget_failure_reports_stats () =
  (* Two nodes ping-pong forever: the budget failure must carry the
     accumulated statistics so non-convergence is diagnosable. *)
  let g = Gen.path 2 in
  let t = Sim.create g in
  Sim.send t ~src:0 ~dst:1 ~words:1 ();
  match
    Sim.run_until_quiescent ~max_rounds:10 t (fun ~dst ~src:_ () ->
        Sim.send t ~src:dst ~dst:(1 - dst) ~words:1 ())
  with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      checkb "names the budget" true
        (String.length msg > 0
        && String.sub msg 0 24 = "Sim.run_until_quiescent:");
      let contains needle =
        let nl = String.length needle and hl = String.length msg in
        let rec at i =
          i + nl <= hl && (String.sub msg i nl = needle || at (i + 1))
        in
        at 0
      in
      checkb "reports the round" true (contains "round 10:");
      checkb "reports rounds" true (contains "rounds=10");
      checkb "reports words" true (contains "words=10");
      checkb "reports in-flight endpoints" true (contains "in flight (head ")

let prop_zero_fault_plan_identical =
  QCheck.Test.make ~name:"zero-rate fault plan = seed engine" ~count:25
    QCheck.(int_range 2 60)
    (fun n ->
      let g = Gen.gnp (Util.Prng.create ~seed:n) ~n ~p:(3. /. float_of_int n) in
      let zero = Fault.make ~seed:n Fault.default_spec in
      let st0, d0 = Protocols.bfs g ~root:0 in
      let st1, d1 = Protocols.bfs ~faults:zero g ~root:0 in
      st0 = st1 && d0 = d1)

let prop_reliable_bfs_under_drop =
  QCheck.Test.make ~name:"reliable BFS @20% drop = loss-free BFS" ~count:15
    QCheck.(int_range 2 50)
    (fun n ->
      let g = Gen.gnp (Util.Prng.create ~seed:n) ~n ~p:(3. /. float_of_int n) in
      let faults =
        Fault.make ~seed:(n + 1) { Fault.default_spec with Fault.drop = 0.2 }
      in
      let _, expected = Protocols.bfs g ~root:0 in
      let _, dist = Protocols.reliable_bfs ~faults g ~root:0 in
      expected = dist)

let prop_trace_replay_identical =
  QCheck.Test.make ~name:"trace -> replay reproduces stats" ~count:15
    QCheck.(int_range 2 40)
    (fun n ->
      let g = Gen.gnp (Util.Prng.create ~seed:n) ~n ~p:(3. /. float_of_int n) in
      let faults =
        Fault.make ~seed:(2 * n)
          {
            Fault.default_spec with
            Fault.drop = 0.15;
            dup = 0.1;
            delay = 0.1;
            max_delay = 2;
          }
      in
      let tracer = Trace.create () in
      let st, _ = Protocols.reliable_flood ~faults ~tracer g ~root:0 ~payload_words:2 in
      let st', _ =
        Protocols.reliable_flood
          ~faults:(Fault.scripted (Trace.events tracer))
          g ~root:0 ~payload_words:2
      in
      st = st')

let prop_dist_bfs_equals_sequential =
  QCheck.Test.make ~name:"distributed BFS = sequential BFS" ~count:30
    QCheck.(int_range 2 60)
    (fun n ->
      let r = Util.Prng.create ~seed:n in
      let g = Gen.gnp r ~n ~p:(3. /. float_of_int n) in
      let _, dist = Protocols.bfs g ~root:0 in
      dist = Bfs.distances g ~src:0)

(* ------------------------------------------------------------------ *)
(* Recovery building blocks *)

let test_recovery_checkpoints () =
  let open Distnet.Recovery in
  let ck = Checkpoints.create ~n:3 () in
  checkb "empty store" true (Checkpoints.restore ck 0 = None);
  Checkpoints.commit ck ~phase:"exchange" 0 (1, 2);
  Checkpoints.commit ck ~phase:"wave" 0 (3, 4);
  Checkpoints.commit ck ~phase:"exchange" 2 (5, 6);
  checkb "latest wins" true (Checkpoints.restore ck 0 = Some (3, 4));
  checkb "phase label" true (Checkpoints.phase ck 0 = Some "wave");
  checkb "per node" true (Checkpoints.restore ck 2 = Some (5, 6));
  checkb "untouched node" true (Checkpoints.restore ck 1 = None);
  checki "commit count" 3 (Checkpoints.commits ck)

let test_recovery_detector () =
  let open Distnet.Recovery in
  let d = Detector.create ~n:4 in
  Detector.suspect d 1;
  Detector.note_death d 2;
  checkb "suspected is down" true (Detector.is_down d 1);
  checkb "announced is down" true (Detector.is_down d 2);
  checkb "announced is not suspected" false (Detector.is_suspected d 2);
  checkb "suspected list" true (Detector.suspected d = [ 1 ]);
  (* A death notice supersedes an earlier suspicion: the peer left
     cleanly after all, so its contribution is complete. *)
  Detector.note_death d 1;
  checkb "notice supersedes suspicion" false (Detector.is_suspected d 1);
  checki "no suspects left" 0 (Detector.suspected_count d)

let test_detector_unsuspect_after_message () =
  (* Crash-recovery: a delivery from a suspected node proves the
     suspicion belonged to its dead incarnation. *)
  let open Distnet.Recovery in
  let d = Detector.create ~n:3 in
  Detector.suspect d 1;
  checkb "down while suspected" true (Detector.is_down d 1);
  Detector.unsuspect d 1;
  checkb "message after suspicion clears it" false (Detector.is_down d 1);
  checki "no suspects" 0 (Detector.suspected_count d);
  Detector.unsuspect d 0;
  checkb "unsuspecting an up node is a no-op" false (Detector.is_down d 0);
  (* A death notice is never revoked: the old incarnation completed
     its duties; the reborn one re-enters through repair. *)
  Detector.note_death d 2;
  Detector.unsuspect d 2;
  checkb "announced stays down" true (Detector.is_down d 2);
  checkb "announced is still not suspected" false (Detector.is_suspected d 2)

let test_detector_flapping () =
  (* Suspect/unsuspect cycles (a peer that keeps crashing and
     restarting) must keep the count and the list consistent. *)
  let open Distnet.Recovery in
  let d = Detector.create ~n:2 in
  for _ = 1 to 5 do
    Detector.suspect d 1;
    checki "one suspect while down" 1 (Detector.suspected_count d);
    checkb "listed while down" true (Detector.suspected d = [ 1 ]);
    Detector.unsuspect d 1;
    checki "zero after rebirth" 0 (Detector.suspected_count d);
    checkb "unlisted after rebirth" true (Detector.suspected d = [])
  done;
  Detector.suspect d 1;
  Detector.suspect d 1;
  checki "re-suspecting does not double count" 1 (Detector.suspected_count d);
  Detector.unsuspect d 1;
  Detector.unsuspect d 1;
  checki "re-unsuspecting does not go negative" 0
    (Detector.suspected_count d)

let test_detector_across_phase_boundary () =
  (* Suspicion is orthogonal to checkpointing: a phase boundary
     (commit) or a recovery (restore) neither clears nor creates
     suspicion, and a flap does not disturb the stored snapshot. *)
  let open Distnet.Recovery in
  let d = Detector.create ~n:3 in
  let ck = Checkpoints.create ~n:3 () in
  Detector.suspect d 1;
  Checkpoints.commit ck ~phase:"exchange" 1 (4, 2);
  checkb "commit keeps suspicion" true (Detector.is_suspected d 1);
  Checkpoints.commit ck ~phase:"wave" 2 (9, 9);
  checkb "another node's boundary is irrelevant" true
    (Detector.is_suspected d 1);
  ignore (Checkpoints.restore ck 1);
  checkb "restore keeps suspicion" true (Detector.is_suspected d 1);
  Detector.unsuspect d 1;
  checkb "only a delivery clears it" false (Detector.is_suspected d 1);
  checkb "snapshot survives the flap" true
    (Checkpoints.restore ck 1 = Some (4, 2))

let test_reliable_link_idle () =
  let module P = struct
    type state = unit
    type message = unit

    let message_words () = 1
    let init _ v = ((), if v = 0 then [ (1, ()) ] else [])
    let receive _ ~round:_ _ () _ = ((), [])
  end in
  let module R = Distnet.Reliable.Make (P) in
  let g = Gen.path 2 in
  let st0, out0 = R.init g 0 in
  checkb "first transmission on the wire" true (out0 <> []);
  checkb "message awaiting ack -> busy" false (R.link_idle st0 1);
  let st1, _ = R.init g 1 in
  checkb "nothing queued -> idle" true (R.link_idle st1 0);
  checkb "unknown neighbor -> idle" true (R.link_idle st1 7);
  let _, acks = R.receive g ~round:1 1 st1 (List.map (fun (_, m) -> (0, m)) out0) in
  let _ = R.receive g ~round:2 0 st0 (List.map (fun (_, m) -> (1, m)) acks) in
  checkb "acked -> idle again" true (R.link_idle st0 1)

(* ------------------------------------------------------------------ *)
(* Topology churn: plan validation, engine semantics, healing *)

let test_fault_make_rejects_invalid_plans () =
  let g = Gen.path 4 in
  let expect ?(with_graph = true) msg spec =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore
          (if with_graph then Fault.make ~seed:1 ~graph:g spec
           else Fault.make ~seed:1 spec))
  in
  let with_churn churn = { Fault.default_spec with Fault.churn } in
  expect "Fault.make: duplicate crash entry for node 1"
    { Fault.default_spec with Fault.crashes = [ (1, 5); (1, 9) ] };
  expect "Fault.make: node 1 crash round -2 < 0"
    { Fault.default_spec with Fault.crashes = [ (1, -2) ] };
  expect "Fault.make: crash references vertex 99 outside this 4-vertex graph"
    { Fault.default_spec with Fault.crashes = [ (99, 5) ] };
  (* Churn rejections name the offending event index, constructor and
     field, so a long sampled plan points at its own bad entry. *)
  expect
    "Fault.make: churn event #0 (edge_down): edge references vertex 99 \
     outside this 4-vertex graph"
    (with_churn [ Fault.Edge_down { round = 1; u = 0; v = 99 } ]);
  expect "Fault.make: churn event #0 (edge_down): edge references edge 0-2 \
          not in the graph"
    (with_churn [ Fault.Edge_down { round = 1; u = 0; v = 2 } ]);
  expect "Fault.make: churn event #1 (edge_up): round -1 < 0"
    (with_churn
       [
         Fault.Edge_down { round = 1; u = 0; v = 1 };
         Fault.Edge_up { round = -1; u = 0; v = 1 };
       ]);
  expect "Fault.make: churn event #0 (partition): edges list is empty"
    (with_churn [ Fault.Partition { round = 1; edges = []; heal = None } ]);
  expect
    "Fault.make: churn event #0 (partition): edges references edge 0-3 not \
     in the graph"
    (with_churn
       [ Fault.Partition { round = 1; edges = [ (0, 1); (0, 3) ]; heal = None } ]);
  expect
    "Fault.make: churn event #0 (partition): heal round 5 <= partition round 5"
    (with_churn
       [ Fault.Partition { round = 5; edges = [ (0, 1) ]; heal = Some 5 } ]);
  expect
    "Fault.make: churn event #0 (join): round 0 < 1 (nodes present from the \
     start need no join event)"
    (with_churn [ Fault.Join { round = 0; node = 1 } ]);
  expect ~with_graph:false
    "Fault.make: churn event #0 (join): node references vertex -3"
    { Fault.default_spec with Fault.churn = [ Fault.Join { round = 2; node = -3 } ] };
  expect "Fault.make: churn event #1 (join): duplicate join entry for node 2"
    (with_churn
       [ Fault.Join { round = 3; node = 2 }; Fault.Join { round = 7; node = 2 } ]);
  (* Same discipline for the drop-rate profile. *)
  expect "Fault.make: drop_profile segment #0: round -4 < 0"
    { Fault.default_spec with Fault.drop_profile = [ (-4, 0.5) ] };
  expect "Fault.make: drop_profile segment #1: rate 1.5 not in [0,1]"
    { Fault.default_spec with Fault.drop_profile = [ (0, 0.1); (5, 1.5) ] };
  expect
    "Fault.make: drop_profile segment rounds must be strictly increasing \
     (round 5 after round 5)"
    { Fault.default_spec with Fault.drop_profile = [ (5, 0.1); (5, 0.2) ] }

let test_restart_plan_validation () =
  let g = Gen.path 4 in
  let expect msg spec =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Fault.make ~seed:1 ~graph:g spec))
  in
  expect
    "Fault.make: restart event #0: node 2 has no crash entry (only crashed \
     nodes can restart)"
    { Fault.default_spec with Fault.restarts = [ (2, 9) ] };
  expect
    "Fault.make: restart event #0: restart round 5 not after node 1's crash \
     round 5"
    {
      Fault.default_spec with
      Fault.crashes = [ (1, 5) ];
      restarts = [ (1, 5) ];
    };
  expect
    "Fault.make: restart event #1: duplicate restart entry for node 1"
    {
      Fault.default_spec with
      Fault.crashes = [ (1, 5) ];
      restarts = [ (1, 9); (1, 12) ];
    };
  expect
    "Fault.make: restart event #0: node references vertex 99 outside this \
     4-vertex graph"
    { Fault.default_spec with Fault.restarts = [ (99, 9) ] }

let test_restart_interval_semantics () =
  (* A restarting node is down exactly on [crash, restart) and changes
     incarnation at the restart round; a crash-stop node is down
     forever at incarnation 0. *)
  let f =
    Fault.make ~seed:1
      {
        Fault.default_spec with
        Fault.crashes = [ (2, 5); (3, 7) ];
        restarts = [ (2, 9) ];
      }
  in
  checkb "up before crash" false (Fault.crashed f ~round:4 2);
  checkb "down at crash round" true (Fault.crashed f ~round:5 2);
  checkb "down just before restart" true (Fault.crashed f ~round:8 2);
  checkb "up again at restart round" false (Fault.crashed f ~round:9 2);
  checkb "up forever after" false (Fault.crashed f ~round:500 2);
  checki "incarnation 0 before restart" 0 (Fault.incarnation f ~round:8 2);
  checki "incarnation 1 from restart on" 1 (Fault.incarnation f ~round:9 2);
  checkb "crash-stop stays down" true (Fault.crashed f ~round:500 3);
  checki "crash-stop stays incarnation 0" 0 (Fault.incarnation f ~round:500 3);
  checkb "plan has restarts" true (Fault.has_restarts f);
  checki "last restart round" 9 (Fault.last_restart_round f);
  checkb "restart schedule sorted by round" true
    (Fault.restart_schedule f = [ (9, 2) ]);
  let crash_stop =
    Fault.make ~seed:1 { Fault.default_spec with Fault.crashes = [ (2, 5) ] }
  in
  checkb "crash-stop plan has no restarts" false
    (Fault.has_restarts crash_stop);
  checki "no restart round" 0 (Fault.last_restart_round crash_stop)

let test_trace_replay_with_restart () =
  (* A run with a mid-flood crash + restart records Restart events;
     replaying the trace (which re-derives stale-incarnation drops
     from the schedule) reproduces the run bit-for-bit. *)
  let r = Util.Prng.create ~seed:2 in
  let g = Gen.connected_gnp r ~n:60 ~p:0.08 in
  let spec =
    {
      Fault.drop = 0.15;
      dup = 0.;
      delay = 0.1;
      max_delay = 2;
      crashes = [ (7, 9) ];
      restarts = [ (7, 40) ];
      churn = [];
      drop_profile = [];
    }
  in
  let tracer = Trace.create () in
  let st, reached =
    Protocols.reliable_flood
      ~faults:(Fault.make ~seed:5 spec)
      ~tracer g ~root:0 ~payload_words:2
  in
  checkb "restart event traced" true
    (List.exists
       (fun e -> e.Trace.kind = Trace.Restart)
       (Trace.events tracer));
  let st', reached' =
    Protocols.reliable_flood
      ~faults:(Fault.scripted (Trace.events tracer))
      g ~root:0 ~payload_words:2
  in
  Alcotest.check stats_testable "replay stats identical" st st';
  checkb "replay reach identical" true (reached = reached')

let test_churn_link_down_and_heal () =
  (* A down link refuses raw sends (structured error), reports itself
     via link_up/edge_up, and works again once the churn brings it
     back. *)
  let g = Gen.path 3 in
  let faults =
    Fault.make ~seed:1 ~graph:g
      {
        Fault.default_spec with
        Fault.churn =
          [
            Fault.Edge_down { round = 1; u = 0; v = 1 };
            Fault.Edge_up { round = 3; u = 0; v = 1 };
          ];
      }
  in
  let t = Sim.create ~faults g in
  checkb "link up at round 0" true (Sim.link_up t ~src:0 ~dst:1);
  Sim.send t ~src:0 ~dst:1 ~words:1 ();
  ignore (Sim.step t (fun ~dst:_ ~src:_ () -> ()));
  (* Round 1: the edge is down. *)
  checkb "link down after churn" false (Sim.link_up t ~src:0 ~dst:1);
  checkb "down in both directions" false (Sim.link_up t ~src:1 ~dst:0);
  checkb "edge_up agrees" false (Sim.edge_up t 0);
  checkb "other edge untouched" true (Sim.link_up t ~src:1 ~dst:2);
  (match Sim.send t ~src:0 ~dst:1 ~words:1 () with
  | () -> Alcotest.fail "send on a down link must raise"
  | exception Sim.Link_down { round; src; dst } ->
      checki "error names the round" 1 round;
      checki "error names src" 0 src;
      checki "error names dst" 1 dst);
  ignore (Sim.step t (fun ~dst:_ ~src:_ () -> ()));
  ignore (Sim.step t (fun ~dst:_ ~src:_ () -> ()));
  (* Round 3: healed. *)
  checkb "link healed" true (Sim.link_up t ~src:0 ~dst:1);
  let got = ref false in
  Sim.send t ~src:0 ~dst:1 ~words:1 ();
  ignore (Sim.step t (fun ~dst ~src:_ () -> if dst = 1 then got := true));
  checkb "delivery works after heal" true !got

let test_churn_inflight_dropped_on_down_edge () =
  (* A message in flight when its link goes down is lost, exactly like
     a drop — it does not tunnel through the partition. *)
  let g = Gen.path 2 in
  let faults =
    Fault.make ~seed:1 ~graph:g
      {
        Fault.default_spec with
        Fault.churn = [ Fault.Edge_down { round = 1; u = 0; v = 1 } ];
      }
  in
  let t = Sim.create ~faults g in
  Sim.send t ~src:0 ~dst:1 ~words:1 ();
  (* The send happened in round 0; delivery would be in round 1, but
     the edge goes down at the start of round 1. *)
  let got = ref false in
  ignore (Sim.step t (fun ~dst:_ ~src:_ () -> got := true));
  checkb "in-flight message dropped" false !got

let test_churn_healed_partition_bfs_correct () =
  (* A partition that heals is just a burst of loss to the ARQ: the
     reliable BFS still computes the exact distance array. *)
  let r = Util.Prng.create ~seed:13 in
  let g = Gen.connected_gnp r ~n:80 ~p:0.06 in
  let cut = ref [] in
  G.iter_neighbors g 0 (fun w _ -> cut := (0, w) :: !cut);
  let faults =
    Fault.make ~seed:2 ~graph:g
      {
        Fault.default_spec with
        Fault.churn =
          [ Fault.Partition { round = 2; edges = !cut; heal = Some 30 } ];
      }
  in
  let _, expected = Protocols.bfs g ~root:1 in
  let _, dist = Protocols.reliable_bfs ~faults g ~root:1 in
  Alcotest.check (Alcotest.array Alcotest.int)
    "distances survive a healed partition" expected dist

let test_churn_late_join_flood_reaches_all () =
  (* A node that joins late still ends up flooded: ARQ retransmissions
     cover the window where it did not exist. *)
  let r = Util.Prng.create ~seed:17 in
  let g = Gen.connected_gnp r ~n:60 ~p:0.08 in
  let faults =
    Fault.make ~seed:3 ~graph:g
      {
        Fault.default_spec with
        Fault.churn = [ Fault.Join { round = 6; node = 5 } ];
      }
  in
  let _, reached = Protocols.reliable_flood ~faults g ~root:0 ~payload_words:2 in
  Array.iteri
    (fun v b -> checkb (Printf.sprintf "node %d reached" v) true b)
    reached

(* ------------------------------------------------------------------ *)
(* ARQ retransmission policy: the config knob and its metric *)

let test_arq_config_default_is_historical () =
  let c = Reliable.config () in
  checkb "default config in force" true (c = Reliable.default_config);
  checki "initial_rto" 3 c.Reliable.initial_rto;
  checki "max_rto" 32 c.Reliable.max_rto;
  checki "max_retries" 12 c.Reliable.max_retries;
  checkb "backoff doubles" true (c.Reliable.backoff = 2.);
  (* The legacy constants alias the default, so pinned traces that
     were recorded against them stay honest. *)
  checki "alias initial_rto" c.Reliable.initial_rto Reliable.initial_rto;
  checki "alias max_rto" c.Reliable.max_rto Reliable.max_rto;
  checki "alias max_retries" c.Reliable.max_retries Reliable.max_retries

let test_arq_set_config_rejects_invalid () =
  let expect msg c =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        Reliable.set_config c)
  in
  expect "Reliable.set_config: initial_rto 0 < 1"
    { Reliable.default_config with Reliable.initial_rto = 0 };
  expect "Reliable.set_config: max_rto 2 < initial_rto 3"
    { Reliable.default_config with Reliable.max_rto = 2 };
  expect "Reliable.set_config: max_retries 0 < 1"
    { Reliable.default_config with Reliable.max_retries = 0 };
  expect "Reliable.set_config: backoff 0.5 < 1 (1 = fixed retransmit interval)"
    { Reliable.default_config with Reliable.backoff = 0.5 };
  expect "Reliable.set_config: backoff nan < 1 (1 = fixed retransmit interval)"
    { Reliable.default_config with Reliable.backoff = Float.nan };
  checkb "config untouched by rejections" true
    (Reliable.config () = Reliable.default_config)

let test_arq_backoff_escalation_metric () =
  (* The escalation counter moves exactly when the RTO grows: never at
     backoff 1 (fixed interval), and under real loss at the default 2.
     Either way the protocol still converges to the exact answer. *)
  Fun.protect ~finally:(fun () -> Reliable.set_config Reliable.default_config)
  @@ fun () ->
  let run backoff =
    Reliable.set_config { Reliable.default_config with Reliable.backoff };
    let r = Util.Prng.create ~seed:5 in
    let g = Gen.connected_gnp r ~n:60 ~p:0.08 in
    let faults =
      Fault.make ~seed:2 { Fault.default_spec with Fault.drop = 0.3 }
    in
    let m = Obs.Metrics.create () in
    let _, dist = Protocols.reliable_bfs ~faults ~metrics:m g ~root:0 in
    let _, expected = Protocols.bfs g ~root:0 in
    Alcotest.check (Alcotest.array Alcotest.int) "distances exact" expected dist;
    Obs.Metrics.counter_value (Obs.Metrics.counter m "arq_backoff_escalations")
  in
  checki "backoff 1 never escalates" 0 (run 1.);
  checkb "backoff 2 escalates under 30% loss" true (run 2. > 0)

let suite =
  [
    ( "distnet.engine",
      [
        Alcotest.test_case "send requires link" `Quick test_send_requires_link;
        Alcotest.test_case "one per edge per round" `Quick test_send_one_per_edge_per_round;
        Alcotest.test_case "word accounting" `Quick test_word_accounting;
        Alcotest.test_case "positive words" `Quick test_positive_words_required;
        Alcotest.test_case "quiescence" `Quick test_quiescence;
        Alcotest.test_case "relay chain rounds" `Quick test_relay_chain_rounds;
        Alcotest.test_case "idle rounds" `Quick test_idle_rounds;
      ] );
    ( "distnet.bfs",
      [
        Alcotest.test_case "matches sequential" `Quick test_dist_bfs_matches_sequential;
        Alcotest.test_case "rounds ~ eccentricity" `Quick test_dist_bfs_rounds;
        Alcotest.test_case "disconnected" `Quick test_dist_bfs_disconnected;
        QCheck_alcotest.to_alcotest prop_dist_bfs_equals_sequential;
      ] );
    ( "distnet.flood",
      [
        Alcotest.test_case "reaches component" `Quick test_flood_reaches_component;
        Alcotest.test_case "tree message count" `Quick test_flood_message_count_on_tree;
      ] );
    ( "distnet.runner",
      [
        Alcotest.test_case "echo" `Quick test_runner_echo;
        Alcotest.test_case "max flood" `Quick test_runner_max_flood;
      ] );
    ( "distnet.faults",
      [
        Alcotest.test_case "zero rates identical" `Quick
          test_zero_fault_plan_identical;
        Alcotest.test_case "drop loses messages" `Quick test_drop_loses_messages;
        Alcotest.test_case "dup delivers twice" `Quick test_dup_delivers_twice;
        Alcotest.test_case "delay holds messages" `Quick test_delay_holds_messages;
        Alcotest.test_case "crash stops node" `Quick test_crash_stops_node;
        Alcotest.test_case "budget failure reports stats" `Quick
          test_budget_failure_reports_stats;
        QCheck_alcotest.to_alcotest prop_zero_fault_plan_identical;
      ] );
    ( "distnet.reliable",
      [
        Alcotest.test_case "loss-free matches bfs" `Quick
          test_reliable_bfs_loss_free_matches;
        Alcotest.test_case "bfs under 20% drop" `Quick test_reliable_bfs_under_drop;
        Alcotest.test_case "flood under chaos" `Quick test_reliable_flood_under_chaos;
        QCheck_alcotest.to_alcotest prop_reliable_bfs_under_drop;
      ] );
    ( "distnet.trace",
      [
        Alcotest.test_case "replay reproduces stats" `Quick
          test_trace_replay_reproduces_stats;
        Alcotest.test_case "save/load roundtrip" `Quick
          test_trace_save_load_roundtrip;
        Alcotest.test_case "parse error: truncated tail" `Quick
          test_trace_parse_error_truncated;
        Alcotest.test_case "parse error: garbage lines" `Quick
          test_trace_parse_error_garbage;
        QCheck_alcotest.to_alcotest prop_trace_replay_identical;
      ] );
    ( "distnet.recovery",
      [
        Alcotest.test_case "checkpoints commit/restore" `Quick
          test_recovery_checkpoints;
        Alcotest.test_case "detector precedence" `Quick test_recovery_detector;
        Alcotest.test_case "detector unsuspect after message" `Quick
          test_detector_unsuspect_after_message;
        Alcotest.test_case "detector flapping" `Quick test_detector_flapping;
        Alcotest.test_case "detector across phase boundary" `Quick
          test_detector_across_phase_boundary;
        Alcotest.test_case "ARQ link idleness" `Quick test_reliable_link_idle;
      ] );
    ( "distnet.arq_config",
      [
        Alcotest.test_case "default is the historical constants" `Quick
          test_arq_config_default_is_historical;
        Alcotest.test_case "set_config names the offending field" `Quick
          test_arq_set_config_rejects_invalid;
        Alcotest.test_case "backoff escalation metric" `Quick
          test_arq_backoff_escalation_metric;
      ] );
    ( "distnet.churn",
      [
        Alcotest.test_case "plan validation rejects nonsense" `Quick
          test_fault_make_rejects_invalid_plans;
        Alcotest.test_case "link down + heal semantics" `Quick
          test_churn_link_down_and_heal;
        Alcotest.test_case "in-flight dropped on down edge" `Quick
          test_churn_inflight_dropped_on_down_edge;
        Alcotest.test_case "healed partition BFS correct" `Quick
          test_churn_healed_partition_bfs_correct;
        Alcotest.test_case "late join flood reaches all" `Quick
          test_churn_late_join_flood_reaches_all;
      ] );
    ( "distnet.restart",
      [
        Alcotest.test_case "plan validation rejects nonsense" `Quick
          test_restart_plan_validation;
        Alcotest.test_case "down interval and incarnations" `Quick
          test_restart_interval_semantics;
        Alcotest.test_case "trace replay with restart" `Quick
          test_trace_replay_with_restart;
      ] );
  ]
