module Graph = Graphlib.Graph
module Gen = Graphlib.Gen
module Edge_set = Graphlib.Edge_set
module Metrics = Graphlib.Metrics
module Gadget = Graphlib.Gadget
module Sim = Distnet.Sim

let cf = Table.cell_f
let ci = Table.cell_i

let eval_spanner ~rng ~g s =
  let h = Edge_set.to_graph s in
  let sources = Stdlib.min 8 (Graph.n g) in
  Metrics.sampled rng ~g ~h ~sources

(* ------------------------------------------------------------------ *)
(* E1: Fig. 1 *)

let e1_fig1 ?(quick = true) ~seed () =
  let n = if quick then 1200 else 4000 in
  let deg = 8. in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(deg /. float_of_int n) in
  let klog =
    int_of_float (Float.ceil (Util.Tower.log2 (float_of_int n)))
  in
  let nf = float_of_int n in
  let row name s (rounds, maxw, msgs) =
    let rep = eval_spanner ~rng ~g s in
    [
      name;
      ci (Edge_set.cardinal s);
      cf (float_of_int (Edge_set.cardinal s) /. nf);
      cf rep.Metrics.max_mult;
      cf rep.Metrics.avg_mult;
      (match rounds with None -> "-" | Some r -> ci r);
      (match maxw with None -> "-" | Some w -> ci w);
      (match msgs with None -> "-" | Some m -> ci m);
    ]
  in
  let of_stats (st : Sim.stats) =
    (Some st.Sim.rounds, Some st.Sim.max_message_words, Some st.Sim.messages)
  in
  let rows = ref [] in
  let push r = rows := r :: !rows in
  let bt = Baseline.Bfs_tree.build g in
  push (row "bfs-tree (seq)" bt.Baseline.Bfs_tree.spanner (None, None, None));
  List.iter
    (fun k ->
      let r = Baseline.Baswana_sen_dist.build ~k ~seed:(seed + k) g in
      push
        (row
           (Printf.sprintf "baswana-sen k=%d" k)
           r.Baseline.Baswana_sen_dist.spanner
           (of_stats r.Baseline.Baswana_sen_dist.stats)))
    [ 2; 3; klog ];
  let gr = Baseline.Greedy.skeleton g in
  push
    (row (Printf.sprintf "greedy k=%d (seq)" gr.Baseline.Greedy.k)
       gr.Baseline.Greedy.spanner (None, None, None));
  let nb_k = 3 in
  let nb = Baseline.Neighborhood_dist.build ~k:nb_k g in
  push
    (row
       (Printf.sprintf "nbhd-collect k=%d" nb_k)
       nb.Baseline.Neighborhood_dist.spanner
       (of_stats nb.Baseline.Neighborhood_dist.stats));
  let sk = Spanner.Skeleton_dist.build ~seed:(seed + 100) g in
  push
    (row "skeleton D=4 eps=.5" sk.Spanner.Skeleton_dist.spanner
       (of_stats sk.Spanner.Skeleton_dist.stats));
  let fb = Spanner.Fibonacci_dist.build ~o:4 ~ell:2 ~t:2 ~seed:(seed + 200) g in
  push
    (row "fibonacci o=4 l=2" fb.Spanner.Fibonacci_dist.spanner
       (of_stats fb.Spanner.Fibonacci_dist.stats));
  {
    Table.id = "E1";
    title = Printf.sprintf "state of the art, measured (G(n,p), n=%d, m=%d)" n (Graph.m g);
    reproduces = "Fig. 1 (comparison table)";
    columns =
      [ "algorithm"; "size"; "size/n"; "max-stretch"; "avg-stretch"; "rounds"; "max-msg"; "messages" ];
    rows = List.rev !rows;
    notes =
      [
        "stretch sampled from 8 BFS sources; '-' = sequential algorithm";
        "nbhd-collect stands in for Dubhashi et al.: note its max-msg column";
        Printf.sprintf "greedy/baswana-sen log-k rows use k = ceil(log2 n) = %d" klog;
      ];
  }

(* ------------------------------------------------------------------ *)
(* E2: skeleton size vs D *)

let e2_size_vs_density ?(quick = true) ~seed () =
  let n = if quick then 3000 else 10_000 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(16. /. float_of_int n) in
  let rows =
    List.map
      (fun d ->
        let r = Spanner.Skeleton.build ~d ~seed:(seed + d) g in
        let size = Edge_set.cardinal r.Spanner.Skeleton.spanner in
        let bound = Spanner.Bounds.skeleton_size ~n ~d in
        let dne = float_of_int d *. float_of_int n /. Float.exp 1. in
        [
          ci d;
          ci size;
          cf (float_of_int size /. float_of_int n);
          cf (dne /. float_of_int n);
          cf (bound /. float_of_int n);
          cf (float_of_int size /. bound);
          ci r.Spanner.Skeleton.aborts;
        ])
      [ 4; 6; 8; 12; 16; 24; 32 ]
  in
  {
    Table.id = "E2";
    title = Printf.sprintf "skeleton size vs density D (G(n,p), n=%d, m=%d)" n (Graph.m g);
    reproduces = "Lemma 6: E|S| = Dn/e + O(n log D)";
    columns = [ "D"; "size"; "size/n"; "Dn/e /n"; "Lemma6 /n"; "size/bound"; "aborts" ];
    rows;
    notes = [ "size/bound < 1 everywhere: the Lemma 6 constant is honest" ];
  }

(* ------------------------------------------------------------------ *)
(* E3: skeleton scaling *)

let e3_skeleton_scaling ?(quick = true) ~seed () =
  let sizes = if quick then [ 500; 1000; 2000; 4000 ] else [ 1000; 2000; 4000; 8000; 16_000 ] in
  let rows =
    List.map
      (fun n ->
        let rng = Util.Prng.create ~seed:(seed + n) in
        let g = Gen.connected_gnp rng ~n ~p:(10. /. float_of_int n) in
        let r = Spanner.Skeleton_dist.build ~seed:(seed + n) g in
        let rep = eval_spanner ~rng ~g r.Spanner.Skeleton_dist.spanner in
        let st = r.Spanner.Skeleton_dist.stats in
        [
          ci n;
          ci (Edge_set.cardinal r.Spanner.Skeleton_dist.spanner);
          cf rep.Metrics.max_mult;
          cf (Spanner.Bounds.skeleton_distortion ~n ~d:4 ~eps:0.5);
          ci st.Sim.rounds;
          cf (Spanner.Bounds.skeleton_time ~n ~d:4 ~eps:0.5);
          ci st.Sim.max_message_words;
          ci (Spanner.Plan.make ~n ()).Spanner.Plan.word_budget;
        ])
      sizes
  in
  {
    Table.id = "E3";
    title = "distributed skeleton scaling (G(n,p), avg deg 10)";
    reproduces = "Theorem 2: time O(eps^-1 2^log*n log n), messages O(log^eps n)";
    columns =
      [ "n"; "size"; "max-stretch"; "thm2-distortion"; "rounds"; "thm2-time"; "max-msg"; "budget" ];
    rows;
    notes =
      [
        "measured distortion and rounds sit far below the worst-case bounds";
        "max-msg tracks the (log n)^eps word budget, not n";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E4: Fibonacci staged distortion *)

let e4_fib_stages ?(quick = true) ~seed () =
  let side = if quick then 40 else 80 in
  let g = Gen.king_torus ~width:side ~height:side in
  let n = Graph.n g in
  let o = 4 and ell = 2 in
  let r = Spanner.Fibonacci.build ~o ~ell ~seed g in
  let h = Edge_set.to_graph r.Spanner.Fibonacci.spanner in
  let rng = Util.Prng.create ~seed in
  let profile = Metrics.distance_profile rng ~g ~h ~sources:(Stdlib.min 10 n) in
  let stage_bound d =
    (* Corollary 1: round d up to the next ell'-power, ell' = ceil(d^(1/o)). *)
    let ell' =
      Stdlib.max 1 (int_of_float (Float.ceil (float_of_int d ** (1. /. float_of_int o))))
    in
    Spanner.Bounds.fib_c ~ell:ell' o /. float_of_int d
  in
  let targets = [ 1; 2; 3; 4; 6; 8; 12; 16; side / 2 ] in
  let rows =
    List.filter_map
      (fun d ->
        match Metrics.stretch_at_distance profile d with
        | None -> None
        | Some s -> Some [ ci d; cf s; cf (stage_bound d); cf (s /. stage_bound d) ])
      (List.sort_uniq compare targets)
  in
  {
    Table.id = "E4";
    title =
      Printf.sprintf
        "Fibonacci distortion vs distance (king torus %dx%d, m=%d, o=%d, ell=%d, size=%d)"
        side side (Graph.m g) o ell
        (Edge_set.cardinal r.Spanner.Fibonacci.spanner);
    reproduces = "Theorem 7 / Corollary 1: four-stage distortion, improving with distance";
    columns = [ "distance"; "mean-stretch"; "stage-bound"; "ratio" ];
    rows;
    notes =
      [
        "mean stretch is non-increasing in distance and far below the stage bound";
        "stage-bound = C^o_{ell'} / d with ell' = ceil(d^(1/o)) (Lemma 10)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E5: Fibonacci size vs order *)

let e5_fib_size_vs_order ?(quick = true) ~seed () =
  let n = if quick then 3000 else 8000 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(16. /. float_of_int n) in
  let ell = 2 in
  let rows =
    List.map
      (fun o ->
        let r = Spanner.Fibonacci.build ~o ~ell ~seed:(seed + o) g in
        let size = Edge_set.cardinal r.Spanner.Fibonacci.spanner in
        let rep = eval_spanner ~rng ~g r.Spanner.Fibonacci.spanner in
        let bound = Spanner.Bounds.fib_size ~n ~o ~ell in
        [
          ci o;
          ci (Util.Fib.f (o + 3) - 1);
          ci size;
          cf (float_of_int size /. float_of_int n);
          cf (bound /. float_of_int n);
          cf rep.Metrics.max_mult;
          cf rep.Metrics.avg_mult;
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  {
    Table.id = "E5";
    title =
      Printf.sprintf "Fibonacci size vs order (G(n,p), n=%d, m=%d, ell=%d)" n (Graph.m g) ell;
    reproduces = "Lemma 8: size O(o n + n^{1+1/(F_{o+3}-1)} ell^phi)";
    columns = [ "o"; "F_{o+3}-1"; "size"; "size/n"; "bound/n"; "max-stretch"; "avg-stretch" ];
    rows;
    notes = [ "size falls and stretch rises with the order - the sparseness tradeoff" ];
  }

(* ------------------------------------------------------------------ *)
(* E6: Theorem 4 *)

let e6_lb_eps_beta ?(quick = true) ~seed () =
  let n = if quick then 2500 else 8000 in
  let trials = if quick then 20 else 60 in
  let zeta = 0.5 in
  let delta = 0.15 in
  let rng = Util.Prng.create ~seed in
  let rows =
    List.map
      (fun tau ->
        let s = Lowerbound.Adversary.theorem4 ~n ~delta ~zeta ~tau in
        let gd = s.Lowerbound.Adversary.gadget in
        let sum =
          Lowerbound.Adversary.run rng gd ~keep:s.Lowerbound.Adversary.keep_fraction
            ~trials
        in
        let avg_pairs =
          Lowerbound.Adversary.average_pair_distortion rng gd
            ~keep:s.Lowerbound.Adversary.keep_fraction ~pairs:trials
        in
        [
          ci tau;
          ci gd.Gadget.kappa;
          ci gd.Gadget.sigma;
          cf s.Lowerbound.Adversary.keep_fraction;
          cf sum.Lowerbound.Adversary.mean_additive;
          cf sum.Lowerbound.Adversary.predicted_additive;
          cf avg_pairs;
          cf (Spanner.Bounds.lb_eps_beta ~n ~delta ~zeta ~tau);
        ])
      [ 1; 2; 4; 8 ]
  in
  {
    Table.id = "E6";
    title = Printf.sprintf "(1+eps,beta) lower bound on G(tau,sigma,kappa), n~%d" n;
    reproduces = "Theorem 4: E[beta] >= zeta^2 n^{1-delta} / (4 (tau+6)^2) - 2";
    columns =
      [ "tau"; "kappa"; "sigma"; "keep"; "measured-beta"; "harness-pred"; "avg-pair"; "thm4-bound" ];
    rows;
    notes =
      [
        "measured additive distortion decays like 1/tau^2, as the theorem predicts";
        "avg-pair: distortion of random pairs (footnote 7 - the bound is robust)";
        "thm4-bound is the theorem's guaranteed floor (up to its -2 slack)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E7: Theorem 5 *)

let e7_lb_additive ?(quick = true) ~seed () =
  let n = if quick then 3000 else 10_000 in
  let trials = if quick then 20 else 60 in
  let delta = 0.1 in
  let rng = Util.Prng.create ~seed in
  let rows =
    List.map
      (fun beta ->
        let s = Lowerbound.Adversary.theorem5 ~n ~delta ~beta in
        let gd = s.Lowerbound.Adversary.gadget in
        let sum =
          Lowerbound.Adversary.run rng gd ~keep:s.Lowerbound.Adversary.keep_fraction
            ~trials
        in
        [
          cf beta;
          ci s.Lowerbound.Adversary.tau;
          cf (Spanner.Bounds.lb_additive_rounds ~n ~delta ~beta);
          ci gd.Gadget.kappa;
          cf sum.Lowerbound.Adversary.mean_additive;
          (if sum.Lowerbound.Adversary.mean_additive > beta then "yes" else "no");
        ])
      [ 2.; 4.; 8.; 16. ]
  in
  {
    Table.id = "E7";
    title = Printf.sprintf "additive-spanner lower bound, n~%d, size budget n^{1+%g}" n delta;
    reproduces = "Theorem 5: additive beta needs Omega(sqrt(n^{1-delta}/beta)) rounds";
    columns = [ "beta"; "tau-used"; "thm5-tau"; "kappa"; "measured-additive"; "exceeds beta?" ];
    rows;
    notes =
      [
        "at the proof's tau, the measured additive distortion exceeds beta:";
        "a tau-round algorithm cannot deliver an additive-beta spanner";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E8: Fibonacci message budget *)

let e8_fib_budget ?(quick = true) ~seed () =
  let n = if quick then 400 else 1000 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(10. /. float_of_int n) in
  let params = Spanner.Fib_params.make ~n ~o:3 ~ell:2 () in
  let levels = Spanner.Fib_params.draw_levels (Util.Prng.create ~seed) params in
  let seq = Spanner.Fibonacci.build_with ~params ~levels g in
  let seq_size = Edge_set.cardinal seq.Spanner.Fibonacci.spanner in
  let rows =
    List.map
      (fun t ->
        let d = Spanner.Fibonacci_dist.build_with ~params ~levels ~t g in
        let st = d.Spanner.Fibonacci_dist.stats in
        [
          ci t;
          ci d.Spanner.Fibonacci_dist.budget_words;
          ci d.Spanner.Fibonacci_dist.blocked;
          ci d.Spanner.Fibonacci_dist.failures;
          ci (Edge_set.cardinal d.Spanner.Fibonacci_dist.spanner);
          ci seq_size;
          ci st.Sim.rounds;
          ci st.Sim.max_message_words;
        ])
      (if quick then [ 1; 2; 4; 6 ] else [ 1; 2; 3; 4; 6; 8 ])
  in
  {
    Table.id = "E8";
    title =
      Printf.sprintf "Fibonacci_dist vs message budget n^{1/t} (G(n,p), n=%d, o=3, ell=2)" n;
    reproduces = "Section 4.4: Monte Carlo blocking + Las Vegas recovery";
    columns =
      [ "t"; "budget"; "blocked"; "LV-failures"; "dist-size"; "seq-size"; "rounds"; "max-msg" ];
    rows;
    notes =
      [
        "tight budgets block relays; detected failures trigger keep-all balls,";
        "inflating the spanner - exactly the paper's Monte Carlo/Las Vegas story";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E9: Lemma 6 contribution *)

let e9_contribution ?(quick = true) ~seed:_ () =
  ignore quick;
  let rows =
    List.concat_map
      (fun p ->
        List.map
          (fun t ->
            let x = Spanner.Contribution.xtp ~p ~t in
            let bound = Spanner.Contribution.paper_bound ~p ~t in
            let bs_claim = float_of_int t +. (2. /. p) in
            [
              cf p;
              ci t;
              cf x;
              cf bound;
              cf (x /. bound);
              cf bs_claim;
              (if x <= bound then "yes" else "NO");
            ])
          [ 1; 10; 100; 1000 ])
      [ 0.5; 0.25; 0.1; 0.05 ]
  in
  {
    Table.id = "E9";
    title = "worst-case per-vertex contribution X^t_p (exact DP)";
    reproduces = "Lemma 6, inequality (4): X^t_p <= p^-1(ln(t+1) - zeta) + t";
    columns = [ "p"; "t"; "X^t_p"; "lemma6-bound"; "ratio"; "BS-style t+2/p"; "bound holds" ];
    rows;
    notes =
      [
        "the corrected bound holds everywhere (ratio < 1)";
        "X^t_p stays near t + Theta(1/p): Baswana-Sen's original claim is";
        "numerically plausible - the paper corrects their proof, not the value";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E10: overlay broadcast *)

let e10_overlay ?(quick = true) ~seed () =
  let n = if quick then 2000 else 6000 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(12. /. float_of_int n) in
  let root = 0 in
  let run name h =
    let stats, reached = Distnet.Protocols.flood h ~root ~payload_words:4 in
    let cover = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 reached in
    [
      name;
      ci (Graph.m h);
      ci stats.Sim.messages;
      ci stats.Sim.rounds;
      ci cover;
    ]
  in
  let sk = Spanner.Skeleton.build ~seed g in
  let bt = Baseline.Bfs_tree.build g in
  let rows =
    [
      run "full network" g;
      run "skeleton (D=4)" (Edge_set.to_graph sk.Spanner.Skeleton.spanner);
      run "bfs tree" (Edge_set.to_graph bt.Baseline.Bfs_tree.spanner);
    ]
  in
  {
    Table.id = "E10";
    title = Printf.sprintf "broadcast overlay cost (G(n,p), n=%d, m=%d)" n (Graph.m g);
    reproduces = "Section 1: the skeleton as a sparse substitute for the network";
    columns = [ "overlay"; "edges"; "messages"; "rounds(delay)"; "reached" ];
    rows;
    notes =
      [
        "the skeleton floods with ~1/8 the messages at a small delay cost;";
        "the BFS tree is cheaper still but distorts distances unboundedly (E1)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E11: linear-size strategies head-to-head (contraction ablation) *)

let e11_linear_strategies ?(quick = true) ~seed () =
  let n = if quick then 2000 else 6000 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(12. /. float_of_int n) in
  let klog = int_of_float (Float.ceil (Util.Tower.log2 (float_of_int n))) in
  let nf = float_of_int n in
  let row name s =
    let rep = eval_spanner ~rng ~g s in
    [
      name;
      ci (Edge_set.cardinal s);
      cf (float_of_int (Edge_set.cardinal s) /. nf);
      cf rep.Metrics.max_mult;
      cf rep.Metrics.avg_mult;
    ]
  in
  let bs = Baseline.Baswana_sen.build ~k:klog ~seed g in
  let sk = Spanner.Skeleton.build ~d:4 ~seed g in
  let gr = Baseline.Greedy.skeleton g in
  let cb = Spanner.Combined.build ~ell:2 ~seed g in
  {
    Table.id = "E11";
    title =
      Printf.sprintf "linear-size strategies & the contraction ablation (n=%d, m=%d)" n
        (Graph.m g);
    reproduces =
      "Section 2's claim that contraction is what brings the size to O(n)";
    columns = [ "strategy"; "size"; "size/n"; "max-stretch"; "avg-stretch" ];
    rows =
      [
        row (Printf.sprintf "baswana-sen k=%d (no contraction)" klog)
          bs.Baseline.Baswana_sen.spanner;
        row "skeleton D=4 (with contraction)" sk.Spanner.Skeleton.spanner;
        row (Printf.sprintf "greedy k=%d (sequential)" klog) gr.Baseline.Greedy.spanner;
        row "corollary-1 union (fib o* + skeleton)" cb.Spanner.Combined.spanner;
      ];
    notes =
      [
        "Baswana-Sen's clustering alone cannot reach linear size (its kn term);";
        "the skeleton's repeated contraction does, at comparable distortion";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E12: abort-threshold ablation *)

let e12_abort_ablation ?(quick = true) ~seed () =
  let n = if quick then 2000 else 5000 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(14. /. float_of_int n) in
  let plan = Spanner.Plan.make ~n () in
  let sampling = Spanner.Sampling.draw (Util.Prng.create ~seed) ~n plan in
  let scaled scale =
    {
      plan with
      Spanner.Plan.calls =
        Array.map
          (fun (c : Spanner.Plan.call) ->
            let q =
              if scale = 0. then 0
              else if scale = infinity then max_int
              else if c.Spanner.Plan.abort_q = max_int then max_int
              else Stdlib.max 1 (int_of_float (float_of_int c.Spanner.Plan.abort_q *. scale))
            in
            { c with Spanner.Plan.abort_q = q })
          plan.Spanner.Plan.calls;
    }
  in
  let rows =
    List.map
      (fun (label, scale) ->
        let r = Spanner.Skeleton.build_with ~plan:(scaled scale) ~sampling g in
        let rep = eval_spanner ~rng ~g r.Spanner.Skeleton.spanner in
        [
          label;
          ci (Edge_set.cardinal r.Spanner.Skeleton.spanner);
          ci r.Spanner.Skeleton.aborts;
          cf rep.Metrics.max_mult;
        ])
      [
        ("0 (always abort)", 0.);
        ("x 1/50", 0.02);
        ("x 1/10", 0.1);
        ("paper (4 s_i ln n)", 1.);
        ("infinite (never)", infinity);
      ]
  in
  {
    Table.id = "E12";
    title = Printf.sprintf "abort-threshold ablation (skeleton, n=%d, m=%d)" n (Graph.m g);
    reproduces = "Theorem 2's q > 4 s_i ln n escape hatch: rare by design";
    columns = [ "threshold"; "size"; "aborts"; "max-stretch" ];
    rows;
    notes =
      [
        "at the paper's threshold the abort never fires; forcing it inflates";
        "the spanner toward m while never hurting distortion";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E13: the distance-oracle application (paper SS5) *)

let e13_oracle ?(quick = true) ~seed () =
  let n = if quick then 1200 else 4000 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(10. /. float_of_int n) in
  let pairs = if quick then 400 else 2000 in
  let rows =
    List.map
      (fun k ->
        let o = Oracle.Distance_oracle.build ~k ~seed g in
        let stretch = Util.Stats.create () in
        for _ = 1 to pairs do
          let u = Util.Prng.int rng n and v = Util.Prng.int rng n in
          if u <> v then begin
            let exact = (Graphlib.Bfs.distances g ~src:u).(v) in
            match Oracle.Distance_oracle.query o u v with
            | Some est when exact > 0 ->
                Util.Stats.add stretch (float_of_int est /. float_of_int exact)
            | _ -> ()
          end
        done;
        [
          ci k;
          ci (Oracle.Distance_oracle.size o);
          cf (float_of_int (Oracle.Distance_oracle.size o) /. float_of_int n);
          cf (Util.Stats.mean stretch);
          cf (Util.Stats.max stretch);
          ci ((2 * k) - 1);
        ])
      [ 1; 2; 3; 4 ]
  in
  {
    Table.id = "E13";
    title = Printf.sprintf "Thorup-Zwick distance oracles (n=%d, m=%d)" n (Graph.m g);
    reproduces = "SS5's application: space-stretch tradeoffs from the same sampling";
    columns = [ "k"; "space"; "space/n"; "avg-stretch"; "max-stretch"; "2k-1" ];
    rows;
    notes = [ "space collapses from n^2 to ~n^{1+1/k} while stretch stays << 2k-1" ];
  }

(* ------------------------------------------------------------------ *)
(* E14: Corollary 1's union *)

let e14_combined ?(quick = true) ~seed () =
  let side = if quick then 40 else 70 in
  let g = Gen.king_torus ~width:side ~height:side in
  let rng = Util.Prng.create ~seed in
  let o = 4 and ell = 2 in
  let fib = Spanner.Fibonacci.build ~o ~ell ~seed g in
  let cb = Spanner.Combined.build ~o ~ell ~seed g in
  let sk = Spanner.Skeleton.build ~d:4 ~seed:(seed + 1) g in
  let profile s =
    let h = Edge_set.to_graph s in
    Metrics.distance_profile rng ~g ~h ~sources:8
  in
  let row name s =
    let p = profile s in
    let at d =
      match Metrics.stretch_at_distance p d with Some s -> cf s | None -> "-"
    in
    [ name; ci (Edge_set.cardinal s); at 1; at 2; at 4; at 10; at (side / 2) ]
  in
  {
    Table.id = "E14";
    title =
      Printf.sprintf "Corollary 1: Fibonacci + skeleton union (king torus %dx%d)" side side;
    reproduces = "Corollary 1's distortion table (short range capped by the skeleton)";
    columns = [ "spanner"; "size"; "d=1"; "d=2"; "d=4"; "d=10"; "d=far" ];
    rows =
      [
        row "fibonacci alone" fib.Spanner.Fibonacci.spanner;
        row "skeleton alone" sk.Spanner.Skeleton.spanner;
        row "corollary-1 union" cb.Spanner.Combined.spanner;
      ];
    notes =
      [
        "the union inherits the skeleton's short-range cap and the Fibonacci";
        "spanner's long-range (1+eps) behavior, at the cost of the summed size";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E15: Theorem 6 — sublinear additive spanners *)

let e15_lb_sublinear ?(quick = true) ~seed () =
  let n = if quick then 2500 else 8000 in
  let trials = if quick then 15 else 50 in
  let rng = Util.Prng.create ~seed in
  let rows =
    List.map
      (fun (nu, xi) ->
        let s = Lowerbound.Adversary.theorem6 ~n ~nu ~xi ~c:2. in
        let gd = s.Lowerbound.Adversary.gadget in
        let sum =
          Lowerbound.Adversary.run rng gd ~keep:s.Lowerbound.Adversary.keep_fraction
            ~trials
        in
        let u, v = Gadget.observers gd in
        let d = (Graphlib.Bfs.distances gd.Gadget.graph ~src:u).(v) in
        (* the sublinear-additive promise at the observers' distance *)
        let promised = 2. *. (float_of_int d ** (1. -. nu)) in
        [
          cf nu;
          cf xi;
          ci s.Lowerbound.Adversary.tau;
          ci d;
          cf sum.Lowerbound.Adversary.mean_additive;
          cf promised;
          (if sum.Lowerbound.Adversary.mean_additive > promised then "yes" else "no");
        ])
      [ (0.5, 0.05); (0.5, 0.15); (0.34, 0.05); (0.25, 0.05) ]
  in
  {
    Table.id = "E15";
    title = Printf.sprintf "sublinear-additive lower bound (Theorem 6), n~%d" n;
    reproduces = "Theorem 6: d + O(d^{1-nu}) spanners need n^{Omega(1)} rounds";
    columns =
      [ "nu"; "xi"; "tau-used"; "obs-dist d"; "measured-add"; "promise 2d^{1-nu}"; "violated?" ];
    rows;
    notes =
      [
        "at the proof's tau, measured distortion exceeds the d + 2 d^{1-nu}";
        "promise: no tau-round algorithm delivers a sublinear-additive spanner";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E16: the size-girth frontier behind the background bounds *)

let e16_girth_frontier ?(quick = true) ~seed () =
  let n = if quick then 600 else 1500 in
  let rng = Util.Prng.create ~seed in
  (* Dense input so the greedy frontier, not the input, limits size. *)
  let g = Gen.connected_gnp rng ~n ~p:(40. /. float_of_int n) in
  let rows =
    List.map
      (fun k ->
        let r = Baseline.Greedy.build ~k g in
        let h = Edge_set.to_graph r.Baseline.Greedy.spanner in
        let girth =
          match Graphlib.Girth.girth h with Some c -> ci c | None -> "inf"
        in
        let bound = float_of_int n ** (1. +. (1. /. float_of_int k)) in
        [
          ci k;
          ci ((2 * k) - 1);
          ci (Edge_set.cardinal r.Baseline.Greedy.spanner);
          girth;
          ci ((2 * k) + 1);
          cf bound;
          cf (float_of_int (Edge_set.cardinal r.Baseline.Greedy.spanner) /. bound);
        ])
      [ 2; 3; 4; 5 ]
  in
  {
    Table.id = "E16";
    title = Printf.sprintf "size-girth frontier (greedy, G(n,p), n=%d, m=%d)" n (Graph.m g);
    reproduces =
      "the girth-conjecture background (SS1): (2k-1)-spanners of size O(n^{1+1/k})";
    columns =
      [ "k"; "stretch 2k-1"; "size"; "girth"; ">= 2k+1"; "n^{1+1/k}"; "size/bound" ];
    rows;
    notes =
      [ "girth always exceeds 2k and the size stays below the Moore-type bound" ];
  }

(* ------------------------------------------------------------------ *)
(* E17: the streaming model of SS1.4 *)

let e17_streaming ?(quick = true) ~seed () =
  let n = if quick then 250 else 800 in
  let rng = Util.Prng.create ~seed in
  (* A dense stream: every pair arrives in random order. *)
  let g = Gen.complete n in
  let edges = ref [] in
  Graph.iter_edges g (fun _ u v -> edges := (u, v) :: !edges);
  let arr = Array.of_list !edges in
  Util.Prng.shuffle rng arr;
  let stream = Array.to_list arr in
  let rows =
    List.map
      (fun k ->
        let t = Baseline.Streaming.of_stream ~n ~k stream in
        let frontier = float_of_int n ** (1. +. (1. /. float_of_int k)) in
        [
          ci k;
          ci (Baseline.Streaming.offered t);
          ci (Baseline.Streaming.size t);
          cf (float_of_int (Baseline.Streaming.size t) /. frontier);
          ci ((2 * k) - 1);
        ])
      [ 2; 3; 4 ]
  in
  {
    Table.id = "E17";
    title = Printf.sprintf "single-pass streaming spanner (K_%d, random arrival)" n;
    reproduces = "SS1.4's streaming model: O(n^{1+1/k}) memory, stretch 2k-1";
    columns = [ "k"; "stream"; "memory (edges)"; "memory/frontier"; "stretch" ];
    rows;
    notes =
      [ "held edges stay under the n^{1+1/k} frontier on the densest stream" ];
  }

(* ------------------------------------------------------------------ *)
(* E18: the analytic beta comparison of SS1.2 *)

let e18_beta_comparison ?(quick = true) ~seed:_ () =
  ignore quick;
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun t ->
            let eps = 0.5 in
            let fib = Spanner.Bounds.log10_fib_beta ~n ~eps ~t in
            let ez = Spanner.Bounds.log10_ez_beta ~n ~eps ~t in
            [
              ci n;
              ci t;
              cf fib;
              cf ez;
              cf (ez -. fib);
              (if fib < ez then "fibonacci" else "elkin-zhang");
            ])
          [ 1; 2; 4 ])
      [ 1000; 100_000; 10_000_000; 1_000_000_000 ]
  in
  {
    Table.id = "E18";
    title = "sparsest-spanner beta: Fibonacci vs Elkin-Zhang (analytic, eps=0.5)";
    reproduces =
      "SS1.2: our beta \"compares favorably\" with Elkin-Zhang's at equal message budgets";
    columns =
      [ "n"; "t"; "log10 beta (fib)"; "log10 beta (EZ)"; "gap (digits)"; "winner" ];
    rows;
    notes =
      [
        "beta = (eps^-1(log_phi log n + t))^{log_phi log n + t} vs";
        "(eps^-1 t^2 log n loglog n)^{t loglog n}: beyond the smallest n/t the";
        "Fibonacci beta wins by orders of magnitude, widening with n and t";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E19: (1+eps,beta) behavior - superclustering vs Fibonacci *)

let e19_eps_beta_behavior ?(quick = true) ~seed () =
  let side = if quick then 36 else 60 in
  let g = Gen.king_torus ~width:side ~height:side in
  let rng = Util.Prng.create ~seed in
  let profile s =
    Metrics.distance_profile rng ~g ~h:(Edge_set.to_graph s) ~sources:10
  in
  let additive p d =
    match Metrics.stretch_at_distance p d with
    | Some s -> Table.cell_f ((s -. 1.) *. float_of_int d)
    | None -> "-"
  in
  let row name s =
    let p = profile s in
    [ name; ci (Edge_set.cardinal s); additive p 1; additive p 4; additive p 8; additive p (side / 3) ]
  in
  let sc = Baseline.Supercluster.build ~eps:0.5 ~seed g in
  let fib = Spanner.Fibonacci.build ~o:4 ~ell:2 ~seed g in
  {
    Table.id = "E19";
    title =
      Printf.sprintf "(1+eps,beta) behavior: superclustering vs Fibonacci (king torus %dx%d, m=%d)"
        side side (Graph.m g);
    reproduces =
      "SS1.2/SS4: both saturate additively, but the Fibonacci spanner is far sparser";
    columns = [ "construction"; "size"; "+err d=1"; "+err d=4"; "+err d=8"; "+err far" ];
    rows =
      [
        row "superclustering (EZ-style)" sc.Baseline.Supercluster.spanner;
        row "fibonacci o=4 ell=2" fib.Spanner.Fibonacci.spanner;
      ];
    notes =
      [
        "additive error (mean over pairs at that distance) stays flat with";
        "distance for both - the (1+eps,beta) signature; the Fibonacci spanner";
        "achieves it with far fewer edges, the paper's improvement over [24]";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E20: compact routing - the SS5 closing question, measured *)

let e20_compact_routing ?(quick = true) ~seed () =
  let n = if quick then 600 else 2000 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(10. /. float_of_int n) in
  let r = Oracle.Compact_routing.build ~seed g in
  let pairs = if quick then 400 else 1500 in
  let stretch = Util.Stats.create () in
  let worst = ref 1. in
  for _ = 1 to pairs do
    let u = Util.Prng.int rng n and v = Util.Prng.int rng n in
    if u <> v then begin
      let exact = (Graphlib.Bfs.distances g ~src:u).(v) in
      match Oracle.Compact_routing.route r ~src:u ~dst:v with
      | Some path when exact > 0 ->
          let s = float_of_int (List.length path - 1) /. float_of_int exact in
          Util.Stats.add stretch s;
          if s > !worst then worst := s
      | _ -> ()
    end
  done;
  let avg_state = float_of_int (Oracle.Compact_routing.total_state r) /. float_of_int n in
  {
    Table.id = "E20";
    title = Printf.sprintf "compact routing tables (G(n,p), n=%d, m=%d)" n (Graph.m g);
    reproduces = "SS5's closing question: routing state vs route stretch";
    columns =
      [ "landmarks"; "avg state/node"; "full table"; "mean stretch"; "max stretch" ];
    rows =
      [
        [
          ci (List.length (Oracle.Compact_routing.landmarks r));
          cf avg_state;
          ci n;
          cf (Util.Stats.mean stretch);
          cf !worst;
        ];
      ];
    notes =
      [
        "Cowen/TZ-style: O(sqrt n)-ish state per node instead of n entries,";
        "at a measured stretch far below the provable <= 5 (<= 3 in [11])";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E21: convergence under faults — the model's loss-free assumption
   relaxed.  Reliable (ARQ-lifted) BFS and skeleton-overlay broadcast
   as the drop rate sweeps 0 -> 30%. *)

let e21_faults ?(quick = true) ~seed () =
  let n = if quick then 800 else 3000 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(10. /. float_of_int n) in
  let root = 0 in
  (* Loss-free baselines in the paper's model: what the fault tolerance
     must be measured against. *)
  let bfs_base, expected = Distnet.Protocols.bfs g ~root in
  let sk = Spanner.Skeleton.build ~d:4 ~seed g in
  let overlay = Edge_set.to_graph sk.Spanner.Skeleton.spanner in
  let flood_base, _ = Distnet.Protocols.flood overlay ~root ~payload_words:4 in
  let ratio a b = float_of_int a /. float_of_int (Stdlib.max 1 b) in
  let rows =
    List.map
      (fun drop ->
        let faults drop salt =
          if drop = 0. then Distnet.Fault.none
          else
            Distnet.Fault.make ~seed:(seed + salt)
              { Distnet.Fault.default_spec with Distnet.Fault.drop }
        in
        let bst, dist =
          Distnet.Protocols.reliable_bfs ~faults:(faults drop 31) g ~root
        in
        let fst_, reached =
          Distnet.Protocols.reliable_flood ~faults:(faults drop 67) overlay
            ~root ~payload_words:4
        in
        let all_reached = Array.for_all (fun b -> b) reached in
        [
          cf drop;
          ci bst.Sim.rounds;
          ci bst.Sim.words;
          cf (ratio bst.Sim.words bfs_base.Sim.words);
          (if dist = expected then "yes" else "NO");
          ci fst_.Sim.rounds;
          cf (ratio fst_.Sim.words flood_base.Sim.words);
          (if all_reached then "yes" else "NO");
        ])
      [ 0.; 0.05; 0.1; 0.2; 0.3 ]
  in
  {
    Table.id = "E21";
    title =
      Printf.sprintf
        "convergence under faults: reliable BFS + skeleton broadcast (n=%d, m=%d)"
        n (Graph.m g);
    reproduces =
      "beyond the paper: Section 1.1's loss-free model relaxed via ARQ";
    columns =
      [
        "drop";
        "bfs-rounds";
        "bfs-words";
        "bfs-x-words";
        "bfs-correct";
        "flood-rounds";
        "flood-x-words";
        "flood-ok";
      ];
    rows;
    notes =
      [
        Printf.sprintf
          "x-words = words vs the loss-free paper-model baseline (bfs %d, \
           skeleton flood %d words)"
          bfs_base.Sim.words flood_base.Sim.words;
        "drop 0 uses the ARQ layer too: its x-words is the pure ack/seq tax;";
        "higher drop converts losses into retransmissions, never into wrong";
        "answers - the correctness columns stay 'yes' at every rate";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E22: self-healing skeleton — recovery overhead and output quality
   under crash-stops and message loss. *)

let e22_recovery ?(quick = true) ~seed () =
  let n = if quick then 256 else 512 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(8. /. float_of_int n) in
  (* One fixed random tape: the loss-free distributed run is the
     baseline, and every faulty cell reruns the same construction so
     the deltas are pure fault effects. *)
  let plan = Spanner.Plan.make ~n ~d:4 () in
  let sampling =
    Spanner.Sampling.draw (Util.Prng.create ~seed:(seed + 5)) ~n plan
  in
  let base = Spanner.Skeleton_dist.build_with ~plan ~sampling g in
  let base_size = Edge_set.cardinal base.Spanner.Skeleton_dist.spanner in
  let base_stats = base.Spanner.Skeleton_dist.stats in
  let ratio a b = float_of_int a /. float_of_int (Stdlib.max 1 b) in
  let rows =
    List.concat_map
      (fun crash_frac ->
        List.map
          (fun drop ->
            let faults =
              if crash_frac = 0. && drop = 0. then Distnet.Fault.none
              else
                let crng = Util.Prng.create ~seed:(seed + 87) in
                let crashes = ref [] in
                for v = 0 to n - 1 do
                  if Util.Prng.bernoulli crng crash_frac then
                    crashes := (v, 1 + Util.Prng.int crng 1000) :: !crashes
                done;
                Distnet.Fault.make ~seed:(seed + 31)
                  {
                    Distnet.Fault.default_spec with
                    Distnet.Fault.drop;
                    crashes = List.rev !crashes;
                  }
            in
            let r = Spanner.Skeleton_dist.build_with ~faults ~plan ~sampling g in
            let rc = r.Spanner.Skeleton_dist.recovery in
            let verdict =
              Spanner.Certify.run ~plan
                ~witness:r.Spanner.Skeleton_dist.witness g
                r.Spanner.Skeleton_dist.spanner
            in
            let size = Edge_set.cardinal r.Spanner.Skeleton_dist.spanner in
            let st = r.Spanner.Skeleton_dist.stats in
            [
              cf crash_frac;
              cf drop;
              ci rc.Spanner.Skeleton_dist.crashed;
              ci rc.Spanner.Skeleton_dist.orphaned;
              ci size;
              cf (ratio size base_size);
              ci rc.Spanner.Skeleton_dist.recovered_edges;
              cf (ratio st.Sim.rounds base_stats.Sim.rounds);
              cf (ratio st.Sim.words base_stats.Sim.words);
              (if Spanner.Certify.ok verdict then "yes" else "NO");
              cf verdict.Spanner.Certify.max_stretch;
            ])
          [ 0.; 0.2 ])
      [ 0.; 0.05; 0.1 ]
  in
  {
    Table.id = "E22";
    title =
      Printf.sprintf
        "self-healing skeleton: crash recovery + certification (n=%d, m=%d)" n
        (Graph.m g);
    reproduces =
      "beyond the paper: Theorem 2's construction under crash-stop faults";
    columns =
      [
        "crash";
        "drop";
        "crashed";
        "orphaned";
        "size";
        "x-size";
        "recovered";
        "x-rounds";
        "x-words";
        "certified";
        "max-stretch";
      ];
    rows;
    notes =
      [
        "same random tape everywhere: the (0, 0) cell equals the loss-free";
        "sequential output edge for edge, and every delta is a fault effect;";
        "orphan recovery keeps all incident live edges, so crashes cost size";
        "(x-size, recovered) but never stretch - 'certified' stays yes, with";
        "the stretch audited on the surviving graph G minus crashed";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E23: incremental repair under topology churn — the local repair
   pass vs a from-scratch rebuild on the surviving graph, across a
   churn scenario × message-loss matrix. *)

let e23_churn ?(quick = true) ~seed () =
  let n = if quick then 96 else 192 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(8. /. float_of_int n) in
  let plan = Spanner.Plan.make ~n ~d:4 () in
  let sampling =
    Spanner.Sampling.draw (Util.Prng.create ~seed:(seed + 5)) ~n plan
  in
  (* The loss-free run fixes the tape and tells us which edges are
     cluster-tree hooks: hook edges are always spanner edges, so
     dropping them guarantees the repair pass has real damage. *)
  let base = Spanner.Skeleton_dist.build_with ~plan ~sampling g in
  let bw = base.Spanner.Skeleton_dist.witness in
  let hooks =
    let l = ref [] in
    for v = n - 1 downto 0 do
      if bw.Spanner.Certify.parent.(v) >= 0 then
        l := bw.Spanner.Certify.parent_edge.(v) :: !l
    done;
    let a = Array.of_list (List.sort_uniq compare !l) in
    Util.Prng.shuffle (Util.Prng.create ~seed:(seed + 7)) a;
    a
  in
  let drop_hooks k round =
    List.init (Stdlib.min k (Array.length hooks)) (fun i ->
        let u, v = Graph.edge_endpoints g hooks.(i) in
        Distnet.Fault.Edge_down { round; u; v })
  in
  (* Partition: cut the island {0 .. n/8 - 1} off, heal later. *)
  let island = n / 8 in
  let cut =
    let l = ref [] in
    Graph.iter_edges g (fun _ u v ->
        if u < island <> (v < island) then l := (u, v) :: !l);
    List.rev !l
  in
  let scenarios =
    [
      ("edge/4", drop_hooks 4 40);
      ("edge/10", drop_hooks 10 40);
      ( "part/heal",
        [ Distnet.Fault.Partition { round = 5; edges = cut; heal = Some 150 } ]
      );
    ]
  in
  let rows =
    List.concat_map
      (fun (label, churn) ->
        List.map
          (fun drop ->
            let faults =
              Distnet.Fault.make ~seed:(seed + 31) ~graph:g
                {
                  Distnet.Fault.default_spec with
                  Distnet.Fault.drop;
                  churn;
                }
            in
            let r = Spanner.Skeleton_dist.build_with ~faults ~plan ~sampling g in
            let rp = r.Spanner.Skeleton_dist.repair in
            let dead = r.Spanner.Skeleton_dist.dead_edges in
            (* From-scratch competitor: rerun the whole distributed
               construction on the surviving graph (churn's down edges
               removed), loss-free — the cost a restart would pay. *)
            let survivor =
              let b = Graph.Builder.create ~n in
              Graph.iter_edges g (fun e u v ->
                  if not (List.mem e dead) then Graph.Builder.add_edge b u v);
              Graph.Builder.build b
            in
            let rebuilt =
              Spanner.Skeleton_dist.build_with ~plan ~sampling survivor
            in
            let down = Array.make (Stdlib.max 1 (Graph.m g)) false in
            List.iter (fun e -> down.(e) <- true) dead;
            let churned = dead <> [] in
            let verdict =
              Spanner.Certify.run ~plan
                ~witness:r.Spanner.Skeleton_dist.witness
                ~down_edge:(fun e -> churned && down.(e))
                ~per_component:churned g r.Spanner.Skeleton_dist.spanner
            in
            let size = Edge_set.cardinal r.Spanner.Skeleton_dist.spanner in
            let rb_size =
              Edge_set.cardinal rebuilt.Spanner.Skeleton_dist.spanner
            in
            [
              label;
              cf drop;
              Format.asprintf "%a" Spanner.Skeleton_dist.pp_outcome
                rp.Spanner.Skeleton_dist.outcome;
              ci rp.Spanner.Skeleton_dist.dead_spanner_edges;
              ci rp.Spanner.Skeleton_dist.rehooked;
              ci rp.Spanner.Skeleton_dist.replaced_edges;
              ci rp.Spanner.Skeleton_dist.repair_rounds;
              ci rebuilt.Spanner.Skeleton_dist.stats.Sim.rounds;
              cf
                (float_of_int size
                /. float_of_int (Stdlib.max 1 rb_size));
              (if Spanner.Certify.ok verdict then "yes" else "NO");
            ])
          [ 0.; 0.1 ])
      scenarios
  in
  {
    Table.id = "E23";
    title =
      Printf.sprintf
        "incremental repair under churn: local patch vs rebuild (n=%d, m=%d)" n
        (Graph.m g);
    reproduces =
      "beyond the paper: Theorem 2's construction under topology churn";
    columns =
      [
        "churn";
        "drop";
        "outcome";
        "dead";
        "rehooked";
        "replaced";
        "repair-rds";
        "rebuild-rds";
        "x-size";
        "certified";
      ];
    rows;
    notes =
      [
        "edge/k drops k cluster-tree hook edges mid-run (guaranteed spanner";
        "damage); part/heal cuts the n/8 island off at round 5 and heals it";
        "at 150.  repair-rds is the incremental pass alone, rebuild-rds a";
        "loss-free from-scratch run on the surviving graph - local repair";
        "is the cheaper option whenever repair-rds < rebuild-rds.  x-size =";
        "churned size / rebuilt size; certification runs per component with";
        "down edges excluded from both sides of the stretch audit";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E24: per-phase cost breakdown — where the rounds, messages, and
   words actually go, attributed by the observability layer.  Same
   scenario families as E22 (loss + crashes) and E23 (churn). *)

let e24_phase_breakdown ?(quick = true) ~seed () =
  let n = if quick then 96 else 192 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(8. /. float_of_int n) in
  let plan = Spanner.Plan.make ~n ~d:4 () in
  let sampling =
    Spanner.Sampling.draw (Util.Prng.create ~seed:(seed + 5)) ~n plan
  in
  (* As in E23: learn the cluster-tree hooks from a loss-free run so
     the churn scenario is guaranteed to damage the spanner. *)
  let base = Spanner.Skeleton_dist.build_with ~plan ~sampling g in
  let bw = base.Spanner.Skeleton_dist.witness in
  let hooks =
    let l = ref [] in
    for v = n - 1 downto 0 do
      if bw.Spanner.Certify.parent.(v) >= 0 then
        l := bw.Spanner.Certify.parent_edge.(v) :: !l
    done;
    let a = Array.of_list (List.sort_uniq compare !l) in
    Util.Prng.shuffle (Util.Prng.create ~seed:(seed + 7)) a;
    a
  in
  let churn =
    List.init (Stdlib.min 4 (Array.length hooks)) (fun i ->
        let u, v = Graph.edge_endpoints g hooks.(i) in
        Distnet.Fault.Edge_down { round = 40; u; v })
  in
  let crash_faults =
    let crng = Util.Prng.create ~seed:(seed + 87) in
    let crashes = ref [] in
    for v = 0 to n - 1 do
      if Util.Prng.bernoulli crng 0.05 then
        crashes := (v, 1 + Util.Prng.int crng 300) :: !crashes
    done;
    Distnet.Fault.make ~seed:(seed + 31)
      {
        Distnet.Fault.default_spec with
        Distnet.Fault.drop = 0.2;
        crashes = List.rev !crashes;
      }
  in
  let churn_faults =
    Distnet.Fault.make ~seed:(seed + 31) ~graph:g
      { Distnet.Fault.default_spec with Distnet.Fault.churn }
  in
  let scenarios =
    [
      ("loss-free", Distnet.Fault.none);
      ("drop20+crash", crash_faults);
      ("churn/4", churn_faults);
    ]
  in
  let rows =
    List.concat_map
      (fun (label, faults) ->
        let metrics = Obs.Metrics.create () in
        let r =
          Spanner.Skeleton_dist.build_with ~faults ~metrics ~plan ~sampling g
        in
        let st = r.Spanner.Skeleton_dist.stats in
        let phases = Obs.Report.phase_rows (Obs.Metrics.snapshot metrics) in
        let total = Obs.Report.totals phases in
        List.map
          (fun (p : Obs.Report.phase_row) ->
            [
              label;
              p.Obs.Report.phase;
              ci p.Obs.Report.rounds;
              ci p.Obs.Report.messages;
              ci p.Obs.Report.words;
              ci p.Obs.Report.max_words;
              cf
                (100.
                *. float_of_int p.Obs.Report.rounds
                /. float_of_int (Stdlib.max 1 st.Sim.rounds));
            ])
          (phases @ [ total ]))
      scenarios
  in
  {
    Table.id = "E24";
    title =
      Printf.sprintf "per-phase cost breakdown (n=%d, m=%d)" n (Graph.m g);
    reproduces =
      "observability: Theorem 2's round/word budget attributed per phase";
    columns =
      [ "scenario"; "phase"; "rounds"; "messages"; "words"; "max-w"; "%rounds" ];
    rows;
    notes =
      [
        "per-phase counters from the metrics registry; each scenario's";
        "totals row equals the run's network stats (the attribution is";
        "exact, not sampled).  loss-free runs on the bare engine; the";
        "faulty scenarios (E22's drop+crash, E23's hook churn) pay their";
        "overhead mostly in exchange (ARQ retries) and the death/repair";
        "phases";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E25: the spanner as a live service — freeze the skeleton into a
   snapshot, answer a large query workload, measure throughput and
   tail latency, and keep serving across an atomic snapshot swap while
   churn repair rebuilds in the background.  Answers are audited
   against sampled BFS ground truth. *)

let e25_serving ?(quick = true) ~seed () =
  let n = if quick then 160 else 400 in
  let queries = if quick then 20_000 else 200_000 in
  let k = 2 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(8. /. float_of_int n) in
  let base = Spanner.Skeleton_dist.build ~seed g in
  let spanner = base.Spanner.Skeleton_dist.spanner in
  (* Churn that is guaranteed to damage the spanner: down two
     cluster-tree hook edges (as E23/E24 do). *)
  let churn =
    let bw = base.Spanner.Skeleton_dist.witness in
    let hooks = ref [] in
    for v = n - 1 downto 0 do
      if bw.Spanner.Certify.parent.(v) >= 0 then
        hooks := bw.Spanner.Certify.parent_edge.(v) :: !hooks
    done;
    let a = Array.of_list (List.sort_uniq compare !hooks) in
    Util.Prng.shuffle (Util.Prng.create ~seed:(seed + 7)) a;
    List.init (Stdlib.min 2 (Array.length a)) (fun i ->
        let u, v = Graph.edge_endpoints g a.(i) in
        Distnet.Fault.Edge_down { round = 40; u; v })
  in
  let workload zipf =
    Serve.Workload.generate ~seed:(seed + 41) ~n
      { Serve.Workload.queries; zipf; route_frac = 0.25 }
  in
  let scenario label zipf ~churned =
    let w = workload zipf in
    let snap0 =
      Serve.Snapshot.build ~generation:0 ~k ~seed ~routing:true g spanner
    in
    let server = Serve.Server.create snap0 in
    let rep =
      if not churned then Serve.Server.run server w
      else begin
        let total = Array.length w in
        let s1 = total / 3 and s2 = total / 3 in
        let r1 = Serve.Server.run ~first:0 ~count:s1 server w in
        Serve.Server.mark_dirty server;
        let r2 = Serve.Server.run ~first:s1 ~count:s2 server w in
        let faults =
          Distnet.Fault.make ~seed:(seed + 31) ~graph:g
            { Distnet.Fault.default_spec with Distnet.Fault.churn }
        in
        let rr = Spanner.Skeleton_dist.build ~faults ~seed g in
        let snap1 =
          Serve.Snapshot.build ~generation:1 ~k ~seed ~routing:true
            ~exclude:rr.Spanner.Skeleton_dist.dead_edges g
            rr.Spanner.Skeleton_dist.spanner
        in
        Serve.Server.publish server snap1;
        let r3 =
          Serve.Server.run ~first:(s1 + s2) ~count:(total - s1 - s2) server w
        in
        Serve.Server.merge [ r1; r2; r3 ]
      end
    in
    let a =
      Serve.Server.audit ~samples:64 ~seed:(seed + 53)
        (Serve.Server.snapshot server)
        w
    in
    let lat = rep.Serve.Server.latency_sorted in
    [
      label;
      ci rep.Serve.Server.answered;
      cf
        (float_of_int rep.Serve.Server.answered
        *. 1e3
        /. float_of_int (Stdlib.max 1 rep.Serve.Server.elapsed_ns));
      cf (Util.Stats.p50_of_sorted lat);
      cf (Util.Stats.p90_of_sorted lat);
      cf (Util.Stats.p99_of_sorted lat);
      ci rep.Serve.Server.stale;
      ci rep.Serve.Server.failed;
      ci (Serve.Server.swaps server);
      cf a.Serve.Server.max_stretch;
      (if Serve.Server.audit_ok a then "yes" else "NO");
    ]
  in
  let rows =
    [
      scenario "steady/uniform" None ~churned:false;
      scenario "steady/zipf1.2" (Some 1.2) ~churned:false;
      scenario "churn+swap" None ~churned:true;
    ]
  in
  {
    Table.id = "E25";
    title =
      Printf.sprintf "query serving: throughput and tail latency (n=%d, %d \
                      queries)"
        n queries;
    reproduces =
      "the skeleton as a live distance/route service (snapshot + oracle)";
    columns =
      [
        "scenario"; "queries"; "Mq/s"; "p50ns"; "p90ns"; "p99ns"; "stale";
        "failed"; "swaps"; "x-max"; "audit";
      ];
    rows;
    notes =
      [
        "distance queries answered by the Thorup-Zwick oracle (stretch";
        "<= 2k-1), route queries by compact routing (stretch <= 5), both";
        "precomputed over the frozen spanner snapshot.  churn+swap serves";
        "one third fresh, marks the snapshot stale when churn lands, keeps";
        "serving while the skeleton rebuilds, then publishes generation 1";
        "atomically - zero failed queries across the swap.  latency and";
        "Mq/s are wall-clock measurements and vary per host; counts,";
        "staleness, and the audit verdict are deterministic in the seed";
      ];
  }

let e26_resilience_sweep ?(quick = true) ~seed:_ () =
  (* Scenario families are self-seeded: a sweep's whole point is that
     the spec text alone reproduces it. *)
  let samples = if quick then 8 else 40 in
  let row spec =
    let agg = Scenario.Sweep.run spec ~samples in
    let shrunk =
      (* Shrink the first failure (if any) and report how small the
         reproducer got — the deliberately failing family demonstrates
         the ladder end to end. *)
      match agg.Scenario.Sweep.failures with
      | [] -> "-"
      | r :: _ ->
          let tag =
            match r.Scenario.Sweep.outcome with
            | Scenario.Sweep.Failed f -> Scenario.Sweep.failure_tag f
            | Scenario.Sweep.Certified _ -> "?"
          in
          let fails p =
            match (Scenario.Sweep.run_plan p).Scenario.Sweep.outcome with
            | Scenario.Sweep.Failed f' -> Scenario.Sweep.failure_tag f' = tag
            | Scenario.Sweep.Certified _ -> false
          in
          let plan = r.Scenario.Sweep.plan in
          let s = Scenario.Shrink.shrink ~max_evals:80 ~fails plan in
          Printf.sprintf "%d->%d%s"
            (Scenario.Shrink.weight plan)
            (Scenario.Shrink.weight s.Scenario.Shrink.plan)
            (if s.Scenario.Shrink.verified then "" else "?")
    in
    [
      agg.Scenario.Sweep.scenario;
      ci agg.Scenario.Sweep.samples;
      ci agg.Scenario.Sweep.intact;
      ci agg.Scenario.Sweep.patched;
      ci agg.Scenario.Sweep.degraded;
      ci agg.Scenario.Sweep.partitioned;
      ci (Scenario.Sweep.failed agg);
      ci agg.Scenario.Sweep.worst_rounds;
      ci agg.Scenario.Sweep.worst_size;
      cf agg.Scenario.Sweep.worst_stretch;
      shrunk;
    ]
  in
  let rows = List.map (fun (_, spec) -> row spec) Scenario.Spec.builtins in
  {
    Table.id = "E26";
    title =
      Printf.sprintf "resilience sweep: %d sampled scenarios per family"
        samples;
    reproduces =
      "survival of the construction under probabilistic fault scenarios";
    columns =
      [
        "scenario"; "N"; "intact"; "patched"; "degr"; "part"; "FAIL";
        "w-rounds"; "w-size"; "x-max"; "shrink";
      ];
    rows;
    notes =
      [
        "each sample compiles the scenario family (Gilbert-Elliott bursty";
        "loss, correlated crash storms, heavy-tailed churn) to a concrete";
        "fault plan, runs the distributed construction over it, certifies";
        "the output, and lands on the repair ladder; FAILed samples are";
        "delta-debugged to a minimal replayable plan (shrink = reproducer";
        "weight before->after).  tight-budget fails by design: its round";
        "budget sits below its churn tax, exercising the shrinker";
      ];
  }

(* ------------------------------------------------------------------ *)
(* E27: crash-recovery — nodes crash mid-run and rejoin with a fresh
   incarnation; the rejoin repair pass vs a from-scratch rebuild on
   the surviving graph, across a restart scenario × loss matrix. *)

let e27_crash_recovery ?(quick = true) ~seed () =
  let n = if quick then 96 else 192 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n ~p:(8. /. float_of_int n) in
  let plan = Spanner.Plan.make ~n ~d:4 () in
  let sampling =
    Spanner.Sampling.draw (Util.Prng.create ~seed:(seed + 5)) ~n plan
  in
  (* Deterministic node picks shared by all scenarios: the first k of
     one shuffle, so rejoin/8 crashes a superset of rejoin/3's nodes. *)
  let picks =
    let a = Array.init n (fun i -> i) in
    Util.Prng.shuffle (Util.Prng.create ~seed:(seed + 7)) a;
    a
  in
  let schedule ~crashed ~restarted =
    let crng = Util.Prng.create ~seed:(seed + 87) in
    let crashes =
      List.init crashed (fun i -> (picks.(i), 5 + Util.Prng.int crng 20))
    in
    let restarts =
      List.filteri (fun i _ -> i < restarted) crashes
      |> List.map (fun (v, r) -> (v, r + 40 + Util.Prng.int crng 60))
    in
    (crashes, restarts)
  in
  let scenarios =
    [
      ("rejoin/3", schedule ~crashed:3 ~restarted:3);
      ("rejoin/8", schedule ~crashed:8 ~restarted:8);
      ("mixed/8", schedule ~crashed:8 ~restarted:4);
    ]
  in
  let rows =
    List.concat_map
      (fun (label, (crashes, restarts)) ->
        List.map
          (fun drop ->
            let faults =
              Distnet.Fault.make ~seed:(seed + 31) ~graph:g
                {
                  Distnet.Fault.default_spec with
                  Distnet.Fault.drop;
                  crashes;
                  restarts;
                }
            in
            let r = Spanner.Skeleton_dist.build_with ~faults ~plan ~sampling g in
            let rp = r.Spanner.Skeleton_dist.repair in
            (* From-scratch competitor: rerun the whole construction,
               loss-free, on the graph without the never-rejoining
               nodes — the cost of discarding all state instead of
               repairing around the rejoin. *)
            let survivor =
              let dead = Array.make n false in
              List.iter
                (fun (v, _) ->
                  if not (List.mem_assoc v restarts) then dead.(v) <- true)
                crashes;
              let b = Graph.Builder.create ~n in
              Graph.iter_edges g (fun _ u v ->
                  if not (dead.(u) || dead.(v)) then
                    Graph.Builder.add_edge b u v);
              Graph.Builder.build b
            in
            let rebuilt =
              Spanner.Skeleton_dist.build_with ~plan ~sampling survivor
            in
            let down = Array.make (Stdlib.max 1 (Graph.m g)) false in
            List.iter
              (fun e -> down.(e) <- true)
              r.Spanner.Skeleton_dist.dead_edges;
            let verdict =
              Spanner.Certify.run ~plan
                ~witness:r.Spanner.Skeleton_dist.witness
                ~down_edge:(fun e -> down.(e))
                ~per_component:true g r.Spanner.Skeleton_dist.spanner
            in
            let size = Edge_set.cardinal r.Spanner.Skeleton_dist.spanner in
            let rb_size =
              Edge_set.cardinal rebuilt.Spanner.Skeleton_dist.spanner
            in
            [
              label;
              cf drop;
              Format.asprintf "%a" Spanner.Skeleton_dist.pp_outcome
                rp.Spanner.Skeleton_dist.outcome;
              ci (List.length crashes);
              ci rp.Spanner.Skeleton_dist.rejoined;
              ci rp.Spanner.Skeleton_dist.rehooked;
              ci rp.Spanner.Skeleton_dist.repair_rounds;
              ci rebuilt.Spanner.Skeleton_dist.stats.Sim.rounds;
              cf (float_of_int size /. float_of_int (Stdlib.max 1 rb_size));
              (if Spanner.Certify.ok verdict then "yes" else "NO");
            ])
          [ 0.; 0.1 ])
      scenarios
  in
  {
    Table.id = "E27";
    title =
      Printf.sprintf
        "crash-recovery: rejoin repair vs from-scratch rebuild (n=%d, m=%d)" n
        (Graph.m g);
    reproduces =
      "beyond the paper: Theorem 2's construction under crash-recovery";
    columns =
      [
        "restart"; "drop"; "outcome"; "crashed"; "rejoined"; "rehooked";
        "repair-rds"; "rebuild-rds"; "x-size"; "certified";
      ];
    rows;
    notes =
      [
        "rejoin/k crashes k nodes in rounds 5-25 and restarts each one";
        "40-100 rounds after its crash with a fresh incarnation; mixed/8";
        "restarts only half, leaving 4 nodes down for good.  the repair";
        "pass reattaches every reborn node (rejoined column) in";
        "repair-rds rounds; rebuild-rds is a loss-free from-scratch run";
        "on the graph without the permanently dead nodes - repair after";
        "rejoin wins whenever repair-rds < rebuild-rds.  certification";
        "audits reborn nodes in full, per component; stale in-flight";
        "messages across a restart are dropped by incarnation filtering";
      ];
  }

let all ?(quick = true) ~seed () =
  [
    e1_fig1 ~quick ~seed ();
    e2_size_vs_density ~quick ~seed ();
    e3_skeleton_scaling ~quick ~seed ();
    e4_fib_stages ~quick ~seed ();
    e5_fib_size_vs_order ~quick ~seed ();
    e6_lb_eps_beta ~quick ~seed ();
    e7_lb_additive ~quick ~seed ();
    e8_fib_budget ~quick ~seed ();
    e9_contribution ~quick ~seed ();
    e10_overlay ~quick ~seed ();
    e11_linear_strategies ~quick ~seed ();
    e12_abort_ablation ~quick ~seed ();
    e13_oracle ~quick ~seed ();
    e14_combined ~quick ~seed ();
    e15_lb_sublinear ~quick ~seed ();
    e16_girth_frontier ~quick ~seed ();
    e17_streaming ~quick ~seed ();
    e18_beta_comparison ~quick ~seed ();
    e19_eps_beta_behavior ~quick ~seed ();
    e20_compact_routing ~quick ~seed ();
    e21_faults ~quick ~seed ();
    e22_recovery ~quick ~seed ();
    e23_churn ~quick ~seed ();
    e24_phase_breakdown ~quick ~seed ();
    e25_serving ~quick ~seed ();
    e26_resilience_sweep ~quick ~seed ();
    e27_crash_recovery ~quick ~seed ();
  ]

let table_ids =
  [
    ("E1", e1_fig1);
    ("E2", e2_size_vs_density);
    ("E3", e3_skeleton_scaling);
    ("E4", e4_fib_stages);
    ("E5", e5_fib_size_vs_order);
    ("E6", e6_lb_eps_beta);
    ("E7", e7_lb_additive);
    ("E8", e8_fib_budget);
    ("E9", e9_contribution);
    ("E10", e10_overlay);
    ("E11", e11_linear_strategies);
    ("E12", e12_abort_ablation);
    ("E13", e13_oracle);
    ("E14", e14_combined);
    ("E15", e15_lb_sublinear);
    ("E16", e16_girth_frontier);
    ("E17", e17_streaming);
    ("E18", e18_beta_comparison);
    ("E19", e19_eps_beta_behavior);
    ("E20", e20_compact_routing);
    ("E21", e21_faults);
    ("E22", e22_recovery);
    ("E23", e23_churn);
    ("E24", e24_phase_breakdown);
    ("E25", e25_serving);
    ("E26", e26_resilience_sweep);
    ("E27", e27_crash_recovery);
  ]

let by_id id = List.assoc_opt (String.uppercase_ascii id) table_ids
let ids = List.map fst table_ids
