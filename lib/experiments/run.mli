(** The experiment suite: one function per table of EXPERIMENTS.md,
    each regenerating a quantitative claim of the paper (Fig. 1 or a
    theorem).  [quick] shrinks workloads for the default bench run;
    the full sizes are what EXPERIMENTS.md records.  Everything is
    deterministic in [seed]. *)

val e1_fig1 : ?quick:bool -> seed:int -> unit -> Table.t
(** Fig. 1 — the state-of-the-art comparison: size, distortion,
    rounds, and maximum message length per algorithm, measured. *)

val e2_size_vs_density : ?quick:bool -> seed:int -> unit -> Table.t
(** Lemma 6 / Theorem 2 — skeleton size ≈ [D n / e + O(n log D)],
    swept over D. *)

val e3_skeleton_scaling : ?quick:bool -> seed:int -> unit -> Table.t
(** Theorem 2 — rounds, message length and distortion of the
    distributed skeleton as n grows. *)

val e4_fib_stages : ?quick:bool -> seed:int -> unit -> Table.t
(** Theorem 7 / Corollary 1 — the staged distortion of a Fibonacci
    spanner as a function of distance. *)

val e5_fib_size_vs_order : ?quick:bool -> seed:int -> unit -> Table.t
(** Lemma 8 — the sparseness-distortion tradeoff swept over the
    order o. *)

val e6_lb_eps_beta : ?quick:bool -> seed:int -> unit -> Table.t
(** Theorem 4 — beta forced on (1+eps,beta)-spanners vs round budget
    tau, on G(tau, sigma, kappa). *)

val e7_lb_additive : ?quick:bool -> seed:int -> unit -> Table.t
(** Theorem 5 — additive spanners: the distortion a tau-round
    algorithm suffers at the proof's parameter choices. *)

val e8_fib_budget : ?quick:bool -> seed:int -> unit -> Table.t
(** Section 4.4 — Monte Carlo blocking and Las Vegas recovery of the
    distributed Fibonacci construction vs the message budget n^(1/t). *)

val e9_contribution : ?quick:bool -> seed:int -> unit -> Table.t
(** Lemma 6 — exact X^t_p against the paper's corrected bound and the
    original Baswana–Sen claim. *)

val e10_overlay : ?quick:bool -> seed:int -> unit -> Table.t
(** Section 1 motivation — broadcast on the skeleton vs on the full
    network: message count vs delay. *)

val all : ?quick:bool -> seed:int -> unit -> Table.t list
val by_id : string -> (?quick:bool -> seed:int -> unit -> Table.t) option
val ids : string list

val e11_linear_strategies : ?quick:bool -> seed:int -> unit -> Table.t
(** Ablation: linear-size strategies head to head — Baswana–Sen
    clustering without contraction vs the skeleton with it, plus the
    greedy and Corollary 1 references. *)

val e12_abort_ablation : ?quick:bool -> seed:int -> unit -> Table.t
(** Ablation of the [q > 4 s_i ln n] abort rule. *)

val e13_oracle : ?quick:bool -> seed:int -> unit -> Table.t
(** §5's application: Thorup–Zwick distance-oracle space/stretch. *)

val e14_combined : ?quick:bool -> seed:int -> unit -> Table.t
(** Corollary 1: the Fibonacci + skeleton union's distortion profile. *)

val e15_lb_sublinear : ?quick:bool -> seed:int -> unit -> Table.t
(** Theorem 6 — sublinear-additive spanners need polynomial rounds. *)

val e16_girth_frontier : ?quick:bool -> seed:int -> unit -> Table.t
(** The girth-conjecture background: greedy (2k−1)-spanners against the
    [n^(1+1/k)] size frontier. *)

val e17_streaming : ?quick:bool -> seed:int -> unit -> Table.t
(** §1.4's streaming model: single-pass spanner memory vs the
    [n^(1+1/k)] frontier on the densest possible stream. *)

val e18_beta_comparison : ?quick:bool -> seed:int -> unit -> Table.t
(** §1.2's analytic claim: the Fibonacci spanner's β "compares
    favorably" with Elkin–Zhang's at equal message budgets. *)

val e19_eps_beta_behavior : ?quick:bool -> seed:int -> unit -> Table.t
(** §1.2/§4: the (1+ε,β) signature — additive error saturating with
    distance — for the EZ-style superclustering baseline and the
    Fibonacci spanner side by side. *)

val e20_compact_routing : ?quick:bool -> seed:int -> unit -> Table.t
(** §5's closing question: compact routing state vs measured route
    stretch. *)

val e21_faults : ?quick:bool -> seed:int -> unit -> Table.t
(** Beyond the paper: §1.1's loss-free model relaxed.  Rounds/words
    overhead of ARQ-lifted (reliable) BFS and skeleton-overlay
    broadcast as the message drop rate sweeps 0 → 30%, with
    correctness checks at every rate. *)

val e22_recovery : ?quick:bool -> seed:int -> unit -> Table.t
(** Beyond the paper: Theorem 2's construction under crash-stop
    faults.  The self-healing distributed skeleton over a crash
    fraction {0, 5, 10%} × drop rate {0, 20%} matrix, on one fixed
    random tape: spanner size and recovered-edge cost of orphan
    aborts, rounds/words overhead vs the loss-free baseline, and the
    {!Spanner.Certify} verdict (with its audited max stretch) for
    every cell. *)

val e23_churn : ?quick:bool -> seed:int -> unit -> Table.t
(** Beyond the paper: Theorem 2's construction under topology churn.
    Across a churn scenario (hook-edge drops, a healing partition) ×
    message-loss matrix: the incremental repair pass's outcome ladder,
    damage counters, and rounds, against a from-scratch distributed
    rebuild on the surviving graph — with per-component certification
    of every churned output. *)

val e24_phase_breakdown : ?quick:bool -> seed:int -> unit -> Table.t
(** Observability: Theorem 2's round/word budget attributed per phase
    by the metrics registry, across E22/E23's fault scenarios; each
    scenario's totals row equals its network statistics. *)

val e25_serving : ?quick:bool -> seed:int -> unit -> Table.t
(** The serving subsystem: query throughput and exact tail-latency
    percentiles against a frozen snapshot (Thorup-Zwick distances,
    compact routes), steady-state and across an atomic snapshot swap
    under churn, with answers audited against sampled BFS ground
    truth.  Latency columns are wall-clock measurements; everything
    else is deterministic in the seed. *)

val e26_resilience_sweep : ?quick:bool -> seed:int -> unit -> Table.t
(** The resilience sweep: every built-in scenario family
    (crash-storm, bursty-loss, churn-heavy, mixed, tight-budget)
    sampled and run through build + certify + serve, with the repair
    ladder tallied and every FAIL delta-debugged to a minimal
    replayable plan.  Fully deterministic: families are self-seeded,
    so [seed] is ignored. *)
