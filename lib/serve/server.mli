(** The serving loop: answer query batches from the current
    {!Snapshot} while background repair prepares the next one, and
    swap atomically.

    The server holds one {e current} snapshot and a {e topology
    epoch}.  Readers always answer from the snapshot they observe at
    query time; {!publish} replaces the snapshot in one assignment
    (OCaml guarantees the reference swap is atomic — a reader either
    sees the old generation or the new one, never a mix), and the old
    snapshot, being immutable, stays valid for any reader still
    holding it until it drains.  {!mark_dirty} advances the epoch when
    the underlying topology changes (churn landed, repair started):
    from then until the repaired snapshot is published, answers are
    {e stale} — correct for the generation that produced them, behind
    the live topology — and are counted as such, so staleness is a
    measured quantity rather than a hidden failure mode.

    Per-query latency is measured with the monotonic clock and
    recorded both in the returned report (exact percentiles via
    {!Util.Stats}) and, when a registry is supplied, in the metrics
    sink: a [serve_latency_ns] histogram and [serve_answers] counters
    labeled by generation and freshness, plus [serve_failed] and
    [serve_swaps]. *)

type t

val create : ?metrics:Obs.Metrics.t -> Snapshot.t -> t
(** Serve from an initial snapshot ([metrics] defaults to
    {!Obs.Metrics.disabled}). *)

val snapshot : t -> Snapshot.t
val generation : t -> int
(** Generation of the current snapshot. *)

val epoch : t -> int
(** Current topology epoch; answers are stale while it exceeds
    {!generation}. *)

val swaps : t -> int

val mark_dirty : t -> unit
(** The served topology changed; serving continues from the current
    snapshot, now stale. *)

val publish : t -> Snapshot.t -> unit
(** Atomically swap in a rebuilt snapshot.  Its generation must
    exceed the current one; the epoch advances to at least that
    generation, so answers become fresh again.
    @raise Invalid_argument on a non-increasing generation. *)

(** {1 Batches} *)

type report = {
  answered : int;
  failed : int;  (** disconnected pairs / failed routes *)
  stale : int;
  elapsed_ns : int;  (** wall-clock for the whole batch *)
  latency_sorted : float array;  (** per-query ns, ascending *)
  by_generation : (int * int * int) list;
      (** (generation, fresh answers, stale answers), ascending *)
}

val run : ?first:int -> ?count:int -> t -> Workload.query array -> report
(** Answer [queries.(first .. first+count-1)] (defaults: the whole
    array) against the server, timing each query. *)

val merge : report list -> report
(** Combined report of consecutive batches (latencies re-sorted,
    per-generation tallies summed). *)

val pp_report : Format.formatter -> report -> unit
(** Deterministic summary lines (counts, generations, staleness) —
    no timings, so output is pinnable. *)

(** {1 Answer audit}

    Certify-style sampled ground truth: re-answer a sample of the
    workload and compare against exact BFS distances on the
    snapshot's own graph.  A distance answer must lie within
    [[d, (2k-1) d]]; a route must reach its target in at most [5 d]
    hops (the Cowen bound) and never beat [d]. *)

type audit = {
  sampled : int;  (** pairs audited *)
  failures : int;
  max_stretch : float;  (** worst answer / exact ratio observed *)
  dist_bound : float;  (** the oracle's [2k-1] *)
}

val audit_ok : audit -> bool

val audit :
  ?samples:int -> ?seed:int -> Snapshot.t -> Workload.query array -> audit
(** [samples] (default 64) queries are drawn with [seed] (default 1)
    from the workload and checked against BFS on
    [Snapshot.graph]. *)

val pp_audit : Format.formatter -> audit -> unit
