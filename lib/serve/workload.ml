type query = { src : int; dst : int; route : bool }
type spec = { queries : int; zipf : float option; route_frac : float }

let default_spec = { queries = 1000; zipf = None; route_frac = 0. }

let generate ~seed ~n spec =
  if n <= 0 then invalid_arg "Workload.generate: n must be positive";
  if spec.queries < 0 then invalid_arg "Workload.generate: negative queries";
  if spec.route_frac < 0. || spec.route_frac > 1. then
    invalid_arg "Workload.generate: route_frac outside [0,1]";
  let rng = Util.Prng.create ~seed in
  let draw_src =
    match spec.zipf with
    | None -> fun () -> Util.Prng.int rng n
    | Some s ->
        let sampler = Util.Dist.zipf ~n ~s in
        (* Spread the popularity ranks over the vertex set: rank r is
           vertex [rank_of.(r)], fixed by the workload seed. *)
        let rank_of = Array.init n (fun i -> i) in
        Util.Prng.shuffle rng rank_of;
        fun () -> rank_of.(Util.Dist.sample sampler rng)
  in
  Array.init spec.queries (fun _ ->
      let src = draw_src () in
      let dst = Util.Prng.int rng n in
      let route = Util.Prng.bernoulli rng spec.route_frac in
      { src; dst; route })

let save queries path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "#workload queries=%d\n" (Array.length queries);
      Array.iter
        (fun q ->
          Printf.fprintf oc "%c %d %d\n" (if q.route then 'r' else 'd') q.src
            q.dst)
        queries)

let load ~n path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let acc = ref [] and count = ref 0 and lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let line = String.trim line in
           if line <> "" && line.[0] <> '#' then begin
             match String.split_on_char ' ' line with
             | [ kind; u; v ] -> (
                 let route =
                   match kind with
                   | "d" -> false
                   | "r" -> true
                   | _ ->
                       failwith
                         (Printf.sprintf "%s:%d: bad query kind %S" path
                            !lineno kind)
                 in
                 match (int_of_string_opt u, int_of_string_opt v) with
                 | Some src, Some dst ->
                     if src < 0 || src >= n || dst < 0 || dst >= n then
                       failwith
                         (Printf.sprintf
                            "%s:%d: vertex out of range (n=%d)" path !lineno n);
                     acc := { src; dst; route } :: !acc;
                     incr count
                 | _ ->
                     failwith
                       (Printf.sprintf "%s:%d: bad query line %S" path !lineno
                          line))
             | _ ->
                 failwith
                   (Printf.sprintf "%s:%d: bad query line %S" path !lineno line)
           end
         done
       with End_of_file -> ());
      let arr = Array.make !count { src = 0; dst = 0; route = false } in
      let i = ref (!count - 1) in
      List.iter
        (fun q ->
          arr.(!i) <- q;
          decr i)
        !acc;
      arr)

let route_count queries =
  Array.fold_left (fun acc q -> if q.route then acc + 1 else acc) 0 queries
