(** User-style query workloads: millions of distance/route lookups,
    generated from a seed or loaded from a file.

    A workload is just an array of queries against vertex ids of the
    served graph.  The generator draws sources from either a uniform
    or a Zipf-popular distribution ({!Util.Dist} — heavy-tailed
    popularity is what real query traffic looks like), destinations
    uniformly, and makes each query a route lookup with probability
    [route_frac].  Everything is deterministic in [(seed, n, spec)]:
    the same workload can be regenerated for replay or saved with
    {!save}. *)

type query = {
  src : int;
  dst : int;
  route : bool;  (** route lookup rather than distance lookup *)
}

type spec = {
  queries : int;
  zipf : float option;
      (** source-popularity exponent; [None] = uniform sources *)
  route_frac : float;  (** fraction of route queries, in [0, 1] *)
}

val default_spec : spec
(** 1000 uniform distance queries. *)

val generate : seed:int -> n:int -> spec -> query array
(** @raise Invalid_argument if [n <= 0], [queries < 0], or
    [route_frac] outside [0, 1].  With [zipf = Some s] the popularity
    ranks are assigned to vertices by a seeded shuffle, so the popular
    sources are spread over the graph rather than biased to low
    ids. *)

val save : query array -> string -> unit
(** One query per line: [d u v] or [r u v], after a [#workload]
    header. *)

val load : n:int -> string -> query array
(** @raise Failure on malformed lines or vertex ids outside
    [0 .. n-1]. *)

val route_count : query array -> int
