module Metrics = Obs.Metrics

type t = {
  mutable current : Snapshot.t;
  mutable epoch : int;
  mutable swaps : int;
  metrics : Metrics.t;
  (* Hot-path instrument cache, refreshed when the generation moves:
     the batch loop must not pay a find-or-create per query. *)
  mutable cached_gen : int;
  mutable c_fresh : Metrics.counter;
  mutable c_stale : Metrics.counter;
  mutable h_latency : Metrics.histogram;
  c_failed : Metrics.counter;
  c_swaps : Metrics.counter;
}

let instruments metrics gen =
  let g = [ ("generation", string_of_int gen) ] in
  ( Metrics.counter metrics "serve_answers"
      ~labels:(("freshness", "fresh") :: g),
    Metrics.counter metrics "serve_answers"
      ~labels:(("freshness", "stale") :: g),
    Metrics.histogram metrics "serve_latency_ns" ~labels:g )

let create ?(metrics = Metrics.disabled) snapshot =
  let gen = Snapshot.generation snapshot in
  let c_fresh, c_stale, h_latency = instruments metrics gen in
  {
    current = snapshot;
    epoch = gen;
    swaps = 0;
    metrics;
    cached_gen = gen;
    c_fresh;
    c_stale;
    h_latency;
    c_failed = Metrics.counter metrics "serve_failed";
    c_swaps = Metrics.counter metrics "serve_swaps";
  }

let snapshot t = t.current
let generation t = Snapshot.generation t.current
let epoch t = t.epoch
let swaps t = t.swaps

let refresh_cache t =
  let gen = Snapshot.generation t.current in
  if gen <> t.cached_gen then begin
    let c_fresh, c_stale, h_latency = instruments t.metrics gen in
    t.cached_gen <- gen;
    t.c_fresh <- c_fresh;
    t.c_stale <- c_stale;
    t.h_latency <- h_latency
  end

let mark_dirty t = t.epoch <- t.epoch + 1

let publish t snapshot =
  let gen = Snapshot.generation snapshot in
  if gen <= Snapshot.generation t.current then
    invalid_arg
      (Printf.sprintf "Server.publish: generation %d not above current %d" gen
         (Snapshot.generation t.current));
  (* The swap itself: one assignment.  Readers holding the old
     snapshot keep a consistent immutable structure until they
     drain. *)
  t.current <- snapshot;
  t.swaps <- t.swaps + 1;
  if t.epoch < gen then t.epoch <- gen;
  Metrics.incr t.c_swaps;
  refresh_cache t

type report = {
  answered : int;
  failed : int;
  stale : int;
  elapsed_ns : int;
  latency_sorted : float array;
  by_generation : (int * int * int) list;
}

let run ?(first = 0) ?count t queries =
  let count =
    match count with
    | Some c -> c
    | None -> Array.length queries - first
  in
  if first < 0 || count < 0 || first + count > Array.length queries then
    invalid_arg "Server.run: batch outside the workload";
  refresh_cache t;
  let latency = Array.make count 0. in
  let failed = ref 0 and stale_count = ref 0 in
  let tally : (int, int ref * int ref) Hashtbl.t = Hashtbl.create 4 in
  (* One region per batch, not per query — a per-query enter/leave
     would dwarf the nanosecond-scale lookups it measures. *)
  let prof = Obs.Prof.current () in
  Obs.Prof.enter prof "serve_answer";
  let batch_start = Monotonic_clock.now () in
  for i = 0 to count - 1 do
    let q = queries.(first + i) in
    let snap = t.current in
    let t0 = Monotonic_clock.now () in
    let value =
      if q.Workload.route then Snapshot.route_hops snap q.Workload.src q.Workload.dst
      else Snapshot.distance snap q.Workload.src q.Workload.dst
    in
    let t1 = Monotonic_clock.now () in
    let ns = Int64.to_int (Int64.sub t1 t0) in
    latency.(i) <- float_of_int ns;
    Metrics.observe t.h_latency ns;
    let gen = Snapshot.generation snap in
    let stale = gen < t.epoch in
    if stale then begin
      incr stale_count;
      Metrics.incr t.c_stale
    end
    else Metrics.incr t.c_fresh;
    if value < 0 then begin
      incr failed;
      Metrics.incr t.c_failed
    end;
    let fresh_r, stale_r =
      match Hashtbl.find_opt tally gen with
      | Some cell -> cell
      | None ->
          let cell = (ref 0, ref 0) in
          Hashtbl.add tally gen cell;
          cell
    in
    if stale then incr stale_r else incr fresh_r
  done;
  let batch_stop = Monotonic_clock.now () in
  Obs.Prof.leave prof;
  Array.sort compare latency;
  let by_generation =
    Hashtbl.fold (fun g (f, s) acc -> (g, !f, !s) :: acc) tally []
    |> List.sort compare
  in
  {
    answered = count;
    failed = !failed;
    stale = !stale_count;
    elapsed_ns = Int64.to_int (Int64.sub batch_stop batch_start);
    latency_sorted = latency;
    by_generation;
  }

let merge reports =
  let answered = List.fold_left (fun a r -> a + r.answered) 0 reports in
  let latency = Array.make answered 0. in
  let off = ref 0 in
  List.iter
    (fun r ->
      Array.blit r.latency_sorted 0 latency !off (Array.length r.latency_sorted);
      off := !off + Array.length r.latency_sorted)
    reports;
  Array.sort compare latency;
  let tally : (int, int ref * int ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun r ->
      List.iter
        (fun (g, f, s) ->
          let fresh_r, stale_r =
            match Hashtbl.find_opt tally g with
            | Some cell -> cell
            | None ->
                let cell = (ref 0, ref 0) in
                Hashtbl.add tally g cell;
                cell
          in
          fresh_r := !fresh_r + f;
          stale_r := !stale_r + s)
        r.by_generation)
    reports;
  {
    answered;
    failed = List.fold_left (fun a r -> a + r.failed) 0 reports;
    stale = List.fold_left (fun a r -> a + r.stale) 0 reports;
    elapsed_ns = List.fold_left (fun a r -> a + r.elapsed_ns) 0 reports;
    latency_sorted = latency;
    by_generation =
      Hashtbl.fold (fun g (f, s) acc -> (g, !f, !s) :: acc) tally []
      |> List.sort compare;
  }

let pp_report ppf r =
  Format.fprintf ppf "served %d queries, %d failed, %d stale@." r.answered
    r.failed r.stale;
  Format.fprintf ppf "generations:";
  List.iter
    (fun (g, fresh, stale) ->
      Format.fprintf ppf " gen%d=%d" g (fresh + stale);
      if stale > 0 then Format.fprintf ppf " (stale %d)" stale)
    r.by_generation;
  Format.fprintf ppf "@."

(* ------------------------------------------------------------------ *)
(* Answer audit *)

type audit = {
  sampled : int;
  failures : int;
  max_stretch : float;
  dist_bound : float;
}

let audit_ok a = a.failures = 0

let audit ?(samples = 64) ?(seed = 1) snapshot queries =
  let total = Array.length queries in
  let g = Snapshot.graph snapshot in
  let dist_bound = float_of_int ((2 * Snapshot.oracle_k snapshot) - 1) in
  if total = 0 then { sampled = 0; failures = 0; max_stretch = 1.; dist_bound }
  else begin
    let rng = Util.Prng.create ~seed in
    let picks =
      Util.Prng.sample_without_replacement rng ~k:samples ~n:total
    in
    (* Group by source so each BFS serves every sampled query from
       that source. *)
    let by_src : (int, Workload.query list) Hashtbl.t = Hashtbl.create 16 in
    Array.iter
      (fun i ->
        let q = queries.(i) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_src q.Workload.src) in
        Hashtbl.replace by_src q.Workload.src (q :: prev))
      picks;
    let srcs = Hashtbl.fold (fun s _ acc -> s :: acc) by_src [] |> List.sort compare in
    let sampled = ref 0 and failures = ref 0 and max_stretch = ref 1. in
    List.iter
      (fun src ->
        let exact = Graphlib.Bfs.distances g ~src in
        List.iter
          (fun (q : Workload.query) ->
            incr sampled;
            let d = exact.(q.Workload.dst) in
            let answer =
              if q.Workload.route then
                Snapshot.route_hops snapshot q.Workload.src q.Workload.dst
              else Snapshot.distance snapshot q.Workload.src q.Workload.dst
            in
            if d < 0 then begin
              (* Disconnected in the snapshot: the answer must say so. *)
              if answer >= 0 then incr failures
            end
            else if answer < 0 then incr failures
            else begin
              if d > 0 then begin
                let st = float_of_int answer /. float_of_int d in
                if st > !max_stretch then max_stretch := st;
                let bound = if q.Workload.route then 5. else dist_bound in
                if answer < d || st > bound then incr failures
              end
              else if answer <> 0 then incr failures
            end)
          (Hashtbl.find by_src src))
      srcs;
    { sampled = !sampled; failures = !failures; max_stretch = !max_stretch; dist_bound }
  end

let pp_audit ppf a =
  Format.fprintf ppf
    "audit: %d sampled answers vs BFS ground truth, %d violations (max \
     stretch %.2f, bound %.1f): %s"
    a.sampled a.failures a.max_stretch a.dist_bound
    (if audit_ok a then "PASS" else "FAIL")
