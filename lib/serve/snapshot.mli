(** Read-optimized immutable snapshot of a built skeleton: the unit of
    publication of the serving stack.

    A snapshot freezes the spanner into a standalone CSR graph (the
    edge set re-indexed as its own {!Graphlib.Graph.t} — compressed
    adjacency, no hash tables on the read path) and precomputes the
    query structures from [lib/oracle] on it: a Thorup–Zwick distance
    oracle always, and Cowen-style compact routing tables on demand.
    Once built, a snapshot is never mutated — the swap layer
    ({!Server}) replaces whole snapshots atomically, so readers of an
    old generation keep a consistent structure until they drain.

    Every snapshot carries a {e generation} number.  Queries answered
    from it report that generation, which is how staleness under
    background repair is measured. *)

type t

val build :
  ?generation:int ->
  ?k:int ->
  ?seed:int ->
  ?routing:bool ->
  ?exclude:int list ->
  Graphlib.Graph.t ->
  Graphlib.Edge_set.t ->
  t
(** [build g spanner] freezes [spanner] (an edge set over host [g]).
    [generation] defaults to 0; [k] (oracle levels, stretch [2k-1])
    defaults to 2; [seed] (default 1) drives the oracle's level
    sampling; [routing] (default false) also builds the compact
    routing tables, needed to answer route queries; [exclude] lists
    host edge ids to leave out — the edges churn left dead, so a
    snapshot of a repaired spanner serves only the surviving
    topology. *)

val of_graph :
  ?generation:int -> ?k:int -> ?seed:int -> ?routing:bool ->
  Graphlib.Graph.t -> t
(** Freeze a graph that already {e is} the structure to serve (the
    whole graph becomes the snapshot's CSR).  [load] uses this. *)

(** {1 Queries}

    Allocation-free reads — the serving hot path. *)

val distance : t -> int -> int -> int
(** Oracle distance estimate, within [2k-1] of the spanner distance;
    [-1] when disconnected. *)

val route_hops : t -> int -> int -> int
(** Hops of the compact-routing walk; [-1] when disconnected or when
    the snapshot was built without [~routing:true]. *)

val has_routing : t -> bool

(** {1 Inspection} *)

val generation : t -> int
val n : t -> int
val edges : t -> int
(** Spanner edges frozen into the snapshot. *)

val oracle_k : t -> int
val oracle_entries : t -> int
(** Stored oracle entries — the snapshot's table space. *)

val graph : t -> Graphlib.Graph.t
(** The frozen CSR spanner graph (for audits: BFS ground truth). *)

val pp : Format.formatter -> t -> unit
(** One-line [gen=… edges=… oracle k=… entries=… routing=on/off]. *)

(** {1 Persistence}

    A snapshot file is the spanner edge list plus the build
    parameters; {!load} rebuilds the oracle tables deterministically
    from them (same seed, same tables), so a reloaded snapshot answers
    every query identically to the saved one.  The header carries an
    Adler-32 checksum and byte count of the body, and {!save} writes
    through a temp file renamed into place — a crashed writer never
    leaves a half-written file under the snapshot's name, and a
    truncated or bit-flipped file fails {!load} with a one-line error
    naming what mismatched instead of silently serving a damaged
    spanner. *)

val save : t -> string -> unit
(** Atomic: writes [path ^ ".tmp"], then renames over [path]. *)

val load : ?generation:int -> string -> t
(** [generation] overrides the stored one (a reloaded snapshot being
    republished under a new generation).  @raise Failure on a
    malformed, truncated, or corrupted file — the message is one line,
    prefixed with the path, naming the failed check (missing header
    field, body shorter/longer than declared, checksum mismatch). *)
