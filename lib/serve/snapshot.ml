module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set

type t = {
  generation : int;
  k : int;
  seed : int;
  graph : Graph.t;  (** the spanner, re-indexed as its own CSR graph *)
  oracle : Oracle.Distance_oracle.t;
  routing : Oracle.Compact_routing.t option;
}

let of_graph ?(generation = 0) ?(k = 2) ?(seed = 1) ?(routing = false) g =
  if k < 1 then invalid_arg "Snapshot.of_graph: k must be >= 1";
  {
    generation;
    k;
    seed;
    graph = g;
    oracle = Oracle.Distance_oracle.build ~k ~seed g;
    routing = (if routing then Some (Oracle.Compact_routing.build ~seed g) else None);
  }

let build ?generation ?k ?seed ?routing ?(exclude = []) g spanner =
  let dead = Hashtbl.create (List.length exclude + 1) in
  List.iter (fun e -> Hashtbl.replace dead e ()) exclude;
  (* Collect surviving spanner edges in ascending edge-id order so the
     frozen graph's vertex adjacency (and thus every query structure)
     is deterministic in the input. *)
  let ids = ref [] in
  Edge_set.iter spanner (fun e -> if not (Hashtbl.mem dead e) then ids := e :: !ids);
  let ids = List.sort compare !ids in
  let b = Graph.Builder.create ~n:(Graph.n g) in
  List.iter
    (fun e ->
      let u, v = Graph.edge_endpoints g e in
      Graph.Builder.add_edge b u v)
    ids;
  of_graph ?generation ?k ?seed ?routing (Graph.Builder.build b)

let distance t u v = Oracle.Distance_oracle.query_est t.oracle u v

let route_hops t u v =
  match t.routing with
  | Some r -> Oracle.Compact_routing.route_hops r ~src:u ~dst:v
  | None -> -1

let has_routing t = t.routing <> None
let generation t = t.generation
let n t = Graph.n t.graph
let edges t = Graph.m t.graph
let oracle_k t = t.k
let oracle_entries t = Oracle.Distance_oracle.size t.oracle
let graph t = t.graph

let pp ppf t =
  Format.fprintf ppf "gen=%d edges=%d oracle k=%d entries=%d routing=%s"
    t.generation (edges t) t.k (oracle_entries t)
    (if has_routing t then "on" else "off")

(* Persistence: one header comment with the build parameters plus a
   checksum over the body, then the standard edge-list body.  Io skips
   '#' lines, so the body also reads as a plain graph file.  The
   checksum makes partial writes and bit-rot loud at load time; the
   write itself goes through a temp file + rename so a crashed save
   never leaves a half-written snapshot under the real name. *)

let adler32 s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  (!b lsl 16) lor !a

let save t path =
  let body = Buffer.create 4096 in
  Graphlib.Io.to_buffer t.graph body;
  let body = Buffer.contents body in
  let header =
    Printf.sprintf "#snapshot gen=%d k=%d seed=%d routing=%d sum=0x%08x bytes=%d\n"
      t.generation t.k t.seed
      (if has_routing t then 1 else 0)
      (adler32 body) (String.length body)
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc header;
      output_string oc body;
      close_out oc);
  Sys.rename tmp path

let load ?generation path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header =
        match input_line ic with
        | line -> line
        | exception End_of_file ->
            failwith (Printf.sprintf "%s: empty snapshot file" path)
      in
      let field name =
        let marker = name ^ "=" in
        let ml = String.length marker in
        let rec scan i =
          if i + ml > String.length header then
            failwith
              (Printf.sprintf "%s: snapshot header missing %s" path name)
          else if String.sub header i ml = marker then begin
            let stop = ref (i + ml) in
            while
              !stop < String.length header
              && header.[!stop] <> ' '
            do
              incr stop
            done;
            match int_of_string_opt (String.sub header (i + ml) (!stop - i - ml)) with
            | Some v -> v
            | None ->
                failwith
                  (Printf.sprintf "%s: bad snapshot header field %s" path name)
          end
          else scan (i + 1)
        in
        if String.length header < 9 || String.sub header 0 9 <> "#snapshot" then
          failwith (Printf.sprintf "%s: not a snapshot file" path)
        else scan 9
      in
      let gen = field "gen" and k = field "k" and seed = field "seed" in
      let routing = field "routing" <> 0 in
      let sum = field "sum" and bytes = field "bytes" in
      let body =
        let buf = Buffer.create (bytes + 1) in
        (try
           while true do
             Buffer.add_channel buf ic 4096
           done
         with End_of_file -> ());
        Buffer.contents buf
      in
      if String.length body < bytes then
        failwith
          (Printf.sprintf "%s: truncated snapshot: %d of %d body bytes" path
             (String.length body) bytes)
      else if String.length body > bytes then
        failwith
          (Printf.sprintf
             "%s: snapshot body longer than declared: %d of %d body bytes"
             path (String.length body) bytes)
      else if adler32 body <> sum then
        failwith
          (Printf.sprintf
             "%s: snapshot checksum mismatch: stored 0x%08x, computed 0x%08x"
             path sum (adler32 body))
      else
        let g = Graphlib.Io.of_string body in
        of_graph
          ~generation:(Option.value ~default:gen generation)
          ~k ~seed ~routing g)
