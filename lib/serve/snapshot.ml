module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set

type t = {
  generation : int;
  k : int;
  seed : int;
  graph : Graph.t;  (** the spanner, re-indexed as its own CSR graph *)
  oracle : Oracle.Distance_oracle.t;
  routing : Oracle.Compact_routing.t option;
}

let of_graph ?(generation = 0) ?(k = 2) ?(seed = 1) ?(routing = false) g =
  if k < 1 then invalid_arg "Snapshot.of_graph: k must be >= 1";
  {
    generation;
    k;
    seed;
    graph = g;
    oracle = Oracle.Distance_oracle.build ~k ~seed g;
    routing = (if routing then Some (Oracle.Compact_routing.build ~seed g) else None);
  }

let build ?generation ?k ?seed ?routing ?(exclude = []) g spanner =
  let dead = Hashtbl.create (List.length exclude + 1) in
  List.iter (fun e -> Hashtbl.replace dead e ()) exclude;
  (* Collect surviving spanner edges in ascending edge-id order so the
     frozen graph's vertex adjacency (and thus every query structure)
     is deterministic in the input. *)
  let ids = ref [] in
  Edge_set.iter spanner (fun e -> if not (Hashtbl.mem dead e) then ids := e :: !ids);
  let ids = List.sort compare !ids in
  let b = Graph.Builder.create ~n:(Graph.n g) in
  List.iter
    (fun e ->
      let u, v = Graph.edge_endpoints g e in
      Graph.Builder.add_edge b u v)
    ids;
  of_graph ?generation ?k ?seed ?routing (Graph.Builder.build b)

let distance t u v = Oracle.Distance_oracle.query_est t.oracle u v

let route_hops t u v =
  match t.routing with
  | Some r -> Oracle.Compact_routing.route_hops r ~src:u ~dst:v
  | None -> -1

let has_routing t = t.routing <> None
let generation t = t.generation
let n t = Graph.n t.graph
let edges t = Graph.m t.graph
let oracle_k t = t.k
let oracle_entries t = Oracle.Distance_oracle.size t.oracle
let graph t = t.graph

let pp ppf t =
  Format.fprintf ppf "gen=%d edges=%d oracle k=%d entries=%d routing=%s"
    t.generation (edges t) t.k (oracle_entries t)
    (if has_routing t then "on" else "off")

(* Persistence: one header comment with the build parameters, then the
   standard edge-list body.  Io skips '#' lines, so the body also reads
   as a plain graph file. *)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "#snapshot gen=%d k=%d seed=%d routing=%d\n"
        t.generation t.k t.seed
        (if has_routing t then 1 else 0);
      Graphlib.Io.to_channel t.graph oc)

let load ?generation path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header =
        match input_line ic with
        | line -> line
        | exception End_of_file ->
            failwith (Printf.sprintf "%s: empty snapshot file" path)
      in
      let field name =
        let marker = name ^ "=" in
        let ml = String.length marker in
        let rec scan i =
          if i + ml > String.length header then
            failwith
              (Printf.sprintf "%s: snapshot header missing %s" path name)
          else if String.sub header i ml = marker then begin
            let stop = ref (i + ml) in
            while
              !stop < String.length header
              && header.[!stop] <> ' '
            do
              incr stop
            done;
            match int_of_string_opt (String.sub header (i + ml) (!stop - i - ml)) with
            | Some v -> v
            | None ->
                failwith
                  (Printf.sprintf "%s: bad snapshot header field %s" path name)
          end
          else scan (i + 1)
        in
        if String.length header < 9 || String.sub header 0 9 <> "#snapshot" then
          failwith (Printf.sprintf "%s: not a snapshot file" path)
        else scan 9
      in
      let gen = field "gen" and k = field "k" and seed = field "seed" in
      let routing = field "routing" <> 0 in
      let g = Graphlib.Io.of_channel ic in
      of_graph
        ~generation:(Option.value ~default:gen generation)
        ~k ~seed ~routing g)
