type t =
  | Const of float
  | Uniform of { lo : float; hi : float }
  | Geometric of float
  | Pareto of { alpha : float; xm : float }
  | Zipf of { n : int; s : float }

let validate = function
  | Const c ->
      if Float.is_nan c then Error "const: value is NaN" else Ok ()
  | Uniform { lo; hi } ->
      if not (lo <= hi) then
        Error (Printf.sprintf "uniform: lo %g > hi %g" lo hi)
      else Ok ()
  | Geometric p ->
      if not (p > 0. && p <= 1.) then
        Error (Printf.sprintf "geometric: p %g not in (0,1]" p)
      else Ok ()
  | Pareto { alpha; xm } ->
      if not (alpha > 0.) then
        Error (Printf.sprintf "pareto: alpha %g not positive" alpha)
      else if not (xm > 0.) then
        Error (Printf.sprintf "pareto: xm %g not positive" xm)
      else Ok ()
  | Zipf { n; s } ->
      if n <= 0 then Error (Printf.sprintf "zipf: n %d not positive" n)
      else if not (s >= 0.) then
        Error (Printf.sprintf "zipf: s %g negative" s)
      else Ok ()

let checked d =
  match validate d with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scenario.Dsl: " ^ msg)

let draw rng d =
  checked d;
  match d with
  | Const c -> c
  | Uniform { lo; hi } -> lo +. Util.Prng.float rng (hi -. lo)
  | Geometric p -> float_of_int (Util.Dist.geometric rng ~p)
  | Pareto { alpha; xm } ->
      (* Inversion of the survival function: x = xm (1-u)^(-1/alpha). *)
      let u = Util.Prng.float rng 1. in
      xm /. ((1. -. u) ** (1. /. alpha))
  | Zipf { n; s } ->
      float_of_int (Util.Dist.sample (Util.Dist.zipf ~n ~s) rng)

let draw_int rng d =
  let x = Float.round (draw rng d) in
  if x <= 0. then 0 else int_of_float x

let mean = function
  | Const c -> c
  | Uniform { lo; hi } -> (lo +. hi) /. 2.
  | Geometric p -> (1. -. p) /. p
  | Pareto { alpha; xm } ->
      if alpha <= 1. then Float.infinity else alpha *. xm /. (alpha -. 1.)
  | Zipf { n; s } ->
      let sampler = Util.Dist.zipf ~n ~s in
      let m = ref 0. in
      for i = 0 to n - 1 do
        m := !m +. (float_of_int i *. Util.Dist.probability sampler i)
      done;
      !m

(* Shortest float literal that parses back to the same double: %g when
   it round-trips, full precision otherwise — spec and plan files must
   be byte-deterministic AND reload to the exact same scenario. *)
let fstr f =
  let s = Printf.sprintf "%g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string = function
  | Const c -> Printf.sprintf "const:%s" (fstr c)
  | Uniform { lo; hi } -> Printf.sprintf "uniform:%s..%s" (fstr lo) (fstr hi)
  | Geometric p -> Printf.sprintf "geometric:%s" (fstr p)
  | Pareto { alpha; xm } ->
      Printf.sprintf "pareto:%s,%s" (fstr alpha) (fstr xm)
  | Zipf { n; s } -> Printf.sprintf "zipf:%d,%s" n (fstr s)

let parse str =
  let fail () =
    Error
      (Printf.sprintf
         "bad distribution %S (want const:C, uniform:LO..HI, geometric:P, \
          pareto:ALPHA,XM, or zipf:N,S)"
         str)
  in
  let num s = float_of_string_opt (String.trim s) in
  match String.index_opt str ':' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub str 0 i in
      let arg = String.sub str (i + 1) (String.length str - i - 1) in
      let built =
        match kind with
        | "const" -> Option.map (fun c -> Const c) (num arg)
        | "uniform" ->
            (* split on the first "..": negative bounds keep their '-'. *)
            let rec dots i =
              if i + 1 >= String.length arg then None
              else if arg.[i] = '.' && arg.[i + 1] = '.' then Some i
              else dots (i + 1)
            in
            Option.bind (dots 0) (fun i ->
                let lo = String.sub arg 0 i in
                let hi = String.sub arg (i + 2) (String.length arg - i - 2) in
                match (num lo, num hi) with
                | Some lo, Some hi -> Some (Uniform { lo; hi })
                | _ -> None)
        | "geometric" -> Option.map (fun p -> Geometric p) (num arg)
        | "pareto" -> (
            match String.split_on_char ',' arg with
            | [ a; x ] -> (
                match (num a, num x) with
                | Some alpha, Some xm -> Some (Pareto { alpha; xm })
                | _ -> None)
            | _ -> None)
        | "zipf" -> (
            match String.split_on_char ',' arg with
            | [ n; s ] -> (
                match (int_of_string_opt (String.trim n), num s) with
                | Some n, Some s -> Some (Zipf { n; s })
                | _ -> None)
            | _ -> None)
        | _ -> None
      in
      match built with
      | None -> fail ()
      | Some d -> (
          match validate d with
          | Ok () -> Ok d
          | Error msg -> Error (Printf.sprintf "bad distribution %S: %s" str msg)))

(* ------------------------------------------------------------------ *)
(* Gilbert–Elliott *)

type ge = {
  p_gb : float;
  p_bg : float;
  loss_good : float;
  loss_bad : float;
}

let ge_validate { p_gb; p_bg; loss_good; loss_bad } =
  let prob name v lo =
    if not (v >= lo && v <= 1.) then
      Error
        (Printf.sprintf "gilbert-elliott: %s %g not in %s" name v
           (if lo > 0. then "(0,1]" else "[0,1]"))
    else Ok ()
  in
  let ( let* ) r f = match r with Error _ as e -> e | Ok () -> f () in
  let* () = prob "p_gb" p_gb Float.min_float in
  let* () = prob "p_bg" p_bg Float.min_float in
  let* () = prob "loss_good" loss_good 0. in
  let* () = prob "loss_bad" loss_bad 0. in
  Ok ()

let ge_stationary_loss g =
  let pi_bad = g.p_gb /. (g.p_gb +. g.p_bg) in
  (pi_bad *. g.loss_bad) +. ((1. -. pi_bad) *. g.loss_good)

let ge_profile rng g ~horizon =
  (match ge_validate g with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scenario.Dsl: " ^ msg));
  if horizon < 1 then
    invalid_arg
      (Printf.sprintf "Scenario.Dsl: gilbert-elliott horizon %d < 1" horizon);
  let segments = ref [] in
  let push round rate =
    match !segments with
    | (_, r) :: _ when r = rate -> ()
    | _ -> segments := (round, rate) :: !segments
  in
  let bad = ref false in
  for round = 0 to horizon - 1 do
    (if !bad then begin
       if Util.Prng.bernoulli rng g.p_bg then bad := false
     end
     else if Util.Prng.bernoulli rng g.p_gb then bad := true);
    push round (if !bad then g.loss_bad else g.loss_good)
  done;
  push horizon 0.;
  List.rev !segments
