type result = {
  plan : Compile.plan;
  evals : int;
  verified : bool;
}

let weight (plan : Compile.plan) =
  let f = plan.Compile.fspec in
  List.length f.Distnet.Fault.crashes
  + List.length f.Distnet.Fault.restarts
  + List.length f.Distnet.Fault.churn
  + List.length f.Distnet.Fault.drop_profile
  + (if f.Distnet.Fault.drop > 0. then 1 else 0)
  + (if f.Distnet.Fault.dup > 0. then 1 else 0)
  + (if f.Distnet.Fault.delay > 0. then 1 else 0)
  + match plan.Compile.workload with Some _ -> 1 | None -> 0

(* ddmin-lite on a list: repeatedly try dropping a contiguous chunk
   (largest chunks first); every successful drop restarts at a chunk
   half the remaining length.  [test] answers "does this smaller list
   still fail?" and is in charge of the eval budget — once the budget
   is dry it answers false and the recursion unwinds. *)
let ddmin test lst =
  let rec go lst chunk =
    let n = List.length lst in
    if n = 0 || chunk < 1 then lst
    else
      let arr = Array.of_list lst in
      let without i =
        let keep = ref [] in
        Array.iteri
          (fun j x ->
            if j < i * chunk || j >= (i + 1) * chunk then keep := x :: !keep)
          arr;
        List.rev !keep
      in
      let rec scan i =
        if i * chunk >= n then None
        else
          let cand = without i in
          if List.length cand < n && test cand then Some cand else scan (i + 1)
      in
      match scan 0 with
      | Some cand -> go cand (Stdlib.max 1 (List.length cand / 2))
      | None -> if chunk = 1 then lst else go lst (chunk / 2)
  in
  go lst (Stdlib.max 1 (List.length lst / 2))

let shrink ?(max_evals = 200) ~fails plan =
  let evals = ref 0 in
  let try_fails p =
    if !evals >= max_evals then false
    else begin
      incr evals;
      fails p
    end
  in
  let cur = ref plan in
  let commit p = cur := p in
  let with_fspec p fspec = { p with Compile.fspec } in
  (* Workload first: when the failure isn't the serve audit's, the
     reproducer shouldn't carry a workload at all. *)
  (match (!cur).Compile.workload with
  | Some _ ->
      let cand = { !cur with Compile.workload = None; workload_seed = 0 } in
      if try_fails cand then commit cand
  | None -> ());
  (* Event lists, biggest contributors first. *)
  let minimize_list get set =
    let lst = get !cur in
    if lst <> [] then begin
      let test cand = try_fails (set !cur cand) in
      let min_lst = ddmin test lst in
      if List.length min_lst < List.length lst then commit (set !cur min_lst)
    end
  in
  minimize_list
    (fun p -> p.Compile.fspec.Distnet.Fault.churn)
    (fun p churn ->
      with_fspec p { p.Compile.fspec with Distnet.Fault.churn });
  (* Restarts before crashes: dropping a restart demotes a recovery to
     a plain crash-stop, the strictly simpler fault. *)
  minimize_list
    (fun p -> p.Compile.fspec.Distnet.Fault.restarts)
    (fun p restarts ->
      with_fspec p { p.Compile.fspec with Distnet.Fault.restarts });
  (* Dropping a crash must drop its restart too, or the plan stops
     validating (only crashed nodes can restart). *)
  minimize_list
    (fun p -> p.Compile.fspec.Distnet.Fault.crashes)
    (fun p crashes ->
      let restarts =
        List.filter
          (fun (v, _) -> List.mem_assoc v crashes)
          p.Compile.fspec.Distnet.Fault.restarts
      in
      with_fspec p { p.Compile.fspec with Distnet.Fault.crashes; restarts });
  minimize_list
    (fun p -> p.Compile.fspec.Distnet.Fault.drop_profile)
    (fun p drop_profile ->
      with_fspec p { p.Compile.fspec with Distnet.Fault.drop_profile });
  (* Rates: zero if possible, else halve while the failure holds. *)
  let shrink_rate get set =
    if get !cur > 0. then begin
      let zero = set !cur 0. in
      if try_fails zero then commit zero
      else
        let rec halve () =
          let v = get !cur in
          if v > 0.001 && !evals < max_evals then begin
            let cand = set !cur (v /. 2.) in
            if try_fails cand then begin
              commit cand;
              halve ()
            end
          end
        in
        halve ()
    end
  in
  shrink_rate
    (fun p -> p.Compile.fspec.Distnet.Fault.drop)
    (fun p drop -> with_fspec p { p.Compile.fspec with Distnet.Fault.drop });
  shrink_rate
    (fun p -> p.Compile.fspec.Distnet.Fault.dup)
    (fun p dup -> with_fspec p { p.Compile.fspec with Distnet.Fault.dup });
  shrink_rate
    (fun p -> p.Compile.fspec.Distnet.Fault.delay)
    (fun p delay -> with_fspec p { p.Compile.fspec with Distnet.Fault.delay });
  (* Final verification is unconditional: even if the eval budget ran
     dry mid-pass, the plan we hand back is re-checked. *)
  incr evals;
  let verified = fails !cur in
  { plan = !cur; evals = !evals; verified }
