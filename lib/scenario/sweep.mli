(** The resilience sweep: sample a scenario family, run every sample
    through build + certify + (optionally) serve, and aggregate one
    report.

    Each sample becomes a {!Compile.plan}, is run through
    {!Spanner.Skeleton_dist.build} over the plan's fault plan, and is
    judged:

    - a run that gets {b stuck}, exceeds the plan's {b round budget},
      fails {b certification} (subset/forest/contribution/stretch,
      per-component under churn), or fails the {b serve audit} of its
      workload is a FAIL carrying the reason;
    - otherwise the run lands on the repair ladder
      ([intact]/[patched]/[degraded]/[partitioned]) — all four rungs
      are survivals, counted separately because they cost different
      amounts of size and service.

    Runs are deterministic, so a FAIL is exactly reproducible from its
    plan; the sweep driver hands failing plans to {!Shrink}. *)

(** Why a run failed. *)
type failure =
  | Stuck_phase of string  (** {!Spanner.Skeleton_dist.Stuck} *)
  | Over_budget of { rounds : int; budget : int }
  | Cert_failed of string  (** first failing certification check *)
  | Serve_failed of { sampled : int; failures : int }
      (** workload answers outside the oracle bound *)
  | Crashed of string  (** unexpected exception *)

val failure_tag : failure -> string
(** Stable short label ([stuck], [over-budget], [certify:NAME],
    [serve-audit], [error]) — the attribution key in metrics and
    JSON. *)

type outcome = Certified of Spanner.Skeleton_dist.repair_outcome | Failed of failure

type report = {
  plan : Compile.plan;
  outcome : outcome;
  rounds : int;
  messages : int;
  words : int;
  spanner_edges : int;  (** [0] when the build never finished *)
  max_stretch : float;  (** worst sampled stretch; [0.] if unchecked *)
  stretch_bound : float;
  crashed : int;  (** nodes crash-stopped by the plan *)
  rejoined : int;  (** nodes that restarted and were reintegrated *)
  retransmissions : int;
  dead_letters : int;
}

val run_plan : ?metrics:Obs.Metrics.t -> Compile.plan -> report
(** One sample, end to end.  Never raises: every exception becomes a
    [Failed] outcome.  [metrics] flows into certification
    ([certify_checks]); the sweep-level counters below are the
    caller's ({!run}'s) business. *)

type aggregate = {
  scenario : string;
  samples : int;
  intact : int;
  patched : int;
  degraded : int;
  partitioned : int;
  failures : report list;  (** FAILed samples, in sample order *)
  worst_rounds : int;
  worst_words : int;
  worst_size : int;
  worst_stretch : float;
  stretch_bound : float;
}

val failed : aggregate -> int

val run :
  ?metrics:Obs.Metrics.t ->
  ?on_report:(report -> unit) ->
  Spec.t ->
  samples:int ->
  aggregate
(** Compile and run samples [0 .. samples-1].  [on_report] fires after
    each sample (progress display).  With an enabled [metrics]
    registry the sweep records one [sweep_runs] counter per
    (scenario, outcome) and, per failing run, a
    [sweep_fail_ingredients] counter per active fault ingredient
    ([iid-loss], [bursty-loss], [dup], [delay], [crash], [churn],
    [budget]) — the per-distribution attribution of failures. *)

val pp : Format.formatter -> aggregate -> unit
(** Deterministic multi-line summary (no timings). *)

val to_json : aggregate -> string
(** One [{"kind":"sweep",...}] JSON line, failures inlined with their
    reasons. *)
