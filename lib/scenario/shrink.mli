(** Delta-debugging for failing plans: reduce a FAIL to the smallest
    plan that still fails, so the reproducer a sweep hands back is
    readable rather than a hundred-event fault storm.

    The shrinker is generic over the failure predicate [fails] — the
    sweep passes "running this plan yields the same class of FAIL" —
    and shrinks along every axis a plan has:

    - {b events} — crash entries, churn events, and bursty-loss
      profile segments are minimized ddmin-style (drop contiguous
      chunks, halve the chunk size on failure to make progress);
    - {b rates} — each of drop/dup/delay is zeroed if possible,
      otherwise repeatedly halved while the failure persists;
    - {b workload} — dropped entirely when the failure isn't its
      fault.

    The plan's round budget is never shrunk: it is the failure's
    definition, not its cause.  All candidate evaluations are counted
    and capped, and the final plan is re-verified, so a caller can
    trust [verified] even when the eval budget ran dry. *)

type result = {
  plan : Compile.plan;  (** the minimized plan *)
  evals : int;  (** candidate runs spent (including verification) *)
  verified : bool;  (** the minimized plan still fails *)
}

val weight : Compile.plan -> int
(** Shrink-progress measure: events + profile segments + active rates
    + workload presence.  Monotonically non-increasing over a shrink. *)

val shrink :
  ?max_evals:int -> fails:(Compile.plan -> bool) -> Compile.plan -> result
(** [max_evals] defaults to 200.  [fails] must be deterministic (plans
    are). *)
