module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set

type failure =
  | Stuck_phase of string
  | Over_budget of { rounds : int; budget : int }
  | Cert_failed of string
  | Serve_failed of { sampled : int; failures : int }
  | Crashed of string

let failure_tag = function
  | Stuck_phase _ -> "stuck"
  | Over_budget _ -> "over-budget"
  | Cert_failed check -> "certify:" ^ check
  | Serve_failed _ -> "serve-audit"
  | Crashed _ -> "error"

let pp_failure ppf = function
  | Stuck_phase phase -> Fmt.pf ppf "stuck in %s phase" phase
  | Over_budget { rounds; budget } ->
      Fmt.pf ppf "over budget: %d rounds > %d" rounds budget
  | Cert_failed check -> Fmt.pf ppf "certification failed: %s" check
  | Serve_failed { sampled; failures } ->
      Fmt.pf ppf "serve audit failed: %d/%d answers out of bound" failures
        sampled
  | Crashed msg -> Fmt.pf ppf "error: %s" msg

type outcome = Certified of Spanner.Skeleton_dist.repair_outcome | Failed of failure

type report = {
  plan : Compile.plan;
  outcome : outcome;
  rounds : int;
  messages : int;
  words : int;
  spanner_edges : int;
  max_stretch : float;
  stretch_bound : float;
  crashed : int;
  rejoined : int;
  retransmissions : int;
  dead_letters : int;
}

let empty_report plan failure =
  {
    plan;
    outcome = Failed failure;
    rounds = 0;
    messages = 0;
    words = 0;
    spanner_edges = 0;
    max_stretch = 0.;
    stretch_bound = 0.;
    crashed = 0;
    rejoined = 0;
    retransmissions = 0;
    dead_letters = 0;
  }

let run_plan ?(metrics = Obs.Metrics.disabled) plan =
  match Compile.graph_of plan with
  | exception e -> empty_report plan (Crashed (Printexc.to_string e))
  | g -> (
      match Compile.faults ~graph:g plan with
      | exception Invalid_argument msg -> empty_report plan (Crashed msg)
      | faults -> (
          match
            Spanner.Skeleton_dist.build ~faults ~seed:plan.Compile.graph_seed g
          with
          | exception Spanner.Skeleton_dist.Stuck { phase; stats; _ } ->
              {
                (empty_report plan (Stuck_phase phase)) with
                rounds = stats.Distnet.Sim.rounds;
                messages = stats.Distnet.Sim.messages;
                words = stats.Distnet.Sim.words;
              }
          | exception e -> empty_report plan (Crashed (Printexc.to_string e))
          | r -> (
              let stats = r.Spanner.Skeleton_dist.stats in
              let rc = r.Spanner.Skeleton_dist.recovery in
              (* The repair pass runs under churn or restarts; either
                 way the surviving graph may be partitioned, so the
                 audit needs a source per component. *)
              let repaired =
                Distnet.Fault.has_churn faults
                || Distnet.Fault.has_restarts faults
              in
              let down = Array.make (Stdlib.max 1 (Graph.m g)) false in
              List.iter
                (fun e -> down.(e) <- true)
                r.Spanner.Skeleton_dist.dead_edges;
              match
                Spanner.Certify.run
                  ~down_edge:(fun e -> repaired && down.(e))
                  ~per_component:repaired ~metrics
                  ~plan:r.Spanner.Skeleton_dist.plan
                  ~witness:r.Spanner.Skeleton_dist.witness g
                  r.Spanner.Skeleton_dist.spanner
              with
              | exception e -> empty_report plan (Crashed (Printexc.to_string e))
              | verdict ->
                  let base =
                    {
                      plan;
                      outcome =
                        Certified
                          r.Spanner.Skeleton_dist.repair
                            .Spanner.Skeleton_dist.outcome;
                      rounds = stats.Distnet.Sim.rounds;
                      messages = stats.Distnet.Sim.messages;
                      words = stats.Distnet.Sim.words;
                      spanner_edges =
                        Edge_set.cardinal r.Spanner.Skeleton_dist.spanner;
                      max_stretch = verdict.Spanner.Certify.max_stretch;
                      stretch_bound = verdict.Spanner.Certify.stretch_bound;
                      crashed = rc.Spanner.Skeleton_dist.crashed;
                      rejoined = verdict.Spanner.Certify.rejoined;
                      retransmissions =
                        rc.Spanner.Skeleton_dist.retransmissions;
                      dead_letters = rc.Spanner.Skeleton_dist.dead_letters;
                    }
                  in
                  if not (Spanner.Certify.ok verdict) then
                    let first =
                      List.find
                        (fun c -> not c.Spanner.Certify.ok)
                        verdict.Spanner.Certify.checks
                    in
                    { base with outcome = Failed (Cert_failed first.Spanner.Certify.name) }
                  else
                    let over_budget =
                      match plan.Compile.budget_rounds with
                      | Some budget when stats.Distnet.Sim.rounds > budget ->
                          Some
                            (Over_budget
                               { rounds = stats.Distnet.Sim.rounds; budget })
                      | _ -> None
                    in
                    (match over_budget with
                    | Some f -> { base with outcome = Failed f }
                    | None -> (
                        match plan.Compile.workload with
                        | None -> base
                        | Some w -> (
                            match
                              let snapshot =
                                Serve.Snapshot.build
                                  ~routing:(w.Serve.Workload.route_frac > 0.)
                                  ~exclude:r.Spanner.Skeleton_dist.dead_edges g
                                  r.Spanner.Skeleton_dist.spanner
                              in
                              let queries =
                                Serve.Workload.generate
                                  ~seed:plan.Compile.workload_seed
                                  ~n:(Graph.n g) w
                              in
                              Serve.Server.audit snapshot queries
                            with
                            | exception e ->
                                {
                                  base with
                                  outcome =
                                    Failed (Crashed (Printexc.to_string e));
                                }
                            | audit ->
                                if Serve.Server.audit_ok audit then base
                                else
                                  {
                                    base with
                                    outcome =
                                      Failed
                                        (Serve_failed
                                           {
                                             sampled =
                                               audit.Serve.Server.sampled;
                                             failures =
                                               audit.Serve.Server.failures;
                                           });
                                  }))))))

(* ------------------------------------------------------------------ *)
(* Aggregation *)

type aggregate = {
  scenario : string;
  samples : int;
  intact : int;
  patched : int;
  degraded : int;
  partitioned : int;
  failures : report list;
  worst_rounds : int;
  worst_words : int;
  worst_size : int;
  worst_stretch : float;
  stretch_bound : float;
}

let failed a = List.length a.failures

(* The fault ingredients a plan actually carries — the attribution
   axis for failures. *)
let ingredients (plan : Compile.plan) =
  let f = plan.Compile.fspec in
  List.filter_map
    (fun (active, tag) -> if active then Some tag else None)
    [
      (f.Distnet.Fault.drop > 0., "iid-loss");
      (f.Distnet.Fault.drop_profile <> [], "bursty-loss");
      (f.Distnet.Fault.dup > 0., "dup");
      (f.Distnet.Fault.delay > 0., "delay");
      (f.Distnet.Fault.crashes <> [], "crash");
      (f.Distnet.Fault.restarts <> [], "restart");
      (f.Distnet.Fault.churn <> [], "churn");
      (plan.Compile.budget_rounds <> None, "budget");
    ]

let run ?(metrics = Obs.Metrics.disabled) ?on_report spec ~samples =
  let acc =
    ref
      {
        scenario = spec.Spec.name;
        samples;
        intact = 0;
        patched = 0;
        degraded = 0;
        partitioned = 0;
        failures = [];
        worst_rounds = 0;
        worst_words = 0;
        worst_size = 0;
        worst_stretch = 0.;
        stretch_bound = 0.;
      }
  in
  for sample = 0 to samples - 1 do
    let plan = Compile.compile spec ~sample in
    let r = run_plan ~metrics plan in
    let a = !acc in
    let a =
      {
        a with
        worst_rounds = Stdlib.max a.worst_rounds r.rounds;
        worst_words = Stdlib.max a.worst_words r.words;
        worst_size = Stdlib.max a.worst_size r.spanner_edges;
        worst_stretch = Float.max a.worst_stretch r.max_stretch;
        stretch_bound = Float.max a.stretch_bound r.stretch_bound;
      }
    in
    let tag, a =
      match r.outcome with
      | Certified Spanner.Skeleton_dist.Intact ->
          ("intact", { a with intact = a.intact + 1 })
      | Certified Spanner.Skeleton_dist.Patched ->
          ("patched", { a with patched = a.patched + 1 })
      | Certified Spanner.Skeleton_dist.Degraded ->
          ("degraded", { a with degraded = a.degraded + 1 })
      | Certified (Spanner.Skeleton_dist.Partitioned _) ->
          ("partitioned", { a with partitioned = a.partitioned + 1 })
      | Failed f ->
          List.iter
            (fun ingredient ->
              Obs.Metrics.incr
                (Obs.Metrics.counter metrics
                   ~labels:
                     [ ("scenario", spec.Spec.name); ("ingredient", ingredient) ]
                   "sweep_fail_ingredients"))
            (ingredients plan);
          (failure_tag f, { a with failures = r :: a.failures })
    in
    Obs.Metrics.incr
      (Obs.Metrics.counter metrics
         ~labels:[ ("scenario", spec.Spec.name); ("outcome", tag) ]
         "sweep_runs");
    acc := a;
    match on_report with None -> () | Some f -> f r
  done;
  { !acc with failures = List.rev (!acc).failures }

let pp ppf a =
  Fmt.pf ppf
    "@[<v>scenario %s: %d samples: %d intact, %d patched, %d degraded, %d \
     partitioned, %d FAIL@,\
     worst: %d rounds, %d words, %d spanner edges, stretch %.2f (bound %.2f)@]"
    a.scenario a.samples a.intact a.patched a.degraded a.partitioned (failed a)
    a.worst_rounds a.worst_words a.worst_size a.worst_stretch a.stretch_bound;
  List.iter
    (fun r ->
      match r.outcome with
      | Failed f ->
          Fmt.pf ppf "@,  sample %d: FAIL, %a" r.plan.Compile.sample pp_failure
            f
      | Certified _ -> ())
    a.failures

let to_json a =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       {|{"kind":"sweep","scenario":"%s","samples":%d,"intact":%d,"patched":%d,"degraded":%d,"partitioned":%d,"failed":%d|}
       a.scenario a.samples a.intact a.patched a.degraded a.partitioned
       (failed a));
  Buffer.add_string b
    (Printf.sprintf
       {|,"worst_rounds":%d,"worst_words":%d,"worst_size":%d,"worst_stretch":%g,"stretch_bound":%g|}
       a.worst_rounds a.worst_words a.worst_size a.worst_stretch
       a.stretch_bound);
  if a.failures <> [] then begin
    Buffer.add_string b {|,"failures":[|};
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_char b ',';
        let reason =
          match r.outcome with Failed f -> failure_tag f | Certified _ -> "?"
        in
        Buffer.add_string b
          (Printf.sprintf {|{"sample":%d,"reason":"%s","rounds":%d}|}
             r.plan.Compile.sample reason r.rounds))
      a.failures;
    Buffer.add_char b ']'
  end;
  Buffer.add_char b '}';
  Buffer.contents b
