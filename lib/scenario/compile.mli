(** Sampling a scenario family into one concrete, replayable plan.

    [compile spec ~sample] draws every probabilistic ingredient of the
    spec — storm seeds and contagion, link-flap schedule, bursty-loss
    segments — from a PRNG derived from [(spec.graph_seed, sample)]
    alone, producing a {!plan}: a fully explicit
    {!Distnet.Fault.spec} plus the graph parameters, fault seed, and
    workload needed to re-run it.  The same spec and sample always
    compile to the same plan, byte for byte ({!to_string} is
    canonical), which is what makes a shrunk failing plan a durable
    reproducer: the plan file, not the scenario, is the artifact a
    bug report carries. *)

type plan = {
  scenario : string;  (** the spec this was sampled from *)
  sample : int;
  kind : string;
  n : int;
  p : float;
  graph_seed : int;  (** concrete per-sample seed *)
  fault_seed : int;  (** seeds the engine's per-message decisions *)
  fspec : Distnet.Fault.spec;
  budget_rounds : int option;
  workload : Serve.Workload.spec option;
  workload_seed : int;
}

val graph_of : plan -> Graphlib.Graph.t
(** Regenerate the plan's graph (same generator dispatch as the CLI's
    [--kind]).  @raise Failure on an unknown kind. *)

val compile : Spec.t -> sample:int -> plan
(** Sample number [sample] of the family.  Graph-dependent draws
    (storm contagion, which link flaps) regenerate the graph
    internally.  @raise Invalid_argument on a spec {!Spec.validate}
    rejects. *)

val faults : graph:Graphlib.Graph.t -> plan -> Distnet.Fault.t
(** The plan's engine-ready fault plan — [Fault.make] on the plan's
    spec and seed, validated against the graph. *)

(** {1 Plan files}

    Line-oriented like scenario specs ([#plan v1] header); one fault
    ingredient per line, crash and churn events one per line so a
    shrinker's diff is a line diff. *)

val to_string : plan -> string
(** Canonical: [parse (to_string p) = Ok p], same bytes for the same
    plan. *)

val parse : string -> (plan, string) result
val load : string -> (plan, string) result
val save : plan -> string -> unit
