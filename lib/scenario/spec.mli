(** Declarative resilience scenarios: what a sweep samples.

    A spec names a {e family} of runs — a graph family plus
    probabilistic fault ingredients, each described by a {!Dsl}
    distribution.  Sampling the family ({!Compile.compile}) with a
    sample index yields one concrete, fully deterministic fault plan;
    the spec itself is plain text ({!parse}/{!to_string} round-trip
    byte-for-byte), so scenarios live in files, diffs, and CI
    configuration rather than code.

    Ingredients:

    - {b loss} — either i.i.d. per-message loss or a bursty
      Gilbert–Elliott channel (compiled to a
      {!Distnet.Fault.spec.drop_profile});
    - {b storm} — a correlated crash storm: seed crashes strike
      uniformly, then spread to graph neighbors with a contagion
      probability, modeling a regional outage rather than independent
      node failures.  With a [down] distribution the storm is
      crash-{e recovery}: every crashed node draws a downtime and
      restarts that many rounds after its crash, re-entering with a
      fresh incarnation (see {!Distnet.Fault});
    - {b churn} — link flaps with a heavy-tailed inter-arrival gap
      and a Zipf skew toward high-degree links (the links that carry
      the most traffic fail the most), each flap healing after a drawn
      downtime;
    - {b budget} — a round budget that turns slowness into failure: a
      run exceeding it is a FAIL the sweep must shrink;
    - {b workload} — a {!Serve.Workload} spec: after a certified
      build, the spanner is frozen into a snapshot and the workload's
      sampled answers audited against ground truth. *)

type loss =
  | No_loss
  | Iid of float  (** per-message loss probability *)
  | Bursty of { ge : Dsl.ge; horizon : int }
      (** Gilbert–Elliott channel simulated for [horizon] rounds *)

type storm = {
  frac : float;  (** per-node seed-crash probability *)
  spread : float;  (** contagion probability per live neighbor *)
  round_lo : int;  (** seed crashes land uniformly in this window... *)
  round_hi : int;  (** ...spread crashes strike shortly after *)
  down : Dsl.t option;
      (** crash-recovery: rounds a crashed node stays down before
          restarting (clamped to [>= 1]); [None] = crash-stop *)
}

type churn = {
  events : Dsl.t;  (** number of link flaps *)
  gap : Dsl.t;  (** inter-arrival rounds between flaps *)
  skew : float;  (** Zipf exponent over degree-ranked links *)
  down_for : Dsl.t;  (** rounds a flapped link stays down *)
}

type t = {
  name : string;
  kind : string;  (** graph family, as the CLI's --kind *)
  n : int;
  p : float;  (** G(n,p) density (ignored by non-gnp kinds) *)
  graph_seed : int;  (** base seed; sample [k] uses [graph_seed + k] *)
  loss : loss;
  dup : float;
  delay : float;
  max_delay : int;
  storm : storm option;
  churn : churn option;
  budget_rounds : int option;
  workload : Serve.Workload.spec option;
}

val default : t
(** [gnp n=64 p=0.12 seed=11], every ingredient off — the neutral
    base specs are built from. *)

val validate : t -> (unit, string) result
(** Checks every rate, window, and distribution; the error names the
    offending field. *)

(** {1 Text form}

    Line-oriented: a [#scenario v1] header, then one ingredient per
    line ([name], [graph], [loss], [dup], [delay], [storm], [churn],
    [budget], [workload]).  Blank lines and [#] comments are
    ignored. *)

val to_string : t -> string
(** Canonical serialization; [parse (to_string s) = Ok s]. *)

val parse : string -> (t, string) result
(** Parse and {!validate}; errors cite the 1-based line number. *)

val load : string -> (t, string) result
(** Read a spec file. *)

val save : t -> string -> unit

(** {1 Built-in scenario families}

    The four sweep staples plus a deliberately failing one. *)

val builtins : (string * t) list
(** [crash-storm], [bursty-loss], [churn-heavy], [mixed],
    [restart-storm] (a crash-recovery storm under loss: every crashed
    node restarts after a drawn downtime) — and [tight-budget], whose
    round budget is set below what its churn costs, so every sample
    FAILs over-budget and exercises the shrinker end to end. *)

val builtin : string -> t option
