module Graph = Graphlib.Graph
module Gen = Graphlib.Gen

type plan = {
  scenario : string;
  sample : int;
  kind : string;
  n : int;
  p : float;
  graph_seed : int;
  fault_seed : int;
  fspec : Distnet.Fault.spec;
  budget_rounds : int option;
  workload : Serve.Workload.spec option;
  workload_seed : int;
}

(* Same generator dispatch as the CLI's --kind, minus --input: a plan
   must be reproducible from its own lines alone. *)
let generate ~kind ~n ~p ~seed =
  let rng = Util.Prng.create ~seed in
  match kind with
  | "gnp" -> Gen.connected_gnp rng ~n ~p
  | "gnp-raw" -> Gen.gnp rng ~n ~p
  | "torus" ->
      let side = int_of_float (Float.round (sqrt (float_of_int n))) in
      Gen.torus ~width:side ~height:side
  | "king" ->
      let side = int_of_float (Float.round (sqrt (float_of_int n))) in
      Gen.king_torus ~width:side ~height:side
  | "hypercube" ->
      let dims = int_of_float (Float.round (Util.Tower.log2 (float_of_int n))) in
      Gen.hypercube ~dims
  | "pa" -> Gen.ensure_connected rng (Gen.preferential_attachment rng ~n ~k:3)
  | "path" -> Gen.path n
  | "cycle" -> Gen.cycle n
  | other -> failwith (Printf.sprintf "unknown graph kind %s" other)

let graph_of plan =
  generate ~kind:plan.kind ~n:plan.n ~p:plan.p ~seed:plan.graph_seed

let faults ~graph plan =
  Distnet.Fault.make ~seed:plan.fault_seed ~graph plan.fspec

(* ------------------------------------------------------------------ *)
(* Sampling *)

let storm_crashes rng g (st : Spec.storm) =
  let n = Graph.n g in
  let crash_round = Array.make n (-1) in
  let crashed = ref 0 in
  (* Never let the contagion eat the whole network: a resilience
     scenario is about surviving a storm, not about an empty graph. *)
  let cap = Stdlib.max 1 (n / 2) in
  let q = Queue.create () in
  let mark v r =
    if crash_round.(v) < 0 && !crashed < cap then begin
      crash_round.(v) <- r;
      incr crashed;
      Queue.add v q
    end
  in
  for v = 0 to n - 1 do
    if Util.Prng.bernoulli rng st.Spec.frac then
      mark v
        (st.Spec.round_lo
        + Util.Prng.int rng (st.Spec.round_hi - st.Spec.round_lo + 1))
  done;
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    List.iter
      (fun w ->
        if crash_round.(w) < 0 && Util.Prng.bernoulli rng st.Spec.spread then
          mark w
            (Stdlib.min st.Spec.round_hi (crash_round.(v) + 1 + Util.Prng.int rng 3)))
      (Graph.neighbors g v)
  done;
  let out = ref [] in
  for v = n - 1 downto 0 do
    if crash_round.(v) >= 0 then out := (v, crash_round.(v)) :: !out
  done;
  !out

let churn_events rng g (c : Spec.churn) =
  let m = Graph.m g in
  if m = 0 then []
  else begin
    (* Rank links by endpoint-degree sum, heaviest first (stable by
       id): the Zipf skew then aims flaps at the busiest links. *)
    let ranked = Array.init m (fun e -> e) in
    let weight e =
      let u, v = Graph.edge_endpoints g e in
      Graph.degree g u + Graph.degree g v
    in
    Array.sort
      (fun a b ->
        match compare (weight b) (weight a) with 0 -> compare a b | c -> c)
      ranked;
    let sampler = Util.Dist.zipf ~n:m ~s:c.Spec.skew in
    let busy_until = Array.make m (-1) in
    let count = Dsl.draw_int rng c.Spec.events in
    let t = ref 0 in
    let events = ref [] in
    for _ = 1 to count do
      t := !t + Stdlib.max 1 (Dsl.draw_int rng c.Spec.gap);
      (* A link already down at [t] would double-fault; re-draw a few
         times, then let this flap fizzle. *)
      let rec pick tries =
        if tries = 0 then None
        else
          let e = ranked.(Util.Dist.sample sampler rng) in
          if busy_until.(e) >= !t then pick (tries - 1) else Some e
      in
      match pick 8 with
      | None -> ()
      | Some e ->
          let dur = Stdlib.max 1 (Dsl.draw_int rng c.Spec.down_for) in
          busy_until.(e) <- !t + dur;
          let u, v = Graph.edge_endpoints g e in
          events :=
            Distnet.Fault.Edge_up { round = !t + dur; u; v }
            :: Distnet.Fault.Edge_down { round = !t; u; v }
            :: !events
    done;
    List.rev !events
  end

let compile (spec : Spec.t) ~sample =
  (match Spec.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scenario.Compile: " ^ msg));
  if sample < 0 then
    invalid_arg (Printf.sprintf "Scenario.Compile: sample %d negative" sample);
  let graph_seed = spec.Spec.graph_seed + sample in
  let g = generate ~kind:spec.Spec.kind ~n:spec.Spec.n ~p:spec.Spec.p ~seed:graph_seed in
  let rng = Util.Prng.create ~seed:((graph_seed * 1_000_003) + (7919 * sample) + 5) in
  let fault_seed = Util.Prng.int rng 1_000_000_000 in
  let drop, drop_profile =
    match spec.Spec.loss with
    | Spec.No_loss -> (0., [])
    | Spec.Iid r -> (r, [])
    | Spec.Bursty { ge; horizon } -> (0., Dsl.ge_profile rng ge ~horizon)
  in
  let crashes, restarts =
    match spec.Spec.storm with
    | None -> ([], [])
    | Some st ->
        let crashes = storm_crashes rng g st in
        (* Crash-recovery: each crashed node draws its downtime right
           after the crash draw, keeping the stream layout of
           crash-stop specs untouched (no [down] = no extra draws). *)
        let restarts =
          match st.Spec.down with
          | None -> []
          | Some dist ->
              List.map
                (fun (v, r) -> (v, r + Stdlib.max 1 (Dsl.draw_int rng dist)))
                crashes
        in
        (crashes, restarts)
  in
  let churn =
    match spec.Spec.churn with
    | None -> []
    | Some c -> churn_events rng g c
  in
  let workload_seed =
    match spec.Spec.workload with
    | None -> 0
    | Some _ -> Util.Prng.int rng 1_000_000_000
  in
  {
    scenario = spec.Spec.name;
    sample;
    kind = spec.Spec.kind;
    n = spec.Spec.n;
    p = spec.Spec.p;
    graph_seed;
    fault_seed;
    fspec =
      {
        Distnet.Fault.drop;
        dup = spec.Spec.dup;
        delay = spec.Spec.delay;
        max_delay = spec.Spec.max_delay;
        crashes;
        restarts;
        churn;
        drop_profile;
      };
    budget_rounds = spec.Spec.budget_rounds;
    workload = spec.Spec.workload;
    workload_seed;
  }

(* ------------------------------------------------------------------ *)
(* Plan files *)

let fstr = Dsl.fstr

let to_string plan =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "#plan v1";
  line "scenario %s" plan.scenario;
  line "sample %d" plan.sample;
  line "graph kind=%s n=%d p=%s seed=%d" plan.kind plan.n (fstr plan.p)
    plan.graph_seed;
  line "fault_seed %d" plan.fault_seed;
  let f = plan.fspec in
  if f.Distnet.Fault.drop > 0. then line "drop %s" (fstr f.Distnet.Fault.drop);
  if f.Distnet.Fault.dup > 0. then line "dup %s" (fstr f.Distnet.Fault.dup);
  if f.Distnet.Fault.delay > 0. then
    line "delay p=%s max=%d" (fstr f.Distnet.Fault.delay)
      f.Distnet.Fault.max_delay;
  (match f.Distnet.Fault.drop_profile with
  | [] -> ()
  | segments ->
      line "profile %s"
        (String.concat " "
           (List.map
              (fun (r, rate) -> Printf.sprintf "%d:%s" r (fstr rate))
              segments)));
  List.iter
    (fun (v, r) -> line "crash %d@%d" v r)
    f.Distnet.Fault.crashes;
  List.iter
    (fun (v, r) -> line "restart %d@%d" v r)
    f.Distnet.Fault.restarts;
  List.iter
    (fun ev ->
      match ev with
      | Distnet.Fault.Edge_down { round; u; v } -> line "down %d-%d@%d" u v round
      | Distnet.Fault.Edge_up { round; u; v } -> line "up %d-%d@%d" u v round
      | Distnet.Fault.Partition _ | Distnet.Fault.Join _ ->
          invalid_arg
            "Scenario.Compile.to_string: plan files carry only edge churn")
    f.Distnet.Fault.churn;
  (match plan.budget_rounds with
  | None -> ()
  | Some r -> line "budget rounds=%d" r);
  (match plan.workload with
  | None -> ()
  | Some w ->
      let zipf =
        match w.Serve.Workload.zipf with
        | None -> ""
        | Some z -> Printf.sprintf " zipf=%s" (fstr z)
      in
      line "workload queries=%d%s route=%s seed=%d" w.Serve.Workload.queries
        zipf
        (fstr w.Serve.Workload.route_frac)
        plan.workload_seed);
  Buffer.contents b

let parse text =
  let err line msg = Error (Printf.sprintf "plan file line %d: %s" line msg) in
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let plan =
    ref
      {
        scenario = "?";
        sample = 0;
        kind = "gnp";
        n = 0;
        p = 0.;
        graph_seed = 0;
        fault_seed = 0;
        fspec = { Distnet.Fault.default_spec with max_delay = 3 };
        budget_rounds = None;
        workload = None;
        workload_seed = 0;
      }
  in
  let crashes = ref [] in
  let restarts = ref [] in
  let churn = ref [] in
  let seen_graph = ref false in
  let at_round what s =
    (* "V@R" or "U-V@R" *)
    match String.split_on_char '@' s with
    | [ head; r ] -> (
        match int_of_string_opt r with
        | None -> Error (Printf.sprintf "bad %s %S" what s)
        | Some round -> Ok (head, round))
    | _ -> Error (Printf.sprintf "bad %s %S (want ...@ROUND)" what s)
  in
  let edge head =
    match String.split_on_char '-' head with
    | [ u; v ] -> (
        match (int_of_string_opt u, int_of_string_opt v) with
        | Some u, Some v -> Ok (u, v)
        | _ -> Error (Printf.sprintf "bad edge %S" head))
    | _ -> Error (Printf.sprintf "bad edge %S (want U-V)" head)
  in
  let kvs tokens =
    List.map
      (fun tok ->
        match String.index_opt tok '=' with
        | None -> (tok, "")
        | Some i ->
            ( String.sub tok 0 i,
              String.sub tok (i + 1) (String.length tok - i - 1) ))
      tokens
  in
  let result =
    List.fold_left
      (fun (lineno, acc) raw ->
        let next r = (lineno + 1, r) in
        match acc with
        | Error _ -> next acc
        | Ok () -> (
            let l = String.trim raw in
            if l = "" || l.[0] = '#' then next acc
            else
              let tokens =
                String.split_on_char ' ' l |> List.filter (fun t -> t <> "")
              in
              match tokens with
              | [] -> next acc
              | key :: rest -> (
                  let kv = kvs rest in
                  let str k = List.assoc_opt k kv in
                  let fld k parse_v =
                    match str k with
                    | None -> Error (Printf.sprintf "missing %s=" k)
                    | Some v -> (
                        match parse_v v with
                        | Some x -> Ok x
                        | None -> Error (Printf.sprintf "bad %s=%S" k v))
                  in
                  let set f = plan := f !plan in
                  let r =
                    match (key, rest) with
                    | "scenario", [ name ] ->
                        set (fun p -> { p with scenario = name });
                        Ok ()
                    | "sample", [ k ] -> (
                        match int_of_string_opt k with
                        | Some sample ->
                            set (fun p -> { p with sample });
                            Ok ()
                        | None -> Error (Printf.sprintf "bad sample %S" k))
                    | "graph", _ ->
                        let* kind = fld "kind" Option.some in
                        let* n = fld "n" int_of_string_opt in
                        let* p =
                          match str "p" with
                          | None -> Ok 0.
                          | Some _ -> fld "p" float_of_string_opt
                        in
                        let* graph_seed = fld "seed" int_of_string_opt in
                        seen_graph := true;
                        set (fun pl -> { pl with kind; n; p; graph_seed });
                        Ok ()
                    | "fault_seed", [ s ] -> (
                        match int_of_string_opt s with
                        | Some fault_seed ->
                            set (fun p -> { p with fault_seed });
                            Ok ()
                        | None -> Error (Printf.sprintf "bad fault_seed %S" s))
                    | "drop", [ v ] -> (
                        match float_of_string_opt v with
                        | Some d ->
                            set (fun p ->
                                { p with fspec = { p.fspec with drop = d } });
                            Ok ()
                        | None -> Error (Printf.sprintf "bad drop %S" v))
                    | "dup", [ v ] -> (
                        match float_of_string_opt v with
                        | Some d ->
                            set (fun p ->
                                { p with fspec = { p.fspec with dup = d } });
                            Ok ()
                        | None -> Error (Printf.sprintf "bad dup %S" v))
                    | "delay", _ ->
                        let* d = fld "p" float_of_string_opt in
                        let* max_delay =
                          match str "max" with
                          | None -> Ok 3
                          | Some _ -> fld "max" int_of_string_opt
                        in
                        set (fun p ->
                            {
                              p with
                              fspec = { p.fspec with delay = d; max_delay };
                            });
                        Ok ()
                    | "profile", segs ->
                        let* segments =
                          List.fold_left
                            (fun acc seg ->
                              let* acc = acc in
                              match String.split_on_char ':' seg with
                              | [ r; rate ] -> (
                                  match
                                    ( int_of_string_opt r,
                                      float_of_string_opt rate )
                                  with
                                  | Some r, Some rate -> Ok ((r, rate) :: acc)
                                  | _ ->
                                      Error
                                        (Printf.sprintf
                                           "bad profile segment %S" seg))
                              | _ ->
                                  Error
                                    (Printf.sprintf "bad profile segment %S"
                                       seg))
                            (Ok []) segs
                        in
                        set (fun p ->
                            {
                              p with
                              fspec =
                                {
                                  p.fspec with
                                  drop_profile = List.rev segments;
                                };
                            });
                        Ok ()
                    | "crash", [ s ] ->
                        let* v, round = at_round "crash" s in
                        let* v =
                          match int_of_string_opt v with
                          | Some v -> Ok v
                          | None -> Error (Printf.sprintf "bad crash %S" s)
                        in
                        crashes := (v, round) :: !crashes;
                        Ok ()
                    | "restart", [ s ] ->
                        let* v, round = at_round "restart" s in
                        let* v =
                          match int_of_string_opt v with
                          | Some v -> Ok v
                          | None -> Error (Printf.sprintf "bad restart %S" s)
                        in
                        restarts := (v, round) :: !restarts;
                        Ok ()
                    | "down", [ s ] ->
                        let* head, round = at_round "down" s in
                        let* u, v = edge head in
                        churn :=
                          Distnet.Fault.Edge_down { round; u; v } :: !churn;
                        Ok ()
                    | "up", [ s ] ->
                        let* head, round = at_round "up" s in
                        let* u, v = edge head in
                        churn := Distnet.Fault.Edge_up { round; u; v } :: !churn;
                        Ok ()
                    | "budget", _ ->
                        let* r = fld "rounds" int_of_string_opt in
                        set (fun p -> { p with budget_rounds = Some r });
                        Ok ()
                    | "workload", _ ->
                        let* queries = fld "queries" int_of_string_opt in
                        let* route_frac = fld "route" float_of_string_opt in
                        let* workload_seed = fld "seed" int_of_string_opt in
                        let* zipf =
                          match str "zipf" with
                          | None -> Ok None
                          | Some _ ->
                              let* z = fld "zipf" float_of_string_opt in
                              Ok (Some z)
                        in
                        set (fun p ->
                            {
                              p with
                              workload =
                                Some
                                  { Serve.Workload.queries; zipf; route_frac };
                              workload_seed;
                            });
                        Ok ()
                    | other, _ ->
                        Error (Printf.sprintf "unknown directive %S" other)
                  in
                  match r with Ok () -> next acc | Error m -> next (err lineno m))))
      (1, Ok ())
      (String.split_on_char '\n' text)
    |> snd
  in
  let* () = result in
  let* () =
    if !seen_graph then Ok () else Error "plan file: missing 'graph' line"
  in
  let p = !plan in
  Ok
    {
      p with
      fspec =
        {
          p.fspec with
          crashes = List.rev !crashes;
          restarts = List.rev !restarts;
          churn = List.rev !churn;
        };
    }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let save plan path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string plan))
