type loss =
  | No_loss
  | Iid of float
  | Bursty of { ge : Dsl.ge; horizon : int }

type storm = {
  frac : float;
  spread : float;
  round_lo : int;
  round_hi : int;
  down : Dsl.t option;
}

type churn = {
  events : Dsl.t;
  gap : Dsl.t;
  skew : float;
  down_for : Dsl.t;
}

type t = {
  name : string;
  kind : string;
  n : int;
  p : float;
  graph_seed : int;
  loss : loss;
  dup : float;
  delay : float;
  max_delay : int;
  storm : storm option;
  churn : churn option;
  budget_rounds : int option;
  workload : Serve.Workload.spec option;
}

let default =
  {
    name = "default";
    kind = "gnp";
    n = 64;
    p = 0.12;
    graph_seed = 11;
    loss = No_loss;
    dup = 0.;
    delay = 0.;
    max_delay = 3;
    storm = None;
    churn = None;
    budget_rounds = None;
    workload = None;
  }

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let rate field v =
  if v >= 0. && v <= 1. then Ok ()
  else Error (Printf.sprintf "%s %g not in [0,1]" field v)

let dist field d =
  match Dsl.validate d with
  | Ok () -> Ok ()
  | Error msg -> Error (Printf.sprintf "%s: %s" field msg)

let validate s =
  let* () =
    if s.name = "" || String.contains s.name ' ' then
      Error (Printf.sprintf "name %S empty or contains spaces" s.name)
    else Ok ()
  in
  let* () =
    if s.n < 2 then Error (Printf.sprintf "graph n %d < 2" s.n) else Ok ()
  in
  let* () = rate "graph p" s.p in
  let* () =
    match s.loss with
    | No_loss -> Ok ()
    | Iid r -> rate "loss rate" r
    | Bursty { ge; horizon } ->
        let* () =
          if horizon < 1 then
            Error (Printf.sprintf "loss horizon %d < 1" horizon)
          else Ok ()
        in
        Dsl.ge_validate ge
  in
  let* () = rate "dup" s.dup in
  let* () = rate "delay" s.delay in
  let* () =
    if s.max_delay < 1 then
      Error (Printf.sprintf "max_delay %d < 1" s.max_delay)
    else Ok ()
  in
  let* () =
    match s.storm with
    | None -> Ok ()
    | Some st ->
        let* () = rate "storm frac" st.frac in
        let* () = rate "storm spread" st.spread in
        let* () =
          if st.round_lo < 1 || st.round_hi < st.round_lo then
            Error
              (Printf.sprintf "storm rounds %d..%d not a window within 1.."
                 st.round_lo st.round_hi)
          else Ok ()
        in
        (match st.down with None -> Ok () | Some d -> dist "storm down" d)
  in
  let* () =
    match s.churn with
    | None -> Ok ()
    | Some c ->
        let* () = dist "churn events" c.events in
        let* () = dist "churn gap" c.gap in
        let* () = dist "churn down" c.down_for in
        let* () =
          if c.skew >= 0. then Ok ()
          else Error (Printf.sprintf "churn skew %g negative" c.skew)
        in
        if Dsl.mean c.events > 10_000. then
          Error
            (Printf.sprintf "churn events mean %g unreasonably large"
               (Dsl.mean c.events))
        else Ok ()
  in
  let* () =
    match s.budget_rounds with
    | Some b when b < 1 -> Error (Printf.sprintf "budget rounds %d < 1" b)
    | _ -> Ok ()
  in
  match s.workload with
  | None -> Ok ()
  | Some w ->
      let* () =
        if w.Serve.Workload.queries < 1 then
          Error
            (Printf.sprintf "workload queries %d < 1" w.Serve.Workload.queries)
        else Ok ()
      in
      let* () = rate "workload route" w.Serve.Workload.route_frac in
      (match w.Serve.Workload.zipf with
      | Some z when z < 0. ->
          Error (Printf.sprintf "workload zipf %g negative" z)
      | _ -> Ok ())

(* ------------------------------------------------------------------ *)
(* Text form *)

let fstr = Dsl.fstr

let to_string s =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "#scenario v1";
  line "name %s" s.name;
  line "graph kind=%s n=%d p=%s seed=%d" s.kind s.n (fstr s.p) s.graph_seed;
  (match s.loss with
  | No_loss -> ()
  | Iid r -> line "loss iid rate=%s" (fstr r)
  | Bursty { ge; horizon } ->
      line "loss ge pgb=%s pbg=%s good=%s bad=%s horizon=%d" (fstr ge.Dsl.p_gb)
        (fstr ge.Dsl.p_bg) (fstr ge.Dsl.loss_good) (fstr ge.Dsl.loss_bad)
        horizon);
  if s.dup > 0. then line "dup %s" (fstr s.dup);
  if s.delay > 0. then line "delay p=%s max=%d" (fstr s.delay) s.max_delay;
  (match s.storm with
  | None -> ()
  | Some st ->
      line "storm frac=%s spread=%s rounds=%d..%d%s" (fstr st.frac)
        (fstr st.spread) st.round_lo st.round_hi
        (match st.down with
        | None -> ""
        | Some d -> " down=" ^ Dsl.to_string d));
  (match s.churn with
  | None -> ()
  | Some c ->
      line "churn events=%s gap=%s skew=%s down=%s" (Dsl.to_string c.events)
        (Dsl.to_string c.gap) (fstr c.skew)
        (Dsl.to_string c.down_for));
  (match s.budget_rounds with
  | None -> ()
  | Some r -> line "budget rounds=%d" r);
  (match s.workload with
  | None -> ()
  | Some w ->
      let zipf =
        match w.Serve.Workload.zipf with
        | None -> ""
        | Some z -> Printf.sprintf " zipf=%s" (fstr z)
      in
      line "workload queries=%d%s route=%s" w.Serve.Workload.queries zipf
        (fstr w.Serve.Workload.route_frac));
  Buffer.contents b

(* [k=v] tokens -> assoc list; a bare token maps to itself. *)
let kvs tokens =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | None -> (tok, "")
      | Some i ->
          ( String.sub tok 0 i,
            String.sub tok (i + 1) (String.length tok - i - 1) ))
    tokens

let parse text =
  let err line msg = Error (Printf.sprintf "scenario spec line %d: %s" line msg) in
  let lines = String.split_on_char '\n' text in
  let spec = ref default in
  let seen_name = ref false in
  let result =
    List.fold_left
      (fun (lineno, acc) raw ->
        let next r = (lineno + 1, r) in
        match acc with
        | Error _ -> next acc
        | Ok () -> (
            let l = String.trim raw in
            if l = "" || l.[0] = '#' then next acc
            else
              let tokens =
                String.split_on_char ' ' l
                |> List.filter (fun t -> t <> "")
              in
              match tokens with
              | [] -> next acc
              | key :: rest -> (
                  let kv = kvs rest in
                  let str k = List.assoc_opt k kv in
                  let fld k parse_v =
                    match str k with
                    | None -> Error (Printf.sprintf "missing %s=" k)
                    | Some v -> (
                        match parse_v v with
                        | Some x -> Ok x
                        | None -> Error (Printf.sprintf "bad %s=%S" k v))
                  in
                  let flt k = fld k float_of_string_opt in
                  let int k = fld k int_of_string_opt in
                  let dst k =
                    match str k with
                    | None -> Error (Printf.sprintf "missing %s=" k)
                    | Some v -> Dsl.parse v
                  in
                  let r =
                    match (key, rest) with
                    | "name", [ n ] ->
                        seen_name := true;
                        spec := { !spec with name = n };
                        Ok ()
                    | "name", _ -> Error "name takes exactly one token"
                    | "graph", _ ->
                        let* kind = fld "kind" Option.some in
                        let* n = int "n" in
                        let* p =
                          match str "p" with
                          | None -> Ok (!spec).p
                          | Some _ -> flt "p"
                        in
                        let* graph_seed = int "seed" in
                        spec := { !spec with kind; n; p; graph_seed };
                        Ok ()
                    | "loss", "iid" :: _ ->
                        let* r = flt "rate" in
                        spec := { !spec with loss = Iid r };
                        Ok ()
                    | "loss", "ge" :: _ ->
                        let* p_gb = flt "pgb" in
                        let* p_bg = flt "pbg" in
                        let* loss_good = flt "good" in
                        let* loss_bad = flt "bad" in
                        let* horizon = int "horizon" in
                        spec :=
                          {
                            !spec with
                            loss =
                              Bursty
                                {
                                  ge = { Dsl.p_gb; p_bg; loss_good; loss_bad };
                                  horizon;
                                };
                          };
                        Ok ()
                    | "loss", _ -> Error "loss wants 'iid rate=R' or 'ge ...'"
                    | "dup", [ v ] -> (
                        match float_of_string_opt v with
                        | Some d ->
                            spec := { !spec with dup = d };
                            Ok ()
                        | None -> Error (Printf.sprintf "bad dup %S" v))
                    | "dup", _ -> Error "dup takes one rate"
                    | "delay", _ ->
                        let* p = flt "p" in
                        let* max_delay =
                          match str "max" with
                          | None -> Ok (!spec).max_delay
                          | Some _ -> int "max"
                        in
                        spec := { !spec with delay = p; max_delay };
                        Ok ()
                    | "storm", _ ->
                        let* frac = flt "frac" in
                        let* spread = flt "spread" in
                        let* lo, hi =
                          fld "rounds" (fun v ->
                              match String.split_on_char '.' v with
                              | [ lo; ""; hi ] -> (
                                  match
                                    ( int_of_string_opt lo,
                                      int_of_string_opt hi )
                                  with
                                  | Some lo, Some hi -> Some (lo, hi)
                                  | _ -> None)
                              | _ -> None)
                        in
                        let* down =
                          match str "down" with
                          | None -> Ok None
                          | Some _ ->
                              let* d = dst "down" in
                              Ok (Some d)
                        in
                        spec :=
                          {
                            !spec with
                            storm =
                              Some
                                {
                                  frac;
                                  spread;
                                  round_lo = lo;
                                  round_hi = hi;
                                  down;
                                };
                          };
                        Ok ()
                    | "churn", _ ->
                        let* events = dst "events" in
                        let* gap = dst "gap" in
                        let* skew = flt "skew" in
                        let* down_for = dst "down" in
                        spec :=
                          { !spec with churn = Some { events; gap; skew; down_for } };
                        Ok ()
                    | "budget", _ ->
                        let* r = int "rounds" in
                        spec := { !spec with budget_rounds = Some r };
                        Ok ()
                    | "workload", _ ->
                        let* queries = int "queries" in
                        let* route_frac = flt "route" in
                        let* zipf =
                          match str "zipf" with
                          | None -> Ok None
                          | Some _ ->
                              let* z = flt "zipf" in
                              Ok (Some z)
                        in
                        spec :=
                          {
                            !spec with
                            workload =
                              Some { Serve.Workload.queries; zipf; route_frac };
                          };
                        Ok ()
                    | other, _ ->
                        Error (Printf.sprintf "unknown directive %S" other)
                  in
                  match r with Ok () -> next acc | Error m -> next (err lineno m))))
      (1, Ok ())
      lines
    |> snd
  in
  let* () = result in
  let* () =
    if !seen_name then Ok () else Error "scenario spec: missing 'name' line"
  in
  match validate !spec with
  | Ok () -> Ok !spec
  | Error msg -> Error (Printf.sprintf "scenario spec %s: %s" (!spec).name msg)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let save s path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string s))

(* ------------------------------------------------------------------ *)
(* Built-in families *)

let crash_storm =
  {
    default with
    name = "crash-storm";
    loss = Iid 0.02;
    storm =
      Some
        { frac = 0.06; spread = 0.35; round_lo = 1; round_hi = 30; down = None };
  }

let bursty_loss =
  {
    default with
    name = "bursty-loss";
    loss =
      Bursty
        {
          ge = { Dsl.p_gb = 0.05; p_bg = 0.25; loss_good = 0.01; loss_bad = 0.6 };
          horizon = 400;
        };
    dup = 0.01;
    delay = 0.03;
  }

let churn_heavy =
  {
    default with
    name = "churn-heavy";
    loss = Iid 0.02;
    churn =
      Some
        {
          events = Dsl.Geometric 0.12;
          gap = Dsl.Pareto { alpha = 1.5; xm = 4. };
          skew = 1.2;
          down_for = Dsl.Uniform { lo = 10.; hi = 40. };
        };
  }

let mixed =
  {
    default with
    name = "mixed";
    loss =
      Bursty
        {
          ge = { Dsl.p_gb = 0.04; p_bg = 0.3; loss_good = 0.01; loss_bad = 0.5 };
          horizon = 400;
        };
    dup = 0.01;
    delay = 0.03;
    storm =
      Some
        { frac = 0.04; spread = 0.3; round_lo = 5; round_hi = 35; down = None };
    churn =
      Some
        {
          events = Dsl.Geometric 0.25;
          gap = Dsl.Pareto { alpha = 1.6; xm = 5. };
          skew = 1.0;
          down_for = Dsl.Uniform { lo = 10.; hi = 30. };
        };
    workload = Some { Serve.Workload.queries = 200; zipf = Some 1.1; route_frac = 0.25 };
  }

(* Deliberately under-budgeted: the churn tax pushes every sample past
   the round budget, so the sweep must FAIL each one and shrink it to
   a minimal reproducer.  The budget clears a fault-free build of the
   same graph by a wide margin — shrinking converges on the churn, not
   on the base construction. *)
let tight_budget =
  {
    default with
    name = "tight-budget";
    n = 48;
    p = 0.15;
    graph_seed = 5;
    churn =
      Some
        {
          events = Dsl.Const 6.;
          gap = Dsl.Const 12.;
          skew = 1.0;
          down_for = Dsl.Const 30.;
        };
    budget_rounds = Some 100;
  }

(* Crash-recovery storm: the crash-storm contagion under loss, but
   every crashed node draws a downtime and restarts — the sweep then
   exercises incarnation-safe delivery and rejoin repair on every
   sample. *)
let restart_storm =
  {
    default with
    name = "restart-storm";
    loss = Iid 0.02;
    storm =
      Some
        {
          frac = 0.06;
          spread = 0.35;
          round_lo = 1;
          round_hi = 30;
          down = Some (Dsl.Uniform { lo = 20.; hi = 120. });
        };
  }

let builtins =
  [
    ("crash-storm", crash_storm);
    ("bursty-loss", bursty_loss);
    ("churn-heavy", churn_heavy);
    ("mixed", mixed);
    ("restart-storm", restart_storm);
    ("tight-budget", tight_budget);
  ]

let builtin name = List.assoc_opt name builtins
