(** Named distributions for scenario specs: the vocabulary in which a
    resilience scenario describes {e how much} and {e when} things go
    wrong, each drawn from the caller's seeded {!Util.Prng} stream so
    a scenario sample is a pure function of [(spec, seed)].

    The closed-form draws ([Const], [Uniform], [Geometric], [Pareto])
    cost one PRNG call; [Zipf] freezes a {!Util.Dist.zipf} table per
    draw and is meant for the small compile-time draws scenarios make
    (picking a flapping edge, skewing query popularity), not for hot
    loops.

    Every distribution has a one-token text form — [const:5],
    [uniform:1..40], [geometric:0.25], [pareto:1.5,3], [zipf:100,1.2]
    — used verbatim inside scenario spec files; {!parse} and
    {!to_string} round-trip. *)

type t =
  | Const of float
  | Uniform of { lo : float; hi : float }  (** uniform on [[lo, hi]] *)
  | Geometric of float
      (** failures before first success, [P(X=k) = (1-p)^k p] *)
  | Pareto of { alpha : float; xm : float }
      (** heavy-tailed: [P(X > x) = (xm/x)^alpha] on [x >= xm] — the
          classic model for churn inter-arrival times *)
  | Zipf of { n : int; s : float }
      (** rank [0 .. n-1] with [P(i) ∝ (i+1)^-s] *)

val validate : t -> (unit, string) result
(** [Error msg] names the offending parameter: [Uniform] needs
    [lo <= hi], [Geometric] [0 < p <= 1], [Pareto] positive [alpha]
    and [xm], [Zipf] [n > 0] and [s >= 0]. *)

val draw : Util.Prng.t -> t -> float
(** One sample.  @raise Invalid_argument on a spec {!validate}
    rejects. *)

val draw_int : Util.Prng.t -> t -> int
(** {!draw} rounded to the nearest integer, clamped at [0]. *)

val mean : t -> float
(** Analytic mean ([infinity] for a Pareto with [alpha <= 1]) — used
    by spec validation to sanity-bound event counts. *)

val fstr : float -> string
(** Shortest float literal that reparses to the same double: ["%g"]
    when that round-trips, full [%.17g] precision otherwise.  All
    scenario/plan serialization uses this so files are both
    byte-deterministic and exact. *)

val to_string : t -> string
val parse : string -> (t, string) result
(** [parse (to_string d) = Ok d]; [Error] explains the expected
    syntax. *)

(** {1 Bursty loss: the Gilbert–Elliott channel}

    A two-state Markov chain — a Good state losing [loss_good] of
    messages and a Bad state losing [loss_bad] — with per-round
    transition probabilities [p_gb] (Good→Bad) and [p_bg] (Bad→Good).
    Scenarios compile it to a piecewise-constant
    {!Distnet.Fault.spec.drop_profile}, one segment per state
    change, so the engine itself stays memoryless. *)

type ge = {
  p_gb : float;  (** P(Good → Bad) per round, in [(0,1]] *)
  p_bg : float;  (** P(Bad → Good) per round, in [(0,1]] *)
  loss_good : float;  (** loss rate while Good, in [[0,1]] *)
  loss_bad : float;  (** loss rate while Bad, in [[0,1]] *)
}

val ge_validate : ge -> (unit, string) result

val ge_stationary_loss : ge -> float
(** The chain's long-run loss rate:
    [π_bad·loss_bad + (1-π_bad)·loss_good] with
    [π_bad = p_gb / (p_gb + p_bg)]. *)

val ge_profile : Util.Prng.t -> ge -> horizon:int -> (int * float) list
(** Simulate the chain from the Good state for [horizon] rounds and
    emit the loss-rate segments, coalescing consecutive equal rates;
    a final [(horizon, 0.)] segment closes the burst process so rounds
    beyond the modeled horizon are loss-free.  Valid input to
    {!Distnet.Fault.make} as a [drop_profile].
    @raise Invalid_argument on a [ge] {!ge_validate} rejects or
    [horizon < 1]. *)
