let to_channel g oc =
  Printf.fprintf oc "%d %d\n" (Graph.n g) (Graph.m g);
  Graph.iter_edges g (fun _ u v -> Printf.fprintf oc "%d %d\n" u v)

let to_buffer g b =
  Buffer.add_string b (Printf.sprintf "%d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun _ u v ->
      Buffer.add_string b (Printf.sprintf "%d %d\n" u v))

let write g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel g oc)

(* The parser over any line source: skip blanks and '#' comments, read
   the "[n] [m]" header, then m edge lines.  [next_line] raises
   [End_of_file] when the source is dry. *)
let parse next_line =
  let read_line () =
    let rec next () =
      let line = String.trim (next_line ()) in
      if line = "" || line.[0] = '#' then next () else line
    in
    next ()
  in
  let header = read_line () in
  match String.split_on_char ' ' header with
  | [ ns; ms ] ->
      let n = int_of_string ns and m = int_of_string ms in
      let b = Graph.Builder.create ~n in
      for _ = 1 to m do
        match String.split_on_char ' ' (read_line ()) with
        | [ us; vs ] ->
            Graph.Builder.add_edge b (int_of_string us) (int_of_string vs)
        | _ -> failwith "Io.read: malformed edge line"
      done;
      Graph.Builder.build b
  | _ -> failwith "Io.read: malformed header"

let of_channel ic = parse (fun () -> input_line ic)

let of_string s =
  let pos = ref 0 in
  let next_line () =
    if !pos >= String.length s then raise End_of_file
    else
      let stop =
        match String.index_from_opt s !pos '\n' with
        | Some i -> i
        | None -> String.length s
      in
      let line = String.sub s !pos (stop - !pos) in
      pos := stop + 1;
      line
  in
  parse next_line

let read path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)
