type t = { g : Graph.t; bits : Util.Bitset.t }

let create g = { g; bits = Util.Bitset.create (Graph.m g) }
let host t = t.g
let add t e = Util.Bitset.set t.bits e
let remove t e = Util.Bitset.clear t.bits e
let mem t e = Util.Bitset.mem t.bits e
let cardinal t = Util.Bitset.cardinal t.bits
let add_path t edges = List.iter (add t) edges

let add_all t other =
  if Graph.m other.g <> Graph.m t.g then
    invalid_arg "Edge_set.add_all: different host graphs";
  Util.Bitset.iter other.bits (fun e -> add t e)

let iter t f = Util.Bitset.iter t.bits f

let to_graph t =
  let b = Graph.Builder.create ~n:(Graph.n t.g) in
  iter t (fun e ->
      let u, v = Graph.edge_endpoints t.g e in
      Graph.Builder.add_edge b u v);
  Graph.Builder.build b

let union a b =
  let t = create a.g in
  add_all t a;
  add_all t b;
  t

let of_list g edges =
  let t = create g in
  List.iter (add t) edges;
  t

let copy t =
  let fresh = create t.g in
  add_all fresh t;
  fresh
