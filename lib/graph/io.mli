(** Plain-text edge-list serialization.

    Format: first line "[n] [m]", then one "[u] [v]" line per edge.
    Lines starting with '#' are comments. *)

val write : Graph.t -> string -> unit
(** [write g path]. *)

val read : string -> Graph.t
(** @raise Failure on malformed input. *)

val to_channel : Graph.t -> out_channel -> unit
val of_channel : in_channel -> Graph.t

val to_buffer : Graph.t -> Buffer.t -> unit
(** Same bytes as {!to_channel} — for callers that need the
    serialization in memory (e.g. to checksum it before writing). *)

val of_string : string -> Graph.t
(** Parse an in-memory edge list (same format and failures as
    {!of_channel}). *)
