(** Sets of edge identifiers of a host graph — the representation of a
    spanner [S ⊆ E].  *)

type t

val create : Graph.t -> t
(** Empty set over the host graph's edges. *)

val host : t -> Graph.t
val add : t -> int -> unit

val remove : t -> int -> unit
(** Remove an edge id; no-op if absent.  Used by the incremental
    repair path when a spanner edge dies under churn. *)

val mem : t -> int -> bool
val cardinal : t -> int

val add_path : t -> int list -> unit
(** Add every edge of a path (list of edge ids). *)

val add_all : t -> t -> unit
(** [add_all t other] unions [other] (over the same host) into [t]. *)

val iter : t -> (int -> unit) -> unit
val to_graph : t -> Graph.t
(** The spanning subgraph [(V, S)] as a standalone graph on the same
    vertex set.  Edge identifiers are renumbered. *)

val union : t -> t -> t
(** Fresh union of two sets over the same host graph. *)

val of_list : Graph.t -> int list -> t
val copy : t -> t
