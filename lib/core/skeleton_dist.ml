module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set
module Sim = Distnet.Sim
module Fault = Distnet.Fault
module Trace = Distnet.Trace
module Reliable = Distnet.Reliable
module Recovery = Distnet.Recovery

type recovery_report = {
  crashed : int;
  orphaned : int;
  recovered_edges : int;
  checkpoints : int;
  retransmissions : int;
  dead_letters : int;
}

type repair_outcome = Intact | Patched | Degraded | Partitioned of int

type repair_report = {
  outcome : repair_outcome;
  dead_spanner_edges : int;
  rehooked : int;
  replaced_edges : int;
  keep_all_fallbacks : int;
  repair_rounds : int;
  components : int;
  rejoined : int;  (** restarted nodes reintegrated by this pass *)
}

let no_repair =
  {
    outcome = Intact;
    dead_spanner_edges = 0;
    rehooked = 0;
    replaced_edges = 0;
    keep_all_fallbacks = 0;
    repair_rounds = 0;
    components = 1;
    rejoined = 0;
  }

let pp_outcome ppf = function
  | Intact -> Format.pp_print_string ppf "intact"
  | Patched -> Format.pp_print_string ppf "patched"
  | Degraded -> Format.pp_print_string ppf "degraded"
  | Partitioned k -> Format.fprintf ppf "partitioned(%d)" k

exception
  Stuck of {
    phase : string;
    waiting_on : (int * int) list;
    stats : Sim.stats;
  }

let () =
  Printexc.register_printer (function
    | Stuck { phase; waiting_on; stats } ->
        Some
          (Format.asprintf "Skeleton_dist.Stuck(phase %s; waiting on %s; %a)"
             phase
             (String.concat ", "
                (List.map
                   (fun (v, w) -> Printf.sprintf "%d->%d" v w)
                   waiting_on))
             Sim.pp_stats stats)
    | _ -> None)

type result = {
  spanner : Edge_set.t;
  plan : Plan.t;
  aborts : int;
  stats : Sim.stats;
  witness : Certify.witness;
  recovery : recovery_report;
  repair : repair_report;
  dead_edges : int list;
}

type msg =
  | Exchange of { cl : int; fu : int }
  | Report_none
  | Report of { edge : int; target_cl : int; target_fu : int }
  | On_path of { edge : int; new_cl : int; new_fu : int }
  | Off_path of { new_cl : int; new_fu : int }
  | P2_register
  | P2_unregister
  | Die_start
  | Die_up of { entries : (int * int) list; finished : bool }
  | Final_down of { edges : int list; finished : bool }
  | Abort
  | Dead
  | Probe  (** recovery: "are you there?" — the transport ack is the answer *)
  | Orphan  (** recovery: "our subtree lost its root path; abort with me" *)
  (* incremental repair (topology churn): a detached fragment re-enters
     the Expand state machine on its bounded neighborhood *)
  | Repair_id of { root : int }  (** repair exchange: my fragment root (-1 = attached) *)
  | Repair_ack of { root : int }  (** answer to [Repair_id] *)
  | Repair_report of { edge : int }  (** repair convergecast candidate *)
  | Repair_none
  | Repair_on_path  (** repair wave: your merged best won, continue the flip *)
  | Repair_keep_all  (** repair fallback: fragment degrades to keep-all *)

let words = function
  | Exchange _ -> 2
  | Report_none -> 1
  | Report _ -> 3
  | On_path _ -> 3
  | Off_path _ -> 2
  | P2_register | P2_unregister -> 1
  | Die_start -> 1
  | Die_up { entries; _ } -> (2 * List.length entries) + 1
  | Final_down { edges; _ } -> List.length edges + 1
  | Abort -> 1
  | Dead -> 1
  | Probe -> 1
  | Orphan -> 1
  | Repair_id _ | Repair_ack _ -> 1
  | Repair_report _ -> 2
  | Repair_none -> 1
  | Repair_on_path -> 1
  | Repair_keep_all -> 1

(* Mutable per-node state.  Everything a node reads during the protocol
   is either local, carried by a received message, or part of the
   globally-known schedule — the driver below only sequences phases.
   The [*_waiting] tables are each phase's explicit completion state:
   a phase ends when every live node's table for it has drained, which
   (unlike running the network to quiescence) still works when a
   message can be lost or its sender can crash mid-phase. *)
type node = {
  id : int;
  mutable alive : bool;
  mutable cl_center : int;
  mutable cl_fu : int;
  mutable p1 : int;  (** parent towards the contracted vertex's center *)
  mutable p1_children : int list;
  mutable p2 : int;  (** parent towards the cluster's center *)
  mutable p2_children : int list;
  nb_dead : (int, unit) Hashtbl.t;
  nb_edge : (int, int) Hashtbl.t;  (** neighbor -> incident edge id *)
  (* per-call scratch *)
  mutable nb_cl : (int, int * int) Hashtbl.t;  (** neighbor -> (cl, fu) *)
  mutable ex_waiting : (int, unit) Hashtbl.t;  (** exchange: peers awaited *)
  mutable deciding : bool;
  mutable cv_waiting : (int, unit) Hashtbl.t;  (** convergecast: children awaited *)
  mutable report_sent : bool;
  mutable best : (int * int * int) option;  (** edge, target cl, target fu *)
  mutable best_peer : int;  (** crossing neighbor of my own candidate *)
  mutable best_from : int;  (** child that supplied [best]; -1 = self *)
  mutable wave_done : bool;
  mutable is_dying : bool;
  mutable die_queue : (int * int) Queue.t;
  mutable die_sent : (int, int) Hashtbl.t;  (** cl -> best edge forwarded *)
  mutable die_waiting : (int, unit) Hashtbl.t;  (** dying: children awaited *)
  mutable die_done_sent : bool;
  mutable fin_queue : int Queue.t;
  mutable fin_src_done : bool;
  mutable fin_done_sent : bool;
  mutable fin_aborting : bool;
  mutable orphaned : bool;  (** crash recovery fired: exiting this call *)
  (* incremental repair scratch (only touched by the repair pass) *)
  mutable rp_root : int;  (** my fragment's repair root; -1 = attached *)
  mutable rp_parent : int;  (** parent within the repair forest *)
  mutable rp_children : int list;
  mutable rp_nb : (int, int) Hashtbl.t;  (** neighbor -> fragment root *)
  mutable rp_waiting : (int, unit) Hashtbl.t;  (** repair exchange: acks awaited *)
  mutable rp_cv_waiting : (int, unit) Hashtbl.t;  (** repair convergecast *)
  mutable rp_report_sent : bool;
  mutable rp_best : (int * int) option;  (** edge, crossing peer (-1 from child) *)
  mutable rp_best_from : int;  (** child that supplied [rp_best]; -1 = self *)
}

let fresh_node id =
  {
    id;
    alive = true;
    cl_center = id;
    cl_fu = 0;
    p1 = -1;
    p1_children = [];
    p2 = -1;
    p2_children = [];
    nb_dead = Hashtbl.create 4;
    nb_edge = Hashtbl.create 4;
    nb_cl = Hashtbl.create 4;
    ex_waiting = Hashtbl.create 4;
    deciding = false;
    cv_waiting = Hashtbl.create 4;
    report_sent = false;
    best = None;
    best_peer = -1;
    best_from = -1;
    wave_done = false;
    is_dying = false;
    die_queue = Queue.create ();
    die_sent = Hashtbl.create 4;
    die_waiting = Hashtbl.create 4;
    die_done_sent = false;
    fin_queue = Queue.create ();
    fin_src_done = false;
    fin_done_sent = false;
    fin_aborting = false;
    orphaned = false;
    rp_root = -1;
    rp_parent = -1;
    rp_children = [];
    rp_nb = Hashtbl.create 1;
    rp_waiting = Hashtbl.create 1;
    rp_cv_waiting = Hashtbl.create 1;
    rp_report_sent = false;
    rp_best = None;
    rp_best_from = -1;
  }

let build_with ?(faults = Fault.none) ?tracer ?(metrics = Obs.Metrics.disabled)
    ?(spans = Obs.Span.disabled) ?phase_round_limit ~plan ~sampling g =
  let n = Graph.n g in
  let nodes = Array.init n fresh_node in
  Array.iter
    (fun nd -> nd.cl_fu <- Sampling.first_unsampled sampling nd.id)
    nodes;
  Array.iter
    (fun nd ->
      Graph.iter_neighbors g nd.id (fun w e -> Hashtbl.replace nd.nb_edge w e))
    nodes;
  let use_arq = not (Fault.is_none faults) in
  let spanner = Edge_set.create g in
  let aborts = ref 0 in
  let budget = plan.Plan.word_budget in
  let die_cap = Stdlib.max 1 (budget / 2) in
  let fin_cap = Stdlib.max 1 budget in

  (* Witness labels (Certify) and recovery bookkeeping. *)
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let contributed = Array.make n 0 in
  let calls_alive = Array.make n 0 in
  let kept_all = Array.make n false in
  (* Orphans detach their hook label (see [do_orphan]); the repair
     pass uses this to root them so the wave can reattach the
     fragment instead of leaving it on the keep-all rung. *)
  let orphan_detached = Array.make n false in
  let det = Recovery.Detector.create ~n in
  let ckpt = Recovery.Checkpoints.create ~n () in
  let orphans = ref 0 in
  let recovered_edges = ref 0 in
  let suspicion_events = ref 0 in

  (* The engine is created inside the chosen transport (its wire type
     differs: bare protocol messages vs ARQ frames), so round and
     statistics access go through these cells. *)
  let round_now = ref (fun () -> 0) in
  let stats_now =
    ref (fun () ->
        { Sim.rounds = 0; messages = 0; words = 0; max_message_words = 0 })
  in
  (* [crashed_now v]: is the fault plan holding [v] down at the current
     round?  This is the ENGINE's view — false again once a scheduled
     restart lands, so a reborn node's transport pumps and its probes
     ack.  Used only to freeze a down node's execution (the engine
     already silences its wire) — never to inform a live node's
     decisions, which see crashes exclusively through the failure
     detector.  [proto_dead v] is the PROTOCOL's view: a node that ever
     crashed stays out of the call machinery forever (its in-call state
     died with it); its reborn incarnation re-enters through the repair
     pass only.  Without restarts the two coincide, so crash-stop runs
     are untouched. *)
  let crash_round = Array.make n max_int in
  List.iter
    (fun (r, v) -> if r < crash_round.(v) then crash_round.(v) <- r)
    (Fault.crash_schedule faults);
  let crashed_now v = Fault.crashed faults ~round:(!round_now ()) v in
  let proto_dead v = !round_now () >= crash_round.(v) in
  let is_live nd = nd.alive && (not nd.orphaned) && not (proto_dead nd.id) in
  let restarting = Fault.has_restarts faults in
  (* Churn-aware views of the topology (identity without churn): is an
     edge currently up, and is a vertex present — joined and not
     crash-stopped?  The repair pass decides exclusively through these,
     never through protocol liveness (which ends false for everyone
     once the last call's kill has run). *)
  let edge_up_now = ref (fun (_ : int) -> true) in
  let present_now v =
    (not (crashed_now v)) && Fault.joined faults ~round:(!round_now ()) v
  in
  let repair_mode = ref false in
  let rp_keep_alls = ref 0 and rp_replaced = ref 0 in
  let repair_ref = ref no_repair in
  let dead_edges_ref = ref [] in

  (* Transport indirection: the one protocol below runs either straight
     on the engine (loss-free fast path, bit-compatible with the
     original driver) or through a per-link Reliable ARQ wrapper. *)
  let emit_ref = ref (fun ~src:_ ~dst:_ (_ : msg) -> ()) in
  let pump_ref = ref (fun () -> ()) in
  let idle_ref = ref (fun () -> true) in
  let link_idle_ref = ref (fun _ _ -> true) in
  let emit ~src ~dst m = !emit_ref ~src ~dst m in

  (* Per-phase attribution: every phase's cost is the delta of the
     engine statistics since the previous mark, so the phase rows of a
     metrics snapshot sum exactly to the final [Sim.stats].  Peak
     message length is not delta-able, so it comes from the engine's
     reset-on-read window ({!Sim.take_window_max}), wired up by the
     transport below. *)
  let window_now = ref (fun () -> 0) in
  let last_stats =
    ref { Sim.rounds = 0; messages = 0; words = 0; max_message_words = 0 }
  in
  let scope = Obs.Scope.of_registry metrics in
  (* Phase spans are recorded at exactly the same boundaries as the
     stats deltas, covering (prev rounds, current rounds]; the call
     span currently open (if any) becomes their parent, so the span
     log nests call -> phase just like the paper's recursion. *)
  let current_call_span = ref (-1) in
  let record_phase name =
    (* The profiler marks the same boundary, so its phase rows join the
       metrics phase table by name — even when metrics are off. *)
    Obs.Prof.phase (Obs.Prof.current ()) name;
    let metrics_on = Obs.Metrics.enabled metrics in
    let spans_on = Obs.Span.enabled spans in
    if metrics_on || spans_on then begin
      let s = !stats_now () in
      let prev = !last_stats in
      last_stats := s;
      if spans_on then
        ignore
          (Obs.Span.span spans ~parent:!current_call_span Obs.Span.Phase ~name
             ~start_round:prev.Sim.rounds ~stop_round:s.Sim.rounds);
      if metrics_on then begin
        let sc = Obs.Scope.phase scope name in
        Obs.Metrics.add
          (Obs.Scope.counter sc "phase_rounds")
          (s.Sim.rounds - prev.Sim.rounds);
        Obs.Metrics.add
          (Obs.Scope.counter sc "phase_messages")
          (s.Sim.messages - prev.Sim.messages);
        Obs.Metrics.add
          (Obs.Scope.counter sc "phase_words")
          (s.Sim.words - prev.Sim.words);
        Obs.Metrics.set_max
          (Obs.Scope.gauge sc "phase_max_message_words")
          (!window_now ())
      end
    end
  in

  let keep ~who e =
    if not (Edge_set.mem spanner e) then begin
      Edge_set.add spanner e;
      contributed.(who) <- contributed.(who) + 1;
      if Obs.Metrics.enabled metrics then
        Obs.Metrics.incr
          (Obs.Scope.counter
             (Obs.Scope.cluster scope nodes.(who).cl_center)
             "cluster_edges_kept")
    end
  in

  (* Deferred p2 (un)registrations, flushed in their own phase to keep
     the one-message-per-link-per-round rule easy to respect. *)
  let notifications = ref [] in
  let set_p2 nd target =
    if nd.p2 <> target then begin
      if nd.p2 >= 0 then
        notifications := (nd.id, nd.p2, P2_unregister) :: !notifications;
      if target >= 0 then
        notifications := (nd.id, target, P2_register) :: !notifications;
      nd.p2 <- target;
      parent.(nd.id) <- target;
      parent_edge.(nd.id) <-
        (if target >= 0 then Hashtbl.find nd.nb_edge target else -1)
    end
  in

  (* ---------------- incremental repair helpers ---------------- *)

  (* Repair runs after the protocol's own registration machinery has
     shut down, so hook updates rewrite the witness labels directly —
     no deferred (un)registration traffic. *)
  let rp_set_parent nd target =
    nd.p2 <- target;
    parent.(nd.id) <- target;
    parent_edge.(nd.id) <-
      (if target >= 0 then Hashtbl.find nd.nb_edge target else -1)
  in

  (* Forward the fragment-local minimum up the repair tree once every
     awaited child has reported (or been given up on). *)
  let rp_maybe_forward nd =
    if
      !repair_mode && nd.rp_root >= 0
      && (not nd.rp_report_sent)
      && Hashtbl.length nd.rp_cv_waiting = 0
      && nd.rp_parent >= 0
    then begin
      nd.rp_report_sent <- true;
      match nd.rp_best with
      | None -> emit ~src:nd.id ~dst:nd.rp_parent Repair_none
      | Some (edge, _) ->
          emit ~src:nd.id ~dst:nd.rp_parent (Repair_report { edge })
    end
  in

  (* The repair decision wave: as in [start_wave], an on-path node's own
     merged best IS the fragment winner (min edge id is a total order),
     so the message needs no payload.  The root-to-proposer path flips
     parent direction; the proposer keeps the crossing edge and hooks
     across it. *)
  let rp_start_wave nd =
    match nd.rp_best with
    | None -> ()
    | Some (edge, peer) ->
        if nd.rp_best_from < 0 then begin
          keep ~who:nd.id edge;
          rp_set_parent nd peer
        end
        else begin
          rp_set_parent nd nd.rp_best_from;
          emit ~src:nd.id ~dst:nd.rp_best_from Repair_on_path
        end
  in

  (* Fragment-wide fallback, the paper's abort rule transplanted: every
     member keeps all incident edges that are currently usable.  Size
     degrades; stretch does not. *)
  let rp_do_keep_all nd =
    kept_all.(nd.id) <- true;
    Hashtbl.iter
      (fun w e ->
        if present_now w && !edge_up_now e then keep ~who:nd.id e)
      nd.nb_edge;
    List.iter (fun c -> emit ~src:nd.id ~dst:c Repair_keep_all) nd.rp_children
  in

  (* ---------------- crash recovery ---------------- *)

  (* Orphan abort: this node's path to its cluster root is gone (its
     tree parent crash-stopped, or an ancestor's did and the Orphan
     cascade reached us).  Restore the exchange-boundary checkpoint,
     keep every incident live edge — the paper's abort rule widened to
     intra-cluster edges, because a crash can sever the cluster tree
     itself (DESIGN.md, recovery model) — and leave the algorithm at
     this call's death-notice phase.  Size degrades; stretch does not. *)
  let rec do_orphan nd =
    if nd.alive && not nd.orphaned then begin
      nd.orphaned <- true;
      incr orphans;
      (match Recovery.Checkpoints.restore ckpt nd.id with
      | Some (cl, fu) ->
          nd.cl_center <- cl;
          nd.cl_fu <- fu
      | None -> ());
      (* The hook label is stale the moment the path to the root is
         gone: a concurrent decision wave may already have flipped the
         parent on the far side to point at us, and keeping our old
         upward hook would close a cycle in the witness forest.  Detach
         — the keep-all below preserves connectivity and stretch, and
         the node re-enters as its own fragment root if repair runs. *)
      set_p2 nd (-1);
      orphan_detached.(nd.id) <- true;
      kept_all.(nd.id) <- true;
      Hashtbl.iter
        (fun w e ->
          if not (Hashtbl.mem nd.nb_dead w) then
            if not (Edge_set.mem spanner e) then begin
              Edge_set.add spanner e;
              contributed.(nd.id) <- contributed.(nd.id) + 1;
              incr recovered_edges
            end)
        nd.nb_edge;
      List.iter
        (fun c ->
          if not (Hashtbl.mem nd.nb_dead c) then emit ~src:nd.id ~dst:c Orphan)
        (List.sort_uniq compare (nd.p1_children @ nd.p2_children))
    end

  (* After [cv_waiting] drains (a report arrived, or an awaited child
     was given up on), forward the merged candidate up the tree. *)
  and cv_maybe_forward nd =
    if
      nd.deciding && (not nd.report_sent)
      && (not nd.orphaned)
      && Hashtbl.length nd.cv_waiting = 0
      && nd.p1 >= 0
      && not (Hashtbl.mem nd.nb_dead nd.p1)
    then begin
      nd.report_sent <- true;
      match nd.best with
      | None -> emit ~src:nd.id ~dst:nd.p1 Report_none
      | Some (edge, target_cl, target_fu) ->
          emit ~src:nd.id ~dst:nd.p1 (Report { edge; target_cl; target_fu })
    end

  (* [by] has given up on every retransmission to [w]: in the
     crash-stop model [w] is gone.  Scrub it from [by]'s waiting sets
     and tree links; if it was [by]'s parent, [by] is an orphan. *)
  and on_suspect ~by w =
    incr suspicion_events;
    Recovery.Detector.suspect det w;
    let nd = nodes.(by) in
    Hashtbl.replace nd.nb_dead w ();
    Hashtbl.remove nd.ex_waiting w;
    Hashtbl.remove nd.nb_cl w;
    if Hashtbl.mem nd.cv_waiting w then begin
      Hashtbl.remove nd.cv_waiting w;
      cv_maybe_forward nd
    end;
    Hashtbl.remove nd.die_waiting w;
    nd.p1_children <- List.filter (fun c -> c <> w) nd.p1_children;
    nd.p2_children <- List.filter (fun c -> c <> w) nd.p2_children;
    Hashtbl.remove nd.rp_waiting w;
    if Hashtbl.mem nd.rp_cv_waiting w then begin
      Hashtbl.remove nd.rp_cv_waiting w;
      rp_maybe_forward nd
    end;
    nd.rp_children <- List.filter (fun c -> c <> w) nd.rp_children;
    if nd.alive && (nd.p1 = w || nd.p2 = w) then do_orphan nd
  in

  (* ---------------- message handlers ---------------- *)
  let merge_report nd ~from candidate =
    (match candidate with
    | None -> ()
    | Some (e, cl, fu) -> (
        match nd.best with
        | Some (e', _, _) when e' <= e -> ()
        | _ ->
            nd.best <- Some (e, cl, fu);
            nd.best_from <- from));
    Hashtbl.remove nd.cv_waiting from;
    cv_maybe_forward nd
  in

  let adopt_cluster nd ~cl ~fu =
    nd.cl_center <- cl;
    nd.cl_fu <- fu
  in

  let start_wave nd =
    (* [nd]'s merged best is the contracted vertex's winning candidate;
       push the decision towards the proposer, everyone else off-path. *)
    nd.wave_done <- true;
    match nd.best with
    | None -> assert false
    | Some (edge, new_cl, new_fu) ->
        (* The wave may arrive after the node it would adopt as parent
           (the hook peer, or the reporting child) has been found dead:
           hooking there would wedge the next call's wave behind a
           parent that can never answer.  Fall back to the orphan abort
           — the path to the new cluster root is gone. *)
        let adoptee = if nd.best_from < 0 then nd.best_peer else nd.best_from in
        if Hashtbl.mem nd.nb_dead adoptee then do_orphan nd
        else begin
          adopt_cluster nd ~cl:new_cl ~fu:new_fu;
          if nd.best_from < 0 then begin
            (* I proposed the winning edge: hook onto the sampled cluster. *)
            keep ~who:nd.id edge;
            set_p2 nd nd.best_peer;
            List.iter
              (fun c -> emit ~src:nd.id ~dst:c (Off_path { new_cl; new_fu }))
              nd.p1_children
          end
          else begin
            set_p2 nd nd.best_from;
            List.iter
              (fun c ->
                if c = nd.best_from then
                  emit ~src:nd.id ~dst:c (On_path { edge; new_cl; new_fu })
                else emit ~src:nd.id ~dst:c (Off_path { new_cl; new_fu }))
              nd.p1_children
          end
        end
  in

  (* Enqueue a (cluster, edge) entry unless a no-worse one was already
     forwarded; intermediate dedup is best-effort, the center's merge is
     authoritative. *)
  let die_offer nd (cl, e) =
    match Hashtbl.find_opt nd.die_sent cl with
    | Some e' when e' <= e -> ()
    | _ ->
        Hashtbl.replace nd.die_sent cl e;
        Queue.add (cl, e) nd.die_queue
  in

  (* The center's authoritative per-cluster minimum, rebuilt each call. *)
  let center_best = Array.make n (Hashtbl.create 0) in

  (* Profiling category per message family: handler cost lands in one
     region per protocol mechanism (exchange / convergecast / wave /
     …), nested inside the engine's [sim_deliver] region. *)
  let prof_region_of = function
    | Exchange _ -> "skel_exchange"
    | Report_none | Report _ -> "skel_convergecast"
    | On_path _ | Off_path _ -> "skel_wave"
    | P2_register | P2_unregister -> "skel_notify"
    | Die_start | Die_up _ -> "skel_dying"
    | Final_down _ | Abort -> "skel_final"
    | Dead | Probe | Orphan -> "skel_death"
    | Repair_id _ | Repair_ack _ | Repair_report _ | Repair_none
    | Repair_on_path | Repair_keep_all ->
        "skel_repair"
  in

  let dispatch ~dst ~src m =
    (* Crash-recovery: the first protocol message delivered from a
       reborn incarnation (repair traffic, typically) retracts the
       transport suspicion its predecessor earned by dying — the
       detector learns to unsuspect.  An announced death stays
       announced; the reborn node re-enters through repair regardless. *)
    if
      restarting
      && Recovery.Detector.is_suspected det src
      && Fault.incarnation faults ~round:(!round_now ()) src > 0
    then Recovery.Detector.unsuspect det src;
    let nd = nodes.(dst) in
    let prof = Obs.Prof.current () in
    Obs.Prof.enter prof (prof_region_of m);
    (match m with
    | Exchange { cl; fu } ->
        if nd.alive && not nd.orphaned then begin
          Hashtbl.replace nd.nb_cl src (cl, fu);
          Hashtbl.remove nd.ex_waiting src
        end
    | Report_none ->
        if nd.alive && not nd.orphaned then merge_report nd ~from:src None
    | Report { edge; target_cl; target_fu } ->
        if nd.alive && not nd.orphaned then
          merge_report nd ~from:src (Some (edge, target_cl, target_fu))
    | On_path _ ->
        (* My subtree supplied the winner, so my merged best is the
           edge named in the message; [start_wave] adopts it and pushes
           the decision further down. *)
        if nd.alive && not nd.orphaned then start_wave nd
    | Off_path { new_cl; new_fu } ->
        if nd.alive && not nd.orphaned then begin
          adopt_cluster nd ~cl:new_cl ~fu:new_fu;
          set_p2 nd nd.p1;
          nd.wave_done <- true;
          List.iter
            (fun c -> emit ~src:nd.id ~dst:c (Off_path { new_cl; new_fu }))
            nd.p1_children
        end
    | Die_start ->
        if nd.alive && not nd.orphaned then begin
          nd.is_dying <- true;
          nd.wave_done <- true;
          List.iter (fun c -> emit ~src:nd.id ~dst:c Die_start) nd.p1_children
        end
    | P2_register -> nd.p2_children <- src :: nd.p2_children
    | P2_unregister ->
        nd.p2_children <- List.filter (fun c -> c <> src) nd.p2_children
    | Die_up { entries; finished } ->
        if nd.alive && not nd.orphaned then begin
          if nd.p1 < 0 then
            (* Center: authoritative merge. *)
            List.iter
              (fun (cl, e) ->
                match Hashtbl.find_opt center_best.(nd.id) cl with
                | Some e' when e' <= e -> ()
                | _ -> Hashtbl.replace center_best.(nd.id) cl e)
              entries
          else List.iter (die_offer nd) entries;
          if finished then Hashtbl.remove nd.die_waiting src
        end
    | Final_down { edges; finished } ->
        if nd.alive && not nd.orphaned then begin
          List.iter
            (fun e ->
              let u, v = Graph.edge_endpoints g e in
              if u = nd.id || v = nd.id then keep ~who:nd.id e;
              Queue.add e nd.fin_queue)
            edges;
          if finished then nd.fin_src_done <- true
        end
    | Abort ->
        if nd.alive && not nd.orphaned then begin
          nd.fin_aborting <- true;
          nd.fin_src_done <- true;
          kept_all.(nd.id) <- true;
          (* Keep every incident crossing edge, as the paper's escape
             hatch prescribes. *)
          Hashtbl.iter
            (fun w (cl, _) ->
              if cl <> nd.cl_center then
                keep ~who:nd.id (Hashtbl.find nd.nb_edge w))
            nd.nb_cl
        end
    | Dead ->
        (* Besides marking the link dead, forget the late neighbor as a
           tree child: a contracted vertex that attached to us earlier
           this round may die later in the round, and its stale
           registration would make us wait forever for its report.  A
           notice from our own tree parent means it exited while we
           still depend on it — the orphan-register race — so recover. *)
        Recovery.Detector.note_death det src;
        Hashtbl.replace nd.nb_dead src ();
        Hashtbl.remove nd.ex_waiting src;
        (* Forget its advertised cluster too: a pre-crash Exchange must
           not leave a dead edge looking like a viable hook candidate. *)
        Hashtbl.remove nd.nb_cl src;
        nd.p2_children <- List.filter (fun c -> c <> src) nd.p2_children;
        nd.p1_children <- List.filter (fun c -> c <> src) nd.p1_children;
        if nd.alive && not nd.orphaned then begin
          if Hashtbl.mem nd.cv_waiting src then begin
            Hashtbl.remove nd.cv_waiting src;
            cv_maybe_forward nd
          end;
          Hashtbl.remove nd.die_waiting src;
          if nd.p1 = src || nd.p2 = src then do_orphan nd
        end
    | Probe -> ()  (* the transport-level ack is the whole answer *)
    | Orphan -> if nd.alive && not nd.orphaned then do_orphan nd
    (* Repair messages ignore [alive]: by the time churn repair runs,
       every node has executed the final call's kill.  Presence is the
       engine's business — a message that arrives was deliverable. *)
    | Repair_id { root } ->
        if !repair_mode then begin
          Hashtbl.replace nd.rp_nb src root;
          emit ~src:nd.id ~dst:src (Repair_ack { root = nd.rp_root })
        end
    | Repair_ack { root } ->
        if !repair_mode then begin
          Hashtbl.replace nd.rp_nb src root;
          Hashtbl.remove nd.rp_waiting src
        end
    | Repair_report { edge } ->
        if !repair_mode then begin
          (match nd.rp_best with
          | Some (e', _) when e' <= edge -> ()
          | _ ->
              nd.rp_best <- Some (edge, -1);
              nd.rp_best_from <- src);
          Hashtbl.remove nd.rp_cv_waiting src;
          rp_maybe_forward nd
        end
    | Repair_none ->
        if !repair_mode then begin
          Hashtbl.remove nd.rp_cv_waiting src;
          rp_maybe_forward nd
        end
    | Repair_on_path -> if !repair_mode then rp_start_wave nd
    | Repair_keep_all -> if !repair_mode then rp_do_keep_all nd);
    Obs.Prof.leave prof
  in

  (* ---------------- phase driver ---------------- *)
  let phase_round_limit =
    match phase_round_limit with Some l -> l | None -> 10_000 + (500 * n)
  in
  (* Run one phase to completion.  [tick] runs every iteration (the
     dying/final phases stream batches from it); [probes] names the
     (waiter, awaited) links to poke when the transport drains without
     the phase completing.  Probing either completes the phase (the
     peer was alive and its answer was already in flight), produces a
     suspicion (progress: waiting sets shrink), or changes nothing —
     which is a protocol bug and reported as such. *)
  let run_phase name ~complete ?(tick = fun () -> ()) ~probes () =
    let rounds = ref 0 in
    let last_probe_mark = ref (-1) in
    (* A phase that can make no further progress — round limit hit, or
       the transport drained with every probe already answered — is a
       structured failure: the caller learns which phase wedged and who
       was still being waited on (e.g. peers beyond a never-healing
       partition), instead of an opaque hang. *)
    let stuck () =
      let waiting_on =
        List.sort_uniq compare (probes ())
        |> List.filter (fun (v, w) ->
               w >= 0 && not (Hashtbl.mem nodes.(v).nb_dead w))
      in
      (* A phase with no probe set (notify: a pure transport drain)
         still names the culprits: the ARQ links that never fell idle
         — under a partition, exactly the links crossing the cut. *)
      let waiting_on =
        if waiting_on <> [] then waiting_on
        else begin
          let busy = ref [] in
          for v = n - 1 downto 0 do
            if present_now v then
              Graph.iter_neighbors g v (fun w _ ->
                  if not (!link_idle_ref v w) then busy := (v, w) :: !busy)
          done;
          List.sort_uniq compare !busy
        end
      in
      raise (Stuck { phase = name; waiting_on; stats = !stats_now () })
    in
    while not (complete ()) do
      incr rounds;
      if !rounds > phase_round_limit then stuck ();
      tick ();
      if !idle_ref () then begin
        if !last_probe_mark = !suspicion_events then stuck ();
        last_probe_mark := !suspicion_events;
        let targets =
          List.sort_uniq compare (probes ())
          |> List.filter (fun (v, w) ->
                 w >= 0 && not (Hashtbl.mem nodes.(v).nb_dead w))
        in
        if targets = [] then stuck ();
        List.iter (fun (v, w) -> emit ~src:v ~dst:w Probe) targets
      end
      else !pump_ref ()
    done;
    record_phase name
  in
  let no_probes () = [] in

  let run_call (call : Plan.call) =
    let k = call.Plan.index in
    let spans_on = Obs.Span.enabled spans in
    if spans_on then
      current_call_span :=
        Obs.Span.open_span spans Obs.Span.Call
          ~name:(Printf.sprintf "call-%d" k)
          ~round:(!round_now ());
    Array.iter
      (fun nd -> if is_live nd then calls_alive.(nd.id) <- calls_alive.(nd.id) + 1)
      nodes;
    (* Phase 1: exchange cluster identities over live links. *)
    Array.iter
      (fun nd ->
        if nd.alive then begin
          nd.nb_cl <- Hashtbl.create 8;
          nd.ex_waiting <- Hashtbl.create 8;
          nd.deciding <- false;
          nd.cv_waiting <- Hashtbl.create 4;
          nd.report_sent <- false;
          nd.best <- None;
          nd.best_peer <- -1;
          nd.best_from <- -1;
          nd.wave_done <- false;
          nd.is_dying <- false;
          nd.die_queue <- Queue.create ();
          nd.die_sent <- Hashtbl.create 4;
          nd.die_waiting <- Hashtbl.create 4;
          nd.die_done_sent <- false;
          nd.fin_queue <- Queue.create ();
          nd.fin_src_done <- false;
          nd.fin_done_sent <- false;
          nd.fin_aborting <- false
        end)
      nodes;
    Array.iter
      (fun nd ->
        if is_live nd then
          Hashtbl.iter
            (fun w _ ->
              if not (Hashtbl.mem nd.nb_dead w) then begin
                Hashtbl.replace nd.ex_waiting w ();
                emit ~src:nd.id ~dst:w
                  (Exchange { cl = nd.cl_center; fu = nd.cl_fu })
              end)
            nd.nb_edge)
      nodes;
    run_phase "exchange"
      ~complete:(fun () ->
        Array.for_all
          (fun nd -> (not (is_live nd)) || Hashtbl.length nd.ex_waiting = 0)
          nodes)
      ~probes:(fun () ->
        (* Self-resolving (every awaited peer was also sent to), but a
           probe re-arms the abandonment clock after e.g. a replayed
           suspicion pattern diverges. *)
        Array.to_list nodes
        |> List.concat_map (fun nd ->
               if is_live nd then
                 Hashtbl.fold (fun w () acc -> (nd.id, w) :: acc) nd.ex_waiting []
               else []))
      ();
    (* The exchange boundary is the recovery point: what a node knows
       here (its cluster identity) is consistent cluster-wide, which is
       exactly what the orphan abort must fall back to. *)
    Array.iter
      (fun nd ->
        if is_live nd then
          Recovery.Checkpoints.commit ckpt ~phase:"exchange" nd.id
            (nd.cl_center, nd.cl_fu))
      nodes;
    (* Cluster spans share the stats-delta boundaries: they open at the
       exchange boundary just recorded and close at the wave boundary
       (or, for dying centers, at the final boundary). *)
    let cluster_start = !round_now () in
    (* Phase 2: local candidates + convergecast inside unsampled
       contracted vertices. *)
    Array.iter
      (fun nd ->
        if is_live nd && nd.cl_fu <= k then begin
          nd.deciding <- true;
          Hashtbl.iter
            (fun w (cl, fu) ->
              if cl <> nd.cl_center && fu > k then begin
                let e = Hashtbl.find nd.nb_edge w in
                match nd.best with
                | Some (e', _, _) when e' <= e -> ()
                | _ ->
                    nd.best <- Some (e, cl, fu);
                    nd.best_peer <- w;
                    nd.best_from <- -1
              end)
            nd.nb_cl;
          List.iter
            (fun c -> Hashtbl.replace nd.cv_waiting c ())
            nd.p1_children
        end)
      nodes;
    Array.iter (fun nd -> if is_live nd then cv_maybe_forward nd) nodes;
    run_phase "convergecast"
      ~complete:(fun () ->
        Array.for_all
          (fun nd ->
            (not (is_live nd)) || (not nd.deciding)
            || (Hashtbl.length nd.cv_waiting = 0
               && (nd.p1 < 0 || nd.report_sent
                  || Hashtbl.mem nd.nb_dead nd.p1)))
          nodes)
      ~probes:(fun () ->
        Array.to_list nodes
        |> List.concat_map (fun nd ->
               if is_live nd && nd.deciding then
                 Hashtbl.fold (fun w () acc -> (nd.id, w) :: acc) nd.cv_waiting []
               else []))
      ();
    (* The deciding centers, snapshotted before the wave can rewrite
       their cluster identity (a hooking center adopts the target
       cluster): each becomes one cluster-level span. *)
    let deciding_centers =
      if spans_on then
        Array.fold_left
          (fun acc nd ->
            if is_live nd && nd.deciding && nd.p1 < 0 then
              (nd.id, nd.cl_center) :: acc
            else acc)
          [] nodes
        |> List.rev
      else []
    in
    let cluster_span ~stop (v, cl) =
      ignore
        (Obs.Span.span spans ~parent:!current_call_span ~src:v
           Obs.Span.Cluster
           ~name:(Printf.sprintf "cluster-%d" cl)
           ~start_round:cluster_start ~stop_round:stop)
    in
    (* Phase 3: decision waves from every deciding center. *)
    Array.iter
      (fun nd ->
        if is_live nd && nd.deciding && nd.p1 < 0 then begin
          if Hashtbl.length nd.cv_waiting <> 0 then
            failwith "Skeleton_dist: convergecast incomplete at decision time";
          match nd.best with
          | Some _ -> start_wave nd
          | None ->
              nd.is_dying <- true;
              nd.wave_done <- true;
              List.iter (fun c -> emit ~src:nd.id ~dst:c Die_start) nd.p1_children
        end)
      nodes;
    run_phase "wave"
      ~complete:(fun () ->
        Array.for_all
          (fun nd -> (not (is_live nd)) || (not nd.deciding) || nd.wave_done)
          nodes)
      ~probes:(fun () ->
        Array.to_list nodes
        |> List.filter_map (fun nd ->
               if is_live nd && nd.deciding && (not nd.wave_done) && nd.p1 >= 0
               then Some (nd.id, nd.p1)
               else None))
      ();
    if spans_on then begin
      let stop = !round_now () in
      List.iter
        (fun (v, cl) ->
          if not nodes.(v).is_dying then cluster_span ~stop (v, cl))
        deciding_centers
    end;
    (* Phase 3b: deferred p2 (un)registrations. *)
    List.iter
      (fun (src, dst, m) ->
        let nd = nodes.(src) in
        if is_live nd && not (Hashtbl.mem nd.nb_dead dst) then
          emit ~src ~dst m)
      (List.rev !notifications);
    notifications := [];
    run_phase "notify" ~complete:(fun () -> !idle_ref ()) ~probes:no_probes ();
    (* Phase 4: dying contracted vertices stream their (cluster, edge)
       lists to the center, budget words per link per round. *)
    Array.iter
      (fun nd ->
        if is_live nd && nd.is_dying then begin
          List.iter (fun c -> Hashtbl.replace nd.die_waiting c ()) nd.p1_children;
          if nd.p1 < 0 then begin
            center_best.(nd.id) <- Hashtbl.create 16;
            (* The center's own incidences go straight into the merge. *)
            Hashtbl.iter
              (fun w (cl, _) ->
                if cl <> nd.cl_center then begin
                  let e = Hashtbl.find nd.nb_edge w in
                  match Hashtbl.find_opt center_best.(nd.id) cl with
                  | Some e' when e' <= e -> ()
                  | _ -> Hashtbl.replace center_best.(nd.id) cl e
                end)
              nd.nb_cl
          end
          else
            Hashtbl.iter
              (fun w (cl, _) ->
                if cl <> nd.cl_center then
                  die_offer nd (cl, Hashtbl.find nd.nb_edge w))
              nd.nb_cl
        end)
      nodes;
    run_phase "dying"
      ~complete:(fun () ->
        Array.for_all
          (fun nd ->
            (not (is_live nd)) || (not nd.is_dying)
            || Hashtbl.length nd.die_waiting = 0
               && (nd.p1 < 0 || nd.die_done_sent))
          nodes)
      ~tick:(fun () ->
        Array.iter
          (fun nd ->
            if
              is_live nd && nd.is_dying && nd.p1 >= 0
              && (not nd.die_done_sent)
              && (not (Hashtbl.mem nd.nb_dead nd.p1))
              && !link_idle_ref nd.id nd.p1
            then begin
              let batch = ref [] in
              let count = ref 0 in
              while !count < die_cap && not (Queue.is_empty nd.die_queue) do
                batch := Queue.pop nd.die_queue :: !batch;
                incr count
              done;
              let finished =
                Hashtbl.length nd.die_waiting = 0 && Queue.is_empty nd.die_queue
              in
              if !batch <> [] || finished then begin
                emit ~src:nd.id ~dst:nd.p1
                  (Die_up { entries = !batch; finished });
                if finished then nd.die_done_sent <- true
              end
            end)
          nodes)
      ~probes:(fun () ->
        Array.to_list nodes
        |> List.concat_map (fun nd ->
               if is_live nd && nd.is_dying then
                 Hashtbl.fold (fun w () acc -> (nd.id, w) :: acc) nd.die_waiting []
               else []))
      ();
    (* Phase 5: centers resolve — abort or broadcast the chosen edges. *)
    Array.iter
      (fun nd ->
        if is_live nd && nd.is_dying && nd.p1 < 0 then begin
          let best = center_best.(nd.id) in
          if Hashtbl.length best > call.Plan.abort_q then begin
            incr aborts;
            nd.fin_aborting <- true;
            kept_all.(nd.id) <- true;
            (* The center keeps its own crossing edges too. *)
            Hashtbl.iter
              (fun w (cl, _) ->
                if cl <> nd.cl_center then
                  keep ~who:nd.id (Hashtbl.find nd.nb_edge w))
              nd.nb_cl;
            nd.fin_src_done <- true
          end
          else begin
            Hashtbl.iter
              (fun _ e ->
                let u, v = Graph.edge_endpoints g e in
                if u = nd.id || v = nd.id then keep ~who:nd.id e;
                Queue.add e nd.fin_queue)
              best;
            nd.fin_src_done <- true
          end
        end)
      nodes;
    run_phase "final"
      ~complete:(fun () ->
        Array.for_all
          (fun nd ->
            (not (is_live nd)) || (not nd.is_dying)
            || (nd.fin_src_done && (nd.p1_children = [] || nd.fin_done_sent)))
          nodes)
      ~tick:(fun () ->
        Array.iter
          (fun nd ->
            if
              is_live nd && nd.is_dying && nd.p1_children <> []
              && (not nd.fin_done_sent)
              && List.for_all (fun c -> !link_idle_ref nd.id c) nd.p1_children
            then
              if nd.fin_aborting then begin
                List.iter (fun c -> emit ~src:nd.id ~dst:c Abort) nd.p1_children;
                nd.fin_done_sent <- true
              end
              else begin
                let batch = ref [] in
                let count = ref 0 in
                while !count < fin_cap && not (Queue.is_empty nd.fin_queue) do
                  batch := Queue.pop nd.fin_queue :: !batch;
                  incr count
                done;
                let finished = nd.fin_src_done && Queue.is_empty nd.fin_queue in
                if !batch <> [] || finished then begin
                  List.iter
                    (fun c ->
                      emit ~src:nd.id ~dst:c
                        (Final_down { edges = !batch; finished }))
                    nd.p1_children;
                  if finished then nd.fin_done_sent <- true
                end
              end)
          nodes)
      ~probes:(fun () ->
        Array.to_list nodes
        |> List.filter_map (fun nd ->
               if
                 is_live nd && nd.is_dying && (not nd.fin_src_done) && nd.p1 >= 0
               then Some (nd.id, nd.p1)
               else None))
      ();
    if spans_on then begin
      let stop = !round_now () in
      List.iter
        (fun (v, cl) -> if nodes.(v).is_dying then cluster_span ~stop (v, cl))
        deciding_centers
    end;
    (* Phase 6: deaths take effect; one notice per boundary link.
       Orphans exit here too — their recovery is complete, and the
       notice is what tells still-live neighbors to stop counting on
       them.  Delivering the notices can itself orphan more nodes (the
       Dead-from-parent race, or a suspicion ripening mid-phase), and
       an orphan that misses its death notice would stay engine-live
       but silent — acking probes while never speaking again, a
       livelock for next call's exchange.  So collect-announce-drain
       repeats until no exiting node remains. *)
    let deaths_pending () =
      Array.exists
        (fun nd ->
          nd.alive && (nd.is_dying || nd.orphaned) && not (crashed_now nd.id))
        nodes
    in
    while deaths_pending () do
      let newly_dead = ref [] in
      Array.iter
        (fun nd ->
          if nd.alive && (nd.is_dying || nd.orphaned) && not (crashed_now nd.id)
          then begin
            nd.alive <- false;
            newly_dead := nd :: !newly_dead
          end)
        nodes;
      List.iter
        (fun nd ->
          (* A node cannot know a neighbor died in this very call, so
             simultaneous deaths cost one wasted notice per link — the
             real protocol pays the same. *)
          Hashtbl.iter
            (fun w _ ->
              if not (Hashtbl.mem nd.nb_dead w) then emit ~src:nd.id ~dst:w Dead)
            nd.nb_edge)
        !newly_dead;
      run_phase "death-notices"
        ~complete:(fun () -> !idle_ref ())
        ~probes:no_probes ()
    done;
    if spans_on then begin
      Obs.Span.close spans ~round:(!round_now ()) !current_call_span;
      current_call_span := -1
    end
  in

  let contract () =
    Array.iter
      (fun nd ->
        if nd.alive then begin
          nd.p1 <- nd.p2;
          nd.p1_children <- nd.p2_children
        end)
      nodes
  in

  let run_plan () =
    let current_round = ref 0 in
    Array.iter
      (fun (call : Plan.call) ->
        if call.Plan.round > !current_round then begin
          contract ();
          current_round := call.Plan.round
        end;
        run_call call)
      plan.Plan.calls
  in

  (* ---------------- incremental repair (churn) ---------------- *)

  (* After the plan's calls finish under topology churn, the spanner
     may have lost edges: hooks severed, kept crossing edges down,
     late joiners never integrated.  Instead of rebuilding from
     scratch, detached fragments re-enter the Expand state machine on
     their bounded neighborhood — the same exchange / convergecast /
     decision-wave shape as a call, restricted to fragment members —
     and hook across their minimum-id live crossing edge.  Fragments
     that stay detached after the iteration bound degrade to the
     paper's keep-all abort; a live graph that is itself disconnected
     is reported as partitioned, never as a failure. *)
  let run_repair ~fast_forward () =
    (* Let every scheduled churn event and restart land before
       assessing damage. *)
    fast_forward
      (Stdlib.max
         (Fault.last_churn_round faults)
         (Fault.last_restart_round faults));
    record_phase "churn-forward";
    let live v = present_now v in
    let edge_up e = !edge_up_now e in
    let start_round = !round_now () in
    (* 1. Sweep spanner edges the churn left down. *)
    let dead = ref [] in
    Edge_set.iter spanner (fun e -> if not (edge_up e) then dead := e :: !dead);
    List.iter (Edge_set.remove spanner) !dead;
    let dead_spanner_edges = List.length !dead in
    (* 2. Roots: live nodes whose hook to their parent is unusable.
       Hook-edge ids are snapshotted first — re-rooting rewrites
       [parent_edge]. *)
    let hook_edges = Hashtbl.create 16 in
    for v = 0 to n - 1 do
      if live v && parent.(v) >= 0 then Hashtbl.replace hook_edges parent_edge.(v) ()
    done;
    let roots = ref [] in
    for v = 0 to n - 1 do
      if
        live v
        && parent.(v) >= 0
        && ((not (live parent.(v))) || not (edge_up parent_edge.(v)))
      then begin
        rp_set_parent nodes.(v) (-1);
        roots := v :: !roots
      end
    done;
    (* An orphan detached its hook when it aborted; if the protocol
       never re-hooked it, root it here so the wave reattaches the
       fragment rather than leaving it on the keep-all rung. *)
    for v = 0 to n - 1 do
      if live v && orphan_detached.(v) && parent.(v) < 0 then
        roots := v :: !roots
    done;
    (* A joiner nobody ever heard from is a singleton fragment. *)
    List.iter
      (fun (_, v) ->
        if live v && parent.(v) < 0 && Recovery.Detector.is_suspected det v
        then roots := v :: !roots)
      (Fault.join_schedule faults);
    (* A reborn node re-enters through this pass.  If its pre-crash
       hook survives (parent live, edge up, edge still in the spanner)
       its subtree is still attached and nothing moves; a dead parent
       or down hook edge was already rooted by the sweep above.  What
       remains is the node that crashed before ever hooking, or whose
       hook edge fell out of the spanner while it was down: it roots
       its own fragment, like a never-integrated joiner. *)
    let rejoined = ref 0 in
    List.iter
      (fun (r, v) ->
        if r <= !round_now () && live v then begin
          incr rejoined;
          if parent.(v) >= 0 && not (Edge_set.mem spanner parent_edge.(v))
          then rp_set_parent nodes.(v) (-1);
          if parent.(v) < 0 then roots := v :: !roots
        end)
      (Fault.restart_schedule faults);
    let rejoined = !rejoined in
    let roots = ref (List.sort_uniq compare !roots) in
    (* 3. Dead non-hook edges were kept for stretch across clusters;
       each live endpoint substitutes its cheapest usable non-spanner
       edge.  The extra keep is accounted as one more call alive. *)
    let substitute v =
      let nd = nodes.(v) in
      let best = ref (-1) in
      Hashtbl.iter
        (fun w e ->
          if
            live w && edge_up e
            && (not (Edge_set.mem spanner e))
            && (!best < 0 || e < !best)
          then best := e)
        nd.nb_edge;
      if !best >= 0 then begin
        calls_alive.(v) <- calls_alive.(v) + 1;
        keep ~who:v !best;
        incr rp_replaced
      end
    in
    List.iter
      (fun e ->
        if not (Hashtbl.mem hook_edges e) then begin
          let u, v = Graph.edge_endpoints g e in
          if live u && live v then begin
            substitute u;
            substitute v
          end
        end)
      !dead;
    (* 4. Fresh epoch for the failure detector: a link that is up
       between two present nodes is usable again, whatever the ARQ
       concluded while it was down or its peer un-joined. *)
    Array.iter
      (fun nd ->
        if live nd.id then
          Hashtbl.iter
            (fun w e -> if live w && edge_up e then Hashtbl.remove nd.nb_dead w)
            nd.nb_edge)
      nodes;
    repair_mode := true;
    (* Rebuild the repair forest from the witness labels (protocol
       liveness is gone by now) and mark fragment membership; each
       member's re-entry counts as one more call alive. *)
    let rebuild_forest () =
      Array.iter
        (fun nd ->
          nd.rp_root <- -1;
          nd.rp_parent <- -1;
          nd.rp_children <- [];
          nd.rp_nb <- Hashtbl.create 4;
          nd.rp_waiting <- Hashtbl.create 4;
          nd.rp_cv_waiting <- Hashtbl.create 4;
          nd.rp_report_sent <- false;
          nd.rp_best <- None;
          nd.rp_best_from <- -1)
        nodes;
      for v = 0 to n - 1 do
        if
          live v && parent.(v) >= 0 && live parent.(v)
          && edge_up parent_edge.(v)
        then begin
          nodes.(v).rp_parent <- parent.(v);
          nodes.(parent.(v)).rp_children <- v :: nodes.(parent.(v)).rp_children
        end
      done;
      let members = ref [] in
      List.iter
        (fun r ->
          let q = Queue.create () in
          Queue.add r q;
          while not (Queue.is_empty q) do
            let v = Queue.pop q in
            if nodes.(v).rp_root < 0 then begin
              nodes.(v).rp_root <- r;
              members := v :: !members;
              calls_alive.(v) <- calls_alive.(v) + 1;
              List.iter (fun c -> Queue.add c q) nodes.(v).rp_children
            end
          done)
        !roots;
      !members
    in
    let rehooked = ref 0 in
    let progress = ref true in
    let iter_n = ref 0 in
    while !roots <> [] && !progress && !iter_n < 3 do
      incr iter_n;
      let members = rebuild_forest () in
      (* Repair exchange: members learn each usable neighbor's
         fragment root (-1 = attached). *)
      List.iter
        (fun v ->
          let nd = nodes.(v) in
          Hashtbl.iter
            (fun w e ->
              if live w && edge_up e then begin
                Hashtbl.replace nd.rp_waiting w ();
                emit ~src:v ~dst:w (Repair_id { root = nd.rp_root })
              end)
            nd.nb_edge)
        members;
      run_phase "repair-exchange"
        ~complete:(fun () ->
          List.for_all
            (fun v ->
              (not (live v)) || Hashtbl.length nodes.(v).rp_waiting = 0)
            members)
        ~probes:(fun () ->
          List.concat_map
            (fun v ->
              if live v then
                Hashtbl.fold
                  (fun w () acc -> (v, w) :: acc)
                  nodes.(v).rp_waiting []
              else [])
            members)
        ();
      (* Local candidates — an edge crossing to the attached part or to
         a strictly smaller-rooted fragment (the order keeps the hook
         relation acyclic) — then convergecast the fragment minimum. *)
      List.iter
        (fun v ->
          let nd = nodes.(v) in
          Hashtbl.iter
            (fun w root_w ->
              if root_w <> nd.rp_root && (root_w < 0 || root_w < nd.rp_root)
              then begin
                let e = Hashtbl.find nd.nb_edge w in
                match nd.rp_best with
                | Some (e', _) when e' <= e -> ()
                | _ ->
                    nd.rp_best <- Some (e, w);
                    nd.rp_best_from <- -1
              end)
            nd.rp_nb;
          List.iter
            (fun c -> Hashtbl.replace nd.rp_cv_waiting c ())
            nd.rp_children)
        members;
      List.iter (fun v -> rp_maybe_forward nodes.(v)) members;
      run_phase "repair-convergecast"
        ~complete:(fun () ->
          List.for_all
            (fun v ->
              (not (live v))
              ||
              let nd = nodes.(v) in
              Hashtbl.length nd.rp_cv_waiting = 0
              && (nd.rp_parent < 0 || nd.rp_report_sent))
            members)
        ~probes:(fun () ->
          List.concat_map
            (fun v ->
              if live v then
                Hashtbl.fold
                  (fun w () acc -> (v, w) :: acc)
                  nodes.(v).rp_cv_waiting []
              else [])
            members)
        ();
      (* Roots with a candidate launch the parent-flip wave. *)
      let resolved, unresolved =
        List.partition (fun r -> nodes.(r).rp_best <> None) !roots
      in
      List.iter (fun r -> rp_start_wave nodes.(r)) resolved;
      run_phase "repair-wave"
        ~complete:(fun () -> !idle_ref ())
        ~probes:no_probes ();
      rehooked := !rehooked + List.length resolved;
      progress := resolved <> [];
      roots := unresolved
    done;
    (* Fragments still detached found no usable crossing edge (or the
       iteration bound ran out): degrade to keep-all. *)
    if !roots <> [] then begin
      ignore (rebuild_forest ());
      rp_keep_alls := List.length !roots;
      List.iter (fun r -> rp_do_keep_all nodes.(r)) !roots;
      run_phase "repair-keep-all"
        ~complete:(fun () -> !idle_ref ())
        ~probes:no_probes ()
    end;
    repair_mode := false;
    (* 5. Seam bridging.  A partition that healed only after both sides
       had written each other off leaves every hook intact yet no
       crossing edge in the spanner: during the cut, cross-cut keeps
       never happened.  Sweep live up edges in id order and keep any
       edge joining two spanner components — the re-advertised link's
       endpoints adopt it as a substitute crossing edge (accounted like
       a substitute: one more call alive for the keeper). *)
    let suf = Util.Union_find.create n in
    Edge_set.iter spanner (fun e ->
        if edge_up e then begin
          let u, v = Graph.edge_endpoints g e in
          if live u && live v then ignore (Util.Union_find.union suf u v)
        end);
    for e = 0 to Graph.m g - 1 do
      if edge_up e && not (Edge_set.mem spanner e) then begin
        let u, v = Graph.edge_endpoints g e in
        if live u && live v && Util.Union_find.union suf u v then begin
          let who = Stdlib.min u v in
          calls_alive.(who) <- calls_alive.(who) + 1;
          keep ~who e;
          incr rp_replaced
        end
      end
    done;
    (* Ladder verdict: components of the live graph decide partitioned;
       otherwise any keep-all fallback means degraded. *)
    let comp = Array.make n (-1) in
    let ncomp = ref 0 in
    for v = 0 to n - 1 do
      if live v && comp.(v) < 0 then begin
        incr ncomp;
        let q = Queue.create () in
        Queue.add v q;
        comp.(v) <- v;
        while not (Queue.is_empty q) do
          let u = Queue.pop q in
          Hashtbl.iter
            (fun w e ->
              if live w && edge_up e && comp.(w) < 0 then begin
                comp.(w) <- v;
                Queue.add w q
              end)
            nodes.(u).nb_edge
        done
      end
    done;
    let ncomp = Stdlib.max 1 !ncomp in
    let outcome =
      if ncomp > 1 then Partitioned ncomp
      else if !rp_keep_alls > 0 then Degraded
      else if
        dead_spanner_edges = 0 && !rehooked = 0 && !rp_replaced = 0
        && rejoined = 0
      then Intact
      else Patched
    in
    repair_ref :=
      {
        outcome;
        dead_spanner_edges;
        rehooked = !rehooked;
        replaced_edges = !rp_replaced;
        keep_all_fallbacks = !rp_keep_alls;
        repair_rounds = !round_now () - start_round;
        components = ncomp;
        rejoined;
      };
    let down = ref [] in
    for e = Graph.m g - 1 downto 0 do
      if not (edge_up e) then down := e :: !down
    done;
    dead_edges_ref := !down
  in

  (* ---------------- transports ---------------- *)
  let retransmissions = ref 0 and dead_letters = ref 0 in
  if not use_arq then begin
    (* Loss-free fast path: protocol messages ride the engine bare, as
       in the paper's model.  No acks, no sequence numbers — word
       accounting and the produced spanner match the original driver. *)
    let net : msg Sim.t = Sim.create ~faults ?tracer ~metrics ~spans g in
    round_now := (fun () -> Sim.round net);
    stats_now := (fun () -> Sim.stats net);
    window_now := (fun () -> Sim.take_window_max net);
    emit_ref := (fun ~src ~dst m -> Sim.send net ~src ~dst ~words:(words m) m);
    pump_ref := (fun () -> ignore (Sim.step net dispatch));
    idle_ref := (fun () -> Sim.quiescent net);
    link_idle_ref := (fun _ _ -> true);
    run_plan ()
  end
  else begin
    (* Faulty network: every link runs the Reliable stop-and-wait ARQ,
       whose abandoned transmissions double as the failure detector.
       The protocol state lives in [nodes]; the wrapped inner protocol
       is just a mailbox that dispatches deliveries and drains the
       outbox the phase driver fills. *)
    let outbox : (int * msg) list array = Array.make n [] in
    let module P = struct
      type state = int
      type message = msg

      let message_words = words
      let init _ v = (v, [])

      let receive _ ~round:_ v st inbox =
        List.iter (fun (src, m) -> dispatch ~dst:v ~src m) inbox;
        let outs = List.rev outbox.(v) in
        outbox.(v) <- [];
        (st, outs)
    end in
    let module R = Reliable.Make (P) in
    R.use_metrics metrics;
    R.use_spans spans;
    let net : R.message Sim.t = Sim.create ~faults ?tracer ~metrics ~spans g in
    let dynamic = Fault.has_churn faults in
    round_now := (fun () -> Sim.round net);
    stats_now := (fun () -> Sim.stats net);
    window_now := (fun () -> Sim.take_window_max net);
    edge_up_now := Sim.edge_up net;
    let states = Array.init n (fun v -> fst (R.init g v)) in
    let inboxes : (int * R.message) list array = Array.make n [] in
    let suspects_seen = Array.make n 0 in
    emit_ref := (fun ~src ~dst m -> outbox.(src) <- (dst, m) :: outbox.(src));
    (* Crash-recovery: when a node's restart round arrives, revive it.
       The reborn node is engine-live but protocol-dead ([proto_dead]):
       its transport pumps and its probes ack, but it rejoins the
       output only through the repair pass.  Reviving means amnesia —
       fresh ARQ state on BOTH sides of every incident link (the
       reborn node must not consume its predecessor's acks, nor have
       its restarted sequence numbers swallowed as duplicates), the
       phase-boundary checkpoint restored, and every neighbor that had
       not yet written the node off forced to do so now: the crash
       severed their sessions, and the abandonment that would have
       ripened into a suspicion died with the reset. *)
    let pending_revives = ref (Fault.restart_schedule faults) in
    let revive ~round v =
      inboxes.(v) <- [];
      outbox.(v) <- [];
      states.(v) <- fst (R.init g v);
      suspects_seen.(v) <- 0;
      let nd = nodes.(v) in
      (match Recovery.Checkpoints.restore ckpt v with
      | Some (cl, fu) ->
          nd.cl_center <- cl;
          nd.cl_fu <- fu
      | None -> ());
      nd.alive <- false;
      nd.orphaned <- false;
      nd.is_dying <- false;
      nd.p1_children <- [];
      nd.p2_children <- [];
      Hashtbl.reset nd.nb_dead;
      nd.nb_cl <- Hashtbl.create 4;
      nd.ex_waiting <- Hashtbl.create 4;
      nd.deciding <- false;
      nd.cv_waiting <- Hashtbl.create 4;
      nd.report_sent <- false;
      nd.best <- None;
      nd.best_peer <- -1;
      nd.best_from <- -1;
      nd.wave_done <- false;
      nd.die_queue <- Queue.create ();
      nd.die_sent <- Hashtbl.create 4;
      nd.die_waiting <- Hashtbl.create 4;
      nd.die_done_sent <- false;
      nd.fin_queue <- Queue.create ();
      nd.fin_src_done <- false;
      nd.fin_done_sent <- false;
      nd.fin_aborting <- false;
      Graph.iter_neighbors g v (fun w _ ->
          R.reset_peer states.(w) ~round v;
          suspects_seen.(w) <- List.length (R.suspected states.(w));
          if (not (proto_dead w)) && not (Hashtbl.mem nodes.(w).nb_dead v)
          then on_suspect ~by:w v)
    in
    pump_ref :=
      (fun () ->
        ignore
          (Sim.step net (fun ~dst ~src m ->
               inboxes.(dst) <- (src, m) :: inboxes.(dst)));
        let round = Sim.round net in
        (if restarting then
           match !pending_revives with
           | (r, _) :: _ when r <= round ->
               let landed, rest =
                 List.partition (fun (r, _) -> r <= round) !pending_revives
               in
               pending_revives := rest;
               List.iter (fun (_, v) -> revive ~round v) landed
           | _ -> ());
        for v = 0 to n - 1 do
          let inbox = List.rev inboxes.(v) in
          inboxes.(v) <- [];
          if not (crashed_now v) then begin
            let _, outs = R.receive g ~round v states.(v) inbox in
            (* Under churn a down link swallows the frame — the ARQ
               retransmits, and persistent downtime ripens into a
               suspicion exactly like a crashed peer. *)
            List.iter
              (fun (dst, rm) ->
                if (not dynamic) || Sim.link_up net ~src:v ~dst then
                  Sim.send net ~src:v ~dst ~words:(R.message_words rm) rm)
              outs
          end
        done;
        (* Fold freshly abandoned transmissions into the detector. *)
        for v = 0 to n - 1 do
          if not (crashed_now v) then begin
            let s = R.suspected states.(v) in
            let len = List.length s in
            if len > suspects_seen.(v) then begin
              let fresh = ref [] and extra = ref (len - suspects_seen.(v)) in
              List.iter
                (fun w ->
                  if !extra > 0 then begin
                    fresh := w :: !fresh;
                    decr extra
                  end)
                s;
              suspects_seen.(v) <- len;
              List.iter (fun w -> on_suspect ~by:v w) !fresh
            end
          end
        done);
    idle_ref :=
      (fun () ->
        Sim.quiescent net
        && Array.for_all
             (fun (nd : node) ->
               crashed_now nd.id
               || ((not (R.active states.(nd.id))) && outbox.(nd.id) = []))
             nodes);
    link_idle_ref :=
      (fun v w ->
        R.link_idle states.(v) w
        && not (List.exists (fun (d, _) -> d = w) outbox.(v)));
    run_plan ();
    if dynamic || restarting then
      Obs.Prof.region (Obs.Prof.current ()) "skel_repair_drive" (fun () ->
          run_repair
            ~fast_forward:(fun target ->
              while Sim.round net < target do
                !pump_ref ()
              done)
            ());
    Array.iteri
      (fun v st ->
        if not (crashed_now v) then begin
          retransmissions := !retransmissions + R.retransmissions st;
          dead_letters := !dead_letters + R.dead_letters st
        end)
      states
  end;

  (* ---------------- result ---------------- *)
  (* Whatever ran outside a named phase (initial flushes, kill
     messages, repair bookkeeping) lands in a catch-all row, keeping
     the phase table's totals equal to the engine statistics. *)
  record_phase "post";
  if Obs.Metrics.enabled metrics then begin
    Obs.Metrics.add
      (Obs.Metrics.counter metrics "skeleton_checkpoint_commits")
      (Recovery.Checkpoints.commits ckpt);
    Obs.Metrics.add (Obs.Metrics.counter metrics "skeleton_orphan_aborts")
      !orphans;
    Obs.Metrics.add (Obs.Metrics.counter metrics "skeleton_recovered_edges")
      !recovered_edges;
    Obs.Metrics.add (Obs.Metrics.counter metrics "skeleton_suspicion_events")
      !suspicion_events;
    Obs.Metrics.add (Obs.Metrics.counter metrics "skeleton_aborts") !aborts
  end;
  let stats = !stats_now () in
  let crashed = Array.make n false in
  List.iter
    (fun (round, v) -> if round <= stats.Sim.rounds then crashed.(v) <- true)
    (Fault.crash_schedule faults);
  (* A late joiner that never integrated — suspected by its neighbors
     and neither rehooked nor degraded by the repair pass — is absent
     from the spanner through no protocol fault; audit it like a
     crashed node rather than failing the stretch check on it. *)
  List.iter
    (fun (round, v) ->
      if
        round > stats.Sim.rounds
        || (Recovery.Detector.is_suspected det v
           && parent.(v) < 0 && not kept_all.(v))
      then crashed.(v) <- true)
    (Fault.join_schedule faults);
  (* A restart that landed puts the node back among the audited: the
     repair pass reintegrated it (rehooked, attached, or keep-all), so
     Certify holds it to the same subset/forest/contribution/stretch
     obligations as any live vertex — and counts it as rejoined. *)
  let rejoined = Array.make n false in
  List.iter
    (fun (round, v) ->
      if round <= stats.Sim.rounds then begin
        crashed.(v) <- false;
        rejoined.(v) <- true
      end)
    (Fault.restart_schedule faults);
  let witness =
    {
      Certify.parent;
      parent_edge;
      contributed;
      calls_alive;
      kept_all;
      crashed;
      rejoined;
      max_abort_q =
        Array.fold_left
          (fun acc (c : Plan.call) -> Stdlib.max acc c.Plan.abort_q)
          0 plan.Plan.calls;
    }
  in
  {
    spanner;
    plan;
    aborts = !aborts;
    stats;
    witness;
    recovery =
      {
        crashed = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 crashed;
        orphaned = !orphans;
        recovered_edges = !recovered_edges;
        checkpoints = Recovery.Checkpoints.commits ckpt;
        retransmissions = !retransmissions;
        dead_letters = !dead_letters;
      };
    repair = !repair_ref;
    dead_edges = !dead_edges_ref;
  }

let build ?(d = 4) ?(eps = 0.5) ?faults ?tracer ?metrics ?spans
    ?phase_round_limit ~seed g =
  let plan = Plan.make ~n:(Graph.n g) ~d ~eps () in
  let rng = Util.Prng.create ~seed in
  let sampling = Sampling.draw rng ~n:(Graph.n g) plan in
  build_with ?faults ?tracer ?metrics ?spans ?phase_round_limit ~plan ~sampling
    g
