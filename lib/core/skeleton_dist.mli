(** Distributed implementation of the Section 2 skeleton algorithm on
    the {!Distnet.Sim} engine (the construction behind Theorem 2), with
    crash recovery and self-certification.

    Every original vertex is a network node.  The schedule ({!Plan})
    depends only on [n, D, eps], so all nodes know it; the random tape
    ({!Sampling}) is each node's private coin flips, drawn before the
    first round as the paper prescribes.  Each [Expand] call runs as a
    sequence of message phases, each an explicit resumable state
    machine whose completion is tracked by per-node waiting sets (not
    network quiescence, which loss would defeat):

    + {b exchange} — every live node tells each live neighbor its
      cluster center and that center's first-unsampled call index
      (2 words); the exchange boundary is also the {!Distnet.Recovery}
      checkpoint every node commits;
    + {b convergecast} — inside each contracted vertex whose cluster
      went unsampled, candidate crossing edges to sampled clusters
      flow up the [p1] tree, min edge id winning (3 words);
    + {b decision wave} — the center broadcasts the winning edge down
      marked on-path/off-path, nodes update their [p2] pointers exactly
      as in the paper's Fig. 4 and re-register with their new parent;
    + {b dying} — a contracted vertex with no sampled neighbor streams
      its deduplicated (cluster, edge) list to the center in batches of
      at most the word budget, the center either aborts (list longer
      than [4 s_i ln n]: keep every incident crossing edge) or
      broadcasts the chosen min edge per cluster back down;
    + {b death notices} — one final word per boundary edge.

    Between rounds each node locally promotes [p2] to [p1]
    (contraction costs no communication).

    {b Fault tolerance.}  With a [?faults] plan the protocol runs every
    link through the {!Distnet.Reliable} stop-and-wait ARQ, which makes
    delivery exact-once under loss, duplication and delay, and whose
    abandoned transmissions double as a crash-stop failure detector.  A
    node whose cluster-tree parent ([p1] or [p2]) is detected crashed
    executes the {e orphan abort}: it restores its exchange-boundary
    checkpoint, keeps {e all} its incident live edges (the paper's
    abort rule widened to intra-cluster edges — a crash can sever the
    cluster tree itself; see DESIGN.md), cascades the abort to its own
    subtree, and leaves the algorithm at the call's death-notice phase.
    Crashes cost spanner {e size} (the recovered edges), never
    {e stretch}.  Without faults the ARQ layer is bypassed entirely and
    the produced spanner is {e edge for edge identical} to
    {!Skeleton.build_with} on the same tape — the test suite relies on
    this.

    The construction also records the per-vertex {!Certify.witness}
    labels, so any output can be independently certified after the
    fact. *)

(** What fault recovery did during the run (all zero on a loss-free
    network). *)
type recovery_report = {
  crashed : int;  (** nodes crash-stopped by the fault plan *)
  orphaned : int;  (** nodes that executed the orphan abort *)
  recovered_edges : int;  (** extra edges kept by orphan aborts *)
  checkpoints : int;  (** phase-boundary checkpoint commits *)
  retransmissions : int;  (** ARQ data retransmissions, all nodes *)
  dead_letters : int;  (** ARQ transmissions abandoned, all nodes *)
}

(** How well the spanner survived topology churn — the degradation
    ladder.  [Intact]: no spanner edge was affected.  [Patched]: local
    repair rehooked every detached fragment and substituted every dead
    crossing edge.  [Degraded]: at least one fragment fell back to the
    keep-all abort (size grows, stretch holds).  [Partitioned k]: the
    live graph itself has [k] components; repair patched each side
    independently, and certification must run per component. *)
type repair_outcome = Intact | Patched | Degraded | Partitioned of int

val pp_outcome : Format.formatter -> repair_outcome -> unit

(** What the incremental repair pass did after the last churn event or
    restart ([no_repair]-equal on a churn- and restart-free run). *)
type repair_report = {
  outcome : repair_outcome;
  dead_spanner_edges : int;  (** spanner edges swept because down *)
  rehooked : int;  (** fragments re-attached by the repair wave *)
  replaced_edges : int;  (** substitute edges for dead crossing edges *)
  keep_all_fallbacks : int;  (** fragments degraded to keep-all *)
  repair_rounds : int;  (** engine rounds spent repairing *)
  components : int;  (** live-graph components after churn *)
  rejoined : int;
      (** restarted nodes reintegrated by this pass — rehooked,
          still attached, or degraded to keep-all; each is audited by
          {!Certify.run} like any live vertex *)
}

val no_repair : repair_report

(** A phase that can make no further progress: the round limit was hit,
    or the transport drained with every probe already answered.  Either
    a protocol bug or a fault plan outside the recoverable envelope —
    e.g. a partition that never heals.  [waiting_on] lists the
    (waiter, awaited-peer) links still open, which under a partition
    names the links crossing the cut. *)
exception
  Stuck of {
    phase : string;
    waiting_on : (int * int) list;
    stats : Distnet.Sim.stats;
  }

type result = {
  spanner : Graphlib.Edge_set.t;
  plan : Plan.t;
  aborts : int;  (** the paper's abort rule firings (not orphan aborts) *)
  stats : Distnet.Sim.stats;
  witness : Certify.witness;  (** labels for {!Certify.run} *)
  recovery : recovery_report;
  repair : repair_report;
  dead_edges : int list;  (** edge ids still down when the run ended *)
}

val build :
  ?d:int ->
  ?eps:float ->
  ?faults:Distnet.Fault.t ->
  ?tracer:Distnet.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?spans:Obs.Span.t ->
  ?phase_round_limit:int ->
  seed:int ->
  Graphlib.Graph.t ->
  result

val build_with :
  ?faults:Distnet.Fault.t ->
  ?tracer:Distnet.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?spans:Obs.Span.t ->
  ?phase_round_limit:int ->
  plan:Plan.t ->
  sampling:Sampling.t ->
  Graphlib.Graph.t ->
  result
(** [metrics] (default {!Obs.Metrics.disabled}) attributes the run's
    cost per phase: counters [phase_rounds] / [phase_messages] /
    [phase_words] and a [phase_max_message_words] gauge under a
    ["phase"] label (exchange, convergecast, wave, notify, dying,
    final, death-notices, the repair-* phases, churn-forward, and a
    catch-all [post]), accounted as deltas of the engine statistics so
    the rows sum exactly to the run's [stats]; per-cluster
    [cluster_edges_kept] counters; end-of-run recovery counters
    ([skeleton_checkpoint_commits], [skeleton_orphan_aborts],
    [skeleton_recovered_edges], [skeleton_suspicion_events],
    [skeleton_aborts]); plus everything {!Distnet.Sim} and the ARQ
    layer record.  Purely observational: enabling metrics never
    changes the spanner, the statistics, or the trace.

    [spans] (default {!Obs.Span.disabled}) records the run's causal
    structure into the sink: one [Phase] span per [record_phase]
    boundary above — same boundaries, same names as the stats deltas,
    so the phase spans partition [(0, stats.rounds]] — each parented
    to a [Call] span covering its Expand call; one [Cluster] span per
    deciding center and call (open from the exchange boundary to the
    wave boundary, or the final boundary for a dying center); plus
    every message and ARQ span the transport records.  Equally
    observational: enabling spans never changes the run.

    With a churn-carrying fault plan, the run fast-forwards past the
    last churn event after the schedule completes and executes the
    incremental repair pass (see {!repair_report}); down links during
    the run look like loss to the ARQ and ripen into suspicions if
    they stay down past the retry horizon.

    With a restart-carrying fault plan (crash-recovery), a node whose
    restart round arrives is revived with a fresh incarnation: its ARQ
    sessions are reset on both sides of every incident link, its
    exchange-boundary checkpoint is restored, and every neighbor that
    had not yet written it off is forced to now (the crash severed
    their sessions, so the abandonment that would have ripened into a
    suspicion died with the reset).  The reborn node is engine-live
    but stays out of the call machinery; the repair pass reintegrates
    it — re-hooked, still attached, or keep-all — and reports it in
    [rejoined].  The failure detector retracts its suspicion on the
    first message delivered from the new incarnation.  [phase_round_limit] bounds
    the rounds any one phase may spend (default [10_000 + 500 n]).

    @raise Stuck if a phase cannot complete and probing the awaited
    peers produces no new crash suspicions — either a protocol bug or
    a fault plan outside the recoverable envelope (e.g. a partitioned
    link that never heals); the payload names the stuck phase. *)
