(** Distributed self-certification of a constructed skeleton.

    After {!Skeleton_dist} finishes — possibly over a faulty network,
    possibly having recovered from crash-stops — the output is not
    taken on faith: every node carries a {e witness} label and a
    certifier checks the labels against the spanner, in the tradition
    of proof-labeling schemes.  Three of the four checks are purely
    local (a vertex and its incident edges can evaluate them against
    its own label); the stretch check is the auditor's sampled global
    test of Theorem 2's bound.

    The checks:

    - {b subset} — every spanner edge is an edge of the input graph
      with sane endpoints ([S ⊆ G]);
    - {b forest} — every non-crashed vertex's hook edge (the edge to
      its last cluster-tree parent) is present in the spanner, is
      incident to both endpoints of the label, and the hook edges form
      no cycle: the cluster forest is well-formed.  Removing any tree
      edge from the spanner trips this check deterministically;
    - {b contribution} — each vertex kept at most
      [calls_alive + min(deg, 4 s_i ln n)] edges ([+ deg] instead when
      it executed an abort or crash recovery, which keep all incident
      edges): the per-vertex accounting behind Lemma 6's size bound;
    - {b stretch} — sampled BFS distances in the surviving graph
      [G \ crashed] versus the surviving spanner stay within
      Theorem 2's distortion bound, and no pair connected in
      [G \ crashed] is disconnected in the spanner.

    The Lemma 6 {e aggregate} size is reported as a ratio (measured /
    expected) but not enforced — Lemma 6 bounds an expectation, and a
    single run (or an adversarial graph such as a clique) can
    legitimately exceed it. *)

(** Per-vertex certification labels, recorded by the construction.
    For a crashed vertex the label is whatever was recorded before the
    crash; the certifier skips its local checks and removes the vertex
    from the stretch audit. *)
type witness = {
  parent : int array;  (** last cluster-tree parent; [-1] at roots *)
  parent_edge : int array;  (** edge to [parent]; [-1] at roots *)
  contributed : int array;  (** spanner edges first kept by this vertex *)
  calls_alive : int array;  (** [Expand] calls the vertex was live for *)
  kept_all : bool array;
      (** the vertex kept {e all} incident edges: the paper's abort
          rule, or orphan crash recovery *)
  crashed : bool array;  (** crash-stopped during the run, never revived *)
  rejoined : bool array;
      (** crashed, restarted, and reintegrated by the repair pass: the
          vertex is audited like any live vertex (its [crashed] flag is
          false) and counted in the verdict's [rejoined] *)
  max_abort_q : int;  (** largest [4 s_i ln n] threshold of the plan *)
}

type check = { name : string; ok : bool; detail : string }

type verdict = {
  checks : check list;  (** in order: subset, forest, contribution, stretch *)
  live : int;  (** non-crashed vertices *)
  pairs : int;  (** (source, target) pairs audited for stretch *)
  max_stretch : float;  (** worst sampled multiplicative stretch *)
  stretch_bound : float;  (** Theorem 2's bound for the plan's n, D, eps *)
  size_ratio : float;  (** measured size / Lemma 6 expectation (reported) *)
  components : int;  (** components of the surviving graph *)
  rejoined : int;  (** audited vertices that crashed and rejoined *)
}

val ok : verdict -> bool
(** Every check passed. *)

val stretch_bound : Plan.t -> float
(** Theorem 2's multiplicative distortion bound for the plan's
    [(n, D, eps)] — the same value the stretch audit checks against,
    exposed so downstream consumers (the serving layer, experiment
    tables) can report end-to-end bounds without re-deriving them. *)

val run :
  ?sources:int ->
  ?seed:int ->
  ?down_edge:(int -> bool) ->
  ?per_component:bool ->
  ?metrics:Obs.Metrics.t ->
  plan:Plan.t ->
  witness:witness ->
  Graphlib.Graph.t ->
  Graphlib.Edge_set.t ->
  verdict
(** [run ~plan ~witness g spanner] certifies the output.  [sources]
    (default 8) BFS sources are drawn with [seed] (default 1) among
    the non-crashed vertices for the stretch audit; all their
    reachable pairs are checked.

    [down_edge] (default: none) marks edges the topology churn left
    down: they are excluded from both sides of the stretch comparison
    — the audit is of the spanner against the graph that actually
    survives — and a witness hook over a down edge fails the forest
    check.

    [per_component] (default false): guarantee at least one BFS source
    in every component of the surviving graph before spending the rest
    of the budget on shuffled extras.  A source never audits across a
    cut (pairs unreachable in the surviving graph are skipped), so
    after a partition this is what certifies each island separately —
    without it a small component can escape the audit entirely.

    [metrics] (default {!Obs.Metrics.disabled}) counts each check's
    outcome into a [certify_checks] counter labeled
    [check]/[outcome] (pass or fail). *)

val pp : Format.formatter -> verdict -> unit
(** Human-readable multi-line report. *)

val pp_json : Format.formatter -> verdict -> unit
(** One machine-readable JSON object. *)
