(** Bound auditor: does an observed run land inside the paper's
    envelope?

    Three quantities of a skeleton run have stated bounds (Fig. 1 /
    Theorem 2 / Lemma 6): rounds, message length in words, and spanner
    size.  The paper's bounds carry hidden constants (and Lemma 6
    bounds an {e expectation}), so the auditor never reports a hard
    failure: each bound is checked against the closed form from
    {!Bounds} times an explicit slack factor and reported PASS or
    WARN.  A WARN is a regression signal — today's implementation sits
    well inside every allowance — not a correctness verdict; the
    correctness checks live in {!Certify}.

    The allowances:

    - {b rounds} — [64 x] {!Bounds.skeleton_time} (Theorem 2's
      [O(t + log n)] without its hidden constant).  The factor covers
      the implementation's per-phase handshakes and, under a fault
      plan, the ARQ's retransmission round-trips.
    - {b max message words} — the plan's word budget [+ 2] framing
      words (a convergecast report is [3] words at budget [1]), plus
      [3] more under ARQ (sequence number and piggybacked acks).
    - {b spanner size} — [3 x] {!Bounds.skeleton_size} (Lemma 6's
      expectation; a single run can exceed it legitimately).

    Per-phase round counts, when supplied, are audited as extra rows
    against the same rounds allowance — no single phase may dominate
    a budget the whole run is expected to meet. *)

type status = Pass | Warn

type bound = {
  name : string;
  observed : float;
  allowed : float;
  status : status;  (** [Pass] iff [observed <= allowed] *)
  detail : string;  (** how [allowed] was derived *)
}

type report = { n : int; d : int; eps : float; bounds : bound list }

val ok : report -> bool
(** No WARN rows. *)

val run :
  ?arq:bool ->
  ?spanner_edges:int ->
  ?phase_rounds:(string * int) list ->
  plan:Plan.t ->
  stats:Distnet.Sim.stats ->
  unit ->
  report
(** [arq] (default false): the run went through the reliable-delivery
    layer, which widens the message-length allowance.  The size bound
    is checked only when [spanner_edges] is given; [phase_rounds] adds
    one row per named phase. *)

val pp : Format.formatter -> report -> unit
(** One header line plus one [PASS]/[WARN] line per bound. *)
