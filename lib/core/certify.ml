module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set

type witness = {
  parent : int array;
  parent_edge : int array;
  contributed : int array;
  calls_alive : int array;
  kept_all : bool array;
  crashed : bool array;
  rejoined : bool array;
      (** crashed, restarted, and reintegrated by the repair pass —
          audited like any live vertex, and counted in the verdict *)
  max_abort_q : int;
}

type check = { name : string; ok : bool; detail : string }

type verdict = {
  checks : check list;
  live : int;
  pairs : int;
  max_stretch : float;
  stretch_bound : float;
  size_ratio : float;
  components : int;
  rejoined : int;
}

let ok v = List.for_all (fun c -> c.ok) v.checks

let stretch_bound plan =
  Bounds.skeleton_distortion ~n:plan.Plan.n ~d:plan.Plan.d ~eps:plan.Plan.eps

(* ------------------------------------------------------------------ *)
(* BFS over a vertex-filtered adjacency (crashed vertices removed). *)

type adj = { off : int array; dst : int array }

let build_adj ~n ~alive iter_pairs =
  let deg = Array.make n 0 in
  iter_pairs (fun u v ->
      if alive u && alive v then begin
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      end);
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + deg.(v)
  done;
  let dst = Array.make off.(n) 0 in
  let cursor = Array.copy off in
  iter_pairs (fun u v ->
      if alive u && alive v then begin
        dst.(cursor.(u)) <- v;
        cursor.(u) <- cursor.(u) + 1;
        dst.(cursor.(v)) <- u;
        cursor.(v) <- cursor.(v) + 1
      end);
  { off; dst }

let bfs adj ~n ~src dist queue =
  Array.fill dist 0 n (-1);
  dist.(src) <- 0;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = queue.(!head) in
    incr head;
    for i = adj.off.(u) to adj.off.(u + 1) - 1 do
      let v = adj.dst.(i) in
      if dist.(v) < 0 then begin
        dist.(v) <- dist.(u) + 1;
        queue.(!tail) <- v;
        incr tail
      end
    done
  done

(* ------------------------------------------------------------------ *)

let run ?(sources = 8) ?(seed = 1) ?(down_edge = fun _ -> false)
    ?(per_component = false) ?(metrics = Obs.Metrics.disabled)
    ~(plan : Plan.t) ~witness g spanner =
  let n = Graph.n g in
  let w = witness in
  let live v = not w.crashed.(v) in
  let live_count = ref 0 and rejoined_count = ref 0 in
  for v = 0 to n - 1 do
    if live v then begin
      incr live_count;
      if w.rejoined.(v) then incr rejoined_count
    end
  done;
  (* A check accumulates its first few violations into the detail. *)
  let violations = ref 0 and examples = ref [] in
  let fail detail =
    incr violations;
    if List.length !examples < 3 then examples := detail :: !examples
  in
  let close name ok_detail =
    let c =
      if !violations = 0 then { name; ok = true; detail = ok_detail }
      else
        {
          name;
          ok = false;
          detail =
            Printf.sprintf "%d violation(s): %s" !violations
              (String.concat "; " (List.rev !examples));
        }
    in
    violations := 0;
    examples := [];
    c
  in

  (* 1. subset: S is a set of real edges of G. *)
  Edge_set.iter spanner (fun e ->
      match Graph.edge_endpoints g e with
      | u, v ->
          if not (u >= 0 && v >= 0 && u < n && v < n && u <> v) then
            fail (Printf.sprintf "edge %d has endpoints (%d,%d)" e u v)
      | exception _ -> fail (Printf.sprintf "edge id %d outside the graph" e));
  let size = Edge_set.cardinal spanner in
  let subset = close "subset" (Printf.sprintf "%d edges, all in G" size) in

  (* 2. forest: hook edges present, incident, and acyclic. *)
  let uf = Util.Union_find.create n in
  let hooks = ref 0 in
  for v = 0 to n - 1 do
    if live v && w.parent.(v) >= 0 then begin
      let p = w.parent.(v) and e = w.parent_edge.(v) in
      incr hooks;
      if p >= n || e < 0 then
        fail (Printf.sprintf "vertex %d: malformed label (parent %d, edge %d)" v p e)
      else if not (Edge_set.mem spanner e) then
        fail (Printf.sprintf "vertex %d: hook edge %d missing from spanner" v e)
      else if down_edge e then
        fail (Printf.sprintf "vertex %d: hook edge %d is down" v e)
      else
        let a, b = Graph.edge_endpoints g e in
        if not ((a = v && b = p) || (a = p && b = v)) then
          fail
            (Printf.sprintf "vertex %d: hook edge %d joins (%d,%d), not parent %d"
               v e a b p)
        else if live p && not (Util.Union_find.union uf v p) then
          fail (Printf.sprintf "vertex %d: hook edge %d closes a cycle" v e)
    end
  done;
  let forest = close "forest" (Printf.sprintf "%d hook edges, acyclic" !hooks) in

  (* 3. contribution: the per-vertex accounting behind Lemma 6. *)
  let worst = ref 0. in
  for v = 0 to n - 1 do
    if live v then begin
      let deg = Graph.degree g v in
      let slack = if w.kept_all.(v) then deg else Stdlib.min deg w.max_abort_q in
      let cap = w.calls_alive.(v) + slack in
      if deg > 0 then
        worst := Stdlib.max !worst (float_of_int w.contributed.(v) /. float_of_int cap);
      if w.contributed.(v) > cap then
        fail
          (Printf.sprintf "vertex %d kept %d edges, cap %d (alive %d calls, deg %d%s)"
             v w.contributed.(v) cap w.calls_alive.(v) deg
             (if w.kept_all.(v) then ", kept-all" else ""))
    end
  done;
  let contribution =
    close "contribution" (Printf.sprintf "per-vertex cap respected (worst %.2f)" !worst)
  in

  (* 4. stretch: sampled audit of Theorem 2 on the surviving graph. *)
  let bound =
    Bounds.skeleton_distortion ~n:plan.Plan.n ~d:plan.Plan.d ~eps:plan.Plan.eps
  in
  (* Down edges belong to neither side of the comparison: the audit is
     of the spanner against the graph that actually survives. *)
  let adj_g =
    build_adj ~n ~alive:live (fun f ->
        Graph.iter_edges g (fun e u v -> if not (down_edge e) then f u v))
  in
  let adj_h =
    build_adj ~n ~alive:live (fun f ->
        Edge_set.iter spanner (fun e ->
            if not (down_edge e) then begin
              let u, v = Graph.edge_endpoints g e in
              f u v
            end))
  in
  let rng = Util.Prng.create ~seed in
  let live_vertices = Array.of_seq (Seq.filter live (Seq.init n Fun.id)) in
  Util.Prng.shuffle rng live_vertices;
  let dg = Array.make n (-1)
  and dh = Array.make n (-1)
  and queue = Array.make (Stdlib.max 1 n) 0 in
  (* Components of the surviving graph — BFS from shuffled vertices so
     per-component source picks stay seed-reproducible. *)
  let comp = Array.make n (-1) in
  let ncomp = ref 0 in
  Array.iter
    (fun v ->
      if comp.(v) < 0 then begin
        bfs adj_g ~n ~src:v dg queue;
        for u = 0 to n - 1 do
          if dg.(u) >= 0 && comp.(u) < 0 then comp.(u) <- !ncomp
        done;
        incr ncomp
      end)
    live_vertices;
  (* Source sample: with [per_component], first one representative per
     live component (a source never audits across a cut — pairs
     unreachable in the surviving graph are skipped — so a component
     with no source would go entirely unchecked), then shuffled extras
     up to the budget. *)
  let srcs =
    if not per_component then
      Array.sub live_vertices 0 (Stdlib.min sources (Array.length live_vertices))
    else begin
      let budget =
        Stdlib.min
          (Stdlib.max sources !ncomp)
          (Array.length live_vertices)
      in
      let seen = Array.make (Stdlib.max 1 !ncomp) false in
      let reps = ref [] and extras = ref [] in
      Array.iter
        (fun v ->
          if not seen.(comp.(v)) then begin
            seen.(comp.(v)) <- true;
            reps := v :: !reps
          end
          else extras := v :: !extras)
        live_vertices;
      let buf = Array.make budget 0 in
      let i = ref 0 in
      List.iter
        (fun v ->
          if !i < budget then begin
            buf.(!i) <- v;
            incr i
          end)
        (List.rev !reps @ List.rev !extras);
      buf
    end
  in
  let pairs = ref 0 and max_stretch = ref 1. in
  for i = 0 to Array.length srcs - 1 do
    let s = srcs.(i) in
    bfs adj_g ~n ~src:s dg queue;
    bfs adj_h ~n ~src:s dh queue;
    for v = 0 to n - 1 do
      if v <> s && dg.(v) > 0 then begin
        incr pairs;
        if dh.(v) < 0 then
          fail (Printf.sprintf "pair (%d,%d) connected in G\\crashed, not in S" s v)
        else begin
          let st = float_of_int dh.(v) /. float_of_int dg.(v) in
          if st > !max_stretch then max_stretch := st;
          if st > bound then
            fail
              (Printf.sprintf "pair (%d,%d): stretch %.2f > bound %.2f" s v st bound)
        end
      end
    done
  done;
  let npairs = !pairs in
  let stretch =
    close "stretch"
      (Printf.sprintf "%d pairs, max stretch %.2f <= %.2f" npairs !max_stretch bound)
  in
  let verdict =
    {
      checks = [ subset; forest; contribution; stretch ];
      live = !live_count;
      pairs = npairs;
      max_stretch = !max_stretch;
      stretch_bound = bound;
      size_ratio =
        float_of_int size /. Bounds.skeleton_size ~n:plan.Plan.n ~d:plan.Plan.d;
      components = !ncomp;
      rejoined = !rejoined_count;
    }
  in
  if Obs.Metrics.enabled metrics then
    List.iter
      (fun c ->
        Obs.Metrics.incr
          (Obs.Metrics.counter metrics "certify_checks"
             ~labels:
               [
                 ("check", c.name);
                 ("outcome", (if c.ok then "pass" else "fail"));
               ]))
      verdict.checks;
  verdict

(* ------------------------------------------------------------------ *)

let pp fmt v =
  Format.fprintf fmt
    "certification: %s (%d live vertices, %d pairs, size ratio %.2f%s%s)"
    (if ok v then "PASS" else "FAIL")
    v.live v.pairs v.size_ratio
    (if v.components > 1 then Printf.sprintf ", %d components" v.components
     else "")
    (if v.rejoined > 0 then Printf.sprintf ", %d rejoined" v.rejoined else "");
  List.iter
    (fun c ->
      Format.fprintf fmt "@.  [%s] %s: %s" (if c.ok then "ok" else "FAIL") c.name
        c.detail)
    v.checks

let pp_json fmt v =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "{\"ok\": %b, \"checks\": [" (ok v));
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf "{\"name\": %S, \"ok\": %b, \"detail\": %S}" c.name c.ok
           c.detail))
    v.checks;
  Buffer.add_string b
    (Printf.sprintf
       "], \"live\": %d, \"pairs\": %d, \"max_stretch\": %.4f, \"stretch_bound\": \
        %.4f, \"size_ratio\": %.4f, \"components\": %d, \"rejoined\": %d}"
       v.live v.pairs v.max_stretch v.stretch_bound v.size_ratio v.components
       v.rejoined);
  Format.pp_print_string fmt (Buffer.contents b)
