module Sim = Distnet.Sim

type status = Pass | Warn

type bound = {
  name : string;
  observed : float;
  allowed : float;
  status : status;
  detail : string;
}

type report = { n : int; d : int; eps : float; bounds : bound list }

let ok r = List.for_all (fun b -> b.status = Pass) r.bounds

let rounds_slack = 64.
let size_slack = 3.
let words_framing = 2
let words_arq_overhead = 3

let check name ~observed ~allowed ~detail =
  {
    name;
    observed;
    allowed;
    status = (if observed <= allowed then Pass else Warn);
    detail;
  }

let run ?(arq = false) ?spanner_edges ?(phase_rounds = []) ~(plan : Plan.t)
    ~(stats : Sim.stats) () =
  let n = plan.Plan.n and d = plan.Plan.d and eps = plan.Plan.eps in
  let time_bound = Bounds.skeleton_time ~n ~d ~eps in
  let rounds_allowed = rounds_slack *. Stdlib.max 1. time_bound in
  let rounds_detail =
    Printf.sprintf "%.0f x Theorem 2 time bound %.1f" rounds_slack time_bound
  in
  let words_allowed =
    plan.Plan.word_budget + words_framing
    + if arq then words_arq_overhead else 0
  in
  let words_detail =
    if arq then
      Printf.sprintf "word budget %d + %d framing + %d ARQ"
        plan.Plan.word_budget words_framing words_arq_overhead
    else
      Printf.sprintf "word budget %d + %d framing" plan.Plan.word_budget
        words_framing
  in
  let bounds =
    [
      check "rounds"
        ~observed:(float_of_int stats.Sim.rounds)
        ~allowed:rounds_allowed ~detail:rounds_detail;
      check "max message words"
        ~observed:(float_of_int stats.Sim.max_message_words)
        ~allowed:(float_of_int words_allowed) ~detail:words_detail;
    ]
  in
  let bounds =
    match spanner_edges with
    | None -> bounds
    | Some edges ->
        let size_bound = Bounds.skeleton_size ~n ~d in
        bounds
        @ [
            check "spanner size" ~observed:(float_of_int edges)
              ~allowed:(size_slack *. size_bound)
              ~detail:
                (Printf.sprintf "%.0f x Lemma 6 expectation %.1f" size_slack
                   size_bound);
          ]
  in
  let bounds =
    bounds
    @ List.map
        (fun (phase, r) ->
          check
            (Printf.sprintf "rounds[%s]" phase)
            ~observed:(float_of_int r) ~allowed:rounds_allowed
            ~detail:rounds_detail)
        phase_rounds
  in
  { n; d; eps; bounds }

let pp_num ppf v =
  if Float.is_integer v then Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%.1f" v

let pp ppf r =
  Format.fprintf ppf "bound audit: n=%d D=%d eps=%g@." r.n r.d r.eps;
  List.iter
    (fun b ->
      Format.fprintf ppf "  %s %s: %a %s %a (%s)@."
        (match b.status with Pass -> "PASS" | Warn -> "WARN")
        b.name pp_num b.observed
        (match b.status with Pass -> "<=" | Warn -> ">")
        pp_num b.allowed b.detail)
    r.bounds
