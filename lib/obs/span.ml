(* Causal span log.  Same shape as Metrics: a [t] is either the shared
   no-op sink or a growable registry; every recording operation starts
   with one tag check so the disabled path is free and runs without
   span recording stay byte-identical. *)

type kind = Message | Phase | Call | Cluster | Arq | Retransmit

let kind_name = function
  | Message -> "message"
  | Phase -> "phase"
  | Call -> "call"
  | Cluster -> "cluster"
  | Arq -> "arq"
  | Retransmit -> "retransmit"

let kind_of_name = function
  | "message" -> Some Message
  | "phase" -> Some Phase
  | "call" -> Some Call
  | "cluster" -> Some Cluster
  | "arq" -> Some Arq
  | "retransmit" -> Some Retransmit
  | _ -> None

type status = Open | Delivered | Dropped of string

type record = {
  id : int;
  kind : kind;
  name : string;
  parent : int;
  src : int;
  dst : int;
  words : int;
  start_round : int;
  mutable stop_round : int;
  mutable ls : int;
  mutable ld : int;
  mutable status : status;
}

(* Spans are resolved by id at delivery time, so the registry is a
   growable array rather than a list. *)
type reg = {
  mutable arr : record array;
  mutable len : int;
  mutable clocks : int array;  (* Lamport clock per node id *)
}

type t = Disabled | Reg of reg

let disabled = Disabled

let dummy =
  { id = -1; kind = Message; name = ""; parent = -1; src = -1; dst = -1;
    words = 0; start_round = 0; stop_round = -1; ls = 0; ld = 0;
    status = Open }

let create () = Reg { arr = Array.make 64 dummy; len = 0; clocks = Array.make 16 0 }

let enabled = function Disabled -> false | Reg _ -> true

let add r s =
  if r.len = Array.length r.arr then begin
    let arr = Array.make (2 * r.len) dummy in
    Array.blit r.arr 0 arr 0 r.len;
    r.arr <- arr
  end;
  r.arr.(r.len) <- s;
  r.len <- r.len + 1;
  s.id

let clock r v =
  if v >= Array.length r.clocks then begin
    let n = max (v + 1) (2 * Array.length r.clocks) in
    let clocks = Array.make n 0 in
    Array.blit r.clocks 0 clocks 0 (Array.length r.clocks);
    r.clocks <- clocks
  end;
  r.clocks.(v)

let tick r v =
  let l = clock r v + 1 in
  r.clocks.(v) <- l;
  l

let merge r v ls =
  let l = max (clock r v) ls + 1 in
  r.clocks.(v) <- l;
  l

let message t ~round ~src ~dst ~words =
  match t with
  | Disabled -> -1
  | Reg r ->
      let ls = if src >= 0 then tick r src else 0 in
      add r
        { id = r.len; kind = Message; name = ""; parent = -1; src; dst; words;
          start_round = round; stop_round = -1; ls; ld = 0; status = Open }

let get r id = if id >= 0 && id < r.len then Some r.arr.(id) else None

let deliver t ~round id =
  match t with
  | Disabled -> ()
  | Reg r -> (
      match get r id with
      | Some s when s.status = Open ->
          s.status <- Delivered;
          s.stop_round <- round;
          if s.dst >= 0 then s.ld <- merge r s.dst s.ls
      | _ -> ())

let drop t ~round ~reason id =
  match t with
  | Disabled -> ()
  | Reg r -> (
      match get r id with
      | Some s when s.status = Open ->
          s.status <- Dropped reason;
          s.stop_round <- round
      | _ -> ())

let open_span t ?(parent = -1) ?(src = -1) ?(dst = -1) kind ~name ~round =
  match t with
  | Disabled -> -1
  | Reg r ->
      add r
        { id = r.len; kind; name; parent; src; dst; words = 0;
          start_round = round; stop_round = -1; ls = 0; ld = 0; status = Open }

let close t ~round id =
  match t with
  | Disabled -> ()
  | Reg r -> (
      match get r id with
      | Some s when s.status = Open ->
          s.status <- Delivered;
          s.stop_round <- round
      | _ -> ())

let span t ?(parent = -1) ?(src = -1) ?(dst = -1) kind ~name ~start_round
    ~stop_round =
  match t with
  | Disabled -> -1
  | Reg r ->
      add r
        { id = r.len; kind; name; parent; src; dst; words = 0; start_round;
          stop_round; ls = 0; ld = 0; status = Delivered }

let count = function Disabled -> 0 | Reg r -> r.len

let records = function
  | Disabled -> []
  | Reg r -> List.init r.len (fun i -> r.arr.(i))

(* ------------------------------------------------------------------ *)
(* JSON lines                                                          *)

let to_json s =
  let b = Buffer.create 160 in
  Buffer.add_string b
    (Printf.sprintf {|{"kind":"span","id":%d,"sk":"%s"|} s.id
       (kind_name s.kind));
  if s.name <> "" then Buffer.add_string b (Printf.sprintf {|,"name":%S|} s.name);
  if s.parent >= 0 then
    Buffer.add_string b (Printf.sprintf {|,"parent":%d|} s.parent);
  Buffer.add_string b
    (Printf.sprintf {|,"src":%d,"dst":%d,"words":%d,"start":%d,"stop":%d|}
       s.src s.dst s.words s.start_round s.stop_round);
  if s.ls <> 0 || s.ld <> 0 then
    Buffer.add_string b (Printf.sprintf {|,"ls":%d,"ld":%d|} s.ls s.ld);
  (match s.status with
  | Open -> Buffer.add_string b {|,"status":"open"|}
  | Delivered -> Buffer.add_string b {|,"status":"delivered"|}
  | Dropped reason ->
      Buffer.add_string b
        (Printf.sprintf {|,"status":"dropped","reason":%S|} reason));
  Buffer.add_char b '}';
  Buffer.contents b

let save ?(extra = []) t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        extra;
      match t with
      | Disabled -> ()
      | Reg r ->
          for i = 0 to r.len - 1 do
            output_string oc (to_json r.arr.(i));
            output_char oc '\n'
          done)

let iter_file file f =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      let fail msg line =
        failwith
          (Printf.sprintf "Span.load: %s: line %d: %s: %s" file !lineno msg
             line)
      in
      let req msg = function Some v -> v | None -> raise (Failure msg) in
      try
        while true do
          let raw = input_line ic in
          incr lineno;
          let line =
            let n = String.length raw in
            if n > 0 && raw.[n - 1] = '\r' then String.sub raw 0 (n - 1)
            else raw
          in
          if String.trim line <> "" then
            match Metrics.json_str line "kind" with
            | Some "span" -> (
                try
                  let int k =
                    req (Printf.sprintf "missing field %S" k)
                      (Metrics.json_int line k)
                  in
                  let kind =
                    match Metrics.json_str line "sk" with
                    | Some n -> (
                        match kind_of_name n with
                        | Some k -> k
                        | None ->
                            raise
                              (Failure (Printf.sprintf "unknown span kind %S" n)))
                    | None -> raise (Failure {|missing field "sk"|})
                  in
                  let name =
                    Option.value ~default:"" (Metrics.json_str line "name")
                  in
                  let parent =
                    Option.value ~default:(-1) (Metrics.json_int line "parent")
                  in
                  let ls = Option.value ~default:0 (Metrics.json_int line "ls") in
                  let ld = Option.value ~default:0 (Metrics.json_int line "ld") in
                  let status =
                    match Metrics.json_str line "status" with
                    | Some "open" -> Open
                    | Some "delivered" -> Delivered
                    | Some "dropped" ->
                        Dropped
                          (Option.value ~default:""
                             (Metrics.json_str line "reason"))
                    | Some s ->
                        raise (Failure (Printf.sprintf "unknown status %S" s))
                    | None -> raise (Failure {|missing field "status"|})
                  in
                  f
                    { id = int "id"; kind; name; parent; src = int "src";
                      dst = int "dst"; words = int "words";
                      start_round = int "start"; stop_round = int "stop";
                      ls; ld; status }
                with Failure msg -> fail msg line)
            | Some _ -> ()  (* meta header or foreign line: skip *)
            | None -> fail {|missing field "kind"|} line
        done
      with End_of_file -> ())

let load file =
  let acc = ref [] in
  iter_file file (fun s -> acc := s :: !acc);
  List.rev !acc
