type phase_row = {
  phase : string;
  rounds : int;
  messages : int;
  words : int;
  max_words : int;
}

let empty_row phase = { phase; rounds = 0; messages = 0; words = 0; max_words = 0 }

let phase_rows samples =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  let row phase =
    match Hashtbl.find_opt tbl phase with
    | Some r -> r
    | None ->
        order := phase :: !order;
        let r = ref (empty_row phase) in
        Hashtbl.replace tbl phase r;
        r
  in
  List.iter
    (fun (s : Metrics.sample) ->
      match List.assoc_opt "phase" s.labels with
      | None -> ()
      | Some phase -> (
          let v =
            match s.value with
            | Metrics.Counter v | Metrics.Gauge v -> v
            | Metrics.Histogram h -> h.sum
          in
          match s.name with
          | "phase_rounds" ->
              let r = row phase in
              r := { !r with rounds = !r.rounds + v }
          | "phase_messages" ->
              let r = row phase in
              r := { !r with messages = !r.messages + v }
          | "phase_words" ->
              let r = row phase in
              r := { !r with words = !r.words + v }
          | "phase_max_message_words" ->
              let r = row phase in
              r := { !r with max_words = Stdlib.max !r.max_words v }
          | _ -> ()))
    samples;
  List.rev_map (fun phase -> !(Hashtbl.find tbl phase)) !order

let totals rows =
  List.fold_left
    (fun acc r ->
      {
        acc with
        rounds = acc.rounds + r.rounds;
        messages = acc.messages + r.messages;
        words = acc.words + r.words;
        max_words = Stdlib.max acc.max_words r.max_words;
      })
    (empty_row "total") rows

let pp_phase_table ppf samples =
  match phase_rows samples with
  | [] -> Format.fprintf ppf "(no phase metrics recorded)@."
  | rows ->
      let line { phase; rounds; messages; words; max_words } =
        Format.fprintf ppf "%-22s %8d %10d %10d %10d@." phase rounds messages
          words max_words
      in
      Format.fprintf ppf "%-22s %8s %10s %10s %10s@." "phase" "rounds"
        "messages" "words" "max_words";
      List.iter line rows;
      line (totals rows)

type serve_row = {
  generation : int;
  fresh : int;
  stale : int;
  latency : Metrics.hist_snapshot option;
}

let serve_rows samples =
  let tbl = Hashtbl.create 4 in
  let row gen =
    match Hashtbl.find_opt tbl gen with
    | Some r -> r
    | None ->
        let r = ref { generation = gen; fresh = 0; stale = 0; latency = None } in
        Hashtbl.replace tbl gen r;
        r
  in
  List.iter
    (fun (s : Metrics.sample) ->
      match List.assoc_opt "generation" s.labels with
      | None -> ()
      | Some gen -> (
          match int_of_string_opt gen with
          | None -> ()
          | Some gen -> (
              match (s.name, s.value) with
              | "serve_answers", (Metrics.Counter v | Metrics.Gauge v) -> (
                  let r = row gen in
                  match List.assoc_opt "freshness" s.labels with
                  | Some "stale" -> r := { !r with stale = !r.stale + v }
                  | _ -> r := { !r with fresh = !r.fresh + v })
              | "serve_latency_ns", Metrics.Histogram h ->
                  let r = row gen in
                  r := { !r with latency = Some h }
              | _ -> ())))
    samples;
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> compare a.generation b.generation)

let hist_percentile (h : Metrics.hist_snapshot) p =
  if h.count = 0 then nan
  else if Array.length h.samples > 0 then
    Util.Stats.exact_percentile_of_sorted h.samples p
  else begin
    (* Nearest-rank over the bucket counts; report the bucket's upper
       bound (the tightest value the serialized form can certify). *)
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (p *. float_of_int h.count)))
    in
    let rec scan i seen =
      if i >= Array.length h.buckets then float_of_int h.hmax
      else
        let seen = seen + h.buckets.(i) in
        if seen >= rank then
          if i = Metrics.num_buckets - 1 then float_of_int h.hmax
          else float_of_int (Metrics.bucket_upper i)
        else scan (i + 1) seen
    in
    scan 0 0
  end

let pp_labels ppf = function
  | [] -> ()
  | labels ->
      Format.fprintf ppf "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> k ^ "=" ^ v) labels))

let pp_num ppf v =
  if Float.is_nan v then Format.fprintf ppf "-"
  else if Float.is_integer v then Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%.2f" v

let pp_serve_table ppf samples =
  match serve_rows samples with
  | [] -> Format.fprintf ppf "(no serve metrics recorded)@."
  | rows ->
      let scalar name =
        List.fold_left
          (fun acc (s : Metrics.sample) ->
            match s.value with
            | (Metrics.Counter v | Metrics.Gauge v) when s.name = name ->
                acc + v
            | _ -> acc)
          0 samples
      in
      Format.fprintf ppf "%-10s %10s %10s %10s %10s %10s@." "generation"
        "answers" "stale" "p50_ns" "p90_ns" "p99_ns";
      let num v =
        if Float.is_nan v then "-"
        else if Float.is_integer v then Printf.sprintf "%.0f" v
        else Printf.sprintf "%.2f" v
      in
      List.iter
        (fun r ->
          let pct p =
            match r.latency with
            | Some h -> hist_percentile h p
            | None -> nan
          in
          Format.fprintf ppf "%-10d %10d %10d %10s %10s %10s@." r.generation
            (r.fresh + r.stale) r.stale
            (num (pct 0.5)) (num (pct 0.9)) (num (pct 0.99)))
        rows;
      Format.fprintf ppf "failed=%d swaps=%d@." (scalar "serve_failed")
        (scalar "serve_swaps")

(* ------------------------------------------------------------------ *)
(* Profile tables *)

let ms ns = Printf.sprintf "%.2f" (float_of_int ns /. 1e6)

let pp_profile_table ?(top = 3) ppf
    ((rows : Prof.row list), (rounds : Prof.round_sample list)) =
  let phases = List.filter (fun (r : Prof.row) -> r.Prof.kind = Prof.Phase) rows in
  let regions = List.filter (fun (r : Prof.row) -> r.Prof.kind = Prof.Region) rows in
  if rows = [] then Format.fprintf ppf "(no profile rows recorded)@."
  else begin
    if phases <> [] then begin
      Format.fprintf ppf "%-22s %8s %10s %12s %12s %7s %7s@." "phase" "count"
        "wall_ms" "minor_words" "major_words" "minors" "majors";
      let tot = ref (0, 0., 0, 0, 0, 0) in
      List.iter
        (fun (r : Prof.row) ->
          let c, w, mi, ma, mc, jc = !tot in
          tot :=
            ( c + r.Prof.count,
              w +. float_of_int r.Prof.wall_ns,
              mi + r.Prof.minor_words,
              ma + r.Prof.major_words,
              mc + r.Prof.minors,
              jc + r.Prof.majors );
          Format.fprintf ppf "%-22s %8d %10s %12d %12d %7d %7d@." r.Prof.name
            r.Prof.count (ms r.Prof.wall_ns) r.Prof.minor_words
            r.Prof.major_words r.Prof.minors r.Prof.majors)
        phases;
      let c, w, mi, ma, mc, jc = !tot in
      Format.fprintf ppf "%-22s %8d %10s %12d %12d %7d %7d@." "total" c
        (ms (int_of_float w)) mi ma mc jc
    end;
    if regions <> [] then begin
      if phases <> [] then Format.fprintf ppf "@.";
      Format.fprintf ppf "%-22s %8s %10s %10s %12s %12s %7s@." "region" "count"
        "total_ms" "self_ms" "minor_words" "self_minor" "majors";
      List.iter
        (fun (r : Prof.row) ->
          Format.fprintf ppf "%-22s %8d %10s %10s %12d %12d %7d@." r.Prof.name
            r.Prof.count (ms r.Prof.wall_ns) (ms r.Prof.self_ns)
            r.Prof.minor_words r.Prof.self_minor_words r.Prof.majors)
        regions;
      (* Top allocation sites: regions ranked by the words they
         allocated themselves (minor + major, children excluded).  The
         ranking is stable run to run — GC word counts are exact for a
         deterministic program — unlike the wall-clock columns. *)
      let sites =
        List.sort
          (fun (a : Prof.row) (b : Prof.row) ->
            compare
              (b.Prof.self_minor_words + b.Prof.self_major_words)
              (a.Prof.self_minor_words + a.Prof.self_major_words))
          regions
      in
      Format.fprintf ppf "@.top %d allocation sites (self minor+major words):@."
        (Stdlib.min top (List.length sites));
      List.iteri
        (fun i (r : Prof.row) ->
          if i < top then
            Format.fprintf ppf "  %d. %-20s %12d words@." (i + 1) r.Prof.name
              (r.Prof.self_minor_words + r.Prof.self_major_words))
        sites
    end;
    match rounds with
    | [] -> ()
    | _ ->
        let n = List.length rounds in
        let last = List.nth rounds (n - 1) in
        let peak =
          List.fold_left
            (fun acc (s : Prof.round_sample) ->
              Stdlib.max acc s.Prof.r_minor_words)
            0 rounds
        in
        Format.fprintf ppf
          "@.%d round samples, final heap %d words, peak %d minor words/round@."
          n last.Prof.heap_words peak
  end

let pp_summary ppf samples =
  List.iter
    (fun (s : Metrics.sample) ->
      match s.value with
      | Metrics.Counter v ->
          Format.fprintf ppf "%s%a = %d@." s.name pp_labels s.labels v
      | Metrics.Gauge v ->
          Format.fprintf ppf "%s%a = %d (gauge)@." s.name pp_labels s.labels v
      | Metrics.Histogram h ->
          if h.count = 0 then
            Format.fprintf ppf "%s%a: count=0@." s.name pp_labels s.labels
          else
            Format.fprintf ppf
              "%s%a: count=%d sum=%d min=%d max=%d p50=%a p90=%a p99=%a@."
              s.name pp_labels s.labels h.count h.sum h.hmin h.hmax pp_num
              (hist_percentile h 0.5) pp_num (hist_percentile h 0.9) pp_num
              (hist_percentile h 0.99))
    samples
