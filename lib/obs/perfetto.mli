(** Chrome trace-event export of a {!Span} log, loadable in
    [ui.perfetto.dev] or [chrome://tracing].

    One simulated round is rendered as 1000 µs.  Tracks: process 0
    holds the structural timeline (phases and Expand calls on thread 0,
    so calls nest around their phases), process 1 one thread per
    sending node for message spans, process 2 cluster lifetimes (one
    thread per center), process 3 ARQ exchanges and retransmission
    point-events.  Open spans (never delivered) are exported with zero
    duration and their status in [args].

    When {!Prof} round samples are supplied, process 4 carries counter
    tracks ([ph:"C"]: heap words, minor words and minor collections
    per round) so machine cost lines up with the span timeline. *)

val export : ?counters:Prof.round_sample list -> Span.record list -> string -> int
(** [export records file] writes [{"traceEvents":[...]}] and returns
    the number of events written (spans plus track-name metadata plus
    counter samples). *)
