(** Attribution scopes over a {!Metrics} registry.

    A scope is a registry plus a set of labels that every instrument
    created through it carries.  Instrumented code takes a scope and
    refines it — [Scope.phase sc "wave"], [Scope.node sc 7],
    [Scope.cluster sc c] — so the metric names stay flat while the
    attribution lives in labels.  Refining the no-op scope is free and
    yields the no-op scope. *)

type t

val disabled : t
(** Scope over {!Metrics.disabled}: all instruments are no-ops. *)

val of_registry : Metrics.t -> t
(** Root scope, no labels. *)

val registry : t -> Metrics.t
val labels : t -> Metrics.labels
val enabled : t -> bool

val labeled : t -> Metrics.labels -> t
(** Add labels; a duplicate key overrides the inherited binding. *)

val phase : t -> string -> t
(** [labeled t ["phase", p]]. *)

val node : t -> int -> t
(** [labeled t ["node", string_of_int id]]. *)

val cluster : t -> int -> t
(** [labeled t ["cluster", string_of_int center]]. *)

val counter : t -> string -> Metrics.counter
val gauge : t -> string -> Metrics.gauge
val histogram : t -> string -> Metrics.histogram
