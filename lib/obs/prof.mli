(** Allocation & time profiling sink: per-phase and per-region cost
    attribution over real machine resources.

    {!Metrics} and {!Span} measure {e model} cost — rounds, messages,
    words, Lamport time.  This sink measures what the machine actually
    pays to simulate them: monotonic wall-clock nanoseconds and the
    GC's allocation counters ([Gc.quick_stat]: minor/major words,
    minor/major collections), sampled at region, phase, and round
    boundaries.  It follows the same design rules as the other sinks:

    - {b Zero cost when disabled.}  {!disabled} is a shared no-op sink
      and the default {!current} ambient sink; every operation on it
      returns after one tag check, and no clock or [Gc.quick_stat]
      call ever runs.  Runs without a profiling flag stay
      byte-identical (cram-pinned).
    - {b Deterministic structure, advisory values.}  Row {e names},
      their creation order, and the number of round samples are
      deterministic for a deterministic program; the measured
      nanoseconds and word counts are machine-dependent.  GC counters
      are exact (the runtime counts every allocated word); wall-clock
      is advisory (scheduler noise).  Consumers must treat values as
      measurements, never pin them.
    - {b Joinable attribution.}  {!phase} is called at exactly the
      same boundaries as the metrics [phase_*] counters
      ({!Spanner.Skeleton_dist}'s [record_phase]), so profile phase
      rows join the metrics phase table by name.

    Unlike Metrics/Span, the sink is ambient ({!set_current}): the hot
    paths it instruments (engine deliver loop, envelope allocation,
    ARQ timer sweep, query answering) would otherwise need a threading
    of one more argument through every layer.  The ambient default is
    {!disabled}; enabling is always an explicit flag. *)

type t
(** A profile registry, or the shared no-op sink. *)

val disabled : t
(** The no-op sink: records nothing, samples nothing. *)

val create : unit -> t
(** A fresh enabled registry.  Creation takes the initial clock/GC
    sample that the first {!phase} and {!round_mark} deltas are
    measured against. *)

val enabled : t -> bool
(** [false] exactly for {!disabled}. *)

val set_current : t -> unit
(** Install [t] as the ambient sink read by {!current}.  Callers that
    enable profiling must restore {!disabled} afterwards. *)

val current : unit -> t
(** The ambient sink; {!disabled} unless a profiling flag installed a
    live one. *)

(** {1 Regions}

    A region is a named, properly nested interval of execution
    ([enter]/[leave], or the scoped {!region}).  Each distinct name
    accumulates one row: total (inclusive) and self (exclusive of
    nested regions) wall time and allocation.  Mismatched
    [enter]/[leave] pairs are a programming error; {!leave} on an
    empty stack is ignored. *)

val enter : t -> string -> unit
(** Open a region.  On the disabled sink this is one tag check — safe
    on per-message hot paths. *)

val leave : t -> unit
(** Close the innermost open region, attributing the interval since
    its {!enter}. *)

val region : t -> string -> (unit -> 'a) -> 'a
(** [region t name f] = {!enter}; [f ()]; {!leave}, exception-safe.
    Allocates a closure at the call site — use bare [enter]/[leave]
    where even the disabled path must not allocate. *)

(** {1 Phases}

    A phase mark attributes {e everything} since the previous mark (or
    registry creation) to a named phase row — the profiling twin of
    the metrics [phase_*] delta discipline.  Phase rows have
    [self = total] by construction. *)

val phase : t -> string -> unit

(** {1 Round samples}

    One sample per simulated round, for the Perfetto counter tracks:
    the live heap size and the allocation activity since the previous
    round mark. *)

val round_mark : t -> round:int -> unit

(** {1 Rows} *)

type kind = Phase | Region

type row = {
  kind : kind;
  name : string;
  count : int;  (** phase marks / region entries *)
  wall_ns : int;  (** total (inclusive) wall time *)
  self_ns : int;  (** exclusive of nested regions; [= wall_ns] for phases *)
  minor_words : int;  (** total words allocated in the minor heap *)
  self_minor_words : int;
  major_words : int;  (** total words allocated in the major heap,
                          promotions included *)
  self_major_words : int;
  minors : int;  (** minor collections during the row's intervals *)
  majors : int;  (** major collection cycles *)
}

type round_sample = {
  round : int;
  heap_words : int;  (** major heap size at the round boundary *)
  r_minor_words : int;  (** words allocated during this round *)
  r_minors : int;  (** minor collections during this round *)
}

val rows : t -> row list
(** Every row in creation order (like {!Metrics.snapshot}). *)

val round_samples : t -> round_sample list
(** Round samples in recording order. *)

(** {1 Persistence (JSON lines)}

    Same hand-rolled single-line JSON as Trace/Metrics/Span, and the
    same structured parse-error contract as {!Distnet.Trace}: a
    malformed line raises {!Parse_error} naming file and line. *)

exception Parse_error of { file : string; line : int; msg : string }

val row_to_json : row -> string
val round_to_json : round_sample -> string

val save : ?extra:string list -> t -> string -> unit
(** Write [extra] lines (a run's meta header), then one line per row,
    then one line per round sample. *)

type item = Row of row | Round of round_sample

val iter_file : string -> (item -> unit) -> unit
(** Stream a profile file without materializing it.  Lines whose
    ["kind"] is neither ["prof"] nor ["prof_round"] (e.g. a meta
    header) are skipped; blank lines and CRLF endings are tolerated.
    @raise Parse_error on a malformed line. *)

val load : string -> row list * round_sample list
