type t = { reg : Metrics.t; lbls : Metrics.labels }

let disabled = { reg = Metrics.disabled; lbls = [] }
let of_registry reg = { reg; lbls = [] }
let registry t = t.reg
let labels t = t.lbls
let enabled t = Metrics.enabled t.reg

let labeled t extra =
  if not (Metrics.enabled t.reg) then t
  else
    (* Later bindings of a key shadow inherited ones; Metrics.canon
       keeps the last, so append the refinement. *)
    { t with lbls = t.lbls @ extra }

let phase t p = labeled t [ ("phase", p) ]
let node t id = labeled t [ ("node", string_of_int id) ]
let cluster t c = labeled t [ ("cluster", string_of_int c) ]
let counter t name = Metrics.counter t.reg ~labels:t.lbls name
let gauge t name = Metrics.gauge t.reg ~labels:t.lbls name
let histogram t name = Metrics.histogram t.reg ~labels:t.lbls name
