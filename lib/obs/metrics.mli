(** Labeled metrics registry: counters, gauges, and fixed-bucket
    histograms, with deterministic JSONL snapshots.

    The registry is the simulator stack's one measurement surface:
    {!Distnet.Sim} (per-round and per-link traffic), the ARQ layer
    (retransmissions, ack latency), the skeleton construction
    (per-phase cost), and the certifier (audit outcomes) all record
    into one of these.  Design rules:

    - {b Zero cost when disabled.}  {!disabled} is a shared no-op sink:
      every instrument created from it is a no-op value and every
      operation on such an instrument returns immediately.
      Instrumented code holds instrument handles, so the disabled path
      costs one tag check — runs without metrics stay byte-identical
      to uninstrumented ones.
    - {b Deterministic output.}  Instruments are snapshotted in
      creation order, labels are kept key-sorted, and histograms use
      fixed log-scale (power-of-two) buckets — never adaptive ones —
      so two runs of the same deterministic program produce the same
      JSONL bytes.
    - {b Exactness where it is cheap.}  Histograms additionally retain
      their raw observations, so in-process consumers (the per-phase
      summary table) can print exact p50/p90/p99 via {!Util.Stats};
      only the bucketized form is serialized.

    An instrument is identified by its name {e and} its label set:
    asking twice for the same (name, labels) pair returns the same
    underlying cell (this is what {!Scope} relies on), while the same
    name under different labels is a distinct time series. *)

type t
(** A registry, or the shared no-op sink. *)

val disabled : t
(** The no-op sink: instruments created from it record nothing and
    {!snapshot} is empty. *)

val create : unit -> t
(** A fresh, enabled, empty registry. *)

val enabled : t -> bool
(** [false] exactly for {!disabled}. *)

type labels = (string * string) list
(** Attribution labels, e.g. [["phase", "exchange"]].  Canonicalized
    to key-sorted order; a duplicate key keeps the last binding. *)

(** {1 Instruments} *)

type counter

val counter : t -> ?labels:labels -> string -> counter
(** Find-or-create.  @raise Invalid_argument if the (name, labels)
    pair already names an instrument of another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> ?labels:labels -> string -> gauge
val set : gauge -> int -> unit

val set_max : gauge -> int -> unit
(** Keep the maximum of all [set_max] values (and any earlier {!set}). *)

val gauge_value : gauge -> int

type histogram

val histogram : t -> ?labels:labels -> string -> histogram
val observe : histogram -> int -> unit

(** {1 Buckets}

    [num_buckets] fixed buckets on a power-of-two scale: bucket [0]
    holds observations [<= 1] (including non-positive ones), bucket
    [i] holds [2^(i-1) < v <= 2^i], and the last bucket is unbounded
    above. *)

val num_buckets : int

val bucket_index : int -> int
(** The bucket an observation lands in. *)

val bucket_upper : int -> int
(** Inclusive upper bound of a bucket; [max_int] for the last. *)

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : int;
  hmin : int;  (** meaningless when [count = 0] *)
  hmax : int;
  buckets : int array;  (** length {!num_buckets} *)
  samples : float array;  (** raw observations, ascending; [[||]] for a
                              snapshot parsed back from JSONL *)
}

type value = Counter of int | Gauge of int | Histogram of hist_snapshot
type sample = { name : string; labels : labels; value : value }

val snapshot : t -> sample list
(** Every instrument, in creation order. *)

val find : sample list -> ?labels:labels -> string -> sample option

(** {1 Persistence (JSON lines)} *)

val to_json : sample -> string
(** One JSON object, [{"kind":"metric",...}]; histograms serialize
    count/sum/min/max and the bucket array (trailing zeros trimmed),
    not the raw samples. *)

val save : ?extra:string list -> t -> string -> unit
(** Write [extra] lines (e.g. a run's meta header) followed by one
    line per instrument. *)

val load : string -> sample list
(** Parse a file of {!to_json} lines.  Lines whose ["kind"] is not
    ["metric"] (e.g. a meta header) are skipped; blank lines and CRLF
    endings are tolerated like {!Distnet.Trace.load}.
    @raise Failure on a malformed metric line, naming file and line. *)

(** {1 JSON field helpers}

    Shared single-line field extraction (same hand-rolled format as
    the trace log — no JSON dependency), exposed so the CLI can read
    and write its own meta lines consistently. *)

val json_int : string -> string -> int option
(** [json_int line field] *)

val json_float : string -> string -> float option
val json_str : string -> string -> string option
