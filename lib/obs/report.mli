(** Pretty-printers over metric snapshots.

    The per-phase table is the contract between the skeleton
    construction's instrumentation and the CLI: phases record
    [phase_rounds] / [phase_messages] / [phase_words] counters and a
    [phase_max_message_words] gauge under a ["phase"] label, and
    {!pp_phase_table} renders them with a totals row whose
    rounds/messages/words sums equal the run's [Trace.stats] (max
    words is the max over phases). *)

type phase_row = {
  phase : string;
  rounds : int;
  messages : int;
  words : int;
  max_words : int;
}

val phase_rows : Metrics.sample list -> phase_row list
(** Rows in first-appearance order of the ["phase"] label. *)

val totals : phase_row list -> phase_row
(** Sum of rounds/messages/words, max of max_words; phase ["total"]. *)

val pp_phase_table : Format.formatter -> Metrics.sample list -> unit
(** Fixed-width per-phase table plus totals row; prints a one-line
    notice when the snapshot holds no phase metrics. *)

(** {1 Serve tables}

    The serving subsystem records [serve_answers] counters (labels
    ["generation"] and ["freshness" = "fresh"|"stale"]) and a
    [serve_latency_ns] histogram per ["generation"], plus flat
    [serve_failed] / [serve_swaps] counters. *)

type serve_row = {
  generation : int;
  fresh : int;
  stale : int;
  latency : Metrics.hist_snapshot option;
}

val serve_rows : Metrics.sample list -> serve_row list
(** Per-generation serve rows, ascending generation. *)

val pp_serve_table : Format.formatter -> Metrics.sample list -> unit
(** Per-generation answers/staleness plus latency p50/p90/p99 (ns) and
    the failed/swaps totals; one-line notice when the snapshot holds no
    serve metrics. *)

val pp_summary : Format.formatter -> Metrics.sample list -> unit
(** Every sample, one line each, in snapshot order.  Histograms show
    count/sum/min/max and exact p50/p90/p99 (from raw samples when
    present, else nearest-rank over the serialized buckets, reported
    as the bucket's upper bound). *)

val hist_percentile : Metrics.hist_snapshot -> float -> float
(** Exact when raw samples are present; bucket upper bound otherwise;
    [nan] when empty. *)

(** {1 Profile tables} *)

val pp_profile_table :
  ?top:int ->
  Format.formatter ->
  Prof.row list * Prof.round_sample list ->
  unit
(** Phase table (joins {!pp_phase_table} by phase name), region table
    with self/total columns, top-[top] (default 3) allocation sites
    ranked by self minor+major words, and a round-sample summary line.
    Row names and order are deterministic; the measured values are
    machine-dependent (word counts exact, wall-clock advisory). *)
