(* Labeled metrics registry.  See metrics.mli for the design rules
   (no-op sink, deterministic snapshots, fixed log-scale buckets). *)

type labels = (string * string) list

(* Canonical label form: key-sorted, last binding of a duplicate key
   winning — so ["a","1"; "a","2"] and ["a","2"] are the same series. *)
let canon (labels : labels) : labels =
  let sorted = List.stable_sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec dedup = function
    | (k, _) :: ((k', _) :: _ as rest) when k = k' -> dedup rest
    | kv :: rest -> kv :: dedup rest
    | [] -> []
  in
  dedup sorted

let label_key labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

(* ------------------------------------------------------------------ *)
(* Buckets: power-of-two scale. *)

let num_buckets = 31

let bucket_index v =
  if v <= 1 then 0
  else begin
    (* smallest i with v <= 2^i, capped at the unbounded last bucket *)
    let rec go i bound =
      if v <= bound || i = num_buckets - 1 then i else go (i + 1) (2 * bound)
    in
    go 1 2
  end

let bucket_upper i =
  if i < 0 || i >= num_buckets then invalid_arg "Metrics.bucket_upper"
  else if i = num_buckets - 1 then max_int
  else 1 lsl i

(* ------------------------------------------------------------------ *)
(* Cells. *)

type cell = { mutable v : int }

type hist = {
  mutable count : int;
  mutable sum : int;
  mutable hmin : int;
  mutable hmax : int;
  hbuckets : int array;
  mutable rev_samples : int list;
}

type counter = CNoop | C of cell
type gauge = GNoop | G of cell
type histogram = HNoop | H of hist
type instrument = I_counter of cell | I_gauge of cell | I_hist of hist

type reg = {
  tbl : (string, instrument) Hashtbl.t;
  (* creation order, newest first; snapshot reverses *)
  mutable rev_order : (string * labels * instrument) list;
}

type t = Disabled | Reg of reg

let disabled = Disabled
let create () = Reg { tbl = Hashtbl.create 64; rev_order = [] }
let enabled = function Disabled -> false | Reg _ -> true

let kind_name = function
  | I_counter _ -> "counter"
  | I_gauge _ -> "gauge"
  | I_hist _ -> "histogram"

let intern r ~name ~labels ~make ~select ~want =
  let labels = canon labels in
  let key = name ^ "\x00" ^ label_key labels in
  match Hashtbl.find_opt r.tbl key with
  | Some i -> (
      match select i with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %s{%s} already registered as a %s, not a %s"
               name (label_key labels) (kind_name i) want))
  | None ->
      let i = make () in
      Hashtbl.replace r.tbl key i;
      r.rev_order <- (name, labels, i) :: r.rev_order;
      (match select i with Some x -> x | None -> assert false)

let counter t ?(labels = []) name =
  match t with
  | Disabled -> CNoop
  | Reg r ->
      C
        (intern r ~name ~labels ~want:"counter"
           ~make:(fun () -> I_counter { v = 0 })
           ~select:(function I_counter c -> Some c | _ -> None))

let incr = function CNoop -> () | C c -> c.v <- c.v + 1
let add c k = match c with CNoop -> () | C c -> c.v <- c.v + k
let counter_value = function CNoop -> 0 | C c -> c.v

let gauge t ?(labels = []) name =
  match t with
  | Disabled -> GNoop
  | Reg r ->
      G
        (intern r ~name ~labels ~want:"gauge"
           ~make:(fun () -> I_gauge { v = 0 })
           ~select:(function I_gauge c -> Some c | _ -> None))

let set g k = match g with GNoop -> () | G c -> c.v <- k
let set_max g k = match g with GNoop -> () | G c -> if k > c.v then c.v <- k
let gauge_value = function GNoop -> 0 | G c -> c.v

let histogram t ?(labels = []) name =
  match t with
  | Disabled -> HNoop
  | Reg r ->
      H
        (intern r ~name ~labels ~want:"histogram"
           ~make:(fun () ->
             I_hist
               {
                 count = 0;
                 sum = 0;
                 hmin = max_int;
                 hmax = min_int;
                 hbuckets = Array.make num_buckets 0;
                 rev_samples = [];
               })
           ~select:(function I_hist h -> Some h | _ -> None))

let observe h v =
  match h with
  | HNoop -> ()
  | H h ->
      h.count <- h.count + 1;
      h.sum <- h.sum + v;
      if v < h.hmin then h.hmin <- v;
      if v > h.hmax then h.hmax <- v;
      let b = bucket_index v in
      h.hbuckets.(b) <- h.hbuckets.(b) + 1;
      h.rev_samples <- v :: h.rev_samples

(* ------------------------------------------------------------------ *)
(* Snapshots. *)

type hist_snapshot = {
  count : int;
  sum : int;
  hmin : int;
  hmax : int;
  buckets : int array;
  samples : float array;
}

type value = Counter of int | Gauge of int | Histogram of hist_snapshot
type sample = { name : string; labels : labels; value : value }

let snap_hist (h : hist) =
  let samples =
    Array.of_list (List.rev_map float_of_int h.rev_samples)
  in
  Array.sort compare samples;
  {
    count = h.count;
    sum = h.sum;
    hmin = (if h.count = 0 then 0 else h.hmin);
    hmax = (if h.count = 0 then 0 else h.hmax);
    buckets = Array.copy h.hbuckets;
    samples;
  }

let snapshot = function
  | Disabled -> []
  | Reg r ->
      List.rev_map
        (fun (name, labels, i) ->
          let value =
            match i with
            | I_counter c -> Counter c.v
            | I_gauge c -> Gauge c.v
            | I_hist h -> Histogram (snap_hist h)
          in
          { name; labels; value })
        r.rev_order

let find samples ?labels name =
  let labels = Option.map canon labels in
  List.find_opt
    (fun s ->
      s.name = name
      && match labels with None -> true | Some l -> s.labels = l)
    samples

(* ------------------------------------------------------------------ *)
(* JSON lines.  Hand-rolled like Trace: the format is small and fixed. *)

let labels_to_json labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf {|%S:%S|} k v) labels)
  ^ "}"

let to_json s =
  let head =
    Printf.sprintf {|{"kind":"metric","type":"%s","name":%S,"labels":%s|}
      (match s.value with
      | Counter _ -> "counter"
      | Gauge _ -> "gauge"
      | Histogram _ -> "histogram")
      s.name
      (labels_to_json s.labels)
  in
  match s.value with
  | Counter v | Gauge v -> Printf.sprintf {|%s,"value":%d}|} head v
  | Histogram h ->
      (* Trim trailing zero buckets: the bucket scale is fixed, so the
         array length carries no information past the last hit. *)
      let last = ref (-1) in
      Array.iteri (fun i c -> if c > 0 then last := i) h.buckets;
      let buckets =
        Array.to_list (Array.sub h.buckets 0 (!last + 1))
        |> List.map string_of_int |> String.concat ","
      in
      Printf.sprintf {|%s,"count":%d,"sum":%d,"min":%d,"max":%d,"buckets":[%s]}|}
        head h.count h.sum h.hmin h.hmax buckets

let save ?(extra = []) t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        extra;
      List.iter
        (fun s ->
          output_string oc (to_json s);
          output_char oc '\n')
        (snapshot t))

(* Field extraction from one of our own JSON lines (same approach as
   Trace: substring scan, no JSON dependency). *)

let find_sub line needle =
  let nl = String.length needle and ll = String.length line in
  let rec at i =
    if i + nl > ll then None
    else if String.sub line i nl = needle then Some (i + nl)
    else at (i + 1)
  in
  at 0

let json_int line name =
  match find_sub line (Printf.sprintf {|"%s":|} name) with
  | None -> None
  | Some start ->
      let stop = ref start in
      let ll = String.length line in
      while
        !stop < ll
        && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
      do
        stop := !stop + 1
      done;
      if !stop = start then None
      else Some (int_of_string (String.sub line start (!stop - start)))

let json_float line name =
  match find_sub line (Printf.sprintf {|"%s":|} name) with
  | None -> None
  | Some start ->
      let stop = ref start in
      let ll = String.length line in
      while
        !stop < ll
        &&
        match line.[!stop] with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      do
        stop := !stop + 1
      done;
      if !stop = start then None
      else float_of_string_opt (String.sub line start (!stop - start))

let json_str line name =
  match find_sub line (Printf.sprintf {|"%s":"|} name) with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

(* Parse the labels object: our own writer emits only simple keys and
   values (no escapes), so a quote scan suffices. *)
let parse_labels line =
  match find_sub line {|"labels":{|} with
  | None -> []
  | Some start -> (
      match String.index_from_opt line (start - 1) '}' with
      | None -> []
      | Some stop ->
          let body = String.sub line start (stop - start) in
          if String.trim body = "" then []
          else
            String.split_on_char ',' body
            |> List.filter_map (fun kv ->
                   match String.split_on_char ':' kv with
                   | [ k; v ] ->
                       let unq s =
                         let s = String.trim s in
                         let l = String.length s in
                         if l >= 2 && s.[0] = '"' && s.[l - 1] = '"' then
                           String.sub s 1 (l - 2)
                         else s
                       in
                       Some (unq k, unq v)
                   | _ -> None))

let parse_buckets line =
  match find_sub line {|"buckets":[|} with
  | None -> [||]
  | Some start -> (
      match String.index_from_opt line start ']' with
      | None -> [||]
      | Some stop ->
          let body = String.sub line start (stop - start) in
          let arr = Array.make num_buckets 0 in
          if String.trim body <> "" then
            List.iteri
              (fun i s ->
                if i < num_buckets then arr.(i) <- int_of_string (String.trim s))
              (String.split_on_char ',' body);
          arr)

let load file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rev = ref [] and lineno = ref 0 in
      let fail msg line =
        failwith
          (Printf.sprintf "Metrics.load: %s: line %d: %s: %s" file !lineno msg
             line)
      in
      (try
         while true do
           let line = input_line ic in
           lineno := !lineno + 1;
           let line =
             let l = String.length line in
             if l > 0 && line.[l - 1] = '\r' then String.sub line 0 (l - 1)
             else line
           in
           if String.trim line <> "" && json_str line "kind" = Some "metric"
           then begin
             let name =
               match json_str line "name" with
               | Some n -> n
               | None -> fail "missing field \"name\"" line
             in
             let labels = parse_labels line in
             let value =
               match json_str line "type" with
               | Some "counter" -> (
                   match json_int line "value" with
                   | Some v -> Counter v
                   | None -> fail "missing field \"value\"" line)
               | Some "gauge" -> (
                   match json_int line "value" with
                   | Some v -> Gauge v
                   | None -> fail "missing field \"value\"" line)
               | Some "histogram" ->
                   let req f =
                     match json_int line f with
                     | Some v -> v
                     | None ->
                         fail (Printf.sprintf "missing field %S" f) line
                   in
                   Histogram
                     {
                       count = req "count";
                       sum = req "sum";
                       hmin = req "min";
                       hmax = req "max";
                       buckets = parse_buckets line;
                       samples = [||];
                     }
               | _ -> fail "missing or unknown \"type\"" line
             in
             rev := { name; labels; value } :: !rev
           end
         done
       with End_of_file -> ());
      List.rev !rev)
