(* Allocation & time profiling sink.  See prof.mli for the design
   rules (ambient no-op sink, deterministic structure with advisory
   values, phase rows joining the metrics phase table). *)

type kind = Phase | Region

type row = {
  kind : kind;
  name : string;
  count : int;
  wall_ns : int;
  self_ns : int;
  minor_words : int;
  self_minor_words : int;
  major_words : int;
  self_major_words : int;
  minors : int;
  majors : int;
}

type round_sample = {
  round : int;
  heap_words : int;
  r_minor_words : int;
  r_minors : int;
}

(* One accumulating cell per (kind, name).  Words are kept as floats
   internally — [Gc.quick_stat] counts words in a float and the counts
   are exact integers up to 2^53 — and rounded once at snapshot. *)
type cell = {
  c_kind : kind;
  c_name : string;
  mutable c_count : int;
  mutable c_wall : int;
  mutable c_self_wall : int;
  mutable c_minor : float;
  mutable c_self_minor : float;
  mutable c_major : float;
  mutable c_self_major : float;
  mutable c_minors : int;
  mutable c_majors : int;
}

(* A point sample of the machine: monotonic clock + GC counters. *)
type mark = {
  m_wall : int64;
  m_minor : float;
  m_major : float;
  m_minors : int;
  m_majors : int;
  m_heap : int;
}

let take_mark () =
  let s = Gc.quick_stat () in
  {
    m_wall = Monotonic_clock.now ();
    (* [quick_stat]'s minor_words only advances at minor collections;
       [Gc.minor_words] reads the allocation pointer, so deltas are
       exact to the word. *)
    m_minor = Gc.minor_words ();
    m_major = s.Gc.major_words;
    m_minors = s.Gc.minor_collections;
    m_majors = s.Gc.major_collections;
    m_heap = s.Gc.heap_words;
  }

(* An open region frame.  Child accumulators collect the inclusive
   cost of directly nested regions so [leave] can charge the parent's
   self column with the difference. *)
type frame = {
  f_cell : cell;
  f_start : mark;
  mutable f_child_wall : int;
  mutable f_child_minor : float;
  mutable f_child_major : float;
}

type reg = {
  tbl : (string, cell) Hashtbl.t;
  mutable rev_order : cell list;
  mutable stack : frame list;
  mutable last_phase : mark;
  mutable last_round : mark;
  mutable rev_rounds : round_sample list;
}

type t = Disabled | Reg of reg

let disabled = Disabled
let enabled = function Disabled -> false | Reg _ -> true

let create () =
  let m = take_mark () in
  Reg
    {
      tbl = Hashtbl.create 32;
      rev_order = [];
      stack = [];
      last_phase = m;
      last_round = m;
      rev_rounds = [];
    }

(* The ambient sink: hot paths (engine deliver loop, ARQ sweep, query
   answering) read it instead of threading one more argument through
   every layer.  Default is the no-op sink, so flag-free runs never
   sample a clock. *)
let current_sink = ref Disabled
let set_current t = current_sink := t
let current () = !current_sink

let kind_tag = function Phase -> "phase" | Region -> "region"

let cell r kind name =
  let key = kind_tag kind ^ "\x00" ^ name in
  match Hashtbl.find_opt r.tbl key with
  | Some c -> c
  | None ->
      let c =
        {
          c_kind = kind;
          c_name = name;
          c_count = 0;
          c_wall = 0;
          c_self_wall = 0;
          c_minor = 0.;
          c_self_minor = 0.;
          c_major = 0.;
          c_self_major = 0.;
          c_minors = 0;
          c_majors = 0;
        }
      in
      Hashtbl.replace r.tbl key c;
      r.rev_order <- c :: r.rev_order;
      c

let enter t name =
  match t with
  | Disabled -> ()
  | Reg r ->
      let c = cell r Region name in
      r.stack <-
        {
          f_cell = c;
          f_start = take_mark ();
          f_child_wall = 0;
          f_child_minor = 0.;
          f_child_major = 0.;
        }
        :: r.stack

let leave t =
  match t with
  | Disabled -> ()
  | Reg r -> (
      match r.stack with
      | [] -> ()
      | f :: rest ->
          r.stack <- rest;
          let now = take_mark () in
          let wall = Int64.to_int (Int64.sub now.m_wall f.f_start.m_wall) in
          let minor = now.m_minor -. f.f_start.m_minor in
          let major = now.m_major -. f.f_start.m_major in
          let c = f.f_cell in
          c.c_count <- c.c_count + 1;
          c.c_wall <- c.c_wall + wall;
          c.c_self_wall <- c.c_self_wall + (wall - f.f_child_wall);
          c.c_minor <- c.c_minor +. minor;
          c.c_self_minor <- c.c_self_minor +. (minor -. f.f_child_minor);
          c.c_major <- c.c_major +. major;
          c.c_self_major <- c.c_self_major +. (major -. f.f_child_major);
          c.c_minors <- c.c_minors + (now.m_minors - f.f_start.m_minors);
          c.c_majors <- c.c_majors + (now.m_majors - f.f_start.m_majors);
          (match rest with
          | parent :: _ ->
              parent.f_child_wall <- parent.f_child_wall + wall;
              parent.f_child_minor <- parent.f_child_minor +. minor;
              parent.f_child_major <- parent.f_child_major +. major
          | [] -> ()))

let region t name f =
  match t with
  | Disabled -> f ()
  | Reg _ ->
      enter t name;
      Fun.protect ~finally:(fun () -> leave t) f

let phase t name =
  match t with
  | Disabled -> ()
  | Reg r ->
      let now = take_mark () in
      let prev = r.last_phase in
      r.last_phase <- now;
      let c = cell r Phase name in
      let wall = Int64.to_int (Int64.sub now.m_wall prev.m_wall) in
      let minor = now.m_minor -. prev.m_minor in
      let major = now.m_major -. prev.m_major in
      c.c_count <- c.c_count + 1;
      c.c_wall <- c.c_wall + wall;
      c.c_self_wall <- c.c_self_wall + wall;
      c.c_minor <- c.c_minor +. minor;
      c.c_self_minor <- c.c_self_minor +. minor;
      c.c_major <- c.c_major +. major;
      c.c_self_major <- c.c_self_major +. major;
      c.c_minors <- c.c_minors + (now.m_minors - prev.m_minors);
      c.c_majors <- c.c_majors + (now.m_majors - prev.m_majors)

let round_mark t ~round =
  match t with
  | Disabled -> ()
  | Reg r ->
      let now = take_mark () in
      let prev = r.last_round in
      r.last_round <- now;
      r.rev_rounds <-
        {
          round;
          heap_words = now.m_heap;
          r_minor_words = int_of_float (now.m_minor -. prev.m_minor);
          r_minors = now.m_minors - prev.m_minors;
        }
        :: r.rev_rounds

let row_of_cell c =
  {
    kind = c.c_kind;
    name = c.c_name;
    count = c.c_count;
    wall_ns = c.c_wall;
    self_ns = c.c_self_wall;
    minor_words = int_of_float c.c_minor;
    self_minor_words = int_of_float c.c_self_minor;
    major_words = int_of_float c.c_major;
    self_major_words = int_of_float c.c_self_major;
    minors = c.c_minors;
    majors = c.c_majors;
  }

let rows = function
  | Disabled -> []
  | Reg r -> List.rev_map row_of_cell r.rev_order

let round_samples = function
  | Disabled -> []
  | Reg r -> List.rev r.rev_rounds

(* ------------------------------------------------------------------ *)
(* JSON lines *)

exception Parse_error of { file : string; line : int; msg : string }

let () =
  Printexc.register_printer (function
    | Parse_error { file; line; msg } ->
        Some (Printf.sprintf "Prof.Parse_error(%s: line %d: %s)" file line msg)
    | _ -> None)

let row_to_json r =
  Printf.sprintf
    {|{"kind":"prof","rk":"%s","name":%S,"count":%d,"wall_ns":%d,"self_ns":%d,"minor":%d,"self_minor":%d,"major":%d,"self_major":%d,"minors":%d,"majors":%d}|}
    (kind_tag r.kind) r.name r.count r.wall_ns r.self_ns r.minor_words
    r.self_minor_words r.major_words r.self_major_words r.minors r.majors

let round_to_json (s : round_sample) =
  Printf.sprintf {|{"kind":"prof_round","round":%d,"heap":%d,"minor":%d,"minors":%d}|}
    s.round s.heap_words s.r_minor_words s.r_minors

let save ?(extra = []) t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun line ->
          output_string oc line;
          output_char oc '\n')
        extra;
      List.iter
        (fun r ->
          output_string oc (row_to_json r);
          output_char oc '\n')
        (rows t);
      List.iter
        (fun s ->
          output_string oc (round_to_json s);
          output_char oc '\n')
        (round_samples t))

type item = Row of row | Round of round_sample

let iter_file file f =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      let fail msg line =
        raise
          (Parse_error
             {
               file;
               line = !lineno;
               msg = Printf.sprintf "%s: %s" msg line;
             })
      in
      try
        while true do
          let raw = input_line ic in
          incr lineno;
          let line =
            let n = String.length raw in
            if n > 0 && raw.[n - 1] = '\r' then String.sub raw 0 (n - 1)
            else raw
          in
          if String.trim line <> "" then
            let int k =
              match Metrics.json_int line k with
              | Some v -> v
              | None -> fail (Printf.sprintf "missing field %S" k) line
            in
            match Metrics.json_str line "kind" with
            | Some "prof" ->
                let kind =
                  match Metrics.json_str line "rk" with
                  | Some "phase" -> Phase
                  | Some "region" -> Region
                  | Some other ->
                      fail (Printf.sprintf "unknown row kind %S" other) line
                  | None -> fail {|missing field "rk"|} line
                in
                let name =
                  match Metrics.json_str line "name" with
                  | Some n -> n
                  | None -> fail {|missing field "name"|} line
                in
                f
                  (Row
                     {
                       kind;
                       name;
                       count = int "count";
                       wall_ns = int "wall_ns";
                       self_ns = int "self_ns";
                       minor_words = int "minor";
                       self_minor_words = int "self_minor";
                       major_words = int "major";
                       self_major_words = int "self_major";
                       minors = int "minors";
                       majors = int "majors";
                     })
            | Some "prof_round" ->
                f
                  (Round
                     {
                       round = int "round";
                       heap_words = int "heap";
                       r_minor_words = int "minor";
                       r_minors = int "minors";
                     })
            | Some _ -> ()  (* meta header or foreign line: skip *)
            | None -> fail {|missing field "kind"|} line
        done
      with End_of_file -> ())

let load file =
  let rev_rows = ref [] and rev_rounds = ref [] in
  iter_file file (function
    | Row r -> rev_rows := r :: !rev_rows
    | Round s -> rev_rounds := s :: !rev_rounds);
  (List.rev !rev_rows, List.rev !rev_rounds)
