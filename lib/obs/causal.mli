(** Critical-path extraction over a {!Span} log.

    The happens-before DAG is induced by delivered message spans:
    message [m'] depends on message [m] when [m] was delivered at
    [m']'s sender no later than [m']'s send round.  The critical path
    ending at quiescence is extracted deterministically by walking back
    from the terminal delivery (latest deliver round, smallest span id
    on ties) and, at each hop, choosing the predecessor delivered at
    the sender latest before the send (again smallest id on ties).
    The chain's length in rounds is [end_round - start_round]; on a
    loss-free skeleton run it equals [Trace.stats.rounds], because the
    initial sends happen at round 0 and the final round delivers the
    last messages.

    Each hop covers the half-open round interval
    [(prev deliver, deliver]]; its [slack] is the part of that interval
    the message spent waiting to be sent ([send - prev deliver]), the
    rest is transit.  Hops are labeled with the phase span whose
    interval contains the deliver round; the per-phase table splits
    each hop's interval across phase boundaries, so per-phase rounds on
    the path never exceed that phase's own duration and sum exactly to
    the chain length. *)

type segment = {
  span_id : int;
  src : int;
  dst : int;
  send_round : int;
  deliver_round : int;
  words : int;
  phase : string;  (** phase containing [deliver_round]; [""] if none *)
  slack : int;  (** rounds waiting at [src] since the previous hop *)
  retransmits : int;
      (** retransmissions recorded on this link while the hop was in
          progress *)
}

type chain = {
  start_round : int;  (** send round of the first hop *)
  end_round : int;  (** deliver round of the terminal hop *)
  length_rounds : int;  (** [end_round - start_round] *)
  segments : segment list;  (** causal order, first hop to terminal *)
}

type phase_slack = {
  ps_phase : string;
  ps_hops : int;  (** hops whose deliver round falls in this phase *)
  ps_rounds : int;  (** path rounds inside this phase (transit + slack) *)
  ps_transit : int;
  ps_slack : int;
  ps_retransmits : int;
}

type analysis = {
  chains : chain list;  (** top-k, longest (latest terminal) first *)
  phase_slack : phase_slack list;
      (** per-phase split of the primary chain, phase order *)
  path_retransmits : int;  (** retransmissions on the primary chain *)
}

val analyze : ?k:int -> Span.record list -> analysis
(** Extract the top-[k] (default 3) critical chains.  [chains] is empty
    when the log holds no delivered message span. *)

val pp : Format.formatter -> analysis -> unit
(** Render the primary chain hop by hop, the per-phase slack table, and
    one-line summaries of the remaining chains. *)
