(* Chrome trace-event ("Perfetto") export.  The format is the JSON
   object form: {"traceEvents":[...]} with complete ("X") events whose
   ts/dur are microseconds; we map one simulated round to 1000 us. *)

let us_per_round = 1000

let pid_of (s : Span.record) =
  match s.kind with
  | Span.Phase | Span.Call -> 0
  | Span.Message -> 1
  | Span.Cluster -> 2
  | Span.Arq | Span.Retransmit -> 3

let tid_of (s : Span.record) =
  match s.kind with
  | Span.Phase | Span.Call -> 0
  | _ -> max 0 s.src

let name_of (s : Span.record) =
  if s.name <> "" then s.name
  else if s.dst >= 0 then Printf.sprintf "%d->%d" s.src s.dst
  else Span.kind_name s.kind

let event (s : Span.record) =
  let b = Buffer.create 160 in
  let stop = if s.stop_round >= 0 then s.stop_round else s.start_round in
  Buffer.add_string b
    (Printf.sprintf
       {|{"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"name":%S,"cat":%S|}
       (pid_of s) (tid_of s)
       (s.start_round * us_per_round)
       ((stop - s.start_round) * us_per_round)
       (name_of s) (Span.kind_name s.kind));
  Buffer.add_string b (Printf.sprintf {|,"args":{"span_id":%d|} s.id);
  if s.words > 0 then Buffer.add_string b (Printf.sprintf {|,"words":%d|} s.words);
  if s.parent >= 0 then
    Buffer.add_string b (Printf.sprintf {|,"parent":%d|} s.parent);
  if s.ls <> 0 || s.ld <> 0 then
    Buffer.add_string b (Printf.sprintf {|,"lamport_send":%d,"lamport_deliver":%d|} s.ls s.ld);
  (match s.status with
  | Span.Delivered -> ()
  | Span.Open -> Buffer.add_string b {|,"status":"open"|}
  | Span.Dropped reason ->
      Buffer.add_string b (Printf.sprintf {|,"status":"dropped","reason":%S|} reason));
  Buffer.add_string b "}}";
  Buffer.contents b

let process_name pid name =
  Printf.sprintf
    {|{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%S}}|}
    pid name

(* GC counter tracks live in their own process so Perfetto renders
   them as graphs under the span timeline: heap size is an absolute
   level, the other two are per-round activity. *)
let counters_pid = 4

let counter_event ~ts name value =
  Printf.sprintf
    {|{"ph":"C","pid":%d,"tid":0,"ts":%d,"name":%S,"args":{"value":%d}}|}
    counters_pid ts name value

let export ?(counters = []) records file =
  let tracks =
    [ (0, "phases"); (1, "messages"); (2, "clusters"); (3, "arq") ]
  in
  let used = List.map pid_of records in
  let metas =
    List.filter_map
      (fun (pid, name) ->
        if pid = 0 || List.mem pid used then Some (process_name pid name)
        else None)
      tracks
  in
  let metas =
    if counters = [] then metas
    else metas @ [ process_name counters_pid "gc counters" ]
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "{\"traceEvents\":[\n";
      let n = ref 0 in
      let emit line =
        if !n > 0 then output_string oc ",\n";
        output_string oc line;
        incr n
      in
      List.iter emit metas;
      List.iter (fun s -> emit (event s)) records;
      List.iter
        (fun (s : Prof.round_sample) ->
          let ts = s.Prof.round * us_per_round in
          emit (counter_event ~ts "heap_words" s.Prof.heap_words);
          emit (counter_event ~ts "minor_words_per_round" s.Prof.r_minor_words);
          emit (counter_event ~ts "minor_collections_per_round" s.Prof.r_minors))
        counters;
      output_string oc "\n]}\n";
      !n)
