(* Critical-path extraction over a span log.  Deterministic: every
   choice (terminal, predecessor) breaks round ties by smallest span
   id, so the same log always yields the same chains. *)

type segment = {
  span_id : int;
  src : int;
  dst : int;
  send_round : int;
  deliver_round : int;
  words : int;
  phase : string;
  slack : int;
  retransmits : int;
}

type chain = {
  start_round : int;
  end_round : int;
  length_rounds : int;
  segments : segment list;
}

type phase_slack = {
  ps_phase : string;
  ps_hops : int;
  ps_rounds : int;
  ps_transit : int;
  ps_slack : int;
  ps_retransmits : int;
}

type analysis = {
  chains : chain list;
  phase_slack : phase_slack list;
  path_retransmits : int;
}

(* Delivered message spans, indexed by destination and sorted by
   (deliver round, id) so "latest delivery at v no later than round s,
   smallest id on ties" is one binary search. *)
let deliveries_by_dst records =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (s : Span.record) ->
      if s.kind = Span.Message && s.status = Span.Delivered then
        Hashtbl.replace tbl s.dst
          (s :: (Option.value ~default:[] (Hashtbl.find_opt tbl s.dst))))
    records;
  let idx = Hashtbl.create 64 in
  Hashtbl.iter
    (fun dst l ->
      let a = Array.of_list l in
      Array.sort
        (fun (a : Span.record) (b : Span.record) ->
          if a.stop_round <> b.stop_round then compare a.stop_round b.stop_round
          else compare a.id b.id)
        a;
      Hashtbl.replace idx dst a)
    tbl;
  idx

(* Latest delivery at [v] with deliver round <= [s]; on ties the
   smallest id, i.e. the first record of the last eligible round. *)
let pred idx v s =
  match Hashtbl.find_opt idx v with
  | None -> None
  | Some a ->
      let n = Array.length a in
      (* rightmost index with stop_round <= s *)
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if a.(mid).Span.stop_round <= s then lo := mid + 1 else hi := mid
      done;
      if !lo = 0 then None
      else begin
        let last = !lo - 1 in
        let r = a.(last).Span.stop_round in
        let first = ref last in
        while !first > 0 && a.(!first - 1).Span.stop_round = r do
          decr first
        done;
        Some a.(!first)
      end

(* Phase intervals (name, start, stop], in chronological order.  They
   partition (0, total rounds] when emitted by Skeleton_dist. *)
let phase_intervals records =
  List.filter_map
    (fun (s : Span.record) ->
      if s.kind = Span.Phase && s.stop_round > s.start_round then
        Some (s.name, s.start_round, s.stop_round)
      else None)
    records
  |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)

let phase_of intervals round =
  let rec go = function
    | [] -> ""
    | (name, lo, hi) :: rest ->
        if round > lo && round <= hi then name else go rest
  in
  go intervals

(* Retransmission rounds per directed link. *)
let retransmits_by_link records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Span.record) ->
      if s.kind = Span.Retransmit then
        Hashtbl.replace tbl (s.src, s.dst)
          (s.start_round
          :: Option.value ~default:[] (Hashtbl.find_opt tbl (s.src, s.dst))))
    records;
  tbl

let retransmits_in tbl ~src ~dst ~lo ~hi =
  match Hashtbl.find_opt tbl (src, dst) with
  | None -> 0
  | Some rounds ->
      List.fold_left (fun n r -> if r > lo && r <= hi then n + 1 else n) 0 rounds

let walk_back idx terminal =
  (* deliver rounds strictly decrease along the walk (a predecessor is
     delivered no later than the send, which precedes the delivery), so
     this terminates; the guard also stops on degenerate hand-written
     logs where a span delivers in its send round *)
  let rec go acc (s : Span.record) =
    match pred idx s.src s.start_round with
    | Some p when p.Span.stop_round < s.Span.stop_round -> go (s :: acc) p
    | _ -> s :: acc
  in
  go [] terminal

let build_chain ~intervals ~retr idx (terminal : Span.record) =
  let hops = walk_back idx terminal in
  let start_round =
    match hops with [] -> 0 | first :: _ -> first.Span.start_round
  in
  let segments =
    List.fold_left
      (fun (prev_end, acc) (s : Span.record) ->
        let lo = prev_end in
        let hi = s.Span.stop_round in
        ( hi,
          { span_id = s.id; src = s.src; dst = s.dst;
            send_round = s.start_round; deliver_round = hi; words = s.words;
            phase = phase_of intervals hi; slack = s.start_round - lo;
            retransmits = retransmits_in retr ~src:s.src ~dst:s.dst ~lo ~hi }
          :: acc ))
      (start_round, []) hops
    |> snd |> List.rev
  in
  let end_round = match hops with [] -> 0 | _ -> terminal.Span.stop_round in
  { start_round; end_round; length_rounds = end_round - start_round; segments }

(* Split the primary chain's hop intervals across phase boundaries:
   hop = (prev deliver, deliver], slack part = (prev deliver, send],
   transit part = (send, deliver].  Rows aggregate by phase name in
   order of first appearance; rounds outside any phase land in "". *)
let slack_table intervals chain =
  let order = ref [] in
  let tbl = Hashtbl.create 16 in
  let row name =
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
        let r = ref (0, 0, 0, 0, 0) in
        Hashtbl.replace tbl name r;
        order := name :: !order;
        r
  in
  let overlap alo ahi blo bhi = max 0 (min ahi bhi - max alo blo) in
  let add_interval lo mid hi =
    (* distribute (lo, hi] over the phase partition *)
    let covered = ref 0 in
    List.iter
      (fun (name, plo, phi) ->
        let sl = overlap lo mid plo phi in
        let tr = overlap mid hi plo phi in
        if sl + tr > 0 then begin
          covered := !covered + sl + tr;
          let r = row name in
          let h, rd, t, s, re = !r in
          r := (h, rd + sl + tr, t + tr, s + sl, re)
        end)
      intervals;
    let rest = hi - lo - !covered in
    if rest > 0 then begin
      let r = row "" in
      let h, rd, t, s, re = !r in
      let sl = min rest (mid - lo) in
      r := (h, rd + rest, t + (rest - sl), s + sl, re)
    end
  in
  List.iter
    (fun seg ->
      let lo = seg.send_round - seg.slack in
      add_interval lo seg.send_round seg.deliver_round;
      let r = row seg.phase in
      let h, rd, t, s, re = !r in
      r := (h + 1, rd, t, s, re + seg.retransmits))
    chain.segments;
  List.rev_map
    (fun name ->
      let h, rd, t, s, re = !(Hashtbl.find tbl name) in
      { ps_phase = name; ps_hops = h; ps_rounds = rd; ps_transit = t;
        ps_slack = s; ps_retransmits = re })
    !order
  |> List.sort (fun a b ->
         let pos n =
           let rec go i = function
             | [] -> max_int  (* the "" row sorts last *)
             | (m, _, _) :: rest -> if m = n then i else go (i + 1) rest
           in
           go 0 intervals
         in
         compare (pos a.ps_phase) (pos b.ps_phase))

let analyze ?(k = 3) records =
  let idx = deliveries_by_dst records in
  let intervals = phase_intervals records in
  let retr = retransmits_by_link records in
  let delivered =
    List.filter
      (fun (s : Span.record) ->
        s.kind = Span.Message && s.status = Span.Delivered)
      records
  in
  let terminals =
    List.sort
      (fun (a : Span.record) (b : Span.record) ->
        if a.stop_round <> b.stop_round then compare b.stop_round a.stop_round
        else compare a.id b.id)
      delivered
    |> List.filteri (fun i _ -> i < k)
  in
  let chains = List.map (build_chain ~intervals ~retr idx) terminals in
  match chains with
  | [] -> { chains = []; phase_slack = []; path_retransmits = 0 }
  | primary :: _ ->
      { chains;
        phase_slack = slack_table intervals primary;
        path_retransmits =
          List.fold_left (fun n s -> n + s.retransmits) 0 primary.segments }

let pp ppf a =
  match a.chains with
  | [] -> Format.fprintf ppf "critical path: no delivered message spans@."
  | primary :: rest ->
      Format.fprintf ppf
        "critical path: %d rounds (round %d -> %d), %d hops, %d \
         retransmission(s) on path@."
        primary.length_rounds primary.start_round primary.end_round
        (List.length primary.segments) a.path_retransmits;
      Format.fprintf ppf "  %3s  %12s  %5s  %5s  %5s  %5s  %4s  %s@." "hop"
        "link" "words" "send" "dlvr" "slack" "retr" "phase";
      List.iteri
        (fun i s ->
          Format.fprintf ppf "  %3d  %12s  %5d  %5d  %5d  %5d  %4d  %s@."
            (i + 1)
            (Printf.sprintf "%d->%d" s.src s.dst)
            s.words s.send_round s.deliver_round s.slack s.retransmits
            (if s.phase = "" then "-" else s.phase))
        primary.segments;
      if a.phase_slack <> [] then begin
        Format.fprintf ppf "per-phase critical path:@.";
        Format.fprintf ppf "  %-16s %5s %7s %8s %6s %5s@." "phase" "hops"
          "rounds" "transit" "slack" "retr";
        let th = ref 0 and trd = ref 0 and tt = ref 0 and ts = ref 0
        and tre = ref 0 in
        List.iter
          (fun r ->
            th := !th + r.ps_hops;
            trd := !trd + r.ps_rounds;
            tt := !tt + r.ps_transit;
            ts := !ts + r.ps_slack;
            tre := !tre + r.ps_retransmits;
            Format.fprintf ppf "  %-16s %5d %7d %8d %6d %5d@."
              (if r.ps_phase = "" then "(none)" else r.ps_phase)
              r.ps_hops r.ps_rounds r.ps_transit r.ps_slack r.ps_retransmits)
          a.phase_slack;
        Format.fprintf ppf "  %-16s %5d %7d %8d %6d %5d@." "total" !th !trd
          !tt !ts !tre
      end;
      List.iteri
        (fun i c ->
          let term =
            match List.rev c.segments with
            | t :: _ -> Printf.sprintf "%d->%d @ round %d" t.src t.dst t.deliver_round
            | [] -> "-"
          in
          Format.fprintf ppf "  chain #%d: %d rounds, %d hops, terminal %s@."
            (i + 2) c.length_rounds (List.length c.segments) term)
        rest
