(** Causal span log: the happens-before record of a simulator run.

    Where {!Metrics} answers "how much did each phase cost", spans
    answer "why did the run take that long": every message transmission
    is one span (send event → deliver event) carrying Lamport
    timestamps, and the structural layers above it (protocol phases,
    Expand calls, cluster lifetimes, ARQ exchanges) open parent spans
    over the same boundaries their statistics already use.  The
    resulting happens-before DAG is what {!Causal} mines for critical
    paths and {!Perfetto} renders as a Chrome trace.

    The sink follows the {!Metrics} design rules exactly:

    - {b Zero cost when disabled.}  {!disabled} is a shared no-op sink:
      {!message} returns [-1], every other operation on it (or on a
      [-1] id) returns immediately, so the disabled path costs one tag
      check and runs without span recording stay byte-identical.
    - {b Deterministic output.}  Spans are identified and serialized in
      creation order; a deterministic run writes deterministic JSONL.

    Lamport clocks live in the sink, one per node: a send ticks the
    sender ([ls = L(src) + 1]), a delivery merges into the receiver
    ([ld = max(L(dst), ls) + 1]).  Structural spans carry no clock. *)

type t
(** A span sink, or the shared no-op sink. *)

val disabled : t
(** The no-op sink: nothing is recorded, {!message} returns [-1]. *)

val create : unit -> t
(** A fresh, enabled, empty sink. *)

val enabled : t -> bool
(** [false] exactly for {!disabled}. *)

(** What a span covers.  [Message] is one transmission on the wire
    (send → deliver); the others are structural parents: a protocol
    [Phase], an Expand [Call], a [Cluster]'s decision lifetime, an
    [Arq] exchange (first transmission → acknowledgement), and a
    [Retransmit] point-event linked to its [Arq] parent. *)
type kind = Message | Phase | Call | Cluster | Arq | Retransmit

val kind_name : kind -> string

(** A message span is [Open] from send until it either reaches its
    destination ([Delivered]) or is lost ([Dropped reason]); structural
    spans reuse [Open]/[Delivered] as open/closed. *)
type status = Open | Delivered | Dropped of string

type record = {
  id : int;  (** creation index, dense from 0 *)
  kind : kind;
  name : string;  (** phase/call/cluster label; [""] for messages *)
  parent : int;  (** enclosing span id; [-1] = none *)
  src : int;  (** sender / owning node; [-1] for global spans *)
  dst : int;  (** receiver; [-1] when not a link span *)
  words : int;
  start_round : int;  (** send round / open round *)
  mutable stop_round : int;  (** deliver/close round; [-1] while open *)
  mutable ls : int;  (** Lamport timestamp at send; [0] = none *)
  mutable ld : int;  (** Lamport timestamp at deliver; [0] = none *)
  mutable status : status;
}

(** {1 Message spans (recorded by {!Distnet.Sim})} *)

val message : t -> round:int -> src:int -> dst:int -> words:int -> int
(** Record a transmission: ticks [src]'s Lamport clock and returns the
    span id to resolve at delivery time ([-1] when disabled). *)

val deliver : t -> round:int -> int -> unit
(** Close a message span as [Delivered] and merge the send timestamp
    into [dst]'s Lamport clock.  First delivery wins: a duplicate copy
    of an already-delivered span is ignored.  No-op on [-1]. *)

val drop : t -> round:int -> reason:string -> int -> unit
(** Close a span as [Dropped reason] (loss, crash, a dead-lettered ARQ
    exchange...).  Ignored if the span already closed.  No-op on [-1]. *)

(** {1 Structural spans} *)

val open_span :
  t -> ?parent:int -> ?src:int -> ?dst:int -> kind -> name:string ->
  round:int -> int
(** Open a structural span ([parent]/[src]/[dst] default [-1]); close
    it with {!close} or {!drop}.  Returns [-1] when disabled. *)

val close : t -> round:int -> int -> unit
(** Close an open structural span as [Delivered].  No-op on [-1]. *)

val span :
  t -> ?parent:int -> ?src:int -> ?dst:int -> kind -> name:string ->
  start_round:int -> stop_round:int -> int
(** A span closed at creation (e.g. a phase recorded at its boundary,
    a retransmission point-event).  Returns [-1] when disabled. *)

(** {1 Reading back} *)

val count : t -> int
val records : t -> record list
(** Every span, in creation order (ids ascending). *)

(** {1 Persistence (JSON lines)} *)

val to_json : record -> string
(** One JSON object, [{"kind":"span",...}]. *)

val save : ?extra:string list -> t -> string -> unit
(** Write [extra] lines (e.g. a run's meta header) followed by one
    line per span in creation order. *)

val iter_file : string -> (record -> unit) -> unit
(** Stream a file written by {!save} in constant memory.  Lines whose
    ["kind"] is not ["span"] (e.g. a meta header) are skipped; blank
    lines and CRLF endings are tolerated like {!Distnet.Trace}.
    @raise Failure on a malformed span line, naming file and line. *)

val load : string -> record list
