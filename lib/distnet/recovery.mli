(** Crash recovery building blocks for multi-phase protocols.

    Two pieces, both deliberately protocol-agnostic so any phased
    construction on {!Sim} can reuse them:

    - {!Checkpoints} — a per-node store of phase-boundary snapshots.  A
      protocol commits a (cheaply copied) projection of each node's
      state whenever a phase completes; when a node must later recover
      — typically because a peer it depended on crash-stopped mid-phase
      — it restores the snapshot instead of trusting half-updated
      in-phase state.  In the skeleton construction the snapshot is the
      exchange-boundary view (cluster identity and crossing edges),
      which is exactly what the paper's abort rule needs.
    - {!Detector} — a crash-stop failure detector merging the two
      honest information sources a node has: transport-level suspicion
      ({!Reliable.Make.suspected}: a transmission abandoned after
      [max_retries] means the peer is whp gone) and protocol-level
      death notices (a [Dead] message from a peer that left the
      algorithm gracefully).  The two are tracked separately — a
      suspected node {e crashed} (its state is lost, its incident edges
      may be missing from the output) while a notified node died
      {e cleanly} (its contribution is complete).  *)

(** {1 Phase-boundary checkpoints} *)

module Checkpoints : sig
  type 'st t

  val create : ?copy:('st -> 'st) -> n:int -> unit -> 'st t
  (** A store for [n] nodes.  [copy] (default [Fun.id]) deep-copies a
      snapshot on commit; pass the identity only when snapshots are
      immutable projections. *)

  val commit : 'st t -> phase:string -> int -> 'st -> unit
  (** [commit t ~phase v st] records [st] as node [v]'s state at the
      boundary that ended [phase], replacing any earlier checkpoint. *)

  val restore : 'st t -> int -> 'st option
  (** The latest committed snapshot of a node, if any. *)

  val phase : 'st t -> int -> string option
  (** The phase label the latest snapshot of a node was committed at. *)

  val commits : 'st t -> int
  (** Total number of [commit] calls (checkpointing traffic, for
      reporting). *)
end

(** {1 Crash-stop failure detection} *)

module Detector : sig
  type t

  val create : n:int -> t

  val suspect : t -> int -> unit
  (** Transport-level: a transmission to this node was abandoned. *)

  val note_death : t -> int -> unit
  (** Protocol-level: this node announced its own (clean) death. *)

  val unsuspect : t -> int -> unit
  (** Crash-recovery: a message from this node arrived after it was
      suspected, so the suspicion belonged to a previous incarnation —
      return it to [Up].  A node that announced its own death stays
      [Announced]: its old role completed, and its reborn incarnation
      re-enters through repair instead. *)

  val is_down : t -> int -> bool
  (** Suspected or announced dead — either way, no further message
      from this node will ever arrive. *)

  val is_suspected : t -> int -> bool
  (** Down {e without} a death notice: a crash-stop, whose state and
      pending contributions are lost. *)

  val suspected : t -> int list
  (** All suspected (crash-stopped) nodes, ascending. *)

  val suspected_count : t -> int
end
