module Graph = Graphlib.Graph

let bfs ?faults ?tracer g ~root =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let t = Sim.create ?faults ?tracer g in
  let announce v d =
    dist.(v) <- d;
    Graph.iter_neighbors g v (fun w _ ->
        if dist.(w) < 0 then Sim.send t ~src:v ~dst:w ~words:1 (d + 1))
  in
  if n > 0 then announce root 0;
  Sim.run_until_quiescent t (fun ~dst ~src:_ d ->
      if dist.(dst) < 0 then announce dst d);
  (Sim.stats t, dist)

let flood ?faults ?tracer g ~root ~payload_words =
  let n = Graph.n g in
  let reached = Array.make n false in
  let t = Sim.create ?faults ?tracer g in
  let forward v ~from =
    reached.(v) <- true;
    Graph.iter_neighbors g v (fun w _ ->
        (* [reached w] may flip between send and delivery; that
           duplicate traffic is the real cost of flooding and is
           counted faithfully. *)
        if w <> from && not reached.(w) then
          Sim.send t ~src:v ~dst:w ~words:payload_words ())
  in
  if n > 0 then forward root ~from:(-1);
  Sim.run_until_quiescent t (fun ~dst ~src () ->
      if not reached.(dst) then forward dst ~from:src);
  (Sim.stats t, reached)

(* ------------------------------------------------------------------ *)
(* Fault-tolerant variants: the same algorithms written as node
   programs and lifted onto the lossy network by the Reliable ARQ
   wrapper.  BFS becomes unweighted Bellman-Ford — a node re-announces
   whenever its distance improves — because under delay and
   retransmission the neat layer-by-layer arrival order is gone. *)

let reliable_bfs ?max_rounds ?faults ?tracer ?metrics ?spans g ~root =
  let module N = struct
    type state = int (* distance from root; -1 = unknown *)
    type message = int (* "your distance is at most this" *)

    let message_words _ = 1

    let announce g v d =
      Graph.fold_neighbors g v ~init:[] ~f:(fun acc w _ -> (w, d + 1) :: acc)

    let init g v = if v = root then (0, announce g v 0) else (-1, [])

    let receive g ~round:_ v st inbox =
      let best =
        List.fold_left
          (fun acc (_, d) -> if acc < 0 || d < acc then d else acc)
          st inbox
      in
      if best >= 0 && (st < 0 || best < st) then (best, announce g v best)
      else (st, [])
  end in
  let module R = Reliable.Make (N) in
  Option.iter R.use_metrics metrics;
  Option.iter R.use_spans spans;
  let module Runner = Sim.Run_active (R) in
  let stats, states = Runner.run ?max_rounds ?faults ?tracer ?metrics ?spans g in
  (stats, Array.map R.inner states)

let reliable_flood ?max_rounds ?faults ?tracer ?metrics ?spans g ~root
    ~payload_words =
  let module N = struct
    type state = bool
    type message = unit

    let message_words () = payload_words

    let fanout g v ~except =
      Graph.fold_neighbors g v ~init:[] ~f:(fun acc w _ ->
          if List.mem w except then acc else (w, ()) :: acc)

    let init g v =
      if v = root then (true, fanout g v ~except:[]) else (false, [])

    let receive g ~round:_ v st inbox =
      if (not st) && inbox <> [] then
        (true, fanout g v ~except:(List.map fst inbox))
      else (st, [])
  end in
  let module R = Reliable.Make (N) in
  Option.iter R.use_metrics metrics;
  Option.iter R.use_spans spans;
  let module Runner = Sim.Run_active (R) in
  let stats, states = Runner.run ?max_rounds ?faults ?tracer ?metrics ?spans g in
  (stats, Array.map R.inner states)
