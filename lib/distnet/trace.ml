type stats = {
  rounds : int;
  messages : int;
  words : int;
  max_message_words : int;
}

let diff_stats a b =
  let field name fa fb acc = if fa <> fb then (name, fa, fb) :: acc else acc in
  []
  |> field "max_message_words" a.max_message_words b.max_message_words
  |> field "words" a.words b.words
  |> field "messages" a.messages b.messages
  |> field "rounds" a.rounds b.rounds

type reason = Loss | Src_crashed | Dst_crashed | Link_down | Not_joined | Stale

type kind =
  | Send
  | Deliver
  | Drop of reason
  | Dup
  | Delay of int
  | Crash
  | Restart
  | Edge_down
  | Edge_up
  | Partition
  | Heal
  | Join

type event = { round : int; kind : kind; src : int; dst : int; words : int }

let reason_name = function
  | Loss -> "loss"
  | Src_crashed -> "src-crashed"
  | Dst_crashed -> "dst-crashed"
  | Link_down -> "link-down"
  | Not_joined -> "not-joined"
  | Stale -> "stale-incarnation"

let kind_name = function
  | Send -> "send"
  | Deliver -> "deliver"
  | Drop _ -> "drop"
  | Dup -> "dup"
  | Delay _ -> "delay"
  | Crash -> "crash"
  | Restart -> "restart"
  | Edge_down -> "edge_down"
  | Edge_up -> "edge_up"
  | Partition -> "partition"
  | Heal -> "heal"
  | Join -> "join"

let pp_event ppf e =
  match e.kind with
  | Edge_down | Edge_up ->
      Format.fprintf ppf "r%d %s %d-%d" e.round (kind_name e.kind) e.src e.dst
  | Partition | Heal ->
      Format.fprintf ppf "r%d %s (%d links)" e.round (kind_name e.kind) e.words
  | Join -> Format.fprintf ppf "r%d join node %d" e.round e.src
  | Restart ->
      Format.fprintf ppf "r%d restart node %d (incarnation %d)" e.round e.src
        e.words
  | _ -> (
      Format.fprintf ppf "r%d %s %d->%d (%d words)" e.round (kind_name e.kind)
        e.src e.dst e.words;
      match e.kind with
      | Drop r -> Format.fprintf ppf " [%s]" (reason_name r)
      | Delay k -> Format.fprintf ppf " [+%d rounds]" k
      | _ -> ())

type t = { mutable rev_events : event list; mutable length : int }

let create () = { rev_events = []; length = 0 }

let record t e =
  t.rev_events <- e :: t.rev_events;
  t.length <- t.length + 1

let events t = List.rev t.rev_events
let length t = t.length

(* ------------------------------------------------------------------ *)
(* JSON lines.  The format is small and fixed, so both the printer and
   the parser are hand-rolled: no JSON dependency. *)

let event_to_json e =
  let extra =
    match e.kind with
    | Drop r -> Printf.sprintf {|,"reason":"%s"|} (reason_name r)
    | Delay k -> Printf.sprintf {|,"delay":%d|} k
    | _ -> ""
  in
  Printf.sprintf {|{"round":%d,"kind":"%s","src":%d,"dst":%d,"words":%d%s}|}
    e.round (kind_name e.kind) e.src e.dst e.words extra

let stats_to_json s =
  Printf.sprintf
    {|{"kind":"stats","rounds":%d,"messages":%d,"words":%d,"max_message_words":%d}|}
    s.rounds s.messages s.words s.max_message_words

let save ?stats t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (event_to_json e);
          output_char oc '\n')
        (events t);
      match stats with
      | Some s ->
          output_string oc (stats_to_json s);
          output_char oc '\n'
      | None -> ())

(* Minimal field extraction from one of our own JSON lines. *)

let find_sub line needle =
  let nl = String.length needle and ll = String.length line in
  let rec at i =
    if i + nl > ll then None
    else if String.sub line i nl = needle then Some (i + nl)
    else at (i + 1)
  in
  at 0

let int_field line name =
  match find_sub line (Printf.sprintf {|"%s":|} name) with
  | None -> None
  | Some start ->
      let stop = ref start in
      let ll = String.length line in
      while
        !stop < ll
        && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr stop
      done;
      if !stop = start then None
        (* [int_of_string_opt] so an overflowing or malformed run of
           digits surfaces as a missing field, not a bare [Failure]. *)
      else int_of_string_opt (String.sub line start (!stop - start))

let str_field line name =
  match find_sub line (Printf.sprintf {|"%s":"|} name) with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

exception Parse_error of { file : string; line : int; msg : string }

let () =
  Printexc.register_printer (function
    | Parse_error { file; line; msg } ->
        Some (Printf.sprintf "Trace.Parse_error(%s: line %d: %s)" file line msg)
    | _ -> None)

let parse_line ~file lineno line =
  let fail msg =
    raise
      (Parse_error
         { file; line = lineno; msg = Printf.sprintf "%s: %s" msg line })
  in
  let int name =
    match int_field line name with
    | Some v -> v
    | None -> fail (Printf.sprintf "missing field %S" name)
  in
  match str_field line "kind" with
  | None -> fail "missing field \"kind\""
  | Some "stats" ->
      `Stats
        {
          rounds = int "rounds";
          messages = int "messages";
          words = int "words";
          max_message_words = int "max_message_words";
        }
  | Some kind_s ->
      let kind =
        match kind_s with
        | "send" -> Send
        | "deliver" -> Deliver
        | "drop" -> (
            match str_field line "reason" with
            | Some "src-crashed" -> Drop Src_crashed
            | Some "dst-crashed" -> Drop Dst_crashed
            | Some "link-down" -> Drop Link_down
            | Some "not-joined" -> Drop Not_joined
            | Some "stale-incarnation" -> Drop Stale
            | _ -> Drop Loss)
        | "dup" -> Dup
        | "delay" -> Delay (int "delay")
        | "crash" -> Crash
        | "restart" -> Restart
        | "edge_down" -> Edge_down
        | "edge_up" -> Edge_up
        | "partition" -> Partition
        | "heal" -> Heal
        | "join" -> Join
        | other -> fail (Printf.sprintf "unknown kind %S" other)
      in
      `Event
        {
          round = int "round";
          kind;
          src = int "src";
          dst = int "dst";
          words = int "words";
        }

let iter_file file f =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let stats = ref None and lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           (* Tolerate CRLF line endings and blank (or whitespace-only)
              lines, trailing ones in particular — both show up when a
              trace has been round-tripped through editors or scp. *)
           let line =
             let l = String.length line in
             if l > 0 && line.[l - 1] = '\r' then String.sub line 0 (l - 1)
             else line
           in
           if String.trim line <> "" then
             match parse_line ~file !lineno line with
             | `Event e -> f e
             | `Stats s -> stats := Some s
         done
       with End_of_file -> ());
      !stats)

let load file =
  let rev_events = ref [] in
  let stats = iter_file file (fun e -> rev_events := e :: !rev_events) in
  (List.rev !rev_events, stats)
