(** Synchronous message-passing network simulator.

    This is the paper's computational model (Section 1.1): the
    communication network {e is} the input graph; computation proceeds
    in synchronized rounds; in each round a node may send one message
    to each neighbor; local computation is free.  Message length is
    measured in units of [O(log n)] bits — a "word" holds a vertex
    identifier, an edge identifier, or a small counter — which is the
    unit of the paper's Fig. 1 "message length" column.

    Two layers are provided.  The low-level {e engine} enforces the
    model (neighbor-only unicast, one message per directed edge per
    round, word accounting) while an algorithm module drives rounds
    explicitly — this is how the intricate multi-phase protocols
    (skeleton, Fibonacci balls) are written.  The {!Run} functor wraps
    the engine for self-contained node programs; {!Run_active} extends
    it to protocols with internal timers (retransmission) that must
    keep receiving rounds while the network is quiescent.

    The engine can be driven over a faulty network: {!create}'s
    [?faults] plan ({!Fault.t}) injects message loss, duplication,
    bounded delay, node crashes — crash-stop, or {e crash-recovery}
    when the plan schedules a restart — and {e topology churn} (edges
    down/up, partitions, late joins), and [?tracer] records every
    network event into a {!Trace.t} for audit and deterministic replay.
    Both default to off, in which case behavior is bit-identical to the
    fault-free engine.

    Crash-recovery: a restarted node comes back with a fresh
    incarnation number.  Every envelope is stamped with the incarnation
    of both endpoints at send time, and delivery discards a message
    whose sender or addressee has since changed incarnation (traced as
    a [Drop Stale]) — a reborn node never consumes its predecessor's
    traffic.  Plans without restarts never consult incarnations, so
    crash-stop runs stay byte-identical to the crash-stop engine.

    Churn is applied between rounds: the scheduled actions of round [r]
    land at the start of round [r], before that round's deliveries.  A
    message in flight over a link that is down at its delivery round is
    dropped (and traced); a {!send} over a link that is {e already}
    down raises {!Link_down} — unlike a crash or a loss, the sender's
    own link state is locally observable, so churn-aware callers check
    {!link_up} first and treat a down link as loss. *)

type stats = Trace.stats = {
  rounds : int;  (** synchronous rounds executed *)
  messages : int;  (** messages transmitted (delivered, lost, or held) *)
  words : int;  (** total words transmitted *)
  max_message_words : int;  (** length of the longest single message *)
}

val pp_stats : Format.formatter -> stats -> unit

(** {1 Low-level engine} *)

type 'msg t

exception Link_down of { round : int; src : int; dst : int }
(** Raised by {!send} when the link is down under the churn plan. *)

val create :
  ?faults:Fault.t ->
  ?tracer:Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?spans:Obs.Span.t ->
  Graphlib.Graph.t ->
  'msg t
(** [create ?faults ?tracer g] prepares an idle network on [g].
    [faults] defaults to {!Fault.none}, under which every observable
    behavior (deliveries, statistics, errors) is identical to the
    fault-free engine; [tracer] defaults to no recording.  Churn
    actions scheduled for round 0 are applied immediately, so they
    constrain the protocol's initial sends.

    [metrics] (default {!Obs.Metrics.disabled}) records, per {!step},
    histograms [sim_round_delivered_words] / [sim_round_dropped_words]
    / [sim_round_held_words], and a [link_words] counter per directed
    link (labels [src]/[dst], created at the link's first send).
    Metrics never affect deliveries, statistics, or the trace.

    [spans] (default {!Obs.Span.disabled}) records one causal span per
    transmission: opened at {!send} (ticking the sender's Lamport
    clock), closed as delivered at delivery time (first delivery wins
    for duplicated copies) or as dropped with the drop reason (loss,
    crashed destination, down link, unjoined destination).  A send
    refused before reaching the wire — crashed or unjoined sender —
    opens no span.  Like metrics, spans never affect behavior. *)

val graph : 'msg t -> Graphlib.Graph.t

val faults : 'msg t -> Fault.t
(** The fault plan the network runs under ({!Fault.none} by default). *)

val round : 'msg t -> int
(** The current round number: 0 before the first {!step}, and during a
    delivery callback the round being delivered.  Protocols and the
    tracer read this instead of threading their own counter. *)

val send : 'msg t -> src:int -> dst:int -> words:int -> 'msg -> unit
(** Enqueue a message for delivery at the next {!step}.  If [src] has
    crash-stopped (or has not joined yet), the message is silently
    discarded (and traced as a drop) — a dead or absent node cannot
    put anything on the wire.
    @raise Link_down if the link is down under the churn plan: the
    sender can observe its own link state, so the refusal is loud.
    @raise Invalid_argument if [dst] is not a neighbor of [src], if
    [words < 1], or if [src] already sent to [dst] this round; the
    message names the current round and both endpoints. *)

val link_up : 'msg t -> src:int -> dst:int -> bool
(** The live-edge view: is the link up this round?  [true] whenever the
    plan schedules no churn.
    @raise Invalid_argument if [src]-[dst] is not a network link. *)

val edge_up : 'msg t -> int -> bool
(** {!link_up} by undirected edge identifier. *)

val joined : 'msg t -> int -> bool
(** Has this node joined the network by the current round?  [true]
    whenever the plan schedules no join for it. *)

val step : 'msg t -> (dst:int -> src:int -> 'msg -> unit) -> int
(** Advance one synchronous round: decide the fate of every queued
    message under the fault plan, deliver the surviving ones (and any
    held-back message whose delay expires this round) through the
    callback in deterministic order, and return the number delivered.
    Counts as one round even when nothing was queued. *)

val quiescent : 'msg t -> bool
(** No messages queued or held back for a later round. *)

val run_until_quiescent :
  ?max_rounds:int -> 'msg t -> (dst:int -> src:int -> 'msg -> unit) -> unit
(** Repeated {!step} until no message is in flight.  The callback may
    {!send} further messages.  @raise Invalid_argument after
    [max_rounds] (default [10_000_000]) rounds; the message reports the
    current round, the statistics accumulated so far, and the endpoints
    of the head in-flight message (matching the send errors). *)

val stats : 'msg t -> stats

val take_window_max : 'msg t -> int
(** Length of the longest single message charged since the previous
    [take_window_max] (or since {!create}), and reset the window.
    Unlike the additive stats fields, a maximum cannot be attributed
    to a phase by differencing {!stats} snapshots — this is the
    reset-on-read window the per-phase instrumentation uses.  Reading
    it never affects {!stats}. *)

val add_idle_rounds : 'msg t -> int -> unit
(** Account for rounds that a real execution would spend idle (e.g. a
    fixed-length phase that ended early at quiescence but whose
    schedule the nodes cannot cut short).  Used by protocols that
    charge themselves the analytic schedule. *)

(** {1 Node-program runner} *)

module type PROTOCOL = sig
  type state
  type message

  val message_words : message -> int

  val init : Graphlib.Graph.t -> int -> state * (int * message) list
  (** [init g v] is the initial state of node [v] and the messages it
      sends in the first round (neighbor, payload). *)

  val receive :
    Graphlib.Graph.t ->
    round:int ->
    int ->
    state ->
    (int * message) list ->
    state * (int * message) list
  (** [receive g ~round v st inbox] handles one round at node [v]:
      [inbox] lists (sender, payload) delivered this round.  Called
      every round for every node (possibly with an empty inbox) until
      the network is quiescent. *)
end

(** A protocol that may need rounds to keep ticking while the network
    is quiescent — e.g. a retransmission timer waiting to fire. *)
module type ACTIVE_PROTOCOL = sig
  include PROTOCOL

  val active : state -> bool
  (** Does this node still have work pending (timers armed, messages
      unacknowledged)?  The run ends when the network is quiescent and
      no live node is active. *)
end

module Run_active (P : ACTIVE_PROTOCOL) : sig
  val run :
    ?max_rounds:int ->
    ?faults:Fault.t ->
    ?tracer:Trace.t ->
    ?metrics:Obs.Metrics.t ->
    ?spans:Obs.Span.t ->
    Graphlib.Graph.t ->
    stats * P.state array
  (** Run the protocol to completion.  Under a fault plan, a node that
      crashes at round [r] executes no [receive] from round [r]
      on: its state is frozen as of round [r - 1].  If the plan
      restarts it at round [r'], it resumes [receive] from [r'] with
      that frozen state (protocols needing amnesia reset themselves);
      the run is kept alive until every scheduled restart has landed.
      A node with join round [r] is initialized at round [r] (its
      [init] sends go out that round); under churn the node programs
      stay oblivious — a send over a down link is simply discarded,
      i.e. looks like loss.  A node whose join round never arrives ends
      in its initial state.
      @raise Invalid_argument after [max_rounds] rounds (default
      [1_000_000]); the message reports the round and the statistics
      accumulated so far. *)
end

module Run (P : PROTOCOL) : sig
  val run :
    ?max_rounds:int ->
    ?faults:Fault.t ->
    ?tracer:Trace.t ->
    ?metrics:Obs.Metrics.t ->
    ?spans:Obs.Span.t ->
    Graphlib.Graph.t ->
    stats * P.state array
end
