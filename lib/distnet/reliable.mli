(** Reliable delivery over a lossy network: an ack/retransmit wrapper
    that lifts any {!Sim.PROTOCOL} node program onto a faulty network
    unchanged.

    Per directed neighbor link the wrapper runs stop-and-wait ARQ:
    outgoing inner-protocol messages are queued FIFO, transmitted one
    at a time with a sequence number, and retransmitted on a timeout
    with exponential backoff until acknowledged.  Acknowledgements are
    piggybacked on data traffic when possible and echoed on every
    (re)receipt, so a lost ack is repaired by the sender's retry.  The
    receiver tracks seen sequence numbers, making delivery to the
    inner protocol idempotent under duplication and retransmission.

    Each wire message costs [1] word per carried ack plus, when data
    is present, [1] word of sequence number plus the inner payload's
    words — so [Sim.stats] keeps honest word accounting including
    every retransmission.

    A transmission abandoned after {!max_retries} unacknowledged tries
    (e.g. to a crashed neighbor) is counted in {!dead_letters}; this
    bounds the run when a peer is gone forever. *)

(** Retransmission policy (rounds are the time unit). *)

(** The retransmit-timer policy, shared by every instantiation of
    {!Make} (the ARQ is a property of the network, not of one
    protocol).  On each timeout the timer grows by the [backoff]
    factor (truncated), capped at [max_rto]; [backoff = 1.] is a fixed
    retransmit interval.  Timeouts that actually grow the window are
    counted in the [arq_backoff_escalations] metric. *)
type config = {
  initial_rto : int;  (** first timeout, rounds; must be [>= 1] *)
  max_rto : int;  (** backoff ceiling; must be [>= initial_rto] *)
  max_retries : int;  (** tries before a dead letter; must be [>= 1] *)
  backoff : float;  (** timer growth per timeout; must be [>= 1.] *)
}

val default_config : config
(** [{initial_rto = 3; max_rto = 32; max_retries = 12; backoff = 2.}] —
    the historical constants: first timeout one round past the
    loss-free ack round trip, classic doubling.  Runs that never call
    {!set_config} are byte-identical to runs before the policy became
    configurable. *)

val config : unit -> config
(** The policy currently in force. *)

val set_config : config -> unit
(** Install a policy for subsequent runs.  Affects every {!Make}
    instantiation; call before [Sim.create]/[run], not mid-run (nodes
    cache nothing, but an in-flight exchange would mix policies).
    @raise Invalid_argument naming the offending field if the config
    violates the bounds above. *)

val initial_rto : int
(** First timeout of {!default_config}: [3] rounds. *)

val max_rto : int
(** Backoff ceiling of {!default_config}: [32] rounds. *)

val max_retries : int
(** Retransmissions before a message is abandoned, by default: [12]. *)

module Make (P : Sim.PROTOCOL) : sig
  include Sim.ACTIVE_PROTOCOL

  val use_metrics : Obs.Metrics.t -> unit
  (** Route this instantiation's instruments into the given registry
      (network-wide aggregates): counters [arq_retransmissions] /
      [arq_dead_letters] / [arq_timer_fires] and an [arq_ack_latency]
      histogram (rounds from a message's first transmission to its
      acknowledgement).  Defaults to the no-op sink; call again with
      {!Obs.Metrics.disabled} to turn recording back off.  Purely
      observational — never changes protocol behavior. *)

  val use_spans : Obs.Span.t -> unit
  (** Route this instantiation's causal spans into the given sink: one
      [Arq] span per stop-and-wait exchange, opened at the seq's first
      transmission and closed at its acknowledgement (dropped with
      reason ["dead-letter"] on abandonment), plus one [Retransmit]
      point-event per retransmission, linked via [parent] to the
      exchange it retried.  Defaults to the no-op sink; call again
      with {!Obs.Span.disabled} to turn recording back off.  Purely
      observational — never changes protocol behavior. *)

  val inner : state -> P.state
  (** The wrapped protocol's state at this node. *)

  val retransmissions : state -> int
  (** Data retransmissions this node has performed. *)

  val dead_letters : state -> int
  (** Transmissions this node abandoned after {!max_retries}. *)

  val link_idle : state -> int -> bool
  (** No inner message queued or awaiting acknowledgement toward that
      neighbor (pending acks don't count).  Streaming protocols use
      this to pace batch emission: offering the next batch only on an
      idle link keeps their per-round word budget honest even though
      the ARQ layer, not the protocol, owns the wire. *)

  val suspected : state -> int list
  (** Neighbors to which at least one transmission was abandoned.  In
      a crash-stop fault model an abandoned transmission is (whp) a
      crashed peer — after {!max_retries} tries the probability that
      independent per-message loss ate every copy is negligible — so
      this doubles as the failure detector that {!Recovery} and the
      fault-tolerant skeleton consume. *)

  val reset_peer : state -> round:int -> int -> unit
  (** [reset_peer st ~round w] forgets every ARQ session toward and
      from neighbor [w]: the in-flight transmission (its span dropped
      with reason ["session-reset"]), the send queue, sequence numbers
      (back to 0), pending and remembered acks, the receive-side dedup
      table, and [w]'s entry in {!suspected}.  Call it on both sides
      of a link when one endpoint restarts with a fresh incarnation —
      the reborn node must never consume its predecessor's acks, and
      its restarted sequence numbers must not be swallowed as
      duplicates.  Callers that consume {!suspected} as a positional
      delta must re-baseline their cursor afterwards.  A [w] that is
      not a neighbor is ignored. *)
end
