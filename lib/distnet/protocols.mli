(** Reference protocols on the simulator: distributed BFS and flooding,
    in both the paper's loss-free model and fault-tolerant (ARQ-lifted)
    form.  Used by tests (to validate the engine against sequential
    BFS), the overlay-broadcast experiment (E10), and the fault
    experiment (E21). *)

val bfs :
  ?faults:Fault.t ->
  ?tracer:Trace.t ->
  Graphlib.Graph.t ->
  root:int ->
  Sim.stats * int array
(** Layered BFS from [root] with unit-word messages.  Returns the
    per-node distances ([-1] when unreachable) and the round/message
    statistics.  Completes in eccentricity+1 rounds.  Under a fault
    plan this protocol is {e fragile by design} — a lost announcement
    silently truncates the tree; use {!reliable_bfs} on lossy
    networks. *)

val flood :
  ?faults:Fault.t ->
  ?tracer:Trace.t ->
  Graphlib.Graph.t ->
  root:int ->
  payload_words:int ->
  Sim.stats * bool array
(** Broadcast a [payload_words]-word message from [root] by flooding:
    every node forwards the first copy it receives to all neighbors
    except the sender.  Returns reachability.  Like {!bfs}, fragile
    under faults. *)

(** {1 Fault-tolerant variants}

    The same algorithms as self-contained node programs lifted through
    {!Reliable.Make}: every inner message is sequenced, acknowledged,
    and retransmitted until delivered, so both converge to the correct
    answer under any loss/duplication/delay rates below 1 (crashed
    nodes excepted).  Statistics include all ARQ traffic. *)

val reliable_bfs :
  ?max_rounds:int ->
  ?faults:Fault.t ->
  ?tracer:Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?spans:Obs.Span.t ->
  Graphlib.Graph.t ->
  root:int ->
  Sim.stats * int array
(** Unweighted Bellman-Ford from [root] over reliable links: nodes
    re-announce on every improvement, so distances are correct no
    matter how deliveries are reordered.  On a loss-free network the
    distance array equals {!bfs}'s. *)

val reliable_flood :
  ?max_rounds:int ->
  ?faults:Fault.t ->
  ?tracer:Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?spans:Obs.Span.t ->
  Graphlib.Graph.t ->
  root:int ->
  payload_words:int ->
  Sim.stats * bool array
(** Flooding over reliable links: reaches every live node in [root]'s
    component at any loss rate below 1. *)
