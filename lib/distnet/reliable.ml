module Graph = Graphlib.Graph

type config = {
  initial_rto : int;
  max_rto : int;
  max_retries : int;
  backoff : float;
}

let default_config =
  { initial_rto = 3; max_rto = 32; max_retries = 12; backoff = 2. }

let initial_rto = default_config.initial_rto
let max_rto = default_config.max_rto
let max_retries = default_config.max_retries

(* One policy for every instantiation: the ARQ is a transport knob of
   the whole network, not of one protocol functor.  The default IS the
   historical constants, so runs that never touch the config stay
   byte-identical to every pinned trace. *)
let current_config = ref default_config

let config () = !current_config

let set_config c =
  if c.initial_rto < 1 then
    invalid_arg
      (Printf.sprintf "Reliable.set_config: initial_rto %d < 1" c.initial_rto);
  if c.max_rto < c.initial_rto then
    invalid_arg
      (Printf.sprintf "Reliable.set_config: max_rto %d < initial_rto %d"
         c.max_rto c.initial_rto);
  if c.max_retries < 1 then
    invalid_arg
      (Printf.sprintf "Reliable.set_config: max_retries %d < 1" c.max_retries);
  if not (c.backoff >= 1.) then
    invalid_arg
      (Printf.sprintf
         "Reliable.set_config: backoff %g < 1 (1 = fixed retransmit interval)"
         c.backoff);
  current_config := c

module Make (P : Sim.PROTOCOL) = struct
  (* Instruments, shared by every node of this instantiation (the
     counts are network-wide aggregates).  They default to no-ops;
     [use_metrics] swaps in live ones before a run. *)
  let m_retrans =
    ref (Obs.Metrics.counter Obs.Metrics.disabled "arq_retransmissions")

  let m_dead = ref (Obs.Metrics.counter Obs.Metrics.disabled "arq_dead_letters")
  let m_timer = ref (Obs.Metrics.counter Obs.Metrics.disabled "arq_timer_fires")

  let m_ack_latency =
    ref (Obs.Metrics.histogram Obs.Metrics.disabled "arq_ack_latency")

  let m_backoff =
    ref (Obs.Metrics.counter Obs.Metrics.disabled "arq_backoff_escalations")

  let use_metrics m =
    m_retrans := Obs.Metrics.counter m "arq_retransmissions";
    m_dead := Obs.Metrics.counter m "arq_dead_letters";
    m_timer := Obs.Metrics.counter m "arq_timer_fires";
    m_ack_latency := Obs.Metrics.histogram m "arq_ack_latency";
    m_backoff := Obs.Metrics.counter m "arq_backoff_escalations"

  (* Causal spans, same sharing discipline as the instruments: one
     [Arq] span per stop-and-wait exchange (first transmission →
     acknowledgement), with each retransmission a point-event linked
     to it, so the critical path can tell a slow hop from a lossy one. *)
  let s_spans = ref Obs.Span.disabled
  let use_spans s = s_spans := s

  type message = { acks : int list; data : (int * P.message) option }

  let message_words { acks; data } =
    let d = match data with Some (_, m) -> 1 + P.message_words m | None -> 0 in
    Stdlib.max 1 (List.length acks + d)

  type peer = {
    nbr : int;
    mutable next_seq : int;
    queue : P.message Queue.t;  (** inner messages awaiting transmission *)
    mutable inflight : (int * P.message) option;  (** stop-and-wait window *)
    mutable rto : int;
    mutable timer : int;
    mutable retries : int;
    mutable sent_round : int;  (** first transmission of the inflight seq *)
    mutable pending_acks : int list;  (** to piggyback on the next send *)
    received : (int, unit) Hashtbl.t;  (** seqs already delivered inward *)
    mutable span : int;  (** open [Arq] span of the inflight seq, or -1 *)
  }

  type state = {
    v : int;
    mutable inner : P.state;
    peers : peer array;
    index : (int, int) Hashtbl.t;  (** neighbor id -> peers slot *)
    mutable retrans : int;
    mutable dead : int;
    mutable abandoned : int list;  (** peers with >= 1 dead letter *)
  }

  let inner st = st.inner
  let retransmissions st = st.retrans
  let dead_letters st = st.dead
  let suspected st = st.abandoned

  let link_idle st w =
    match Hashtbl.find_opt st.index w with
    | None -> true
    | Some i ->
        let p = st.peers.(i) in
        p.inflight = None && Queue.is_empty p.queue

  let active st =
    Array.exists
      (fun p -> p.inflight <> None || not (Queue.is_empty p.queue))
      st.peers

  let peer_of st w =
    match Hashtbl.find_opt st.index w with
    | Some i -> st.peers.(i)
    | None ->
        invalid_arg
          (Printf.sprintf "Reliable: node %d has no neighbor %d" st.v w)

  let enqueue st msgs =
    List.iter (fun (dst, m) -> Queue.add m (peer_of st dst).queue) msgs

  (* Begin transmitting the next queued message, if any. *)
  let start_next ~owner ~round p =
    match Queue.take_opt p.queue with
    | None -> None
    | Some m ->
        let seq = p.next_seq in
        let rto0 = !current_config.initial_rto in
        p.next_seq <- seq + 1;
        p.inflight <- Some (seq, m);
        p.rto <- rto0;
        p.timer <- rto0;
        p.retries <- 0;
        p.sent_round <- round;
        p.span <-
          Obs.Span.open_span !s_spans ~src:owner ~dst:p.nbr Obs.Span.Arq
            ~name:(Printf.sprintf "seq-%d" seq)
            ~round;
        Some (seq, m)

  (* One round of the sender side for [p]: tick the timer, decide what
     data (if any) goes on the wire this round. *)
  let outgoing st ~round p =
    let data =
      match p.inflight with
      | None -> start_next ~owner:st.v ~round p
      | Some (seq, m) ->
          p.timer <- p.timer - 1;
          if p.timer > 0 then None
          else if p.retries >= !current_config.max_retries then begin
            (* The peer is not answering (crashed, or the link is
               hopeless): abandon, move on. *)
            Obs.Metrics.incr !m_timer;
            p.inflight <- None;
            st.dead <- st.dead + 1;
            Obs.Metrics.incr !m_dead;
            if not (List.mem p.nbr st.abandoned) then
              st.abandoned <- p.nbr :: st.abandoned;
            Obs.Span.drop !s_spans ~round ~reason:"dead-letter" p.span;
            p.span <- -1;
            start_next ~owner:st.v ~round p
          end
          else begin
            Obs.Prof.enter (Obs.Prof.current ()) "arq_retransmit";
            Obs.Metrics.incr !m_timer;
            p.retries <- p.retries + 1;
            let c = !current_config in
            (* Truncated multiplicative backoff; [backoff = 1] is a
               fixed retransmit interval, the default [2] the classic
               doubling.  An escalation is a timeout that actually grew
               the window. *)
            let next =
              Stdlib.min c.max_rto
                (Stdlib.max p.rto
                   (int_of_float (float_of_int p.rto *. c.backoff)))
            in
            if next > p.rto then Obs.Metrics.incr !m_backoff;
            p.rto <- next;
            p.timer <- next;
            st.retrans <- st.retrans + 1;
            Obs.Metrics.incr !m_retrans;
            ignore
              (Obs.Span.span !s_spans ~parent:p.span ~src:st.v ~dst:p.nbr
                 Obs.Span.Retransmit
                 ~name:(Printf.sprintf "seq-%d" seq)
                 ~start_round:round ~stop_round:round);
            Obs.Prof.leave (Obs.Prof.current ());
            Some (seq, m)
          end
    in
    let acks = p.pending_acks in
    p.pending_acks <- [];
    if data = None && acks = [] then None
    else Some (p.nbr, { acks; data })

  (* The timer sweep: every peer's RTO ticks here, every round.  This
     is the ARQ's per-round fixed cost, so it gets its own region (with
     retransmissions attributed separately inside it). *)
  let flush st ~round =
    let prof = Obs.Prof.current () in
    Obs.Prof.enter prof "arq_timer_sweep";
    let out =
      Array.fold_left
        (fun out p ->
          match outgoing st ~round p with Some m -> m :: out | None -> out)
        [] st.peers
    in
    Obs.Prof.leave prof;
    out

  let init g v =
    let nbrs = Array.of_list (Graph.neighbors g v) in
    let peers =
      Array.map
        (fun nbr ->
          {
            nbr;
            next_seq = 0;
            queue = Queue.create ();
            inflight = None;
            rto = !current_config.initial_rto;
            timer = 0;
            retries = 0;
            sent_round = 0;
            pending_acks = [];
            received = Hashtbl.create 8;
            span = -1;
          })
        nbrs
    in
    let index = Hashtbl.create (Array.length nbrs) in
    Array.iteri (fun i p -> Hashtbl.replace index p.nbr i) peers;
    let inner, msgs = P.init g v in
    let st =
      { v; inner; peers; index; retrans = 0; dead = 0; abandoned = [] }
    in
    enqueue st msgs;
    (st, flush st ~round:0)

  (* Forget everything about one peer's sessions — both directions.
     Called when the peer restarts with a fresh incarnation: its ARQ
     state is gone, so our sequence numbers mean nothing to it (and its
     pre-crash acks must never complete our new transmissions), and the
     dedup table must not swallow the reborn peer's restarted sequence
     numbers.  Also clears the peer from [abandoned]: the suspicion it
     earned by dying belongs to the old incarnation.  Callers tracking
     [suspected] deltas positionally must re-baseline after this. *)
  let reset_peer st ~round w =
    match Hashtbl.find_opt st.index w with
    | None -> ()
    | Some i ->
        let p = st.peers.(i) in
        (match p.inflight with
        | Some _ ->
            Obs.Span.drop !s_spans ~round ~reason:"session-reset" p.span
        | None -> ());
        p.span <- -1;
        p.inflight <- None;
        p.next_seq <- 0;
        Queue.clear p.queue;
        p.rto <- !current_config.initial_rto;
        p.timer <- 0;
        p.retries <- 0;
        p.sent_round <- round;
        p.pending_acks <- [];
        Hashtbl.reset p.received;
        st.abandoned <- List.filter (fun x -> x <> w) st.abandoned

  let receive g ~round v st inbox =
    let deliveries = ref [] in
    List.iter
      (fun (w, { acks; data }) ->
        let p = peer_of st w in
        List.iter
          (fun a ->
            match p.inflight with
            | Some (seq, _) when seq = a ->
                Obs.Metrics.observe !m_ack_latency (round - p.sent_round);
                Obs.Span.close !s_spans ~round p.span;
                p.span <- -1;
                p.inflight <- None;
                p.rto <- !current_config.initial_rto;
                p.retries <- 0
            | _ -> () (* stale ack from an earlier retransmission *))
          acks;
        match data with
        | None -> ()
        | Some (seq, payload) ->
            (* Ack every receipt — a duplicate means our previous ack
               was lost (or the network duplicated the data). *)
            if not (List.mem seq p.pending_acks) then
              p.pending_acks <- seq :: p.pending_acks;
            if not (Hashtbl.mem p.received seq) then begin
              Hashtbl.replace p.received seq ();
              deliveries := (w, payload) :: !deliveries
            end)
      inbox;
    let inner, outs = P.receive g ~round v st.inner (List.rev !deliveries) in
    st.inner <- inner;
    enqueue st outs;
    (st, flush st ~round)
end
