(** Deterministic fault plans for the network simulator.

    A fault plan decides, for every message the engine processes, its
    {e fate}: delivered as-is, lost, duplicated, or held back a bounded
    number of rounds — plus a crash-stop schedule for nodes and a
    {e churn plan} for the topology itself (edges going down and up,
    link partitions with an optional heal round, late node joins).  All
    random decisions come from a {!Util.Prng} stream seeded once, so a
    run is reproducible from [(graph seed, fault seed)] alone; a
    {!scripted} plan takes its decisions from a recorded {!Trace}
    instead, which is how replay reproduces a run bit-for-bit.

    Crash-recovery semantics: a node with crash round [r] participates
    fully in rounds [< r]; from round [r] on it neither sends nor
    receives.  Messages it put on the wire in round [r - 1] are still
    delivered (they had already left the node).  A node may additionally
    carry a {e restart} entry [(v, r')] with [r' > r]: it comes back at
    the start of round [r'] with a fresh {e incarnation number}, and the
    engine discards any message sent by or addressed to the old
    incarnation.  Without a restart entry the crash is permanent
    (crash-stop, the pre-existing model).

    Churn semantics: the engine applies the scheduled actions of round
    [r] at the start of round [r], before any delivery of that round.
    A message in flight (including one held back by a delay fate) over
    a link that is down at its delivery round is dropped.  A node with
    join round [r] is absent before [r]: it neither sends nor receives,
    and messages addressed to it are dropped. *)

type t

(** One scheduled topology change.  Edges are named by their endpoints
    [(u, v)] (order irrelevant) and must exist in the graph the plan is
    used with — {!make} validates them when given the graph. *)
type churn_event =
  | Edge_down of { round : int; u : int; v : int }
      (** the link [u]-[v] goes down at the start of [round] *)
  | Edge_up of { round : int; u : int; v : int }
      (** the link comes (back) up at the start of [round] *)
  | Partition of { round : int; edges : (int * int) list; heal : int option }
      (** a set of links goes down together; with [heal = Some r'] they
          all come back at [r'] ([r' > round] required) *)
  | Join of { round : int; node : int }
      (** the node first appears at the start of [round] ([round >= 1]) *)

type spec = {
  drop : float;  (** per-message loss probability, in [0,1] *)
  dup : float;  (** probability a delivered message arrives twice *)
  delay : float;  (** probability a message is held back *)
  max_delay : int;  (** held-back messages wait uniform [1..max_delay] rounds *)
  crashes : (int * int) list;  (** [(node, round)] crash schedule *)
  restarts : (int * int) list;
      (** [(node, round)] restart schedule: each node must also appear
          in [crashes] with an earlier round, and comes back at the
          start of its restart round with incarnation 1 *)
  churn : churn_event list;  (** topology changes, applied between rounds *)
  drop_profile : (int * float) list;
      (** piecewise-constant loss-rate schedule overriding [drop]:
          segment [(r, p)] makes the per-message loss probability [p]
          from round [r] until the next segment's round.  Rounds before
          the first segment use [drop]; the empty list means [drop]
          throughout.  This is how bursty (Gilbert–Elliott) loss
          compiles down to a plan: one segment per channel state
          change. *)
}

val default_spec : spec
(** All rates zero, no crashes, no churn: [make ~seed default_spec]
    behaves exactly like {!none}. *)

(** The fate of one processed message. *)
type fate =
  | Lost
  | Pass of { dup : bool; delay : int }  (** [delay = 0] means deliver now *)

val none : t
(** The loss-free plan: every fate is [Pass {dup = false; delay = 0}],
    nothing crashes, the topology is static, and no PRNG is consulted.
    This is the default of [Sim.create] and preserves the seed engine's
    behavior exactly. *)

val make : seed:int -> ?graph:Graphlib.Graph.t -> spec -> t
(** A randomized plan drawing i.i.d. per-message decisions from a
    fresh [Util.Prng] stream.  When [graph] is given, every vertex and
    edge the crash/churn schedules reference is checked against it.
    @raise Invalid_argument if a rate is outside [0,1], [max_delay < 1]
    while [delay > 0], a crash round is negative, the same node has two
    crash entries, a churn event references a negative round or (given
    [graph]) a vertex or edge the graph does not have, a partition is
    empty or heals no later than it starts, a node has two join
    entries or a join round [< 1], a restart names a node without a
    crash entry, restarts no later than that node's crash round, has a
    duplicate entry, or (given [graph]) references a vertex the graph
    does not have, or a [drop_profile] segment has a negative round, a
    rate outside [0,1], or a round not strictly after its
    predecessor's.  Churn, restart, and profile rejections name the
    offending event/segment index and field. *)

val scripted : Trace.event list -> t
(** A plan that replays the decisions recorded in a trace: the fate of
    the message processed at [(round, src, dst)] is rebuilt from that
    trace's [Drop Loss]/[Dup]/[Delay] events, the crash and restart
    schedules from its [Crash]/[Restart] events, and the churn plan
    from its [Edge_down]/[Edge_up]/[Join] events (partition/heal
    markers are informational: each partitioned link is also traced as
    its own edge event; stale-incarnation drops are schedule-induced
    and re-derived).  Messages with no recorded fault event pass
    through untouched, so replaying a trace on the same graph and
    protocol reproduces the original run bit-for-bit. *)

val churn_of_trace : Trace.event list -> churn_event list
(** The churn events a recorded trace contains
    ([Edge_down]/[Edge_up]/[Join], in trace order) — for feeding one
    run's topology history into another run's churn plan
    (the CLI's [--churn-trace]). *)

val is_none : t -> bool
(** [true] only for {!none} — lets the engine skip fault bookkeeping
    entirely on the loss-free fast path. *)

val fate : t -> round:int -> src:int -> dst:int -> fate
(** The fate of the message from [src] to [dst] processed in [round].
    Consumes PRNG state on randomized plans: the engine must call it
    exactly once per processed message, in deterministic order. *)

val crashed : t -> round:int -> int -> bool
(** [crashed t ~round v]: is [v] down at [round]?  True on the
    half-open interval [crash_round, restart_round) — or from the crash
    round on forever when the node has no restart entry. *)

val incarnation : t -> round:int -> int -> int
(** [incarnation t ~round v]: the incarnation of [v] current at
    [round] — [0] before its restart round (including forever for
    nodes that never restart), [1] from the restart round on. *)

val crash_schedule : t -> (int * int) list
(** [(round, node)] pairs sorted by round — the engine uses this to
    emit [Crash] trace events as the rounds are reached. *)

val restart_schedule : t -> (int * int) list
(** [(round, node)] pairs sorted by round — the engine uses this to
    emit [Restart] trace events as the rounds are reached. *)

val has_restarts : t -> bool
(** Does the plan schedule any restart at all?  [false] keeps the
    engine on the crash-stop fast path, byte-identical to before the
    crash-recovery model existed. *)

val last_restart_round : t -> int
(** The latest scheduled restart round ([0] when none) — lets a driver
    idle the engine forward until every reborn node is back. *)

(** {1 Churn schedule}

    The engine consumes the normalized schedule below; protocol code
    normally only needs {!joined} (and [Sim.link_up] for edges). *)

(** One normalized scheduled action.  A [Partition] churn event
    appears as one [Act_partition] (the engine downs each link and
    traces the marker) and, when healing, one later [Act_heal]. *)
type action =
  | Act_edge_down of { u : int; v : int }
  | Act_edge_up of { u : int; v : int }
  | Act_partition of { links : (int * int) list; heal : int option }
  | Act_heal of { links : (int * int) list }
  | Act_join of int

val churn_schedule : t -> (int * action) list
(** [(round, action)] pairs sorted by round (stable within a round). *)

val has_churn : t -> bool
(** Does the plan schedule any topology change at all? *)

val last_churn_round : t -> int
(** The latest scheduled churn round ([0] for a static topology) —
    lets a driver idle the engine forward until all churn has landed. *)

val join_schedule : t -> (int * int) list
(** [(round, node)] pairs sorted by round, one per late joiner. *)

val joined : t -> round:int -> int -> bool
(** [joined t ~round v]: is [v] present at [round]?  Always [true] for
    nodes without a join entry. *)
