(** Deterministic fault plans for the network simulator.

    A fault plan decides, for every message the engine processes, its
    {e fate}: delivered as-is, lost, duplicated, or held back a bounded
    number of rounds — plus a crash-stop schedule for nodes.  All
    random decisions come from a {!Util.Prng} stream seeded once, so a
    run is reproducible from [(graph seed, fault seed)] alone; a
    {!scripted} plan takes its decisions from a recorded {!Trace}
    instead, which is how replay reproduces a run bit-for-bit.

    Crash-stop semantics: a node with crash round [r] participates
    fully in rounds [< r]; from round [r] on it neither sends nor
    receives.  Messages it put on the wire in round [r - 1] are still
    delivered (they had already left the node). *)

type t

type spec = {
  drop : float;  (** per-message loss probability, in [0,1] *)
  dup : float;  (** probability a delivered message arrives twice *)
  delay : float;  (** probability a message is held back *)
  max_delay : int;  (** held-back messages wait uniform [1..max_delay] rounds *)
  crashes : (int * int) list;  (** [(node, round)] crash-stop schedule *)
}

val default_spec : spec
(** All rates zero, no crashes: [make ~seed default_spec] behaves
    exactly like {!none}. *)

(** The fate of one processed message. *)
type fate =
  | Lost
  | Pass of { dup : bool; delay : int }  (** [delay = 0] means deliver now *)

val none : t
(** The loss-free plan: every fate is [Pass {dup = false; delay = 0}],
    nothing crashes, and no PRNG is consulted.  This is the default of
    [Sim.create] and preserves the seed engine's behavior exactly. *)

val make : seed:int -> spec -> t
(** A randomized plan drawing i.i.d. per-message decisions from a
    fresh [Util.Prng] stream.
    @raise Invalid_argument if a rate is outside [0,1], [max_delay < 1]
    while [delay > 0], or a crash round is negative. *)

val scripted : Trace.event list -> t
(** A plan that replays the random decisions recorded in a trace: the
    fate of the message processed at [(round, src, dst)] is rebuilt
    from that trace's [Drop Loss]/[Dup]/[Delay] events, and the crash
    schedule from its [Crash] events.  Messages with no recorded fault
    event pass through untouched, so replaying a trace on the same
    graph and protocol reproduces the original run bit-for-bit. *)

val is_none : t -> bool
(** [true] only for {!none} — lets the engine skip fault bookkeeping
    entirely on the loss-free fast path. *)

val fate : t -> round:int -> src:int -> dst:int -> fate
(** The fate of the message from [src] to [dst] processed in [round].
    Consumes PRNG state on randomized plans: the engine must call it
    exactly once per processed message, in deterministic order. *)

val crashed : t -> round:int -> int -> bool
(** [crashed t ~round v]: has [v] crash-stopped by [round]? *)

val crash_schedule : t -> (int * int) list
(** [(round, node)] pairs sorted by round — the engine uses this to
    emit [Crash] trace events as the rounds are reached. *)
