type churn_event =
  | Edge_down of { round : int; u : int; v : int }
  | Edge_up of { round : int; u : int; v : int }
  | Partition of { round : int; edges : (int * int) list; heal : int option }
  | Join of { round : int; node : int }

type spec = {
  drop : float;
  dup : float;
  delay : float;
  max_delay : int;
  crashes : (int * int) list;
  restarts : (int * int) list;
  churn : churn_event list;
  drop_profile : (int * float) list;
}

let default_spec =
  {
    drop = 0.;
    dup = 0.;
    delay = 0.;
    max_delay = 1;
    crashes = [];
    restarts = [];
    churn = [];
    drop_profile = [];
  }

type fate = Lost | Pass of { dup : bool; delay : int }

let pass = Pass { dup = false; delay = 0 }

type action =
  | Act_edge_down of { u : int; v : int }
  | Act_edge_up of { u : int; v : int }
  | Act_partition of { links : (int * int) list; heal : int option }
  | Act_heal of { links : (int * int) list }
  | Act_join of int

(* Normalized per-round churn schedule: every churn event contributes
   one action at its round; a partition with a heal round contributes a
   second action at the heal round.  Stable sort keeps the listed order
   within a round. *)
type dynamics = {
  schedule : (int * action) list;
  joins : (int, int) Hashtbl.t;  (* node -> first round it is present *)
  last_round : int;  (* latest scheduled round, 0 when static *)
}

let no_dynamics = { schedule = []; joins = Hashtbl.create 1; last_round = 0 }

let dynamics_of_churn churn =
  if churn = [] then no_dynamics
  else begin
    let joins = Hashtbl.create 8 in
    let acts =
      List.concat_map
        (function
          | Edge_down { round; u; v } -> [ (round, Act_edge_down { u; v }) ]
          | Edge_up { round; u; v } -> [ (round, Act_edge_up { u; v }) ]
          | Partition { round; edges; heal } -> (
              let cut = (round, Act_partition { links = edges; heal }) in
              match heal with
              | None -> [ cut ]
              | Some h -> [ cut; (h, Act_heal { links = edges }) ])
          | Join { round; node } ->
              Hashtbl.replace joins node round;
              [ (round, Act_join node) ])
        churn
    in
    let schedule = List.stable_sort (fun (r, _) (r', _) -> compare r r') acts in
    let last_round = List.fold_left (fun acc (r, _) -> max acc r) 0 schedule in
    { schedule; joins; last_round }
  end

(* Scripted fates are keyed by (round, src, dst); the engine processes
   at most one fresh message per directed edge per round, so the key is
   unique. *)
type script = { fates : (int * int * int, fate) Hashtbl.t }

type t =
  | None_
  | Random of {
      rng : Util.Prng.t;
      spec : spec;
      profile : (int * float) array;  (* sorted drop_profile, for search *)
      crashed_at : (int, int) Hashtbl.t;
      restarted_at : (int, int) Hashtbl.t;
      dyn : dynamics;
    }
  | Scripted of {
      script : script;
      crashed_at : (int, int) Hashtbl.t;
      restarted_at : (int, int) Hashtbl.t;
      dyn : dynamics;
    }

let none = None_
let is_none = function None_ -> true | _ -> false

let crash_table crashes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, r) ->
      match Hashtbl.find_opt tbl v with
      | Some r' when r' <= r -> ()
      | _ -> Hashtbl.replace tbl v r)
    crashes;
  tbl

let restart_table restarts =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (v, r) -> Hashtbl.replace tbl v r) restarts;
  tbl

(* Restart rejections follow the churn discipline: every error names
   the offending event's index in the listed plan and the field at
   fault.  A restart is only meaningful for a node that crashed, and
   only strictly after its crash round — the node must have been down
   for at least one round for the incarnation to change. *)
let validate_restarts ?graph ~crashed_at restarts =
  let seen = Hashtbl.create 8 in
  List.iteri
    (fun i (v, r) ->
      let reject fmt =
        Printf.ksprintf
          (fun detail ->
            invalid_arg
              (Printf.sprintf "Fault.make: restart event #%d: %s" i detail))
          fmt
      in
      (match graph with
      | Some g when v < 0 || v >= Graphlib.Graph.n g ->
          reject "node references vertex %d outside this %d-vertex graph" v
            (Graphlib.Graph.n g)
      | _ -> if v < 0 then reject "node references vertex %d" v);
      (match Hashtbl.find_opt crashed_at v with
      | None ->
          reject "node %d has no crash entry (only crashed nodes can restart)"
            v
      | Some rc ->
          if r <= rc then
            reject "restart round %d not after node %d's crash round %d" r v
              rc);
      if Hashtbl.mem seen v then reject "duplicate restart entry for node %d" v;
      Hashtbl.replace seen v ())
    restarts

(* Every churn rejection names the offending event — its index in the
   listed plan, its constructor, and the field at fault — so a plan
   sampled from a hundred-event scenario spec points straight at the
   bad entry instead of making the user bisect the list. *)
let validate_churn ?graph churn =
  let kind_name = function
    | Edge_down _ -> "edge_down"
    | Edge_up _ -> "edge_up"
    | Partition _ -> "partition"
    | Join _ -> "join"
  in
  let seen_join = Hashtbl.create 8 in
  List.iteri
    (fun i ev ->
      let reject fmt =
        Printf.ksprintf
          (fun detail ->
            invalid_arg
              (Printf.sprintf "Fault.make: churn event #%d (%s): %s" i
                 (kind_name ev) detail))
          fmt
      in
      let check_vertex field v =
        match graph with
        | Some g when v < 0 || v >= Graphlib.Graph.n g ->
            reject "%s references vertex %d outside this %d-vertex graph"
              field v (Graphlib.Graph.n g)
        | _ -> if v < 0 then reject "%s references vertex %d" field v
      in
      let check_edge field (u, v) =
        check_vertex field u;
        check_vertex field v;
        match graph with
        | Some g when Graphlib.Graph.find_edge g u v = None ->
            reject "%s references edge %d-%d not in the graph" field u v
        | _ -> ()
      in
      let check_round field r =
        if r < 0 then reject "%s %d < 0" field r
      in
      match ev with
      | Edge_down { round; u; v } | Edge_up { round; u; v } ->
          check_round "round" round;
          check_edge "edge" (u, v)
      | Partition { round; edges; heal } -> (
          check_round "round" round;
          if edges = [] then reject "edges list is empty";
          List.iter (check_edge "edges") edges;
          match heal with
          | Some h when h <= round ->
              reject "heal round %d <= partition round %d" h round
          | _ -> ())
      | Join { round; node } ->
          check_vertex "node" node;
          if round < 1 then
            reject
              "round %d < 1 (nodes present from the start need no join event)"
              round;
          if Hashtbl.mem seen_join node then
            reject "duplicate join entry for node %d" node;
          Hashtbl.replace seen_join node ())
    churn

(* The profile is a piecewise-constant override of [spec.drop]: entry
   [(r, p)] sets the per-message loss rate to [p] from round [r] until
   the next entry.  Rejections name the offending segment index and
   field, same discipline as churn. *)
let validate_drop_profile profile =
  List.iteri
    (fun i (r, p) ->
      let reject fmt =
        Printf.ksprintf
          (fun detail ->
            invalid_arg
              (Printf.sprintf "Fault.make: drop_profile segment #%d: %s" i
                 detail))
          fmt
      in
      if r < 0 then reject "round %d < 0" r;
      if not (p >= 0. && p <= 1.) then reject "rate %g not in [0,1]" p)
    profile;
  let rec sorted = function
    | (r1, _) :: ((r2, _) :: _ as tl) ->
        if r2 <= r1 then
          invalid_arg
            (Printf.sprintf
               "Fault.make: drop_profile segment rounds must be strictly \
                increasing (round %d after round %d)"
               r2 r1);
        sorted tl
    | _ -> ()
  in
  sorted profile

let make ~seed ?graph spec =
  let check_rate name p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg (Printf.sprintf "Fault.make: %s rate %g not in [0,1]" name p)
  in
  check_rate "drop" spec.drop;
  check_rate "dup" spec.dup;
  check_rate "delay" spec.delay;
  if spec.delay > 0. && spec.max_delay < 1 then
    invalid_arg "Fault.make: max_delay must be >= 1 when delay > 0";
  let seen_crash = Hashtbl.create 8 in
  List.iter
    (fun (v, r) ->
      if r < 0 then
        invalid_arg (Printf.sprintf "Fault.make: node %d crash round %d < 0" v r);
      (match graph with
      | Some g when v < 0 || v >= Graphlib.Graph.n g ->
          invalid_arg
            (Printf.sprintf
               "Fault.make: crash references vertex %d outside this %d-vertex \
                graph"
               v (Graphlib.Graph.n g))
      | _ -> ());
      if Hashtbl.mem seen_crash v then
        invalid_arg
          (Printf.sprintf "Fault.make: duplicate crash entry for node %d" v);
      Hashtbl.replace seen_crash v ())
    spec.crashes;
  validate_churn ?graph spec.churn;
  validate_drop_profile spec.drop_profile;
  let crashed_at = crash_table spec.crashes in
  validate_restarts ?graph ~crashed_at spec.restarts;
  Random
    {
      rng = Util.Prng.create ~seed;
      spec;
      profile = Array.of_list spec.drop_profile;
      crashed_at;
      restarted_at = restart_table spec.restarts;
      dyn = dynamics_of_churn spec.churn;
    }

let scripted events =
  let fates = Hashtbl.create 256 in
  let crashes = ref [] in
  let restarts = ref [] in
  let rev_churn = ref [] in
  let merge key f =
    let dup, delay =
      match Hashtbl.find_opt fates key with
      | Some (Pass { dup; delay }) -> (dup, delay)
      | Some Lost | None -> (false, 0)
    in
    Hashtbl.replace fates key
      (match f with
      | `Drop -> Lost
      | `Dup -> Pass { dup = true; delay }
      | `Delay k -> Pass { dup; delay = k })
  in
  List.iter
    (fun (e : Trace.event) ->
      let key = (e.Trace.round, e.Trace.src, e.Trace.dst) in
      match e.Trace.kind with
      | Trace.Drop Trace.Loss -> merge key `Drop
      | Trace.Dup -> merge key `Dup
      | Trace.Delay k -> merge key (`Delay k)
      | Trace.Crash -> crashes := (e.Trace.src, e.Trace.round) :: !crashes
      | Trace.Restart -> restarts := (e.Trace.src, e.Trace.round) :: !restarts
      | Trace.Edge_down ->
          rev_churn :=
            Edge_down { round = e.Trace.round; u = e.Trace.src; v = e.Trace.dst }
            :: !rev_churn
      | Trace.Edge_up ->
          rev_churn :=
            Edge_up { round = e.Trace.round; u = e.Trace.src; v = e.Trace.dst }
            :: !rev_churn
      | Trace.Join ->
          rev_churn :=
            Join { round = e.Trace.round; node = e.Trace.src } :: !rev_churn
      (* Send/Deliver lines, schedule-induced drops, and partition/heal
         markers are informational: the replay engine re-derives them
         (each partitioned link is also traced as its own edge event). *)
      | Trace.Send | Trace.Deliver | Trace.Drop _ | Trace.Partition
      | Trace.Heal ->
          ())
    events;
  Scripted
    {
      script = { fates };
      crashed_at = crash_table !crashes;
      restarted_at = restart_table !restarts;
      dyn = dynamics_of_churn (List.rev !rev_churn);
    }

let churn_of_trace events =
  List.filter_map
    (fun (e : Trace.event) ->
      match e.Trace.kind with
      | Trace.Edge_down ->
          Some (Edge_down { round = e.Trace.round; u = e.Trace.src; v = e.Trace.dst })
      | Trace.Edge_up ->
          Some (Edge_up { round = e.Trace.round; u = e.Trace.src; v = e.Trace.dst })
      | Trace.Join -> Some (Join { round = e.Trace.round; node = e.Trace.src })
      | _ -> None)
    events

let fate t ~round ~src ~dst =
  match t with
  | None_ -> pass
  | Scripted { script; _ } -> (
      match Hashtbl.find_opt script.fates (round, src, dst) with
      | Some f -> f
      | None -> pass)
  | Random { rng; spec; profile; _ } ->
      (* Fixed draw order, one decision chain per message: the engine
         calls this exactly once per processed message in deterministic
         order, which keeps randomized runs reproducible from the seed. *)
      let drop_rate =
        (* Last profile segment starting at or before [round]; the base
           rate before the first segment (and with no profile at all). *)
        if Array.length profile = 0 || fst profile.(0) > round then spec.drop
        else begin
          let lo = ref 0 and hi = ref (Array.length profile - 1) in
          while !lo < !hi do
            let mid = (!lo + !hi + 1) / 2 in
            if fst profile.(mid) <= round then lo := mid else hi := mid - 1
          done;
          snd profile.(!lo)
        end
      in
      if drop_rate > 0. && Util.Prng.bernoulli rng drop_rate then Lost
      else
        let dup = spec.dup > 0. && Util.Prng.bernoulli rng spec.dup in
        let delay =
          if spec.delay > 0. && Util.Prng.bernoulli rng spec.delay then
            1 + Util.Prng.int rng spec.max_delay
          else 0
        in
        if dup || delay > 0 then Pass { dup; delay } else pass

let crashed_table = function
  | None_ -> None
  | Random { crashed_at; _ } | Scripted { crashed_at; _ } -> Some crashed_at

let restarted_table = function
  | None_ -> None
  | Random { restarted_at; _ } | Scripted { restarted_at; _ } ->
      Some restarted_at

(* Crash-recovery: a node is down on the half-open interval
   [crash_round, restart_round); without a restart entry the crash is
   permanent (crash-stop, the pre-existing semantics). *)
let crashed t ~round v =
  match crashed_table t with
  | None -> false
  | Some tbl -> (
      match Hashtbl.find_opt tbl v with
      | None -> false
      | Some rc ->
          round >= rc
          && (match restarted_table t with
             | None -> true
             | Some rt -> (
                 match Hashtbl.find_opt rt v with
                 | Some rr -> round < rr
                 | None -> true)))

let incarnation t ~round v =
  match restarted_table t with
  | None -> 0
  | Some rt -> (
      match Hashtbl.find_opt rt v with
      | Some rr when round >= rr -> 1
      | _ -> 0)

let crash_schedule t =
  match crashed_table t with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun v r acc -> (r, v) :: acc) tbl []
      |> List.sort compare

let restart_schedule t =
  match restarted_table t with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun v r acc -> (r, v) :: acc) tbl []
      |> List.sort compare

let has_restarts t =
  match restarted_table t with
  | None -> false
  | Some tbl -> Hashtbl.length tbl > 0

let last_restart_round t =
  match restarted_table t with
  | None -> 0
  | Some tbl -> Hashtbl.fold (fun _ r acc -> max acc r) tbl 0

let dynamics = function
  | None_ -> no_dynamics
  | Random { dyn; _ } | Scripted { dyn; _ } -> dyn

let churn_schedule t = (dynamics t).schedule
let has_churn t = (dynamics t).schedule <> []
let last_churn_round t = (dynamics t).last_round

let join_schedule t =
  Hashtbl.fold (fun v r acc -> (r, v) :: acc) (dynamics t).joins []
  |> List.sort compare

let joined t ~round v =
  match Hashtbl.find_opt (dynamics t).joins v with
  | None -> true
  | Some r -> round >= r
