type spec = {
  drop : float;
  dup : float;
  delay : float;
  max_delay : int;
  crashes : (int * int) list;
}

let default_spec =
  { drop = 0.; dup = 0.; delay = 0.; max_delay = 1; crashes = [] }

type fate = Lost | Pass of { dup : bool; delay : int }

let pass = Pass { dup = false; delay = 0 }

(* Scripted fates are keyed by (round, src, dst); the engine processes
   at most one fresh message per directed edge per round, so the key is
   unique. *)
type script = { fates : (int * int * int, fate) Hashtbl.t }

type t =
  | None_
  | Random of { rng : Util.Prng.t; spec : spec; crashed_at : (int, int) Hashtbl.t }
  | Scripted of { script : script; crashed_at : (int, int) Hashtbl.t }

let none = None_
let is_none = function None_ -> true | _ -> false

let crash_table crashes =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, r) ->
      match Hashtbl.find_opt tbl v with
      | Some r' when r' <= r -> ()
      | _ -> Hashtbl.replace tbl v r)
    crashes;
  tbl

let make ~seed spec =
  let check_rate name p =
    if not (p >= 0. && p <= 1.) then
      invalid_arg (Printf.sprintf "Fault.make: %s rate %g not in [0,1]" name p)
  in
  check_rate "drop" spec.drop;
  check_rate "dup" spec.dup;
  check_rate "delay" spec.delay;
  if spec.delay > 0. && spec.max_delay < 1 then
    invalid_arg "Fault.make: max_delay must be >= 1 when delay > 0";
  List.iter
    (fun (v, r) ->
      if r < 0 then
        invalid_arg (Printf.sprintf "Fault.make: node %d crash round %d < 0" v r))
    spec.crashes;
  Random
    {
      rng = Util.Prng.create ~seed;
      spec;
      crashed_at = crash_table spec.crashes;
    }

let scripted events =
  let fates = Hashtbl.create 256 in
  let crashes = ref [] in
  let merge key f =
    let dup, delay =
      match Hashtbl.find_opt fates key with
      | Some (Pass { dup; delay }) -> (dup, delay)
      | Some Lost | None -> (false, 0)
    in
    Hashtbl.replace fates key
      (match f with
      | `Drop -> Lost
      | `Dup -> Pass { dup = true; delay }
      | `Delay k -> Pass { dup; delay = k })
  in
  List.iter
    (fun (e : Trace.event) ->
      let key = (e.Trace.round, e.Trace.src, e.Trace.dst) in
      match e.Trace.kind with
      | Trace.Drop Trace.Loss -> merge key `Drop
      | Trace.Dup -> merge key `Dup
      | Trace.Delay k -> merge key (`Delay k)
      | Trace.Crash -> crashes := (e.Trace.src, e.Trace.round) :: !crashes
      (* Send/Deliver lines and crash-induced drops are informational:
         the replay engine re-derives them. *)
      | Trace.Send | Trace.Deliver | Trace.Drop _ -> ())
    events;
  Scripted { script = { fates }; crashed_at = crash_table !crashes }

let fate t ~round ~src ~dst =
  match t with
  | None_ -> pass
  | Scripted { script; _ } -> (
      match Hashtbl.find_opt script.fates (round, src, dst) with
      | Some f -> f
      | None -> pass)
  | Random { rng; spec; _ } ->
      (* Fixed draw order, one decision chain per message: the engine
         calls this exactly once per processed message in deterministic
         order, which keeps randomized runs reproducible from the seed. *)
      if spec.drop > 0. && Util.Prng.bernoulli rng spec.drop then Lost
      else
        let dup = spec.dup > 0. && Util.Prng.bernoulli rng spec.dup in
        let delay =
          if spec.delay > 0. && Util.Prng.bernoulli rng spec.delay then
            1 + Util.Prng.int rng spec.max_delay
          else 0
        in
        if dup || delay > 0 then Pass { dup; delay } else pass

let crashed_table = function
  | None_ -> None
  | Random { crashed_at; _ } | Scripted { crashed_at; _ } -> Some crashed_at

let crashed t ~round v =
  match crashed_table t with
  | None -> false
  | Some tbl -> (
      match Hashtbl.find_opt tbl v with Some r -> round >= r | None -> false)

let crash_schedule t =
  match crashed_table t with
  | None -> []
  | Some tbl ->
      Hashtbl.fold (fun v r acc -> (r, v) :: acc) tbl []
      |> List.sort compare
