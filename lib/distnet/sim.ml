module Graph = Graphlib.Graph

type stats = Trace.stats = {
  rounds : int;
  messages : int;
  words : int;
  max_message_words : int;
}

let pp_stats ppf s =
  Format.fprintf ppf "rounds=%d messages=%d words=%d max_msg=%d words" s.rounds
    s.messages s.words s.max_message_words

(* [span] is the causal span opened at send time (-1 when span
   recording is off); a delayed or duplicated copy keeps the id of the
   original transmission.  [inc_src]/[inc_dst] stamp the incarnations
   of both endpoints as of the send round: delivery discards the
   message if either endpoint has since moved to a new incarnation
   (both are 0 under restart-free plans). *)
type 'msg envelope = {
  src : int;
  dst : int;
  words : int;
  span : int;
  inc_src : int;
  inc_dst : int;
  payload : 'msg;
}

exception Link_down of { round : int; src : int; dst : int }

let () =
  Printexc.register_printer (function
    | Link_down { round; src; dst } ->
        Some
          (Printf.sprintf "Sim.Link_down(round %d: link %d-%d is down)" round
             src dst)
    | _ -> None)

type 'msg t = {
  g : Graph.t;
  (* Directed-link slots: edge e gives slot 2e for (u -> v) and 2e+1
     for (v -> u), with u < v.  [link] resolves (src, dst) to a slot in
     O(1) via a per-source hashtable built once. *)
  link : (int, int) Hashtbl.t;
  last_sent : int array;  (** per slot: round counter of the last send *)
  faults : Fault.t;
  tracer : Trace.t option;
  (* Dynamic topology.  [dynamic] is false for churn-free plans, in
     which case no per-message liveness check runs — the static paths
     stay byte-identical to the seed engine. *)
  dynamic : bool;
  (* [restarting] is false for restart-free plans, in which case no
     incarnation is ever consulted and the stale-delivery check never
     runs — crash-stop runs stay byte-identical to before. *)
  restarting : bool;
  edge_alive : bool array;  (** per undirected edge *)
  mutable pending_churn : (int * Fault.action) list;
  (* Messages held back by a Delay fate, keyed by delivery round. *)
  delayed : (int, 'msg envelope list) Hashtbl.t;
  mutable delayed_count : int;
  (* Crash/restart events not yet emitted to the tracer, by round. *)
  mutable pending_crashes : (int * int) list;
  mutable pending_restarts : (int * int) list;
  mutable epoch : int;
  mutable outbox : 'msg envelope list;
  mutable rounds : int;
  mutable messages : int;
  mutable words : int;
  mutable max_message_words : int;
  (* Observability.  [metrics] defaults to the no-op sink; the
     per-round histograms and per-link counters below are no-op
     instruments in that case, so the disabled path costs one tag
     check.  [window_max] tracks the longest message charged since the
     last {!take_window_max} — it is what lets a caller attribute peak
     message length to a phase, since a maximum (unlike the other
     stats fields) cannot be recovered from before/after deltas. *)
  metrics : Obs.Metrics.t;
  h_delivered : Obs.Metrics.histogram;
  h_dropped : Obs.Metrics.histogram;
  h_held : Obs.Metrics.histogram;
  link_load : Obs.Metrics.counter option array;
  mutable window_max : int;
  (* Causal spans: one per transmission, opened at send and closed at
     delivery (or drop).  Defaults to the no-op sink. *)
  spans : Obs.Span.t;
  (* Machine-cost profiling.  Captured from the ambient sink at
     creation; the default is the no-op sink, so unprofiled runs pay
     one tag check per region. *)
  prof : Obs.Prof.t;
}

let key ~n src dst = (src * n) + dst

let trace t ~round kind ~src ~dst ~words =
  match t.tracer with
  | None -> ()
  | Some tr -> Trace.record tr { Trace.round; kind; src; dst; words }

let edge_of_link t u v =
  match Hashtbl.find_opt t.link (key ~n:(Graph.n t.g) u v) with
  | Some slot -> slot / 2
  | None ->
      invalid_arg
        (Printf.sprintf "Sim: churn references edge %d-%d not in the graph" u v)

let flip_link t ~round ~up (u, v) =
  t.edge_alive.(edge_of_link t u v) <- up;
  trace t ~round
    (if up then Trace.Edge_up else Trace.Edge_down)
    ~src:u ~dst:v ~words:0

let apply_action t ~round = function
  | Fault.Act_edge_down { u; v } -> flip_link t ~round ~up:false (u, v)
  | Fault.Act_edge_up { u; v } -> flip_link t ~round ~up:true (u, v)
  | Fault.Act_partition { links; _ } ->
      trace t ~round Trace.Partition ~src:(-1) ~dst:(-1)
        ~words:(List.length links);
      List.iter (flip_link t ~round ~up:false) links
  | Fault.Act_heal { links } ->
      trace t ~round Trace.Heal ~src:(-1) ~dst:(-1) ~words:(List.length links);
      List.iter (flip_link t ~round ~up:true) links
  | Fault.Act_join v -> trace t ~round Trace.Join ~src:v ~dst:(-1) ~words:0

(* Apply every scheduled churn action whose round has arrived.  Actions
   land at the {e start} of their round, before that round's
   deliveries: a message in flight over a link downed this round is
   dropped at delivery time. *)
let apply_churn t ~round =
  Obs.Prof.enter t.prof "sim_churn";
  let rec go = function
    | (r, act) :: rest when r <= round ->
        apply_action t ~round:r act;
        go rest
    | rest -> t.pending_churn <- rest
  in
  go t.pending_churn;
  Obs.Prof.leave t.prof

let create ?(faults = Fault.none) ?tracer ?(metrics = Obs.Metrics.disabled)
    ?(spans = Obs.Span.disabled) g =
  let n = Graph.n g in
  let link = Hashtbl.create (4 * Graph.m g) in
  Graph.iter_edges g (fun e u v ->
      Hashtbl.replace link (key ~n u v) (2 * e);
      Hashtbl.replace link (key ~n v u) ((2 * e) + 1));
  let t =
    {
      g;
      link;
      last_sent = Array.make (Stdlib.max 1 (2 * Graph.m g)) (-1);
      faults;
      tracer;
      dynamic = Fault.has_churn faults;
      restarting = Fault.has_restarts faults;
      edge_alive = Array.make (Stdlib.max 1 (Graph.m g)) true;
      pending_churn = Fault.churn_schedule faults;
      delayed = Hashtbl.create 16;
      delayed_count = 0;
      pending_crashes = Fault.crash_schedule faults;
      pending_restarts = Fault.restart_schedule faults;
      epoch = 0;
      outbox = [];
      rounds = 0;
      messages = 0;
      words = 0;
      max_message_words = 0;
      metrics;
      h_delivered = Obs.Metrics.histogram metrics "sim_round_delivered_words";
      h_dropped = Obs.Metrics.histogram metrics "sim_round_dropped_words";
      h_held = Obs.Metrics.histogram metrics "sim_round_held_words";
      link_load = Array.make (Stdlib.max 1 (2 * Graph.m g)) None;
      window_max = 0;
      spans;
      prof = Obs.Prof.current ();
    }
  in
  (* Round-0 churn (e.g. an edge down from the start) must constrain
     the init sends, which happen before the first step. *)
  if t.dynamic then apply_churn t ~round:0;
  t

let graph t = t.g
let faults t = t.faults
let round t = t.rounds

let edge_up t e =
  if e < 0 || e >= Graph.m t.g then invalid_arg "Sim.edge_up: no such edge";
  t.edge_alive.(e)

let link_up t ~src ~dst =
  match Hashtbl.find_opt t.link (key ~n:(Graph.n t.g) src dst) with
  | Some slot -> t.edge_alive.(slot / 2)
  | None ->
      invalid_arg
        (Printf.sprintf "Sim.link_up: %d -> %d is not a network link" src dst)

let joined t v = Fault.joined t.faults ~round:t.rounds v

let send t ~src ~dst ~words payload =
  if words < 1 then invalid_arg "Sim.send: words must be >= 1";
  match Hashtbl.find_opt t.link (key ~n:(Graph.n t.g) src dst) with
  | None ->
      invalid_arg
        (Printf.sprintf "Sim.send: round %d: %d -> %d is not a network link"
           t.rounds src dst)
  | Some slot ->
      if Fault.crashed t.faults ~round:t.rounds src then
        (* A crashed node cannot put anything on the wire; the refusal
           is silent so fault-oblivious drivers need no special case. *)
        trace t ~round:t.rounds (Trace.Drop Trace.Src_crashed) ~src ~dst ~words
      else if t.dynamic && not (Fault.joined t.faults ~round:t.rounds src) then
        (* Likewise a node that has not joined yet. *)
        trace t ~round:t.rounds (Trace.Drop Trace.Not_joined) ~src ~dst ~words
      else if t.dynamic && not t.edge_alive.(slot / 2) then
        (* Unlike a crash, a down link is visible to the sender (its
           NIC reports no carrier), so the refusal is loud: churn-aware
           callers check {!link_up} first and treat down as loss. *)
        raise (Link_down { round = t.rounds; src; dst })
      else begin
        if t.last_sent.(slot) = t.epoch then
          invalid_arg
            (Printf.sprintf
               "Sim.send: round %d: %d already sent to %d this round" t.rounds
               src dst);
        t.last_sent.(slot) <- t.epoch;
        Obs.Prof.enter t.prof "sim_send";
        trace t ~round:t.rounds Trace.Send ~src ~dst ~words;
        if Obs.Metrics.enabled t.metrics then begin
          let c =
            match t.link_load.(slot) with
            | Some c -> c
            | None ->
                let c =
                  Obs.Metrics.counter t.metrics "link_words"
                    ~labels:
                      [ ("src", string_of_int src); ("dst", string_of_int dst) ]
                in
                t.link_load.(slot) <- Some c;
                c
          in
          Obs.Metrics.add c words
        end;
        let span = Obs.Span.message t.spans ~round:t.rounds ~src ~dst ~words in
        let inc_src, inc_dst =
          if t.restarting then
            ( Fault.incarnation t.faults ~round:t.rounds src,
              Fault.incarnation t.faults ~round:t.rounds dst )
          else (0, 0)
        in
        t.outbox <- { src; dst; words; span; inc_src; inc_dst; payload } :: t.outbox;
        Obs.Prof.leave t.prof
      end

let quiescent t = t.outbox = [] && t.delayed_count = 0

(* Every message (or duplicate copy) put on the wire is charged to the
   statistics at the step that processes it — delivered, lost, or held
   back alike: transmission is the cost the network pays.  With the
   loss-free plan this is exactly the seed engine's delivery-time
   accounting. *)
let charge t (e : 'msg envelope) =
  t.messages <- t.messages + 1;
  t.words <- t.words + e.words;
  if e.words > t.max_message_words then t.max_message_words <- e.words;
  if e.words > t.window_max then t.window_max <- e.words

let take_window_max t =
  let m = t.window_max in
  t.window_max <- 0;
  m

let step t deliver =
  let batch = List.rev t.outbox in
  t.outbox <- [];
  t.epoch <- t.epoch + 1;
  t.rounds <- t.rounds + 1;
  let round = t.rounds in
  (* Emit crash events for nodes whose crash round has arrived. *)
  let rec crashes = function
    | (r, v) :: rest when r <= round ->
        trace t ~round:r Trace.Crash ~src:v ~dst:(-1) ~words:0;
        crashes rest
    | rest -> t.pending_crashes <- rest
  in
  crashes t.pending_crashes;
  if t.restarting then begin
    let rec restarts = function
      | (r, v) :: rest when r <= round ->
          trace t ~round:r Trace.Restart ~src:v ~dst:(-1)
            ~words:(Fault.incarnation t.faults ~round:r v);
          restarts rest
      | rest -> t.pending_restarts <- rest
    in
    restarts t.pending_restarts
  end;
  if t.dynamic then apply_churn t ~round;
  let count = ref 0 in
  let delivered_w = ref 0 and dropped_w = ref 0 and held_w = ref 0 in
  let deliver_now (e : 'msg envelope) =
    if Fault.crashed t.faults ~round e.dst then begin
      dropped_w := !dropped_w + e.words;
      trace t ~round (Trace.Drop Trace.Dst_crashed) ~src:e.src ~dst:e.dst
        ~words:e.words;
      Obs.Span.drop t.spans ~round ~reason:"dst-crashed" e.span
    end
    else if t.dynamic && not t.edge_alive.(edge_of_link t e.src e.dst) then begin
      dropped_w := !dropped_w + e.words;
      trace t ~round (Trace.Drop Trace.Link_down) ~src:e.src ~dst:e.dst
        ~words:e.words;
      Obs.Span.drop t.spans ~round ~reason:"link-down" e.span
    end
    else if t.dynamic && not (Fault.joined t.faults ~round e.dst) then begin
      dropped_w := !dropped_w + e.words;
      trace t ~round (Trace.Drop Trace.Not_joined) ~src:e.src ~dst:e.dst
        ~words:e.words;
      Obs.Span.drop t.spans ~round ~reason:"not-joined" e.span
    end
    else if
      t.restarting
      && (Fault.incarnation t.faults ~round e.src <> e.inc_src
         || Fault.incarnation t.faults ~round e.dst <> e.inc_dst)
    then begin
      (* The message crossed a crash/restart boundary in flight: it was
         sent by, or addressed to, an incarnation that is no longer
         current.  A reborn node must never consume its predecessor's
         traffic (and nobody should hear a ghost), so the engine
         discards it like a loss — but with its own reason, so replay
         and audit can tell them apart. *)
      dropped_w := !dropped_w + e.words;
      trace t ~round (Trace.Drop Trace.Stale) ~src:e.src ~dst:e.dst
        ~words:e.words;
      Obs.Span.drop t.spans ~round ~reason:"stale-incarnation" e.span
    end
    else begin
      incr count;
      delivered_w := !delivered_w + e.words;
      trace t ~round Trace.Deliver ~src:e.src ~dst:e.dst ~words:e.words;
      (* First delivery wins: a duplicate copy of an already delivered
         span leaves the span untouched. *)
      Obs.Span.deliver t.spans ~round e.span;
      deliver ~dst:e.dst ~src:e.src e.payload
    end
  in
  let hold (e : 'msg envelope) ~until =
    held_w := !held_w + e.words;
    Hashtbl.replace t.delayed until
      (e :: Option.value ~default:[] (Hashtbl.find_opt t.delayed until));
    t.delayed_count <- t.delayed_count + 1
  in
  Obs.Prof.enter t.prof "sim_deliver";
  (* Held-back messages whose delay expires this round arrive first. *)
  (match Hashtbl.find_opt t.delayed round with
  | None -> ()
  | Some held ->
      Hashtbl.remove t.delayed round;
      let held = List.rev held in
      t.delayed_count <- t.delayed_count - List.length held;
      List.iter deliver_now held);
  List.iter
    (fun (e : 'msg envelope) ->
      match Fault.fate t.faults ~round ~src:e.src ~dst:e.dst with
      | Fault.Lost ->
          charge t e;
          dropped_w := !dropped_w + e.words;
          trace t ~round (Trace.Drop Trace.Loss) ~src:e.src ~dst:e.dst
            ~words:e.words;
          Obs.Span.drop t.spans ~round ~reason:"loss" e.span
      | Fault.Pass { dup; delay } ->
          charge t e;
          if dup then begin
            charge t e;
            trace t ~round Trace.Dup ~src:e.src ~dst:e.dst ~words:e.words
          end;
          if delay > 0 then begin
            trace t ~round (Trace.Delay delay) ~src:e.src ~dst:e.dst
              ~words:e.words;
            hold e ~until:(round + delay);
            if dup then hold e ~until:(round + delay)
          end
          else begin
            deliver_now e;
            if dup then deliver_now e
          end)
    batch;
  Obs.Prof.leave t.prof;
  if Obs.Metrics.enabled t.metrics then begin
    Obs.Metrics.observe t.h_delivered !delivered_w;
    Obs.Metrics.observe t.h_dropped !dropped_w;
    Obs.Metrics.observe t.h_held !held_w
  end;
  Obs.Prof.round_mark t.prof ~round;
  !count

let stats t =
  {
    rounds = t.rounds;
    messages = t.messages;
    words = t.words;
    max_message_words = t.max_message_words;
  }

let budget_exhausted t where =
  (* Like the send errors, the exception names the round and — when a
     message is still queued — the endpoints it was travelling between,
     so a stuck protocol is diagnosable from the message alone. *)
  let in_flight =
    match t.outbox with
    | { src; dst; _ } :: _ ->
        Printf.sprintf ", %d in flight (head %d -> %d)"
          (List.length t.outbox + t.delayed_count)
          src dst
    | [] ->
        if t.delayed_count > 0 then
          Printf.sprintf ", %d held back" t.delayed_count
        else ""
  in
  invalid_arg
    (Format.asprintf "%s: round %d: budget exhausted (%a)%s" where t.rounds
       pp_stats (stats t) in_flight)

let run_until_quiescent ?(max_rounds = 10_000_000) t deliver =
  let budget = ref max_rounds in
  while not (quiescent t) do
    if !budget <= 0 then budget_exhausted t "Sim.run_until_quiescent";
    decr budget;
    ignore (step t deliver)
  done

let add_idle_rounds t k =
  if k < 0 then invalid_arg "Sim.add_idle_rounds: negative";
  t.rounds <- t.rounds + k

module type PROTOCOL = sig
  type state
  type message

  val message_words : message -> int

  val init : Graphlib.Graph.t -> int -> state * (int * message) list

  val receive :
    Graphlib.Graph.t ->
    round:int ->
    int ->
    state ->
    (int * message) list ->
    state * (int * message) list
end

module type ACTIVE_PROTOCOL = sig
  include PROTOCOL

  val active : state -> bool
end

module Run_active (P : ACTIVE_PROTOCOL) = struct
  let run ?(max_rounds = 1_000_000) ?faults ?tracer ?metrics ?spans g =
    let n = Graph.n g in
    let t = create ?faults ?tracer ?metrics ?spans g in
    let faults = t.faults in
    let states = Array.init n (fun _ -> None) in
    let state v =
      match states.(v) with Some st -> st | None -> assert false
    in
    let post v msgs =
      List.iter
        (fun (dst, m) ->
          (* The runner's node programs are churn-oblivious: a send
             over a down link simply never makes it onto the wire
             (loss, as far as the protocol can tell). *)
          if (not t.dynamic) || link_up t ~src:v ~dst then
            send t ~src:v ~dst ~words:(P.message_words m) m)
        msgs
    in
    (* Late joiners are initialized when their join round arrives. *)
    let pending_joins = ref (Fault.join_schedule faults) in
    for v = 0 to n - 1 do
      if Fault.joined faults ~round:0 v then begin
        let st, msgs = P.init g v in
        states.(v) <- Some st;
        if not (Fault.crashed faults ~round:0 v) then post v msgs
      end
    done;
    let inboxes = Array.make n [] in
    let round = ref 0 in
    (* A node still counts as active only if it will get to act in the
       next round — a crashed node's frozen state must not keep the
       network alive. *)
    let any_active () =
      let rec go v =
        v < n
        && ((states.(v) <> None
            && (not (Fault.crashed faults ~round:(!round + 1) v))
            && P.active (state v))
           || go (v + 1))
      in
      go 0
    in
    (* A scheduled restart must keep the run alive even while the node
       is down and everything else is quiescent — the reborn node may
       have timers to fire. *)
    let last_restart = Fault.last_restart_round faults in
    while
      (not (quiescent t))
      || any_active ()
      || !pending_joins <> []
      || !round < last_restart
    do
      if !round >= max_rounds then budget_exhausted t "Sim.Run";
      incr round;
      Array.fill inboxes 0 n [];
      ignore
        (step t (fun ~dst ~src m -> inboxes.(dst) <- (src, m) :: inboxes.(dst)));
      (* Nodes whose join round arrived appear now: they were already
         eligible for this round's deliveries, and their first sends go
         out this round like everyone else's. *)
      let rec join = function
        | (r, v) :: rest when r <= !round ->
            let st, msgs = P.init g v in
            states.(v) <- Some st;
            if not (Fault.crashed faults ~round:!round v) then post v msgs;
            join rest
        | rest -> pending_joins := rest
      in
      join !pending_joins;
      for v = 0 to n - 1 do
        if
          states.(v) <> None
          && not (Fault.crashed faults ~round:!round v)
        then begin
          let st, msgs =
            P.receive g ~round:!round v (state v) (List.rev inboxes.(v))
          in
          states.(v) <- Some st;
          post v msgs
        end
      done
    done;
    let final =
      (* A node whose join round never arrived ends in its initial
         state: it did not participate. *)
      Array.mapi
        (fun v -> function Some st -> st | None -> fst (P.init g v))
        states
    in
    (stats t, final)
end

module Run (P : PROTOCOL) = Run_active (struct
  include P

  let active _ = false
end)
