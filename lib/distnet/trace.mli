(** Structured event log for simulator runs.

    Every observable action of the (possibly faulty) network engine —
    a message handed to the network, a delivery, a random loss, a
    duplication, a hold-back, a crash — is recorded as one {!event}.
    A trace can be saved as JSON lines, loaded back, and used to build
    a {e scripted} fault plan ([Fault.scripted]) that reproduces the
    original run bit-for-bit without consulting a PRNG.

    This module is deliberately independent of {!Sim}: it owns the
    {!stats} record (which [Sim] re-exports) so that the engine, the
    fault layer, and the replay tooling can all share it without a
    dependency cycle. *)

type stats = {
  rounds : int;  (** synchronous rounds executed *)
  messages : int;  (** messages transmitted (including lost ones) *)
  words : int;  (** total words transmitted *)
  max_message_words : int;  (** length of the longest single message *)
}

val diff_stats : stats -> stats -> (string * int * int) list
(** [diff_stats a b] lists every field on which [a] and [b] disagree as
    [(field, a-value, b-value)]; [[]] means the runs match. *)

(** Why a message was dropped. Only [Loss] is a random decision; the
    crash, link-state, join, and incarnation variants are determined by
    their schedules and are therefore not replayed from the script.
    [Stale] marks a message sent by or addressed to a node incarnation
    that is no longer (or not yet) current — it was in flight across a
    crash/restart boundary. *)
type reason = Loss | Src_crashed | Dst_crashed | Link_down | Not_joined | Stale

type kind =
  | Send  (** a node handed a message to the network *)
  | Deliver  (** the message reached its destination *)
  | Drop of reason  (** the message was lost in transit *)
  | Dup  (** the network delivered a second copy *)
  | Delay of int  (** the message was held for that many rounds *)
  | Crash  (** the node [src] crash-stopped ([dst] is [-1]) *)
  | Restart
      (** the node [src] restarted this round with a fresh incarnation
          ([dst] is [-1]; [words] carries the new incarnation number) *)
  | Edge_down  (** the link [src]-[dst] went down (churn) *)
  | Edge_up  (** the link [src]-[dst] came (back) up (churn) *)
  | Partition
      (** marker: a scripted partition began this round; [words] counts
          its links, each also traced as its own [Edge_down] *)
  | Heal
      (** marker: a partition healed this round; [words] counts its
          links, each also traced as its own [Edge_up] *)
  | Join  (** the node [src] joined the network this round *)

type event = { round : int; kind : kind; src : int; dst : int; words : int }

val pp_event : Format.formatter -> event -> unit

(** {1 Recording} *)

type t

val create : unit -> t
val record : t -> event -> unit
val events : t -> event list
(** Events in the order they were recorded. *)

val length : t -> int

(** {1 Persistence (JSON lines)} *)

val save : ?stats:stats -> t -> string -> unit
(** [save ?stats t file] writes one JSON object per line; when given,
    the final line records the run's statistics so a replay can be
    checked against them. *)

exception Parse_error of { file : string; line : int; msg : string }
(** A line that is not a trace event: truncated mid-record, garbage,
    an unknown kind, or a malformed/overflowing integer field.  The
    structured fields name the file and 1-based line number so callers
    can report (or skip past) the exact spot; a printer is registered,
    so an uncaught one still renders readably. *)

val iter_file : string -> (event -> unit) -> stats option
(** Stream a file written by {!save}: call the function on every event
    in file order, without materializing the event list — aggregation
    over a large trace runs in constant memory.  Returns the stats
    line when one is present.  Blank (or whitespace-only) lines and
    CRLF line endings are tolerated, so a trace survives editor or
    transfer round-trips.
    @raise Parse_error on a line that is not a trace event, naming the
    file and line number. *)

val load : string -> event list * stats option
(** [iter_file] materialized: the event list in file order, plus the
    stats line when present. *)
