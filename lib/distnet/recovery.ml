module Checkpoints = struct
  type 'st t = {
    copy : 'st -> 'st;
    slots : ('st * string) option array;
    mutable commits : int;
  }

  let create ?(copy = Fun.id) ~n () =
    { copy; slots = Array.make (Stdlib.max 1 n) None; commits = 0 }

  let commit t ~phase v st =
    t.slots.(v) <- Some (t.copy st, phase);
    t.commits <- t.commits + 1

  let restore t v = Option.map fst t.slots.(v)
  let phase t v = Option.map snd t.slots.(v)
  let commits t = t.commits
end

module Detector = struct
  type status = Up | Suspected | Announced

  type t = { status : status array; mutable nsuspected : int }

  let create ~n = { status = Array.make (Stdlib.max 1 n) Up; nsuspected = 0 }

  let suspect t v =
    match t.status.(v) with
    | Up ->
        t.status.(v) <- Suspected;
        t.nsuspected <- t.nsuspected + 1
    | Suspected | Announced -> ()

  (* A death notice is authoritative: the node completed its protocol
     duties before leaving, so it supersedes a transport suspicion
     (which may have been raised by a message sent after the notice). *)
  let note_death t v =
    (match t.status.(v) with
    | Suspected -> t.nsuspected <- t.nsuspected - 1
    | Up | Announced -> ());
    t.status.(v) <- Announced

  (* Crash-recovery: hearing from a suspected node again means it
     restarted — the suspicion belonged to its previous incarnation.
     An announced death is NOT revoked: the node completed its duties
     and left the algorithm; its reborn incarnation re-enters through
     repair, not by resurrecting its old role. *)
  let unsuspect t v =
    match t.status.(v) with
    | Suspected ->
        t.status.(v) <- Up;
        t.nsuspected <- t.nsuspected - 1
    | Up | Announced -> ()

  let is_down t v = t.status.(v) <> Up
  let is_suspected t v = t.status.(v) = Suspected

  let suspected t =
    let acc = ref [] in
    for v = Array.length t.status - 1 downto 0 do
      if t.status.(v) = Suspected then acc := v :: !acc
    done;
    !acc

  let suspected_count t = t.nsuspected
end
