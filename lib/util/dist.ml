type sampler = { cdf : float array }
(* cdf.(i) = P(outcome <= i); cdf.(n-1) = 1. by construction. *)

let support t = Array.length t.cdf

let categorical ~weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist.categorical: empty weights";
  let total = ref 0. in
  Array.iter
    (fun w ->
      if w < 0. || Float.is_nan w then
        invalid_arg "Dist.categorical: negative weight";
      total := !total +. w)
    weights;
  if !total <= 0. then invalid_arg "Dist.categorical: zero total weight";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. !total);
    cdf.(i) <- !acc
  done;
  (* Pin the last entry so float rounding can never leave a draw
     above the whole table. *)
  cdf.(n - 1) <- 1.;
  { cdf }

let zipf ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  if s < 0. || Float.is_nan s then invalid_arg "Dist.zipf: s must be >= 0";
  categorical ~weights:(Array.init n (fun i -> float_of_int (i + 1) ** -.s))

let sample t rng =
  let u = Prng.float rng 1. in
  (* Smallest i with cdf.(i) > u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let geometric rng ~p =
  if not (p > 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Dist.geometric: p %g not in (0,1]" p);
  if p >= 1. then 0
  else
    (* Inversion: X = floor(ln U / ln(1-p)), U uniform in (0,1].
       [Prng.float] draws from [0,1); 1-u is in (0,1] so the log is
       finite and the draw never overflows. *)
    let u = Prng.float rng 1. in
    int_of_float (Float.log (1. -. u) /. Float.log (1. -. p))

let probability t i =
  if i < 0 || i >= Array.length t.cdf then
    invalid_arg "Dist.probability: outcome out of range";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)
