(** Named discrete distributions over the seeded {!Prng} — the first
    brick of the distribution-driven workload layer.

    A {!sampler} is a frozen distribution: all normalization work
    (cumulative weights) happens once at construction, and each draw
    costs one PRNG call plus a binary search.  Samplers hold no PRNG
    state of their own — the caller threads an explicit {!Prng.t}, so
    two workloads built from the same sampler and seed are identical
    draw for draw. *)

type sampler
(** A frozen discrete distribution over [0 .. n-1]. *)

val support : sampler -> int
(** Number of outcomes [n]. *)

val categorical : weights:float array -> sampler
(** Distribution proportional to [weights] (not necessarily
    normalized).  @raise Invalid_argument if [weights] is empty, has a
    negative entry, or sums to zero. *)

val zipf : n:int -> s:float -> sampler
(** The Zipf distribution on ranks [0 .. n-1]:
    [P(rank = i) ∝ (i + 1)^(-s)].  [s = 0] is uniform; larger [s]
    concentrates mass on the low ranks (heavy-tailed popularity — the
    classic model for query/content popularity in serving workloads).
    @raise Invalid_argument if [n <= 0] or [s < 0]. *)

val sample : sampler -> Prng.t -> int
(** One draw.  O(log n). *)

val probability : sampler -> int -> float
(** The normalized probability of one outcome (for tests and reports). *)

(** {1 Closed-form draws}

    Unbounded-support distributions that need no frozen table; used by
    the scenario DSL for inter-arrival gaps and failure onsets.  Like
    samplers, they thread the caller's {!Prng.t} and cost one PRNG
    call. *)

val geometric : Prng.t -> p:float -> int
(** The number of failures before the first success of a Bernoulli([p])
    sequence: [P(X = k) = (1-p)^k p] on [k >= 0] (mean [(1-p)/p]) —
    the memoryless discrete waiting time.  Drawn by inversion, one
    uniform per call.  @raise Invalid_argument unless [0 < p <= 1]. *)
