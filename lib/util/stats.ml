type t = {
  mutable count : int;
  mutable total : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable mean_acc : float;
  mutable minv : float;
  mutable maxv : float;
}

let create () =
  {
    count = 0;
    total = 0.;
    m2 = 0.;
    mean_acc = 0.;
    minv = infinity;
    maxv = neg_infinity;
  }

(* Welford's online update keeps the second moment numerically stable. *)
let add t x =
  t.count <- t.count + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x

let add_int t x = add t (float_of_int x)
let count t = t.count
let total t = t.total
let mean t = if t.count = 0 then nan else t.mean_acc
let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)
let stddev t = sqrt (variance t)
let min t = t.minv
let max t = t.maxv

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else begin
    let count = a.count + b.count in
    let delta = b.mean_acc -. a.mean_acc in
    let mean_acc =
      a.mean_acc +. (delta *. float_of_int b.count /. float_of_int count)
    in
    let m2 =
      a.m2 +. b.m2
      +. delta *. delta
         *. float_of_int a.count *. float_of_int b.count
         /. float_of_int count
    in
    {
      count;
      total = a.total +. b.total;
      m2;
      mean_acc;
      minv = Stdlib.min a.minv b.minv;
      maxv = Stdlib.max a.maxv b.maxv;
    }
  end

let summary t =
  if t.count = 0 then "(no samples)"
  else
    Printf.sprintf "%.4g ± %.3g (%.4g..%.4g, n=%d)" (mean t)
      (if t.count < 2 then 0. else stddev t)
      t.minv t.maxv t.count

let percentile_of_sorted a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile_of_sorted: empty array";
  if p <= 0. then a.(0)
  else if p >= 1. then a.(n - 1)
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let median_of_sorted a = percentile_of_sorted a 0.5

let exact_percentile_of_sorted a p =
  let n = Array.length a in
  if n = 0 then nan
  else begin
    (* nearest-rank: smallest k with k >= p*n, clamped to [1, n] *)
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
    let rank = Stdlib.max 1 (Stdlib.min n rank) in
    a.(rank - 1)
  end

let p50_of_sorted a = exact_percentile_of_sorted a 0.5
let p90_of_sorted a = exact_percentile_of_sorted a 0.9
let p99_of_sorted a = exact_percentile_of_sorted a 0.99
