(** Running statistics and small numeric summaries used by the
    experiment harness. *)

type t
(** A mutable accumulator of float observations. *)

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit

val count : t -> int
val total : t -> float
val mean : t -> float
(** [mean t] is [nan] when no observation was added. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two observations. *)

val stddev : t -> float
val min : t -> float
val max : t -> float

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator holding the union of the
    observations of [a] and [b] (exactly for count/total/min/max, via
    the parallel-variance formula for second moments). *)

val summary : t -> string
(** One-line [mean ± stddev (min..max, n)] rendering. *)

val median_of_sorted : float array -> float
(** Median of a sorted array.  @raise Invalid_argument on [||]. *)

val percentile_of_sorted : float array -> float -> float
(** [percentile_of_sorted a p] for [p] in [\[0,1\]], nearest-rank with
    linear interpolation.  The array must be sorted ascending. *)

val exact_percentile_of_sorted : float array -> float -> float
(** Exact nearest-rank percentile: the smallest element of the sorted
    array [a] such that at least [p * n] observations are [<=] it —
    always an actual observation, never interpolated, so it is the
    right quantile for integer-valued data (message lengths, round
    counts).  [nan] on [[||]]; the single element for [n = 1]. *)

val p50_of_sorted : float array -> float
val p90_of_sorted : float array -> float
val p99_of_sorted : float array -> float
(** [exact_percentile_of_sorted] at 0.5 / 0.9 / 0.99. *)
