(** Landmark-based compact routing (Cowen 1999 / Thorup–Zwick 2001
    style) — the "compact routing tables with small stretch"
    application of the paper's §1 and §5.

    Construction, for one level [k = 2]:

    - sample landmarks [L] with probability [n^(-1/2)];
    - every node stores a next hop towards {e every landmark} (one BFS
      forest per landmark);
    - every node [x] stores a next hop towards every [w] whose ball it
      lies in ([delta(x,w) < delta(x,L)] — the Thorup–Zwick cluster of
      [w]), and towards every [v] whose shortest path from its home
      landmark [l(v)] passes through [x] (the {e write set});
    - the routing header for [v] is just [(v, l(v))].

    Routing walks direct entries when available and otherwise heads for
    [l(v)], where the write-set entries take over.  Total stretch is at
    most [1 + 2 delta(v, L) / delta(u, v) <= 5] for pairs without a
    direct entry, and measured stretch is far lower; per-node state is
    [O(|L| + ball + write set)] entries ≈ [O(sqrt n)] on average. *)

type t

val build : seed:int -> Graphlib.Graph.t -> t

val route : t -> src:int -> dst:int -> int list option
(** The nodes visited, starting with [src] and ending with [dst];
    [None] if the pair is disconnected (or routing failed, which the
    tests rule out for connected pairs). *)

val route_hops : t -> src:int -> dst:int -> int
(** Hop count of the walk {!route} would take, without materializing
    the node list: [-1] if the pair is disconnected (or routing
    failed), [0] for [src = dst].  The serving hot path answers route
    queries with this form. *)

val table_size : t -> int -> int
(** Routing entries stored at one node (landmark + ball + write set). *)

val total_state : t -> int
val landmarks : t -> int list
val home_landmark : t -> int -> int
(** The landmark in a node's routing header; [-1] if unreachable. *)
