module Graph = Graphlib.Graph
module Bfs = Graphlib.Bfs

type t = {
  g : Graph.t;
  landmarks : int list;
  home : int array;  (** nearest landmark per node, -1 unreachable *)
  landmark_next : (int, int) Hashtbl.t array;  (** node -> (landmark -> hop) *)
  direct_next : (int, int) Hashtbl.t array;
      (** node -> (destination -> hop): ball + write-set entries *)
}

let build ~seed g =
  let n = Graph.n g in
  let rng = Util.Prng.create ~seed in
  let q = if n <= 1 then 1. else 1. /. sqrt (float_of_int n) in
  let landmarks =
    let l = List.filter (fun _ -> Util.Prng.bernoulli rng q) (List.init n (fun v -> v)) in
    match l with [] when n > 0 -> [ 0 ] | l -> l
  in
  let landmark_next = Array.init n (fun _ -> Hashtbl.create 4) in
  let direct_next = Array.init n (fun _ -> Hashtbl.create 4) in
  (* One BFS forest per landmark: next hop towards the landmark at every
     node, and the forest itself for write-set registration. *)
  let forests =
    List.map
      (fun l ->
        let f = Bfs.multi_source g ~sources:[ l ] in
        Array.iteri
          (fun v parent ->
            if parent >= 0 then Hashtbl.replace landmark_next.(v) l parent)
          f.Bfs.parent;
        (l, f))
      landmarks
  in
  (* Home landmark = overall nearest. *)
  let home_forest = Bfs.multi_source g ~sources:landmarks in
  let home = home_forest.Bfs.source in
  let dist_to_l = home_forest.Bfs.dist in
  (* Write set: every node on the shortest path from l(v) to v (in
     l(v)'s BFS tree) learns the next hop towards v. *)
  List.iter
    (fun (l, f) ->
      for v = 0 to n - 1 do
        if home.(v) = l && f.Bfs.dist.(v) > 0 then begin
          let rec walk child x =
            Hashtbl.replace direct_next.(x) v child;
            let p = f.Bfs.parent.(x) in
            if x <> l && p >= 0 then walk x p
          in
          walk v f.Bfs.parent.(v)
        end
      done)
    forests;
  (* Ball entries: grow the Thorup–Zwick cluster of every vertex w
     ({v : delta(v,w) < delta(v,L)}) with predecessor pointers. *)
  let next_dist = Array.map (fun d -> if d < 0 then max_int else d) dist_to_l in
  for w = 0 to n - 1 do
    let dist : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
    (* node -> (distance, next hop towards w) *)
    let qq = Queue.create () in
    Hashtbl.replace dist w (0, w);
    Queue.add w qq;
    while not (Queue.is_empty qq) do
      let x = Queue.pop qq in
      let dx, _ = Hashtbl.find dist x in
      Graph.iter_neighbors g x (fun y _ ->
          if not (Hashtbl.mem dist y) then begin
            let dy = dx + 1 in
            if dy < next_dist.(y) then begin
              Hashtbl.replace dist y (dy, x);
              Hashtbl.replace direct_next.(y) w x;
              Queue.add y qq
            end
          end)
    done
  done;
  { g; landmarks; home; landmark_next; direct_next }

let route t ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let n = Graph.n t.g in
    let l = t.home.(dst) in
    let rec walk x acc hops =
      if hops > 4 * n then None
      else if x = dst then Some (List.rev (x :: acc))
      else
        match Hashtbl.find_opt t.direct_next.(x) dst with
        | Some next -> walk next (x :: acc) (hops + 1)
        | None -> (
            if l < 0 then None
            else
              match Hashtbl.find_opt t.landmark_next.(x) l with
              | Some next -> walk next (x :: acc) (hops + 1)
              | None -> if x = l then None else None)
    in
    walk src [] 0
  end

let route_hops t ~src ~dst =
  if src = dst then 0
  else begin
    let n = Graph.n t.g in
    let l = t.home.(dst) in
    let rec walk x hops =
      if hops > 4 * n then -1
      else if x = dst then hops
      else
        match Hashtbl.find_opt t.direct_next.(x) dst with
        | Some next -> walk next (hops + 1)
        | None -> (
            if l < 0 then -1
            else
              match Hashtbl.find_opt t.landmark_next.(x) l with
              | Some next -> walk next (hops + 1)
              | None -> -1)
    in
    walk src 0
  end

let table_size t v = Hashtbl.length t.landmark_next.(v) + Hashtbl.length t.direct_next.(v)

let total_state t =
  let acc = ref 0 in
  for v = 0 to Graph.n t.g - 1 do
    acc := !acc + table_size t v
  done;
  !acc

let landmarks t = t.landmarks
let home_landmark t v = t.home.(v)
