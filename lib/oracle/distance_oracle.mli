(** Thorup–Zwick approximate distance oracles (J. ACM 2005), for
    unweighted graphs — the application class the paper's conclusion
    singles out ("the most interesting applications of spanners are in
    constructing distance labeling schemes, approximate distance
    oracles, and compact routing tables").

    Construction: a sampled hierarchy [A_0 = V ⊇ A_1 ⊇ … ⊇ A_{k-1}],
    [A_k = ∅], each level kept with probability [n^(-1/k)].  Every
    vertex stores its {e bunch}
    [B(v) = ∪_i { w ∈ A_i \ A_{i+1} | delta(v,w) < delta(v, A_{i+1}) }]
    together with exact distances, plus its {e pivots} [p_i(v)]
    (nearest [A_i]-vertex).  Expected space [O(k n^{1+1/k})] entries;
    queries answer in [O(k)] lookups with stretch at most [2k - 1].

    The hierarchy sampling is the same machinery as the paper's spanner
    constructions — this module shows it powering a query structure. *)

type t

val build : k:int -> seed:int -> Graphlib.Graph.t -> t
(** Requires [k >= 1].  O(k m + total bunch size) time. *)

val query : t -> int -> int -> int option
(** [query t u v] is an estimate [d'] with
    [delta(u,v) <= d' <= (2k-1) delta(u,v)], or [None] when [u] and
    [v] are disconnected. *)

val query_est : t -> int -> int -> int
(** [query t u v] without the option wrapper: [-1] when disconnected.
    The serving hot path — answering millions of queries against a
    snapshot — uses this form to avoid one allocation per query. *)

val k : t -> int
val size : t -> int
(** Total stored entries (bunches + pivot tables) — the oracle's
    space. *)

val bunch_size : t -> int -> int
(** Entries stored for one vertex. *)

val levels : t -> int array
(** Per vertex, the highest [i] with [v ∈ A_i]. *)
