module Graph = Graphlib.Graph
module Bfs = Graphlib.Bfs

type t = {
  k : int;
  levels : int array;
  pivots : int array array;  (** pivots.(i).(v) = p_i(v), -1 if none *)
  pivot_dist : int array array;
  bunches : (int, int) Hashtbl.t array;  (** bunches.(v) : w -> delta(v,w) *)
}

let draw_levels rng ~n ~k =
  let p = float_of_int n ** (-1. /. float_of_int k) in
  Array.init n (fun _ ->
      let rec climb i =
        if i >= k - 1 then k - 1
        else if Util.Prng.bernoulli rng p then climb (i + 1)
        else i
      in
      climb 0)

(* Truncated BFS from a level-i center w, pruned by the Thorup–Zwick
   cluster condition delta(v, w) < delta(v, A_{i+1}): exactly the
   vertices whose bunch receives w. *)
let grow_cluster g ~center ~next_dist ~visit =
  let dist : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let q = Queue.create () in
  Hashtbl.replace dist center 0;
  Queue.add center q;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    let dx = Hashtbl.find dist x in
    visit ~v:x ~dist:dx;
    Graph.iter_neighbors g x (fun y _ ->
        if not (Hashtbl.mem dist y) then begin
          let dy = dx + 1 in
          if dy < next_dist.(y) then begin
            Hashtbl.replace dist y dy;
            Queue.add y q
          end
        end)
  done

let build ~k ~seed g =
  if k < 1 then invalid_arg "Distance_oracle.build: k must be >= 1";
  let n = Graph.n g in
  let rng = Util.Prng.create ~seed in
  let levels = draw_levels rng ~n ~k in
  let members i =
    let acc = ref [] in
    Array.iteri (fun v l -> if l >= i then acc := v :: !acc) levels;
    !acc
  in
  let pivots = Array.make k [||] in
  let pivot_dist = Array.make k [||] in
  let dist_to_level = Array.make (k + 1) [||] in
  for i = 0 to k - 1 do
    let f = Bfs.multi_source g ~sources:(members i) in
    pivots.(i) <- f.Bfs.source;
    pivot_dist.(i) <- f.Bfs.dist;
    dist_to_level.(i) <- Array.map (fun d -> if d < 0 then max_int else d) f.Bfs.dist
  done;
  (* A_k = empty: delta(v, A_k) = infinity. *)
  dist_to_level.(k) <- Array.make n max_int;
  let bunches = Array.init n (fun _ -> Hashtbl.create 8) in
  for i = 0 to k - 1 do
    let next_dist = dist_to_level.(i + 1) in
    List.iter
      (fun w ->
        if levels.(w) = i then
          grow_cluster g ~center:w ~next_dist ~visit:(fun ~v ~dist ->
              Hashtbl.replace bunches.(v) w dist))
      (members i)
  done;
  { k; levels; pivots; pivot_dist; bunches }

let query t u v =
  if u = v then Some 0
  else begin
    let rec loop i u v =
      if i >= t.k then None
      else begin
        let w = t.pivots.(i).(u) in
        if w < 0 then None
        else
          match Hashtbl.find_opt t.bunches.(v) w with
          | Some dwv -> Some (t.pivot_dist.(i).(u) + dwv)
          | None -> loop (i + 1) v u
      end
    in
    loop 0 u v
  end

let query_est t u v =
  if u = v then 0
  else begin
    let rec loop i u v =
      if i >= t.k then -1
      else begin
        let w = t.pivots.(i).(u) in
        if w < 0 then -1
        else
          match Hashtbl.find_opt t.bunches.(v) w with
          | Some dwv -> t.pivot_dist.(i).(u) + dwv
          | None -> loop (i + 1) v u
      end
    in
    loop 0 u v
  end

let k t = t.k

let size t =
  let total = ref 0 in
  Array.iter (fun b -> total := !total + Hashtbl.length b) t.bunches;
  !total + (t.k * Array.length t.levels)

let bunch_size t v = Hashtbl.length t.bunches.(v) + t.k
let levels t = t.levels
