(* Command-line driver: generate graphs, build spanners with any
   algorithm in the library, evaluate distortion, run the experiment
   suite. *)

open Cmdliner
module Graph = Graphlib.Graph
module Gen = Graphlib.Gen
module Edge_set = Graphlib.Edge_set
module Metrics = Graphlib.Metrics

(* ------------------------------------------------------------------ *)
(* Shared graph source: either --input FILE or a generator spec. *)

let load_graph ~kind ~n ~p ~seed ~input =
  match input with
  | Some path -> Graphlib.Io.read path
  | None -> (
      let rng = Util.Prng.create ~seed in
      match kind with
      | "gnp" -> Gen.connected_gnp rng ~n ~p
      | "gnp-raw" -> Gen.gnp rng ~n ~p
      | "torus" ->
          let side = int_of_float (Float.round (sqrt (float_of_int n))) in
          Gen.torus ~width:side ~height:side
      | "king" ->
          let side = int_of_float (Float.round (sqrt (float_of_int n))) in
          Gen.king_torus ~width:side ~height:side
      | "hypercube" ->
          let dims = int_of_float (Float.round (Util.Tower.log2 (float_of_int n))) in
          Gen.hypercube ~dims
      | "pa" -> Gen.ensure_connected rng (Gen.preferential_attachment rng ~n ~k:3)
      | "path" -> Gen.path n
      | "cycle" -> Gen.cycle n
      | other -> failwith (Printf.sprintf "unknown graph kind %s" other))

let kind_arg =
  Arg.(
    value
    & opt string "gnp"
    & info [ "kind" ] ~docv:"KIND"
        ~doc:"Graph family: gnp, gnp-raw, torus, king, hypercube, pa, path, cycle.")

let n_arg = Arg.(value & opt int 2000 & info [ "n" ] ~docv:"N" ~doc:"Vertex count.")

let p_arg =
  Arg.(value & opt float 0.005 & info [ "p" ] ~docv:"P" ~doc:"G(n,p) edge probability.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let input_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "input"; "i" ] ~docv:"FILE" ~doc:"Read the graph from an edge-list file.")

(* ------------------------------------------------------------------ *)
(* gen *)

let gen_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output edge-list file.")
  in
  let run kind n p seed out =
    let g = load_graph ~kind ~n ~p ~seed ~input:None in
    Graphlib.Io.write g out;
    Format.printf "wrote %s: %a@." out Graph.pp_summary g
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a graph and write it as an edge list.")
    Term.(const run $ kind_arg $ n_arg $ p_arg $ seed_arg $ out)

(* ------------------------------------------------------------------ *)
(* build *)

let algo_arg =
  Arg.(
    value
    & opt string "skeleton"
    & info [ "algo"; "a" ] ~docv:"ALGO"
        ~doc:
          "Spanner algorithm: skeleton, skeleton-dist, fibonacci, fibonacci-dist, \
           baswana-sen, baswana-sen-dist, greedy, greedy-skeleton, neighborhood, \
           bfs-tree, combined, streaming.")

let k_arg =
  Arg.(value & opt int 3 & info [ "k"; "levels" ] ~docv:"K" ~doc:"Stretch parameter (2k-1).")

let d_arg = Arg.(value & opt int 4 & info [ "D" ] ~docv:"D" ~doc:"Skeleton density D.")

let eps_arg =
  Arg.(value & opt float 0.5 & info [ "eps" ] ~docv:"EPS" ~doc:"Message-length exponent.")

let order_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "order" ] ~docv:"O" ~doc:"Fibonacci spanner order (default log_phi log n).")

let ell_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "ell" ] ~docv:"L" ~doc:"Fibonacci ball base (default 3o/eps + 2).")

let t_arg =
  Arg.(value & opt int 2 & info [ "t" ] ~docv:"T" ~doc:"Message budget exponent: n^(1/t).")

let build_spanner ~algo ~k ~d ~eps ~order ~ell ~t ~seed g =
  let stats = ref None in
  let spanner =
    match algo with
    | "skeleton" -> (Spanner.Skeleton.build ~d ~eps ~seed g).Spanner.Skeleton.spanner
    | "skeleton-dist" ->
        let r = Spanner.Skeleton_dist.build ~d ~eps ~seed g in
        stats := Some r.Spanner.Skeleton_dist.stats;
        r.Spanner.Skeleton_dist.spanner
    | "fibonacci" -> (Spanner.Fibonacci.build ?o:order ?ell ~seed g).Spanner.Fibonacci.spanner
    | "fibonacci-dist" ->
        let r = Spanner.Fibonacci_dist.build ?o:order ?ell ~t ~seed g in
        stats := Some r.Spanner.Fibonacci_dist.stats;
        Format.printf "budget=%d words, blocked=%d, LV failures=%d@."
          r.Spanner.Fibonacci_dist.budget_words r.Spanner.Fibonacci_dist.blocked
          r.Spanner.Fibonacci_dist.failures;
        r.Spanner.Fibonacci_dist.spanner
    | "baswana-sen" -> (Baseline.Baswana_sen.build ~k ~seed g).Baseline.Baswana_sen.spanner
    | "baswana-sen-dist" ->
        let r = Baseline.Baswana_sen_dist.build ~k ~seed g in
        stats := Some r.Baseline.Baswana_sen_dist.stats;
        r.Baseline.Baswana_sen_dist.spanner
    | "greedy" -> (Baseline.Greedy.build ~k g).Baseline.Greedy.spanner
    | "greedy-skeleton" -> (Baseline.Greedy.skeleton g).Baseline.Greedy.spanner
    | "neighborhood" ->
        let r = Baseline.Neighborhood_dist.build ~k g in
        stats := Some r.Baseline.Neighborhood_dist.stats;
        r.Baseline.Neighborhood_dist.spanner
    | "bfs-tree" -> (Baseline.Bfs_tree.build g).Baseline.Bfs_tree.spanner
    | "combined" -> (Spanner.Combined.build ?o:order ?ell ~d ~seed g).Spanner.Combined.spanner
    | "streaming" ->
        (* Feed the graph's edges in a seeded random arrival order. *)
        let edges = ref [] in
        Graph.iter_edges g (fun _ u v -> edges := (u, v) :: !edges);
        let arr = Array.of_list !edges in
        Util.Prng.shuffle (Util.Prng.create ~seed) arr;
        let t = Baseline.Streaming.of_stream ~n:(Graph.n g) ~k (Array.to_list arr) in
        let s = Edge_set.create g in
        List.iter
          (fun (u, v) ->
            match Graph.find_edge g u v with
            | Some e -> Edge_set.add s e
            | None -> ())
          (Baseline.Streaming.edges t);
        s
    | other -> failwith (Printf.sprintf "unknown algorithm %s" other)
  in
  (spanner, !stats)

let build_cmd =
  let sources =
    Arg.(
      value
      & opt int 8
      & info [ "sources" ] ~docv:"S" ~doc:"BFS sources for sampled distortion.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the spanner as an edge list.")
  in
  let run kind n p seed input algo k d eps order ell t sources out =
    let g = load_graph ~kind ~n ~p ~seed ~input in
    Format.printf "graph: %a@." Graph.pp_summary g;
    let spanner, stats = build_spanner ~algo ~k ~d ~eps ~order ~ell ~t ~seed g in
    let h = Edge_set.to_graph spanner in
    Format.printf "%s: %d edges (%.3f per vertex)@." algo (Edge_set.cardinal spanner)
      (float_of_int (Edge_set.cardinal spanner) /. float_of_int (Graph.n g));
    let rng = Util.Prng.create ~seed:(seed + 7919) in
    let rep = Metrics.sampled rng ~g ~h ~sources in
    Format.printf "distortion: %a@." Metrics.pp_report rep;
    (match stats with
    | Some st -> Format.printf "network: %a@." Distnet.Sim.pp_stats st
    | None -> ());
    match out with
    | Some path ->
        Graphlib.Io.write h path;
        Format.printf "spanner written to %s@." path
    | None -> ()
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build a spanner and report size / distortion / network cost.")
    Term.(
      const run $ kind_arg $ n_arg $ p_arg $ seed_arg $ input_arg $ algo_arg $ k_arg
      $ d_arg $ eps_arg $ order_arg $ ell_arg $ t_arg $ sources $ out)

(* ------------------------------------------------------------------ *)
(* eval: compare a spanner file against a graph file *)

let eval_cmd =
  let graph_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"GRAPH" ~doc:"Original graph edge list.")
  in
  let spanner_file =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"SPANNER" ~doc:"Spanner edge list (same vertex count).")
  in
  let exact =
    Arg.(value & flag & info [ "exact" ] ~doc:"All-pairs distortion (small graphs).")
  in
  let run graph_file spanner_file exact seed =
    let g = Graphlib.Io.read graph_file in
    let h = Graphlib.Io.read spanner_file in
    let rep =
      if exact then Metrics.exact ~g ~h
      else Metrics.sampled (Util.Prng.create ~seed) ~g ~h ~sources:8
    in
    Format.printf "%a@." Metrics.pp_report rep
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Measure the distortion of a spanner file.")
    Term.(const run $ graph_file $ spanner_file $ exact $ seed_arg)

(* ------------------------------------------------------------------ *)
(* trace: watch the skeleton algorithm run call by call *)

let trace_cmd =
  let run kind n p seed input d eps =
    let g = load_graph ~kind ~n ~p ~seed ~input in
    Format.printf "graph: %a@." Graph.pp_summary g;
    let plan = Spanner.Plan.make ~n:(Graph.n g) ~d ~eps () in
    Format.printf "%a@." Spanner.Plan.pp plan;
    let r = Spanner.Skeleton.build ~d ~eps ~trace:true ~seed g in
    Format.printf "@.%6s %6s %6s  %9s %9s %8s@." "call" "round" "p" "clusters"
      "alive" "spanner";
    List.iter
      (fun (s : Spanner.Skeleton.snapshot) ->
        Format.printf "%6d %6d %6.3f  %9d %9d %8d@."
          s.Spanner.Skeleton.call.Spanner.Plan.index
          s.Spanner.Skeleton.call.Spanner.Plan.round
          s.Spanner.Skeleton.call.Spanner.Plan.p
          s.Spanner.Skeleton.clusters_before s.Spanner.Skeleton.alive_after
          s.Spanner.Skeleton.spanner_size)
      r.Spanner.Skeleton.snapshots;
    Format.printf "@.final: %d edges, %d aborts@."
      (Edge_set.cardinal r.Spanner.Skeleton.spanner)
      r.Spanner.Skeleton.aborts
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run the skeleton algorithm with a per-call trace.")
    Term.(const run $ kind_arg $ n_arg $ p_arg $ seed_arg $ input_arg $ d_arg $ eps_arg)

(* ------------------------------------------------------------------ *)
(* oracle *)

let oracle_cmd =
  let queries =
    Arg.(value & opt int 10 & info [ "queries" ] ~docv:"Q" ~doc:"Sample queries to print.")
  in
  let run kind n p seed input k queries =
    let g = load_graph ~kind ~n ~p ~seed ~input in
    Format.printf "graph: %a@." Graph.pp_summary g;
    let o = Oracle.Distance_oracle.build ~k ~seed g in
    Format.printf "oracle: k=%d, %d stored entries (%.1f per vertex), stretch <= %d@."
      k
      (Oracle.Distance_oracle.size o)
      (float_of_int (Oracle.Distance_oracle.size o) /. float_of_int (Graph.n g))
      ((2 * k) - 1);
    let rng = Util.Prng.create ~seed:(seed + 1) in
    for _ = 1 to queries do
      let u = Util.Prng.int rng (Graph.n g) and v = Util.Prng.int rng (Graph.n g) in
      let exact = (Graphlib.Bfs.distances g ~src:u).(v) in
      match Oracle.Distance_oracle.query o u v with
      | Some est -> Format.printf "  d(%d,%d) = %d, oracle %d@." u v exact est
      | None -> Format.printf "  d(%d,%d): disconnected@." u v
    done
  in
  Cmd.v
    (Cmd.info "oracle" ~doc:"Build a Thorup-Zwick distance oracle and sample queries.")
    Term.(const run $ kind_arg $ n_arg $ p_arg $ seed_arg $ input_arg $ k_arg $ queries)

(* ------------------------------------------------------------------ *)
(* simulate: protocols over a faulty network, with trace/replay *)

let parse_crashes s =
  (* "v@r,v@r,..." — node v crash-stops at round r. *)
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun part ->
           let bad () =
             failwith
               (Printf.sprintf "bad crash spec %S (want NODE@ROUND,...)" part)
           in
           match String.split_on_char '@' (String.trim part) with
           | [ v; r ] -> (
               match (int_of_string_opt v, int_of_string_opt r) with
               | Some v, Some r -> (v, r)
               | _ -> bad ())
           | _ -> bad ())

let parse_edge_events what s =
  (* "u-v@r,u-v@r,..." — the edge u-v changes state at round r. *)
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun part ->
           let bad () =
             failwith
               (Printf.sprintf "bad %s spec %S (want U-V@ROUND,...)" what part)
           in
           match String.split_on_char '@' (String.trim part) with
           | [ uv; r ] -> (
               match (String.split_on_char '-' uv, int_of_string_opt r) with
               | [ u; v ], Some r -> (
                   match (int_of_string_opt u, int_of_string_opt v) with
                   | Some u, Some v -> (r, u, v)
                   | _ -> bad ())
               | _ -> bad ())
           | _ -> bad ())

let parse_links s =
  (* "u-v,u-v,..." — the links of a partition cut. *)
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun part ->
           let bad () =
             failwith
               (Printf.sprintf "bad partition link %S (want U-V,...)" part)
           in
           match String.split_on_char '-' (String.trim part) with
           | [ u; v ] -> (
               match (int_of_string_opt u, int_of_string_opt v) with
               | Some u, Some v -> (u, v)
               | _ -> bad ())
           | _ -> bad ())

let simulate_cmd =
  let drop =
    Arg.(
      value
      & opt float 0.
      & info [ "drop" ] ~docv:"P" ~doc:"Per-message loss probability.")
  in
  let dup =
    Arg.(
      value
      & opt float 0.
      & info [ "dup" ] ~docv:"P" ~doc:"Per-message duplication probability.")
  in
  let delay =
    Arg.(
      value
      & opt float 0.
      & info [ "delay" ] ~docv:"P" ~doc:"Per-message delay probability.")
  in
  let max_delay =
    Arg.(
      value
      & opt int 3
      & info [ "max-delay" ] ~docv:"K"
          ~doc:"Delayed messages wait uniform 1..K extra rounds.")
  in
  let crash =
    Arg.(
      value
      & opt string ""
      & info [ "crash" ] ~docv:"SPEC"
          ~doc:"Crash-stop schedule, e.g. 3@5,9@12 (node 3 dies at round 5).")
  in
  let restart =
    Arg.(
      value
      & opt string ""
      & info [ "restart" ] ~docv:"SPEC"
          ~doc:
            "Crash-recovery schedule, e.g. 3@40 (node 3 restarts at round 40 \
             with a fresh incarnation).  Every restarted node must also \
             appear in --crash, with an earlier round; the repair pass \
             reintegrates it after the last restart lands.")
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record every network event to FILE as JSON lines.")
  in
  let replay_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay the faults recorded in FILE (same graph flags required); \
             overrides the random fault options and diffs the statistics \
             against the recorded ones.")
  in
  let crash_frac =
    Arg.(
      value
      & opt float 0.
      & info [ "crash-frac" ] ~docv:"F"
          ~doc:
            "Crash-stop a random fraction F of the nodes (in addition to any \
             --crash schedule), each at a random round.")
  in
  let crash_max_round =
    Arg.(
      value
      & opt int 50
      & info [ "crash-max-round" ] ~docv:"R"
          ~doc:"Random --crash-frac crashes land uniformly in rounds 1..R.")
  in
  let certify =
    Arg.(
      value & flag
      & info [ "certify" ]
          ~doc:
            "After a skeleton run, certify the output (subset, forest, \
             contribution, stretch) and exit nonzero on failure.")
  in
  let mutate =
    Arg.(
      value & flag
      & info [ "mutate" ]
          ~doc:
            "Sabotage the skeleton before certifying: remove one cluster-tree \
             edge from the spanner.  The certifier must reject (exercises the \
             failure path; implies --certify).")
  in
  let edge_drop =
    Arg.(
      value
      & opt string ""
      & info [ "edge-drop" ] ~docv:"SPEC"
          ~doc:
            "Churn: edges going down, e.g. 3-7@10,5-9@20 (edge 3-7 goes down \
             at round 10).  A down edge silently swallows messages; the ARQ \
             retransmits and eventually suspects the peer.")
  in
  let edge_up =
    Arg.(
      value
      & opt string ""
      & info [ "edge-up" ] ~docv:"SPEC"
          ~doc:"Churn: edges coming (back) up, same U-V@ROUND syntax.")
  in
  let partition =
    Arg.(
      value
      & opt string ""
      & info [ "partition" ] ~docv:"LINKS"
          ~doc:
            "Churn: cut all listed links at once, e.g. 3-7,5-9 (see \
             --partition-round and --heal-round).")
  in
  let partition_round =
    Arg.(
      value
      & opt int 1
      & info [ "partition-round" ] ~docv:"R"
          ~doc:"Round at which the --partition cut happens.")
  in
  let heal_round =
    Arg.(
      value
      & opt int 0
      & info [ "heal-round" ] ~docv:"R"
          ~doc:
            "Heal the --partition at round R (0: never heals — the spanner \
             ends partitioned and each island is certified separately).")
  in
  let join =
    Arg.(
      value
      & opt string ""
      & info [ "join" ] ~docv:"SPEC"
          ~doc:
            "Churn: late node joins, e.g. 4@25 (node 4 only joins the network \
             at round 25; until then all its links are dead).")
  in
  let churn_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "churn-trace" ] ~docv:"FILE"
          ~doc:
            "Load edge_down/edge_up/join events from a recorded trace FILE \
             and add them to the churn plan.")
  in
  let phase_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "phase-limit" ] ~docv:"N"
          ~doc:
            "Abort a skeleton phase after N rounds with a structured stuck \
             report (default 10000 + 500n).")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Record labeled metrics (per-phase cost, per-link load, ARQ \
             counters) and write the snapshot to FILE as JSON lines.")
  in
  let metrics_summary =
    Arg.(
      value & flag
      & info [ "metrics-summary" ]
          ~doc:
            "Print the per-phase cost table (rounds, messages, words, max \
             words per phase; totals equal the network statistics).")
  in
  let spans_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "spans" ] ~docv:"FILE"
          ~doc:
            "Record causal spans (one per transmission, with Lamport \
             timestamps, plus phase/call/cluster/ARQ parents) and write them \
             to FILE as JSON lines, readable by report --critical-path / \
             --perfetto.")
  in
  let profile_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "Profile real machine cost (monotonic wall-clock and GC \
             allocation counters per phase, region, and round) and write the \
             rows to FILE as JSON lines, readable by report.")
  in
  let audit_bounds =
    Arg.(
      value & flag
      & info [ "audit-bounds" ]
          ~doc:
            "After a skeleton run, compare observed rounds, max message \
             words, and spanner size against the paper's bounds and print \
             PASS/WARN per bound.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"With $(b,--audit-bounds): exit nonzero on any WARN.")
  in
  let protocol =
    Arg.(
      value
      & opt string "bfs"
      & info [ "protocol"; "algo" ] ~docv:"PROTO"
          ~doc:
            "Protocol to run: bfs, flood (both ARQ-lifted), or skeleton (the \
             full Section 2 construction with crash recovery).")
  in
  let root =
    Arg.(value & opt int 0 & info [ "root" ] ~docv:"V" ~doc:"Protocol root node.")
  in
  let arq_backoff =
    Arg.(
      value
      & opt float Distnet.Reliable.default_config.Distnet.Reliable.backoff
      & info [ "arq-backoff" ] ~docv:"F"
          ~doc:
            "ARQ retransmit-timer growth factor per timeout (1 = fixed \
             interval; default 2 = classic doubling, byte-identical to \
             historical behavior).")
  in
  let run kind n p seed input drop dup delay max_delay crash restart
      crash_frac crash_max_round edge_drop edge_up partition partition_round
      heal_round join churn_trace phase_limit certify mutate trace_file
      replay_file metrics_file metrics_summary spans_file profile_file
      audit_bounds strict protocol root arq_backoff =
    if arq_backoff <> Distnet.Reliable.default_config.Distnet.Reliable.backoff
    then begin
      try
        Distnet.Reliable.set_config
          { Distnet.Reliable.default_config with backoff = arq_backoff }
      with Invalid_argument msg ->
        Format.eprintf "spanner_cli: %s@." msg;
        exit 1
    end;
    let g = load_graph ~kind ~n ~p ~seed ~input in
    Format.printf "graph: %a@." Graph.pp_summary g;
    let faults, recorded =
      match replay_file with
      | Some file ->
          let events, stored = Distnet.Trace.load file in
          Format.printf "replaying %d events from %s@." (List.length events)
            file;
          (* A loss-free recording must replay over the loss-free
             engine: protocols (skeleton) pick their transport by
             [Fault.is_none], and a scripted all-deliver plan is not
             [none] even though it injects nothing. *)
          let has_faults =
            List.exists
              (fun (e : Distnet.Trace.event) ->
                match e.kind with
                | Distnet.Trace.Send | Distnet.Trace.Deliver -> false
                | _ -> true)
              events
          in
          let plan =
            if has_faults then Distnet.Fault.scripted events
            else Distnet.Fault.none
          in
          (plan, stored)
      | None ->
          let crashes =
            let explicit = parse_crashes crash in
            if crash_frac <= 0. then explicit
            else begin
              let rng = Util.Prng.create ~seed:(seed + 87) in
              let picks = ref [] in
              for v = 0 to Graph.n g - 1 do
                if Util.Prng.bernoulli rng crash_frac then
                  picks :=
                    (v, 1 + Util.Prng.int rng (Stdlib.max 1 crash_max_round))
                    :: !picks
              done;
              explicit @ List.rev !picks
            end
          in
          let churn =
            List.map
              (fun (r, u, v) -> Distnet.Fault.Edge_down { round = r; u; v })
              (parse_edge_events "edge-drop" edge_drop)
            @ List.map
                (fun (r, u, v) -> Distnet.Fault.Edge_up { round = r; u; v })
                (parse_edge_events "edge-up" edge_up)
            @ (match parse_links partition with
              | [] -> []
              | links ->
                  [
                    Distnet.Fault.Partition
                      {
                        round = partition_round;
                        edges = links;
                        heal =
                          (if heal_round > 0 then Some heal_round else None);
                      };
                  ])
            @ List.map
                (fun (v, r) -> Distnet.Fault.Join { round = r; node = v })
                (parse_crashes join)
            @
            match churn_trace with
            | None -> []
            | Some file ->
                let events, _ = Distnet.Trace.load file in
                let churn = Distnet.Fault.churn_of_trace events in
                Format.printf "churn plan: %d events from %s@."
                  (List.length churn) file;
                churn
          in
          let spec =
            {
              Distnet.Fault.drop;
              dup;
              delay;
              max_delay;
              crashes;
              restarts = parse_crashes restart;
              churn;
              drop_profile = [];
            }
          in
          let plan =
            if spec = { Distnet.Fault.default_spec with max_delay } then
              Distnet.Fault.none
            else
              try Distnet.Fault.make ~seed:(seed + 31) ~graph:g spec
              with Invalid_argument msg ->
                Format.eprintf "spanner_cli: %s@." msg;
                exit 1
          in
          (plan, None)
    in
    let tracer =
      match (replay_file, trace_file) with
      | None, Some _ -> Some (Distnet.Trace.create ())
      | _ -> None
    in
    let certification_failed = ref false in
    (* One registry for the whole run; stays the shared no-op sink
       unless some metrics-consuming flag was given, so default output
       is byte-identical to the uninstrumented CLI. *)
    let reg =
      if metrics_file <> None || metrics_summary || audit_bounds then
        Obs.Metrics.create ()
      else Obs.Metrics.disabled
    in
    (* Same discipline for the span sink. *)
    let spans =
      if spans_file <> None then Obs.Span.create () else Obs.Span.disabled
    in
    (* And the profiler, installed as the ambient sink so the engine
       and protocol hot paths pick it up without extra plumbing. *)
    let prof =
      if profile_file <> None then Obs.Prof.create () else Obs.Prof.disabled
    in
    Obs.Prof.set_current prof;
    let plan_ref = ref None in
    let spanner_edges_ref = ref None in
    let stats =
      match protocol with
      | "bfs" ->
          let stats, dist =
            Distnet.Protocols.reliable_bfs ~faults ?tracer ~metrics:reg ~spans
              g ~root
          in
          let expected = Graphlib.Bfs.distances g ~src:root in
          Format.printf "distances correct: %b@." (dist = expected);
          stats
      | "flood" ->
          let stats, reached =
            Distnet.Protocols.reliable_flood ~faults ?tracer ~metrics:reg
              ~spans g ~root ~payload_words:4
          in
          let cover =
            Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 reached
          in
          Format.printf "reached %d/%d nodes@." cover (Graph.n g);
          stats
      | "skeleton" -> (
          match
            Spanner.Skeleton_dist.build ~faults ?tracer ~metrics:reg ~spans
              ?phase_round_limit:phase_limit ~seed g
          with
          | exception
              Spanner.Skeleton_dist.Stuck { phase; waiting_on; stats } ->
              (* Structured dead end — e.g. a partition that never heals
                 and outlasts the phase budget.  Report and exit clean. *)
              let preview =
                let rec take k = function
                  | x :: tl when k > 0 -> x :: take (k - 1) tl
                  | _ -> []
                in
                take 8 waiting_on
                |> List.map (fun (v, w) -> Printf.sprintf "%d->%d" v w)
                |> String.concat ", "
              in
              Format.printf "stuck: %s phase cannot complete; waiting on %d \
                             link(s)%s@."
                phase
                (List.length waiting_on)
                (if preview = "" then "" else " (" ^ preview ^ ")");
              Format.printf "network: %a@." Distnet.Sim.pp_stats stats;
              exit 2
          | r ->
              plan_ref := Some r.Spanner.Skeleton_dist.plan;
              spanner_edges_ref :=
                Some (Edge_set.cardinal r.Spanner.Skeleton_dist.spanner);
              Format.printf "spanner: %d edges, %d aborts@."
                (Edge_set.cardinal r.Spanner.Skeleton_dist.spanner)
                r.Spanner.Skeleton_dist.aborts;
              let rc = r.Spanner.Skeleton_dist.recovery in
              if not (Distnet.Fault.is_none faults) then
                Format.printf
                  "recovery: %d crashed, %d orphaned, %d recovered edges, %d \
                   checkpoints, %d retransmissions, %d dead letters@."
                  rc.Spanner.Skeleton_dist.crashed
                  rc.Spanner.Skeleton_dist.orphaned
                  rc.Spanner.Skeleton_dist.recovered_edges
                  rc.Spanner.Skeleton_dist.checkpoints
                  rc.Spanner.Skeleton_dist.retransmissions
                  rc.Spanner.Skeleton_dist.dead_letters;
              let repaired =
                Distnet.Fault.has_churn faults
                || Distnet.Fault.has_restarts faults
              in
              if repaired then begin
                let rp = r.Spanner.Skeleton_dist.repair in
                Format.printf
                  "repair: %a (%d dead spanner edges, %d rehooked, %d \
                   replaced, %d keep-all, %d rejoined, %d rounds, %d \
                   components)@."
                  Spanner.Skeleton_dist.pp_outcome
                  rp.Spanner.Skeleton_dist.outcome
                  rp.Spanner.Skeleton_dist.dead_spanner_edges
                  rp.Spanner.Skeleton_dist.rehooked
                  rp.Spanner.Skeleton_dist.replaced_edges
                  rp.Spanner.Skeleton_dist.keep_all_fallbacks
                  rp.Spanner.Skeleton_dist.rejoined
                  rp.Spanner.Skeleton_dist.repair_rounds
                  rp.Spanner.Skeleton_dist.components
              end;
              if certify || mutate then begin
                let w = r.Spanner.Skeleton_dist.witness in
                let spanner =
                  if not mutate then r.Spanner.Skeleton_dist.spanner
                  else begin
                    let victim = ref (-1) in
                    Array.iteri
                      (fun v e ->
                        if
                          !victim < 0 && e >= 0
                          && not w.Spanner.Certify.crashed.(v)
                        then victim := e)
                      w.Spanner.Certify.parent_edge;
                    if !victim < 0 then
                      failwith "mutate: no cluster-tree edge to remove";
                    Format.printf "mutate: removed cluster-tree edge %d@."
                      !victim;
                    let edges = ref [] in
                    Edge_set.iter r.Spanner.Skeleton_dist.spanner (fun e ->
                        if e <> !victim then edges := e :: !edges);
                    Edge_set.of_list g !edges
                  end
                in
                (* Under churn, audit against the surviving topology and
                   guarantee every live component gets a BFS source. *)
                let down = Array.make (Stdlib.max 1 (Graph.m g)) false in
                List.iter
                  (fun e -> down.(e) <- true)
                  r.Spanner.Skeleton_dist.dead_edges;
                let verdict =
                  Spanner.Certify.run
                    ~down_edge:(fun e -> repaired && down.(e))
                    ~per_component:repaired ~metrics:reg
                    ~plan:r.Spanner.Skeleton_dist.plan ~witness:w g spanner
                in
                Format.printf "%a@." Spanner.Certify.pp verdict;
                if not (Spanner.Certify.ok verdict) then
                  certification_failed := true
              end;
              r.Spanner.Skeleton_dist.stats)
      | other -> failwith (Printf.sprintf "unknown protocol %s" other)
    in
    Format.printf "network: %a@." Distnet.Sim.pp_stats stats;
    (match recorded with
    | Some original -> (
        match Distnet.Trace.diff_stats original stats with
        | [] -> Format.printf "replay reproduces original stats: yes@."
        | diffs ->
            List.iter
              (fun (field, a, b) ->
                Format.printf "replay mismatch: %s recorded %d, got %d@." field
                  a b)
              diffs;
            exit 1)
    | None -> ());
    (match (trace_file, tracer) with
    | Some file, Some tr ->
        Distnet.Trace.save ~stats tr file;
        Format.printf "trace written to %s (%d events)@." file
          (Distnet.Trace.length tr)
    | _ -> ());
    if metrics_summary then begin
      Format.printf "per-phase cost:@.";
      Obs.Report.pp_phase_table Format.std_formatter
        (Obs.Metrics.snapshot reg)
    end;
    (match metrics_file with
    | Some file ->
        (* Meta header first: enough to rebuild the plan and stats, so
           [report --audit-bounds] can audit the file standalone. *)
        let meta =
          let b = Buffer.create 160 in
          Buffer.add_string b
            (Printf.sprintf {|{"kind":"meta","algo":"%s","n":%d,"arq":%d|}
               protocol (Graph.n g)
               (if Distnet.Fault.is_none faults then 0 else 1));
          (match !plan_ref with
          | Some (plan : Spanner.Plan.t) ->
              Buffer.add_string b
                (Printf.sprintf {|,"d":%d,"eps":%g|} plan.Spanner.Plan.d
                   plan.Spanner.Plan.eps)
          | None -> ());
          (match !spanner_edges_ref with
          | Some edges ->
              Buffer.add_string b
                (Printf.sprintf {|,"spanner_edges":%d|} edges)
          | None -> ());
          Buffer.add_string b
            (Printf.sprintf
               {|,"rounds":%d,"messages":%d,"words":%d,"max_message_words":%d}|}
               stats.Distnet.Sim.rounds stats.Distnet.Sim.messages
               stats.Distnet.Sim.words stats.Distnet.Sim.max_message_words);
          Buffer.contents b
        in
        Obs.Metrics.save ~extra:[ meta ] reg file;
        Format.printf "metrics written to %s (%d samples)@." file
          (List.length (Obs.Metrics.snapshot reg))
    | None -> ());
    (match spans_file with
    | Some file ->
        let meta =
          Printf.sprintf
            {|{"kind":"span_meta","algo":"%s","n":%d,"arq":%d,"rounds":%d,"messages":%d,"words":%d,"max_message_words":%d}|}
            protocol (Graph.n g)
            (if Distnet.Fault.is_none faults then 0 else 1)
            stats.Distnet.Sim.rounds stats.Distnet.Sim.messages
            stats.Distnet.Sim.words stats.Distnet.Sim.max_message_words
        in
        Obs.Span.save ~extra:[ meta ] spans file;
        Format.printf "spans written to %s (%d spans)@." file
          (Obs.Span.count spans)
    | None -> ());
    (match profile_file with
    | Some file ->
        let meta =
          Printf.sprintf
            {|{"kind":"prof_meta","algo":"%s","n":%d,"arq":%d,"rounds":%d,"messages":%d,"words":%d,"max_message_words":%d}|}
            protocol (Graph.n g)
            (if Distnet.Fault.is_none faults then 0 else 1)
            stats.Distnet.Sim.rounds stats.Distnet.Sim.messages
            stats.Distnet.Sim.words stats.Distnet.Sim.max_message_words
        in
        Obs.Prof.save ~extra:[ meta ] prof file;
        Format.printf "profile written to %s (%d rows, %d round samples)@."
          file
          (List.length (Obs.Prof.rows prof))
          (List.length (Obs.Prof.round_samples prof))
    | None -> ());
    if audit_bounds then begin
      match !plan_ref with
      | None ->
          Format.eprintf "spanner_cli: --audit-bounds needs --protocol skeleton@.";
          exit 1
      | Some plan ->
          let phase_rounds =
            List.map
              (fun (r : Obs.Report.phase_row) ->
                (r.Obs.Report.phase, r.Obs.Report.rounds))
              (Obs.Report.phase_rows (Obs.Metrics.snapshot reg))
          in
          let report =
            Spanner.Audit.run
              ~arq:(not (Distnet.Fault.is_none faults))
              ?spanner_edges:!spanner_edges_ref ~phase_rounds ~plan ~stats ()
          in
          Format.printf "%a" Spanner.Audit.pp report;
          if strict && not (Spanner.Audit.ok report) then exit 1
    end;
    if !certification_failed then exit 1
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Run a protocol over a faulty network (loss, duplication, delay, \
          crashes), optionally tracing every event for deterministic replay.")
    Term.(
      const run $ kind_arg $ n_arg $ p_arg $ seed_arg $ input_arg $ drop $ dup
      $ delay $ max_delay $ crash $ restart $ crash_frac $ crash_max_round
      $ edge_drop $ edge_up $ partition $ partition_round $ heal_round $ join
      $ churn_trace $ phase_limit $ certify $ mutate $ trace_file
      $ replay_file $ metrics_file $ metrics_summary $ spans_file
      $ profile_file $ audit_bounds $ strict $ protocol $ root $ arq_backoff)

(* ------------------------------------------------------------------ *)
(* report *)

let report_cmd =
  let files =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Trace or metrics JSONL files (written by simulate --trace / \
             --metrics); the kind is auto-detected per file.")
  in
  let top =
    Arg.(
      value & opt int 5
      & info [ "top" ] ~docv:"K" ~doc:"Rows in the top-$(docv) tables.")
  in
  let audit_bounds =
    Arg.(
      value & flag
      & info [ "audit-bounds" ]
          ~doc:
            "Audit a metrics file's recorded run against the paper's bounds \
             (needs the meta header of a skeleton run).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"With $(b,--audit-bounds): exit nonzero on any WARN.")
  in
  let critical_path =
    Arg.(
      value & flag
      & info [ "critical-path" ]
          ~doc:
            "On a spans file: extract the causal critical path ending at \
             quiescence — the primary chain hop by hop, the per-phase slack \
             table, and one-line summaries of the next $(b,--top) chains.")
  in
  let perfetto =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"OUT"
          ~doc:
            "On a spans file: export Chrome trace-event JSON to $(docv), \
             loadable in ui.perfetto.dev or chrome://tracing.  When a \
             profile file (simulate --profile) is also given, its per-round \
             GC samples are merged in as counter tracks.")
  in
  let profile_flag =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Require profile files (simulate --profile): the per-phase and \
             per-region machine-cost tables with top-$(b,--top) allocation \
             sites.  Profile files are also auto-detected without the flag.")
  in
  let rec take k = function
    | x :: tl when k > 0 -> x :: take (k - 1) tl
    | _ -> []
  in
  (* Auto-detect: metrics files start with a {"kind":"meta"|"metric"}
     line, spans files with {"kind":"span_meta"|"span"}; anything else
     is treated as a trace. *)
  let file_kind file =
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go () =
          match input_line ic with
          | exception End_of_file -> `Empty
          | line when String.trim line = "" -> go ()
          | line -> (
              match Obs.Metrics.json_str line "kind" with
              | Some "metric" | Some "meta" -> `Metrics
              | Some "span" | Some "span_meta" -> `Spans
              | Some "prof" | Some "prof_round" | Some "prof_meta" -> `Profile
              | _ -> `Trace)
        in
        go ())
  in
  let read_meta_kind kind file =
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let meta = ref None in
        (try
           while true do
             let line = input_line ic in
             if
               !meta = None
               && Obs.Metrics.json_str line "kind" = Some kind
             then meta := Some line
           done
         with End_of_file -> ());
        !meta)
  in
  let read_meta = read_meta_kind "meta" in
  let pp_meta_line line =
    let get f = Option.value ~default:0 (Obs.Metrics.json_int line f) in
    Format.printf
      "  run: algo=%s n=%d arq=%d rounds=%d messages=%d words=%d \
       max_message_words=%d@."
      (Option.value ~default:"?" (Obs.Metrics.json_str line "algo"))
      (get "n") (get "arq") (get "rounds") (get "messages") (get "words")
      (get "max_message_words")
  in
  let bump tbl key w =
    let m, ww = Option.value ~default:(0, 0) (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (m + 1, ww + w)
  in
  (* Sort (key, (msgs, words)) rows for the top-k tables.  The order
     must be a total one — words descending, then messages descending,
     then key (node or link id) ascending — so rows that tie on the
     measured quantities still print in a stable order and cram output
     never depends on hash-table iteration. *)
  let ranked tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (k1, (m1, w1)) (k2, (m2, w2)) ->
           if w1 <> w2 then compare w2 w1
           else if m1 <> m2 then compare m2 m1
           else compare k1 k2)
  in
  let report_trace ~top file =
    let module T = Distnet.Trace in
    let sends = ref 0
    and delivers = ref 0
    and drops = ref 0
    and dups = ref 0
    and delays = ref 0
    and send_words = ref 0
    and max_round = ref 0 in
    let node_sent = Hashtbl.create 64 in
    let node_recv = Hashtbl.create 64 in
    let link = Hashtbl.create 64 in
    let round_words = Hashtbl.create 64 in
    let stats =
      T.iter_file file (fun e ->
          if e.T.round > !max_round then max_round := e.T.round;
          match e.T.kind with
          | T.Send ->
              sends := !sends + 1;
              send_words := !send_words + e.T.words;
              bump node_sent e.T.src e.T.words;
              bump link (e.T.src, e.T.dst) e.T.words;
              Hashtbl.replace round_words e.T.round
                (e.T.words
                + Option.value ~default:0
                    (Hashtbl.find_opt round_words e.T.round))
          | T.Deliver -> delivers := !delivers + 1;
              bump node_recv e.T.dst e.T.words
          | T.Drop _ -> drops := !drops + 1
          | T.Dup -> dups := !dups + 1
          | T.Delay _ -> delays := !delays + 1
          | _ -> ())
    in
    Format.printf "trace report: %s@." file;
    Format.printf
      "  sends %d (%d words), delivered %d, dropped %d, dup %d, delayed %d@."
      !sends !send_words !delivers !drops !dups !delays;
    (match stats with
    | Some s -> Format.printf "  recorded stats: %a@." Distnet.Sim.pp_stats s
    | None -> ());
    let nodes = take top (ranked node_sent) in
    if nodes <> [] then begin
      Format.printf "  top %d nodes by sent words:@." (List.length nodes);
      List.iter
        (fun (v, (m, w)) ->
          let rm, rw =
            Option.value ~default:(0, 0) (Hashtbl.find_opt node_recv v)
          in
          Format.printf
            "    node %d: sent %d msgs / %d words, received %d / %d@." v m w
            rm rw)
        nodes
    end;
    let links = take top (ranked link) in
    if links <> [] then begin
      Format.printf "  top %d links by words:@." (List.length links);
      List.iter
        (fun ((u, v), (m, w)) ->
          Format.printf "    %d->%d: %d msgs, %d words@." u v m w)
        links
    end;
    if Hashtbl.length round_words > 0 then begin
      let bins = 10 in
      let width = Stdlib.max 1 ((!max_round + bins) / bins) in
      let acc = Array.make bins 0 in
      Hashtbl.iter
        (fun r w ->
          let b = Stdlib.min (bins - 1) (r / width) in
          acc.(b) <- acc.(b) + w)
        round_words;
      Format.printf "  round timeline (words sent per bin of %d rounds):@."
        width;
      Array.iteri
        (fun i w ->
          Format.printf "    r%d-r%d: %d@." (i * width)
            (((i + 1) * width) - 1)
            w)
        acc
    end
  in
  let report_metrics ~top ~audit_bounds ~strict file =
    let samples = Obs.Metrics.load file in
    let meta = read_meta file in
    Format.printf "metrics report: %s@." file;
    Option.iter pp_meta_line meta;
    Obs.Report.pp_phase_table Format.std_formatter samples;
    let links =
      List.filter_map
        (fun (s : Obs.Metrics.sample) ->
          match (s.Obs.Metrics.name, s.Obs.Metrics.value) with
          | "link_words", Obs.Metrics.Counter w ->
              let f k =
                match List.assoc_opt k s.Obs.Metrics.labels with
                | Some v -> int_of_string_opt v |> Option.value ~default:(-1)
                | None -> -1
              in
              Some (f "src", f "dst", w)
          | _ -> None)
        samples
    in
    if links <> [] then begin
      let links =
        List.sort
          (fun (s1, d1, w1) (s2, d2, w2) ->
            if w1 <> w2 then compare w2 w1 else compare (s1, d1) (s2, d2))
          links
        |> take top
      in
      Format.printf "  top %d links by words:@." (List.length links);
      List.iter
        (fun (s, d, w) -> Format.printf "    %d->%d: %d words@." s d w)
        links
    end;
    let prefixed prefix (s : Obs.Metrics.sample) =
      let l = String.length prefix in
      String.length s.Obs.Metrics.name >= l
      && String.sub s.Obs.Metrics.name 0 l = prefix
    in
    let is_phase = prefixed "phase_" in
    let is_serve = prefixed "serve_" in
    if List.exists is_serve samples then begin
      Format.printf "  serve:@.";
      Obs.Report.pp_serve_table Format.std_formatter samples
    end;
    let others =
      List.filter
        (fun (s : Obs.Metrics.sample) ->
          s.Obs.Metrics.name <> "link_words"
          && (not (is_phase s))
          && not (is_serve s))
        samples
    in
    if others <> [] then begin
      Format.printf "  other metrics:@.";
      Obs.Report.pp_summary Format.std_formatter others
    end;
    if audit_bounds then begin
      match meta with
      | None ->
          Format.eprintf
            "spanner_cli: report --audit-bounds: %s has no meta header@." file;
          exit 1
      | Some line -> (
          match
            ( Obs.Metrics.json_int line "n",
              Obs.Metrics.json_int line "d",
              Obs.Metrics.json_float line "eps" )
          with
          | Some n, Some d, Some eps ->
              let plan = Spanner.Plan.make ~n ~d ~eps () in
              let get f =
                Option.value ~default:0 (Obs.Metrics.json_int line f)
              in
              let stats =
                {
                  Distnet.Sim.rounds = get "rounds";
                  messages = get "messages";
                  words = get "words";
                  max_message_words = get "max_message_words";
                }
              in
              let phase_rounds =
                List.map
                  (fun (r : Obs.Report.phase_row) ->
                    (r.Obs.Report.phase, r.Obs.Report.rounds))
                  (Obs.Report.phase_rows samples)
              in
              let report =
                Spanner.Audit.run
                  ~arq:(get "arq" = 1)
                  ?spanner_edges:(Obs.Metrics.json_int line "spanner_edges")
                  ~phase_rounds ~plan ~stats ()
              in
              Format.printf "%a" Spanner.Audit.pp report;
              if strict && not (Spanner.Audit.ok report) then exit 1
          | _ ->
              Format.eprintf
                "spanner_cli: report --audit-bounds: %s's meta header has no \
                 d/eps (not a skeleton run)@."
                file;
              exit 1)
    end
  in
  let report_profile ~top file =
    let rows, rounds = Obs.Prof.load file in
    Format.printf "profile report: %s@." file;
    Option.iter pp_meta_line (read_meta_kind "prof_meta" file);
    Obs.Report.pp_profile_table ~top Format.std_formatter (rows, rounds)
  in
  let report_spans ~top ~critical_path ~perfetto ~counters file =
    let records = Obs.Span.load file in
    Format.printf "spans report: %s@." file;
    Option.iter pp_meta_line (read_meta_kind "span_meta" file);
    let count p = List.length (List.filter p records) in
    let messages =
      count (fun (s : Obs.Span.record) -> s.Obs.Span.kind = Obs.Span.Message)
    in
    let delivered =
      count (fun (s : Obs.Span.record) ->
          s.Obs.Span.kind = Obs.Span.Message
          && s.Obs.Span.status = Obs.Span.Delivered)
    in
    let by_kind k = count (fun (s : Obs.Span.record) -> s.Obs.Span.kind = k) in
    Format.printf
      "  %d spans: %d messages (%d delivered, %d dropped), %d phases, %d \
       calls, %d clusters, %d arq, %d retransmissions@."
      (List.length records) messages delivered (messages - delivered)
      (by_kind Obs.Span.Phase) (by_kind Obs.Span.Call)
      (by_kind Obs.Span.Cluster) (by_kind Obs.Span.Arq)
      (by_kind Obs.Span.Retransmit);
    if critical_path then
      Obs.Causal.pp Format.std_formatter (Obs.Causal.analyze ~k:top records);
    match perfetto with
    | Some out ->
        let n = Obs.Perfetto.export ~counters records out in
        Format.printf "perfetto trace written to %s (%d events)@." out n
    | None -> ()
  in
  let run files top audit_bounds strict critical_path perfetto profile_flag =
    let kinds =
      List.map
        (fun file ->
          if not (Sys.file_exists file) then begin
            Format.eprintf "spanner_cli: no such file %s@." file;
            exit 1
          end;
          (file, file_kind file))
        files
    in
    (* A profile file given alongside a spans file under --perfetto is
       not reported on its own: its round samples become the counter
       tracks of the merged export. *)
    let merge_counters =
      perfetto <> None && List.exists (fun (_, k) -> k = `Spans) kinds
    in
    let counters =
      if not merge_counters then []
      else
        List.concat_map
          (fun (file, k) ->
            if k = `Profile then snd (Obs.Prof.load file) else [])
          kinds
    in
    List.iter
      (fun (file, kind) ->
        if
          (critical_path || perfetto <> None)
          && kind <> `Spans
          && not (merge_counters && kind = `Profile)
        then begin
          Format.eprintf
            "spanner_cli: report --critical-path/--perfetto need a spans \
             file (simulate --spans), but %s is not one@."
            file;
          exit 1
        end;
        if profile_flag && kind <> `Profile then begin
          Format.eprintf
            "spanner_cli: report --profile needs a profile file (simulate \
             --profile), but %s is not one@."
            file;
          exit 1
        end;
        try
          match kind with
          | `Metrics -> report_metrics ~top ~audit_bounds ~strict file
          | `Spans ->
              if audit_bounds then begin
                Format.eprintf
                  "spanner_cli: report --audit-bounds needs a metrics file, \
                   but %s is a spans file@."
                  file;
                exit 1
              end;
              report_spans ~top ~critical_path ~perfetto ~counters file
          | `Profile ->
              if audit_bounds then begin
                Format.eprintf
                  "spanner_cli: report --audit-bounds needs a metrics file, \
                   but %s is a profile@."
                  file;
                exit 1
              end;
              if not merge_counters then report_profile ~top file
          | `Trace ->
              if audit_bounds then begin
                Format.eprintf
                  "spanner_cli: report --audit-bounds needs a metrics file, \
                   but %s is a trace@."
                  file;
                exit 1
              end;
              report_trace ~top file
          | `Empty -> Format.printf "%s: empty file@." file
        with
        (* a corrupt line is a user-facing error, not a crash *)
        | Failure msg ->
            Format.eprintf "spanner_cli: %s@." msg;
            exit 1
        | (Distnet.Trace.Parse_error _ | Obs.Prof.Parse_error _) as e ->
            Format.eprintf "spanner_cli: %s@." (Printexc.to_string e);
            exit 1)
      kinds
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Aggregate a saved trace, metrics, or spans file: per-phase and \
          per-node summaries, most congested links, a round timeline, the \
          causal critical path, and (optionally) the paper-bound audit or a \
          Perfetto export.")
    Term.(
      const run $ files $ top $ audit_bounds $ strict $ critical_path
      $ perfetto $ profile_flag)

(* ------------------------------------------------------------------ *)
(* serve / query: the spanner as a live distance/route service *)

let oracle_k_arg =
  Arg.(
    value
    & opt int 2
    & info [ "oracle-k" ] ~docv:"K"
        ~doc:"Thorup-Zwick parameter of the snapshot oracle (stretch 2K-1).")

let snapshot_in_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot-in" ] ~docv:"FILE"
        ~doc:"Serve from a saved snapshot instead of building one.")

let serve_cmd =
  let queries =
    Arg.(
      value
      & opt int 10000
      & info [ "queries" ] ~docv:"Q" ~doc:"Generated workload size.")
  in
  let zipf =
    Arg.(
      value
      & opt (some float) None
      & info [ "zipf" ] ~docv:"S"
          ~doc:
            "Zipf exponent for source popularity (heavier tail with larger \
             $(docv); uniform sources when absent).")
  in
  let route_frac =
    Arg.(
      value
      & opt float 0.
      & info [ "route-frac" ] ~docv:"F"
          ~doc:
            "Fraction of point-to-point route queries (answered by compact \
             routing; the rest are distance queries).")
  in
  let workload_in =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"FILE"
          ~doc:"Load the query workload from FILE instead of generating it.")
  in
  let workload_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload-out" ] ~docv:"FILE"
          ~doc:"Save the generated workload to FILE.")
  in
  let workload_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "workload-seed" ] ~docv:"SEED"
          ~doc:
            "Seed of the query generator, independent of the graph seed \
             (default: --seed + 41).")
  in
  let snapshot_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot-out" ] ~docv:"FILE"
          ~doc:"Save the serving snapshot (edge list + build parameters).")
  in
  let routing_flag =
    Arg.(
      value & flag
      & info [ "routing" ]
          ~doc:
            "Build compact-routing tables even for a pure distance workload \
             (they are built automatically when the workload has routes).")
  in
  let edge_drop =
    Arg.(
      value
      & opt string ""
      & info [ "edge-drop" ] ~docv:"SPEC"
          ~doc:
            "Churn while serving: edges going down, e.g. 3-7@10,5-9@20.  Any \
             churn flag switches serve into the swap flow: serve fresh, mark \
             the snapshot stale, rebuild under the churn plan in the \
             background, publish the next generation atomically, keep \
             serving.")
  in
  let edge_up =
    Arg.(
      value
      & opt string ""
      & info [ "edge-up" ] ~docv:"SPEC"
          ~doc:"Churn: edges coming (back) up, same U-V@ROUND syntax.")
  in
  let partition =
    Arg.(
      value
      & opt string ""
      & info [ "partition" ] ~docv:"LINKS"
          ~doc:"Churn: cut all listed links at once, e.g. 3-7,5-9.")
  in
  let partition_round =
    Arg.(
      value
      & opt int 1
      & info [ "partition-round" ] ~docv:"R"
          ~doc:"Round at which the --partition cut happens.")
  in
  let heal_round =
    Arg.(
      value
      & opt int 0
      & info [ "heal-round" ] ~docv:"R"
          ~doc:"Heal the --partition at round R (0: never heals).")
  in
  let join =
    Arg.(
      value
      & opt string ""
      & info [ "join" ] ~docv:"SPEC"
          ~doc:"Churn: late node joins, e.g. 4@25.")
  in
  let audit_samples =
    Arg.(
      value
      & opt int 64
      & info [ "audit-samples" ] ~docv:"N"
          ~doc:
            "Audit N sampled answers against BFS ground truth and the \
             stretch bound; exit nonzero on a violation (0 disables).")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Record serve metrics (per-generation answer counters, latency \
             histograms, staleness) and write the snapshot to FILE as JSON \
             lines.")
  in
  let metrics_summary =
    Arg.(
      value & flag
      & info [ "metrics-summary" ]
          ~doc:"Print the per-generation serve table from the metrics sink.")
  in
  let run kind n p seed input d eps k queries zipf route_frac workload_in
      workload_out workload_seed snapshot_in snapshot_out routing_flag
      edge_drop edge_up partition partition_round heal_round join
      audit_samples metrics_file metrics_summary =
    let churn =
      List.map
        (fun (r, u, v) -> Distnet.Fault.Edge_down { round = r; u; v })
        (parse_edge_events "edge-drop" edge_drop)
      @ List.map
          (fun (r, u, v) -> Distnet.Fault.Edge_up { round = r; u; v })
          (parse_edge_events "edge-up" edge_up)
      @ (match parse_links partition with
        | [] -> []
        | links ->
            [
              Distnet.Fault.Partition
                {
                  round = partition_round;
                  edges = links;
                  heal = (if heal_round > 0 then Some heal_round else None);
                };
            ])
      @ List.map
          (fun (v, r) -> Distnet.Fault.Join { round = r; node = v })
          (parse_crashes join)
    in
    let reg =
      if metrics_file <> None || metrics_summary then Obs.Metrics.create ()
      else Obs.Metrics.disabled
    in
    (* The serving graph and the gen-0 snapshot: either a saved snapshot
       (no rebuild possible — the full graph is gone) or a fresh
       skeleton build. *)
    let g, plan_opt, build_snap0 =
      match snapshot_in with
      | Some file ->
          if churn <> [] then begin
            Format.eprintf
              "spanner_cli: serve --snapshot-in cannot take churn flags (a \
               rebuild needs the full input graph)@.";
            exit 1
          end;
          let snap = Serve.Snapshot.load file in
          Format.printf "snapshot loaded from %s@." file;
          (Serve.Snapshot.graph snap, None, fun ~routing:_ -> snap)
      | None ->
          let g = load_graph ~kind ~n ~p ~seed ~input in
          Format.printf "graph: %a@." Graph.pp_summary g;
          let r = Spanner.Skeleton_dist.build ~d ~eps ~seed g in
          Format.printf "spanner: %d edges@."
            (Edge_set.cardinal r.Spanner.Skeleton_dist.spanner);
          ( g,
            Some r.Spanner.Skeleton_dist.plan,
            fun ~routing ->
              Serve.Snapshot.build ~generation:0 ~k ~seed ~routing g
                r.Spanner.Skeleton_dist.spanner )
    in
    let wseed = Option.value ~default:(seed + 41) workload_seed in
    let w =
      match workload_in with
      | Some file ->
          let w = Serve.Workload.load ~n:(Graph.n g) file in
          Format.printf "workload: %d queries (%d routes) from %s@."
            (Array.length w)
            (Serve.Workload.route_count w)
            file;
          w
      | None ->
          let w =
            Serve.Workload.generate ~seed:wseed ~n:(Graph.n g)
              { Serve.Workload.queries; zipf; route_frac }
          in
          Format.printf "workload: %d queries (%d routes), seed %d@."
            (Array.length w)
            (Serve.Workload.route_count w)
            wseed;
          w
    in
    (match workload_out with
    | Some file ->
        Serve.Workload.save w file;
        Format.printf "workload written to %s@." file
    | None -> ());
    let routing = routing_flag || Serve.Workload.route_count w > 0 in
    let snap0 = build_snap0 ~routing in
    if Serve.Workload.route_count w > 0 && not (Serve.Snapshot.has_routing snap0)
    then begin
      Format.eprintf
        "spanner_cli: the workload has route queries but the snapshot has no \
         routing tables@.";
      exit 1
    end;
    Format.printf "snapshot: %a@." Serve.Snapshot.pp snap0;
    (match snapshot_out with
    | Some file ->
        Serve.Snapshot.save snap0 file;
        Format.printf "snapshot written to %s@." file
    | None -> ());
    let server = Serve.Server.create ~metrics:reg snap0 in
    let reports =
      if churn = [] then [ Serve.Server.run server w ]
      else begin
        (* Swap flow: a third of the workload against gen 0, a third
           stale while the background rebuild runs, the rest against
           the published next generation. *)
        let total = Array.length w in
        let s1 = total / 3 and s2 = total / 3 in
        let r1 = Serve.Server.run ~first:0 ~count:s1 server w in
        Serve.Server.mark_dirty server;
        Format.printf "churn landed: epoch %d, serving stale from gen %d@."
          (Serve.Server.epoch server)
          (Serve.Server.generation server);
        let r2 = Serve.Server.run ~first:s1 ~count:s2 server w in
        let faults =
          try
            Distnet.Fault.make ~seed:(seed + 31) ~graph:g
              { Distnet.Fault.default_spec with churn }
          with Invalid_argument msg ->
            Format.eprintf "spanner_cli: %s@." msg;
            exit 1
        in
        let rr = Spanner.Skeleton_dist.build ~faults ~d ~eps ~seed g in
        let snap1 =
          Serve.Snapshot.build ~generation:1 ~k ~seed ~routing
            ~exclude:rr.Spanner.Skeleton_dist.dead_edges g
            rr.Spanner.Skeleton_dist.spanner
        in
        Serve.Server.publish server snap1;
        Format.printf "swap: published %a (%d swap)@." Serve.Snapshot.pp snap1
          (Serve.Server.swaps server);
        let r3 =
          Serve.Server.run ~first:(s1 + s2) ~count:(total - s1 - s2) server w
        in
        [ r1; r2; r3 ]
      end
    in
    let rep = Serve.Server.merge reports in
    Format.printf "%a" Serve.Server.pp_report rep;
    (* The one wall-clock-dependent line, kept alone so pinned output
       can filter it. *)
    if rep.Serve.Server.answered > 0 then begin
      let lat = rep.Serve.Server.latency_sorted in
      Format.printf
        "latency: p50=%.0fns p90=%.0fns p99=%.0fns, throughput %.0f q/s@."
        (Util.Stats.p50_of_sorted lat)
        (Util.Stats.p90_of_sorted lat)
        (Util.Stats.p99_of_sorted lat)
        (float_of_int rep.Serve.Server.answered
        *. 1e9
        /. float_of_int (Stdlib.max 1 rep.Serve.Server.elapsed_ns))
    end;
    if audit_samples > 0 then begin
      let a =
        Serve.Server.audit ~samples:audit_samples ~seed:(seed + 53)
          (Serve.Server.snapshot server)
          w
      in
      Format.printf "%a@." Serve.Server.pp_audit a;
      (match plan_opt with
      | Some plan ->
          Format.printf
            "bounds: skeleton distortion <= %.2f (Theorem 2), oracle stretch \
             <= %d@."
            (Spanner.Certify.stretch_bound plan)
            ((2 * k) - 1)
      | None -> ());
      if not (Serve.Server.audit_ok a) then exit 1
    end;
    if metrics_summary then begin
      Format.printf "per-generation serve table:@.";
      Obs.Report.pp_serve_table Format.std_formatter (Obs.Metrics.snapshot reg)
    end;
    match metrics_file with
    | Some file ->
        let meta =
          Printf.sprintf
            {|{"kind":"meta","algo":"serve","n":%d,"queries":%d,"workload_seed":%d,"generations":%d,"swaps":%d}|}
            (Graph.n g) (Array.length w) wseed
            (Serve.Server.generation server + 1)
            (Serve.Server.swaps server)
        in
        Obs.Metrics.save ~extra:[ meta ] reg file;
        Format.printf "metrics written to %s (%d samples)@." file
          (List.length (Obs.Metrics.snapshot reg))
    | None -> ()
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Freeze the skeleton into a read-optimized snapshot and answer a \
          query workload against it: distance and route queries, exact \
          latency percentiles, staleness accounting, and atomic snapshot \
          swaps under churn.")
    Term.(
      const run $ kind_arg $ n_arg $ p_arg $ seed_arg $ input_arg $ d_arg
      $ eps_arg $ oracle_k_arg $ queries $ zipf $ route_frac $ workload_in
      $ workload_out $ workload_seed $ snapshot_in_arg $ snapshot_out
      $ routing_flag $ edge_drop $ edge_up $ partition $ partition_round
      $ heal_round $ join $ audit_samples $ metrics_file $ metrics_summary)

let query_cmd =
  let snapshot_in =
    Arg.(
      required
      & opt (some string) None
      & info [ "snapshot-in" ] ~docv:"FILE"
          ~doc:"Snapshot to answer from (written by serve --snapshot-out).")
  in
  let pairs =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"U,V"
          ~doc:"Query pairs, e.g. 3,17; seeded samples when omitted.")
  in
  let route =
    Arg.(
      value & flag
      & info [ "route" ]
          ~doc:"Answer with compact-routing hop counts instead of distances.")
  in
  let count =
    Arg.(
      value
      & opt int 10
      & info [ "queries" ] ~docv:"Q"
          ~doc:"Sampled queries when no pairs are given.")
  in
  let run snapshot_in pairs route count seed =
    let snap = Serve.Snapshot.load snapshot_in in
    Format.printf "snapshot: %a@." Serve.Snapshot.pp snap;
    if route && not (Serve.Snapshot.has_routing snap) then begin
      Format.eprintf
        "spanner_cli: %s has no routing tables (serve --routing when saving \
         it)@."
        snapshot_in;
      exit 1
    end;
    let n = Serve.Snapshot.n snap in
    let answer u v =
      if u < 0 || u >= n || v < 0 || v >= n then begin
        Format.eprintf "spanner_cli: vertex out of range (n=%d)@." n;
        exit 1
      end;
      let label = if route then "hops" else "d" in
      let value =
        if route then Serve.Snapshot.route_hops snap u v
        else Serve.Snapshot.distance snap u v
      in
      if value < 0 then
        Format.printf "  %s(%d,%d) = unreachable [gen %d]@." label u v
          (Serve.Snapshot.generation snap)
      else
        Format.printf "  %s(%d,%d) = %d [gen %d]@." label u v value
          (Serve.Snapshot.generation snap)
    in
    if pairs = [] then begin
      let rng = Util.Prng.create ~seed in
      for _ = 1 to count do
        answer (Util.Prng.int rng n) (Util.Prng.int rng n)
      done
    end
    else
      List.iter
        (fun pair ->
          match String.split_on_char ',' pair with
          | [ u; v ] -> (
              match (int_of_string_opt u, int_of_string_opt v) with
              | Some u, Some v -> answer u v
              | _ -> failwith (Printf.sprintf "bad query pair %S" pair))
          | _ -> failwith (Printf.sprintf "bad query pair %S (want U,V)" pair))
        pairs
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:"Answer ad-hoc distance/route queries from a saved snapshot.")
    Term.(const run $ snapshot_in $ pairs $ route $ count $ seed_arg)

(* ------------------------------------------------------------------ *)
(* sweep: resilience sweeps over scenario families, with shrinking *)

let sweep_cmd =
  let specs =
    Arg.(
      value
      & opt_all string []
      & info [ "spec" ] ~docv:"NAME|FILE"
          ~doc:
            "Scenario families to sweep: a built-in name (crash-storm, \
             bursty-loss, churn-heavy, mixed, restart-storm, tight-budget) \
             or a scenario spec file.  Repeatable; defaults to the four \
             fault staples.")
  in
  let samples =
    Arg.(
      value
      & opt int 25
      & info [ "samples" ] ~docv:"N"
          ~doc:"Scenarios sampled per family (sample k reseeds with seed+k).")
  in
  let out_dir =
    Arg.(
      value
      & opt string "sweep-out"
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"Where shrunk reproducer plan files are written.")
  in
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the aggregate report as JSON lines, one per family.")
  in
  let metrics_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Record sweep metrics (per-scenario/outcome run counts, \
             per-ingredient failure attribution, certifier outcomes) to FILE \
             as JSON lines.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay one plan file (e.g. a shrunk reproducer) instead of \
             sweeping; exits 3 when the plan still FAILs.")
  in
  let profile_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "Record the sweep's aggregate allocation/time profile (all \
             samples accumulate into one table) to FILE as JSON lines, as \
             in simulate --profile.")
  in
  let shrink_evals =
    Arg.(
      value
      & opt int 80
      & info [ "shrink-evals" ] ~docv:"N"
          ~doc:"Candidate-run budget per shrink.")
  in
  let arq_backoff =
    Arg.(
      value
      & opt float Distnet.Reliable.default_config.Distnet.Reliable.backoff
      & info [ "arq-backoff" ] ~docv:"F"
          ~doc:"ARQ retransmit-timer growth factor, as in simulate.")
  in
  let pp_outcome ppf (r : Scenario.Sweep.report) =
    match r.Scenario.Sweep.outcome with
    | Scenario.Sweep.Certified o ->
        Format.fprintf ppf "certified %a" Spanner.Skeleton_dist.pp_outcome o
    | Scenario.Sweep.Failed f ->
        Format.fprintf ppf "FAIL (%s)" (Scenario.Sweep.failure_tag f)
  in
  let run specs samples out_dir json_file metrics_file replay profile_file
      shrink_evals arq_backoff =
    if arq_backoff <> Distnet.Reliable.default_config.Distnet.Reliable.backoff
    then
      Distnet.Reliable.set_config
        { Distnet.Reliable.default_config with backoff = arq_backoff };
    match replay with
    | Some file -> (
        match Scenario.Compile.load file with
        | Error msg ->
            Format.eprintf "spanner_cli: %s@." msg;
            exit 1
        | Ok plan ->
            let r = Scenario.Sweep.run_plan plan in
            Format.printf "plan %s sample %d: %a@." plan.Scenario.Compile.scenario
              plan.Scenario.Compile.sample pp_outcome r;
            Format.printf
              "rounds %d, messages %d, words %d, spanner %d edges@."
              r.Scenario.Sweep.rounds r.Scenario.Sweep.messages
              r.Scenario.Sweep.words r.Scenario.Sweep.spanner_edges;
            exit
              (match r.Scenario.Sweep.outcome with
              | Scenario.Sweep.Failed _ -> 3
              | Scenario.Sweep.Certified _ -> 0))
    | None ->
        let resolve name =
          match Scenario.Spec.builtin name with
          | Some spec -> spec
          | None -> (
              match Scenario.Spec.load name with
              | Ok spec -> spec
              | Error msg ->
                  Format.eprintf "spanner_cli: %s@." msg;
                  exit 1)
        in
        let names =
          match specs with
          | [] -> [ "crash-storm"; "bursty-loss"; "churn-heavy"; "mixed" ]
          | names -> names
        in
        let families = List.map resolve names in
        let reg =
          if metrics_file <> None then Obs.Metrics.create ()
          else Obs.Metrics.disabled
        in
        let prof =
          if profile_file <> None then Obs.Prof.create () else Obs.Prof.disabled
        in
        Obs.Prof.set_current prof;
        let json_lines = ref [] in
        let unshrunk = ref 0 in
        List.iter
          (fun spec ->
            let agg = Scenario.Sweep.run ~metrics:reg spec ~samples in
            Format.printf "%a@." Scenario.Sweep.pp agg;
            (* Every FAIL gets shrunk to a minimal reproducer that
               fails the same way, written as a replayable plan. *)
            List.iter
              (fun (r : Scenario.Sweep.report) ->
                match r.Scenario.Sweep.outcome with
                | Scenario.Sweep.Certified _ -> ()
                | Scenario.Sweep.Failed f ->
                    let tag = Scenario.Sweep.failure_tag f in
                    let fails p =
                      match
                        (Scenario.Sweep.run_plan p).Scenario.Sweep.outcome
                      with
                      | Scenario.Sweep.Failed f' ->
                          Scenario.Sweep.failure_tag f' = tag
                      | Scenario.Sweep.Certified _ -> false
                    in
                    let plan = r.Scenario.Sweep.plan in
                    let shrunk =
                      Scenario.Shrink.shrink ~max_evals:shrink_evals ~fails
                        plan
                    in
                    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
                    let path =
                      Filename.concat out_dir
                        (Printf.sprintf "%s-s%d.plan"
                           plan.Scenario.Compile.scenario
                           plan.Scenario.Compile.sample)
                    in
                    Scenario.Compile.save shrunk.Scenario.Shrink.plan path;
                    Format.printf
                      "  reproducer: %s (%s, weight %d -> %d, %d evals, \
                       verified %b)@."
                      path tag
                      (Scenario.Shrink.weight plan)
                      (Scenario.Shrink.weight shrunk.Scenario.Shrink.plan)
                      shrunk.Scenario.Shrink.evals
                      shrunk.Scenario.Shrink.verified;
                    if not shrunk.Scenario.Shrink.verified then incr unshrunk)
              agg.Scenario.Sweep.failures;
            json_lines := Scenario.Sweep.to_json agg :: !json_lines)
          families;
        (match json_file with
        | None -> ()
        | Some file ->
            Out_channel.with_open_text file (fun oc ->
                List.iter
                  (fun l -> Out_channel.output_string oc (l ^ "\n"))
                  (List.rev !json_lines));
            Format.printf "report written to %s@." file);
        (match metrics_file with
        | None -> ()
        | Some file ->
            Obs.Metrics.save reg file;
            Format.printf "metrics written to %s (%d samples)@." file
              (List.length (Obs.Metrics.snapshot reg)));
        (match profile_file with
        | None -> ()
        | Some file ->
            let meta =
              Printf.sprintf
                {|{"kind":"prof_meta","algo":"sweep:%s","samples":%d}|}
                (String.concat "," names) samples
            in
            Obs.Prof.save ~extra:[ meta ] prof file;
            Format.printf "profile written to %s (%d rows, %d round samples)@."
              file
              (List.length (Obs.Prof.rows prof))
              (List.length (Obs.Prof.round_samples prof)));
        if !unshrunk > 0 then begin
          Format.eprintf
            "spanner_cli: %d failing scenario(s) could not be shrunk to a \
             verified reproducer@."
            !unshrunk;
          exit 1
        end
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sample probabilistic failure scenarios (crash storms, bursty loss, \
          heavy-tailed churn), run each through build + certify + serve, \
          aggregate a resilience report, and shrink any failure to a minimal \
          replayable plan file.")
    Term.(
      const run $ specs $ samples $ out_dir $ json_file $ metrics_file
      $ replay $ profile_file $ shrink_evals $ arq_backoff)

(* ------------------------------------------------------------------ *)
(* experiment *)

let experiment_cmd =
  let ids =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (E1..E25); all when omitted.")
  in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Full-size workloads.") in
  let run ids full seed =
    let quick = not full in
    let selected =
      match ids with
      | [] -> Experiments.Run.ids
      | ids -> ids
    in
    List.iter
      (fun id ->
        match Experiments.Run.by_id id with
        | Some f -> Experiments.Table.print Format.std_formatter (f ~quick ~seed ())
        | None ->
            Printf.eprintf "unknown experiment %s (have: %s)\n" id
              (String.concat ", " Experiments.Run.ids);
            exit 2)
      selected
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run the paper-reproduction experiment tables.")
    Term.(const run $ ids $ full $ seed_arg)

let main =
  Cmd.group
    (Cmd.info "spanner_cli" ~version:"1.0.0"
       ~doc:"Ultrasparse spanners and linear-size skeletons (Pettie, PODC 2008).")
    [ gen_cmd; build_cmd; eval_cmd; trace_cmd; oracle_cmd; simulate_cmd;
      sweep_cmd; serve_cmd; query_cmd; report_cmd; experiment_cmd ]

let () = exit (Cmd.eval main)
