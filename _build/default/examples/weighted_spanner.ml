(* Baswana-Sen on weighted graphs - the regime where the paper calls
   it "optimal in all respects, save for a factor of k in the spanner
   size" (SS1.2).

   Build (2k-1)-spanners of a weighted network and watch the
   size/stretch dial; weights make the problem genuinely harder than
   the unweighted case (lightest-edge selection matters).

     dune exec examples/weighted_spanner.exe *)

module Graph = Graphlib.Graph
module Gen = Graphlib.Gen
module Weighted = Graphlib.Weighted
module Edge_set = Graphlib.Edge_set
module Bsw = Baseline.Baswana_sen_weighted

let () =
  let seed = 5 in
  let rng = Util.Prng.create ~seed in
  (* A dense weighted network (a data-center-ish mesh): the
     O(k n^{1+1/k}) size bound only bites when the average degree
     exceeds ~n^{1/k}. *)
  let n = 500 in
  let g = Gen.gnm rng ~n ~m:25_000 in
  let g = Gen.ensure_connected rng g in
  let wg = Weighted.random rng g ~lo:1. ~hi:20. in
  Format.printf "weighted network: %a, weights in [1,20)@.@." Graph.pp_summary g;
  Format.printf "%3s  %6s  %8s  %12s  %7s@." "k" "size" "size/n" "max stretch" "2k-1";
  List.iter
    (fun k ->
      let r = Bsw.build ~k ~seed wg in
      let stretch =
        Weighted.max_stretch (Util.Prng.create ~seed:9) wg r.Bsw.spanner ~sources:10
      in
      Format.printf "%3d  %6d  %8.2f  %12.3f  %7d@." k
        (Edge_set.cardinal r.Bsw.spanner)
        (float_of_int (Edge_set.cardinal r.Bsw.spanner) /. float_of_int n)
        stretch
        ((2 * k) - 1))
    [ 1; 2; 3; 4; 5 ];
  Format.printf
    "@.measured stretch stays well under the 2k-1 guarantee while the spanner@.\
     thins out - the weighted tradeoff the unweighted skeleton cannot offer.@."
