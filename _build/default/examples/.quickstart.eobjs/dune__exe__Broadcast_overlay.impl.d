examples/broadcast_overlay.ml: Array Baseline Distnet Format Graphlib List Printf Spanner Util
