examples/approx_routing.ml: Array Baseline Format Graphlib List Spanner Util
