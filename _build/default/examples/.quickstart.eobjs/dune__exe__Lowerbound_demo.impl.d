examples/lowerbound_demo.ml: Array Format Graphlib List Lowerbound Util
