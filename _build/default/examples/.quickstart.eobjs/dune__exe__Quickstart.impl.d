examples/quickstart.ml: Distnet Format Graphlib List Spanner Util
