examples/broadcast_overlay.mli:
