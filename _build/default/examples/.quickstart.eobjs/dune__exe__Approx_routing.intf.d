examples/approx_routing.mli:
