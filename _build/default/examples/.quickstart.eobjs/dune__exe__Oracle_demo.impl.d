examples/oracle_demo.ml: Array Format Graphlib List Oracle Util
