examples/distortion_profile.mli:
