examples/weighted_spanner.mli:
