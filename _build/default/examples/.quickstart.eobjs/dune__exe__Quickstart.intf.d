examples/quickstart.mli:
