examples/oracle_demo.mli:
