examples/distortion_profile.ml: Array Float Format Graphlib List Spanner Stdlib String Util
