examples/weighted_spanner.ml: Baseline Format Graphlib List Util
