(* Quickstart: build the two spanners of the paper on a random graph
   and check what they cost and what they preserve.

     dune exec examples/quickstart.exe *)

module Graph = Graphlib.Graph
module Gen = Graphlib.Gen
module Edge_set = Graphlib.Edge_set
module Metrics = Graphlib.Metrics

let () =
  let seed = 42 in
  let rng = Util.Prng.create ~seed in

  (* A random 12-regular-ish communication network on 4000 nodes. *)
  let g = Gen.connected_gnp rng ~n:4000 ~p:0.003 in
  Format.printf "network: %a@.@." Graph.pp_summary g;

  (* 1. The linear-size skeleton of Section 2 (Theorem 2).  D controls
     density: expected size ~ D n / e + O(n log D). *)
  let skeleton = Spanner.Skeleton.build ~d:4 ~eps:0.5 ~seed g in
  let s = skeleton.Spanner.Skeleton.spanner in
  Format.printf "skeleton (D=4):   %5d edges  (%.2f per vertex)@."
    (Edge_set.cardinal s)
    (float_of_int (Edge_set.cardinal s) /. 4000.);

  (* 2. A Fibonacci spanner of Section 4 (Theorem 7): order trades
     size for distortion. *)
  let fib = Spanner.Fibonacci.build ~o:4 ~ell:2 ~seed g in
  let f = fib.Spanner.Fibonacci.spanner in
  Format.printf "fibonacci (o=4):  %5d edges  (%.2f per vertex)@.@."
    (Edge_set.cardinal f)
    (float_of_int (Edge_set.cardinal f) /. 4000.);

  (* How well do they preserve distances?  Sample BFS sources and
     compare shortest paths in the spanner against the original. *)
  List.iter
    (fun (name, spanner) ->
      let h = Edge_set.to_graph spanner in
      let rep = Metrics.sampled rng ~g ~h ~sources:10 in
      Format.printf "%-18s %a@." name Metrics.pp_report rep)
    [ ("skeleton:", s); ("fibonacci:", f) ];

  (* The same skeleton can be built by message passing (the paper's
     actual setting) - same spanner, now with network costs. *)
  let plan = Spanner.Plan.make ~n:4000 () in
  let sampling = Spanner.Sampling.draw (Util.Prng.create ~seed) ~n:4000 plan in
  let dist = Spanner.Skeleton_dist.build_with ~plan ~sampling g in
  Format.printf "@.distributed skeleton: %d edges in %a@."
    (Edge_set.cardinal dist.Spanner.Skeleton_dist.spanner)
    Distnet.Sim.pp_stats dist.Spanner.Skeleton_dist.stats
