(* The application the paper's conclusion points at: approximate
   distance oracles (Thorup-Zwick), built from the same sampling
   hierarchy as the spanners.

   A k-level oracle answers any distance query in O(k) hash lookups
   with stretch at most 2k-1, storing ~n^{1+1/k} entries instead of
   the n^2 of a full distance matrix.

     dune exec examples/oracle_demo.exe *)

module Graph = Graphlib.Graph
module Gen = Graphlib.Gen
module Bfs = Graphlib.Bfs
module Oracle = Oracle.Distance_oracle

let () =
  let seed = 21 in
  let rng = Util.Prng.create ~seed in
  let n = 4000 in
  let g = Gen.connected_gnp rng ~n ~p:0.003 in
  Format.printf "graph: %a@." Graph.pp_summary g;
  Format.printf "full distance matrix would hold %d entries@.@." (n * n);
  Format.printf "%3s  %10s  %9s  %11s  %11s  %5s@." "k" "space" "space/n"
    "avg stretch" "max stretch" "2k-1";
  List.iter
    (fun k ->
      let o = Oracle.build ~k ~seed g in
      let stretch = Util.Stats.create () in
      for _ = 1 to 400 do
        let u = Util.Prng.int rng n and v = Util.Prng.int rng n in
        if u <> v then begin
          let exact = (Bfs.distances g ~src:u).(v) in
          match Oracle.query o u v with
          | Some est when exact > 0 ->
              Util.Stats.add stretch (float_of_int est /. float_of_int exact)
          | _ -> ()
        end
      done;
      Format.printf "%3d  %10d  %9.1f  %11.3f  %11.2f  %5d@." k (Oracle.size o)
        (float_of_int (Oracle.size o) /. float_of_int n)
        (Util.Stats.mean stretch) (Util.Stats.max stretch)
        ((2 * k) - 1))
    [ 2; 3; 4; 5 ];
  Format.printf
    "@.same dial as the spanners: each extra level cuts space by ~n^{1/k(k+1)}@.\
     and loosens the worst-case answer by 2.@."
