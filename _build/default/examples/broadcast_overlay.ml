(* The paper's opening motivation: "many applications in distributed
   computation use a sparse substitute for the underlying
   communications network that retains the character of the original
   network."

   This example plays that out: broadcast a 16-word payload to every
   node, either over the raw network (floods every link) or over a
   skeleton overlay.  The skeleton cuts traffic by the density ratio
   while its bounded distortion keeps the delay within a small factor
   - a BFS tree is even cheaper but gives no such per-pair guarantee
   (run quickstart/E1 for its distortion).

     dune exec examples/broadcast_overlay.exe *)

module Graph = Graphlib.Graph
module Gen = Graphlib.Gen
module Edge_set = Graphlib.Edge_set

let broadcast name h ~root =
  let stats, reached = Distnet.Protocols.flood h ~root ~payload_words:16 in
  let covered = Array.for_all (fun b -> b) reached in
  Format.printf "%-22s edges=%6d  messages=%7d  words=%8d  delay=%3d rounds  %s@."
    name (Graph.m h) stats.Distnet.Sim.messages stats.Distnet.Sim.words
    stats.Distnet.Sim.rounds
    (if covered then "(all reached)" else "(INCOMPLETE)")

let () =
  let seed = 7 in
  let rng = Util.Prng.create ~seed in
  let g = Gen.connected_gnp rng ~n:5000 ~p:0.004 in
  Format.printf "network: %a@.@." Graph.pp_summary g;
  broadcast "raw network" g ~root:0;
  List.iter
    (fun d ->
      let sk = Spanner.Skeleton.build ~d ~seed g in
      broadcast
        (Printf.sprintf "skeleton D=%d" d)
        (Edge_set.to_graph sk.Spanner.Skeleton.spanner)
        ~root:0)
    [ 4; 8; 16 ];
  let bt = Baseline.Bfs_tree.build g in
  broadcast "bfs tree" (Edge_set.to_graph bt.Baseline.Bfs_tree.spanner) ~root:0;
  Format.printf
    "@.denser skeletons (larger D) trade traffic for delay - the paper's@.\
     sparseness/distortion dial, measured end to end.@."
