(* The signature behavior of Fibonacci spanners (Theorem 7): the
   multiplicative distortion *improves with distance*, in stages -
   from O(2^o) at distance 1, through O(log log n), to 3 + o(1), to
   1 + eps far away.

   This example prints the measured stretch profile on a king-move
   torus (dense enough to sparsify, wide enough to have long
   distances), alongside the analytic stage bound.

     dune exec examples/distortion_profile.exe *)

module Graph = Graphlib.Graph
module Gen = Graphlib.Gen
module Edge_set = Graphlib.Edge_set
module Metrics = Graphlib.Metrics

let () =
  let seed = 3 in
  let side = 60 in
  let g = Gen.king_torus ~width:side ~height:side in
  let o = 4 and ell = 2 in
  let r = Spanner.Fibonacci.build ~o ~ell ~seed g in
  let spanner = r.Spanner.Fibonacci.spanner in
  Format.printf "graph: %a@." Graph.pp_summary g;
  Format.printf "fibonacci spanner: o=%d ell=%d, %d edges (%.2f per vertex)@.@." o ell
    (Edge_set.cardinal spanner)
    (float_of_int (Edge_set.cardinal spanner) /. float_of_int (Graph.n g));
  Format.printf "levels: ";
  Array.iteri
    (fun i s -> Format.printf "|V_%d|=%d " i s.Spanner.Fibonacci.members)
    r.Spanner.Fibonacci.per_level;
  Format.printf "@.@.";
  let h = Edge_set.to_graph spanner in
  let rng = Util.Prng.create ~seed in
  let profile = Metrics.distance_profile rng ~g ~h ~sources:12 in
  Format.printf "%8s  %12s  %12s   (bar = deviation from 1.0)@." "distance"
    "mean stretch" "stage bound";
  List.iter
    (fun d ->
      match Metrics.stretch_at_distance profile d with
      | None -> ()
      | Some s ->
          let ell' =
            Stdlib.max 1
              (int_of_float (Float.ceil (float_of_int d ** (1. /. float_of_int o))))
          in
          let bound = Spanner.Bounds.fib_c ~ell:ell' o /. float_of_int d in
          let bar = String.make (int_of_float ((s -. 1.) *. 200.)) '#' in
          Format.printf "%8d  %12.3f  %12.1f   %s@." d s bound bar)
    [ 1; 2; 3; 4; 5; 6; 8; 10; 12; 16; 20; 24; 30 ];
  Format.printf
    "@.the profile is monotone: the farther apart two nodes are, the closer the@.\
     spanner's path is to optimal - Theorem 7's staged guarantee in action.@."
