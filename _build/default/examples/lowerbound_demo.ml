(* The Section 3 lower bound, live.

   G(tau, sigma, kappa) is a row of complete bipartite blocks joined
   by chains a tau-round algorithm cannot see around.  Every block
   edge looks identical within tau hops, so a size-limited algorithm
   must discard critical edges blindly - and each missing critical
   edge costs the long-haul pair +2.

     dune exec examples/lowerbound_demo.exe *)

module Graph = Graphlib.Graph
module Gadget = Graphlib.Gadget
module Bfs = Graphlib.Bfs

let () =
  let rng = Util.Prng.create ~seed:13 in
  let tau = 3 and sigma = 8 and kappa = 12 in
  let gd = Gadget.create ~tau ~sigma ~kappa in
  let g = gd.Gadget.graph in
  let u, v = Gadget.observers gd in
  let base = (Bfs.distances g ~src:u).(v) in
  Format.printf "G(tau=%d, sigma=%d, kappa=%d): %a@." tau sigma kappa Graph.pp_summary g;
  Format.printf "observers u=%d v=%d at distance %d (= (kappa-1)(tau+2))@.@." u v base;
  Format.printf "%6s  %10s  %14s  %12s@." "keep" "mean +dist" "2*(1-q)(k-1)" "exact rule";
  List.iter
    (fun keep ->
      let s = Lowerbound.Adversary.run rng gd ~keep ~trials:50 in
      Format.printf "%6.2f  %10.2f  %14.2f  %9d/50@." keep
        s.Lowerbound.Adversary.mean_additive s.Lowerbound.Adversary.predicted_additive
        s.Lowerbound.Adversary.replacement_exact)
    [ 0.9; 0.75; 0.5; 0.25 ];
  Format.printf
    "@.'exact rule' counts trials where the distortion equals exactly twice the@.\
     number of discarded critical edges - the replacement-path argument of@.\
     Theorem 3.  Sweeping tau (E6/E7 in bench/) shows the full time-distortion@.\
     tradeoff: more rounds, fewer blocks, less forced distortion.@."
