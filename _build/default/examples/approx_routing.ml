(* Approximate routing over a spanner - the application class the
   paper's conclusion singles out (compact routing tables with small
   stretch).

   Routing state per node is its distance-vector over *spanner* edges
   only.  We compare the routes a greedy distance-vector protocol
   produces on the spanner against true shortest paths, and against
   the memory a full routing table would need.

     dune exec examples/approx_routing.exe *)

module Graph = Graphlib.Graph
module Gen = Graphlib.Gen
module Bfs = Graphlib.Bfs
module Edge_set = Graphlib.Edge_set

(* Route from [src] to [dst] by next-hop descent on [dist_to_dst]
   restricted to spanner edges: each hop moves to any neighbor closer
   to the destination (in the spanner metric). *)
let route_length h ~dist_dst ~src =
  let rec walk v hops =
    if dist_dst.(v) = 0 then Some hops
    else if hops > 10 * Array.length dist_dst then None
    else begin
      let next = ref (-1) in
      Graph.iter_neighbors h v (fun w _ ->
          if dist_dst.(w) >= 0 && dist_dst.(w) < dist_dst.(v) then next := w);
      match !next with -1 -> None | w -> walk w (hops + 1)
    end
  in
  if dist_dst.(src) < 0 then None else walk src 0

let () =
  let seed = 11 in
  let rng = Util.Prng.create ~seed in
  let n = 3000 in
  let g = Gen.connected_gnp rng ~n ~p:0.004 in
  Format.printf "network: %a@.@." Graph.pp_summary g;
  List.iter
    (fun (name, spanner) ->
      let h = Edge_set.to_graph spanner in
      (* Per-destination state a router must keep is proportional to
         its spanner degree; the table below reports the total. *)
      let table_entries = 2 * Graph.m h in
      let stretch = Util.Stats.create () in
      let trials = 300 in
      let failures = ref 0 in
      for _ = 1 to trials do
        let src = Util.Prng.int rng n and dst = Util.Prng.int rng n in
        if src <> dst then begin
          let true_d = (Bfs.distances g ~src:dst).(src) in
          let dist_dst = Bfs.distances h ~src:dst in
          match route_length h ~dist_dst ~src with
          | Some hops when true_d > 0 ->
              Util.Stats.add stretch (float_of_int hops /. float_of_int true_d)
          | _ -> incr failures
        end
      done;
      Format.printf "%-18s state=%7d entries  route stretch: %s  failures=%d@." name
        table_entries (Util.Stats.summary stretch) !failures)
    [
      ("full graph", Edge_set.of_list g (List.init (Graph.m g) (fun e -> e)));
      ("skeleton D=4", (Spanner.Skeleton.build ~d:4 ~seed g).Spanner.Skeleton.spanner);
      ("skeleton D=16", (Spanner.Skeleton.build ~d:16 ~seed g).Spanner.Skeleton.spanner);
      ( "fibonacci o=4",
        (Spanner.Fibonacci.build ~o:4 ~ell:2 ~seed g).Spanner.Fibonacci.spanner );
      ( "baswana-sen k=3",
        (Baseline.Baswana_sen.build ~k:3 ~seed g).Baseline.Baswana_sen.spanner );
    ];
  Format.printf
    "@.spanner routing keeps a fraction of the state at a bounded stretch cost -@.\
     the tradeoff behind compact routing schemes [paper SS5].@."
