(* Tests for the Section 3 lower-bound harness. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module Gadget = Graphlib.Gadget
module Adversary = Lowerbound.Adversary

let rng () = Util.Prng.create ~seed:3

let test_keep_all_is_lossless () =
  let gd = Gadget.create ~tau:3 ~sigma:3 ~kappa:4 in
  let o = Adversary.run_once (rng ()) gd ~keep:1. in
  checki "no critical discarded" 0 o.Adversary.discarded_critical;
  checki "no distortion" 0 o.Adversary.additive;
  checkb "not disconnected" true (not o.Adversary.disconnected)

let test_keep_none_blocks () =
  (* Dropping every block edge separates the observers (chains alone
     do not connect consecutive blocks' column-0 vertices... they do
     connect vR to vL across blocks but vL to vR within a block only
     through block edges). *)
  let gd = Gadget.create ~tau:2 ~sigma:3 ~kappa:3 in
  let o = Adversary.run_once (rng ()) gd ~keep:0. in
  checkb "disconnected" true o.Adversary.disconnected

let test_replacement_path_rule () =
  (* With a generous keep fraction the additive distortion is exactly
     twice the number of missing critical edges, trial after trial. *)
  let gd = Gadget.create ~tau:2 ~sigma:6 ~kappa:8 in
  let s = Adversary.run (rng ()) gd ~keep:0.7 ~trials:40 in
  checkb
    (Printf.sprintf "exact in most trials (%d/40)" s.Adversary.replacement_exact)
    true
    (s.Adversary.replacement_exact >= 35);
  checkb "mean additive tracks prediction" true
    (Float.abs (s.Adversary.mean_additive -. s.Adversary.predicted_additive)
    <= Stdlib.max 2. (0.5 *. s.Adversary.predicted_additive))

let test_distortion_grows_with_discard () =
  let gd = Gadget.create ~tau:2 ~sigma:5 ~kappa:10 in
  let mean keep =
    (Adversary.run (rng ()) gd ~keep ~trials:30).Adversary.mean_additive
  in
  let a_light = mean 0.9 and a_heavy = mean 0.3 in
  checkb
    (Printf.sprintf "keep 0.3 (%.1f) hurts more than keep 0.9 (%.1f)" a_heavy a_light)
    true
    (a_heavy > a_light)

let test_theorem5_setup_shapes () =
  let s = Adversary.theorem5 ~n:4000 ~delta:0.1 ~beta:4. in
  let gd = s.Adversary.gadget in
  checki "kappa = 2 beta" 8 gd.Gadget.kappa;
  checkb "tau positive" true (s.Adversary.tau >= 1);
  (* The observers' base distance is (kappa-1)(tau+2). *)
  let u, v = Gadget.observers gd in
  let d = (Graphlib.Bfs.distances gd.Gadget.graph ~src:u).(v) in
  checki "base distance" ((gd.Gadget.kappa - 1) * (s.Adversary.tau + 2)) d

let test_theorem5_forces_beta () =
  (* The substance of Theorem 5: with the proof's parameters, the mean
     additive distortion exceeds beta. *)
  let beta = 4. in
  let s = Adversary.theorem5 ~n:4000 ~delta:0.1 ~beta in
  let sum =
    Adversary.run (rng ()) s.Adversary.gadget ~keep:s.Adversary.keep_fraction
      ~trials:30
  in
  checkb
    (Printf.sprintf "mean additive %.2f > beta %.1f" sum.Adversary.mean_additive beta)
    true
    (sum.Adversary.mean_additive > beta)

let test_theorem4_prediction_positive () =
  let s = Adversary.theorem4 ~n:3000 ~delta:0.15 ~zeta:0.5 ~tau:2 in
  let sum =
    Adversary.run (rng ()) s.Adversary.gadget ~keep:s.Adversary.keep_fraction
      ~trials:20
  in
  checkb "beta forced positive" true (sum.Adversary.mean_additive > 0.);
  (* Theorem 4's analytic prediction is a lower bound up to its -2
     slack; compare against the harness's own expectation. *)
  checkb "prediction matches harness" true
    (Float.abs (sum.Adversary.mean_additive -. sum.Adversary.predicted_additive)
    <= Stdlib.max 3. (0.5 *. sum.Adversary.predicted_additive))

let test_theorem6_setup_builds () =
  let s = Adversary.theorem6 ~n:2000 ~nu:0.5 ~xi:0.1 ~c:2. in
  checkb "gadget nonempty" true (Graphlib.Graph.n s.Adversary.gadget.Gadget.graph > 0)

let test_more_rounds_less_distortion () =
  (* The time-distortion tradeoff: larger tau (with the same keep
     fraction and vertex budget) means fewer blocks, hence less
     additive distortion — the shape of all three theorems. *)
  let mean tau =
    let sigma = 4 and kappa = Stdlib.max 2 (24 / (tau + 2)) in
    let gd = Gadget.create ~tau ~sigma ~kappa in
    (Adversary.run (rng ()) gd ~keep:0.5 ~trials:30).Adversary.mean_additive
  in
  checkb "tau=1 worse than tau=6" true (mean 1 > mean 6)

let suite =
  [
    ( "lowerbound.adversary",
      [
        Alcotest.test_case "keep-all lossless" `Quick test_keep_all_is_lossless;
        Alcotest.test_case "keep-none disconnects" `Quick test_keep_none_blocks;
        Alcotest.test_case "replacement-path rule" `Quick test_replacement_path_rule;
        Alcotest.test_case "distortion grows with discard" `Quick
          test_distortion_grows_with_discard;
        Alcotest.test_case "theorem 5 setup" `Quick test_theorem5_setup_shapes;
        Alcotest.test_case "theorem 5 forces beta" `Quick test_theorem5_forces_beta;
        Alcotest.test_case "theorem 4 prediction" `Quick test_theorem4_prediction_positive;
        Alcotest.test_case "theorem 6 setup" `Quick test_theorem6_setup_builds;
        Alcotest.test_case "more rounds, less distortion" `Quick
          test_more_rounds_less_distortion;
      ] );
  ]
