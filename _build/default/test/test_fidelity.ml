(* Deeper paper-fidelity tests: Lemma 2's cluster-radius recurrence on
   live skeleton traces, and the tau-neighborhood symmetry of the
   lower-bound gadget. *)

let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Bfs = Graphlib.Bfs
module Edge_set = Graphlib.Edge_set
module Gadget = Graphlib.Gadget

(* ------------------------------------------------------------------ *)
(* Lemma 2(2): r_{i,j} = j (2 r_i + 1) + r_i. *)

(* Radius of one cluster inside the member-induced spanner subgraph. *)
let cluster_radius h ~members ~center =
  let member = Hashtbl.create (List.length members) in
  List.iter (fun v -> Hashtbl.replace member v ()) members;
  let dist = Hashtbl.create (List.length members) in
  let q = Queue.create () in
  Hashtbl.replace dist center 0;
  Queue.add center q;
  let worst = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let du = Hashtbl.find dist u in
    if du > !worst then worst := du;
    G.iter_neighbors h u (fun v _ ->
        if Hashtbl.mem member v && not (Hashtbl.mem dist v) then begin
          Hashtbl.replace dist v (du + 1);
          Queue.add v q
        end)
  done;
  (* every member must be reachable inside the cluster - the spanning
     tree invariant *)
  List.iter
    (fun v ->
      checkb
        (Printf.sprintf "member %d connected to center %d inside cluster" v center)
        true (Hashtbl.mem dist v))
    members;
  !worst

let test_lemma2_radius_recurrence () =
  let n = 400 in
  let g = Gen.connected_gnp (Util.Prng.create ~seed:5) ~n ~p:0.04 in
  let plan = Spanner.Plan.make ~n () in
  let sampling = Spanner.Sampling.draw (Util.Prng.create ~seed:6) ~n plan in
  let r = Spanner.Skeleton.build_with ~trace:true ~plan ~sampling g in
  let h = Edge_set.to_graph r.Spanner.Skeleton.spanner in
  (* Walk the trace, maintaining the analytic radius recurrence. *)
  let round_start_radius = ref 0 in
  let current_round = ref 0 in
  let last_bound = ref 0 in
  List.iter
    (fun (s : Spanner.Skeleton.snapshot) ->
      let call = s.Spanner.Skeleton.call in
      if call.Spanner.Plan.round > !current_round then begin
        (* contraction: the new contracted vertices inherit the last
           clustering's radius *)
        round_start_radius := !last_bound;
        current_round := call.Spanner.Plan.round
      end;
      let rprev = !round_start_radius in
      let j = call.Spanner.Plan.iter + 1 in
      let bound = (j * ((2 * rprev) + 1)) + rprev in
      last_bound := bound;
      (* group members by cluster center *)
      let groups : (int, int list) Hashtbl.t = Hashtbl.create 64 in
      Array.iteri
        (fun v c ->
          if c >= 0 then
            Hashtbl.replace groups c
              (v :: Option.value ~default:[] (Hashtbl.find_opt groups c)))
        s.Spanner.Skeleton.assignment;
      Hashtbl.iter
        (fun center members ->
          let radius = cluster_radius h ~members ~center in
          checkb
            (Printf.sprintf
               "call %d (round %d iter %d): cluster %d radius %d <= Lemma-2 bound %d"
               call.Spanner.Plan.index call.Spanner.Plan.round call.Spanner.Plan.iter
               center radius bound)
            true (radius <= bound))
        groups)
    r.Spanner.Skeleton.snapshots

(* ------------------------------------------------------------------ *)
(* Gadget symmetry: every block vertex sees the same (unlabeled)
   tau-neighborhood — the pillar of the Section 3 indistinguishability
   argument.  We compare BFS level-size signatures up to depth tau. *)

let neighborhood_signature g v ~depth =
  let dist = Bfs.distances g ~src:v in
  let sig_ = Array.make (depth + 1) 0 in
  Array.iter
    (fun d -> if d >= 0 && d <= depth then sig_.(d) <- sig_.(d) + 1)
    dist;
  Array.to_list sig_

let test_gadget_neighborhood_symmetry () =
  List.iter
    (fun (tau, sigma, kappa) ->
      let gd = Gadget.create ~tau ~sigma ~kappa in
      let g = gd.Gadget.graph in
      let reference =
        neighborhood_signature g gd.Gadget.left.(0).(0) ~depth:tau
      in
      Array.iteri
        (fun i _ ->
          for j = 0 to sigma - 1 do
            List.iter
              (fun v ->
                Alcotest.check
                  (Alcotest.list Alcotest.int)
                  (Printf.sprintf "block %d col %d vertex %d signature" i j v)
                  reference
                  (neighborhood_signature g v ~depth:tau))
              [ gd.Gadget.left.(i).(j); gd.Gadget.right.(i).(j) ]
          done)
        gd.Gadget.left)
    [ (2, 3, 3); (3, 4, 4); (4, 2, 5) ]

let test_gadget_block_edges_same_degree_profile () =
  (* Stronger form: the two endpoints of every block edge have the same
     degree (sigma + 1). *)
  let gd = Gadget.create ~tau:3 ~sigma:5 ~kappa:4 in
  let g = gd.Gadget.graph in
  List.iter
    (fun e ->
      let u, v = G.edge_endpoints g e in
      Alcotest.check Alcotest.int "block endpoint degree" (5 + 1) (G.degree g u);
      Alcotest.check Alcotest.int "block endpoint degree" (5 + 1) (G.degree g v))
    gd.Gadget.block_edges

let suite =
  [
    ( "fidelity.lemma2",
      [ Alcotest.test_case "radius recurrence on trace" `Slow test_lemma2_radius_recurrence ]
    );
    ( "fidelity.gadget_symmetry",
      [
        Alcotest.test_case "tau-neighborhood signatures" `Quick
          test_gadget_neighborhood_symmetry;
        Alcotest.test_case "block degree profile" `Quick
          test_gadget_block_edges_same_degree_profile;
      ] );
  ]
