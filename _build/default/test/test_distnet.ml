(* Tests for the synchronous network simulator. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Bfs = Graphlib.Bfs
module Sim = Distnet.Sim
module Protocols = Distnet.Protocols

let rng () = Util.Prng.create ~seed:91

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_send_requires_link () =
  let g = Gen.path 4 in
  let t = Sim.create g in
  Alcotest.check_raises "non-neighbor rejected"
    (Invalid_argument "Sim.send: 0 -> 2 is not a network link") (fun () ->
      Sim.send t ~src:0 ~dst:2 ~words:1 ())

let test_send_one_per_edge_per_round () =
  let g = Gen.path 4 in
  let t = Sim.create g in
  Sim.send t ~src:0 ~dst:1 ~words:1 ();
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Sim.send: 0 already sent to 1 this round") (fun () ->
      Sim.send t ~src:0 ~dst:1 ~words:1 ());
  (* After the round advances, sending again is allowed. *)
  ignore (Sim.step t (fun ~dst:_ ~src:_ () -> ()));
  Sim.send t ~src:0 ~dst:1 ~words:1 ();
  ignore (Sim.step t (fun ~dst:_ ~src:_ () -> ()));
  checki "rounds" 2 (Sim.stats t).Sim.rounds

let test_word_accounting () =
  let g = Gen.path 3 in
  let t = Sim.create g in
  Sim.send t ~src:0 ~dst:1 ~words:3 ();
  Sim.send t ~src:2 ~dst:1 ~words:5 ();
  ignore (Sim.step t (fun ~dst:_ ~src:_ () -> ()));
  let s = Sim.stats t in
  checki "messages" 2 s.Sim.messages;
  checki "words" 8 s.Sim.words;
  checki "max message" 5 s.Sim.max_message_words

let test_positive_words_required () =
  let g = Gen.path 2 in
  let t = Sim.create g in
  Alcotest.check_raises "zero-word message rejected"
    (Invalid_argument "Sim.send: words must be >= 1") (fun () ->
      Sim.send t ~src:0 ~dst:1 ~words:0 ())

let test_quiescence () =
  let g = Gen.path 3 in
  let t = Sim.create g in
  checkb "initially quiescent" true (Sim.quiescent t);
  Sim.send t ~src:0 ~dst:1 ~words:1 ();
  checkb "pending" false (Sim.quiescent t);
  Sim.run_until_quiescent t (fun ~dst:_ ~src:_ () -> ());
  checkb "drained" true (Sim.quiescent t)

let test_relay_chain_rounds () =
  (* Relaying a token down a path of length k takes k rounds. *)
  let k = 7 in
  let g = Gen.path (k + 1) in
  let t = Sim.create g in
  Sim.send t ~src:0 ~dst:1 ~words:1 1;
  Sim.run_until_quiescent t (fun ~dst ~src:_ hop ->
      if dst < k then Sim.send t ~src:dst ~dst:(dst + 1) ~words:1 (hop + 1));
  checki "rounds = path length" k (Sim.stats t).Sim.rounds

let test_idle_rounds () =
  let g = Gen.path 2 in
  let t = Sim.create g in
  Sim.add_idle_rounds t 5;
  checki "idle accounted" 5 (Sim.stats t).Sim.rounds

(* ------------------------------------------------------------------ *)
(* BFS protocol *)

let test_dist_bfs_matches_sequential () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:150 ~p:0.03 in
  let _, dist = Protocols.bfs g ~root:0 in
  let expected = Bfs.distances g ~src:0 in
  Alcotest.check (Alcotest.array Alcotest.int) "distances agree" expected dist

let test_dist_bfs_rounds () =
  let g = Gen.path 10 in
  let stats, dist = Protocols.bfs g ~root:0 in
  checki "distance to end" 9 dist.(9);
  (* Layered BFS needs ecc rounds of sends + 1 drain round. *)
  checkb "rounds close to eccentricity" true
    (stats.Sim.rounds >= 9 && stats.Sim.rounds <= 11);
  checki "unit messages" 1 stats.Sim.max_message_words

let test_dist_bfs_disconnected () =
  let g = G.of_edges ~n:5 [ (0, 1); (2, 3) ] in
  let _, dist = Protocols.bfs g ~root:0 in
  checki "reached" 1 dist.(1);
  checki "unreachable" (-1) dist.(2);
  checki "isolated" (-1) dist.(4)

(* ------------------------------------------------------------------ *)
(* Flooding *)

let test_flood_reaches_component () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:100 ~p:0.04 in
  let stats, reached = Protocols.flood g ~root:3 ~payload_words:2 in
  Array.iter (fun b -> checkb "all reached" true b) reached;
  checkb "messages at least n-1" true (stats.Sim.messages >= G.n g - 1);
  checki "payload width respected" 2 stats.Sim.max_message_words

let test_flood_message_count_on_tree () =
  (* On a path, flooding sends exactly one message per edge direction
     away from the root plus the initial edge. *)
  let g = Gen.path 6 in
  let stats, _ = Protocols.flood g ~root:0 ~payload_words:1 in
  checki "one message per hop" 5 stats.Sim.messages

(* ------------------------------------------------------------------ *)
(* Node-program runner *)

module Echo = struct
  (* Each node sends its id to all neighbors in round 1 and records the
     max id it ever hears; silence afterwards. *)
  type state = { me : int; best : int }
  type message = int

  let message_words _ = 1

  let init g v =
    let out =
      Graphlib.Graph.fold_neighbors g v ~init:[] ~f:(fun acc w _ -> (w, v) :: acc)
    in
    ({ me = v; best = v }, out)

  let receive _g ~round:_ _v st inbox =
    let best = List.fold_left (fun acc (_, x) -> Stdlib.max acc x) st.best inbox in
    ({ st with best }, [])
end

module Echo_run = Sim.Run (Echo)

let test_runner_echo () =
  let g = Gen.cycle 8 in
  let stats, states = Echo_run.run g in
  Array.iteri
    (fun v st ->
      let expected =
        Graphlib.Graph.fold_neighbors g v ~init:v ~f:(fun acc w _ -> Stdlib.max acc w)
      in
      checki "max neighbor id" expected st.Echo.best)
    states;
  checkb "bounded rounds" true (stats.Sim.rounds <= 2)

module Max_flood = struct
  (* Classic max-id flooding: every node forwards improvements; at
     quiescence every node knows the global max in its component. *)
  type state = int
  type message = int

  let message_words _ = 1

  let init g v =
    let out =
      Graphlib.Graph.fold_neighbors g v ~init:[] ~f:(fun acc w _ -> (w, v) :: acc)
    in
    (v, out)

  let receive g ~round:_ v st inbox =
    let best = List.fold_left (fun acc (_, x) -> Stdlib.max acc x) st inbox in
    if best > st then
      ( best,
        Graphlib.Graph.fold_neighbors g v ~init:[] ~f:(fun acc w _ ->
            (w, best) :: acc) )
    else (st, [])
end

module Max_run = Sim.Run (Max_flood)

let test_runner_max_flood () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:60 ~p:0.06 in
  let _, states = Max_run.run g in
  Array.iter (fun st -> checki "everyone learns max" (G.n g - 1) st) states

let prop_dist_bfs_equals_sequential =
  QCheck.Test.make ~name:"distributed BFS = sequential BFS" ~count:30
    QCheck.(int_range 2 60)
    (fun n ->
      let r = Util.Prng.create ~seed:n in
      let g = Gen.gnp r ~n ~p:(3. /. float_of_int n) in
      let _, dist = Protocols.bfs g ~root:0 in
      dist = Bfs.distances g ~src:0)

let suite =
  [
    ( "distnet.engine",
      [
        Alcotest.test_case "send requires link" `Quick test_send_requires_link;
        Alcotest.test_case "one per edge per round" `Quick test_send_one_per_edge_per_round;
        Alcotest.test_case "word accounting" `Quick test_word_accounting;
        Alcotest.test_case "positive words" `Quick test_positive_words_required;
        Alcotest.test_case "quiescence" `Quick test_quiescence;
        Alcotest.test_case "relay chain rounds" `Quick test_relay_chain_rounds;
        Alcotest.test_case "idle rounds" `Quick test_idle_rounds;
      ] );
    ( "distnet.bfs",
      [
        Alcotest.test_case "matches sequential" `Quick test_dist_bfs_matches_sequential;
        Alcotest.test_case "rounds ~ eccentricity" `Quick test_dist_bfs_rounds;
        Alcotest.test_case "disconnected" `Quick test_dist_bfs_disconnected;
        QCheck_alcotest.to_alcotest prop_dist_bfs_equals_sequential;
      ] );
    ( "distnet.flood",
      [
        Alcotest.test_case "reaches component" `Quick test_flood_reaches_component;
        Alcotest.test_case "tree message count" `Quick test_flood_message_count_on_tree;
      ] );
    ( "distnet.runner",
      [
        Alcotest.test_case "echo" `Quick test_runner_echo;
        Alcotest.test_case "max flood" `Quick test_runner_max_flood;
      ] );
  ]
