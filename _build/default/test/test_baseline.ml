(* Tests for the baseline spanner algorithms. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Edge_set = Graphlib.Edge_set
module Metrics = Graphlib.Metrics
module Girth = Graphlib.Girth
module Baswana_sen = Baseline.Baswana_sen
module Baswana_sen_dist = Baseline.Baswana_sen_dist
module Greedy = Baseline.Greedy
module Neighborhood_dist = Baseline.Neighborhood_dist
module Bfs_tree = Baseline.Bfs_tree

let rng () = Util.Prng.create ~seed:2007

let exact_max_stretch g s =
  let rep = Metrics.exact ~g ~h:(Edge_set.to_graph s) in
  checki "nothing disconnected" 0 rep.Metrics.disconnected;
  rep.Metrics.max_mult

(* ------------------------------------------------------------------ *)
(* Baswana–Sen *)

let test_bs_stretch_bound () =
  List.iter
    (fun k ->
      let g = Gen.connected_gnp (rng ()) ~n:150 ~p:0.06 in
      let r = Baswana_sen.build ~k ~seed:3 g in
      let stretch = exact_max_stretch g r.Baswana_sen.spanner in
      checkb
        (Printf.sprintf "k=%d: stretch %.1f <= %d" k stretch ((2 * k) - 1))
        true
        (stretch <= float_of_int ((2 * k) - 1)))
    [ 2; 3; 4 ]

let test_bs_size_reasonable () =
  (* E|S| = O(k n^(1+1/k}); allow a factor 4 over k*n^(1+1/k). *)
  let n = 2000 in
  let g = Gen.connected_gnp (rng ()) ~n ~p:0.015 in
  List.iter
    (fun k ->
      let r = Baswana_sen.build ~k ~seed:5 g in
      let size = float_of_int (Edge_set.cardinal r.Baswana_sen.spanner) in
      let bound =
        4. *. float_of_int k *. (float_of_int n ** (1. +. (1. /. float_of_int k)))
      in
      checkb (Printf.sprintf "k=%d size %.0f <= %.0f" k size bound) true (size <= bound))
    [ 2; 3 ]

let test_bs_larger_k_sparser () =
  let g = Gen.connected_gnp (rng ()) ~n:2500 ~p:0.012 in
  let size k = Edge_set.cardinal (Baswana_sen.build ~k ~seed:9 g).Baswana_sen.spanner in
  checkb "k=4 sparser than k=2" true (size 4 < size 2)

let test_bs_phases_reported () =
  let g = Gen.connected_gnp (rng ()) ~n:300 ~p:0.04 in
  let r = Baswana_sen.build ~k:3 ~seed:1 g in
  checki "k phases" 3 (List.length r.Baswana_sen.phases);
  (match r.Baswana_sen.phases with
  | (c0, _) :: _ -> checki "starts from singletons" 300 c0
  | [] -> Alcotest.fail "no phases")

let test_bs_tape_bounds () =
  let tape = Baswana_sen.draw_tape (rng ()) ~n:1000 ~k:4 in
  Array.iter (fun fu -> checkb "tape in [0, k-1]" true (fu >= 0 && fu <= 3)) tape

let test_bs_dist_equals_sequential () =
  List.iter
    (fun (seed, n, p, k) ->
      let g = Gen.connected_gnp (Util.Prng.create ~seed) ~n ~p in
      let tape = Baswana_sen.draw_tape (Util.Prng.create ~seed:(seed * 2)) ~n ~k in
      let seq = Baswana_sen.build_with ~k ~tape g in
      let dist = Baswana_sen_dist.build_with ~k ~tape g in
      checki "same size"
        (Edge_set.cardinal seq.Baswana_sen.spanner)
        (Edge_set.cardinal dist.Baswana_sen_dist.spanner);
      Edge_set.iter seq.Baswana_sen.spanner (fun e ->
          checkb "same edges" true (Edge_set.mem dist.Baswana_sen_dist.spanner e)))
    [ (1, 200, 0.05, 2); (2, 300, 0.03, 3); (3, 250, 0.04, 4) ]

let test_bs_dist_round_count () =
  (* O(k) rounds: two per phase. *)
  let g = Gen.connected_gnp (rng ()) ~n:400 ~p:0.03 in
  let r = Baswana_sen_dist.build ~k:5 ~seed:4 g in
  checki "2k rounds" 10 r.Baswana_sen_dist.stats.Distnet.Sim.rounds;
  checki "2-word messages" 2 r.Baswana_sen_dist.stats.Distnet.Sim.max_message_words

(* ------------------------------------------------------------------ *)
(* Greedy *)

let test_greedy_stretch_exact_bound () =
  List.iter
    (fun k ->
      let g = Gen.connected_gnp (rng ()) ~n:130 ~p:0.08 in
      let r = Greedy.build ~k g in
      let stretch = exact_max_stretch g r.Greedy.spanner in
      checkb
        (Printf.sprintf "k=%d stretch %.1f <= %d" k stretch ((2 * k) - 1))
        true
        (stretch <= float_of_int ((2 * k) - 1)))
    [ 1; 2; 3; 5 ]

let test_greedy_girth () =
  List.iter
    (fun k ->
      let g = Gen.connected_gnp (rng ()) ~n:200 ~p:0.06 in
      let r = Greedy.build ~k g in
      checkb
        (Printf.sprintf "girth > 2k for k=%d" k)
        true
        (Girth.has_girth_gt (Edge_set.to_graph r.Greedy.spanner) (2 * k)))
    [ 2; 3; 4 ]

let test_greedy_k1_spanning_forest_plus () =
  (* k = 1: keep edge iff endpoints not adjacent already — i.e., all
     of a simple graph's edges survive?  No: limit 1 means an edge is
     dropped iff the endpoints are already at distance <= 1, which
     never happens in a simple graph scanned once... except parallel
     paths don't matter.  So k=1 keeps everything. *)
  let g = Gen.connected_gnp (rng ()) ~n:100 ~p:0.05 in
  let r = Greedy.build ~k:1 g in
  checki "k=1 keeps all edges" (G.m g) (Edge_set.cardinal r.Greedy.spanner)

let test_greedy_complete_graph () =
  (* Greedy with k=2 on K_n: girth > 4 and stretch 3. *)
  let g = Gen.complete 40 in
  let r = Greedy.build ~k:2 g in
  checkb "sparse" true (Edge_set.cardinal r.Greedy.spanner < 300);
  checkb "girth > 4" true (Girth.has_girth_gt (Edge_set.to_graph r.Greedy.spanner) 4)

let test_greedy_skeleton_linear () =
  (* k = ceil(log n): size < n * (1 + o(1)); concretely < 1.2 n. *)
  let g = Gen.connected_gnp (rng ()) ~n:1500 ~p:0.02 in
  let r = Greedy.skeleton g in
  checkb
    (Printf.sprintf "linear size (%d)" (Edge_set.cardinal r.Greedy.spanner))
    true
    (float_of_int (Edge_set.cardinal r.Greedy.spanner) < 1.2 *. 1500.)

let test_greedy_counts_queries () =
  let g = Gen.cycle 30 in
  let r = Greedy.build ~k:2 g in
  checki "one query per edge" (G.m g) r.Greedy.distance_queries

(* ------------------------------------------------------------------ *)
(* Neighborhood-collect *)

let test_nbhd_girth_and_connectivity () =
  let g = Gen.connected_gnp (rng ()) ~n:250 ~p:0.05 in
  let r = Neighborhood_dist.build ~k:3 g in
  let h = Edge_set.to_graph r.Neighborhood_dist.spanner in
  checkb "connected" true (G.is_connected h);
  checkb "girth > 6" true (Girth.has_girth_gt h 6)

let test_nbhd_rounds_equal_k () =
  let g = Gen.connected_gnp (rng ()) ~n:200 ~p:0.05 in
  let r = Neighborhood_dist.build ~k:4 g in
  checki "k rounds" 4 r.Neighborhood_dist.stats.Distnet.Sim.rounds

let test_nbhd_message_blowup () =
  (* The whole point: messages carry neighborhoods, so their length
     dwarfs the CONGEST baselines'. *)
  let g = Gen.connected_gnp (rng ()) ~n:300 ~p:0.05 in
  let r = Neighborhood_dist.build ~k:3 g in
  let bs = Baswana_sen_dist.build ~k:3 ~seed:2 g in
  checkb
    (Printf.sprintf "neighborhood messages (%d words) >> Baswana-Sen (%d)"
       r.Neighborhood_dist.stats.Distnet.Sim.max_message_words
       bs.Baswana_sen_dist.stats.Distnet.Sim.max_message_words)
    true
    (r.Neighborhood_dist.stats.Distnet.Sim.max_message_words
    > 50 * bs.Baswana_sen_dist.stats.Distnet.Sim.max_message_words)

let test_nbhd_preserves_components () =
  let g = Gen.gnp (rng ()) ~n:200 ~p:0.008 in
  let r = Neighborhood_dist.build ~k:3 g in
  let _, cg = G.components g in
  let _, ch = G.components (Edge_set.to_graph r.Neighborhood_dist.spanner) in
  checki "components preserved" cg ch

(* ------------------------------------------------------------------ *)
(* BFS tree *)

let test_bfs_tree_size () =
  let g = Gen.connected_gnp (rng ()) ~n:500 ~p:0.02 in
  let r = Bfs_tree.build g in
  checki "n-1 edges" 499 (Edge_set.cardinal r.Bfs_tree.spanner);
  checki "one root" 1 (List.length r.Bfs_tree.roots);
  checkb "connected" true (G.is_connected (Edge_set.to_graph r.Bfs_tree.spanner))

let test_bfs_tree_disconnected () =
  let g = G.of_edges ~n:7 [ (0, 1); (1, 2); (3, 4); (5, 6) ] in
  let r = Bfs_tree.build g in
  checki "forest edges" 4 (Edge_set.cardinal r.Bfs_tree.spanner);
  checki "roots per component" 3 (List.length r.Bfs_tree.roots)

let prop_greedy_stretch =
  QCheck.Test.make ~name:"greedy: stretch <= 2k-1 (random graphs)" ~count:15
    QCheck.(pair (int_range 20 80) (int_range 2 4))
    (fun (n, k) ->
      let g = Gen.connected_gnp (Util.Prng.create ~seed:(n * k)) ~n ~p:0.1 in
      let r = Greedy.build ~k g in
      let rep = Metrics.exact ~g ~h:(Edge_set.to_graph r.Greedy.spanner) in
      rep.Metrics.disconnected = 0
      && rep.Metrics.max_mult <= float_of_int ((2 * k) - 1) +. 1e-9)

let prop_bs_dist_equals_seq =
  QCheck.Test.make ~name:"baswana-sen: distributed = sequential" ~count:15
    QCheck.(pair (int_range 20 120) (int_range 2 4))
    (fun (n, k) ->
      let g = Gen.gnp (Util.Prng.create ~seed:(n + k)) ~n ~p:(4. /. float_of_int n) in
      let tape = Baswana_sen.draw_tape (Util.Prng.create ~seed:(n * k)) ~n ~k in
      let seq = Baswana_sen.build_with ~k ~tape g in
      let dist = Baswana_sen_dist.build_with ~k ~tape g in
      let ok = ref (Edge_set.cardinal seq.Baswana_sen.spanner
                    = Edge_set.cardinal dist.Baswana_sen_dist.spanner) in
      Edge_set.iter seq.Baswana_sen.spanner (fun e ->
          if not (Edge_set.mem dist.Baswana_sen_dist.spanner e) then ok := false);
      !ok)

let suite =
  [
    ( "baseline.baswana_sen",
      [
        Alcotest.test_case "stretch <= 2k-1" `Quick test_bs_stretch_bound;
        Alcotest.test_case "size O(k n^{1+1/k})" `Quick test_bs_size_reasonable;
        Alcotest.test_case "larger k sparser" `Quick test_bs_larger_k_sparser;
        Alcotest.test_case "phases reported" `Quick test_bs_phases_reported;
        Alcotest.test_case "tape bounds" `Quick test_bs_tape_bounds;
        Alcotest.test_case "distributed = sequential" `Quick test_bs_dist_equals_sequential;
        Alcotest.test_case "O(k) rounds, 2-word msgs" `Quick test_bs_dist_round_count;
        QCheck_alcotest.to_alcotest prop_bs_dist_equals_seq;
      ] );
    ( "baseline.greedy",
      [
        Alcotest.test_case "stretch <= 2k-1" `Quick test_greedy_stretch_exact_bound;
        Alcotest.test_case "girth > 2k" `Quick test_greedy_girth;
        Alcotest.test_case "k=1 keeps all" `Quick test_greedy_k1_spanning_forest_plus;
        Alcotest.test_case "complete graph" `Quick test_greedy_complete_graph;
        Alcotest.test_case "skeleton linear size" `Quick test_greedy_skeleton_linear;
        Alcotest.test_case "query counting" `Quick test_greedy_counts_queries;
        QCheck_alcotest.to_alcotest prop_greedy_stretch;
      ] );
    ( "baseline.neighborhood",
      [
        Alcotest.test_case "girth & connectivity" `Quick test_nbhd_girth_and_connectivity;
        Alcotest.test_case "k rounds" `Quick test_nbhd_rounds_equal_k;
        Alcotest.test_case "message blowup" `Quick test_nbhd_message_blowup;
        Alcotest.test_case "components preserved" `Quick test_nbhd_preserves_components;
      ] );
    ( "baseline.bfs_tree",
      [
        Alcotest.test_case "size & connectivity" `Quick test_bfs_tree_size;
        Alcotest.test_case "disconnected" `Quick test_bfs_tree_disconnected;
      ] );
  ]
