(* Tests for the weighted substrate and the weighted Baswana–Sen
   spanner. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Bfs = Graphlib.Bfs
module Weighted = Graphlib.Weighted
module Edge_set = Graphlib.Edge_set
module Bsw = Baseline.Baswana_sen_weighted

let rng () = Util.Prng.create ~seed:1202

(* ------------------------------------------------------------------ *)
(* Fheap *)

let test_fheap_sorts () =
  let h = Util.Fheap.create () in
  let r = rng () in
  let keys = Array.init 150 (fun _ -> Util.Prng.float r 100.) in
  Array.iter (fun k -> Util.Fheap.push h ~key:k k) keys;
  let sorted = Array.copy keys in
  Array.sort compare sorted;
  Array.iter
    (fun expected ->
      match Util.Fheap.pop_min h with
      | Some (k, _) -> checkf "order" expected k
      | None -> Alcotest.fail "premature empty")
    sorted;
  checkb "empty" true (Util.Fheap.is_empty h)

(* ------------------------------------------------------------------ *)
(* Weighted graphs / Dijkstra *)

let test_unit_weights_match_bfs () =
  let g = Gen.connected_gnp (rng ()) ~n:200 ~p:0.04 in
  let wg = Weighted.unit g in
  let dd = Weighted.distances wg ~src:5 in
  let bd = Bfs.distances g ~src:5 in
  Array.iteri
    (fun v d ->
      if d >= 0 then checkf "unit dijkstra = bfs" (float_of_int d) dd.(v)
      else checkb "unreachable" true (dd.(v) = infinity))
    bd

let test_dijkstra_triangle () =
  (* Triangle with a heavy direct edge: shortest path detours. *)
  let g = G.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  let weights = Array.make 3 0. in
  let set a b x =
    match G.find_edge g a b with
    | Some e -> weights.(e) <- x
    | None -> Alcotest.fail "edge"
  in
  set 0 1 1.;
  set 1 2 1.;
  set 0 2 5.;
  let wg = Weighted.of_graph g ~weights in
  let d = Weighted.distances wg ~src:0 in
  checkf "detour wins" 2. d.(2)

let test_weights_validated () =
  let g = Gen.path 3 in
  Alcotest.check_raises "nonpositive rejected"
    (Invalid_argument "Weighted.of_graph: weights must be positive") (fun () ->
      ignore (Weighted.of_graph g ~weights:[| 1.; 0. |]));
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Weighted.of_graph: one weight per edge required") (fun () ->
      ignore (Weighted.of_graph g ~weights:[| 1. |]))

let test_spanner_distances_restricted () =
  let g = Gen.cycle 6 in
  let wg = Weighted.unit g in
  let s = Edge_set.create g in
  (* keep only 5 of 6 cycle edges: a path *)
  for e = 0 to 4 do
    Edge_set.add s e
  done;
  let d = Weighted.spanner_distances wg s ~src:0 in
  checkb "all reachable" true (Array.for_all (fun x -> x < infinity) d);
  let full = Weighted.distances wg ~src:0 in
  checkb "some distance grew" true (Array.exists2 (fun a b -> a > b) d full)

let test_max_stretch_identity () =
  let g = Gen.connected_gnp (rng ()) ~n:100 ~p:0.06 in
  let wg = Weighted.random (rng ()) g ~lo:1. ~hi:4. in
  let all = Edge_set.of_list g (List.init (G.m g) (fun e -> e)) in
  checkf "identity stretch" 1. (Weighted.max_stretch (rng ()) wg all ~sources:5)

(* ------------------------------------------------------------------ *)
(* Weighted Baswana–Sen *)

let exact_weighted_stretch wg s =
  let g = Weighted.graph wg in
  let worst = ref 1. in
  for src = 0 to G.n g - 1 do
    let dg = Weighted.distances wg ~src and dh = Weighted.spanner_distances wg s ~src in
    for v = 0 to G.n g - 1 do
      if v <> src && dg.(v) < infinity then begin
        checkb "pair preserved" true (dh.(v) < infinity);
        let r = dh.(v) /. dg.(v) in
        if r > !worst then worst := r
      end
    done
  done;
  !worst

let test_bsw_stretch_bound () =
  List.iter
    (fun k ->
      let g = Gen.connected_gnp (rng ()) ~n:80 ~p:0.12 in
      let wg = Weighted.random (rng ()) g ~lo:1. ~hi:8. in
      let r = Bsw.build ~k ~seed:(7 * k) wg in
      let stretch = exact_weighted_stretch wg r.Bsw.spanner in
      checkb
        (Printf.sprintf "k=%d: weighted stretch %.2f <= %d" k stretch ((2 * k) - 1))
        true
        (stretch <= float_of_int ((2 * k) - 1) +. 1e-9))
    [ 1; 2; 3 ]

let test_bsw_k1_exact () =
  let g = Gen.connected_gnp (rng ()) ~n:60 ~p:0.15 in
  let wg = Weighted.random (rng ()) g ~lo:1. ~hi:5. in
  let r = Bsw.build ~k:1 ~seed:3 wg in
  checkf "k=1 keeps the metric" 1. (exact_weighted_stretch wg r.Bsw.spanner)

let test_bsw_sparsifies_dense () =
  (* Weighted K_200: expected size O(k n^{1+1/k}) << n^2/2. *)
  let g = Gen.complete 200 in
  let wg = Weighted.random (rng ()) g ~lo:1. ~hi:100. in
  let r = Bsw.build ~k:2 ~seed:5 wg in
  let size = Edge_set.cardinal r.Bsw.spanner in
  checkb (Printf.sprintf "K200 weighted spanner %d << 19900" size) true (size < 9000);
  let stretch = exact_weighted_stretch wg r.Bsw.spanner in
  checkb "stretch <= 3" true (stretch <= 3. +. 1e-9)

let test_bsw_heavier_weights_no_crash () =
  let g = Gen.king_torus ~width:12 ~height:12 in
  let wg = Weighted.random (rng ()) g ~lo:0.5 ~hi:50. in
  let r = Bsw.build ~k:3 ~seed:11 wg in
  checkb "nonempty" true (Edge_set.cardinal r.Bsw.spanner > 0);
  let stretch = exact_weighted_stretch wg r.Bsw.spanner in
  checkb "stretch <= 5" true (stretch <= 5. +. 1e-9)

let prop_bsw_stretch =
  QCheck.Test.make ~name:"weighted baswana-sen: stretch <= 2k-1" ~count:10
    QCheck.(pair (int_range 20 60) (int_range 1 3))
    (fun (n, k) ->
      let r0 = Util.Prng.create ~seed:(n * k) in
      let g = Gen.connected_gnp r0 ~n ~p:0.15 in
      let wg = Weighted.random r0 g ~lo:1. ~hi:9. in
      let r = Bsw.build ~k ~seed:(n + k) wg in
      let ok = ref true in
      for src = 0 to n - 1 do
        let dg = Weighted.distances wg ~src
        and dh = Weighted.spanner_distances wg r.Bsw.spanner ~src in
        for v = 0 to n - 1 do
          if v <> src && dg.(v) < infinity then
            if dh.(v) = infinity || dh.(v) > (float_of_int ((2 * k) - 1) *. dg.(v)) +. 1e-9
            then ok := false
        done
      done;
      !ok)

let suite =
  [
    ( "util.fheap",
      [ Alcotest.test_case "sorts" `Quick test_fheap_sorts ] );
    ( "graph.weighted",
      [
        Alcotest.test_case "unit = bfs" `Quick test_unit_weights_match_bfs;
        Alcotest.test_case "dijkstra detour" `Quick test_dijkstra_triangle;
        Alcotest.test_case "validation" `Quick test_weights_validated;
        Alcotest.test_case "spanner restriction" `Quick test_spanner_distances_restricted;
        Alcotest.test_case "identity stretch" `Quick test_max_stretch_identity;
      ] );
    ( "baseline.baswana_sen_weighted",
      [
        Alcotest.test_case "stretch <= 2k-1" `Quick test_bsw_stretch_bound;
        Alcotest.test_case "k=1 exact" `Quick test_bsw_k1_exact;
        Alcotest.test_case "sparsifies K200" `Quick test_bsw_sparsifies_dense;
        Alcotest.test_case "rough weights" `Quick test_bsw_heavier_weights_no_crash;
        QCheck_alcotest.to_alcotest prop_bsw_stretch;
      ] );
  ]
