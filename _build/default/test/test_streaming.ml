(* Tests for the streaming spanner and the random geometric
   generator. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Girth = Graphlib.Girth
module Metrics = Graphlib.Metrics
module Streaming = Baseline.Streaming

let rng () = Util.Prng.create ~seed:2008

let random_stream rng g =
  let edges = ref [] in
  G.iter_edges g (fun _ u v -> edges := (u, v) :: !edges);
  let arr = Array.of_list !edges in
  Util.Prng.shuffle rng arr;
  Array.to_list arr

(* ------------------------------------------------------------------ *)
(* Streaming spanner *)

let test_streaming_rejects_duplicates_and_loops () =
  let t = Streaming.create ~n:5 ~k:2 in
  checkb "loop rejected" false (Streaming.offer t 2 2);
  checkb "first accepted" true (Streaming.offer t 0 1);
  checkb "duplicate rejected" false (Streaming.offer t 0 1);
  checkb "reverse duplicate rejected" false (Streaming.offer t 1 0);
  checki "size" 1 (Streaming.size t);
  checki "offered" 4 (Streaming.offered t)

let test_streaming_stretch_any_order () =
  List.iter
    (fun seed ->
      let r = Util.Prng.create ~seed in
      let g = Gen.connected_gnp r ~n:120 ~p:0.08 in
      let k = 2 in
      let t = Streaming.of_stream ~n:120 ~k (random_stream r g) in
      let h = Streaming.to_graph t in
      let rep = Metrics.exact ~g ~h in
      checki "nothing lost" 0 rep.Metrics.disconnected;
      checkb
        (Printf.sprintf "stretch %.2f <= %d" rep.Metrics.max_mult ((2 * k) - 1))
        true
        (rep.Metrics.max_mult <= float_of_int ((2 * k) - 1) +. 1e-9))
    [ 1; 2; 3 ]

let test_streaming_girth () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:200 ~p:0.06 in
  let t = Streaming.of_stream ~n:200 ~k:3 (random_stream r g) in
  checkb "girth > 2k" true (Girth.has_girth_gt (Streaming.to_graph t) 6)

let test_streaming_memory_bound () =
  (* Memory (= held edges) stays under the n^{1+1/k} frontier even for
     an adversarially dense stream. *)
  let n = 150 in
  let g = Gen.complete n in
  let r = rng () in
  let t = Streaming.of_stream ~n ~k:2 (random_stream r g) in
  let bound = 2. *. (float_of_int n ** 1.5) in
  checkb
    (Printf.sprintf "memory %d under frontier %.0f" (Streaming.size t) bound)
    true
    (float_of_int (Streaming.size t) < bound);
  checki "saw the whole stream" (n * (n - 1) / 2) (Streaming.offered t)

let test_streaming_matches_greedy_same_order () =
  (* Fed in edge-id order, the stream rule IS the greedy spanner. *)
  let g = Gen.connected_gnp (rng ()) ~n:100 ~p:0.1 in
  let stream = ref [] in
  G.iter_edges g (fun _ u v -> stream := (u, v) :: !stream);
  let t = Streaming.of_stream ~n:100 ~k:2 (List.rev !stream) in
  let gr = Baseline.Greedy.build ~k:2 g in
  checki "same size" (Graphlib.Edge_set.cardinal gr.Baseline.Greedy.spanner)
    (Streaming.size t)

let test_streaming_incremental_connectivity () =
  (* At any prefix of the stream, held edges connect whatever the
     prefix connects. *)
  let g = Gen.cycle 40 in
  let r = rng () in
  let stream = random_stream r g in
  let t = Streaming.create ~n:40 ~k:3 in
  List.iter
    (fun (u, v) ->
      ignore (Streaming.offer t u v);
      (* u and v must now be within 2k-1 in the held spanner. *)
      let h = Streaming.to_graph t in
      let d = (Graphlib.Bfs.distances h ~src:u).(v) in
      checkb "offered pair spanned" true (d >= 0 && d <= 5))
    stream

(* ------------------------------------------------------------------ *)
(* Random geometric graphs *)

let test_geometric_radius_semantics () =
  let r = rng () in
  let g = Gen.random_geometric r ~n:150 ~radius:0.15 in
  checki "n" 150 (G.n g);
  checkb "has edges" true (G.m g > 0);
  (* Radius 0: no edges; radius sqrt 2: complete. *)
  checki "radius 0" 0 (G.m (Gen.random_geometric r ~n:50 ~radius:0.));
  checki "radius sqrt2" (50 * 49 / 2) (G.m (Gen.random_geometric r ~n:50 ~radius:1.5))

let test_geometric_density_scales_with_radius () =
  let r = rng () in
  let m radius = G.m (Gen.random_geometric r ~n:400 ~radius) in
  checkb "bigger radius, more edges" true (m 0.2 > m 0.08)

let test_geometric_spanner_pipeline () =
  (* The full pipeline on a geometric graph: skeleton stays connected
     per component and sparsifies. *)
  let r = rng () in
  let g = Gen.random_geometric r ~n:800 ~radius:0.09 in
  let sk = Spanner.Skeleton.build ~seed:3 g in
  let h = Graphlib.Edge_set.to_graph sk.Spanner.Skeleton.spanner in
  let _, cg = G.components g and _, ch = G.components h in
  checki "components preserved" cg ch;
  checkb "sparsified" true (Graphlib.Edge_set.cardinal sk.Spanner.Skeleton.spanner <= G.m g)

let suite =
  [
    ( "baseline.streaming",
      [
        Alcotest.test_case "duplicates & loops" `Quick test_streaming_rejects_duplicates_and_loops;
        Alcotest.test_case "stretch any order" `Quick test_streaming_stretch_any_order;
        Alcotest.test_case "girth > 2k" `Quick test_streaming_girth;
        Alcotest.test_case "memory bound" `Quick test_streaming_memory_bound;
        Alcotest.test_case "matches greedy in id order" `Quick
          test_streaming_matches_greedy_same_order;
        Alcotest.test_case "incremental connectivity" `Quick
          test_streaming_incremental_connectivity;
      ] );
    ( "graph.geometric",
      [
        Alcotest.test_case "radius semantics" `Quick test_geometric_radius_semantics;
        Alcotest.test_case "density vs radius" `Quick test_geometric_density_scales_with_radius;
        Alcotest.test_case "spanner pipeline" `Quick test_geometric_spanner_pipeline;
      ] );
  ]
