  $ ../../bin/spanner_cli.exe gen --kind cycle -n 12 -o net.edges
  $ head -1 net.edges
  $ ../../bin/spanner_cli.exe build -i net.edges --algo bfs-tree --sources 12 | head -2
  $ ../../bin/spanner_cli.exe build -i net.edges --algo greedy -k 2 -o sp.edges | tail -1
  $ head -1 sp.edges
  $ ../../bin/spanner_cli.exe eval net.edges sp.edges --exact
  $ ../../bin/spanner_cli.exe experiment E99 2>&1 | head -1
  $ ../../bin/spanner_cli.exe experiment E9 | head -6
