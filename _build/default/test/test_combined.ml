(* Tests for Corollary 1's combined spanner. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Edge_set = Graphlib.Edge_set
module Metrics = Graphlib.Metrics
module Combined = Spanner.Combined

let rng () = Util.Prng.create ~seed:808

let test_union_size_accounting () =
  let g = Gen.connected_gnp (rng ()) ~n:600 ~p:0.04 in
  let r = Combined.build ~ell:2 ~seed:2 g in
  let total = Edge_set.cardinal r.Combined.spanner in
  checkb "union at most the sum" true
    (total <= r.Combined.skeleton_size + r.Combined.fibonacci_size);
  checkb "union at least each part" true
    (total >= r.Combined.skeleton_size && total >= r.Combined.fibonacci_size)

let test_union_dominates_parts () =
  (* The union's distortion is no worse than either part's (more edges
     never hurt distances). *)
  let g = Gen.king_torus ~width:20 ~height:20 in
  let seed = 5 in
  let fib = Spanner.Fibonacci.build ~o:4 ~ell:2 ~seed g in
  let r = Combined.build ~o:4 ~ell:2 ~seed g in
  let stretch s =
    (Metrics.exact ~g ~h:(Edge_set.to_graph s)).Metrics.max_mult
  in
  checkb "union <= fibonacci alone" true
    (stretch r.Combined.spanner <= stretch fib.Spanner.Fibonacci.spanner +. 1e-9)

let test_union_connectivity () =
  let g = Gen.connected_gnp (rng ()) ~n:400 ~p:0.03 in
  let r = Combined.build ~ell:2 ~seed:9 g in
  checkb "connected" true (G.is_connected (Edge_set.to_graph r.Combined.spanner));
  let rep = Metrics.exact ~g ~h:(Edge_set.to_graph r.Combined.spanner) in
  checki "nothing lost" 0 rep.Metrics.disconnected

let test_default_density_scales () =
  (* D defaults to ~log log n: just check it runs and stays sparse on a
     dense graph. *)
  let g = Gen.connected_gnp (rng ()) ~n:2000 ~p:0.02 in
  let r = Combined.build ~ell:2 ~seed:4 g in
  checkb "sparser than input" true (Edge_set.cardinal r.Combined.spanner < G.m g)

let suite =
  [
    ( "core.combined",
      [
        Alcotest.test_case "size accounting" `Quick test_union_size_accounting;
        Alcotest.test_case "dominates parts" `Quick test_union_dominates_parts;
        Alcotest.test_case "connectivity" `Quick test_union_connectivity;
        Alcotest.test_case "default density" `Quick test_default_density_scales;
      ] );
  ]
