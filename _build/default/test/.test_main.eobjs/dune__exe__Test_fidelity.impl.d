test/test_fidelity.ml: Alcotest Array Graphlib Hashtbl List Option Printf Queue Spanner Util
