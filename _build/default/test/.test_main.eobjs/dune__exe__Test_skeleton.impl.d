test/test_skeleton.ml: Alcotest Array Distnet Float Graphlib Hashtbl List Option Printf QCheck QCheck_alcotest Spanner Stdlib Util
