test/test_experiments.ml: Alcotest Experiments Filename Format Fun Graphlib List String Sys Util
