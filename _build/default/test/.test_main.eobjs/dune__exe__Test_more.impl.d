test/test_more.ml: Alcotest Array Baseline Graphlib List Oracle QCheck QCheck_alcotest Spanner Stdlib Util
