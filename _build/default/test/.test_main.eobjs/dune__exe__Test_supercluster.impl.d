test/test_supercluster.ml: Alcotest Baseline Graphlib List Printf Util
