test/test_combined.ml: Alcotest Graphlib Spanner Util
