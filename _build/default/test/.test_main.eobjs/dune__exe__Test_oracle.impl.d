test/test_oracle.ml: Alcotest Array Graphlib List Oracle Printf QCheck QCheck_alcotest Util
