test/test_routing.ml: Alcotest Array Graphlib List Option Oracle Printf Util
