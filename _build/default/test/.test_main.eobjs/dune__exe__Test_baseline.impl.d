test/test_baseline.ml: Alcotest Array Baseline Distnet Graphlib List Printf QCheck QCheck_alcotest Util
