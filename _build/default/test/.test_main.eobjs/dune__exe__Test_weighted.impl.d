test/test_weighted.ml: Alcotest Array Baseline Graphlib List Printf QCheck QCheck_alcotest Util
