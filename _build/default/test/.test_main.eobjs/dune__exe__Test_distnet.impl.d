test/test_distnet.ml: Alcotest Array Distnet Graphlib List QCheck QCheck_alcotest Stdlib Util
