test/test_lowerbound.ml: Alcotest Array Float Graphlib Lowerbound Printf Stdlib Util
