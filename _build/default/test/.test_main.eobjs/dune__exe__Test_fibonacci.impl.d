test/test_fibonacci.ml: Alcotest Array Distnet Float Graphlib List Printf QCheck QCheck_alcotest Spanner Stdlib Util
