test/test_streaming.ml: Alcotest Array Baseline Graphlib List Printf Spanner Util
