test/test_graph.ml: Alcotest Array Float Format Graphlib List Printf QCheck QCheck_alcotest Util
