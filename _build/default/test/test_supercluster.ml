(* Tests for the EZ-style superclustering spanner. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Edge_set = Graphlib.Edge_set
module Metrics = Graphlib.Metrics
module Supercluster = Baseline.Supercluster

let rng () = Util.Prng.create ~seed:2024

let test_connectivity () =
  List.iter
    (fun seed ->
      let g = Gen.connected_gnp (Util.Prng.create ~seed) ~n:300 ~p:0.04 in
      let r = Supercluster.build ~seed g in
      checkb "connected" true (G.is_connected (Edge_set.to_graph r.Supercluster.spanner)))
    [ 1; 2; 3 ]

let test_components_preserved () =
  let g = Gen.gnp (rng ()) ~n:300 ~p:0.006 in
  let r = Supercluster.build ~seed:4 g in
  let _, cg = G.components g in
  let _, ch = G.components (Edge_set.to_graph r.Supercluster.spanner) in
  checki "components" cg ch

let test_no_disconnection_and_bounded_additive () =
  (* The (1+eps,beta) signature: on an exact check, no pair is lost and
     the additive error is a small constant. *)
  let g = Gen.king_torus ~width:14 ~height:14 in
  let r = Supercluster.build ~eps:0.5 ~seed:6 g in
  let rep = Metrics.exact ~g ~h:(Edge_set.to_graph r.Supercluster.spanner) in
  checki "nothing lost" 0 rep.Metrics.disconnected;
  checkb
    (Printf.sprintf "additive error %d small" rep.Metrics.max_add)
    true (rep.Metrics.max_add <= 6)

let test_additive_saturates () =
  (* Additive error does not grow with distance (beta-behavior). *)
  let g = Gen.king_torus ~width:30 ~height:30 in
  let r = Supercluster.build ~seed:9 g in
  let h = Edge_set.to_graph r.Supercluster.spanner in
  let profile = Metrics.distance_profile (rng ()) ~g ~h ~sources:10 in
  let additive d =
    match Metrics.stretch_at_distance profile d with
    | Some s -> (s -. 1.) *. float_of_int d
    | None -> 0.
  in
  checkb "error at d=15 no worse than 3 + error at d=2" true
    (additive 15 <= additive 2 +. 3.)

let test_levels_diagnostics () =
  let g = Gen.connected_gnp (rng ()) ~n:400 ~p:0.03 in
  let r = Supercluster.build ~seed:2 g in
  checkb "at least one level" true (r.Supercluster.levels_used >= 1);
  let total_finished = List.fold_left ( + ) 0 r.Supercluster.finished_per_level in
  (* every vertex's center eventually finishes; centers are a subset of
     vertices and each finishes exactly once *)
  checkb "finished counts sane" true (total_finished <= 400 && total_finished >= 1)

let test_trivial_inputs () =
  List.iter
    (fun (name, g) ->
      let r = Supercluster.build ~seed:1 g in
      checkb name true (Edge_set.cardinal r.Supercluster.spanner <= G.m g))
    [
      ("single vertex", G.of_edges ~n:1 []);
      ("single edge", G.of_edges ~n:2 [ (0, 1) ]);
      ("path", Gen.path 20);
    ]

let suite =
  [
    ( "baseline.supercluster",
      [
        Alcotest.test_case "connectivity" `Quick test_connectivity;
        Alcotest.test_case "components preserved" `Quick test_components_preserved;
        Alcotest.test_case "bounded additive error" `Quick
          test_no_disconnection_and_bounded_additive;
        Alcotest.test_case "additive saturates" `Quick test_additive_saturates;
        Alcotest.test_case "level diagnostics" `Quick test_levels_diagnostics;
        Alcotest.test_case "trivial inputs" `Quick test_trivial_inputs;
      ] );
  ]
