(* Tests for the graph substrate: Graph, Gen, Bfs, Edge_set, Apsp,
   Metrics, Girth, Gadget. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Bfs = Graphlib.Bfs
module Edge_set = Graphlib.Edge_set
module Apsp = Graphlib.Apsp
module Metrics = Graphlib.Metrics
module Girth = Graphlib.Girth
module Gadget = Graphlib.Gadget

let rng () = Util.Prng.create ~seed:20080424 (* paper submission date *)

(* ------------------------------------------------------------------ *)
(* Graph core *)

let test_build_dedup () =
  let g = G.of_edges ~n:4 [ (0, 1); (1, 0); (1, 2); (2, 2); (1, 2) ] in
  checki "n" 4 (G.n g);
  checki "m (dedup, no loops)" 2 (G.m g);
  checki "deg 1" 2 (G.degree g 1);
  checki "deg 3" 0 (G.degree g 3)

let test_edge_endpoints_normalized () =
  let g = G.of_edges ~n:3 [ (2, 0); (1, 2) ] in
  for e = 0 to G.m g - 1 do
    let u, v = G.edge_endpoints g e in
    checkb "u < v" true (u < v)
  done

let test_find_edge () =
  let g = G.of_edges ~n:5 [ (0, 1); (1, 2); (3, 4) ] in
  checkb "finds" true (G.mem_edge g 2 1);
  checkb "finds reversed" true (G.mem_edge g 1 2);
  checkb "absent" false (G.mem_edge g 0 2);
  checkb "self" false (G.mem_edge g 1 1);
  (match G.find_edge g 3 4 with
  | Some e ->
      let u, v = G.edge_endpoints g e in
      checki "endpoint u" 3 u;
      checki "endpoint v" 4 v
  | None -> Alcotest.fail "edge (3,4) must exist")

let test_degree_sum () =
  let g = Gen.gnp (rng ()) ~n:200 ~p:0.05 in
  let sum = ref 0 in
  for v = 0 to G.n g - 1 do
    sum := !sum + G.degree g v
  done;
  checki "handshake lemma" (2 * G.m g) !sum

let test_components () =
  let g = G.of_edges ~n:6 [ (0, 1); (1, 2); (3, 4) ] in
  let label, count = G.components g in
  checki "three components" 3 count;
  checkb "0~2 same" true (label.(0) = label.(2));
  checkb "3~4 same" true (label.(3) = label.(4));
  checkb "0 vs 3 differ" true (label.(0) <> label.(3));
  checkb "5 isolated" true (label.(5) <> label.(0) && label.(5) <> label.(3))

let test_iter_edges_covers_all () =
  let g = Gen.grid ~width:5 ~height:4 in
  let count = ref 0 in
  G.iter_edges g (fun _ u v ->
      incr count;
      checkb "valid endpoints" true (u >= 0 && v < G.n g && u < v));
  checki "edge count" (G.m g) !count

(* ------------------------------------------------------------------ *)
(* Generators *)

let test_gen_path () =
  let g = Gen.path 10 in
  checki "m" 9 (G.m g);
  checkb "connected" true (G.is_connected g);
  checki "diameter" 9 (Apsp.diameter g)

let test_gen_cycle () =
  let g = Gen.cycle 10 in
  checki "m" 10 (G.m g);
  checki "every degree 2" 2 (G.max_degree g);
  checki "diameter" 5 (Apsp.diameter g)

let test_gen_complete () =
  let g = Gen.complete 8 in
  checki "m" 28 (G.m g);
  checki "diameter" 1 (Apsp.diameter g)

let test_gen_complete_bipartite () =
  let g = Gen.complete_bipartite 3 4 in
  checki "n" 7 (G.n g);
  checki "m" 12 (G.m g);
  checki "diameter" 2 (Apsp.diameter g)

let test_gen_grid () =
  let g = Gen.grid ~width:4 ~height:3 in
  checki "n" 12 (G.n g);
  checki "m" ((3 * 3) + (2 * 4)) (G.m g);
  checki "diameter = manhattan" 5 (Apsp.diameter g)

let test_gen_torus () =
  let g = Gen.torus ~width:6 ~height:6 in
  checki "n" 36 (G.n g);
  checki "4-regular" 4 (G.max_degree g);
  checki "m" 72 (G.m g);
  checki "diameter" 6 (Apsp.diameter g)

let test_gen_hypercube () =
  let g = Gen.hypercube ~dims:5 in
  checki "n" 32 (G.n g);
  checki "m" (5 * 32 / 2) (G.m g);
  checki "diameter = dims" 5 (Apsp.diameter g)

let test_gen_star () =
  let g = Gen.star 12 in
  checki "m" 11 (G.m g);
  checki "diameter" 2 (Apsp.diameter g)

let test_gen_gnp_density () =
  let r = rng () in
  let n = 400 and p = 0.02 in
  let g = Gen.gnp r ~n ~p in
  let expected = p *. float_of_int (n * (n - 1) / 2) in
  let got = float_of_int (G.m g) in
  checkb
    (Printf.sprintf "edge count near expectation (%f vs %f)" got expected)
    true
    (Float.abs (got -. expected) < 5. *. sqrt expected)

let test_gen_gnp_extremes () =
  let r = rng () in
  checki "p=0" 0 (G.m (Gen.gnp r ~n:50 ~p:0.));
  checki "p=1" (50 * 49 / 2) (G.m (Gen.gnp r ~n:50 ~p:1.))

let test_gen_gnm_exact () =
  let r = rng () in
  let g = Gen.gnm r ~n:100 ~m:250 in
  checki "m exact" 250 (G.m g);
  let g2 = Gen.gnm r ~n:10 ~m:1000 in
  checki "m clamped" 45 (G.m g2)

let test_gen_pa_connected () =
  let r = rng () in
  let g = Gen.preferential_attachment r ~n:300 ~k:2 in
  checki "n" 300 (G.n g);
  checkb "connected" true (G.is_connected g);
  checkb "m in range" true (G.m g <= 2 * 300 && G.m g >= 299)

let test_gen_regularish () =
  let r = rng () in
  let g = Gen.random_regularish r ~n:200 ~d:6 in
  checkb "max degree close to d" true (G.max_degree g <= 6);
  checkb "avg degree near d" true (G.average_degree g > 4.)

let test_gen_caterpillar () =
  let g = Gen.caterpillar ~spine:5 ~legs:3 in
  checki "n" 20 (G.n g);
  checki "m = n - 1 (tree)" 19 (G.m g);
  checkb "connected" true (G.is_connected g)

let test_ensure_connected () =
  let r = rng () in
  let g = G.of_edges ~n:9 [ (0, 1); (3, 4); (6, 7) ] in
  let g' = Gen.ensure_connected r g in
  checkb "now connected" true (G.is_connected g');
  checkb "edges only added" true (G.m g' >= G.m g)

(* ------------------------------------------------------------------ *)
(* BFS *)

let test_bfs_path_distances () =
  let g = Gen.path 10 in
  let d = Bfs.distances g ~src:0 in
  for v = 0 to 9 do
    checki "distance on path" v d.(v)
  done

let test_bfs_unreachable () =
  let g = G.of_edges ~n:4 [ (0, 1) ] in
  let d = Bfs.distances g ~src:0 in
  checki "unreachable" (-1) d.(3)

let test_multi_source_nearest () =
  let g = Gen.path 10 in
  let f = Bfs.multi_source g ~sources:[ 0; 9 ] in
  checki "near 0" 0 f.source.(2);
  checki "near 9" 9 f.source.(7);
  checki "dist mid" 4 f.dist.(4);
  checki "dist mid2" 4 f.dist.(5)

let test_multi_source_min_id_ties () =
  (* Vertex 2 is at distance 1 from sources 1 and 3: label must be 1. *)
  let g = Gen.path 5 in
  let f = Bfs.multi_source g ~sources:[ 3; 1 ] in
  checki "tie to min id" 1 f.source.(2);
  checki "dist" 1 f.dist.(2)

let test_multi_source_parent_consistency () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:120 ~p:0.03 in
  let sources = [ 0; 5; 17; 80 ] in
  let f = Bfs.multi_source g ~sources in
  for v = 0 to G.n g - 1 do
    if f.dist.(v) > 0 then begin
      let p = f.parent.(v) in
      checki "parent one closer" (f.dist.(v) - 1) f.dist.(p);
      checki "same label as parent" f.source.(p) f.source.(v);
      let u, w = G.edge_endpoints g f.parent_edge.(v) in
      checkb "parent edge touches both" true
        ((u = v && w = p) || (u = p && w = v))
    end
  done

let test_multi_source_radius () =
  let g = Gen.path 10 in
  let f = Bfs.multi_source ~radius:3 g ~sources:[ 0 ] in
  checki "inside radius" 3 f.dist.(3);
  checki "outside radius" (-1) f.dist.(4)

let test_workspace_truncated () =
  let g = Gen.path 10 in
  let ws = Bfs.Workspace.create g in
  let visited = ref [] in
  Bfs.Workspace.run ws ~src:5 ~radius:2 ~on_visit:(fun ~v ~dist:_ ->
      visited := v :: !visited);
  let visited = List.sort compare !visited in
  Alcotest.check (Alcotest.list Alcotest.int) "ball of radius 2" [ 3; 4; 5; 6; 7 ] visited;
  checki "untouched" (-1) (Bfs.Workspace.dist ws 8)

let test_workspace_reuse () =
  let g = Gen.cycle 12 in
  let ws = Bfs.Workspace.create g in
  Bfs.Workspace.run ws ~src:0 ~radius:12 ~on_visit:(fun ~v:_ ~dist:_ -> ());
  Bfs.Workspace.run ws ~src:6 ~radius:2 ~on_visit:(fun ~v:_ ~dist:_ -> ());
  checki "fresh run dist" 2 (Bfs.Workspace.dist ws 4);
  checki "old entries cleared" (-1) (Bfs.Workspace.dist ws 0)

let test_workspace_path_edges () =
  let g = Gen.path 8 in
  let ws = Bfs.Workspace.create g in
  Bfs.Workspace.run ws ~src:1 ~radius:5 ~on_visit:(fun ~v:_ ~dist:_ -> ());
  let path = Bfs.Workspace.path_edges_to_source ws 5 in
  checki "path length" 4 (List.length path);
  List.iter
    (fun e ->
      let u, v = G.edge_endpoints g e in
      checkb "path edge inside range" true (u >= 1 && v <= 5))
    path

let test_bfs_matches_apsp () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:80 ~p:0.06 in
  let matrix = Apsp.compute g in
  let d0 = Bfs.distances g ~src:7 in
  Alcotest.check (Alcotest.array Alcotest.int) "row 7" matrix.(7) d0

let test_eccentricity () =
  let g = Gen.path 9 in
  checki "end" 8 (Bfs.eccentricity g 0);
  checki "middle" 4 (Bfs.eccentricity g 4);
  checki "diameter lb" 8 (Bfs.diameter_lower_bound g ~seeds:[ 4; 0 ])

(* ------------------------------------------------------------------ *)
(* Edge_set *)

let test_edge_set_basic () =
  let g = Gen.cycle 6 in
  let s = Edge_set.create g in
  checki "empty" 0 (Edge_set.cardinal s);
  Edge_set.add s 0;
  Edge_set.add s 0;
  Edge_set.add s 3;
  checki "cardinal" 2 (Edge_set.cardinal s);
  checkb "mem" true (Edge_set.mem s 3);
  checkb "not mem" false (Edge_set.mem s 1)

let test_edge_set_to_graph () =
  let g = Gen.cycle 6 in
  let s = Edge_set.of_list g [ 0; 1; 2; 3; 4 ] in
  let h = Edge_set.to_graph s in
  checki "same n" 6 (G.n h);
  checki "m" 5 (G.m h);
  checkb "still connected (path)" true (G.is_connected h)

let test_edge_set_union () =
  let g = Gen.cycle 6 in
  let a = Edge_set.of_list g [ 0; 1 ] and b = Edge_set.of_list g [ 1; 5 ] in
  let u = Edge_set.union a b in
  checki "union card" 3 (Edge_set.cardinal u);
  checki "a unchanged" 2 (Edge_set.cardinal a)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_identity () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:60 ~p:0.08 in
  let rep = Metrics.exact ~g ~h:g in
  Alcotest.check (Alcotest.float 1e-9) "max stretch 1" 1. rep.Metrics.max_mult;
  checki "no additive" 0 rep.Metrics.max_add;
  checki "nothing lost" 0 rep.Metrics.disconnected

let test_metrics_cycle_vs_path () =
  (* Dropping one edge of C_n: the max stretch is (n-1)/1 for that
     edge's endpoints. *)
  let n = 10 in
  let g = Gen.cycle n in
  let all = List.init (G.m g) (fun e -> e) in
  let e_dropped = List.hd all in
  let s = Edge_set.of_list g (List.tl all) in
  let h = Edge_set.to_graph s in
  let rep = Metrics.exact ~g ~h in
  let u, v = G.edge_endpoints g e_dropped in
  checkb "endpoints adjacent" true (u <> v);
  Alcotest.check (Alcotest.float 1e-9) "max stretch n-1" (float_of_int (n - 1))
    rep.Metrics.max_mult;
  checki "max additive n-2" (n - 2) rep.Metrics.max_add

let test_metrics_disconnection_counted () =
  let g = Gen.path 4 in
  let s = Edge_set.of_list g [] in
  let h = Edge_set.to_graph s in
  let rep = Metrics.exact ~g ~h in
  checki "all pairs lost" 6 rep.Metrics.disconnected;
  checki "no measured pairs" 0 rep.Metrics.pairs

let test_metrics_sampled_agrees_on_identity () =
  let r = rng () in
  let g = Gen.connected_gnp r ~n:100 ~p:0.05 in
  let rep = Metrics.sampled r ~g ~h:g ~sources:8 in
  Alcotest.check (Alcotest.float 1e-9) "stretch 1" 1. rep.Metrics.max_mult

let test_metrics_profile () =
  let g = Gen.path 10 in
  (* spanner = g: profile stretch must be 1 at every distance *)
  let r = rng () in
  let profile = Metrics.distance_profile r ~g ~h:g ~sources:10 in
  List.iter
    (fun (d, _) ->
      match Metrics.stretch_at_distance profile d with
      | Some s -> Alcotest.check (Alcotest.float 1e-9) "stretch 1" 1. s
      | None -> Alcotest.fail "missing distance")
    profile;
  checkb "has distance 9" true (List.mem_assoc 9 profile)

(* ------------------------------------------------------------------ *)
(* Girth *)

let test_girth_cycle () =
  checkb "C5 girth 5" true (Girth.girth (Gen.cycle 5) = Some 5);
  checkb "C12 girth 12" true (Girth.girth (Gen.cycle 12) = Some 12)

let test_girth_tree () =
  checkb "tree has none" true (Girth.girth (Gen.path 10) = None);
  checkb "caterpillar none" true (Girth.girth (Gen.caterpillar ~spine:4 ~legs:2) = None)

let test_girth_complete () =
  checkb "K5 girth 3" true (Girth.girth (Gen.complete 5) = Some 3);
  checkb "K33 girth 4" true (Girth.girth (Gen.complete_bipartite 3 3) = Some 4)

let test_girth_gt () =
  checkb "C7 > 6" true (Girth.has_girth_gt (Gen.cycle 7) 6);
  checkb "C7 not > 7" false (Girth.has_girth_gt (Gen.cycle 7) 7)

let test_girth_grid () =
  checkb "grid girth 4" true (Girth.girth (Gen.grid ~width:3 ~height:3) = Some 4);
  checkb "hypercube girth 4" true (Girth.girth (Gen.hypercube ~dims:4) = Some 4)

(* ------------------------------------------------------------------ *)
(* Gadget *)

let test_gadget_size_bounds () =
  (* Paper: n' < (kappa+1) sigma (tau+6) and m' > kappa sigma^2. *)
  List.iter
    (fun (tau, sigma, kappa) ->
      let gd = Gadget.create ~tau ~sigma ~kappa in
      let n = G.n gd.Gadget.graph and m = G.m gd.Gadget.graph in
      checkb "n bound" true (n < (kappa + 1) * sigma * (tau + 6));
      checkb "m bound" true (m > kappa * sigma * sigma))
    [ (1, 2, 2); (3, 4, 3); (5, 3, 5); (2, 6, 2) ]

let test_gadget_connected () =
  let gd = Gadget.create ~tau:3 ~sigma:3 ~kappa:4 in
  checkb "connected" true (G.is_connected gd.Gadget.graph)

let test_gadget_critical_edges () =
  let gd = Gadget.create ~tau:2 ~sigma:3 ~kappa:4 in
  checki "one per block" 4 (Array.length gd.Gadget.critical_edges);
  Array.iteri
    (fun i e ->
      let u, v = G.edge_endpoints gd.Gadget.graph e in
      let l = gd.Gadget.left.(i).(0) and r = gd.Gadget.right.(i).(0) in
      checkb "critical joins column 0" true
        ((u = l && v = r) || (u = r && v = l)))
    gd.Gadget.critical_edges

let test_gadget_observer_distance () =
  (* delta(vL_{0,0}, vL_{k-1,0}) = (kappa-1)(tau+2). *)
  let tau = 3 and kappa = 4 in
  let gd = Gadget.create ~tau ~sigma:3 ~kappa in
  let u, v = Gadget.observers gd in
  let d = Bfs.distances gd.Gadget.graph ~src:u in
  checki "observer distance" ((kappa - 1) * (tau + 2)) d.(v);
  checki "hop length" (tau + 2) (Gadget.hop_length gd)

let test_gadget_critical_replacement () =
  (* Removing one critical edge increases the observers' distance by
     exactly 2 (the length-3 replacement through column j>1... in fact
     through another column's L/R pair). *)
  let tau = 3 and kappa = 3 in
  let gd = Gadget.create ~tau ~sigma:3 ~kappa in
  let g = gd.Gadget.graph in
  let u, v = Gadget.observers gd in
  let base = (Bfs.distances g ~src:u).(v) in
  let drop = gd.Gadget.critical_edges.(1) in
  let keep = Edge_set.create g in
  G.iter_edges g (fun e _ _ -> if e <> drop then Edge_set.add keep e);
  let h = Edge_set.to_graph keep in
  let after = (Bfs.distances h ~src:u).(v) in
  checki "distance grows by exactly 2" (base + 2) after

let test_gadget_edge_partition () =
  let gd = Gadget.create ~tau:2 ~sigma:4 ~kappa:3 in
  let g = gd.Gadget.graph in
  checki "partition covers all edges" (G.m g)
    (List.length gd.Gadget.block_edges + List.length gd.Gadget.chain_edges);
  checki "block edge count" (3 * 4 * 4) (List.length gd.Gadget.block_edges)

let test_gadget_paper_parameters () =
  let sigma, kappa = Gadget.paper_parameters ~n:10000 ~delta:0.2 ~c:2. ~tau:4 in
  checkb "sigma positive" true (sigma >= 1);
  checkb "kappa positive" true (kappa >= 1);
  (* sigma = c(tau+6) n^delta = 2*10*10000^0.2 ~ 126 *)
  checkb "sigma magnitude" true (sigma > 100 && sigma < 150)

(* ------------------------------------------------------------------ *)
(* Properties *)

let graph_gen =
  QCheck.Gen.(
    sized_size (1 -- 40) (fun n ->
        let n = n + 2 in
        list_size (0 -- (3 * n)) (pair (int_bound (n - 1)) (int_bound (n - 1)))
        >|= fun edges -> Graphlib.Graph.of_edges ~n edges))

let arbitrary_graph = QCheck.make ~print:(fun g -> Format.asprintf "%a" G.pp_summary g) graph_gen

let prop_bfs_triangle_inequality =
  QCheck.Test.make ~name:"bfs: adjacent vertices differ by <= 1" ~count:60 arbitrary_graph
    (fun g ->
      if G.n g = 0 then true
      else begin
        let d = Bfs.distances g ~src:0 in
        let ok = ref true in
        G.iter_edges g (fun _ u v ->
            if d.(u) >= 0 && d.(v) >= 0 && abs (d.(u) - d.(v)) > 1 then ok := false;
            if (d.(u) < 0) <> (d.(v) < 0) then ok := false);
        !ok
      end)

let prop_components_edge_consistent =
  QCheck.Test.make ~name:"components: edges stay within a component" ~count:60
    arbitrary_graph (fun g ->
      let label, _ = G.components g in
      let ok = ref true in
      G.iter_edges g (fun _ u v -> if label.(u) <> label.(v) then ok := false);
      !ok)

let prop_multi_source_matches_min_bfs =
  QCheck.Test.make ~name:"multi_source: dist = min over single-source BFS" ~count:40
    arbitrary_graph (fun g ->
      if G.n g < 3 then true
      else begin
        let sources = [ 0; 1; 2 ] in
        let f = Bfs.multi_source g ~sources in
        let singles = List.map (fun s -> (s, Bfs.distances g ~src:s)) sources in
        let ok = ref true in
        for v = 0 to G.n g - 1 do
          let best =
            List.fold_left
              (fun acc (_, d) ->
                if d.(v) < 0 then acc
                else match acc with None -> Some d.(v) | Some b -> Some (min b d.(v)))
              None singles
          in
          (match (best, f.dist.(v)) with
          | None, -1 -> ()
          | Some b, fv when b = fv -> ()
          | _ -> ok := false);
          (* label is the min id among sources achieving the distance *)
          if f.dist.(v) >= 0 then begin
            let minid =
              List.fold_left
                (fun acc (s, d) ->
                  if d.(v) = f.dist.(v) then min acc s else acc)
                max_int singles
            in
            if minid <> f.source.(v) then ok := false
          end
        done;
        !ok
      end)

let prop_edge_set_subgraph_distances_dominate =
  QCheck.Test.make ~name:"subgraph distances dominate host distances" ~count:40
    arbitrary_graph (fun g ->
      if G.m g = 0 then true
      else begin
        let r = Util.Prng.create ~seed:99 in
        let s = Edge_set.create g in
        G.iter_edges g (fun e _ _ -> if Util.Prng.bool r then Edge_set.add s e);
        let h = Edge_set.to_graph s in
        let dg = Bfs.distances g ~src:0 and dh = Bfs.distances h ~src:0 in
        let ok = ref true in
        for v = 0 to G.n g - 1 do
          if dh.(v) >= 0 && dg.(v) >= 0 && dh.(v) < dg.(v) then ok := false
        done;
        !ok
      end)

let suite =
  [
    ( "graph.core",
      [
        Alcotest.test_case "dedup & loops" `Quick test_build_dedup;
        Alcotest.test_case "normalized endpoints" `Quick test_edge_endpoints_normalized;
        Alcotest.test_case "find_edge" `Quick test_find_edge;
        Alcotest.test_case "handshake" `Quick test_degree_sum;
        Alcotest.test_case "components" `Quick test_components;
        Alcotest.test_case "iter_edges" `Quick test_iter_edges_covers_all;
        QCheck_alcotest.to_alcotest prop_components_edge_consistent;
      ] );
    ( "graph.gen",
      [
        Alcotest.test_case "path" `Quick test_gen_path;
        Alcotest.test_case "cycle" `Quick test_gen_cycle;
        Alcotest.test_case "complete" `Quick test_gen_complete;
        Alcotest.test_case "complete bipartite" `Quick test_gen_complete_bipartite;
        Alcotest.test_case "grid" `Quick test_gen_grid;
        Alcotest.test_case "torus" `Quick test_gen_torus;
        Alcotest.test_case "hypercube" `Quick test_gen_hypercube;
        Alcotest.test_case "star" `Quick test_gen_star;
        Alcotest.test_case "gnp density" `Quick test_gen_gnp_density;
        Alcotest.test_case "gnp extremes" `Quick test_gen_gnp_extremes;
        Alcotest.test_case "gnm exact" `Quick test_gen_gnm_exact;
        Alcotest.test_case "preferential attachment" `Quick test_gen_pa_connected;
        Alcotest.test_case "regular-ish" `Quick test_gen_regularish;
        Alcotest.test_case "caterpillar" `Quick test_gen_caterpillar;
        Alcotest.test_case "ensure_connected" `Quick test_ensure_connected;
      ] );
    ( "graph.bfs",
      [
        Alcotest.test_case "path distances" `Quick test_bfs_path_distances;
        Alcotest.test_case "unreachable" `Quick test_bfs_unreachable;
        Alcotest.test_case "multi-source nearest" `Quick test_multi_source_nearest;
        Alcotest.test_case "min-id ties" `Quick test_multi_source_min_id_ties;
        Alcotest.test_case "parent consistency" `Quick test_multi_source_parent_consistency;
        Alcotest.test_case "radius" `Quick test_multi_source_radius;
        Alcotest.test_case "workspace truncated" `Quick test_workspace_truncated;
        Alcotest.test_case "workspace reuse" `Quick test_workspace_reuse;
        Alcotest.test_case "workspace path edges" `Quick test_workspace_path_edges;
        Alcotest.test_case "matches apsp" `Quick test_bfs_matches_apsp;
        Alcotest.test_case "eccentricity" `Quick test_eccentricity;
        QCheck_alcotest.to_alcotest prop_bfs_triangle_inequality;
        QCheck_alcotest.to_alcotest prop_multi_source_matches_min_bfs;
      ] );
    ( "graph.edge_set",
      [
        Alcotest.test_case "basic" `Quick test_edge_set_basic;
        Alcotest.test_case "to_graph" `Quick test_edge_set_to_graph;
        Alcotest.test_case "union" `Quick test_edge_set_union;
        QCheck_alcotest.to_alcotest prop_edge_set_subgraph_distances_dominate;
      ] );
    ( "graph.metrics",
      [
        Alcotest.test_case "identity" `Quick test_metrics_identity;
        Alcotest.test_case "cycle vs path" `Quick test_metrics_cycle_vs_path;
        Alcotest.test_case "disconnection counted" `Quick test_metrics_disconnection_counted;
        Alcotest.test_case "sampled identity" `Quick test_metrics_sampled_agrees_on_identity;
        Alcotest.test_case "distance profile" `Quick test_metrics_profile;
      ] );
    ( "graph.girth",
      [
        Alcotest.test_case "cycle" `Quick test_girth_cycle;
        Alcotest.test_case "tree" `Quick test_girth_tree;
        Alcotest.test_case "complete" `Quick test_girth_complete;
        Alcotest.test_case "has_girth_gt" `Quick test_girth_gt;
        Alcotest.test_case "grid/hypercube" `Quick test_girth_grid;
      ] );
    ( "graph.gadget",
      [
        Alcotest.test_case "size bounds" `Quick test_gadget_size_bounds;
        Alcotest.test_case "connected" `Quick test_gadget_connected;
        Alcotest.test_case "critical edges" `Quick test_gadget_critical_edges;
        Alcotest.test_case "observer distance" `Quick test_gadget_observer_distance;
        Alcotest.test_case "critical replacement +2" `Quick test_gadget_critical_replacement;
        Alcotest.test_case "edge partition" `Quick test_gadget_edge_partition;
        Alcotest.test_case "paper parameters" `Quick test_gadget_paper_parameters;
      ] );
  ]
