(* Tests for Section 4: Fib_params, Fibonacci (sequential) and
   Fibonacci_dist. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Bfs = Graphlib.Bfs
module Edge_set = Graphlib.Edge_set
module Metrics = Graphlib.Metrics
module Fib_params = Spanner.Fib_params
module Fibonacci = Spanner.Fibonacci
module Fibonacci_dist = Spanner.Fibonacci_dist
module Bounds = Spanner.Bounds

let rng () = Util.Prng.create ~seed:1618

(* ------------------------------------------------------------------ *)
(* Fib_params *)

let test_params_fh_recurrences () =
  (* Lemma 8: f_i = f_{i-1} + f_{i-2} + 1, h_i = h_{i-1} + h_{i-2} + (i-1),
     with f_0 = 0, f_1 = 1, h_0 = h_1 = 0. *)
  checki "f_0" 0 (Fib_params.fi 0);
  checki "f_1" 1 (Fib_params.fi 1);
  checki "h_0" 0 (Fib_params.hi 0);
  checki "h_1" 0 (Fib_params.hi 1);
  for i = 2 to 15 do
    checki "f recurrence" (Fib_params.fi (i - 1) + Fib_params.fi (i - 2) + 1) (Fib_params.fi i);
    checki "h recurrence" (Fib_params.hi (i - 1) + Fib_params.hi (i - 2) + (i - 1)) (Fib_params.hi i)
  done

let test_params_qs_monotone () =
  let p = Fib_params.make ~n:100_000 ~o:5 ~ell:4 () in
  let qs = p.Fib_params.qs in
  checkb "q_0 = 1" true (qs.(0) = 1.);
  for i = 1 to 6 do
    checkb
      (Printf.sprintf "q_%d <= q_%d" i (i - 1))
      true
      (qs.(i) <= qs.(i - 1) +. 1e-15)
  done;
  Alcotest.check (Alcotest.float 1e-12) "q_{o+1} = 1/n" (1. /. 100_000.) qs.(6)

let test_params_default_order_is_sparsest () =
  let p = Fib_params.make ~n:65536 () in
  (* log2 65536 = 16; log_phi 16 ~ 5.76 -> o = 5 *)
  checki "default order" 5 p.Fib_params.o

let test_params_theorem7_ell () =
  let p = Fib_params.make ~n:1000 ~o:2 ~eps:0.5 () in
  (* ell = ceil(3*2/0.5) + 2 = 14 *)
  checki "ell from Theorem 7" 14 p.Fib_params.ell

let test_params_radius () =
  let p = Fib_params.make ~n:1000 ~o:3 ~ell:3 () in
  checki "ell^0" 1 (Fib_params.radius p 0);
  checki "ell^2" 9 (Fib_params.radius p 2)

let test_params_level_sizes () =
  let p = Fib_params.make ~n:30_000 ~o:4 ~ell:2 () in
  let levels = Fib_params.draw_levels (rng ()) p in
  checki "levels length" 30_000 (Array.length levels);
  (* |V_i| concentrates near q_i n. *)
  for i = 1 to 4 do
    let cnt = Array.fold_left (fun acc l -> if l >= i then acc + 1 else acc) 0 levels in
    let expected = p.Fib_params.qs.(i) *. 30_000. in
    checkb
      (Printf.sprintf "|V_%d| = %d near %.0f" i cnt expected)
      true
      (float_of_int cnt > (0.7 *. expected) -. 10.
      && float_of_int cnt < (1.3 *. expected) +. 10.)
  done

let test_params_rejects_bad () =
  Alcotest.check_raises "o < 1" (Invalid_argument "Fib_params.make: order must be >= 1")
    (fun () -> ignore (Fib_params.make ~n:100 ~o:0 ()))

let test_params_budgeted_ratios () =
  (* Theorem 8: after the adjustment, no consecutive q-ratio exceeds
     n^(1/t). *)
  let n = 50_000 in
  let p = Fib_params.make ~n ~o:6 ~ell:2 () in
  List.iter
    (fun tee ->
      let cap = float_of_int n ** (1. /. float_of_int tee) in
      let p' = Fib_params.budgeted p ~tee in
      for i = 0 to p'.Fib_params.o - 1 do
        let ratio = p'.Fib_params.qs.(i) /. p'.Fib_params.qs.(i + 1) in
        checkb
          (Printf.sprintf "t=%d: q_%d/q_%d = %.1f <= %.1f" tee i (i + 1) ratio cap)
          true
          (ratio <= cap *. (1. +. 1e-9))
      done;
      (* still a nested hierarchy *)
      for i = 1 to p'.Fib_params.o + 1 do
        checkb "monotone" true (p'.Fib_params.qs.(i) <= p'.Fib_params.qs.(i - 1) +. 1e-15)
      done)
    [ 2; 3; 5 ]

let test_params_budgeted_noop_when_generous () =
  let p = Fib_params.make ~n:1000 ~o:3 ~ell:2 () in
  let p' = Fib_params.budgeted p ~tee:1 in
  Alcotest.check
    (Alcotest.array (Alcotest.float 1e-12))
    "t=1 changes nothing" p.Fib_params.qs p'.Fib_params.qs

(* ------------------------------------------------------------------ *)
(* Fibonacci sequential *)

let build ~o ~ell ~seed g = Fibonacci.build ~o ~ell ~seed g

let test_fib_connectivity () =
  List.iter
    (fun seed ->
      let g = Gen.connected_gnp (Util.Prng.create ~seed) ~n:400 ~p:0.03 in
      let r = build ~o:3 ~ell:2 ~seed g in
      checkb "connected" true (G.is_connected (Edge_set.to_graph r.Fibonacci.spanner)))
    [ 1; 2; 3 ]

let test_fib_stretch_within_stage_bound () =
  (* Theorem 7 / Lemma 10: every pair's spanner distance is bounded by
     C^o_{ell'} with ell' = ceil(d^(1/o)) (rounding up to the next
     ell'-power).  Check exactly on a small graph. *)
  let g = Gen.connected_gnp (rng ()) ~n:160 ~p:0.05 in
  let o = 3 and ell = 6 in
  let r = build ~o ~ell ~seed:7 g in
  let h = Edge_set.to_graph r.Fibonacci.spanner in
  let n = G.n g in
  for u = 0 to n - 1 do
    let dg = Bfs.distances g ~src:u and dh = Bfs.distances h ~src:u in
    for v = u + 1 to n - 1 do
      let d = dg.(v) in
      if d > 0 then begin
        checkb "pair not lost" true (dh.(v) >= 0);
        let ell' =
          Stdlib.max 1
            (int_of_float
               (Float.ceil (float_of_int d ** (1. /. float_of_int o))))
        in
        if ell' <= ell - 2 then begin
          let bound = Bounds.fib_c ~ell:ell' o in
          checkb
            (Printf.sprintf "d=%d: %d <= C^%d_%d = %.1f" d dh.(v) o ell' bound)
            true
            (float_of_int dh.(v) <= bound +. 1e-9)
        end
      end
    done
  done

let test_fib_parent_forest_present () =
  (* Every vertex within ell^(i-1) of V_i must reach V_i inside the
     spanner at its exact graph distance (the parent-path rule). *)
  let g = Gen.torus ~width:20 ~height:20 in
  let o = 3 and ell = 3 in
  let r = build ~o ~ell ~seed:9 g in
  let h = Edge_set.to_graph r.Fibonacci.spanner in
  let levels = r.Fibonacci.levels in
  for i = 1 to o do
    let vi =
      List.filteri (fun _ _ -> true)
        (List.filter (fun v -> levels.(v) >= i) (List.init (G.n g) (fun v -> v)))
    in
    if vi <> [] then begin
      let dg = Bfs.multi_source g ~sources:vi in
      let dh = Bfs.multi_source h ~sources:vi in
      let radius = Fib_params.radius r.Fibonacci.params (i - 1) in
      Array.iteri
        (fun v d ->
          if d >= 0 && d <= radius then
            checki
              (Printf.sprintf "level %d: vertex %d reaches V_i at distance %d" i v d)
              d dh.Bfs.dist.(v))
        dg.Bfs.dist
    end
  done

let test_fib_size_tradeoff () =
  (* Lemma 8: size decreases as the order grows (sparseness-distortion
     tradeoff), on a graph dense enough to be sparsified. *)
  let g = Gen.connected_gnp (rng ()) ~n:2500 ~p:0.01 in
  let size o = Edge_set.cardinal (build ~o ~ell:2 ~seed:11 g).Fibonacci.spanner in
  let s2 = size 2 and s5 = size 5 in
  checkb (Printf.sprintf "o=5 (%d) sparser than o=2 (%d)" s5 s2) true (s5 < s2)

let test_fib_stretch_tradeoff () =
  (* ...and distortion moves the other way. *)
  let g = Gen.connected_gnp (rng ()) ~n:2500 ~p:0.01 in
  let avg o =
    let r = build ~o ~ell:2 ~seed:11 g in
    let h = Edge_set.to_graph r.Fibonacci.spanner in
    (Metrics.sampled (Util.Prng.create ~seed:3) ~g ~h ~sources:6).Metrics.avg_mult
  in
  checkb "o=5 has more stretch than o=2" true (avg 5 > avg 2)

let test_fib_ball_strictness () =
  (* B_{i+1}(v) excludes vertices at distance >= delta(v, V_{i+1}):
     with V_{i+1} = everything (impossible by sampling but forced via
     build_with), balls become empty and only forests remain. *)
  let g = Gen.cycle 30 in
  let params = Fib_params.make ~n:30 ~o:1 ~ell:3 () in
  let levels = Array.make 30 1 in
  (* everyone in V_1 *)
  let r = Fibonacci.build_with ~params ~levels g in
  (* With V_1 = V: delta(v, V_1) = 0, so S_0's balls are empty and
     every level-1 parent path is trivial; S_1 balls connect V_0 = V
     to V_1 within ell... but closer than V_2 = empty -> full radius.
     At minimum the spanner must keep the cycle connected. *)
  checkb "still connected" true (G.is_connected (Edge_set.to_graph r.Fibonacci.spanner))

let test_fib_per_level_stats () =
  let g = Gen.connected_gnp (rng ()) ~n:500 ~p:0.03 in
  let r = build ~o:3 ~ell:2 ~seed:5 g in
  checki "o+1 levels reported" 4 (Array.length r.Fibonacci.per_level);
  checki "level 0 holds everyone" 500 r.Fibonacci.per_level.(0).Fibonacci.members;
  let prev = ref max_int in
  Array.iter
    (fun s ->
      checkb "levels shrink" true (s.Fibonacci.members <= !prev);
      prev := s.Fibonacci.members)
    r.Fibonacci.per_level

let test_fib_lemma7_level_sizes () =
  (* Lemma 7: the expected number of ball paths contributed at level i
     is below n q_{i-1} q_i / q_{i+1} * ell^i (level 0: n / q_1).
     Statistical check with x4 slack on a fixed seed. *)
  let n = 4000 in
  let g = Gen.connected_gnp (rng ()) ~n ~p:(12. /. float_of_int n) in
  let params = Fib_params.make ~n ~o:3 ~ell:2 () in
  let levels = Fib_params.draw_levels (Util.Prng.create ~seed:44) params in
  let r = Fibonacci.build_with ~params ~levels g in
  let qs = params.Fib_params.qs in
  let nf = float_of_int n in
  Array.iteri
    (fun i stat ->
      let expected =
        if i = 0 then nf /. qs.(1)
        else
          nf *. qs.(i - 1) *. qs.(i) /. qs.(i + 1)
          *. float_of_int (Fib_params.radius params i)
      in
      checkb
        (Printf.sprintf "level %d: %d paths <= 4x Lemma-7 bound %.0f" i
           stat.Fibonacci.ball_paths expected)
        true
        (float_of_int stat.Fibonacci.ball_paths <= Stdlib.max 10. (4. *. expected)))
    r.Fibonacci.per_level

let test_fib_path_graph () =
  (* On a path, the spanner must keep all n-1 edges. *)
  let g = Gen.path 50 in
  let r = build ~o:2 ~ell:3 ~seed:3 g in
  checki "path kept" 49 (Edge_set.cardinal r.Fibonacci.spanner)

(* ------------------------------------------------------------------ *)
(* Fibonacci distributed *)

let test_fib_dist_matches_sequential_unblocked () =
  (* With a generous budget (t=1 gives n words) nothing blocks and the
     distributed construction covers the same balls; sizes agree. *)
  let g = Gen.connected_gnp (rng ()) ~n:300 ~p:0.04 in
  let params = Fib_params.make ~n:300 ~o:3 ~ell:2 () in
  let levels = Fib_params.draw_levels (Util.Prng.create ~seed:21) params in
  let seq = Fibonacci.build_with ~params ~levels g in
  let dist = Fibonacci_dist.build_with ~params ~levels ~t:1 g in
  checki "no blocking" 0 dist.Fibonacci_dist.blocked;
  checki "no failures" 0 dist.Fibonacci_dist.failures;
  checki "same size"
    (Edge_set.cardinal seq.Fibonacci.spanner)
    (Edge_set.cardinal dist.Fibonacci_dist.spanner)

let test_fib_dist_stretch_never_worse_than_seq_bound () =
  let g = Gen.connected_gnp (rng ()) ~n:300 ~p:0.04 in
  let params = Fib_params.make ~n:300 ~o:3 ~ell:2 () in
  let levels = Fib_params.draw_levels (Util.Prng.create ~seed:22) params in
  let seq = Fibonacci.build_with ~params ~levels g in
  let dist = Fibonacci_dist.build_with ~params ~levels ~t:2 g in
  let rep_of s = Metrics.exact ~g ~h:(Edge_set.to_graph s) in
  let rs = rep_of seq.Fibonacci.spanner and rd = rep_of dist.Fibonacci_dist.spanner in
  checki "nothing lost (seq)" 0 rs.Metrics.disconnected;
  checki "nothing lost (dist)" 0 rd.Metrics.disconnected;
  (* Blocking can only ADD edges (keep-all) or lose ball members whose
     paths the LV check restores; distortion must stay within the same
     analytic bound. *)
  checkb "dist stretch close to seq" true
    (rd.Metrics.max_mult <= rs.Metrics.max_mult +. 3.)

let test_fib_dist_budget_respected () =
  let g = Gen.connected_gnp (rng ()) ~n:400 ~p:0.03 in
  let dist = Fibonacci_dist.build ~o:3 ~ell:2 ~t:2 ~seed:8 g in
  checkb
    (Printf.sprintf "max message %d <= budget %d"
       dist.Fibonacci_dist.stats.Distnet.Sim.max_message_words
       dist.Fibonacci_dist.budget_words)
    true
    (dist.Fibonacci_dist.stats.Distnet.Sim.max_message_words
    <= dist.Fibonacci_dist.budget_words)

let test_fib_dist_blocking_triggers_on_tiny_budget () =
  (* Force a tiny budget: blocking and (usually) Las Vegas recovery. *)
  let g = Gen.connected_gnp (rng ()) ~n:250 ~p:0.06 in
  let params = Fib_params.make ~n:250 ~o:3 ~ell:2 () in
  let levels = Fib_params.draw_levels (Util.Prng.create ~seed:31) params in
  let dist = Fibonacci_dist.build_with ~params ~levels ~t:8 g in
  checkb "budget tiny" true (dist.Fibonacci_dist.budget_words <= 3);
  checkb "blocking observed" true (dist.Fibonacci_dist.blocked > 0);
  (* Whatever was blocked, the delivered spanner must not disconnect. *)
  let h = Edge_set.to_graph dist.Fibonacci_dist.spanner in
  checkb "still connected" true (G.is_connected h)

let test_fib_dist_rounds_scale_with_radius () =
  (* Rounds grow with ell^o (the dominating broadcast radius). *)
  let g = Gen.torus ~width:16 ~height:16 in
  let rounds ell =
    let d = Fibonacci_dist.build ~o:2 ~ell ~t:1 ~seed:2 g in
    d.Fibonacci_dist.stats.Distnet.Sim.rounds
  in
  checkb "ell=4 uses more rounds than ell=2" true (rounds 4 > rounds 2)

let prop_fib_connectivity =
  QCheck.Test.make ~name:"fibonacci: preserves connectivity" ~count:15
    QCheck.(pair (int_range 20 120) (int_bound 1000))
    (fun (n, seed) ->
      let g = Gen.connected_gnp (Util.Prng.create ~seed) ~n ~p:(5. /. float_of_int n) in
      let r = Fibonacci.build ~o:2 ~ell:3 ~seed:(seed + 1) g in
      G.is_connected (Edge_set.to_graph r.Fibonacci.spanner))

let prop_fib_distances_dominate =
  QCheck.Test.make ~name:"fibonacci: spanner distances dominate" ~count:10
    QCheck.(int_range 20 80)
    (fun n ->
      let g = Gen.connected_gnp (Util.Prng.create ~seed:n) ~n ~p:0.1 in
      let r = Fibonacci.build ~o:2 ~ell:3 ~seed:n g in
      let h = Edge_set.to_graph r.Fibonacci.spanner in
      let ok = ref true in
      let dg = Bfs.distances g ~src:0 and dh = Bfs.distances h ~src:0 in
      Array.iteri
        (fun v d -> if d >= 0 && dh.(v) >= 0 && dh.(v) < d then ok := false)
        dg;
      !ok)

let suite =
  [
    ( "fib.params",
      [
        Alcotest.test_case "f/h recurrences" `Quick test_params_fh_recurrences;
        Alcotest.test_case "qs monotone" `Quick test_params_qs_monotone;
        Alcotest.test_case "default order" `Quick test_params_default_order_is_sparsest;
        Alcotest.test_case "Theorem 7 ell" `Quick test_params_theorem7_ell;
        Alcotest.test_case "radius" `Quick test_params_radius;
        Alcotest.test_case "level sizes" `Quick test_params_level_sizes;
        Alcotest.test_case "rejects bad args" `Quick test_params_rejects_bad;
        Alcotest.test_case "budgeted ratios (Thm 8)" `Quick test_params_budgeted_ratios;
        Alcotest.test_case "budgeted noop" `Quick test_params_budgeted_noop_when_generous;
      ] );
    ( "fib.sequential",
      [
        Alcotest.test_case "connectivity" `Quick test_fib_connectivity;
        Alcotest.test_case "stretch within stage bound" `Quick
          test_fib_stretch_within_stage_bound;
        Alcotest.test_case "parent forest present" `Quick test_fib_parent_forest_present;
        Alcotest.test_case "size tradeoff in o" `Quick test_fib_size_tradeoff;
        Alcotest.test_case "stretch tradeoff in o" `Quick test_fib_stretch_tradeoff;
        Alcotest.test_case "ball strictness" `Quick test_fib_ball_strictness;
        Alcotest.test_case "per-level stats" `Quick test_fib_per_level_stats;
        Alcotest.test_case "Lemma 7 level sizes" `Quick test_fib_lemma7_level_sizes;
        Alcotest.test_case "path graph" `Quick test_fib_path_graph;
        QCheck_alcotest.to_alcotest prop_fib_connectivity;
        QCheck_alcotest.to_alcotest prop_fib_distances_dominate;
      ] );
    ( "fib.distributed",
      [
        Alcotest.test_case "matches sequential (unblocked)" `Quick
          test_fib_dist_matches_sequential_unblocked;
        Alcotest.test_case "stretch near sequential" `Quick
          test_fib_dist_stretch_never_worse_than_seq_bound;
        Alcotest.test_case "budget respected" `Quick test_fib_dist_budget_respected;
        Alcotest.test_case "blocking on tiny budget" `Quick
          test_fib_dist_blocking_triggers_on_tiny_budget;
        Alcotest.test_case "rounds scale with radius" `Quick
          test_fib_dist_rounds_scale_with_radius;
      ] );
  ]
