(* Second wave of property and integration tests: Plan invariants over
   random parameters, cross-module integrations (skeleton of the
   lower-bound gadget, oracle vs spanner), and API edge cases. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

module G = Graphlib.Graph
module Gen = Graphlib.Gen
module Edge_set = Graphlib.Edge_set
module Metrics = Graphlib.Metrics
module Gadget = Graphlib.Gadget
module Plan = Spanner.Plan

(* ------------------------------------------------------------------ *)
(* Plan invariants over random parameters *)

let prop_plan_invariants =
  QCheck.Test.make ~name:"plan: structural invariants for random (n, d, eps)" ~count:60
    QCheck.(triple (int_range 2 1_000_000) (int_range 2 32) (int_range 1 10))
    (fun (n, d, e10) ->
      (* clamp: some qcheck shrinkers step outside int_range *)
      let n = Stdlib.max 2 n and d = Stdlib.max 2 d in
      let e10 = Stdlib.max 1 (Stdlib.min 10 e10) in
      let eps = float_of_int e10 /. 10. in
      let plan = Plan.make ~n ~d ~eps () in
      let calls = plan.Plan.calls in
      let ncalls = Array.length calls in
      let ok = ref (ncalls >= 1) in
      (* last call kills *)
      if calls.(ncalls - 1).Plan.p <> 0. then ok := false;
      (* density nondecreasing, reaches n; indexes sequential; rounds
         nondecreasing *)
      let prev_density = ref 0. in
      Array.iteri
        (fun i c ->
          if c.Plan.index <> i then ok := false;
          if c.Plan.density_after < !prev_density then ok := false;
          prev_density := c.Plan.density_after;
          if c.Plan.p < 0. || c.Plan.p >= 1. then ok := false;
          if i > 0 && c.Plan.round < calls.(i - 1).Plan.round then ok := false)
        calls;
      if calls.(ncalls - 1).Plan.density_after < float_of_int n then ok := false;
      (* schedule stays short: well under 80 calls even at n = 10^6 *)
      if ncalls > 80 then ok := false;
      !ok)

let prop_sampling_within_plan =
  QCheck.Test.make ~name:"sampling: tape indexes lie within the plan" ~count:40
    QCheck.(pair (int_range 2 5_000) (int_bound 1000))
    (fun (n, seed) ->
      let plan = Plan.make ~n () in
      let s = Spanner.Sampling.draw (Util.Prng.create ~seed) ~n plan in
      let ncalls = Array.length plan.Plan.calls in
      let ok = ref true in
      for v = 0 to n - 1 do
        let fu = Spanner.Sampling.first_unsampled s v in
        if fu < 0 || fu >= ncalls then ok := false
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Cross-module integration *)

let test_skeleton_of_gadget () =
  (* Run the paper's own algorithm on the paper's own lower-bound
     graph: it must preserve connectivity and every chain edge (chains
     are bridges). *)
  let gd = Gadget.create ~tau:3 ~sigma:4 ~kappa:5 in
  let g = gd.Gadget.graph in
  let r = Spanner.Skeleton.build ~seed:7 g in
  let h = Edge_set.to_graph r.Spanner.Skeleton.spanner in
  checkb "connected" true (G.is_connected h);
  (* Pendant-chain edges are bridges: all must be kept. *)
  let u, v = Gadget.observers gd in
  let d = Graphlib.Bfs.distances h ~src:u in
  checkb "observers still connected" true (d.(v) >= 0)

let test_skeleton_dist_on_king_torus_eps1 () =
  let g = Gen.king_torus ~width:14 ~height:14 in
  let n = G.n g in
  let plan = Plan.make ~n ~eps:1.0 () in
  let sampling = Spanner.Sampling.draw (Util.Prng.create ~seed:3) ~n plan in
  let seq = Spanner.Skeleton.build_with ~plan ~sampling g in
  let dist = Spanner.Skeleton_dist.build_with ~plan ~sampling g in
  checki "seq = dist at eps=1"
    (Edge_set.cardinal seq.Spanner.Skeleton.spanner)
    (Edge_set.cardinal dist.Spanner.Skeleton_dist.spanner)

let test_oracle_consistent_with_spanner_distances () =
  (* Oracle estimates and Baswana-Sen spanner distances both
     2k-1-approximate; the oracle may not exceed (2k-1) * exact, and
     both must agree on connectivity. *)
  let g = Gen.connected_gnp (Util.Prng.create ~seed:4) ~n:150 ~p:0.06 in
  let k = 2 in
  let o = Oracle.Distance_oracle.build ~k ~seed:9 g in
  let bs = Baseline.Baswana_sen.build ~k ~seed:9 g in
  let h = Edge_set.to_graph bs.Baseline.Baswana_sen.spanner in
  for u = 0 to 20 do
    let dh = Graphlib.Bfs.distances h ~src:u in
    let dg = Graphlib.Bfs.distances g ~src:u in
    for v = 0 to G.n g - 1 do
      if u <> v then begin
        match Oracle.Distance_oracle.query o u v with
        | Some est ->
            checkb "oracle sound" true (est >= dg.(v));
            checkb "spanner sound" true (dh.(v) >= dg.(v))
        | None -> checki "both disconnected" (-1) dg.(v)
      end
    done
  done

let test_fib_dist_on_gadget () =
  (* The Fibonacci distributed protocol must run on the gadget too
     (long chains = deep balls). *)
  let gd = Gadget.create ~tau:2 ~sigma:3 ~kappa:3 in
  let g = gd.Gadget.graph in
  let r = Spanner.Fibonacci_dist.build ~o:2 ~ell:2 ~t:1 ~seed:5 g in
  let h = Edge_set.to_graph r.Spanner.Fibonacci_dist.spanner in
  let _, cg = G.components g and _, ch = G.components h in
  checki "components preserved" cg ch

(* ------------------------------------------------------------------ *)
(* API edge cases *)

let test_skeleton_trivial_graphs () =
  List.iter
    (fun (name, g) ->
      let r = Spanner.Skeleton.build ~seed:1 g in
      checkb name true (Edge_set.cardinal r.Spanner.Skeleton.spanner <= G.m g))
    [
      ("empty graph", G.of_edges ~n:0 []);
      ("single vertex", G.of_edges ~n:1 []);
      ("single edge", G.of_edges ~n:2 [ (0, 1) ]);
      ("two isolated", G.of_edges ~n:2 []);
      ("triangle", Gen.complete 3);
    ]

let test_fibonacci_trivial_graphs () =
  List.iter
    (fun (name, g) ->
      let r = Spanner.Fibonacci.build ~o:1 ~ell:2 ~seed:1 g in
      checkb name true (Edge_set.cardinal r.Spanner.Fibonacci.spanner <= G.m g))
    [
      ("single vertex", G.of_edges ~n:1 []);
      ("single edge", G.of_edges ~n:2 [ (0, 1) ]);
      ("triangle", Gen.complete 3);
    ]

let test_single_edge_kept () =
  (* Any correct spanner of a single edge keeps it. *)
  let g = G.of_edges ~n:2 [ (0, 1) ] in
  checki "skeleton keeps bridge" 1
    (Edge_set.cardinal (Spanner.Skeleton.build ~seed:2 g).Spanner.Skeleton.spanner);
  checki "fibonacci keeps bridge" 1
    (Edge_set.cardinal (Spanner.Fibonacci.build ~o:1 ~ell:2 ~seed:2 g).Spanner.Fibonacci.spanner);
  checki "baswana-sen keeps bridge" 1
    (Edge_set.cardinal (Baseline.Baswana_sen.build ~k:2 ~seed:2 g).Baseline.Baswana_sen.spanner)

let prop_contribution_argmax_is_local_max =
  QCheck.Test.make ~name:"contribution: argmax_q beats its neighbors" ~count:50
    QCheck.(pair (int_range 1 19) (int_bound 200))
    (fun (p20, xprev10) ->
      let p = float_of_int p20 /. 20. in
      let xprev = float_of_int xprev10 /. 10. in
      let q = Spanner.Contribution.argmax_q ~p ~xprev in
      (* recompute the step value locally *)
      let step q =
        let qf = float_of_int q in
        let keep = (1. -. p) ** (qf +. 1.) in
        ((1. -. keep) *. xprev) +. (qf *. keep)
        +. ((1. -. p) *. (1. -. ((1. -. p) ** qf)))
      in
      let v = step q in
      v >= step (q + 1) -. 1e-12 && (q = 0 || v >= step (q - 1) -. 1e-12))

let prop_tower_rounds_cover_n =
  QCheck.Test.make ~name:"tower: rounds_for covers n" ~count:50
    QCheck.(pair (int_range 2 1_000_000) (int_range 2 16))
    (fun (n, d) ->
      let l = Util.Tower.rounds_for ~d ~n in
      (* product s_1^2..s_{l-1}^2 * s_l >= n, saturating *)
      let mul a b = if a > Util.Tower.cap / b then Util.Tower.cap else a * b in
      let acc = ref 1 in
      for i = 1 to l - 1 do
        let s = Util.Tower.s ~d i in
        acc := mul (mul !acc s) s
      done;
      mul !acc (Util.Tower.s ~d l) >= n)

let suite =
  [
    ( "more.plan",
      [
        QCheck_alcotest.to_alcotest prop_plan_invariants;
        QCheck_alcotest.to_alcotest prop_sampling_within_plan;
      ] );
    ( "more.integration",
      [
        Alcotest.test_case "skeleton of the gadget" `Quick test_skeleton_of_gadget;
        Alcotest.test_case "dist=seq on king torus, eps=1" `Quick
          test_skeleton_dist_on_king_torus_eps1;
        Alcotest.test_case "oracle vs spanner soundness" `Quick
          test_oracle_consistent_with_spanner_distances;
        Alcotest.test_case "fibonacci dist on gadget" `Quick test_fib_dist_on_gadget;
      ] );
    ( "more.edge_cases",
      [
        Alcotest.test_case "skeleton trivial graphs" `Quick test_skeleton_trivial_graphs;
        Alcotest.test_case "fibonacci trivial graphs" `Quick test_fibonacci_trivial_graphs;
        Alcotest.test_case "bridges kept" `Quick test_single_edge_kept;
        QCheck_alcotest.to_alcotest prop_contribution_argmax_is_local_max;
        QCheck_alcotest.to_alcotest prop_tower_rounds_cover_n;
      ] );
  ]
