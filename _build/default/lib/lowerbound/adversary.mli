(** Empirical form of the Section 3 lower bounds.

    The theorems argue: in [tau] rounds, every block edge of
    [G(tau, sigma, kappa)] looks the same (identical
    [tau]-neighborhoods), so an algorithm keeping only a [q] fraction
    of them discards each — in particular each {e critical} edge —
    with probability [1 - q]; chain edges cannot be discarded at all
    (dropping one would disconnect, for all the algorithm can tell).
    Each missing critical edge costs the observer pair exactly +2
    (the length-3 replacement inside the block).

    This module simulates the strongest legal [tau]-round algorithm:
    keep every chain edge and an independent [q]-fraction of block
    edges, then measure the observers' distortion. *)

type outcome = {
  kept_block_edges : int;
  total_edges : int;  (** spanner size: chains + kept block edges *)
  discarded_critical : int;
  additive : int;  (** measured delta_H(u,v) - delta(u,v) *)
  multiplicative : float;
  disconnected : bool;  (** observers separated (requires losing every
                            replacement path too — essentially never) *)
}

val run_once : Util.Prng.t -> Graphlib.Gadget.t -> keep:float -> outcome

type summary = {
  trials : int;
  keep : float;
  mean_additive : float;
  max_additive : int;
  mean_discarded_critical : float;
  replacement_exact : int;
      (** trials where additive = 2 * discarded critical edges exactly *)
  predicted_additive : float;  (** 2 (1 - keep) kappa *)
}

val run : Util.Prng.t -> Graphlib.Gadget.t -> keep:float -> trials:int -> summary

val average_pair_distortion :
  Util.Prng.t -> Graphlib.Gadget.t -> keep:float -> pairs:int -> float
(** Theorem 4's second claim (and footnote 7): the distortion is not an
    artifact of one worst pair — for {e random} vertex pairs the
    expected additive distortion is still [Omega(zeta^2 tau^-2
    n^(1-delta))].  Returns the mean additive distortion over [pairs]
    uniformly random connected pairs on a single sampled spanner. *)

(** {1 Per-theorem parameter choices} *)

type setup = {
  gadget : Graphlib.Gadget.t;
  keep_fraction : float;
  tau : int;
  label : string;
}

val theorem4 : n:int -> delta:float -> zeta:float -> tau:int -> setup
(** The [(1+eps, beta)] bound: [c = 2/zeta], keep [1/c + 1/(c kappa)].
    [n] is the target vertex budget; the realized gadget is built from
    {!Graphlib.Gadget.paper_parameters}. *)

val theorem5 : n:int -> delta:float -> beta:float -> setup
(** Additive-beta bound: [tau = sqrt(n^(1-delta)/(4 beta)) - 6],
    [kappa = 2 beta], keep one half. *)

val theorem6 : n:int -> nu:float -> xi:float -> c:float -> setup
(** Sublinear-additive bound ([d + c d^(1-nu)] spanners of size
    [n^(1+xi)]): the proof's choices of [tau, sigma, kappa]. *)
