lib/lowerbound/adversary.ml: Array Float Graphlib List Printf Stdlib Util
