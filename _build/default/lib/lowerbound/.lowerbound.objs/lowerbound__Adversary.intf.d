lib/lowerbound/adversary.mli: Graphlib Util
