module Graph = Graphlib.Graph
module Gadget = Graphlib.Gadget
module Edge_set = Graphlib.Edge_set
module Bfs = Graphlib.Bfs

type outcome = {
  kept_block_edges : int;
  total_edges : int;
  discarded_critical : int;
  additive : int;
  multiplicative : float;
  disconnected : bool;
}

let run_once rng (gd : Gadget.t) ~keep =
  let g = gd.Gadget.graph in
  let s = Edge_set.create g in
  List.iter (Edge_set.add s) gd.Gadget.chain_edges;
  let kept_block = ref 0 in
  List.iter
    (fun e ->
      if Util.Prng.bernoulli rng keep then begin
        Edge_set.add s e;
        incr kept_block
      end)
    gd.Gadget.block_edges;
  (* Only the criticals on the observers' unique shortest path count
     (blocks [i1, i2) in the paper's notation): the last block's
     critical edge lies beyond the second observer. *)
  let discarded_critical = ref 0 in
  for i = 0 to gd.Gadget.kappa - 2 do
    if not (Edge_set.mem s gd.Gadget.critical_edges.(i)) then incr discarded_critical
  done;
  let discarded_critical = !discarded_critical in
  let u, v = Gadget.observers gd in
  let base = (Bfs.distances g ~src:u).(v) in
  let h = Edge_set.to_graph s in
  let dh = (Bfs.distances h ~src:u).(v) in
  {
    kept_block_edges = !kept_block;
    total_edges = Edge_set.cardinal s;
    discarded_critical;
    additive = (if dh < 0 then -1 else dh - base);
    multiplicative = (if dh < 0 then infinity else float_of_int dh /. float_of_int base);
    disconnected = dh < 0;
  }

type summary = {
  trials : int;
  keep : float;
  mean_additive : float;
  max_additive : int;
  mean_discarded_critical : float;
  replacement_exact : int;
  predicted_additive : float;
}

let run rng (gd : Gadget.t) ~keep ~trials =
  if trials < 1 then invalid_arg "Adversary.run: trials must be >= 1";
  let add = Util.Stats.create () in
  let disc = Util.Stats.create () in
  let exact = ref 0 in
  let max_add = ref 0 in
  for _ = 1 to trials do
    let o = run_once rng gd ~keep in
    if not o.disconnected then begin
      Util.Stats.add_int add o.additive;
      Util.Stats.add_int disc o.discarded_critical;
      if o.additive = 2 * o.discarded_critical then incr exact;
      if o.additive > !max_add then max_add := o.additive
    end
  done;
  {
    trials;
    keep;
    mean_additive = Util.Stats.mean add;
    max_additive = !max_add;
    mean_discarded_critical = Util.Stats.mean disc;
    replacement_exact = !exact;
    predicted_additive = 2. *. (1. -. keep) *. float_of_int (gd.Gadget.kappa - 1);
  }

let average_pair_distortion rng (gd : Gadget.t) ~keep ~pairs =
  let g = gd.Gadget.graph in
  let s = Edge_set.create g in
  List.iter (Edge_set.add s) gd.Gadget.chain_edges;
  List.iter
    (fun e -> if Util.Prng.bernoulli rng keep then Edge_set.add s e)
    gd.Gadget.block_edges;
  let h = Edge_set.to_graph s in
  let n = Graph.n g in
  let acc = Util.Stats.create () in
  let budget = ref (20 * pairs) in
  while Util.Stats.count acc < pairs && !budget > 0 do
    decr budget;
    let u = Util.Prng.int rng n and v = Util.Prng.int rng n in
    if u <> v then begin
      let dg = (Bfs.distances g ~src:u).(v) in
      let dh = (Bfs.distances h ~src:u).(v) in
      if dg > 0 && dh >= 0 then Util.Stats.add_int acc (dh - dg)
    end
  done;
  Util.Stats.mean acc

type setup = {
  gadget : Gadget.t;
  keep_fraction : float;
  tau : int;
  label : string;
}

let clamp_tau tau = Stdlib.max 1 tau

let theorem4 ~n ~delta ~zeta ~tau =
  let c = 2. /. zeta in
  let sigma, kappa = Gadget.paper_parameters ~n ~delta ~c ~tau in
  let gadget = Gadget.create ~tau ~sigma ~kappa in
  let keep = (1. /. c) +. (1. /. (c *. float_of_int kappa)) in
  {
    gadget;
    keep_fraction = Stdlib.min 1. keep;
    tau;
    label = Printf.sprintf "thm4 n=%d delta=%.2f zeta=%.2f tau=%d" n delta zeta tau;
  }

let theorem5 ~n ~delta ~beta =
  let nf = float_of_int n in
  let tau =
    clamp_tau
      (int_of_float (Float.round (sqrt ((nf ** (1. -. delta)) /. (4. *. beta)) -. 6.)))
  in
  let sigma = Stdlib.max 2 (int_of_float (Float.round (2. *. float_of_int (tau + 6) *. (nf ** delta)))) in
  let kappa = Stdlib.max 2 (int_of_float (Float.round (2. *. beta))) in
  let gadget = Gadget.create ~tau ~sigma ~kappa in
  let keep = 0.5 +. (1. /. (2. *. float_of_int kappa)) in
  {
    gadget;
    keep_fraction = keep;
    tau;
    label = Printf.sprintf "thm5 n=%d delta=%.2f beta=%.1f tau=%d" n delta beta tau;
  }

let theorem6 ~n ~nu ~xi ~c =
  let nf = float_of_int n in
  let tau = clamp_tau (int_of_float (Float.round ((nf ** (nu *. (1. -. xi) /. (1. +. nu))) /. c)) - 6) in
  let sigma =
    Stdlib.max 2
      (int_of_float (Float.round (4. /. c *. (nf ** ((nu +. xi) /. (1. +. nu))))))
  in
  let kappa =
    Stdlib.max 2
      (int_of_float
         (Float.round (c *. c /. 4. *. (nf ** ((1. -. xi) *. (1. -. nu) /. (1. +. nu))))))
  in
  let gadget = Gadget.create ~tau ~sigma ~kappa in
  {
    gadget;
    keep_fraction = 0.25;
    tau;
    label = Printf.sprintf "thm6 n=%d nu=%.2f xi=%.2f tau=%d" n nu xi tau;
  }
