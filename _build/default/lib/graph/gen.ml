module Prng = Util.Prng

let path n =
  let b = Graph.Builder.create ~n in
  for i = 0 to n - 2 do
    Graph.Builder.add_edge b i (i + 1)
  done;
  Graph.Builder.build b

let cycle n =
  let b = Graph.Builder.create ~n in
  for i = 0 to n - 2 do
    Graph.Builder.add_edge b i (i + 1)
  done;
  if n > 2 then Graph.Builder.add_edge b (n - 1) 0;
  Graph.Builder.build b

let complete n =
  let b = Graph.Builder.create ~n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Graph.Builder.add_edge b i j
    done
  done;
  Graph.Builder.build b

let complete_bipartite a bn =
  let b = Graph.Builder.create ~n:(a + bn) in
  for i = 0 to a - 1 do
    for j = 0 to bn - 1 do
      Graph.Builder.add_edge b i (a + j)
    done
  done;
  Graph.Builder.build b

let star n =
  let b = Graph.Builder.create ~n in
  for i = 1 to n - 1 do
    Graph.Builder.add_edge b 0 i
  done;
  Graph.Builder.build b

let grid ~width ~height =
  let id x y = (y * width) + x in
  let b = Graph.Builder.create ~n:(width * height) in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if x + 1 < width then Graph.Builder.add_edge b (id x y) (id (x + 1) y);
      if y + 1 < height then Graph.Builder.add_edge b (id x y) (id x (y + 1))
    done
  done;
  Graph.Builder.build b

let torus ~width ~height =
  let id x y = (y * width) + x in
  let b = Graph.Builder.create ~n:(width * height) in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      Graph.Builder.add_edge b (id x y) (id ((x + 1) mod width) y);
      Graph.Builder.add_edge b (id x y) (id x ((y + 1) mod height))
    done
  done;
  Graph.Builder.build b

let king_torus ~width ~height =
  let id x y = (y * width) + x in
  let b = Graph.Builder.create ~n:(width * height) in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      List.iter
        (fun (dx, dy) ->
          let x' = (x + dx + width) mod width and y' = (y + dy + height) mod height in
          Graph.Builder.add_edge b (id x y) (id x' y'))
        [ (1, 0); (0, 1); (1, 1); (1, -1) ]
    done
  done;
  Graph.Builder.build b

let hypercube ~dims =
  let n = 1 lsl dims in
  let b = Graph.Builder.create ~n in
  for u = 0 to n - 1 do
    for bit = 0 to dims - 1 do
      let v = u lxor (1 lsl bit) in
      if u < v then Graph.Builder.add_edge b u v
    done
  done;
  Graph.Builder.build b

(* Translate a monotonically increasing stream of triangular pair
   indices into (i, j) pairs, advancing the row cursor incrementally. *)
let add_pairs_by_index b ~n indices =
  let row = ref 0 in
  let row_end = ref (n - 1) in
  (* row [i] covers indices [row_start, row_start + (n-1-i)). *)
  let row_start = ref 0 in
  List.iter
    (fun k ->
      while k >= !row_end do
        incr row;
        row_start := !row_end;
        row_end := !row_end + (n - 1 - !row)
      done;
      let j = !row + 1 + (k - !row_start) in
      Graph.Builder.add_edge b !row j)
    indices

(* Gap-skipping G(n,p): enumerate present pairs directly by jumping
   geometric(1-p) gaps through the lexicographic pair order. *)
let gnp rng ~n ~p =
  let b = Graph.Builder.create ~n in
  if p > 0. && n > 1 then begin
    if p >= 1. then
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          Graph.Builder.add_edge b i j
        done
      done
    else begin
      let log1p = log (1. -. p) in
      let total = n * (n - 1) / 2 in
      let indices = ref [] in
      let idx = ref (-1) in
      let continue = ref true in
      while !continue do
        let u = Prng.float rng 1. in
        let gap = 1 + int_of_float (Float.floor (log (1. -. u) /. log1p)) in
        idx := !idx + gap;
        if !idx >= total then continue := false else indices := !idx :: !indices
      done;
      add_pairs_by_index b ~n (List.rev !indices)
    end
  end;
  Graph.Builder.build b

let gnm rng ~n ~m =
  let total = if n < 2 then 0 else n * (n - 1) / 2 in
  let m = Stdlib.min m total in
  let b = Graph.Builder.create ~n in
  if m > 0 then begin
    let chosen = Prng.sample_without_replacement rng ~k:m ~n:total in
    add_pairs_by_index b ~n (Array.to_list chosen)
  end;
  Graph.Builder.build b

let preferential_attachment rng ~n ~k =
  let b = Graph.Builder.create ~n in
  if n > 1 then begin
    (* Growable endpoint multiset: each edge contributes both endpoints,
       so a uniform draw from it is degree-proportional. *)
    let cap = ref (Stdlib.max 16 (4 * n)) in
    let endpoints = ref (Array.make !cap 0) in
    let len = ref 0 in
    let push x =
      if !len = !cap then begin
        cap := 2 * !cap;
        let bigger = Array.make !cap 0 in
        Array.blit !endpoints 0 bigger 0 !len;
        endpoints := bigger
      end;
      !endpoints.(!len) <- x;
      incr len
    in
    for v = 1 to n - 1 do
      let attach = Stdlib.min k v in
      let targets = Hashtbl.create attach in
      let tries = ref 0 in
      while Hashtbl.length targets < attach && !tries < 20 * attach do
        incr tries;
        let t = if !len = 0 then v - 1 else !endpoints.(Prng.int rng !len) in
        if t <> v then Hashtbl.replace targets t ()
      done;
      if Hashtbl.length targets = 0 then Hashtbl.replace targets (v - 1) ();
      Hashtbl.iter
        (fun t () ->
          Graph.Builder.add_edge b v t;
          push v;
          push t)
        targets
    done
  end;
  Graph.Builder.build b

let random_regularish rng ~n ~d =
  let b = Graph.Builder.create ~n in
  if n > 1 && d > 0 then begin
    let stubs = Array.make (n * d) 0 in
    for v = 0 to n - 1 do
      for j = 0 to d - 1 do
        stubs.((v * d) + j) <- v
      done
    done;
    Prng.shuffle rng stubs;
    let total = Array.length stubs in
    let i = ref 0 in
    while !i + 1 < total do
      Graph.Builder.add_edge b stubs.(!i) stubs.(!i + 1);
      i := !i + 2
    done
  end;
  Graph.Builder.build b

let caterpillar ~spine ~legs =
  let n = spine * (1 + legs) in
  let b = Graph.Builder.create ~n in
  for i = 0 to spine - 2 do
    Graph.Builder.add_edge b i (i + 1)
  done;
  for i = 0 to spine - 1 do
    for leg = 0 to legs - 1 do
      Graph.Builder.add_edge b i (spine + (i * legs) + leg)
    done
  done;
  Graph.Builder.build b

let random_geometric rng ~n ~radius =
  if radius < 0. then invalid_arg "Gen.random_geometric: negative radius";
  let xs = Array.init n (fun _ -> Prng.float rng 1.) in
  let ys = Array.init n (fun _ -> Prng.float rng 1.) in
  let b = Graph.Builder.create ~n in
  (* Grid-bucket the points so the expected cost is near-linear. *)
  let cell = Stdlib.max 1e-6 radius in
  let cells = Stdlib.max 1 (int_of_float (1. /. cell)) in
  let bucket : (int, int list) Hashtbl.t = Hashtbl.create (2 * n) in
  let key i j = (i * (cells + 2)) + j in
  let cell_of x = Stdlib.min (cells - 1) (int_of_float (x /. cell)) in
  for v = 0 to n - 1 do
    let kx = cell_of xs.(v) and ky = cell_of ys.(v) in
    let kk = key kx ky in
    Hashtbl.replace bucket kk (v :: Option.value ~default:[] (Hashtbl.find_opt bucket kk))
  done;
  let r2 = radius *. radius in
  for v = 0 to n - 1 do
    let kx = cell_of xs.(v) and ky = cell_of ys.(v) in
    for dx = -1 to 1 do
      for dy = -1 to 1 do
        let i = kx + dx and j = ky + dy in
        if i >= 0 && i < cells && j >= 0 && j < cells then
          List.iter
            (fun w ->
              if w > v then begin
                let ddx = xs.(v) -. xs.(w) and ddy = ys.(v) -. ys.(w) in
                if (ddx *. ddx) +. (ddy *. ddy) <= r2 then Graph.Builder.add_edge b v w
              end)
            (Option.value ~default:[] (Hashtbl.find_opt bucket (key i j)))
      done
    done
  done;
  Graph.Builder.build b

let ensure_connected rng g =
  let label, count = Graph.components g in
  if count <= 1 then g
  else begin
    let reps = Array.make count (-1) in
    Array.iteri (fun v c -> if reps.(c) < 0 then reps.(c) <- v) label;
    let b = Graph.Builder.create ~n:(Graph.n g) in
    Graph.iter_edges g (fun _ u v -> Graph.Builder.add_edge b u v);
    for c = 1 to count - 1 do
      (* Join each later component to a random earlier representative to
         avoid creating one long artificial path. *)
      let prev = reps.(Prng.int rng c) in
      Graph.Builder.add_edge b prev reps.(c)
    done;
    Graph.Builder.build b
  end

let connected_gnp rng ~n ~p = ensure_connected rng (gnp rng ~n ~p)
