let to_channel g oc =
  Printf.fprintf oc "%d %d\n" (Graph.n g) (Graph.m g);
  Graph.iter_edges g (fun _ u v -> Printf.fprintf oc "%d %d\n" u v)

let write g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel g oc)

let of_channel ic =
  let read_line () =
    let rec next () =
      let line = String.trim (input_line ic) in
      if line = "" || line.[0] = '#' then next () else line
    in
    next ()
  in
  let header = read_line () in
  match String.split_on_char ' ' header with
  | [ ns; ms ] ->
      let n = int_of_string ns and m = int_of_string ms in
      let b = Graph.Builder.create ~n in
      for _ = 1 to m do
        match String.split_on_char ' ' (read_line ()) with
        | [ us; vs ] -> Graph.Builder.add_edge b (int_of_string us) (int_of_string vs)
        | _ -> failwith "Io.read: malformed edge line"
      done;
      Graph.Builder.build b
  | _ -> failwith "Io.read: malformed header"

let read path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)
