type report = {
  pairs : int;
  max_mult : float;
  avg_mult : float;
  max_add : int;
  avg_add : float;
  disconnected : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "pairs=%d stretch(max=%.3f avg=%.3f) additive(max=%d avg=%.2f) lost=%d"
    r.pairs r.max_mult r.avg_mult r.max_add r.avg_add r.disconnected

type acc = {
  mutable pairs : int;
  mutable max_mult : float;
  mutable sum_mult : float;
  mutable max_add : int;
  mutable sum_add : float;
  mutable disconnected : int;
}

let fresh_acc () =
  {
    pairs = 0;
    max_mult = 1.;
    sum_mult = 0.;
    max_add = 0;
    sum_add = 0.;
    disconnected = 0;
  }

let observe acc ~dg ~dh =
  if dg > 0 then begin
    if dh < 0 then acc.disconnected <- acc.disconnected + 1
    else begin
      acc.pairs <- acc.pairs + 1;
      let mult = float_of_int dh /. float_of_int dg in
      let extra = dh - dg in
      if mult > acc.max_mult then acc.max_mult <- mult;
      acc.sum_mult <- acc.sum_mult +. mult;
      if extra > acc.max_add then acc.max_add <- extra;
      acc.sum_add <- acc.sum_add +. float_of_int extra
    end
  end

let finish acc =
  let p = Stdlib.max 1 acc.pairs in
  {
    pairs = acc.pairs;
    max_mult = acc.max_mult;
    avg_mult = (if acc.pairs = 0 then 1. else acc.sum_mult /. float_of_int p);
    max_add = acc.max_add;
    avg_add = (if acc.pairs = 0 then 0. else acc.sum_add /. float_of_int p);
    disconnected = acc.disconnected;
  }

let check_same_universe g h =
  if Graph.n g <> Graph.n h then invalid_arg "Metrics: vertex sets differ"

let exact ~g ~h =
  check_same_universe g h;
  let acc = fresh_acc () in
  let n = Graph.n g in
  for u = 0 to n - 1 do
    let dg = Bfs.distances g ~src:u and dh = Bfs.distances h ~src:u in
    for v = u + 1 to n - 1 do
      if dg.(v) > 0 then observe acc ~dg:dg.(v) ~dh:dh.(v)
    done
  done;
  finish acc

let sample_sources rng g k =
  let n = Graph.n g in
  let k = Stdlib.min k n in
  Array.to_list (Util.Prng.sample_without_replacement rng ~k ~n)

let sampled rng ~g ~h ~sources =
  check_same_universe g h;
  let acc = fresh_acc () in
  List.iter
    (fun s ->
      let dg = Bfs.distances g ~src:s and dh = Bfs.distances h ~src:s in
      for v = 0 to Graph.n g - 1 do
        if v <> s && dg.(v) > 0 then observe acc ~dg:dg.(v) ~dh:dh.(v)
      done)
    (sample_sources rng g sources);
  finish acc

type profile = (int * Util.Stats.t) list

let distance_profile rng ~g ~h ~sources =
  check_same_universe g h;
  let buckets : (int, Util.Stats.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let dg = Bfs.distances g ~src:s and dh = Bfs.distances h ~src:s in
      for v = 0 to Graph.n g - 1 do
        if v <> s && dg.(v) > 0 && dh.(v) >= 0 then begin
          let st =
            match Hashtbl.find_opt buckets dg.(v) with
            | Some st -> st
            | None ->
                let st = Util.Stats.create () in
                Hashtbl.add buckets dg.(v) st;
                st
          in
          Util.Stats.add_int st dh.(v)
        end
      done)
    (sample_sources rng g sources);
  Hashtbl.fold (fun d st acc -> (d, st) :: acc) buckets []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let stretch_at_distance profile d =
  match List.assoc_opt d profile with
  | None -> None
  | Some st ->
      if Util.Stats.count st = 0 then None
      else Some (Util.Stats.mean st /. float_of_int d)
