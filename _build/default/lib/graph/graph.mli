(** Undirected, unweighted, simple graphs in compressed adjacency form.

    Vertices are integers [0 .. n-1].  Every undirected edge has a
    stable identifier in [0 .. m-1]; spanner algorithms return sets of
    edge identifiers, which keeps the mapping from contracted /
    auxiliary structures back to the original graph explicit (the
    paper's [pi^-1] notation). *)

type t

type edge = { u : int; v : int }
(** Normalized so that [u < v]. *)

(** {1 Construction} *)

module Builder : sig
  type graph := t
  type t

  val create : n:int -> t
  (** [create ~n] prepares a builder for a graph on [n] vertices. *)

  val add_edge : t -> int -> int -> unit
  (** Adds the undirected edge.  Self-loops and duplicate edges are
      silently dropped (the paper's contracted graphs are simple). *)

  val n : t -> int
  val edge_count : t -> int
  val build : t -> graph
end

val of_edges : n:int -> (int * int) list -> t
(** Convenience wrapper around {!Builder}. *)

(** {1 Accessors} *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of undirected edges. *)

val degree : t -> int -> int

val edge : t -> int -> edge
(** The endpoints of an edge identifier. *)

val edge_endpoints : t -> int -> int * int
(** [edge_endpoints g e] is [(u, v)] with [u < v]. *)

val find_edge : t -> int -> int -> int option
(** Edge identifier joining two vertices, if present.  Runs in
    O(min degree). *)

val mem_edge : t -> int -> int -> bool

val iter_neighbors : t -> int -> (int -> int -> unit) -> unit
(** [iter_neighbors g u f] calls [f v e] for every neighbor [v] of [u]
    via edge [e]. *)

val fold_neighbors : t -> int -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

val iter_edges : t -> (int -> int -> int -> unit) -> unit
(** [iter_edges g f] calls [f e u v] once per undirected edge, [u < v]. *)

val neighbors : t -> int -> int list
(** Neighbor list (freshly allocated; prefer {!iter_neighbors} in hot
    paths). *)

(** {1 Whole-graph helpers} *)

val is_connected : t -> bool
val components : t -> int array * int
(** [components g] is [(label, count)]: per-vertex component label in
    [0 .. count-1]. *)

val max_degree : t -> int
val average_degree : t -> float

val pp_summary : Format.formatter -> t -> unit
(** "n=…, m=…, avg deg …" one-liner. *)
