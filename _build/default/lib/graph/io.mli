(** Plain-text edge-list serialization.

    Format: first line "[n] [m]", then one "[u] [v]" line per edge.
    Lines starting with '#' are comments. *)

val write : Graph.t -> string -> unit
(** [write g path]. *)

val read : string -> Graph.t
(** @raise Failure on malformed input. *)

val to_channel : Graph.t -> out_channel -> unit
val of_channel : in_channel -> Graph.t
