(** Breadth-first search primitives.

    The multi-source variant implements exactly the paper's [p_i(u)]
    convention (Section 4.1): the nearest source, ties broken towards
    the source with the minimum identifier. *)

val distances : Graph.t -> src:int -> int array
(** Per-vertex distance from [src]; [-1] when unreachable. *)

type forest = {
  dist : int array;  (** [-1] when unreachable *)
  source : int array;  (** nearest source (min id among ties); [-1] unreachable *)
  parent : int array;  (** parent vertex towards the source; [-1] at sources *)
  parent_edge : int array;  (** edge to [parent]; [-1] at sources *)
}

val multi_source : ?radius:int -> Graph.t -> sources:int list -> forest
(** Level-synchronous BFS from all [sources] at distance 0.  Every
    reached vertex is labelled with its nearest source, ties broken by
    minimum source identifier; parent pointers are consistent with the
    labels (following [parent] reaches [source] along a shortest
    path whose every vertex carries the same label).  [radius] bounds
    the exploration depth (inclusive). *)

(** {1 Reusable truncated searches}

    The Fibonacci-spanner construction performs one truncated BFS per
    sampled vertex; [Workspace] amortizes the per-search allocations by
    resetting only the entries touched by the previous search. *)

module Workspace : sig
  type t

  val create : Graph.t -> t

  val run :
    t ->
    src:int ->
    radius:int ->
    on_visit:(v:int -> dist:int -> unit) ->
    unit
  (** BFS from [src] up to depth [radius] (inclusive); [on_visit] is
      called once per reached vertex in nondecreasing distance order,
      including [src] itself at distance 0. *)

  val dist : t -> int -> int
  (** Distance assigned by the latest [run]; [-1] if untouched. *)

  val parent_edge : t -> int -> int
  (** Edge towards the parent in the latest run's BFS tree; [-1] at the
      source or untouched vertices. *)

  val parent : t -> int -> int

  val path_edges_to_source : t -> int -> int list
  (** Edges of the tree path from a visited vertex back to the latest
      source. *)
end

val eccentricity : Graph.t -> int -> int
(** Largest finite distance from the vertex. *)

val diameter_lower_bound : Graph.t -> seeds:int list -> int
(** Max eccentricity over the seed vertices (a lower bound on the
    diameter; exact on trees when double-sweeped). *)
