(** The lower-bound graph [G(tau, sigma, kappa)] of the paper's
    Section 3 (Fig. 5).

    [kappa] complete [sigma × sigma] bipartite blocks in a row.  For
    consecutive blocks [i] and [i+1]: column 1 is joined by a path of
    length [tau + 1] (the fast lane next to the {e critical edge}), and
    every other column [j >= 2] by a path of length [tau + 5].  Chains
    of [tau + 1] extra vertices hang off the outer columns so every
    block vertex has a topologically identical [tau]-neighborhood.

    Blocks and columns are 0-based here (the paper is 1-based). *)

type t = {
  graph : Graph.t;
  tau : int;
  sigma : int;
  kappa : int;
  left : int array array;  (** [left.(i).(j)] = v_{L,i,j} *)
  right : int array array;  (** [right.(i).(j)] = v_{R,i,j} *)
  critical_edges : int array;
      (** edge ids of (v_{L,i,0}, v_{R,i,0}), one per block *)
  block_edges : int list;  (** all bipartite-block edge ids *)
  chain_edges : int list;  (** all path/chain edge ids *)
}

val create : tau:int -> sigma:int -> kappa:int -> t
(** Requires [tau >= 1], [sigma >= 1], [kappa >= 1]. *)

val hop_length : t -> int
(** Distance from [v_{L,i,0}] to [v_{L,i+1,0}] along the critical lane:
    [tau + 2]. *)

val observers : t -> int * int
(** The pair [(v_{L,0,0}, v_{L,kappa-1,0})] whose unique shortest path
    uses every critical edge — the pair the theorems measure. *)

val paper_parameters :
  n:int -> delta:float -> c:float -> tau:int -> int * int
(** [(sigma, kappa)] as chosen in the proof of Theorem 3:
    [sigma = c (tau+6) n^delta], [kappa = n^(1-delta) / (c (tau+6)^2)],
    both clamped to at least 1. *)
