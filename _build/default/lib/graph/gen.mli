(** Graph generators for tests, examples and experiments.

    All randomized generators take an explicit {!Util.Prng.t}. *)

val path : int -> Graph.t
val cycle : int -> Graph.t
val complete : int -> Graph.t
val complete_bipartite : int -> int -> Graph.t
val star : int -> Graph.t
(** [star n]: vertex 0 joined to [1 .. n-1]. *)

val grid : width:int -> height:int -> Graph.t
val torus : width:int -> height:int -> Graph.t

val king_torus : width:int -> height:int -> Graph.t
(** Torus with diagonal (king-move) adjacency: degree 8, diameter
    [max width height / 2].  Dense enough to sparsify while keeping a
    large diameter — the workload for distortion-vs-distance
    experiments. *)

val hypercube : dims:int -> Graph.t

val gnp : Util.Prng.t -> n:int -> p:float -> Graph.t
(** Erdős–Rényi [G(n,p)], sampled with geometric gap-skipping so the
    cost is proportional to the number of realized edges. *)

val gnm : Util.Prng.t -> n:int -> m:int -> Graph.t
(** Uniform graph with exactly [min m (n choose 2)] edges. *)

val preferential_attachment : Util.Prng.t -> n:int -> k:int -> Graph.t
(** Barabási–Albert-style: each new vertex attaches to [k] endpoints
    drawn proportionally to degree. Connected by construction. *)

val random_regularish : Util.Prng.t -> n:int -> d:int -> Graph.t
(** Configuration-model graph with degrees ≤ [d] and average degree
    close to [d] (collisions and loops dropped rather than resampled). *)

val caterpillar : spine:int -> legs:int -> Graph.t
(** A path of [spine] vertices, each with [legs] pendant vertices. *)

val random_geometric : Util.Prng.t -> n:int -> radius:float -> Graph.t
(** Unit-square random geometric graph: [n] uniform points, an edge
    between every pair within Euclidean distance [radius].  The
    workload family of the geometric-spanner literature the paper's
    §1.4 points at. *)

val connected_gnp : Util.Prng.t -> n:int -> p:float -> Graph.t
(** [gnp] patched into one component (component representatives chained
    with extra edges).  Used when an experiment requires connectivity. *)

val ensure_connected : Util.Prng.t -> Graph.t -> Graph.t
(** Identity on connected graphs; otherwise adds one random edge
    between consecutive components. *)
