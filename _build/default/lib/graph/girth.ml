(* BFS from every vertex; every non-tree edge (u, w) with both endpoints
   reached closes a walk of length dist u + dist w + 1 through the
   root, and every shortest cycle is witnessed exactly this way from
   any of its vertices. *)
let girth g =
  let n = Graph.n g in
  let best = ref max_int in
  let dist = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    Array.fill dist 0 n (-1);
    Array.fill parent_edge 0 n (-1);
    Queue.clear queue;
    dist.(s) <- 0;
    Queue.add s queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      if 2 * dist.(u) < !best then
        Graph.iter_neighbors g u (fun v e ->
            if dist.(v) < 0 then begin
              dist.(v) <- dist.(u) + 1;
              parent_edge.(v) <- e;
              Queue.add v queue
            end
            else if e <> parent_edge.(u) then begin
              let candidate = dist.(u) + dist.(v) + 1 in
              if candidate < !best then best := candidate
            end)
    done
  done;
  if !best = max_int then None else Some !best

let has_girth_gt g k =
  match girth g with None -> true | Some c -> c > k
