type t = {
  n : int;
  (* CSR adjacency: neighbors of u are adj_v.(adj_off.(u) .. adj_off.(u+1)-1),
     with matching edge identifiers in adj_e. *)
  adj_off : int array;
  adj_v : int array;
  adj_e : int array;
  edge_u : int array;
  edge_v : int array;
}

type edge = { u : int; v : int }

module Builder = struct
  type t = {
    n : int;
    mutable edges : (int * int) list;
    mutable count : int;
    seen : (int * int, unit) Hashtbl.t;
  }

  let create ~n =
    if n < 0 then invalid_arg "Graph.Builder.create: negative n";
    { n; edges = []; count = 0; seen = Hashtbl.create 64 }

  let add_edge t a b =
    if a < 0 || a >= t.n || b < 0 || b >= t.n then
      invalid_arg "Graph.Builder.add_edge: vertex out of range";
    if a <> b then begin
      let key = if a < b then (a, b) else (b, a) in
      if not (Hashtbl.mem t.seen key) then begin
        Hashtbl.add t.seen key ();
        t.edges <- key :: t.edges;
        t.count <- t.count + 1
      end
    end

  let n t = t.n
  let edge_count t = t.count

  let build t =
    let m = t.count in
    let edge_u = Array.make m 0 and edge_v = Array.make m 0 in
    (* Edges were accumulated in reverse insertion order; restore it so
       edge identifiers are stable and deterministic. *)
    let i = ref (m - 1) in
    List.iter
      (fun (u, v) ->
        edge_u.(!i) <- u;
        edge_v.(!i) <- v;
        decr i)
      t.edges;
    let deg = Array.make t.n 0 in
    for e = 0 to m - 1 do
      deg.(edge_u.(e)) <- deg.(edge_u.(e)) + 1;
      deg.(edge_v.(e)) <- deg.(edge_v.(e)) + 1
    done;
    let adj_off = Array.make (t.n + 1) 0 in
    for u = 0 to t.n - 1 do
      adj_off.(u + 1) <- adj_off.(u) + deg.(u)
    done;
    let cursor = Array.copy adj_off in
    let adj_v = Array.make (2 * m) 0 and adj_e = Array.make (2 * m) 0 in
    for e = 0 to m - 1 do
      let u = edge_u.(e) and v = edge_v.(e) in
      adj_v.(cursor.(u)) <- v;
      adj_e.(cursor.(u)) <- e;
      cursor.(u) <- cursor.(u) + 1;
      adj_v.(cursor.(v)) <- u;
      adj_e.(cursor.(v)) <- e;
      cursor.(v) <- cursor.(v) + 1
    done;
    { n = t.n; adj_off; adj_v; adj_e; edge_u; edge_v }
end

let of_edges ~n edges =
  let b = Builder.create ~n in
  List.iter (fun (u, v) -> Builder.add_edge b u v) edges;
  Builder.build b

let n t = t.n
let m t = Array.length t.edge_u
let degree t u = t.adj_off.(u + 1) - t.adj_off.(u)
let edge t e = { u = t.edge_u.(e); v = t.edge_v.(e) }
let edge_endpoints t e = (t.edge_u.(e), t.edge_v.(e))

let iter_neighbors t u f =
  for i = t.adj_off.(u) to t.adj_off.(u + 1) - 1 do
    f t.adj_v.(i) t.adj_e.(i)
  done

let fold_neighbors t u ~init ~f =
  let acc = ref init in
  iter_neighbors t u (fun v e -> acc := f !acc v e);
  !acc

let find_edge t a b =
  if a < 0 || a >= t.n || b < 0 || b >= t.n || a = b then None
  else begin
    let a, b = if degree t a <= degree t b then (a, b) else (b, a) in
    let found = ref None in
    (try
       iter_neighbors t a (fun v e ->
           if v = b then begin
             found := Some e;
             raise Exit
           end)
     with Exit -> ());
    !found
  end

let mem_edge t a b = Option.is_some (find_edge t a b)

let iter_edges t f =
  for e = 0 to m t - 1 do
    f e t.edge_u.(e) t.edge_v.(e)
  done

let neighbors t u = List.rev (fold_neighbors t u ~init:[] ~f:(fun acc v _ -> v :: acc))

let components t =
  let label = Array.make t.n (-1) in
  let count = ref 0 in
  let stack = ref [] in
  for s = 0 to t.n - 1 do
    if label.(s) < 0 then begin
      let c = !count in
      incr count;
      label.(s) <- c;
      stack := [ s ];
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
            stack := rest;
            iter_neighbors t u (fun v _ ->
                if label.(v) < 0 then begin
                  label.(v) <- c;
                  stack := v :: !stack
                end)
      done
    end
  done;
  (label, !count)

let is_connected t =
  if t.n = 0 then true
  else
    let _, c = components t in
    c = 1

let max_degree t =
  let best = ref 0 in
  for u = 0 to t.n - 1 do
    if degree t u > !best then best := degree t u
  done;
  !best

let average_degree t = if t.n = 0 then 0. else 2. *. float_of_int (m t) /. float_of_int t.n

let pp_summary ppf t =
  Format.fprintf ppf "n=%d, m=%d, avg deg %.2f, max deg %d" t.n (m t)
    (average_degree t) (max_degree t)
