lib/graph/gadget.mli: Graph
