lib/graph/edge_set.ml: Graph List Util
