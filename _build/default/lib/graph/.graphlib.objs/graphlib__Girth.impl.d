lib/graph/girth.ml: Array Graph Queue
