lib/graph/weighted.mli: Edge_set Graph Util
