lib/graph/io.ml: Fun Graph Printf String
