lib/graph/edge_set.mli: Graph
