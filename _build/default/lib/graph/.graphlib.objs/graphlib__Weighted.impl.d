lib/graph/weighted.ml: Array Edge_set Graph List Stdlib Util
