lib/graph/gadget.ml: Array Float Graph Stdlib
