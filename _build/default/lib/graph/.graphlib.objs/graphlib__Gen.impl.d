lib/graph/gen.ml: Array Float Graph Hashtbl List Option Stdlib Util
