lib/graph/metrics.ml: Array Bfs Format Graph Hashtbl List Stdlib Util
