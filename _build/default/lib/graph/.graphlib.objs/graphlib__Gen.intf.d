lib/graph/gen.mli: Graph Util
