(** All-pairs shortest paths by repeated BFS.  O(n·m) — intended for the
    exact distortion checks on small graphs in the test suite. *)

val compute : Graph.t -> int array array
(** [compute g] is the distance matrix; [-1] marks unreachable pairs. *)

val diameter : Graph.t -> int
(** Largest finite pairwise distance (0 for the empty graph). *)
