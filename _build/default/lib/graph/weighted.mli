(** Edge-weighted view of a graph: the setting where Baswana–Sen is
    optimal (paper §1.2: "Baswana and Sen's randomized algorithm for
    constructing (2k-1)-spanners in weighted graphs is optimal in all
    respects, save for a factor of k in the spanner size"). *)

type t

val of_graph : Graph.t -> weights:float array -> t
(** One positive weight per edge identifier.
    @raise Invalid_argument on a size mismatch or nonpositive weight. *)

val random : Util.Prng.t -> Graph.t -> lo:float -> hi:float -> t
(** Uniform weights in [\[lo, hi)]. *)

val unit : Graph.t -> t
(** All weights 1 (so weighted distances = hop distances). *)

val graph : t -> Graph.t
val weight : t -> int -> float

val distances : t -> src:int -> float array
(** Dijkstra; [infinity] marks unreachable vertices. *)

val spanner_distances : t -> Edge_set.t -> src:int -> float array
(** Dijkstra restricted to a spanner's edges. *)

val path_weight : t -> int list -> float
(** Total weight of a list of edge ids. *)

val max_stretch :
  Util.Prng.t -> t -> Edge_set.t -> sources:int -> float
(** Max over sampled pairs of (spanner distance / true distance);
    [infinity] if the spanner disconnects a sampled pair. *)
