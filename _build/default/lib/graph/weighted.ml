type t = { g : Graph.t; w : float array }

let of_graph g ~weights =
  if Array.length weights <> Graph.m g then
    invalid_arg "Weighted.of_graph: one weight per edge required";
  Array.iter
    (fun x -> if not (x > 0.) then invalid_arg "Weighted.of_graph: weights must be positive")
    weights;
  { g; w = weights }

let random rng g ~lo ~hi =
  if not (0. < lo && lo <= hi) then invalid_arg "Weighted.random: need 0 < lo <= hi";
  of_graph g
    ~weights:
      (Array.init (Graph.m g) (fun _ ->
           if hi = lo then lo else lo +. Util.Prng.float rng (hi -. lo)))

let unit g = of_graph g ~weights:(Array.make (Graph.m g) 1.)
let graph t = t.g
let weight t e = t.w.(e)

let dijkstra t ~src ~usable =
  let n = Graph.n t.g in
  let dist = Array.make n infinity in
  let heap = Util.Fheap.create () in
  dist.(src) <- 0.;
  Util.Fheap.push heap ~key:0. src;
  let rec drain () =
    match Util.Fheap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
        if d <= dist.(u) then
          Graph.iter_neighbors t.g u (fun v e ->
              if usable e then begin
                let nd = d +. t.w.(e) in
                if nd < dist.(v) then begin
                  dist.(v) <- nd;
                  Util.Fheap.push heap ~key:nd v
                end
              end);
        drain ()
  in
  drain ();
  dist

let distances t ~src = dijkstra t ~src ~usable:(fun _ -> true)
let spanner_distances t s ~src = dijkstra t ~src ~usable:(Edge_set.mem s)

let path_weight t edges = List.fold_left (fun acc e -> acc +. t.w.(e)) 0. edges

let max_stretch rng t s ~sources =
  let n = Graph.n t.g in
  let k = Stdlib.min sources n in
  let srcs = Util.Prng.sample_without_replacement rng ~k ~n in
  let worst = ref 1. in
  Array.iter
    (fun src ->
      let dg = distances t ~src and dh = spanner_distances t s ~src in
      for v = 0 to n - 1 do
        if v <> src && dg.(v) < infinity then
          if dh.(v) = infinity then worst := infinity
          else begin
            let ratio = dh.(v) /. dg.(v) in
            if ratio > !worst then worst := ratio
          end
      done)
    srcs;
  !worst
