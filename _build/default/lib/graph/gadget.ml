type t = {
  graph : Graph.t;
  tau : int;
  sigma : int;
  kappa : int;
  left : int array array;
  right : int array array;
  critical_edges : int array;
  block_edges : int list;
  chain_edges : int list;
}

let create ~tau ~sigma ~kappa =
  if tau < 1 || sigma < 1 || kappa < 1 then invalid_arg "Gadget.create";
  let block_vertices = 2 * kappa * sigma in
  let short_paths = (kappa - 1) * tau in
  let long_paths = (kappa - 1) * (sigma - 1) * (tau + 4) in
  let pendant = 2 * sigma * (tau + 1) in
  let n = block_vertices + short_paths + long_paths + pendant in
  let next = ref 0 in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let left = Array.init kappa (fun _ -> Array.init sigma (fun _ -> fresh ())) in
  let right = Array.init kappa (fun _ -> Array.init sigma (fun _ -> fresh ())) in
  let b = Graph.Builder.create ~n in
  (* Complete bipartite blocks. *)
  for i = 0 to kappa - 1 do
    for j = 0 to sigma - 1 do
      for j' = 0 to sigma - 1 do
        Graph.Builder.add_edge b left.(i).(j) right.(i).(j')
      done
    done
  done;
  (* A path of [extra] fresh internal vertices between two endpoints. *)
  let connect_by_path a c extra =
    let prev = ref a in
    for _ = 1 to extra do
      let w = fresh () in
      Graph.Builder.add_edge b !prev w;
      prev := w
    done;
    Graph.Builder.add_edge b !prev c
  in
  for i = 0 to kappa - 2 do
    connect_by_path right.(i).(0) left.(i + 1).(0) tau;
    for j = 1 to sigma - 1 do
      connect_by_path right.(i).(j) left.(i + 1).(j) (tau + 4)
    done
  done;
  (* Pendant chains of tau+1 fresh vertices off the outer columns, so
     every block vertex's tau-neighborhood looks the same. *)
  let pendant_chain v =
    let prev = ref v in
    for _ = 1 to tau + 1 do
      let w = fresh () in
      Graph.Builder.add_edge b !prev w;
      prev := w
    done
  in
  for j = 0 to sigma - 1 do
    pendant_chain left.(0).(j);
    pendant_chain right.(kappa - 1).(j)
  done;
  assert (!next = n);
  let graph = Graph.Builder.build b in
  let critical_edges =
    Array.init kappa (fun i ->
        match Graph.find_edge graph left.(i).(0) right.(i).(0) with
        | Some e -> e
        | None -> assert false)
  in
  let block_edges = ref [] and chain_edges = ref [] in
  let is_block_vertex = Array.make n false in
  Array.iter (Array.iter (fun v -> is_block_vertex.(v) <- true)) left;
  Array.iter (Array.iter (fun v -> is_block_vertex.(v) <- true)) right;
  Graph.iter_edges graph (fun e u v ->
      if is_block_vertex.(u) && is_block_vertex.(v) then
        block_edges := e :: !block_edges
      else chain_edges := e :: !chain_edges);
  {
    graph;
    tau;
    sigma;
    kappa;
    left;
    right;
    critical_edges;
    block_edges = !block_edges;
    chain_edges = !chain_edges;
  }

let hop_length t = t.tau + 2
let observers t = (t.left.(0).(0), t.left.(t.kappa - 1).(0))

let paper_parameters ~n ~delta ~c ~tau =
  let nf = float_of_int n in
  let sigma = c *. float_of_int (tau + 6) *. (nf ** delta) in
  let kappa = (nf ** (1. -. delta)) /. (c *. float_of_int ((tau + 6) * (tau + 6))) in
  ( Stdlib.max 1 (int_of_float (Float.round sigma)),
    Stdlib.max 1 (int_of_float (Float.round kappa)) )
