(** Distortion measurement: how well a spanner [H ⊆ G] preserves the
    distance metric of [G].

    Exact variants run APSP on both graphs (small [n] only); sampled
    variants BFS from a random subset of sources, which is unbiased for
    the per-pair statistics the experiments report. *)

type report = {
  pairs : int;  (** pairs measured (connected in G) *)
  max_mult : float;  (** max over pairs of dist_H / dist_G *)
  avg_mult : float;
  max_add : int;  (** max over pairs of dist_H - dist_G *)
  avg_add : float;
  disconnected : int;  (** pairs connected in G but not in H *)
}

val pp_report : Format.formatter -> report -> unit

val exact : g:Graph.t -> h:Graph.t -> report
(** Over all ordered pairs [u < v] connected in [g].  [h] must have the
    same vertex set. *)

val sampled :
  Util.Prng.t -> g:Graph.t -> h:Graph.t -> sources:int -> report
(** Over all pairs [(s, v)] for [sources] random sources [s]. *)

type profile = (int * Util.Stats.t) list
(** For each base distance [d] in [g] (ascending), statistics of the
    spanner distance for measured pairs at that distance.  This is the
    raw material of the Theorem 7 staged-distortion experiment. *)

val distance_profile :
  Util.Prng.t -> g:Graph.t -> h:Graph.t -> sources:int -> profile

val stretch_at_distance : profile -> int -> float option
(** Mean multiplicative stretch at exactly distance [d], if measured. *)
