let distances g ~src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.iter_neighbors g u (fun v _ ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

type forest = {
  dist : int array;
  source : int array;
  parent : int array;
  parent_edge : int array;
}

let multi_source ?radius g ~sources =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let source = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let limit = match radius with None -> max_int | Some r -> r in
  let frontier = ref [] in
  (* Sources at distance 0; a vertex listed twice keeps the min id
     (labels are min-updated below, so initialization order is moot). *)
  List.iter
    (fun s ->
      if source.(s) < 0 || s < source.(s) then begin
        if dist.(s) < 0 then frontier := s :: !frontier;
        dist.(s) <- 0;
        source.(s) <- s;
        parent.(s) <- -1;
        parent_edge.(s) <- -1
      end)
    sources;
  let level = ref 0 in
  while !frontier <> [] && !level < limit do
    let next = ref [] in
    let d = !level + 1 in
    List.iter
      (fun u ->
        Graph.iter_neighbors g u (fun v e ->
            if dist.(v) < 0 then begin
              dist.(v) <- d;
              source.(v) <- source.(u);
              parent.(v) <- u;
              parent_edge.(v) <- e;
              next := v :: !next
            end
            else if dist.(v) = d && source.(u) < source.(v) then begin
              (* Same level, better (smaller-id) source: min-update so
                 the label is the paper's p_i. *)
              source.(v) <- source.(u);
              parent.(v) <- u;
              parent_edge.(v) <- e
            end))
      !frontier;
    frontier := !next;
    incr level
  done;
  { dist; source; parent; parent_edge }

module Workspace = struct
  type t = {
    g : Graph.t;
    dist : int array;
    parent : int array;
    parent_edge : int array;
    mutable touched : int list;
    queue : int Queue.t;
  }

  let create g =
    let n = Graph.n g in
    {
      g;
      dist = Array.make n (-1);
      parent = Array.make n (-1);
      parent_edge = Array.make n (-1);
      touched = [];
      queue = Queue.create ();
    }

  let reset t =
    List.iter
      (fun v ->
        t.dist.(v) <- -1;
        t.parent.(v) <- -1;
        t.parent_edge.(v) <- -1)
      t.touched;
    t.touched <- [];
    Queue.clear t.queue

  let run t ~src ~radius ~on_visit =
    reset t;
    t.dist.(src) <- 0;
    t.touched <- [ src ];
    Queue.add src t.queue;
    on_visit ~v:src ~dist:0;
    while not (Queue.is_empty t.queue) do
      let u = Queue.pop t.queue in
      if t.dist.(u) < radius then
        Graph.iter_neighbors t.g u (fun v e ->
            if t.dist.(v) < 0 then begin
              t.dist.(v) <- t.dist.(u) + 1;
              t.parent.(v) <- u;
              t.parent_edge.(v) <- e;
              t.touched <- v :: t.touched;
              Queue.add v t.queue;
              on_visit ~v ~dist:t.dist.(v)
            end)
    done

  let dist t v = t.dist.(v)
  let parent_edge t v = t.parent_edge.(v)
  let parent t v = t.parent.(v)

  let path_edges_to_source t v =
    if t.dist.(v) < 0 then invalid_arg "Bfs.Workspace.path_edges_to_source: unreached";
    let rec loop v acc =
      match t.parent_edge.(v) with
      | -1 -> acc
      | e -> loop t.parent.(v) (e :: acc)
    in
    loop v []
end

let eccentricity g v =
  let dist = distances g ~src:v in
  Array.fold_left (fun acc d -> if d > acc then d else acc) 0 dist

let diameter_lower_bound g ~seeds =
  List.fold_left (fun acc s -> Stdlib.max acc (eccentricity g s)) 0 seeds
