(** Exact girth (length of the shortest cycle) by BFS from every
    vertex — O(n·m), for validating the greedy spanner's structural
    guarantee on test-sized graphs. *)

val girth : Graph.t -> int option
(** [None] on forests. *)

val has_girth_gt : Graph.t -> int -> bool
(** [has_girth_gt g k] iff every cycle of [g] is longer than [k]. *)
