let compute g = Array.init (Graph.n g) (fun src -> Bfs.distances g ~src)

let diameter g =
  let d = compute g in
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc x -> if x > acc then x else acc) acc row)
    0 d
