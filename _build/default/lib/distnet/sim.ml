module Graph = Graphlib.Graph

type stats = {
  rounds : int;
  messages : int;
  words : int;
  max_message_words : int;
}

let pp_stats ppf s =
  Format.fprintf ppf "rounds=%d messages=%d words=%d max_msg=%d words" s.rounds
    s.messages s.words s.max_message_words

type 'msg envelope = { src : int; dst : int; words : int; payload : 'msg }

type 'msg t = {
  g : Graph.t;
  (* Directed-link slots: edge e gives slot 2e for (u -> v) and 2e+1
     for (v -> u), with u < v.  [link] resolves (src, dst) to a slot in
     O(1) via a per-source hashtable built once. *)
  link : (int, int) Hashtbl.t;
  last_sent : int array;  (** per slot: round counter of the last send *)
  mutable epoch : int;
  mutable outbox : 'msg envelope list;
  mutable rounds : int;
  mutable messages : int;
  mutable words : int;
  mutable max_message_words : int;
}

let key ~n src dst = (src * n) + dst

let create g =
  let n = Graph.n g in
  let link = Hashtbl.create (4 * Graph.m g) in
  Graph.iter_edges g (fun e u v ->
      Hashtbl.replace link (key ~n u v) (2 * e);
      Hashtbl.replace link (key ~n v u) ((2 * e) + 1));
  {
    g;
    link;
    last_sent = Array.make (Stdlib.max 1 (2 * Graph.m g)) (-1);
    epoch = 0;
    outbox = [];
    rounds = 0;
    messages = 0;
    words = 0;
    max_message_words = 0;
  }

let graph t = t.g

let send t ~src ~dst ~words payload =
  if words < 1 then invalid_arg "Sim.send: words must be >= 1";
  match Hashtbl.find_opt t.link (key ~n:(Graph.n t.g) src dst) with
  | None ->
      invalid_arg
        (Printf.sprintf "Sim.send: %d -> %d is not a network link" src dst)
  | Some slot ->
      if t.last_sent.(slot) = t.epoch then
        invalid_arg
          (Printf.sprintf "Sim.send: %d already sent to %d this round" src dst);
      t.last_sent.(slot) <- t.epoch;
      t.outbox <- { src; dst; words; payload } :: t.outbox

let quiescent t = t.outbox = []

let step t deliver =
  let batch = List.rev t.outbox in
  t.outbox <- [];
  t.epoch <- t.epoch + 1;
  t.rounds <- t.rounds + 1;
  let count = ref 0 in
  List.iter
    (fun { src; dst; words; payload } ->
      t.messages <- t.messages + 1;
      t.words <- t.words + words;
      if words > t.max_message_words then t.max_message_words <- words;
      incr count;
      deliver ~dst ~src payload)
    batch;
  !count

let run_until_quiescent ?(max_rounds = 10_000_000) t deliver =
  let budget = ref max_rounds in
  while not (quiescent t) do
    if !budget <= 0 then failwith "Sim.run_until_quiescent: round budget exhausted";
    decr budget;
    ignore (step t deliver)
  done

let stats t =
  {
    rounds = t.rounds;
    messages = t.messages;
    words = t.words;
    max_message_words = t.max_message_words;
  }

let add_idle_rounds t k =
  if k < 0 then invalid_arg "Sim.add_idle_rounds: negative";
  t.rounds <- t.rounds + k

module type PROTOCOL = sig
  type state
  type message

  val message_words : message -> int

  val init : Graphlib.Graph.t -> int -> state * (int * message) list

  val receive :
    Graphlib.Graph.t ->
    round:int ->
    int ->
    state ->
    (int * message) list ->
    state * (int * message) list
end

module Run (P : PROTOCOL) = struct
  let run ?(max_rounds = 1_000_000) g =
    let n = Graph.n g in
    let t = create g in
    let states = Array.init n (fun _ -> None) in
    let post v msgs =
      List.iter
        (fun (dst, m) -> send t ~src:v ~dst ~words:(P.message_words m) m)
        msgs
    in
    for v = 0 to n - 1 do
      let st, msgs = P.init g v in
      states.(v) <- Some st;
      post v msgs
    done;
    let inboxes = Array.make n [] in
    let round = ref 0 in
    while not (quiescent t) do
      if !round >= max_rounds then failwith "Sim.Run: round budget exhausted";
      incr round;
      Array.fill inboxes 0 n [];
      ignore
        (step t (fun ~dst ~src m -> inboxes.(dst) <- (src, m) :: inboxes.(dst)));
      for v = 0 to n - 1 do
        match states.(v) with
        | None -> assert false
        | Some st ->
            let st, msgs = P.receive g ~round:!round v st (List.rev inboxes.(v)) in
            states.(v) <- Some st;
            post v msgs
      done
    done;
    let final =
      Array.map (function Some st -> st | None -> assert false) states
    in
    (stats t, final)
end
