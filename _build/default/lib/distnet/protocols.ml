module Graph = Graphlib.Graph

let bfs g ~root =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  let t = Sim.create g in
  let announce v d =
    dist.(v) <- d;
    Graph.iter_neighbors g v (fun w _ ->
        if dist.(w) < 0 then Sim.send t ~src:v ~dst:w ~words:1 (d + 1))
  in
  if n > 0 then announce root 0;
  Sim.run_until_quiescent t (fun ~dst ~src:_ d ->
      if dist.(dst) < 0 then announce dst d);
  (Sim.stats t, dist)

let flood g ~root ~payload_words =
  let n = Graph.n g in
  let reached = Array.make n false in
  let t = Sim.create g in
  let forward v ~from =
    reached.(v) <- true;
    Graph.iter_neighbors g v (fun w _ ->
        (* [reached w] may flip between send and delivery; that
           duplicate traffic is the real cost of flooding and is
           counted faithfully. *)
        if w <> from && not reached.(w) then
          Sim.send t ~src:v ~dst:w ~words:payload_words ())
  in
  if n > 0 then forward root ~from:(-1);
  Sim.run_until_quiescent t (fun ~dst ~src () ->
      if not reached.(dst) then forward dst ~from:src);
  (Sim.stats t, reached)
