lib/distnet/sim.ml: Array Format Graphlib Hashtbl List Printf Stdlib
