lib/distnet/protocols.mli: Graphlib Sim
