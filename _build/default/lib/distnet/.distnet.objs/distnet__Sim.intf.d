lib/distnet/sim.mli: Format Graphlib
