lib/distnet/protocols.ml: Array Graphlib Sim
