(** Synchronous message-passing network simulator.

    This is the paper's computational model (Section 1.1): the
    communication network {e is} the input graph; computation proceeds
    in synchronized rounds; in each round a node may send one message
    to each neighbor; local computation is free.  Message length is
    measured in units of [O(log n)] bits — a "word" holds a vertex
    identifier, an edge identifier, or a small counter — which is the
    unit of the paper's Fig. 1 "message length" column.

    Two layers are provided.  The low-level {e engine} enforces the
    model (neighbor-only unicast, one message per directed edge per
    round, word accounting) while an algorithm module drives rounds
    explicitly — this is how the intricate multi-phase protocols
    (skeleton, Fibonacci balls) are written.  The {!Run} functor wraps
    the engine for self-contained node programs. *)

type stats = {
  rounds : int;  (** synchronous rounds executed *)
  messages : int;  (** messages delivered in total *)
  words : int;  (** total words delivered *)
  max_message_words : int;  (** length of the longest single message *)
}

val pp_stats : Format.formatter -> stats -> unit

(** {1 Low-level engine} *)

type 'msg t

val create : Graphlib.Graph.t -> 'msg t
val graph : 'msg t -> Graphlib.Graph.t

val send : 'msg t -> src:int -> dst:int -> words:int -> 'msg -> unit
(** Enqueue a message for delivery at the next {!step}.
    @raise Invalid_argument if [dst] is not a neighbor of [src], if
    [words < 1], or if [src] already sent to [dst] this round. *)

val step : 'msg t -> (dst:int -> src:int -> 'msg -> unit) -> int
(** Advance one synchronous round: deliver every queued message through
    the callback (in deterministic order) and return the number
    delivered.  Counts as one round even when nothing was queued. *)

val quiescent : 'msg t -> bool
(** No messages queued for the next round. *)

val run_until_quiescent :
  ?max_rounds:int -> 'msg t -> (dst:int -> src:int -> 'msg -> unit) -> unit
(** Repeated {!step} until no message is in flight.  The callback may
    {!send} further messages.  @raise Failure after [max_rounds]
    (default [10_000_000]) rounds. *)

val stats : 'msg t -> stats

val add_idle_rounds : 'msg t -> int -> unit
(** Account for rounds that a real execution would spend idle (e.g. a
    fixed-length phase that ended early at quiescence but whose
    schedule the nodes cannot cut short).  Used by protocols that
    charge themselves the analytic schedule. *)

(** {1 Node-program runner} *)

module type PROTOCOL = sig
  type state
  type message

  val message_words : message -> int

  val init : Graphlib.Graph.t -> int -> state * (int * message) list
  (** [init g v] is the initial state of node [v] and the messages it
      sends in the first round (neighbor, payload). *)

  val receive :
    Graphlib.Graph.t ->
    round:int ->
    int ->
    state ->
    (int * message) list ->
    state * (int * message) list
  (** [receive g ~round v st inbox] handles one round at node [v]:
      [inbox] lists (sender, payload) delivered this round.  Called
      every round for every node (possibly with an empty inbox) until
      the network is quiescent. *)
end

module Run (P : PROTOCOL) : sig
  val run : ?max_rounds:int -> Graphlib.Graph.t -> stats * P.state array
end
