(** Reference protocols on the simulator: distributed BFS and flooding.
    Used by tests (to validate the engine against sequential BFS) and
    by the overlay-broadcast experiment (E10). *)

val bfs : Graphlib.Graph.t -> root:int -> Sim.stats * int array
(** Layered BFS from [root] with unit-word messages.  Returns the
    per-node distances ([-1] when unreachable) and the round/message
    statistics.  Completes in eccentricity+1 rounds. *)

val flood : Graphlib.Graph.t -> root:int -> payload_words:int -> Sim.stats * bool array
(** Broadcast a [payload_words]-word message from [root] by flooding:
    every node forwards the first copy it receives to all neighbors
    except the sender.  Returns reachability. *)
