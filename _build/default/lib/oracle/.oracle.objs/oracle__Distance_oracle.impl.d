lib/oracle/distance_oracle.ml: Array Graphlib Hashtbl List Queue Util
