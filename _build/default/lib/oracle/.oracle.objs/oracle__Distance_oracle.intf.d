lib/oracle/distance_oracle.mli: Graphlib
