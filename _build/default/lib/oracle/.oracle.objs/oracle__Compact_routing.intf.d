lib/oracle/compact_routing.mli: Graphlib
