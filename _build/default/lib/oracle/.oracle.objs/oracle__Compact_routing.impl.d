lib/oracle/compact_routing.ml: Array Graphlib Hashtbl List Queue Util
