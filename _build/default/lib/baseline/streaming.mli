(** Online/streaming [(2k-1)]-spanner (the model of the paper's §1.4:
    "Elkin and Baswana found algorithms for constructing sparse
    (2k-1)-spanners in an online streaming model, where edges arrive
    one at a time and the algorithm can only keep O(n^(1+1/k)) edges
    in memory").

    The classical single-pass rule: keep an arriving edge iff the
    spanner held so far leaves its endpoints more than [2k - 1] apart.
    Memory never exceeds the spanner itself (girth > 2k forces
    [O(n^(1+1/k))] edges); every discarded edge is immediately
    [2k-1]-approximated, so the final subgraph is a [(2k-1)]-spanner
    of the whole stream. *)

type t

val create : n:int -> k:int -> t
(** An empty spanner over vertices [0 .. n-1]. *)

val offer : t -> int -> int -> bool
(** [offer t u v] processes one arriving edge; returns whether it was
    kept.  Self-loops and duplicates of kept edges are rejected. *)

val edges : t -> (int * int) list
(** Edges currently held (insertion order not guaranteed). *)

val size : t -> int
val k : t -> int
val offered : t -> int
(** Stream length so far. *)

val to_graph : t -> Graphlib.Graph.t
(** Materialize the held spanner. *)

val of_stream : n:int -> k:int -> (int * int) list -> t
(** Feed a whole stream. *)
