(** The Althöfer–Das–Dobkin–Joseph–Soares greedy spanner (Discrete
    Comput. Geom. 1993) — the classical sequential girth-based
    construction the paper cites as "the standard method for obtaining
    a linear-size spanner or skeleton".

    Edges are scanned in identifier order; an edge is kept iff the
    spanner built so far leaves its endpoints more than [2k - 1] apart.
    The result is a [(2k-1)]-spanner with girth greater than [2k]
    (hence [O(n^(1+1/k))] edges; with [k = ceil(log2 n)] a linear-size
    skeleton with [O(log n)] stretch).  Section 3 of the paper shows no
    fast distributed algorithm can match it. *)

type result = {
  spanner : Graphlib.Edge_set.t;
  k : int;
  distance_queries : int;  (** truncated BFS runs performed *)
}

val build : k:int -> Graphlib.Graph.t -> result

val skeleton : Graphlib.Graph.t -> result
(** [build] with [k = max 2 (ceil (log2 n))] — the linear-size
    girth-[Omega(log n)] skeleton. *)
