type t = {
  n : int;
  k : int;
  limit : int;
  adj : (int * int) list array;  (** (neighbor, arrival index) *)
  mutable size : int;
  mutable offered : int;
  (* truncated-BFS scratch, reset via the touched list *)
  dist : int array;
  queue : int Queue.t;
}

let create ~n ~k =
  if n < 0 then invalid_arg "Streaming.create: negative n";
  if k < 1 then invalid_arg "Streaming.create: k must be >= 1";
  {
    n;
    k;
    limit = (2 * k) - 1;
    adj = Array.make (Stdlib.max 1 n) [];
    size = 0;
    offered = 0;
    dist = Array.make (Stdlib.max 1 n) (-1);
    queue = Queue.create ();
  }

let within_limit t u v =
  let touched = ref [ u ] in
  t.dist.(u) <- 0;
  Queue.clear t.queue;
  Queue.add u t.queue;
  let found = ref false in
  while not (Queue.is_empty t.queue || !found) do
    let x = Queue.pop t.queue in
    if x = v then found := true
    else if t.dist.(x) < t.limit then
      List.iter
        (fun (y, _) ->
          if t.dist.(y) < 0 then begin
            t.dist.(y) <- t.dist.(x) + 1;
            touched := y :: !touched;
            Queue.add y t.queue
          end)
        t.adj.(x)
  done;
  List.iter (fun x -> t.dist.(x) <- -1) !touched;
  !found

let offer t u v =
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Streaming.offer: vertex out of range";
  t.offered <- t.offered + 1;
  if u = v then false
  else if within_limit t u v then false
  else begin
    t.adj.(u) <- (v, t.offered) :: t.adj.(u);
    t.adj.(v) <- (u, t.offered) :: t.adj.(v);
    t.size <- t.size + 1;
    true
  end

let edges t =
  let acc = ref [] in
  Array.iteri
    (fun u l -> List.iter (fun (v, _) -> if u < v then acc := (u, v) :: !acc) l)
    t.adj;
  !acc

let size t = t.size
let k t = t.k
let offered t = t.offered
let to_graph t = Graphlib.Graph.of_edges ~n:t.n (edges t)

let of_stream ~n ~k stream =
  let t = create ~n ~k in
  List.iter (fun (u, v) -> ignore (offer t u v)) stream;
  t
