(** Distributed girth-based skeleton in the style the paper attributes
    to Dubhashi et al. [18]: survey a large neighborhood, decide
    locally — at the price of {e unbounded-length messages} (the
    drawback the paper's own algorithm removes; see footnote 2 and
    Fig. 1).

    Protocol: every vertex floods its incident edge list; after [k]
    rounds each vertex knows its [k]-ball.  An edge [(u, v)] is dropped
    iff it is the {e maximum-identifier} edge of some cycle of length
    at most [2k] (checkable inside either endpoint's [k]-ball).  Every
    short cycle loses its maximum edge, so the result has girth
    [> 2k] — with [k = ceil(log2 n)] a linear-size skeleton —
    and connectivity is preserved (the minimum edge across any cut is
    never dropped).  Unlike the sequential greedy there is no
    per-edge stretch guarantee; the experiments measure distortion
    empirically.  The interesting output is [stats.max_message_words]:
    the neighborhood survey is exactly the message blowup the paper
    criticizes. *)

type result = {
  spanner : Graphlib.Edge_set.t;
  k : int;
  stats : Distnet.Sim.stats;
}

val build : k:int -> Graphlib.Graph.t -> result

val skeleton : Graphlib.Graph.t -> result
(** [build] with [k = max 2 (ceil (log2 n))]. *)
