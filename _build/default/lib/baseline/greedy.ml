module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set

type result = {
  spanner : Edge_set.t;
  k : int;
  distance_queries : int;
}

let build ~k g =
  if k < 1 then invalid_arg "Greedy.build: k must be >= 1";
  let n = Graph.n g in
  let limit = (2 * k) - 1 in
  let spanner = Edge_set.create g in
  (* Incremental adjacency of the spanner under construction. *)
  let adj : int list array = Array.make n [] in
  (* Reusable truncated-BFS scratch (touched-list reset). *)
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  let queries = ref 0 in
  let within_limit u v =
    incr queries;
    let touched = ref [ u ] in
    dist.(u) <- 0;
    Queue.clear queue;
    Queue.add u queue;
    let found = ref false in
    while not (Queue.is_empty queue || !found) do
      let x = Queue.pop queue in
      if x = v then found := true
      else if dist.(x) < limit then
        List.iter
          (fun y ->
            if dist.(y) < 0 then begin
              dist.(y) <- dist.(x) + 1;
              touched := y :: !touched;
              Queue.add y queue
            end)
          adj.(x)
    done;
    List.iter (fun x -> dist.(x) <- -1) !touched;
    !found
  in
  Graph.iter_edges g (fun e u v ->
      if not (within_limit u v) then begin
        Edge_set.add spanner e;
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v)
      end);
  { spanner; k; distance_queries = !queries }

let skeleton g =
  let n = Graph.n g in
  let k =
    Stdlib.max 2
      (int_of_float (Float.ceil (Util.Tower.log2 (float_of_int (Stdlib.max 2 n)))))
  in
  build ~k g
