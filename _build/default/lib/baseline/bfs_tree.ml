module Graph = Graphlib.Graph
module Bfs = Graphlib.Bfs
module Edge_set = Graphlib.Edge_set

type result = {
  spanner : Edge_set.t;
  roots : int list;
}

let build g =
  let n = Graph.n g in
  let spanner = Edge_set.create g in
  let visited = Array.make n false in
  let roots = ref [] in
  for s = 0 to n - 1 do
    if not visited.(s) then begin
      roots := s :: !roots;
      let forest = Bfs.multi_source g ~sources:[ s ] in
      Array.iteri
        (fun v e ->
          if forest.Bfs.dist.(v) >= 0 then begin
            visited.(v) <- true;
            if e >= 0 then Edge_set.add spanner e
          end)
        forest.Bfs.parent_edge
    end
  done;
  { spanner; roots = List.rev !roots }
