(** BFS spanning forest — the connectivity-only baseline ("at the very
    least the substitute should preserve connectivity", paper §1).
    Size exactly [n - #components]; distortion up to the diameter. *)

type result = {
  spanner : Graphlib.Edge_set.t;
  roots : int list;  (** one BFS root per component *)
}

val build : Graphlib.Graph.t -> result
