(** Baswana–Sen randomized [(2k-1)]-spanner for unweighted graphs
    (J. Random Structs. & Algs. 2007) — the clustering the paper's
    Section 2 builds on, and the main baseline of its Fig. 1.

    [k-1] clustering phases at sampling probability [n^(-1/k)] followed
    by a final discharge phase.  In each phase, a vertex whose cluster
    goes unsampled either joins an adjacent sampled cluster (adding one
    edge) or adds one edge per adjacent cluster and retires.  Expected
    size [O(k n^(1+1/k))]; stretch [2k - 1].

    As with the skeleton, all randomness is the per-vertex index of the
    first phase whose coin fails, so the sequential and distributed
    implementations can be run on the same tape and compared exactly. *)

type tape = int array
(** Per-vertex first unsampled phase, in [0 .. k-1] ([k - 1] means the
    vertex's cluster survives every sampling phase). *)

val draw_tape : Util.Prng.t -> n:int -> k:int -> tape

type result = {
  spanner : Graphlib.Edge_set.t;
  k : int;
  phases : (int * int) list;
      (** per phase: (clusters entering, vertices retired) *)
}

val build : k:int -> seed:int -> Graphlib.Graph.t -> result
val build_with : k:int -> tape:tape -> Graphlib.Graph.t -> result
