module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set

type tape = int array

let draw_tape rng ~n ~k =
  if k < 1 then invalid_arg "Baswana_sen.draw_tape: k must be >= 1";
  let p = float_of_int n ** (-1. /. float_of_int k) in
  Array.init n (fun _ ->
      let rec walk i =
        if i >= k - 1 then k - 1
        else if Util.Prng.bernoulli rng p then walk (i + 1)
        else i
      in
      walk 0)

type result = {
  spanner : Edge_set.t;
  k : int;
  phases : (int * int) list;
}

(* Cluster identity is the original center vertex; [tape.(center) > i]
   means the cluster is sampled at phase i. *)
let build_with ~k ~tape g =
  let n = Graph.n g in
  if Array.length tape <> n then invalid_arg "Baswana_sen.build_with: tape size";
  let spanner = Edge_set.create g in
  let cluster = Array.init n (fun v -> v) in
  let active = Array.make n true in
  let phases = ref [] in
  let sampled ~phase c = phase < k - 1 && tape.(c) > phase in
  for phase = 0 to k - 1 do
    let clusters_entering =
      let seen = Hashtbl.create 64 in
      Array.iteri (fun v c -> if active.(v) then Hashtbl.replace seen c ()) cluster;
      Hashtbl.length seen
    in
    let new_cluster = Array.copy cluster in
    let retiring = ref [] in
    for v = 0 to n - 1 do
      if active.(v) && not (sampled ~phase cluster.(v)) then begin
        (* Adjacent clusters, deduplicated to the min incident edge. *)
        let best : (int, int) Hashtbl.t = Hashtbl.create 8 in
        Graph.iter_neighbors g v (fun w e ->
            if active.(w) && cluster.(w) <> cluster.(v) then
              match Hashtbl.find_opt best cluster.(w) with
              | Some e' when e' <= e -> ()
              | _ -> Hashtbl.replace best cluster.(w) e);
        let join =
          Hashtbl.fold
            (fun c e acc ->
              if sampled ~phase c then
                match acc with
                | Some (_, e') when e' <= e -> acc
                | _ -> Some (c, e)
              else acc)
            best None
        in
        match join with
        | Some (c, e) ->
            Edge_set.add spanner e;
            new_cluster.(v) <- c
        | None ->
            Hashtbl.iter (fun _ e -> Edge_set.add spanner e) best;
            retiring := v :: !retiring
      end
    done;
    List.iter (fun v -> active.(v) <- false) !retiring;
    Array.blit new_cluster 0 cluster 0 n;
    phases := (clusters_entering, List.length !retiring) :: !phases
  done;
  { spanner; k; phases = List.rev !phases }

let build ~k ~seed g =
  let tape = draw_tape (Util.Prng.create ~seed) ~n:(Graph.n g) ~k in
  build_with ~k ~tape g
