module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set
module Sim = Distnet.Sim

type result = {
  spanner : Edge_set.t;
  k : int;
  stats : Sim.stats;
}

(* Any cycle of length <= 2k through a vertex lies entirely inside its
   k-ball, so after k rounds of edge-list flooding each endpoint can
   evaluate the drop rule ("am I the max edge of a short cycle?")
   locally and both endpoints agree. *)
let build ~k g =
  if k < 1 then invalid_arg "Neighborhood_dist.build: k must be >= 1";
  let n = Graph.n g in
  let net = Sim.create g in
  (* known.(v): edge ids v has heard of; fresh: learned last round. *)
  let known = Array.init n (fun _ -> Hashtbl.create 16) in
  let fresh = Array.make n [] in
  for v = 0 to n - 1 do
    Graph.iter_neighbors g v (fun _ e ->
        if not (Hashtbl.mem known.(v) e) then begin
          Hashtbl.replace known.(v) e ();
          fresh.(v) <- e :: fresh.(v)
        end)
  done;
  for _round = 1 to k do
    let batches = Array.make n [] in
    for v = 0 to n - 1 do
      batches.(v) <- fresh.(v);
      fresh.(v) <- []
    done;
    for v = 0 to n - 1 do
      if batches.(v) <> [] then
        Graph.iter_neighbors g v (fun w _ ->
            (* Two words per announced edge: its endpoint pair. *)
            Sim.send net ~src:v ~dst:w
              ~words:(2 * List.length batches.(v))
              batches.(v))
    done;
    ignore
      (Sim.step net (fun ~dst ~src:_ edges ->
           List.iter
             (fun e ->
               if not (Hashtbl.mem known.(dst) e) then begin
                 Hashtbl.replace known.(dst) e ();
                 fresh.(dst) <- e :: fresh.(dst)
               end)
             edges))
  done;
  (* Local decisions at the smaller endpoint of each edge. *)
  let spanner = Edge_set.create g in
  let limit = (2 * k) - 1 in
  for u = 0 to n - 1 do
    (* Adjacency of u's ball. *)
    let adj : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun e () ->
        let a, b = Graph.edge_endpoints g e in
        Hashtbl.replace adj a ((b, e) :: Option.value ~default:[] (Hashtbl.find_opt adj a));
        Hashtbl.replace adj b ((a, e) :: Option.value ~default:[] (Hashtbl.find_opt adj b)))
      known.(u);
    let reachable_without ~edge v =
      (* BFS from u to v, depth <= limit, using ball edges with smaller
         identifiers only. *)
      let dist : (int, int) Hashtbl.t = Hashtbl.create 32 in
      let q = Queue.create () in
      Hashtbl.replace dist u 0;
      Queue.add u q;
      let found = ref false in
      while not (Queue.is_empty q || !found) do
        let x = Queue.pop q in
        let dx = Hashtbl.find dist x in
        if x = v then found := true
        else if dx < limit then
          List.iter
            (fun (y, e) ->
              if e < edge && not (Hashtbl.mem dist y) then begin
                Hashtbl.replace dist y (dx + 1);
                Queue.add y q
              end)
            (Option.value ~default:[] (Hashtbl.find_opt adj x))
      done;
      !found
    in
    Graph.iter_neighbors g u (fun v e ->
        if u < v && not (reachable_without ~edge:e v) then Edge_set.add spanner e)
  done;
  { spanner; k; stats = Sim.stats net }

let skeleton g =
  let n = Graph.n g in
  let k =
    Stdlib.max 2
      (int_of_float (Float.ceil (Util.Tower.log2 (float_of_int (Stdlib.max 2 n)))))
  in
  build ~k g
