(** Distributed Baswana–Sen on the {!Distnet.Sim} engine.

    Each phase costs two rounds — one exchange of (cluster, coin-tape)
    pairs over live links and one round of retirement notices — because
    every vertex decides for itself (no cluster-tree coordination is
    needed, unlike the skeleton).  Total [2k] rounds with 2-word
    messages, matching the [O(k)] row of the paper's Fig. 1.

    On the same {!Baswana_sen.tape}, produces the identical spanner to
    {!Baswana_sen.build_with}. *)

type result = {
  spanner : Graphlib.Edge_set.t;
  k : int;
  stats : Distnet.Sim.stats;
}

val build : k:int -> seed:int -> Graphlib.Graph.t -> result
val build_with : k:int -> tape:Baswana_sen.tape -> Graphlib.Graph.t -> result
