lib/baseline/greedy.ml: Array Float Graphlib List Queue Stdlib Util
