lib/baseline/supercluster.mli: Graphlib
