lib/baseline/streaming.mli: Graphlib
