lib/baseline/baswana_sen_weighted.ml: Array Baswana_sen Graphlib Hashtbl List Util
