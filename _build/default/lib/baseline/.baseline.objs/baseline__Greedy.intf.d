lib/baseline/greedy.mli: Graphlib
