lib/baseline/bfs_tree.mli: Graphlib
