lib/baseline/neighborhood_dist.mli: Distnet Graphlib
