lib/baseline/baswana_sen_dist.ml: Array Baswana_sen Distnet Graphlib Hashtbl List Util
