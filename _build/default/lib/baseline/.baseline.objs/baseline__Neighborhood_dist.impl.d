lib/baseline/neighborhood_dist.ml: Array Distnet Float Graphlib Hashtbl List Option Queue Stdlib Util
