lib/baseline/baswana_sen_dist.mli: Baswana_sen Distnet Graphlib
