lib/baseline/baswana_sen_weighted.mli: Baswana_sen Graphlib
