lib/baseline/baswana_sen.mli: Graphlib Util
