lib/baseline/baswana_sen.ml: Array Graphlib Hashtbl List Util
