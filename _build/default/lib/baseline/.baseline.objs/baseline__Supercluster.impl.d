lib/baseline/supercluster.ml: Array Float Graphlib Hashtbl List Stdlib Util
