lib/baseline/bfs_tree.ml: Array Graphlib List
