lib/baseline/streaming.ml: Array Graphlib List Queue Stdlib
