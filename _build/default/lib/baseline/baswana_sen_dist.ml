module Graph = Graphlib.Graph
module Edge_set = Graphlib.Edge_set
module Sim = Distnet.Sim

type msg =
  | Exchange of { cl : int; fu : int }
  | Retired

type result = {
  spanner : Edge_set.t;
  k : int;
  stats : Sim.stats;
}

let build_with ~k ~tape g =
  let n = Graph.n g in
  if Array.length tape <> n then invalid_arg "Baswana_sen_dist.build_with";
  let net = Sim.create g in
  let spanner = Edge_set.create g in
  let cluster = Array.init n (fun v -> v) in
  let cluster_fu = Array.init n (fun v -> tape.(v)) in
  let active = Array.make n true in
  let nb_dead = Array.init n (fun _ -> Hashtbl.create 4) in
  let sampled ~phase fu = phase < k - 1 && fu > phase in
  for phase = 0 to k - 1 do
    (* Exchange round. *)
    for v = 0 to n - 1 do
      if active.(v) then
        Graph.iter_neighbors g v (fun w _ ->
            if not (Hashtbl.mem nb_dead.(v) w) then
              Sim.send net ~src:v ~dst:w ~words:2
                (Exchange { cl = cluster.(v); fu = cluster_fu.(v) }))
    done;
    let nb_info = Array.make n [] in
    ignore
      (Sim.step net (fun ~dst ~src m ->
           match m with
           | Exchange { cl; fu } ->
               if active.(dst) then nb_info.(dst) <- (src, (cl, fu)) :: nb_info.(dst)
           | Retired -> assert false));
    (* Local decisions. *)
    let retiring = ref [] in
    let updates = ref [] in
    for v = 0 to n - 1 do
      if active.(v) && not (sampled ~phase cluster_fu.(v)) then begin
        let best : (int, int * (int * int)) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun (w, (cl, fu)) ->
            if cl <> cluster.(v) then begin
              let e =
                match Graph.find_edge g v w with Some e -> e | None -> assert false
              in
              match Hashtbl.find_opt best cl with
              | Some (e', _) when e' <= e -> ()
              | _ -> Hashtbl.replace best cl (e, (cl, fu))
            end)
          nb_info.(v);
        let join =
          Hashtbl.fold
            (fun _cl (e, (cl, fu)) acc ->
              if sampled ~phase fu then
                match acc with
                | Some (e', _, _) when e' <= e -> acc
                | _ -> Some (e, cl, fu)
              else acc)
            best None
        in
        match join with
        | Some (e, cl, fu) ->
            Edge_set.add spanner e;
            updates := (v, cl, fu) :: !updates
        | None ->
            Hashtbl.iter (fun _ (e, _) -> Edge_set.add spanner e) best;
            retiring := v :: !retiring
      end
    done;
    List.iter
      (fun (v, cl, fu) ->
        cluster.(v) <- cl;
        cluster_fu.(v) <- fu)
      !updates;
    (* Retirement notices. *)
    List.iter
      (fun v ->
        active.(v) <- false;
        Graph.iter_neighbors g v (fun w _ ->
            if not (Hashtbl.mem nb_dead.(v) w) then
              Sim.send net ~src:v ~dst:w ~words:1 Retired))
      !retiring;
    ignore
      (Sim.step net (fun ~dst ~src m ->
           match m with
           | Retired -> Hashtbl.replace nb_dead.(dst) src ()
           | Exchange _ -> assert false))
  done;
  { spanner; k; stats = Sim.stats net }

let build ~k ~seed g =
  let tape = Baswana_sen.draw_tape (Util.Prng.create ~seed) ~n:(Graph.n g) ~k in
  build_with ~k ~tape g
