module Graph = Graphlib.Graph
module Weighted = Graphlib.Weighted
module Edge_set = Graphlib.Edge_set

type result = {
  spanner : Edge_set.t;
  k : int;
  discarded : int;
}

(* Lexicographic lightest-edge order: weight first, identifier as the
   deterministic tie-break. *)
let lighter w e e' = w e < w e' || (w e = w e' && e < e')

let build_with ~k ~tape wg =
  let g = Weighted.graph wg in
  let w = Weighted.weight wg in
  let n = Graph.n g in
  if Array.length tape <> n then invalid_arg "Baswana_sen_weighted.build_with";
  let spanner = Edge_set.create g in
  let cluster = Array.init n (fun v -> v) in
  let active = Array.make n true in
  let edge_alive = Array.make (Graph.m g) true in
  let discarded = ref 0 in
  let discard e =
    if edge_alive.(e) then begin
      edge_alive.(e) <- false;
      incr discarded
    end
  in
  let sampled ~phase c = phase < k - 1 && tape.(c) > phase in
  for phase = 0 to k - 1 do
    let new_cluster = Array.copy cluster in
    let removals = ref [] in
    for v = 0 to n - 1 do
      if active.(v) && not (sampled ~phase cluster.(v)) then begin
        (* Lightest remaining edge per adjacent cluster. *)
        let best : (int, int) Hashtbl.t = Hashtbl.create 8 in
        Graph.iter_neighbors g v (fun u e ->
            if edge_alive.(e) && active.(u) && cluster.(u) <> cluster.(v) then
              match Hashtbl.find_opt best cluster.(u) with
              | Some e' when not (lighter w e e') -> ()
              | _ -> Hashtbl.replace best cluster.(u) e);
        let join =
          Hashtbl.fold
            (fun c e acc ->
              if sampled ~phase c then
                match acc with
                | Some (_, e') when not (lighter w e e') -> acc
                | _ -> Some (c, e)
              else acc)
            best None
        in
        match join with
        | None ->
            (* (a) keep the lightest edge per cluster, retire with all
               incident edges. *)
            Hashtbl.iter (fun _ e -> Edge_set.add spanner e) best;
            active.(v) <- false;
            Graph.iter_neighbors g v (fun _ e -> removals := e :: !removals)
        | Some (c_star, e_star) ->
            (* (b) join over e*, keep the lightest edge to every
               strictly closer cluster, discard what is now settled. *)
            Edge_set.add spanner e_star;
            new_cluster.(v) <- c_star;
            Hashtbl.iter
              (fun c e ->
                if c <> c_star && lighter w e e_star then begin
                  Edge_set.add spanner e;
                  (* every v -> c edge is settled *)
                  Graph.iter_neighbors g v (fun u e' ->
                      if edge_alive.(e') && active.(u) && cluster.(u) = c then
                        removals := e' :: !removals)
                end)
              best;
            Graph.iter_neighbors g v (fun u e' ->
                if edge_alive.(e') && active.(u) && cluster.(u) = c_star then
                  removals := e' :: !removals)
      end
    done;
    List.iter discard !removals;
    Array.blit new_cluster 0 cluster 0 n;
    (* Intra-cluster edges are settled by the cluster spanning trees. *)
    Graph.iter_edges g (fun e a b ->
        if
          edge_alive.(e) && active.(a) && active.(b)
          && cluster.(a) = cluster.(b)
        then discard e)
  done;
  { spanner; k; discarded = !discarded }

let build ~k ~seed wg =
  let n = Graph.n (Weighted.graph wg) in
  let tape = Baswana_sen.draw_tape (Util.Prng.create ~seed) ~n ~k in
  build_with ~k ~tape wg
