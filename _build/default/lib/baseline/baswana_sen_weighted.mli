(** Baswana–Sen [(2k-1)]-spanner for {e weighted} graphs — the full
    algorithm of their 2007 paper, which the paper's §1.2 calls
    "optimal in all respects, save for a factor of k in the size".

    [k-1] clustering phases at probability [n^(-1/k)], then a final
    vertex-cluster joining phase.  In each phase a vertex whose
    cluster went unsampled either (a) has no sampled neighbor cluster:
    it keeps the lightest edge to every adjacent cluster and retires
    with all its edges, or (b) joins the sampled cluster with the
    lightest connecting edge [e*], keeping [e*] plus the lightest edge
    to every cluster that is {e closer} than [e*] (discarding those
    clusters' remaining edges).  Intra-cluster edges are discarded at
    the end of every phase.  Expected size [O(k n^(1+1/k))], weighted
    stretch [2k - 1]. *)

type result = {
  spanner : Graphlib.Edge_set.t;
  k : int;
  discarded : int;  (** edges pruned from the working graph *)
}

val build : k:int -> seed:int -> Graphlib.Weighted.t -> result
val build_with : k:int -> tape:Baswana_sen.tape -> Graphlib.Weighted.t -> result
