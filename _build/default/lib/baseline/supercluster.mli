(** Superclustering-and-interconnection [(1+eps, beta)]-style spanner,
    after Elkin–Peleg / Elkin–Zhang (the constructions of the paper's
    §1.2 that Fibonacci spanners improve on).

    This is a {e structural} reproduction: the same
    sample-grow-or-interconnect skeleton, with simple geometric
    parameters rather than the originals' finely tuned ones (see
    DESIGN.md's substitution notes).  Levels [0 .. L]:

    - every surviving cluster is sampled with probability [q_i]
      (default [n^(-2^-(i+1))]-flavored, so the cluster count drops
      doubly exponentially);
    - a sampled cluster survives and its radius grows by [delta_i]
      (members are claimed by nearest-center multi-source BFS);
    - an unsampled cluster {e finishes}: its center connects by a
      shortest path to every other cluster center within
      [delta_i = ceil(eps^-1 2^i)], and the cluster keeps its BFS
      spanning tree;
    - at the last level every remaining center interconnects to all
      others within [delta_L].

    Empirically the result behaves as a [(1+eps, beta)]-spanner: the
    additive error saturates with distance while the multiplicative
    stretch tends to 1 (experiment E19). *)

type result = {
  spanner : Graphlib.Edge_set.t;
  levels_used : int;
  finished_per_level : int list;
      (** clusters retired at each level (diagnostics) *)
}

val build :
  ?eps:float -> ?levels:int -> seed:int -> Graphlib.Graph.t -> result
(** [eps] defaults to 0.5; [levels] to [max 2 (log2 log2 n)]. *)
