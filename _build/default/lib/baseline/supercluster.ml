module Graph = Graphlib.Graph
module Bfs = Graphlib.Bfs
module Edge_set = Graphlib.Edge_set

type result = {
  spanner : Edge_set.t;
  levels_used : int;
  finished_per_level : int list;
}

let build ?(eps = 0.5) ?levels ~seed g =
  if eps <= 0. || eps > 1. then invalid_arg "Supercluster.build: eps in (0,1]";
  let n = Graph.n g in
  let levels =
    match levels with
    | Some l -> Stdlib.max 1 l
    | None ->
        let lg = Util.Tower.log2 (Stdlib.max 2. (Util.Tower.log2 (float_of_int (Stdlib.max 4 n)))) in
        Stdlib.max 2 (int_of_float (Float.ceil lg))
  in
  let rng = Util.Prng.create ~seed in
  let spanner = Edge_set.create g in
  let ws = Bfs.Workspace.create g in
  let finished = Array.make n false in
  let is_center = Array.make n false in
  let centers = ref (List.init n (fun v -> v)) in
  List.iter (fun c -> is_center.(c) <- true) !centers;
  let finished_per_level = ref [] in
  let delta i =
    Stdlib.max 1 (int_of_float (Float.ceil ((2. ** float_of_int i) /. eps)))
  in
  (* Interconnect a finishing center to every current center within
     [radius], by shortest paths. *)
  let interconnect c ~radius =
    if radius >= 1 then begin
      let targets = ref [] in
      Bfs.Workspace.run ws ~src:c ~radius ~on_visit:(fun ~v ~dist ->
          if dist >= 1 && is_center.(v) then targets := v :: !targets);
      List.iter
        (fun u -> List.iter (Edge_set.add spanner) (Bfs.Workspace.path_edges_to_source ws u))
        !targets
    end
  in
  let level = ref 0 in
  let continue = ref true in
  while !continue && !level < levels do
    let d = delta !level in
    let cs = List.filter (fun c -> not finished.(c)) !centers in
    if List.length cs <= 1 || !level = levels - 1 then begin
      (* Final level: everyone finishes and interconnects mutually. *)
      List.iter (fun c -> interconnect c ~radius:d) cs;
      List.iter (fun c -> finished.(c) <- true) cs;
      finished_per_level := List.length cs :: !finished_per_level;
      continue := false
    end
    else begin
      let count = List.length cs in
      let q = 1. /. sqrt (float_of_int count) in
      let sampled = List.filter (fun _ -> Util.Prng.bernoulli rng q) cs in
      let sampled = match sampled with [] -> [ List.hd cs ] | l -> l in
      let sampled_set = Hashtbl.create (List.length sampled) in
      List.iter (fun c -> Hashtbl.replace sampled_set c ()) sampled;
      (* Reassign: nearest surviving center claims each vertex; the BFS
         forest's parent edges keep every cluster spanned. *)
      let forest = Bfs.multi_source g ~sources:sampled in
      Array.iteri
        (fun v e -> if e >= 0 && forest.Bfs.dist.(v) > 0 then Edge_set.add spanner e)
        forest.Bfs.parent_edge;
      (* Unsampled centers finish: interconnect within
         min(delta_i, distance to the surviving hierarchy - 1) — the
         ball cap that keeps the interconnection degree bounded. *)
      let finishing = List.filter (fun c -> not (Hashtbl.mem sampled_set c)) cs in
      List.iter
        (fun c ->
          let to_sampled = forest.Bfs.dist.(c) in
          let radius = if to_sampled < 0 then d else Stdlib.min d (to_sampled - 1) in
          interconnect c ~radius;
          finished.(c) <- true)
        finishing;
      finished_per_level := List.length finishing :: !finished_per_level;
      (* Next level's centers are the survivors. *)
      Array.fill is_center 0 n false;
      List.iter (fun c -> is_center.(c) <- true) sampled;
      centers := sampled;
      incr level
    end
  done;
  {
    spanner;
    levels_used = !level + 1;
    finished_per_level = List.rev !finished_per_level;
  }
