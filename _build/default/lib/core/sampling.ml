type t = { fu : int array }

let draw rng ~n (plan : Plan.t) =
  let ncalls = Array.length plan.Plan.calls in
  let fu =
    Array.init n (fun _ ->
        let rec walk k =
          if k >= ncalls then ncalls
          else if Util.Prng.bernoulli rng plan.Plan.calls.(k).Plan.p then walk (k + 1)
          else k
        in
        walk 0)
  in
  { fu }

let first_unsampled t v = t.fu.(v)
let sampled t ~center ~call = t.fu.(center) > call
let n t = Array.length t.fu
